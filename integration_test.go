package spidercache_test

// Integration tests: drive whole training runs through the public API and
// assert the paper's headline *shapes* — who wins on hit ratio, where the
// speed-up comes from, how the elastic manager behaves. These are the
// executable form of EXPERIMENTS.md's qualitative claims, at a scale small
// enough for CI.

import (
	"testing"

	"spidercache"
)

func train(t *testing.T, ds *spidercache.Dataset, pol string, epochs int) *spidercache.Result {
	t.Helper()
	res, err := spidercache.Train(spidercache.TrainConfig{
		Dataset:       ds,
		Policy:        pol,
		Epochs:        epochs,
		CacheFraction: 0.2,
		Seed:          42,
	})
	if err != nil {
		t.Fatalf("Train(%s): %v", pol, err)
	}
	return res
}

// TestHitRatioOrdering asserts the Fig 14 ordering at a 20% cache:
// SpiderCache > iCache > SpiderCache-imp ~ SHADE > CoorDL > Baseline.
func TestHitRatioOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, err := spidercache.NewCIFAR10(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 10
	hits := map[string]float64{}
	for _, pol := range []string{"spider", "icache", "shade", "coordl", "baseline"} {
		hits[pol] = train(t, ds, pol, epochs).AvgHitRatio()
	}
	order := []string{"spider", "icache", "shade", "coordl", "baseline"}
	for i := 1; i < len(order); i++ {
		if hits[order[i-1]] <= hits[order[i]] {
			t.Errorf("hit ordering violated: %s (%.3f) <= %s (%.3f)",
				order[i-1], hits[order[i-1]], order[i], hits[order[i]])
		}
	}
	// Amplification over the baseline must be substantial (paper: 4.15x
	// average; our LRU baseline is weaker so the ratio is larger).
	if hits["spider"]/hits["baseline"] < 3 {
		t.Errorf("spider/baseline amplification only %.2fx", hits["spider"]/hits["baseline"])
	}
}

// TestSpeedupShape asserts the Table 4 shape: SpiderCache trains fastest,
// Baseline slowest, with the paper-reported magnitude (~2x) in between.
func TestSpeedupShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, err := spidercache.NewCIFAR10(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 10
	spider := train(t, ds, "spider", epochs)
	baseline := train(t, ds, "baseline", epochs)
	speed := float64(baseline.TotalTime) / float64(spider.TotalTime)
	if speed < 1.3 {
		t.Errorf("speed-up only %.2fx (paper: avg 2.21x)", speed)
	}
	// And accuracy must not be sacrificed for it (within noise).
	if spider.BestAcc < baseline.BestAcc-0.03 {
		t.Errorf("spider accuracy %.3f clearly below baseline %.3f", spider.BestAcc, baseline.BestAcc)
	}
}

// TestElasticManagerShape asserts the Table 6 trade-off: a deeper ratio
// shift (90->50) yields at least the hit ratio of the static split, and the
// imp-ratio actually descends over training.
func TestElasticManagerShape(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, err := spidercache.NewCIFAR10(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	const epochs = 14
	static, err := spidercache.Train(spidercache.TrainConfig{
		Dataset: ds, Policy: "spider", Epochs: epochs, CacheFraction: 0.2,
		RStart: 0.9, REnd: 0.9, StaticRatio: true, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	deep, err := spidercache.Train(spidercache.TrainConfig{
		Dataset: ds, Policy: "spider", Epochs: epochs, CacheFraction: 0.2,
		RStart: 0.9, REnd: 0.5, Seed: 42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := static.Epochs[epochs-1].ImpRatio; got != 0.9 {
		t.Errorf("static imp-ratio drifted to %.3f", got)
	}
	if got := deep.Epochs[epochs-1].ImpRatio; got >= 0.9 {
		t.Errorf("dynamic imp-ratio never moved: %.3f", got)
	}
	lateHit := func(r *spidercache.Result) float64 {
		es := r.Epochs[len(r.Epochs)*3/4:]
		var s float64
		for _, e := range es {
			s += e.HitRatio
		}
		return s / float64(len(es))
	}
	if lateHit(deep) < lateHit(static)-0.02 {
		t.Errorf("deep shift late hit %.3f below static %.3f", lateHit(deep), lateHit(static))
	}
}

// TestScoreVarianceDynamics asserts the Fig 6(c) shape: σ of the importance
// scores eventually declines (training converges), which is what arms the
// elastic manager.
func TestScoreVarianceDynamics(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, err := spidercache.NewCIFAR10(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	res := train(t, ds, "spider", 14)
	var early, late float64
	for _, e := range res.Epochs[1:4] {
		early += e.ScoreStd
	}
	for _, e := range res.Epochs[11:14] {
		late += e.ScoreStd
	}
	if late >= early {
		t.Errorf("σ did not decline: early %.4f, late %.4f", early/3, late/3)
	}
}

// TestSubstitutionIsBounded asserts the Homophily Cache serves a meaningful
// but bounded share of requests (the near-duplicate regime, not wholesale
// replacement).
func TestSubstitutionIsBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, err := spidercache.NewCIFAR10(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	res := train(t, ds, "spider", 10)
	var sub float64
	for _, e := range res.Epochs {
		sub += e.SubRatio
	}
	sub /= float64(len(res.Epochs))
	if sub > 0.4 {
		t.Errorf("substitution share %.2f unreasonably high", sub)
	}
}

// TestMultiWorkerGapWidens asserts the Fig 17 shape: SpiderCache's per-epoch
// advantage over the Baseline grows with worker count.
func TestMultiWorkerGapWidens(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	ds, err := spidercache.NewCIFAR10(0.25, 42)
	if err != nil {
		t.Fatal(err)
	}
	gap := func(workers int) float64 {
		var times [2]float64
		for i, pol := range []string{"baseline", "spider"} {
			res, err := spidercache.Train(spidercache.TrainConfig{
				Dataset: ds, Policy: pol, Epochs: 4, CacheFraction: 0.2,
				Workers: workers, SerialLoading: true, Seed: 42,
			})
			if err != nil {
				t.Fatal(err)
			}
			times[i] = res.TotalTime.Seconds()
		}
		return times[0] / times[1]
	}
	if g1, g4 := gap(1), gap(4); g4 <= g1 {
		t.Errorf("gap did not widen with workers: 1 GPU %.2fx, 4 GPUs %.2fx", g1, g4)
	}
}
