// Command spiderkv runs one node of a replicated spidercache cluster: a
// kvserver daemon wired into gossip membership, synchronous replica
// fan-out and background key migration (see internal/cluster.Node).
//
// Usage:
//
//	spiderkv                                  # single-node cluster on :7461
//	spiderkv -listen :7462 -join host:7461    # join an existing cluster
//	spiderkv -replicas 3 -capacity 1000000    # wider replication, bigger store
//	spiderkv -store-mode arena -admission tinylfu
//	                                          # GC-free arena store with
//	                                          # TinyLFU admission filtering
//	spiderkv -advertise 10.0.0.5:7461         # routable address behind NAT
//
// The first daemon bootstraps a cluster of one; each further daemon is
// pointed at any live member with -join and gossips its way in. Every
// member must agree on -replicas and -ring-points for placement to
// converge. Clients connect with cluster.New(cluster.WithSeeds(...),
// cluster.WithDiscovery(...)) and discover the rest of the topology from
// any one member.
//
// The daemon exits on SIGINT/SIGTERM after a graceful close: gossip and
// migration stop, in-flight sessions drain, peer pools shut down.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"spidercache/internal/cluster"
	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
)

func main() {
	cfg := kvserver.DefaultConfig()
	fs := flag.NewFlagSet("spiderkv", flag.ExitOnError)
	var (
		listen     = fs.String("listen", "127.0.0.1:7461", "address to bind")
		advertise  = fs.String("advertise", "", "address peers and clients dial to reach this node (default: the bound address)")
		join       = fs.String("join", "", "comma-separated addresses of existing members to join through")
		replicas   = fs.Int("replicas", 2, "distinct ring owners per key (replication factor; must match across the cluster)")
		gossip     = fs.Duration("gossip", 500*time.Millisecond, "membership gossip interval")
		deadAfter  = fs.Int("dead-after", 3, "consecutive failed gossip rounds before a peer is expelled")
		ringPoints = fs.Int("ring-points", 128, "virtual ring points per node (must match across the cluster)")
	)
	cfg.BindStoreFlags(fs)
	cfg.BindPoolFlags(fs)
	//lint:ignore errcheck ExitOnError makes Parse terminate the process on bad flags
	fs.Parse(os.Args[1:])

	var seeds []string
	for _, s := range strings.Split(*join, ",") {
		if s = strings.TrimSpace(s); s != "" {
			seeds = append(seeds, s)
		}
	}

	reg := telemetry.NewRegistry()
	node, err := cluster.StartNode(cluster.NodeOptions{
		Listen:      *listen,
		Advertise:   *advertise,
		Seeds:       seeds,
		Replicas:    *replicas,
		Store:       cfg,
		GossipEvery: *gossip,
		DeadAfter:   *deadAfter,
		RingPoints:  *ringPoints,
		Registry:    reg,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "spiderkv:", err)
		os.Exit(1)
	}
	fmt.Printf("spiderkv: serving on %s (capacity=%d shards=%d replicas=%d gossip=%v)\n",
		node.Addr(), cfg.Capacity, node.Server().Shards(), *replicas, *gossip)
	if len(seeds) > 0 {
		fmt.Printf("spiderkv: joining via %s\n", strings.Join(seeds, ", "))
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	s := <-sig
	fmt.Printf("spiderkv: %v, shutting down\n", s)
	if err := node.Close(); err != nil {
		fmt.Fprintln(os.Stderr, "spiderkv: close:", err)
		os.Exit(1)
	}
}
