// Command spidertrain runs one (dataset, model, policy) training
// configuration and prints per-epoch metrics plus a run summary.
//
// Usage:
//
//	spidertrain -dataset cifar10 -model ResNet18 -policy spider \
//	    -epochs 30 -cache 0.2 -scale 1.0 -workers 1 -seed 42
//
// Observability:
//
//	spidertrain -metrics                  # dump telemetry at exit (Prometheus text)
//	spidertrain -metrics-json run.json    # JSON snapshot with p50/p95/p99
//	spidertrain -metrics-listen :9090     # serve METRICS/STATS over TCP during the run
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"spidercache"
	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
)

func main() {
	var (
		dsName  = flag.String("dataset", "cifar10", "dataset preset: cifar10, cifar100, imagenet")
		model   = flag.String("model", "ResNet18", "model profile: "+strings.Join(spidercache.Models(), ", "))
		policy  = flag.String("policy", "spider", "policy: "+strings.Join(spidercache.Policies(), ", "))
		epochs  = flag.Int("epochs", 30, "training epochs")
		batch   = flag.Int("batch", 64, "mini-batch size")
		cache   = flag.Float64("cache", 0.2, "cache size as a fraction of the dataset")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier")
		workers = flag.Int("workers", 1, "simulated data-parallel GPU count")
		threads = flag.Int("threads", 0, "CPU threads for tensor kernels and batch scoring (0 = all cores, 1 = serial)")
		prefet  = flag.Bool("prefetch", false, "serve the next batch on a goroutine while the current one computes")
		seed    = flag.Uint64("seed", 42, "random seed")
		rStart  = flag.Float64("rstart", 0.90, "SpiderCache initial imp-ratio")
		rEnd    = flag.Float64("rend", 0.80, "SpiderCache final imp-ratio")
		static  = flag.Bool("static-ratio", false, "freeze the imp-ratio (disable the elastic manager)")
		snapD   = flag.Float64("snapshot-drift", 0, "neighborhood-snapshot drift budget for the scoring path (0 = always-fresh)")
		noPipe  = flag.Bool("no-pipeline", false, "disable IS pipeline overlap")
		quiet   = flag.Bool("quiet", false, "print only the summary line")
		csvOut  = flag.String("csv", "", "write per-epoch records to this CSV file")

		metricsDump   = flag.Bool("metrics", false, "print the telemetry snapshot (Prometheus text) at exit")
		metricsJSON   = flag.String("metrics-json", "", "write the telemetry snapshot as JSON to this file")
		metricsListen = flag.String("metrics-listen", "", "serve the live telemetry registry over TCP (kvserver METRICS verb) on this address")
	)
	flag.Parse()

	if err := spidercache.ValidatePolicy(*policy); err != nil {
		fatal(err)
	}
	ds, err := buildDataset(*dsName, *scale, *seed)
	if err != nil {
		fatal(err)
	}

	var reg *telemetry.Registry
	if *metricsDump || *metricsJSON != "" || *metricsListen != "" {
		reg = telemetry.NewRegistry()
	}
	if *metricsListen != "" {
		srv, err := kvserver.ServeWith(*metricsListen, kvserver.Options{Capacity: 1, Registry: reg})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "spidertrain: serving METRICS on %s\n", srv.Addr())
	}

	opts := []spidercache.Option{
		spidercache.WithPolicy(*policy),
		spidercache.WithModel(*model),
		spidercache.WithEpochs(*epochs),
		spidercache.WithBatchSize(*batch),
		spidercache.WithCacheFraction(*cache),
		spidercache.WithWorkers(*workers),
		spidercache.WithSeed(*seed),
		spidercache.WithElasticRange(*rStart, *rEnd),
		spidercache.WithMetrics(reg),
	}
	if *threads > 0 {
		opts = append(opts, spidercache.WithThreads(*threads))
	}
	if *prefet {
		opts = append(opts, spidercache.WithPrefetch())
	}
	if *snapD > 0 {
		opts = append(opts, spidercache.WithSnapshotDrift(*snapD))
	}
	if *static {
		opts = append(opts, spidercache.WithStaticRatio())
	}
	if *noPipe {
		opts = append(opts, spidercache.WithoutPipeline())
	}
	res, err := spidercache.TrainWith(ds, opts...)
	if err != nil {
		fatal(err)
	}

	if !*quiet {
		fmt.Printf("%-6s %8s %8s %8s %9s %10s %9s %9s\n",
			"epoch", "hit%", "sub%", "acc%", "loss", "time", "sigma", "impRatio")
		for _, e := range res.Epochs {
			fmt.Printf("%-6d %8.2f %8.2f %8.2f %9.4f %10s %9.4f %9.3f\n",
				e.Epoch+1, e.HitRatio*100, e.SubRatio*100, e.Accuracy*100,
				e.TrainLoss, e.EpochTime.Round(time.Millisecond), e.ScoreStd, e.ImpRatio)
		}
	}
	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteCSV(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("summary policy=%s model=%s dataset=%s epochs=%d avgHit=%.2f%% bestAcc=%.2f%% finalAcc=%.2f%% totalTime=%s\n",
		res.Policy, res.Model, res.Dataset, len(res.Epochs),
		res.AvgHitRatio()*100, res.BestAcc*100, res.FinalAcc*100,
		res.TotalTime.Round(time.Millisecond))

	if *metricsJSON != "" {
		f, err := os.Create(*metricsJSON)
		if err != nil {
			fatal(err)
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if *metricsDump {
		fmt.Println("--- telemetry snapshot (Prometheus text exposition) ---")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fatal(err)
		}
	}
}

func buildDataset(name string, scale float64, seed uint64) (*spidercache.Dataset, error) {
	switch strings.ToLower(name) {
	case "cifar10":
		return spidercache.NewCIFAR10(scale, seed)
	case "cifar100":
		return spidercache.NewCIFAR100(scale, seed)
	case "imagenet":
		return spidercache.NewImageNet(scale, seed)
	default:
		return nil, fmt.Errorf("unknown dataset %q (want cifar10, cifar100 or imagenet)", name)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spidertrain:", err)
	os.Exit(1)
}
