// Command spiderdiag trains one policy and breaks held-out accuracy down by
// planted sample population (easy / boundary / isolated / hard). It is the
// repository's built-in tool for verifying that importance sampling is
// actually buying accuracy where the paper says it should: on the hard,
// initially-misclassified subclusters.
//
// Usage:
//
//	spiderdiag -policy spider -epochs 20 -scale 0.5 -seed 42
package main

import (
	"flag"
	"fmt"
	"os"

	"spidercache/internal/dataset"
	"spidercache/internal/experiments"
	"spidercache/internal/nn"
	"spidercache/internal/tensor"
	"spidercache/internal/trainer"
)

func main() {
	var (
		polName = flag.String("policy", "spider", "policy name")
		epochs  = flag.Int("epochs", 20, "training epochs")
		scale   = flag.Float64("scale", 0.5, "dataset scale")
		cache   = flag.Float64("cache", 0.2, "cache fraction")
		seed    = flag.Uint64("seed", 42, "seed")
		dsName  = flag.String("dataset", "cifar10", "dataset preset")
	)
	flag.Parse()

	var cfg dataset.Config
	switch *dsName {
	case "cifar10":
		cfg = dataset.CIFAR10Like(*scale, *seed)
	case "cifar100":
		cfg = dataset.CIFAR100Like(*scale, *seed)
	case "imagenet":
		cfg = dataset.ImageNetLike(*scale, *seed)
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dsName))
	}
	ds, err := dataset.New(cfg)
	if err != nil {
		fatal(err)
	}
	capacity := int(float64(ds.Len()) * *cache)
	pol, err := experiments.BuildPolicy(*polName, experiments.PolicyParams{
		Dataset: ds, Capacity: capacity, Epochs: *epochs, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	res, err := trainer.Run(trainer.Config{
		Dataset: ds, Model: nn.ResNet18, Epochs: *epochs, BatchSize: 64,
		Workers: 1, PipelineIS: true, Seed: *seed,
	}, pol)
	if err != nil {
		fatal(err)
	}

	correct := map[dataset.Kind]int{}
	total := map[dataset.Kind]int{}
	x := tensor.New(1, ds.Config.Dim)
	for i, feat := range ds.TestFeatures {
		copy(x.Row(0), feat)
		acc, _ := res.FinalModel.Evaluate(x, []int{ds.TestLabels[i]})
		total[ds.TestKinds[i]]++
		if acc > 0.5 {
			correct[ds.TestKinds[i]]++
		}
	}
	fmt.Printf("policy=%s dataset=%s epochs=%d overall best=%.2f%% final=%.2f%% hit=%.2f%%\n",
		res.Policy, res.Dataset, *epochs, res.BestAcc*100, res.FinalAcc*100, res.AvgHitRatio()*100)
	for _, k := range []dataset.Kind{dataset.Easy, dataset.Boundary, dataset.Isolated, dataset.Hard} {
		if total[k] == 0 {
			continue
		}
		fmt.Printf("  %-9s n=%4d acc=%.2f%%\n", k, total[k], float64(correct[k])/float64(total[k])*100)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spiderdiag:", err)
	os.Exit(1)
}
