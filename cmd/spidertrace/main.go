// Command spidertrace records and analyses cache-request traces.
//
// Record a trace by running a training configuration with a recording
// policy, then summarise it (or summarise an existing trace file):
//
//	spidertrace -record trace.csv -policy spider -epochs 10 -scale 0.5
//	spidertrace -analyze trace.csv
//
// The summary reports hit/miss/substitute counts, reuse-distance statistics
// (what LRU-style policies depend on) and sampling skew (what importance-
// driven policies create and exploit).
package main

import (
	"flag"
	"fmt"
	"os"

	"spidercache/internal/dataset"
	"spidercache/internal/experiments"
	"spidercache/internal/metrics"
	"spidercache/internal/nn"
	"spidercache/internal/trace"
	"spidercache/internal/trainer"
)

func main() {
	var (
		record  = flag.String("record", "", "train and write the request trace to this CSV file")
		analyze = flag.String("analyze", "", "summarise an existing trace CSV")
		polName = flag.String("policy", "spider", "policy to trace when recording")
		dsName  = flag.String("dataset", "cifar10", "dataset preset when recording")
		epochs  = flag.Int("epochs", 10, "epochs when recording")
		scale   = flag.Float64("scale", 0.5, "dataset scale when recording")
		cacheF  = flag.Float64("cache", 0.2, "cache fraction when recording")
		seed    = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record, *polName, *dsName, *epochs, *scale, *cacheF, *seed); err != nil {
			fatal(err)
		}
	case *analyze != "":
		if err := doAnalyze(*analyze); err != nil {
			fatal(err)
		}
	default:
		fmt.Fprintln(os.Stderr, "spidertrace: pass -record <file> or -analyze <file>")
		os.Exit(2)
	}
}

func doRecord(path, polName, dsName string, epochs int, scale, cacheF float64, seed uint64) error {
	var cfg dataset.Config
	switch dsName {
	case "cifar10":
		cfg = dataset.CIFAR10Like(scale, seed)
	case "cifar100":
		cfg = dataset.CIFAR100Like(scale, seed)
	case "imagenet":
		cfg = dataset.ImageNetLike(scale, seed)
	default:
		return fmt.Errorf("unknown dataset %q", dsName)
	}
	ds, err := dataset.New(cfg)
	if err != nil {
		return err
	}
	inner, err := experiments.BuildPolicy(polName, experiments.PolicyParams{
		Dataset:  ds,
		Capacity: int(float64(ds.Len()) * cacheF),
		Epochs:   epochs,
		Seed:     seed,
	})
	if err != nil {
		return err
	}
	rec, tr := trace.NewRecorder(inner)
	res, err := trainer.Run(trainer.Config{
		Dataset: ds, Model: nn.ResNet18, Epochs: epochs,
		BatchSize: 64, Workers: 1, PipelineIS: true, Seed: seed,
	}, rec)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tr.WriteCSV(f); err != nil {
		return err
	}
	fmt.Printf("recorded %d events from %s on %s (hit %.1f%%) to %s\n",
		tr.Len(), res.Policy, res.Dataset, res.AvgHitRatio()*100, path)
	fmt.Println()
	fmt.Print(trace.Analyze(tr).Render())
	return nil
}

func doAnalyze(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		return err
	}
	fmt.Print(trace.Analyze(tr).Render())
	ratios := trace.PerEpochHitRatios(tr)
	series := metrics.Series{Name: "hit", Points: ratios}
	fmt.Println()
	fmt.Print(metrics.RenderSeries("per-epoch hit ratio", "epoch", nil, series))
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spidertrace:", err)
	os.Exit(1)
}
