// Command spiderload is a closed-loop load generator for the kvserver
// cache tier: N connections issue a configurable GET/SET mix over a
// zipfian key population at a configurable pipeline depth, and the run
// reports sustained ops/s plus round-trip latency percentiles taken from
// the telemetry histograms.
//
// Usage:
//
//	spiderload                               # in-process server, defaults
//	spiderload -addr 127.0.0.1:7070          # against a running server
//	spiderload -conns 8 -pipeline 32         # deeper pipelining
//	spiderload -pipeline 1                   # one op per round trip (the
//	                                         # pre-batching serving path)
//	spiderload -batch 16                     # MGET/MSET batch verbs
//	spiderload -get 0.5 -value 8192 -zipf 0  # write-heavy, uniform keys
//	spiderload -store-mode arena -admission tinylfu
//	                                         # GC-free arena store with
//	                                         # TinyLFU admission in the
//	                                         # in-process server
//	spiderload -json out.json                # persist the run summary
//	                                         # (same schema as cluster mode)
//	spiderload -metrics                      # server METRICS dump at exit
//	spiderload -fault-reset 0.01 -fault-partial 0.02
//	                                         # robustness run: the in-process
//	                                         # server's listener injects
//	                                         # faults; retries absorb them
//
// Closed loop means every connection keeps exactly one request window in
// flight and issues the next only after the previous reply lands, so the
// reported throughput is what the server actually sustains at that
// concurrency, not an open-loop arrival rate.
//
// With any -fault-* flag set, the in-process server's accepted connections
// run behind internal/faultnet: resets, partial writes, read/write errors
// and added latency hit the wire with the given per-op probabilities,
// seed-deterministically. The client side drives a retrying connection
// pool and re-issues failed request windows (the load is synthetic, so
// re-sending is always safe); a run succeeds only if every window
// eventually lands — faults are absorbed and reported, never surfaced.
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"strings"
	"sync"
	"time"

	"spidercache/internal/faultnet"
	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
	"spidercache/internal/xrand"
)

func main() {
	// The server-side knobs (-capacity, -shards, -store-mode, -admission)
	// come from the canonical kvserver.Config so spiderload accepts exactly
	// the flags spiderkv does; they configure the in-process server
	// (single-node mode) or the booted daemons (-nodes cluster mode).
	storeCfg := kvserver.DefaultConfig()
	storeCfg.BindStoreFlags(flag.CommandLine)
	var (
		addr     = flag.String("addr", "", "server address; empty starts an in-process server")
		conns    = flag.Int("conns", 4, "concurrent client connections")
		pipeline = flag.Int("pipeline", 16, "requests per round trip (1 = no pipelining)")
		batch    = flag.Int("batch", 0, "use MGET/MSET with this many keys per command instead of pipelined GET/SET (0 = off)")

		ngetMix       = flag.Float64("nget-mix", 0, "fraction of reads issued as semantic NGETs instead of exact GETs (0 = off)")
		ngetThreshold = flag.Float64("nget-threshold", 0.3, "cosine-distance threshold for NGET near hits")
		embedDim      = flag.Int("embed-dim", 16, "embedding dimensionality for the NGET workload")
		embedClusters = flag.Int("embed-clusters", 64, "number of semantic clusters the key population is drawn from")

		valueSz = flag.Int("value", 3072, "payload bytes per value")
		getFrac = flag.Float64("get", 0.9, "fraction of operations that are GETs (rest are SETs)")
		keys    = flag.Int("keys", 16384, "key population size")
		zipfS   = flag.Float64("zipf", 0.99, "zipfian skew exponent over the key population (0 = uniform)")
		ops     = flag.Int("ops", 200000, "total operations across all connections")
		preload = flag.Bool("preload", true, "SET every key once before measuring")
		seed    = flag.Uint64("seed", 42, "random seed")
		timeout = flag.Duration("timeout", 10*time.Second, "per-connection dial/read/write timeout")
		metrics = flag.Bool("metrics", false, "print the server METRICS snapshot at exit")

		clusterSeeds = flag.String("cluster", "", "comma-separated spiderkv seed addresses; drives a ring-aware cluster client instead of one server")
		nodesN       = flag.Int("nodes", 0, "boot this many in-process cluster daemons and drive them (implies cluster mode)")
		replicas     = flag.Int("replicas", 2, "cluster replication factor (cluster mode)")
		jsonOut      = flag.String("json", "", "write a JSON result summary to this file (same schema in single-node and cluster mode)")

		retries       = flag.Int("retries", 8, "attempts per request window before a fault is client-visible (1 = no retries)")
		faultReset    = flag.Float64("fault-reset", 0, "per-op probability of a connection reset (in-process server only)")
		faultPartial  = flag.Float64("fault-partial", 0, "per-write probability of a torn partial write")
		faultReadErr  = flag.Float64("fault-read-err", 0, "per-read probability of an injected read error")
		faultWriteErr = flag.Float64("fault-write-err", 0, "per-write probability of an injected write error")
		faultLatency  = flag.Duration("fault-latency", 0, "added latency per network op")
		faultSeed     = flag.Uint64("fault-seed", 1, "seed for the deterministic fault streams")
	)
	flag.Parse()

	if *conns < 1 || *pipeline < 1 || *keys < 1 || *ops < 1 || *valueSz < 0 ||
		*getFrac < 0 || *getFrac > 1 || *batch < 0 || *retries < 1 ||
		*ngetMix < 0 || *ngetMix > 1 || *ngetThreshold < 0 ||
		*embedDim < 1 || *embedDim > kvserver.MaxEmbedDim || *embedClusters < 1 {
		fmt.Fprintln(os.Stderr, "spiderload: invalid flag value")
		os.Exit(2)
	}
	if *ngetMix > 0 && *batch > 0 {
		fmt.Fprintln(os.Stderr, "spiderload: -nget-mix needs the pipelined GET/SET path (drop -batch)")
		os.Exit(2)
	}
	if err := storeCfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "spiderload:", err)
		os.Exit(2)
	}

	if *clusterSeeds != "" || *nodesN > 0 {
		if *addr != "" || *faultReset > 0 || *faultPartial > 0 || *faultReadErr > 0 || *faultWriteErr > 0 || *faultLatency > 0 {
			fmt.Fprintln(os.Stderr, "spiderload: cluster mode excludes -addr and -fault-* (kill a daemon instead)")
			os.Exit(2)
		}
		if *replicas < 1 {
			fmt.Fprintln(os.Stderr, "spiderload: invalid -replicas")
			os.Exit(2)
		}
		var seeds []string
		for _, s := range strings.Split(*clusterSeeds, ",") {
			if s = strings.TrimSpace(s); s != "" {
				seeds = append(seeds, s)
			}
		}
		os.Exit(clusterMain(clusterParams{
			seeds:         seeds,
			nodes:         *nodesN,
			replicas:      *replicas,
			conns:         *conns,
			valueSz:       *valueSz,
			getFrac:       *getFrac,
			ngetMix:       *ngetMix,
			ngetThreshold: *ngetThreshold,
			embedDim:      *embedDim,
			embedClusters: *embedClusters,
			keys:          *keys,
			zipfS:         *zipfS,
			ops:           *ops,
			preload:       *preload,
			seed:          *seed,
			timeout:       *timeout,
			retries:       *retries,
			jsonOut:       *jsonOut,
			storeMode:     storeCfg.StoreMode,
			admission:     storeCfg.Admission,
		}))
	}

	faultCfg := faultnet.Config{
		Seed:             *faultSeed,
		Latency:          *faultLatency,
		PartialWriteProb: *faultPartial,
		ReadErrProb:      *faultReadErr,
		WriteErrProb:     *faultWriteErr,
		ResetProb:        *faultReset,
	}
	faultsOn := faultCfg != (faultnet.Config{Seed: *faultSeed})
	if faultsOn && *addr != "" {
		fmt.Fprintln(os.Stderr, "spiderload: -fault-* flags need the in-process server (drop -addr)")
		os.Exit(2)
	}
	if err := faultCfg.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "spiderload:", err)
		os.Exit(2)
	}

	var faultReg *telemetry.Registry
	target := *addr
	if target == "" {
		opts := storeCfg.ServerOptions(nil)
		var srv *kvserver.Server
		var err error
		if faultsOn {
			faultReg = telemetry.NewRegistry()
			faultCfg.Registry = faultReg
			ln, lerr := net.Listen("tcp", "127.0.0.1:0")
			if lerr != nil {
				fatal(lerr)
			}
			srv, err = kvserver.ServeOn(faultnet.WrapListener(ln, faultCfg), opts)
		} else {
			srv, err = kvserver.ServeWith("127.0.0.1:0", opts)
		}
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		target = srv.Addr()
		fmt.Printf("in-process server on %s (capacity=%d shards=%d store-mode=%s admission=%s)\n",
			target, storeCfg.Capacity, srv.Shards(), storeCfg.StoreMode, storeCfg.Admission)
		if faultsOn {
			fmt.Printf("fault injection: reset=%.3f partial=%.3f read-err=%.3f write-err=%.3f latency=%v seed=%d\n",
				*faultReset, *faultPartial, *faultReadErr, *faultWriteErr, *faultLatency, *faultSeed)
		}
	}

	mode := fmt.Sprintf("pipeline=%d", *pipeline)
	if *batch > 0 {
		mode = fmt.Sprintf("batch=%d (MGET/MSET)", *batch)
	}
	// The NGET workload needs a per-key embedding; build them up front so
	// every worker (and the preload ESETs) sees the same clustered space.
	var embs [][]float32
	if *ngetMix > 0 {
		embs = buildEmbeddings(*seed, *keys, *embedDim, *embedClusters)
		mode += fmt.Sprintf(" nget-mix=%.2f threshold=%.2f dim=%d clusters=%d",
			*ngetMix, *ngetThreshold, *embedDim, *embedClusters)
	}
	fmt.Printf("spiderload: addr=%s conns=%d %s value=%dB get=%.2f keys=%d zipf=%.2f ops=%d\n",
		target, *conns, mode, *valueSz, *getFrac, *keys, *zipfS, *ops)

	dialOpts := kvserver.DialOptions{
		DialTimeout:  *timeout,
		ReadTimeout:  *timeout,
		WriteTimeout: *timeout,
	}
	payload := make([]byte, *valueSz)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	clientReg := telemetry.NewRegistry()
	pool, err := kvserver.NewPool(target, kvserver.PoolOptions{
		Size:        *conns,
		DialOptions: dialOpts,
		LazyDial:    true, // under faults the very first dial may be reset
		Retry:       kvserver.RetryOptions{Attempts: *retries, Seed: *seed},
		Name:        "load",
		Registry:    clientReg,
	})
	if err != nil {
		fatal(err)
	}
	defer pool.Close()

	if *preload {
		start := time.Now()
		if err := preloadKeys(pool, *retries, *keys, payload, embs); err != nil {
			fatal(err)
		}
		fmt.Printf("preloaded %d keys in %v\n", *keys, time.Since(start).Round(time.Millisecond))
	}

	rtLat := newRTHistogram(clientReg)

	root := xrand.New(*seed)
	var wg sync.WaitGroup
	results := make([]workerResult, *conns)
	opsPer := *ops / *conns
	start := time.Now()
	for w := 0; w < *conns; w++ {
		cfg := workerConfig{
			pool:      pool,
			attempts:  *retries,
			ops:       opsPer,
			pipeline:  *pipeline,
			batch:     *batch,
			getFrac:   *getFrac,
			ngetMix:   *ngetMix,
			threshold: *ngetThreshold,
			embs:      embs,
			keys:      *keys,
			zipfS:     *zipfS,
			payload:   payload,
			rng:       root.Split(),
			rtLat:     rtLat,
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runWorker(cfg)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerResult
	for _, r := range results {
		if r.err != nil && total.err == nil {
			total.err = r.err
		}
		total.add(r.loadTotals)
		total.windowRetries += r.windowRetries
	}
	if total.err != nil {
		fatal(total.err)
	}

	// One summarizer (fillTotals) derives every ratio for both the report
	// lines and the -json file, so the division guards live in one place.
	res := loadResult{
		Mode:          "single",
		StoreMode:     storeCfg.StoreMode,
		Admission:     storeCfg.Admission,
		Nodes:         []string{target},
		Replicas:      1,
		PoolRetries:   poolRetries(clientReg),
		FinalNodeSet:  []string{target},
		FinalHealth:   1,
		KeysPopulated: *keys,
	}
	res.fillTotals(total.loadTotals, elapsed.Seconds())
	fmt.Printf("ran %d ops in %v: %.0f ops/s, %.1f MB/s, hit %.1f%%\n",
		res.Ops, elapsed.Round(time.Millisecond), res.OpsPerSec, res.MBPerSec, 100*res.HitRatio)
	if res.NGetOps > 0 {
		fmt.Printf("nget: %d ops (exact=%d near=%d miss=%d), mean near dist=%.4f\n",
			res.NGetOps, res.NGetExact, res.NGetNear, res.NGetMiss, res.NGetMeanDist)
	}
	snap := rtLat.Snapshot()
	res.P50Ms, res.P95Ms, res.P99Ms, res.MaxMs = snap.P50*1000, snap.P95*1000, snap.P99*1000, snap.Max*1000
	fmt.Printf("round-trip latency (per request window of %d): p50=%s p95=%s p99=%s max=%s\n",
		windowOps(*pipeline, *batch), fmtDur(snap.P50), fmtDur(snap.P95), fmtDur(snap.P99), fmtDur(snap.Max))

	if faultsOn {
		fmt.Printf("faults injected: %s\n", faultSummary(faultReg))
		fmt.Printf("absorbed by: %d window retries, %d pool op retries; client-visible errors: 0\n",
			total.windowRetries, poolRetries(clientReg))
	}

	if *jsonOut != "" {
		// Same schema as cluster mode (see loadResult); a single-node run
		// reaches this point only with zero client-visible errors, and the
		// cluster-only resilience counters stay zero.
		if err := writeJSON(*jsonOut, res); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *jsonOut)
	}

	if *metrics {
		var text string
		err := retryWindow(*retries, nil, func() error {
			return pool.Do(func(c *kvserver.Client) error {
				t, err := c.Metrics()
				if err == nil {
					text = t
				}
				return err
			})
		})
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	}
}

// faultSummary renders the injected-fault counters in a fixed kind order,
// reading through Snapshot so reporting never registers new series.
func faultSummary(reg *telemetry.Registry) string {
	counters := reg.Snapshot().Counters
	out := ""
	for _, kind := range []string{"reset", "partial_write", "read_error", "write_error", "short_read", "latency"} {
		n := counters[fmt.Sprintf("kv_faults_injected_total{kind=%q}", kind)]
		if n == 0 {
			continue
		}
		if out != "" {
			out += " "
		}
		out += fmt.Sprintf("%s=%d", kind, n)
	}
	if out == "" {
		return "none"
	}
	return out
}

// poolRetries sums kv_retries_total across ops for the load pool.
func poolRetries(reg *telemetry.Registry) int64 {
	var n int64
	for _, op := range []string{"get", "mget", "set", "mset", "del", "nget", "eset"} {
		n += reg.Snapshot().Counters[fmt.Sprintf("kv_retries_total{node=%q,op=%q}", "load", op)]
	}
	return n
}

// newRTHistogram is the single registration site for load_rt_seconds,
// shared by the single-server and cluster paths.
func newRTHistogram(reg *telemetry.Registry) *telemetry.Histogram {
	reg.Describe("load_rt_seconds", "client-observed round-trip latency per request window or operation")
	return reg.HistogramWindow("load_rt_seconds", 1<<15, nil)
}

func windowOps(pipeline, batch int) int {
	if batch > 0 {
		return batch
	}
	return pipeline
}

func fmtDur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spiderload:", err)
	os.Exit(1)
}

func key(i int) string { return fmt.Sprintf("load:%08d", i) }

// retryWindow runs fn up to attempts times, counting re-issues into res.
// The generator's windows are synthetic and self-contained, so re-sending
// a failed window is always safe — this is the layer that turns injected
// faults into retries instead of run failures.
func retryWindow(attempts int, res *workerResult, fn func() error) error {
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 && res != nil {
			res.windowRetries++
		}
		if err = fn(); err == nil {
			return nil
		}
	}
	return err
}

// preloadKeys SETs every key once (MSET batches through the retrying
// pool) so GET traffic starts warm. Chunks are kept small: under fault
// injection a window's failure probability grows with the bytes it moves,
// so a huge MSET could exhaust any fixed retry budget. The budget is also
// widened — preload is setup, not measurement, so patience is free. With
// embeddings present (an NGET run) every key's embedding is ESET in the
// same chunking, so the semantic index is warm before measurement too.
func preloadKeys(pool *kvserver.Pool, attempts, n int, payload []byte, embs [][]float32) error {
	const chunk = 64
	keys := make([]string, 0, chunk)
	values := make([][]byte, 0, chunk)
	ids := make([]int, 0, chunk)
	for i := 0; i < n; i++ {
		keys = append(keys, key(i))
		values = append(values, payload)
		ids = append(ids, i)
		if len(keys) == chunk || i == n-1 {
			k, v := keys, values
			if err := retryWindow(4*attempts, nil, func() error { return pool.MSet(k, v) }); err != nil {
				return err
			}
			if embs != nil {
				idc := ids
				err := retryWindow(4*attempts, nil, func() error {
					return pool.Do(func(c *kvserver.Client) error {
						p := c.Pipeline()
						for _, id := range idc {
							p.ESet(key(id), embs[id])
						}
						rs, err := p.Exec()
						if err != nil {
							return err
						}
						for _, r := range rs {
							if r.Err != nil {
								return r.Err
							}
						}
						return nil
					})
				})
				if err != nil {
					return err
				}
			}
			keys, values, ids = keys[:0], values[:0], ids[:0]
		}
	}
	return nil
}

type workerConfig struct {
	pool      *kvserver.Pool
	attempts  int
	ops       int
	pipeline  int
	batch     int
	getFrac   float64
	ngetMix   float64
	threshold float64
	embs      [][]float32 // per-key embeddings; nil disables NGETs
	keys      int
	zipfS     float64
	payload   []byte
	rng       *xrand.Rand
	rtLat     *telemetry.Histogram
}

type workerResult struct {
	loadTotals
	windowRetries int
	err           error
}

// The per-slot op kinds a pipelined window is drawn from.
const (
	loadSet = iota
	loadGet
	loadNGet
)

// runWorker is one closed-loop lane: it keeps issuing request windows (a
// pipeline of GET/SET/NGETs, or one MGET/MSET batch) through the shared
// pool until its operation quota is spent. Each window's ops are drawn
// before sending, so a faulted window retries with identical contents.
func runWorker(cfg workerConfig) workerResult {
	var res workerResult
	zipf := xrand.NewZipf(cfg.rng, cfg.zipfS, cfg.keys)

	if cfg.batch > 0 {
		runBatchLoop(cfg, zipf, &res)
		return res
	}

	kinds := make([]uint8, cfg.pipeline)
	ids := make([]int, cfg.pipeline)
	for res.ops < cfg.ops {
		window := cfg.pipeline
		if remaining := cfg.ops - res.ops; window > remaining {
			window = remaining
		}
		sets := 0
		for i := 0; i < window; i++ {
			ids[i] = zipf.Next()
			switch {
			case cfg.rng.Float64() >= cfg.getFrac:
				kinds[i] = loadSet
				sets++
			case cfg.embs != nil && cfg.rng.Float64() < cfg.ngetMix:
				kinds[i] = loadNGet
			default:
				kinds[i] = loadGet
			}
		}
		var results []kvserver.Result
		err := retryWindow(cfg.attempts, &res, func() error {
			return cfg.pool.Do(func(c *kvserver.Client) error {
				p := c.Pipeline()
				for i := 0; i < window; i++ {
					switch kinds[i] {
					case loadGet:
						p.Get(key(ids[i]))
					case loadNGet:
						p.NGet(key(ids[i]), cfg.embs[ids[i]], cfg.threshold)
					default:
						p.Set(key(ids[i]), cfg.payload)
					}
				}
				start := time.Now()
				rs, err := p.Exec()
				cfg.rtLat.Observe(time.Since(start).Seconds())
				if err != nil {
					return err
				}
				for _, r := range rs {
					if r.Err != nil {
						return r.Err
					}
				}
				results = rs
				return nil
			})
		})
		if err != nil {
			res.err = err
			return res
		}
		for i, r := range results {
			switch kinds[i] {
			case loadGet:
				res.gets++
				if r.Found {
					res.hits++
				}
			case loadNGet:
				res.ngets++
				switch {
				case r.Near != nil:
					res.ngetNear++
					res.ngetDist += r.Near.Dist
				case r.Found:
					res.ngetExact++
				default:
					res.ngetMiss++
				}
			}
			if r.Value != nil {
				res.bytes += int64(len(r.Value))
			}
		}
		res.ops += window
		res.bytes += int64(sets * len(cfg.payload))
	}
	return res
}

// runBatchLoop drives the MGET/MSET verbs: each window is one batch
// command whose keys are all zipf draws. The pool already retries MGET
// (idempotent) and pre-write MSET failures; the window retry on top
// covers post-write MSET faults, which are safe to re-send here because
// the load is synthetic.
func runBatchLoop(cfg workerConfig, zipf *xrand.Zipf, res *workerResult) {
	keys := make([]string, cfg.batch)
	values := make([][]byte, cfg.batch)
	for i := range values {
		values[i] = cfg.payload
	}
	for res.ops < cfg.ops {
		window := cfg.batch
		if remaining := cfg.ops - res.ops; window > remaining {
			window = remaining
		}
		for i := 0; i < window; i++ {
			keys[i] = key(zipf.Next())
		}
		if cfg.rng.Float64() < cfg.getFrac {
			var got [][]byte
			var found []bool
			err := retryWindow(cfg.attempts, res, func() error {
				start := time.Now()
				g, f, err := cfg.pool.MGet(keys[:window]...)
				cfg.rtLat.Observe(time.Since(start).Seconds())
				if err == nil {
					got, found = g, f
				}
				return err
			})
			if err != nil {
				res.err = err
				return
			}
			res.gets += window
			for i := range found {
				if found[i] {
					res.hits++
					res.bytes += int64(len(got[i]))
				}
			}
		} else {
			err := retryWindow(cfg.attempts, res, func() error {
				start := time.Now()
				err := cfg.pool.MSet(keys[:window], values[:window])
				cfg.rtLat.Observe(time.Since(start).Seconds())
				return err
			})
			if err != nil {
				res.err = err
				return
			}
			res.bytes += int64(window * len(cfg.payload))
		}
		res.ops += window
	}
}
