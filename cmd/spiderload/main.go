// Command spiderload is a closed-loop load generator for the kvserver
// cache tier: N connections issue a configurable GET/SET mix over a
// zipfian key population at a configurable pipeline depth, and the run
// reports sustained ops/s plus round-trip latency percentiles taken from
// the telemetry histograms.
//
// Usage:
//
//	spiderload                               # in-process server, defaults
//	spiderload -addr 127.0.0.1:7070          # against a running server
//	spiderload -conns 8 -pipeline 32         # deeper pipelining
//	spiderload -pipeline 1                   # one op per round trip (the
//	                                         # pre-batching serving path)
//	spiderload -batch 16                     # MGET/MSET batch verbs
//	spiderload -get 0.5 -value 8192 -zipf 0  # write-heavy, uniform keys
//	spiderload -metrics                      # server METRICS dump at exit
//
// Closed loop means every connection keeps exactly one request window in
// flight and issues the next only after the previous reply lands, so the
// reported throughput is what the server actually sustains at that
// concurrency, not an open-loop arrival rate.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"
	"time"

	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
	"spidercache/internal/xrand"
)

func main() {
	var (
		addr     = flag.String("addr", "", "server address; empty starts an in-process server")
		capacity = flag.Int("capacity", 1<<16, "item capacity for the in-process server")
		shards   = flag.Int("shards", 0, "store shards for the in-process server (0 = auto)")
		conns    = flag.Int("conns", 4, "concurrent client connections")
		pipeline = flag.Int("pipeline", 16, "requests per round trip (1 = no pipelining)")
		batch    = flag.Int("batch", 0, "use MGET/MSET with this many keys per command instead of pipelined GET/SET (0 = off)")
		valueSz  = flag.Int("value", 3072, "payload bytes per value")
		getFrac  = flag.Float64("get", 0.9, "fraction of operations that are GETs (rest are SETs)")
		keys     = flag.Int("keys", 16384, "key population size")
		zipfS    = flag.Float64("zipf", 0.99, "zipfian skew exponent over the key population (0 = uniform)")
		ops      = flag.Int("ops", 200000, "total operations across all connections")
		preload  = flag.Bool("preload", true, "SET every key once before measuring")
		seed     = flag.Uint64("seed", 42, "random seed")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-connection dial/read/write timeout")
		metrics  = flag.Bool("metrics", false, "print the server METRICS snapshot at exit")
	)
	flag.Parse()

	if *conns < 1 || *pipeline < 1 || *keys < 1 || *ops < 1 || *valueSz < 0 ||
		*getFrac < 0 || *getFrac > 1 || *batch < 0 {
		fmt.Fprintln(os.Stderr, "spiderload: invalid flag value")
		os.Exit(2)
	}

	target := *addr
	if target == "" {
		srv, err := kvserver.ServeWith("127.0.0.1:0", kvserver.Options{
			Capacity: *capacity,
			Shards:   *shards,
		})
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		target = srv.Addr()
		fmt.Printf("in-process server on %s (capacity=%d shards=%d)\n",
			target, *capacity, srv.Shards())
	}

	mode := fmt.Sprintf("pipeline=%d", *pipeline)
	if *batch > 0 {
		mode = fmt.Sprintf("batch=%d (MGET/MSET)", *batch)
	}
	fmt.Printf("spiderload: addr=%s conns=%d %s value=%dB get=%.2f keys=%d zipf=%.2f ops=%d\n",
		target, *conns, mode, *valueSz, *getFrac, *keys, *zipfS, *ops)

	dialOpts := kvserver.DialOptions{
		DialTimeout:  *timeout,
		ReadTimeout:  *timeout,
		WriteTimeout: *timeout,
	}
	payload := make([]byte, *valueSz)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	if *preload {
		start := time.Now()
		if err := preloadKeys(target, dialOpts, *keys, payload); err != nil {
			fatal(err)
		}
		fmt.Printf("preloaded %d keys in %v\n", *keys, time.Since(start).Round(time.Millisecond))
	}

	reg := telemetry.NewRegistry()
	reg.Describe("load_rt_seconds", "client-observed round-trip latency per request window")
	rtLat := reg.HistogramWindow("load_rt_seconds", 1<<15, nil)

	root := xrand.New(*seed)
	var wg sync.WaitGroup
	results := make([]workerResult, *conns)
	opsPer := *ops / *conns
	start := time.Now()
	for w := 0; w < *conns; w++ {
		cfg := workerConfig{
			addr:     target,
			dial:     dialOpts,
			ops:      opsPer,
			pipeline: *pipeline,
			batch:    *batch,
			getFrac:  *getFrac,
			keys:     *keys,
			zipfS:    *zipfS,
			payload:  payload,
			rng:      root.Split(),
			rtLat:    rtLat,
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runWorker(cfg)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total workerResult
	for _, r := range results {
		if r.err != nil && total.err == nil {
			total.err = r.err
		}
		total.ops += r.ops
		total.gets += r.gets
		total.hits += r.hits
		total.bytes += r.bytes
	}
	if total.err != nil {
		fatal(total.err)
	}

	opsPerSec := float64(total.ops) / elapsed.Seconds()
	mbPerSec := float64(total.bytes) / (1 << 20) / elapsed.Seconds()
	hitRatio := 0.0
	if total.gets > 0 {
		hitRatio = float64(total.hits) / float64(total.gets)
	}
	fmt.Printf("ran %d ops in %v: %.0f ops/s, %.1f MB/s, hit %.1f%%\n",
		total.ops, elapsed.Round(time.Millisecond), opsPerSec, mbPerSec, 100*hitRatio)
	snap := rtLat.Snapshot()
	fmt.Printf("round-trip latency (per request window of %d): p50=%s p95=%s p99=%s max=%s\n",
		windowOps(*pipeline, *batch), fmtDur(snap.P50), fmtDur(snap.P95), fmtDur(snap.P99), fmtDur(snap.Max))

	if *metrics {
		c, err := kvserver.DialWith(target, dialOpts)
		if err != nil {
			fatal(err)
		}
		defer c.Close()
		text, err := c.Metrics()
		if err != nil {
			fatal(err)
		}
		fmt.Print(text)
	}
}

func windowOps(pipeline, batch int) int {
	if batch > 0 {
		return batch
	}
	return pipeline
}

func fmtDur(seconds float64) time.Duration {
	return time.Duration(seconds * float64(time.Second)).Round(time.Microsecond)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "spiderload:", err)
	os.Exit(1)
}

func key(i int) string { return fmt.Sprintf("load:%08d", i) }

// preloadKeys SETs every key once (MSET batches over one connection) so
// GET traffic starts warm.
func preloadKeys(addr string, dial kvserver.DialOptions, n int, payload []byte) error {
	c, err := kvserver.DialWith(addr, dial)
	if err != nil {
		return err
	}
	defer c.Close()
	const chunk = 512
	keys := make([]string, 0, chunk)
	values := make([][]byte, 0, chunk)
	for i := 0; i < n; i++ {
		keys = append(keys, key(i))
		values = append(values, payload)
		if len(keys) == chunk || i == n-1 {
			if err := c.MSet(keys, values); err != nil {
				return err
			}
			keys, values = keys[:0], values[:0]
		}
	}
	return nil
}

type workerConfig struct {
	addr     string
	dial     kvserver.DialOptions
	ops      int
	pipeline int
	batch    int
	getFrac  float64
	keys     int
	zipfS    float64
	payload  []byte
	rng      *xrand.Rand
	rtLat    *telemetry.Histogram
}

type workerResult struct {
	ops   int
	gets  int
	hits  int
	bytes int64
	err   error
}

// runWorker is one closed-loop connection: it keeps issuing request
// windows (a pipeline of GET/SETs, or one MGET/MSET batch) until its
// operation quota is spent.
func runWorker(cfg workerConfig) workerResult {
	var res workerResult
	c, err := kvserver.DialWith(cfg.addr, cfg.dial)
	if err != nil {
		res.err = err
		return res
	}
	defer c.Close()
	zipf := xrand.NewZipf(cfg.rng, cfg.zipfS, cfg.keys)

	if cfg.batch > 0 {
		runBatchLoop(c, cfg, zipf, &res)
		return res
	}

	p := c.Pipeline()
	for res.ops < cfg.ops {
		window := cfg.pipeline
		if remaining := cfg.ops - res.ops; window > remaining {
			window = remaining
		}
		sets := 0
		for i := 0; i < window; i++ {
			k := key(zipf.Next())
			if cfg.rng.Float64() < cfg.getFrac {
				p.Get(k)
			} else {
				p.Set(k, cfg.payload)
				sets++
			}
		}
		start := time.Now()
		results, err := p.Exec()
		cfg.rtLat.Observe(time.Since(start).Seconds())
		if err != nil {
			res.err = err
			return res
		}
		for _, r := range results {
			if r.Err != nil {
				res.err = r.Err
				return res
			}
			if r.Value != nil {
				res.bytes += int64(len(r.Value))
			}
		}
		res.ops += window
		res.gets += window - sets
		for _, r := range results {
			if r.Found {
				res.hits++
			}
		}
		res.bytes += int64(sets * len(cfg.payload))
	}
	return res
}

// runBatchLoop drives the MGET/MSET verbs: each window is one batch
// command whose keys are all zipf draws.
func runBatchLoop(c *kvserver.Client, cfg workerConfig, zipf *xrand.Zipf, res *workerResult) {
	keys := make([]string, cfg.batch)
	values := make([][]byte, cfg.batch)
	for i := range values {
		values[i] = cfg.payload
	}
	for res.ops < cfg.ops {
		window := cfg.batch
		if remaining := cfg.ops - res.ops; window > remaining {
			window = remaining
		}
		for i := 0; i < window; i++ {
			keys[i] = key(zipf.Next())
		}
		isGet := cfg.rng.Float64() < cfg.getFrac
		start := time.Now()
		if isGet {
			got, found, err := c.MGet(keys[:window]...)
			cfg.rtLat.Observe(time.Since(start).Seconds())
			if err != nil {
				res.err = err
				return
			}
			res.gets += window
			for i := range found {
				if found[i] {
					res.hits++
					res.bytes += int64(len(got[i]))
				}
			}
		} else {
			err := c.MSet(keys[:window], values[:window])
			cfg.rtLat.Observe(time.Since(start).Seconds())
			if err != nil {
				res.err = err
				return
			}
			res.bytes += int64(window * len(cfg.payload))
		}
		res.ops += window
	}
}
