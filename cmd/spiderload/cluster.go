package main

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"time"

	"spidercache/internal/cluster"
	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
	"spidercache/internal/xrand"
)

// clusterParams carries the flag values the cluster path consumes.
type clusterParams struct {
	seeds         []string
	nodes         int
	replicas      int
	conns         int
	valueSz       int
	getFrac       float64
	ngetMix       float64
	ngetThreshold float64
	embedDim      int
	embedClusters int
	keys          int
	zipfS         float64
	ops           int
	preload       bool
	seed          uint64
	timeout       time.Duration
	retries       int
	jsonOut       string
	storeMode     string
	admission     string
}

// loadResult is the JSON summary the -json flag persists, with one schema
// for both the single-node and cluster paths so A/B tooling (BENCH_6.json,
// BENCH_7.json, scripts/bench.sh) can diff runs field-for-field: mode
// tells them apart ("single" vs "cluster"), throughput/latency/hit-rate
// fields mean the same thing in both, and the cluster-only resilience
// counters are simply zero in a single-node run.
type loadResult struct {
	Mode          string   `json:"mode"`
	StoreMode     string   `json:"store_mode"`
	Admission     string   `json:"admission"`
	Nodes         []string `json:"nodes"`
	Replicas      int      `json:"replicas"`
	Ops           int      `json:"ops"`
	ElapsedSec    float64  `json:"elapsed_seconds"`
	OpsPerSec     float64  `json:"ops_per_sec"`
	MBPerSec      float64  `json:"mb_per_sec"`
	HitRatio      float64  `json:"hit_ratio"`
	NGetOps       int      `json:"nget_ops"`
	NGetExact     int      `json:"nget_exact"`
	NGetNear      int      `json:"nget_near"`
	NGetMiss      int      `json:"nget_miss"`
	NGetMeanDist  float64  `json:"nget_mean_dist"`
	P50Ms         float64  `json:"p50_ms"`
	P95Ms         float64  `json:"p95_ms"`
	P99Ms         float64  `json:"p99_ms"`
	MaxMs         float64  `json:"max_ms"`
	ClientErrors  int64    `json:"client_errors"`
	PoolRetries   int64    `json:"pool_retries"`
	Rerouted      int64    `json:"failover_rerouted"`
	Exhausted     int64    `json:"failover_exhausted"`
	NodesAdded    int64    `json:"discovery_added"`
	NodesRemoved  int64    `json:"discovery_removed"`
	FinalNodeSet  []string `json:"final_node_set"`
	FinalHealth   int      `json:"final_serving_nodes"`
	KeysPopulated int      `json:"keys_populated"`
}

// clusterMain drives a ring-aware cluster.Client — against externally
// running spiderkv daemons (-cluster host:port,...), in-process daemons
// it boots itself (-nodes N), or both. Ops are single GET/SETs (the
// cluster client routes per key, so windows don't pipeline); resilience
// comes from the client's per-node retries, breaker-gated failover and
// gossip discovery. Returns the process exit code: non-zero when any
// error reached a worker, because the whole point of a replicated cluster
// is that none do.
func clusterMain(p clusterParams) int {
	seeds := append([]string(nil), p.seeds...)
	var local []*cluster.Node
	defer func() {
		for _, n := range local {
			//lint:ignore errcheck best-effort teardown at process exit
			n.Close()
		}
	}()
	if p.nodes > 0 {
		cfg := kvserver.DefaultConfig()
		cfg.Timeout = p.timeout
		cfg.Retries = p.retries
		if p.storeMode != "" {
			cfg.StoreMode = p.storeMode
		}
		if p.admission != "" {
			cfg.Admission = p.admission
		}
		for i := 0; i < p.nodes; i++ {
			opts := cluster.NodeOptions{
				Listen:      "127.0.0.1:0",
				Replicas:    p.replicas,
				Store:       cfg,
				GossipEvery: 100 * time.Millisecond,
			}
			if len(local) > 0 {
				opts.Seeds = []string{local[0].Addr()}
			}
			n, err := cluster.StartNode(opts)
			if err != nil {
				fmt.Fprintln(os.Stderr, "spiderload: start node:", err)
				return 1
			}
			local = append(local, n)
			seeds = append(seeds, n.Addr())
		}
		fmt.Printf("booted %d in-process daemons: %s\n", p.nodes, strings.Join(seeds[len(seeds)-p.nodes:], ", "))
	}

	reg := telemetry.NewRegistry()
	client, err := cluster.New(
		cluster.WithSeeds(seeds...),
		cluster.WithReplicas(p.replicas),
		cluster.WithPoolSize(p.conns),
		cluster.WithDial(kvserver.DialOptions{DialTimeout: p.timeout, ReadTimeout: p.timeout, WriteTimeout: p.timeout}),
		cluster.WithRetry(kvserver.RetryOptions{Attempts: p.retries, Seed: p.seed}),
		cluster.WithBreaker(kvserver.BreakerOptions{}),
		cluster.WithDiscovery(250*time.Millisecond),
		cluster.WithMetrics(reg),
	)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spiderload:", err)
		return 1
	}
	defer client.Close()

	fmt.Printf("spiderload cluster: seeds=%s replicas=%d conns=%d value=%dB get=%.2f keys=%d zipf=%.2f ops=%d\n",
		strings.Join(seeds, ","), p.replicas, p.conns, p.valueSz, p.getFrac, p.keys, p.zipfS, p.ops)

	payload := make([]byte, p.valueSz)
	for i := range payload {
		payload[i] = byte('a' + i%26)
	}

	var embs [][]float32
	if p.ngetMix > 0 {
		embs = buildEmbeddings(p.seed, p.keys, p.embedDim, p.embedClusters)
		fmt.Printf("nget mix: %.2f threshold=%.2f dim=%d clusters=%d\n",
			p.ngetMix, p.ngetThreshold, p.embedDim, p.embedClusters)
	}

	if p.preload {
		start := time.Now()
		if n := preloadCluster(client, p.keys, p.conns, payload, embs); n > 0 {
			fmt.Fprintf(os.Stderr, "spiderload: preload: %d keys failed\n", n)
			return 1
		}
		fmt.Printf("preloaded %d keys in %v\n", p.keys, time.Since(start).Round(time.Millisecond))
	}

	rtLat := newRTHistogram(reg)

	root := xrand.New(p.seed)
	results := make([]clusterWorkerResult, p.conns)
	var wg sync.WaitGroup
	opsPer := p.ops / p.conns
	start := time.Now()
	for w := 0; w < p.conns; w++ {
		cfg := clusterWorkerConfig{
			client:    client,
			ops:       opsPer,
			getFrac:   p.getFrac,
			ngetMix:   p.ngetMix,
			threshold: p.ngetThreshold,
			embs:      embs,
			keys:      p.keys,
			zipfS:     p.zipfS,
			payload:   payload,
			rng:       root.Split(),
			rtLat:     rtLat,
		}
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			results[w] = runClusterWorker(cfg)
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	var total clusterWorkerResult
	for _, r := range results {
		total.add(r.loadTotals)
		total.errors += r.errors
		if r.lastErr != nil {
			total.lastErr = r.lastErr
		}
	}

	snap := rtLat.Snapshot()
	counters := reg.Snapshot().Counters
	var poolRetries int64
	for name, v := range counters {
		if strings.HasPrefix(name, "kv_retries_total{") {
			poolRetries += v
		}
	}
	health := client.Health()
	serving := 0
	for _, h := range health {
		if h.Serving {
			serving++
		}
	}
	res := loadResult{
		Mode:          "cluster",
		StoreMode:     orDefault(p.storeMode, kvserver.StoreModeMutex),
		Admission:     orDefault(p.admission, kvserver.AdmissionNone),
		Nodes:         seeds,
		Replicas:      p.replicas,
		P50Ms:         snap.P50 * 1000,
		P95Ms:         snap.P95 * 1000,
		P99Ms:         snap.P99 * 1000,
		MaxMs:         snap.Max * 1000,
		ClientErrors:  total.errors,
		PoolRetries:   poolRetries,
		Rerouted:      counters[`kv_failover_total{result="rerouted"}`],
		Exhausted:     counters[`kv_failover_total{result="exhausted"}`],
		NodesAdded:    counters[`cluster_discovery_total{result="added"}`],
		NodesRemoved:  counters[`cluster_discovery_total{result="removed"}`],
		FinalNodeSet:  client.Nodes(),
		FinalHealth:   serving,
		KeysPopulated: p.keys,
	}
	res.fillTotals(total.loadTotals, elapsed.Seconds())

	fmt.Printf("ran %d ops in %v: %.0f ops/s, %.1f MB/s, hit %.1f%%\n",
		total.ops, elapsed.Round(time.Millisecond), res.OpsPerSec, res.MBPerSec, 100*res.HitRatio)
	if res.NGetOps > 0 {
		fmt.Printf("nget: %d ops (exact=%d near=%d miss=%d), mean near dist=%.4f\n",
			res.NGetOps, res.NGetExact, res.NGetNear, res.NGetMiss, res.NGetMeanDist)
	}
	fmt.Printf("per-op latency: p50=%s p95=%s p99=%s max=%s\n",
		fmtDur(snap.P50), fmtDur(snap.P95), fmtDur(snap.P99), fmtDur(snap.Max))
	fmt.Printf("resilience: client errors=%d, pool retries=%d, failover rerouted=%d exhausted=%d, discovery +%d/-%d, final nodes=%d (%d serving)\n",
		total.errors, poolRetries, res.Rerouted, res.Exhausted, res.NodesAdded, res.NodesRemoved, len(res.FinalNodeSet), serving)

	if p.jsonOut != "" {
		if err := writeJSON(p.jsonOut, res); err != nil {
			fmt.Fprintln(os.Stderr, "spiderload:", err)
			return 1
		}
		fmt.Printf("wrote %s\n", p.jsonOut)
	}
	if total.errors > 0 {
		fmt.Fprintf(os.Stderr, "spiderload: %d client-visible errors (last: %v)\n", total.errors, total.lastErr)
		return 3
	}
	return 0
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}

func writeJSON(path string, v any) error {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// preloadCluster SETs every key once through the cluster client, fanned
// over `conns` goroutines; returns how many keys failed to land. With
// embeddings present each key's embedding is ESET too, so every owner's
// semantic index is warm before measurement.
func preloadCluster(client *cluster.Client, keys, conns int, payload []byte, embs [][]float32) int {
	var wg sync.WaitGroup
	fails := make([]int, conns)
	per := (keys + conns - 1) / conns
	for w := 0; w < conns; w++ {
		lo, hi := w*per, (w+1)*per
		if hi > keys {
			hi = keys
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for id := lo; id < hi; id++ {
				if err := client.Set(id, payload); err != nil {
					fails[w]++
					continue
				}
				if embs != nil {
					if err := client.ESet(id, embs[id]); err != nil {
						fails[w]++
					}
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0
	for _, f := range fails {
		total += f
	}
	return total
}

type clusterWorkerConfig struct {
	client    *cluster.Client
	ops       int
	getFrac   float64
	ngetMix   float64
	threshold float64
	embs      [][]float32 // per-key embeddings; nil disables NGETs
	keys      int
	zipfS     float64
	payload   []byte
	rng       *xrand.Rand
	rtLat     *telemetry.Histogram
}

type clusterWorkerResult struct {
	loadTotals
	errors  int64
	lastErr error
}

// runClusterWorker is one closed-loop lane of single-key ops through the
// cluster client. Errors are counted, not fatal: the run's verdict is the
// final error count (zero on a healthy cluster, even through a node
// kill), and stopping at the first error would understate the damage.
func runClusterWorker(cfg clusterWorkerConfig) clusterWorkerResult {
	var res clusterWorkerResult
	zipf := xrand.NewZipf(cfg.rng, cfg.zipfS, cfg.keys)
	for res.ops < cfg.ops {
		id := zipf.Next()
		start := time.Now()
		switch {
		case cfg.rng.Float64() >= cfg.getFrac:
			err := cfg.client.Set(id, cfg.payload)
			cfg.rtLat.Observe(time.Since(start).Seconds())
			if err != nil {
				res.errors++
				res.lastErr = err
			} else {
				res.bytes += int64(len(cfg.payload))
			}
		case cfg.embs != nil && cfg.rng.Float64() < cfg.ngetMix:
			v, near, found, err := cfg.client.NGet(id, cfg.embs[id], cfg.threshold)
			cfg.rtLat.Observe(time.Since(start).Seconds())
			res.ngets++
			switch {
			case err != nil:
				res.errors++
				res.lastErr = err
				res.ngetMiss++
			case near != nil:
				res.ngetNear++
				res.ngetDist += near.Dist
				res.bytes += int64(len(v))
			case found:
				res.ngetExact++
				res.bytes += int64(len(v))
			default:
				res.ngetMiss++
			}
		default:
			v, found, err := cfg.client.Get(id)
			cfg.rtLat.Observe(time.Since(start).Seconds())
			res.gets++
			if err != nil {
				res.errors++
				res.lastErr = err
			} else if found {
				res.hits++
				res.bytes += int64(len(v))
			}
		}
		res.ops++
	}
	return res
}
