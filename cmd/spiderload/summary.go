package main

import (
	"math"

	"spidercache/internal/xrand"
)

// loadTotals is the raw volume a run accumulated, summed across workers.
// Both the single-node path (workerResult) and the cluster path
// (clusterWorkerResult) embed it so one summarizer serves both.
type loadTotals struct {
	ops       int
	gets      int // exact GETs only; NGETs are counted separately
	hits      int
	bytes     int64
	ngets     int
	ngetExact int
	ngetNear  int
	ngetMiss  int
	ngetDist  float64 // sum of NEAR distances, for the mean
}

// add folds another worker's totals into t.
func (t *loadTotals) add(o loadTotals) {
	t.ops += o.ops
	t.gets += o.gets
	t.hits += o.hits
	t.bytes += o.bytes
	t.ngets += o.ngets
	t.ngetExact += o.ngetExact
	t.ngetNear += o.ngetNear
	t.ngetMiss += o.ngetMiss
	t.ngetDist += o.ngetDist
}

// fillTotals populates the volume-derived fields of a loadResult from the
// aggregated worker totals. Every division is guarded: a run with zero
// GETs (-get 0, or -nget-mix 1 which turns all reads into NGETs) must
// report a 0.0 hit ratio rather than NaN — NaN is not valid JSON, so one
// unguarded division would make the -json file unparsable and poison any
// A/B diff built on it. Same for the mean NEAR distance when no NGET was
// answered semantically.
func (res *loadResult) fillTotals(t loadTotals, elapsedSec float64) {
	res.Ops = t.ops
	res.ElapsedSec = elapsedSec
	res.OpsPerSec = ratio(float64(t.ops), elapsedSec)
	res.MBPerSec = ratio(float64(t.bytes)/(1<<20), elapsedSec)
	res.HitRatio = ratio(float64(t.hits), float64(t.gets))
	res.NGetOps = t.ngets
	res.NGetExact = t.ngetExact
	res.NGetNear = t.ngetNear
	res.NGetMiss = t.ngetMiss
	res.NGetMeanDist = ratio(t.ngetDist, float64(t.ngetNear))
}

// ratio is num/den with a 0.0 (not NaN/Inf) result for an empty or
// degenerate denominator.
func ratio(num, den float64) float64 {
	if den <= 0 || math.IsNaN(den) {
		return 0
	}
	return num / den
}

// buildEmbeddings returns one unit-norm embedding per key, drawn from
// `clusters` independent random centroids plus small within-cluster
// noise; key i belongs to cluster i%clusters. This makes the key space
// genuinely clustered in embedding space: same-cluster keys sit at a
// cosine distance of a few hundredths of each other while cross-cluster
// pairs are near-orthogonal (cosine distance ≈ 1), so an NGET threshold
// in between serves only true semantic neighbors.
func buildEmbeddings(seed uint64, n, dim, clusters int) [][]float32 {
	rng := xrand.New(seed ^ 0x9e3779b97f4a7c15)
	if clusters > n {
		clusters = n
	}
	cents := make([][]float64, clusters)
	for c := range cents {
		cents[c] = randUnitVec(rng, dim)
	}
	const noise = 0.08 // std-dev per component around the centroid
	out := make([][]float32, n)
	v := make([]float64, dim)
	for k := range out {
		cent := cents[k%clusters]
		for i := range v {
			v[i] = cent[i] + noise*rng.NormFloat64()
		}
		normalizeVec(v)
		emb := make([]float32, dim)
		for i := range v {
			emb[i] = float32(v[i])
		}
		out[k] = emb
	}
	return out
}

func randUnitVec(rng *xrand.Rand, dim int) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	normalizeVec(v)
	return v
}

func normalizeVec(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n == 0 {
		v[0] = 1 // degenerate draw; any unit vector will do
		return
	}
	for i := range v {
		v[i] /= n
	}
}
