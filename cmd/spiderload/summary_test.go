package main

import (
	"encoding/json"
	"math"
	"testing"
)

// A workload with zero GETs (-get 0, or -nget-mix 1) must summarize to a
// 0.0 hit ratio, not NaN: NaN is not valid JSON, so the -json file would
// be unparsable.
func TestFillTotalsZeroGets(t *testing.T) {
	var res loadResult
	res.fillTotals(loadTotals{ops: 100, gets: 0, hits: 0, bytes: 1 << 20}, 2)
	if math.IsNaN(res.HitRatio) || res.HitRatio != 0 {
		t.Fatalf("HitRatio = %v, want 0", res.HitRatio)
	}
	if res.OpsPerSec != 50 {
		t.Fatalf("OpsPerSec = %v, want 50", res.OpsPerSec)
	}
	if res.MBPerSec != 0.5 {
		t.Fatalf("MBPerSec = %v, want 0.5", res.MBPerSec)
	}
	if res.NGetMeanDist != 0 {
		t.Fatalf("NGetMeanDist = %v, want 0 with no near hits", res.NGetMeanDist)
	}
	// The whole summary must serialize to valid JSON.
	if _, err := json.Marshal(res); err != nil {
		t.Fatalf("marshal: %v", err)
	}
}

func TestFillTotalsRatios(t *testing.T) {
	var res loadResult
	res.fillTotals(loadTotals{
		ops: 200, gets: 80, hits: 60, bytes: 4 << 20,
		ngets: 40, ngetExact: 10, ngetNear: 20, ngetMiss: 10, ngetDist: 5,
	}, 4)
	if res.HitRatio != 0.75 {
		t.Fatalf("HitRatio = %v, want 0.75", res.HitRatio)
	}
	if res.NGetMeanDist != 0.25 {
		t.Fatalf("NGetMeanDist = %v, want 0.25", res.NGetMeanDist)
	}
	if res.NGetOps != 40 || res.NGetExact != 10 || res.NGetNear != 20 || res.NGetMiss != 10 {
		t.Fatalf("nget counters = %d/%d/%d/%d", res.NGetOps, res.NGetExact, res.NGetNear, res.NGetMiss)
	}
}

// Degenerate denominators (zero elapsed time, zero of everything) must
// never produce NaN or Inf in any derived field.
func TestFillTotalsDegenerate(t *testing.T) {
	var res loadResult
	res.fillTotals(loadTotals{}, 0)
	for name, v := range map[string]float64{
		"OpsPerSec":    res.OpsPerSec,
		"MBPerSec":     res.MBPerSec,
		"HitRatio":     res.HitRatio,
		"NGetMeanDist": res.NGetMeanDist,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("%s = %v, want finite", name, v)
		}
	}
}

// Embeddings must be unit-norm and genuinely clustered: same-cluster
// keys close in cosine distance, cross-cluster keys near-orthogonal.
func TestBuildEmbeddings(t *testing.T) {
	const n, dim, clusters = 256, 16, 8
	embs := buildEmbeddings(7, n, dim, clusters)
	if len(embs) != n {
		t.Fatalf("got %d embeddings, want %d", len(embs), n)
	}
	cos := func(a, b []float32) float64 {
		var dot float64
		for i := range a {
			dot += float64(a[i]) * float64(b[i])
		}
		return 1 - dot
	}
	for i, e := range embs {
		var norm float64
		for _, x := range e {
			norm += float64(x) * float64(x)
		}
		if math.Abs(norm-1) > 1e-3 {
			t.Fatalf("embedding %d has norm² %v, want 1", i, norm)
		}
	}
	// Key i is in cluster i%clusters: i and i+clusters are same-cluster,
	// i and i+1 are different clusters.
	var same, cross float64
	pairs := 0
	for i := 0; i+clusters < n; i += clusters {
		same += cos(embs[i], embs[i+clusters])
		cross += cos(embs[i], embs[i+1])
		pairs++
	}
	same /= float64(pairs)
	cross /= float64(pairs)
	if same > 0.2 {
		t.Fatalf("mean same-cluster cosine distance %v, want < 0.2", same)
	}
	if cross < 0.5 {
		t.Fatalf("mean cross-cluster cosine distance %v, want > 0.5", cross)
	}
}
