package main

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"spidercache/internal/hnsw"
	"spidercache/internal/semgraph"
	"spidercache/internal/xrand"
)

// Workload shape for the snapshot A/B: a repeated-epoch scoring loop where
// each sample's embedding moves by a small jitter between visits — an order
// of magnitude inside the default drift budget, the regime the snapshot
// cache is designed for.
const (
	abSamples = 2048
	abDim     = 16
	abBatch   = 64
	abJitter  = 0.003
)

type snapshotABArm struct {
	Drift            float64 `json:"drift"`
	NsPerOp          float64 `json:"ns_per_op"`
	SearchKNNPerOp   float64 `json:"searchknn_per_batch"`
	SearchKNNPerEp   float64 `json:"searchknn_per_epoch"`
	SnapshotHitRate  float64 `json:"snapshot_hit_rate"`
	SnapshotBytes    int64   `json:"snapshot_bytes"`
	BatchesPerSecond float64 `json:"batches_per_second"`
}

type snapshotABReport struct {
	Workload struct {
		Samples int     `json:"samples"`
		Dim     int     `json:"dim"`
		Batch   int     `json:"batch"`
		Jitter  float64 `json:"jitter"`
	} `json:"workload"`
	Off             snapshotABArm `json:"off"`
	On              snapshotABArm `json:"on"`
	Speedup         float64       `json:"speedup"`
	SearchReduction float64       `json:"search_reduction"`
}

// runSnapshotAB benchmarks ScoreBatch with snapshots off vs on (at the
// default drift budget) and writes the comparison to path as JSON. The two
// arms run the identical embedding stream; only the drift budget differs.
func runSnapshotAB(path string) error {
	off, err := benchSnapshotArm(0)
	if err != nil {
		return err
	}
	on, err := benchSnapshotArm(semgraph.DefaultSnapshotDrift)
	if err != nil {
		return err
	}
	var rep snapshotABReport
	rep.Workload.Samples = abSamples
	rep.Workload.Dim = abDim
	rep.Workload.Batch = abBatch
	rep.Workload.Jitter = abJitter
	rep.Off = off
	rep.On = on
	if on.NsPerOp > 0 {
		rep.Speedup = off.NsPerOp / on.NsPerOp
	}
	if on.SearchKNNPerEp > 0 {
		rep.SearchReduction = off.SearchKNNPerEp / on.SearchKNNPerEp
	} else {
		rep.SearchReduction = off.SearchKNNPerEp // zero on-arm searches: reduction is unbounded, report the saved volume
	}
	buf, err := json.MarshalIndent(&rep, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		return err
	}
	fmt.Printf("snapshot A/B: off %.0f ns/op (%.1f searches/batch), on %.0f ns/op (%.1f searches/batch, hit rate %.1f%%)\n",
		off.NsPerOp, off.SearchKNNPerOp, on.NsPerOp, on.SearchKNNPerOp, on.SnapshotHitRate*100)
	fmt.Printf("wrote %s\n", path)
	return nil
}

// benchSnapshotArm measures one arm via testing.Benchmark so iteration
// counts self-calibrate exactly like `go test -bench`.
func benchSnapshotArm(drift float64) (snapshotABArm, error) {
	arm := snapshotABArm{Drift: drift}
	var armErr error
	res := testing.Benchmark(func(b *testing.B) {
		labels := make([]int, abSamples)
		for i := range labels {
			labels[i] = i % 10
		}
		ix, err := hnsw.New(hnsw.DefaultConfig())
		if err != nil {
			armErr = err
			b.Skip()
		}
		cfg := semgraph.DefaultConfig()
		cfg.SnapshotDrift = drift
		g, err := semgraph.New(cfg, labels, ix)
		if err != nil {
			armErr = err
			b.Skip()
		}
		rng := xrand.New(4)
		base := make([][]float64, abSamples)
		ids := make([]int, abSamples)
		for id := 0; id < abSamples; id++ {
			ids[id] = id
			v := make([]float64, abDim)
			for d := range v {
				v[d] = rng.NormFloat64() * 0.05
			}
			v[labels[id]%abDim] += 1
			base[id] = v
		}
		// Warm pass: populate the index (and snapshots when enabled).
		if _, err := g.ScoreBatch(ids, base); err != nil {
			armErr = err
			b.Skip()
		}
		batchIDs := make([]int, abBatch)
		embs := make([][]float64, abBatch)
		for i := range embs {
			embs[i] = make([]float64, abDim)
		}
		startSearches := g.SearchCalls()
		startStats := g.SnapshotStats()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < abBatch; j++ {
				id := (i*abBatch + j) % abSamples
				batchIDs[j] = id
				for d := 0; d < abDim; d++ {
					embs[j][d] = base[id][d] + rng.NormFloat64()*abJitter
				}
			}
			if _, err := g.ScoreBatch(batchIDs, embs); err != nil {
				armErr = err
				b.Skip()
			}
		}
		b.StopTimer()
		searches := g.SearchCalls() - startSearches
		stats := g.SnapshotStats()
		hits := stats.Hits - startStats.Hits
		refreshes := stats.Refreshes - startStats.Refreshes
		arm.SearchKNNPerOp = float64(searches) / float64(b.N)
		arm.SearchKNNPerEp = float64(searches) * abSamples / float64(b.N*abBatch)
		if hits+refreshes > 0 {
			arm.SnapshotHitRate = float64(hits) / float64(hits+refreshes)
		}
		arm.SnapshotBytes = stats.Bytes
	})
	if armErr != nil {
		return arm, armErr
	}
	arm.NsPerOp = float64(res.NsPerOp())
	if res.NsPerOp() > 0 {
		arm.BatchesPerSecond = 1e9 / float64(res.NsPerOp())
	}
	return arm, nil
}
