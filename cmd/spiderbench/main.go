// Command spiderbench regenerates the paper's tables and figures.
//
// Usage:
//
//	spiderbench -exp table4                # one experiment, paper defaults
//	spiderbench -exp all -scale 0.5        # full suite at half scale
//	spiderbench -exp fig14 -format csv     # machine-readable output
//	spiderbench -exp table3 -metrics       # telemetry snapshot after the runs
//	spiderbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spidercache"
	"spidercache/internal/experiments"
	"spidercache/internal/telemetry"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale   = flag.Float64("scale", 1.0, "dataset size multiplier")
		epochs  = flag.Int("epochs", 0, "override each experiment's default epoch count (0 = defaults)")
		seed    = flag.Uint64("seed", 42, "random seed")
		threads = flag.Int("threads", 0, "CPU threads for tensor kernels and batch scoring (0 = all cores, 1 = serial)")
		format  = flag.String("format", "text", "output format: text or csv")
		csv     = flag.Bool("csv", false, "emit CSV instead of tables (deprecated: use -format csv)")
		outDir  = flag.String("out", "", "also write each experiment's CSV to <dir>/<id>.csv")
		list    = flag.Bool("list", false, "list experiment ids and exit")
		metrics = flag.Bool("metrics", false, "print the aggregated telemetry snapshot (Prometheus text) at exit")
		snapAB  = flag.String("snapshot-ab", "", "run the snapshot-off vs snapshot-on scoring A/B and write the JSON comparison to this file, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(spidercache.Experiments(), "\n"))
		return
	}
	if *snapAB != "" {
		if err := runSnapshotAB(*snapAB); err != nil {
			fatal("snapshot-ab", err)
		}
		return
	}
	outFormat, err := spidercache.ParseFormat(*format)
	if err != nil {
		fatal("", err)
	}
	if *csv {
		outFormat = spidercache.FormatCSV
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal("", err)
		}
	}
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.NewRegistry()
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = spidercache.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := experiments.Run(id, experiments.Options{
			Scale: *scale, EpochOverride: *epochs, Seed: *seed, Metrics: reg, Threads: *threads,
		})
		if err != nil {
			fatal(id, err)
		}
		if outFormat == spidercache.FormatCSV {
			fmt.Print(rep.CSV())
		} else {
			fmt.Print(rep.String())
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, rep.ID+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fatal(id, err)
			}
		}
	}
	if *metrics {
		fmt.Println("--- telemetry snapshot (Prometheus text exposition) ---")
		if err := reg.WritePrometheus(os.Stdout); err != nil {
			fatal("", err)
		}
	}
}

func fatal(id string, err error) {
	if id != "" {
		fmt.Fprintf(os.Stderr, "spiderbench: %s: %v\n", id, err)
	} else {
		fmt.Fprintf(os.Stderr, "spiderbench: %v\n", err)
	}
	os.Exit(1)
}
