// Command spiderbench regenerates the paper's tables and figures.
//
// Usage:
//
//	spiderbench -exp table4                # one experiment, paper defaults
//	spiderbench -exp all -scale 0.5        # full suite at half scale
//	spiderbench -exp fig14 -csv            # machine-readable output
//	spiderbench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"spidercache"
)

func main() {
	var (
		exp    = flag.String("exp", "all", "experiment id (see -list) or 'all'")
		scale  = flag.Float64("scale", 1.0, "dataset size multiplier")
		epochs = flag.Int("epochs", 0, "override each experiment's default epoch count (0 = defaults)")
		seed   = flag.Uint64("seed", 42, "random seed")
		csv    = flag.Bool("csv", false, "emit CSV instead of tables")
		outDir = flag.String("out", "", "also write each experiment's CSV to <dir>/<id>.csv")
		list   = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(spidercache.Experiments(), "\n"))
		return
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal("", err)
		}
	}

	ids := []string{*exp}
	if *exp == "all" {
		ids = spidercache.Experiments()
	}
	for _, id := range ids {
		start := time.Now()
		rep, err := spidercache.GetExperiment(id, *scale, *epochs, *seed)
		if err != nil {
			fatal(id, err)
		}
		if *csv {
			fmt.Print(rep.CSV())
		} else {
			fmt.Print(rep.Text())
			fmt.Printf("[%s completed in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
		}
		if *outDir != "" {
			path := filepath.Join(*outDir, rep.ID()+".csv")
			if err := os.WriteFile(path, []byte(rep.CSV()), 0o644); err != nil {
				fatal(id, err)
			}
		}
	}
}

func fatal(id string, err error) {
	if id != "" {
		fmt.Fprintf(os.Stderr, "spiderbench: %s: %v\n", id, err)
	} else {
		fmt.Fprintf(os.Stderr, "spiderbench: %v\n", err)
	}
	os.Exit(1)
}
