package main

import (
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"spidercache/internal/lint"
)

// writeTempModule lays a tiny module on disk and returns its root.
func writeTempModule(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpmod\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

// runCapture invokes run() with stdout captured to a file.
func runCapture(t *testing.T, args []string) (int, string) {
	t.Helper()
	out, err := os.CreateTemp(t.TempDir(), "out")
	if err != nil {
		t.Fatal(err)
	}
	defer out.Close()
	code := run(args, out, os.Stderr)
	data, err := os.ReadFile(out.Name())
	if err != nil {
		t.Fatal(err)
	}
	return code, string(data)
}

// TestJSONOutput drives run() end to end: findings must arrive as a JSON
// array of {file, line, col, check, message} with exit 1, and a clean
// module must print an empty array (not null) with exit 0, so CI can diff
// results across runs without special-casing.
func TestJSONOutput(t *testing.T) {
	dirty := writeTempModule(t, `package main

import "sync"

var mu sync.Mutex

func leak() {
	mu.Lock()
}

func main() {}
`)
	code, out := runCapture(t, []string{"-json", "-C", dirty, "-checks", "mutexhygiene"})
	if code != 1 {
		t.Fatalf("dirty module: exit %d, want 1; output:\n%s", code, out)
	}
	var findings []struct {
		File    string `json:"file"`
		Line    int    `json:"line"`
		Col     int    `json:"col"`
		Check   string `json:"check"`
		Message string `json:"message"`
	}
	if err := json.Unmarshal([]byte(out), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out)
	}
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1:\n%s", len(findings), out)
	}
	f := findings[0]
	if f.Check != "mutexhygiene" || f.Line != 8 || f.Col == 0 ||
		!strings.HasSuffix(f.File, "main.go") || !strings.Contains(f.Message, "never released") {
		t.Errorf("unexpected finding: %+v", f)
	}

	clean := writeTempModule(t, "package main\n\nfunc main() {}\n")
	code, out = runCapture(t, []string{"-json", "-C", clean})
	if code != 0 {
		t.Fatalf("clean module: exit %d, want 0; output:\n%s", code, out)
	}
	if strings.TrimSpace(out) != "[]" {
		t.Errorf("clean module output = %q, want empty JSON array", out)
	}
}

func TestSelectChecks(t *testing.T) {
	all := lint.CheckNames()

	got, err := selectChecks("", "")
	if err != nil || len(got) != len(all) {
		t.Fatalf("default selection = %d checks (%v), want all %d", len(got), err, len(all))
	}

	got, err = selectChecks("determinism,errcheck", "")
	if err != nil || len(got) != 2 || got[0].Name != "determinism" || got[1].Name != "errcheck" {
		t.Fatalf("-checks selection = %v (%v)", names(got), err)
	}

	got, err = selectChecks("", "errcheck")
	if err != nil {
		t.Fatalf("-disable: %v", err)
	}
	for _, c := range got {
		if c.Name == "errcheck" {
			t.Fatal("-disable errcheck left errcheck enabled")
		}
	}
	if len(got) != len(all)-1 {
		t.Fatalf("-disable errcheck kept %d checks, want %d", len(got), len(all)-1)
	}

	if _, err = selectChecks("nosuch", ""); err == nil || !strings.Contains(err.Error(), "unknown check") {
		t.Fatalf("unknown -checks name: err = %v", err)
	}
	if _, err = selectChecks("determinism", "determinism"); err == nil {
		t.Fatal("enabling and disabling the only check must error, not run nothing")
	}
}

func names(cs []*lint.Check) []string {
	var out []string
	for _, c := range cs {
		out = append(out, c.Name)
	}
	return out
}

func TestFilterByPatterns(t *testing.T) {
	m := &lint.Module{Path: "spidercache", Dir: "/repo"}
	diag := func(file string) lint.Diagnostic {
		return lint.Diagnostic{Pos: token.Position{Filename: file, Line: 1}, Check: "x", Message: "m"}
	}
	diags := []lint.Diagnostic{
		diag("/repo/internal/kvserver/server.go"),
		diag("/repo/internal/kvserver/deep/extra.go"),
		diag("/repo/internal/tensor/matmul.go"),
		diag("/repo/main.go"),
	}

	if got := filterByPatterns(m, diags, nil); len(got) != 4 {
		t.Errorf("no patterns: kept %d, want 4", len(got))
	}
	if got := filterByPatterns(m, diags, []string{"./..."}); len(got) != 4 {
		t.Errorf("./...: kept %d, want 4", len(got))
	}
	if got := filterByPatterns(m, diags, []string{"./internal/kvserver"}); len(got) != 1 {
		t.Errorf("./internal/kvserver: kept %d, want 1", len(got))
	}
	if got := filterByPatterns(m, diags, []string{"./internal/kvserver/..."}); len(got) != 2 {
		t.Errorf("./internal/kvserver/...: kept %d, want 2", len(got))
	}
	if got := filterByPatterns(m, diags, []string{"internal/tensor", "./internal/kvserver"}); len(got) != 2 {
		t.Errorf("two patterns: kept %d, want 2", len(got))
	}
}
