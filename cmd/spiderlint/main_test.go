package main

import (
	"go/token"
	"strings"
	"testing"

	"spidercache/internal/lint"
)

func TestSelectChecks(t *testing.T) {
	all := lint.CheckNames()

	got, err := selectChecks("", "")
	if err != nil || len(got) != len(all) {
		t.Fatalf("default selection = %d checks (%v), want all %d", len(got), err, len(all))
	}

	got, err = selectChecks("determinism,errcheck", "")
	if err != nil || len(got) != 2 || got[0].Name != "determinism" || got[1].Name != "errcheck" {
		t.Fatalf("-checks selection = %v (%v)", names(got), err)
	}

	got, err = selectChecks("", "errcheck")
	if err != nil {
		t.Fatalf("-disable: %v", err)
	}
	for _, c := range got {
		if c.Name == "errcheck" {
			t.Fatal("-disable errcheck left errcheck enabled")
		}
	}
	if len(got) != len(all)-1 {
		t.Fatalf("-disable errcheck kept %d checks, want %d", len(got), len(all)-1)
	}

	if _, err = selectChecks("nosuch", ""); err == nil || !strings.Contains(err.Error(), "unknown check") {
		t.Fatalf("unknown -checks name: err = %v", err)
	}
	if _, err = selectChecks("determinism", "determinism"); err == nil {
		t.Fatal("enabling and disabling the only check must error, not run nothing")
	}
}

func names(cs []*lint.Check) []string {
	var out []string
	for _, c := range cs {
		out = append(out, c.Name)
	}
	return out
}

func TestFilterByPatterns(t *testing.T) {
	m := &lint.Module{Path: "spidercache", Dir: "/repo"}
	diag := func(file string) lint.Diagnostic {
		return lint.Diagnostic{Pos: token.Position{Filename: file, Line: 1}, Check: "x", Message: "m"}
	}
	diags := []lint.Diagnostic{
		diag("/repo/internal/kvserver/server.go"),
		diag("/repo/internal/kvserver/deep/extra.go"),
		diag("/repo/internal/tensor/matmul.go"),
		diag("/repo/main.go"),
	}

	if got := filterByPatterns(m, diags, nil); len(got) != 4 {
		t.Errorf("no patterns: kept %d, want 4", len(got))
	}
	if got := filterByPatterns(m, diags, []string{"./..."}); len(got) != 4 {
		t.Errorf("./...: kept %d, want 4", len(got))
	}
	if got := filterByPatterns(m, diags, []string{"./internal/kvserver"}); len(got) != 1 {
		t.Errorf("./internal/kvserver: kept %d, want 1", len(got))
	}
	if got := filterByPatterns(m, diags, []string{"./internal/kvserver/..."}); len(got) != 2 {
		t.Errorf("./internal/kvserver/...: kept %d, want 2", len(got))
	}
	if got := filterByPatterns(m, diags, []string{"internal/tensor", "./internal/kvserver"}); len(got) != 2 {
		t.Errorf("two patterns: kept %d, want 2", len(got))
	}
}
