// Command spiderlint runs the repository's project-specific static
// analysis suite (internal/lint) over the module: determinism, mutex
// hygiene, protocol-string, metric-name and unchecked-write checks, all
// built on the standard library's go/parser + go/types with the source
// importer — no external tooling, works offline.
//
// Usage:
//
//	go run ./cmd/spiderlint ./...                 # whole module (the tier-1 gate)
//	go run ./cmd/spiderlint ./internal/kvserver   # one package
//	go run ./cmd/spiderlint -checks determinism,mutexhygiene ./...
//	go run ./cmd/spiderlint -disable errcheck ./...
//	go run ./cmd/spiderlint -json ./...           # machine-readable findings
//	go run ./cmd/spiderlint -list
//
// Findings print as file:line:col: [check] message, or with -json as a
// JSON array of {file, line, col, check, message} objects (always an
// array, `[]` when clean, so CI can diff results across runs). Exit
// status: 0 clean, 1 findings, 2 load or usage failure. Suppress an
// intentional finding in place with `//lint:ignore <check> <reason>` on,
// or directly above, the flagged line.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"spidercache/internal/lint"
)

// jsonFinding is the -json wire shape of one diagnostic.
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Check   string `json:"check"`
	Message string `json:"message"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("spiderlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		checksFlag  = fs.String("checks", "", "comma-separated checks to run (default: all)")
		disableFlag = fs.String("disable", "", "comma-separated checks to skip")
		jsonFlag    = fs.Bool("json", false, "emit findings as a JSON array instead of text")
		listFlag    = fs.Bool("list", false, "list available checks and exit")
		dirFlag     = fs.String("C", "", "module root (default: locate go.mod from the working directory)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: spiderlint [flags] [packages]\n\npackages are ./... (default), ./path/dir or import-path suffixes\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *listFlag {
		for _, c := range lint.Checks() {
			fmt.Fprintf(stdout, "%-14s %s\n", c.Name, c.Doc)
		}
		return 0
	}

	checks, err := selectChecks(*checksFlag, *disableFlag)
	if err != nil {
		fmt.Fprintln(stderr, "spiderlint:", err)
		return 2
	}

	root := *dirFlag
	if root == "" {
		root, err = findModuleRoot()
		if err != nil {
			fmt.Fprintln(stderr, "spiderlint:", err)
			return 2
		}
	}

	m, err := lint.LoadDir(root)
	if err != nil {
		fmt.Fprintln(stderr, "spiderlint:", err)
		return 2
	}

	diags := lint.Run(m, lint.DefaultConfig(), checks)
	diags = filterByPatterns(m, diags, fs.Args())

	cwd, _ := os.Getwd()
	relName := func(name string) string {
		if cwd == "" {
			return name
		}
		if rel, relErr := filepath.Rel(cwd, name); relErr == nil && !strings.HasPrefix(rel, "..") {
			return rel
		}
		return name
	}

	if *jsonFlag {
		findings := make([]jsonFinding, 0, len(diags))
		for _, d := range diags {
			findings = append(findings, jsonFinding{
				File:    relName(d.Pos.Filename),
				Line:    d.Pos.Line,
				Col:     d.Pos.Column,
				Check:   d.Check,
				Message: d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(stderr, "spiderlint:", err)
			return 2
		}
		if len(findings) > 0 {
			return 1
		}
		return 0
	}

	bad := 0
	for _, d := range diags {
		fmt.Fprintf(stdout, "%s:%d:%d: [%s] %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Check, d.Message)
		bad++
	}
	if bad > 0 {
		fmt.Fprintf(stderr, "spiderlint: %d finding(s)\n", bad)
		return 1
	}
	return 0
}

// selectChecks resolves the -checks / -disable flags against the suite.
func selectChecks(enable, disable string) ([]*lint.Check, error) {
	all := lint.Checks()
	byName := map[string]*lint.Check{}
	for _, c := range all {
		byName[c.Name] = c
	}
	validate := func(csv string) ([]string, error) {
		if csv == "" {
			return nil, nil
		}
		var names []string
		for _, n := range strings.Split(csv, ",") {
			n = strings.TrimSpace(n)
			if n == "" {
				continue
			}
			if byName[n] == nil {
				return nil, fmt.Errorf("unknown check %q (known: %s)", n, strings.Join(lint.CheckNames(), ", "))
			}
			names = append(names, n)
		}
		return names, nil
	}
	enabled, err := validate(enable)
	if err != nil {
		return nil, err
	}
	disabled, err := validate(disable)
	if err != nil {
		return nil, err
	}
	off := map[string]bool{}
	for _, n := range disabled {
		off[n] = true
	}
	var out []*lint.Check
	if enabled == nil {
		for _, c := range all {
			if !off[c.Name] {
				out = append(out, c)
			}
		}
	} else {
		for _, n := range enabled {
			if !off[n] {
				out = append(out, byName[n])
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no checks selected")
	}
	return out, nil
}

// filterByPatterns keeps diagnostics in packages matching the command-line
// patterns. "./..." (or no patterns) keeps everything; "./x/y" and "x/y"
// match by module-relative path, and a trailing "/..." matches the subtree.
func filterByPatterns(m *lint.Module, diags []lint.Diagnostic, patterns []string) []lint.Diagnostic {
	if len(patterns) == 0 {
		return diags
	}
	keepAll := false
	var exact, subtree []string
	for _, pat := range patterns {
		pat = strings.TrimPrefix(filepath.ToSlash(pat), "./")
		if pat == "..." || pat == "" {
			keepAll = true
			continue
		}
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			subtree = append(subtree, rest)
			continue
		}
		exact = append(exact, pat)
	}
	if keepAll {
		return diags
	}
	keepFile := func(filename string) bool {
		rel, err := filepath.Rel(m.Dir, filename)
		if err != nil || strings.HasPrefix(rel, "..") {
			return true // outside the module (shouldn't happen): keep visible
		}
		dir := filepath.ToSlash(filepath.Dir(rel))
		if dir == "." {
			dir = ""
		}
		for _, p := range exact {
			if dir == p {
				return true
			}
		}
		for _, p := range subtree {
			if dir == p || strings.HasPrefix(dir, p+"/") {
				return true
			}
		}
		return false
	}
	var out []lint.Diagnostic
	for _, d := range diags {
		if keepFile(d.Pos.Filename) {
			out = append(out, d)
		}
	}
	return out
}

// findModuleRoot walks up from the working directory to the nearest go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
