module spidercache

go 1.24
