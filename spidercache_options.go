package spidercache

import (
	"fmt"

	"spidercache/internal/telemetry"
)

// Option configures a TrainWith run. Options exist alongside TrainConfig
// because struct literals cannot distinguish "field left at zero" from
// "field explicitly set to zero": Train silently maps Epochs 0 to 30 and
// CacheFraction 0 to 0.2, so a genuinely cache-less or zero-epoch request
// is unexpressible there. An applied Option is always an explicit setting
// — WithCacheFraction(0) really trains without a cache, and WithEpochs(0)
// is rejected with a descriptive error instead of being reinterpreted.
type Option func(*trainSettings)

// trainSettings tracks which fields an Option explicitly set, so TrainWith
// only applies defaults to untouched ones.
type trainSettings struct {
	cfg TrainConfig

	epochsSet        bool
	batchSet         bool
	cacheFractionSet bool
	workersSet       bool
	seedSet          bool
	threadsSet       bool
	snapshotDriftSet bool
}

// WithPolicy selects the caching/sampling policy (one of the Policy*
// constants; default PolicySpiderCache).
func WithPolicy(name string) Option {
	return func(s *trainSettings) { s.cfg.Policy = name }
}

// WithModel selects the model cost profile by name (default "ResNet18").
func WithModel(name string) Option {
	return func(s *trainSettings) { s.cfg.Model = name }
}

// WithEpochs sets the training length (default 30). Unlike
// TrainConfig.Epochs, an explicit 0 is an error, not "use the default".
func WithEpochs(n int) Option {
	return func(s *trainSettings) { s.cfg.Epochs = n; s.epochsSet = true }
}

// WithBatchSize sets the mini-batch size (default 64).
func WithBatchSize(n int) Option {
	return func(s *trainSettings) { s.cfg.BatchSize = n; s.batchSet = true }
}

// WithCacheFraction sizes the cache as a fraction of the dataset (default
// 0.2). An explicit 0 trains with no cache at all — the ablation Train's
// zero-value defaulting cannot express.
func WithCacheFraction(f float64) Option {
	return func(s *trainSettings) { s.cfg.CacheFraction = f; s.cacheFractionSet = true }
}

// WithWorkers sets the simulated data-parallel GPU count (default 1).
func WithWorkers(n int) Option {
	return func(s *trainSettings) { s.cfg.Workers = n; s.workersSet = true }
}

// WithSeed sets the run's random seed (default 42). An explicit 0 is kept,
// unlike TrainConfig.Seed's zero-means-42 defaulting.
func WithSeed(seed uint64) Option {
	return func(s *trainSettings) { s.cfg.Seed = seed; s.seedSet = true }
}

// WithElasticRange overrides SpiderCache's elastic imp-ratio endpoints
// (paper defaults 0.90 / 0.80).
func WithElasticRange(rStart, rEnd float64) Option {
	return func(s *trainSettings) { s.cfg.RStart, s.cfg.REnd = rStart, rEnd }
}

// WithStaticRatio freezes the imp-ratio at RStart (Table 6's static mode).
func WithStaticRatio() Option {
	return func(s *trainSettings) { s.cfg.StaticRatio = true }
}

// WithoutPipeline charges the full IS cost on the critical path (the
// pipeline-overlap ablation).
func WithoutPipeline() Option {
	return func(s *trainSettings) { s.cfg.DisablePipeline = true }
}

// WithSerialLoading disables the DataLoader prefetch overlap, charging
// loading and compute sequentially (stall accounting).
func WithSerialLoading() Option {
	return func(s *trainSettings) { s.cfg.SerialLoading = true }
}

// WithThreads caps real CPU parallelism for the run: tensor kernels and
// SpiderCache batch scoring use at most n OS threads. 1 forces serial
// execution; results are identical either way. Distinct from WithWorkers,
// which simulates GPUs inside the cost model.
func WithThreads(n int) Option {
	return func(s *trainSettings) { s.cfg.Threads = n; s.threadsSet = true }
}

// WithPrefetch overlaps the serving of the next batch (cache lookups, miss
// fetches, tensor build) with the current batch's forward pass on a host
// goroutine. Deterministic; see trainer.Config.Prefetch for the one-batch
// staleness caveat.
func WithPrefetch() Option {
	return func(s *trainSettings) { s.cfg.Prefetch = true }
}

// WithSnapshotDrift enables the neighborhood-snapshot cache with the given
// drift budget: SpiderCache's scoring path serves cached kNN results while
// a sample's embedding stays within d (Euclidean, on unit-normalised
// embeddings) of its indexed position, searching fresh only past the
// budget. d must be positive; use semgraph.DefaultSnapshotDrift (0.15) for
// the calibrated default. Applies to the spider/spider-imp/graphaware-sem
// policies only.
func WithSnapshotDrift(d float64) Option {
	return func(s *trainSettings) { s.cfg.SnapshotDrift = d; s.snapshotDriftSet = true }
}

// WithMetrics attaches a telemetry registry: the run records per-tier
// lookup counters, simulated fetch/compute latency histograms and the
// elastic imp_ratio/σ trajectory into it. The same registry may be shared
// across runs (counters accumulate) or served live by a kvserver METRICS
// endpoint.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(s *trainSettings) { s.cfg.Metrics = reg }
}

// TrainWith runs one training configuration described by functional
// options. It behaves exactly like Train(TrainConfig{...}) for anything an
// Option does not touch, but explicit settings are never reinterpreted:
// invalid explicit values (Epochs 0, Workers 0) are rejected with
// descriptive errors rather than silently replaced by defaults.
func TrainWith(ds *Dataset, opts ...Option) (*Result, error) {
	if ds == nil {
		return nil, fmt.Errorf("spidercache: TrainWith requires a dataset")
	}
	s := trainSettings{cfg: TrainConfig{Dataset: ds}}
	for _, opt := range opts {
		if opt != nil {
			opt(&s)
		}
	}
	if s.cfg.Policy == "" {
		s.cfg.Policy = PolicySpiderCache
	}
	if s.cfg.Model == "" {
		s.cfg.Model = "ResNet18"
	}
	if !s.epochsSet {
		s.cfg.Epochs = 30
	}
	if !s.batchSet {
		s.cfg.BatchSize = 64
	}
	if !s.cacheFractionSet {
		s.cfg.CacheFraction = 0.2
	}
	if !s.workersSet {
		s.cfg.Workers = 1
	}
	if !s.seedSet {
		s.cfg.Seed = 42
	}
	if s.cfg.Epochs < 1 {
		return nil, fmt.Errorf("spidercache: WithEpochs(%d): epochs must be >= 1", s.cfg.Epochs)
	}
	if s.cfg.BatchSize < 1 {
		return nil, fmt.Errorf("spidercache: WithBatchSize(%d): batch size must be >= 1", s.cfg.BatchSize)
	}
	if s.cfg.Workers < 1 {
		return nil, fmt.Errorf("spidercache: WithWorkers(%d): workers must be >= 1", s.cfg.Workers)
	}
	if s.cfg.CacheFraction < 0 || s.cfg.CacheFraction > 1 {
		return nil, fmt.Errorf("spidercache: WithCacheFraction(%v): want a fraction in [0, 1]", s.cfg.CacheFraction)
	}
	if s.threadsSet && s.cfg.Threads < 1 {
		return nil, fmt.Errorf("spidercache: WithThreads(%d): threads must be >= 1", s.cfg.Threads)
	}
	if s.snapshotDriftSet && (s.cfg.SnapshotDrift <= 0 || s.cfg.SnapshotDrift >= 2) {
		return nil, fmt.Errorf("spidercache: WithSnapshotDrift(%v): want a budget in (0, 2) for unit-normalised embeddings", s.cfg.SnapshotDrift)
	}
	return train(s.cfg)
}
