// Multi-GPU scaling: reproduce the paper's Section 6.6 observation that
// SpiderCache's advantage over the LRU baseline grows with the number of
// data-parallel workers, because the remote-storage link is shared — compute
// scales out, the I/O bottleneck does not.
//
//	go run ./examples/multigpu
package main

import (
	"fmt"
	"log"
	"time"

	"spidercache"
)

func main() {
	ds, err := spidercache.NewCIFAR10(0.5, 42)
	if err != nil {
		log.Fatal(err)
	}

	const epochs = 6
	fmt.Printf("%-6s %16s %16s %8s\n", "GPUs", "Baseline/epoch", "SpiderCache/epoch", "gap")
	for workers := 1; workers <= 4; workers++ {
		perEpoch := func(policy string) time.Duration {
			res, err := spidercache.Train(spidercache.TrainConfig{
				Dataset:       ds,
				Policy:        policy,
				Epochs:        epochs,
				CacheFraction: 0.2,
				Workers:       workers,
				// Stall accounting, as in the paper's Fig 17: the question
				// is how long each policy stays blocked on the shared
				// remote link as compute scales out.
				SerialLoading: true,
				Seed:          42,
			})
			if err != nil {
				log.Fatal(err)
			}
			return res.TotalTime / time.Duration(epochs)
		}
		base := perEpoch(spidercache.PolicyBaseline)
		spider := perEpoch(spidercache.PolicySpiderCache)
		fmt.Printf("%-6d %16s %16s %7.2fx\n",
			workers, base.Round(time.Millisecond), spider.Round(time.Millisecond),
			float64(base)/float64(spider))
	}
}
