// Custom policy: implement your own caching strategy against the trainer's
// policy interface and race it against SpiderCache.
//
// The example builds "OraclePopularity" — a deliberately unfair upper bound
// that caches whatever the sampler is statistically most likely to request
// next epoch (it peeks at true access frequencies, which no online policy
// can). It is useful as a ceiling when evaluating new ideas.
//
// This example uses the internal extension surface (internal/policy,
// internal/trainer), which is available to code developed inside this
// module — the intended home for new policies contributed to the project.
//
//	go run ./examples/custompolicy
package main

import (
	"fmt"
	"log"
	"time"

	"spidercache/internal/cache"
	"spidercache/internal/dataset"
	"spidercache/internal/experiments"
	"spidercache/internal/nn"
	"spidercache/internal/policy"
	"spidercache/internal/sampler"
	"spidercache/internal/trainer"
)

// oraclePopularity caches the samples it saw requested most often in the
// previous epoch. With a uniform sampler this degenerates to a random
// subset; with any skewed sampler it approaches the optimal static cache.
type oraclePopularity struct {
	sampler *sampler.Uniform
	cache   *cache.Importance
	counts  []int
}

func newOracle(n, capacity int, seed uint64) (*oraclePopularity, error) {
	u, err := sampler.NewUniform(n, seed)
	if err != nil {
		return nil, err
	}
	return &oraclePopularity{
		sampler: u,
		cache:   cache.NewImportance(capacity),
		counts:  make([]int, n),
	}, nil
}

func (o *oraclePopularity) Name() string { return "OraclePopularity" }

func (o *oraclePopularity) EpochOrder(epoch int) []int {
	order := o.sampler.EpochOrder(epoch)
	for _, id := range order {
		o.counts[id]++
	}
	return order
}

func (o *oraclePopularity) Lookup(id int) policy.Lookup {
	if _, ok := o.cache.Get(id); ok {
		return policy.Lookup{Source: policy.SourceCache, ServedID: id}
	}
	return policy.Lookup{Source: policy.SourceMiss, ServedID: id}
}

func (o *oraclePopularity) OnMiss(id, size int) {
	o.cache.Put(cache.Item{ID: id, Size: size}, float64(o.counts[id]))
}

func (o *oraclePopularity) OnBatchEnd(int, []policy.Feedback)           {}
func (o *oraclePopularity) OnEpochEnd(int, float64)                     {}
func (o *oraclePopularity) BackpropWeights([]policy.Feedback) []float64 { return nil }
func (o *oraclePopularity) HasGraphIS() bool                            { return false }

func main() {
	ds, err := dataset.New(dataset.CIFAR10Like(0.5, 42))
	if err != nil {
		log.Fatal(err)
	}
	const epochs = 12
	capacity := ds.Len() / 5

	cfg := trainer.Config{
		Dataset: ds, Model: nn.ResNet18, Epochs: epochs,
		BatchSize: 64, Workers: 1, PipelineIS: true, Seed: 42,
	}

	oracle, err := newOracle(ds.Len(), capacity, 42)
	if err != nil {
		log.Fatal(err)
	}
	spider, err := experiments.BuildPolicy("spider", experiments.PolicyParams{
		Dataset: ds, Capacity: capacity, Epochs: epochs, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-18s %8s %9s %12s\n", "policy", "hit%", "bestAcc%", "trainTime")
	for _, pol := range []policy.Policy{oracle, spider} {
		res, err := trainer.Run(cfg, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-18s %8.1f %9.1f %12s\n",
			res.Policy, res.AvgHitRatio()*100, res.BestAcc*100,
			res.TotalTime.Round(time.Millisecond))
	}
	fmt.Println("\nunder uniform sampling a popularity cache is blind; SpiderCache")
	fmt.Println("creates the very skew it then exploits — that is the paper's point")
}
