// Warm start: reuse the global importance scores learned by one SpiderCache
// run to bootstrap another run on the same dataset — e.g. a hyper-parameter
// retry — so the cache and sampler are effective from epoch 1 instead of
// re-learning sample importance from scratch.
//
// This example uses the internal extension surface (internal/core), the
// intended home for features developed inside this module.
//
//	go run ./examples/warmstart
package main

import (
	"fmt"
	"log"

	"spidercache/internal/core"
	"spidercache/internal/dataset"
	"spidercache/internal/elastic"
	"spidercache/internal/nn"
	"spidercache/internal/trainer"
)

func main() {
	ds, err := dataset.New(dataset.CIFAR10Like(0.5, 42))
	if err != nil {
		log.Fatal(err)
	}
	const epochs = 8
	capacity := ds.Len() / 5

	build := func(seed uint64) *core.SpiderCache {
		pol, err := core.New(core.Options{
			Capacity:    capacity,
			Labels:      ds.Labels,
			Payloads:    ds.Payload,
			Elastic:     elastic.DefaultConfig(epochs),
			TotalEpochs: epochs,
			Seed:        seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		return pol
	}
	run := func(pol *core.SpiderCache, label string) *trainer.Result {
		res, err := trainer.Run(trainer.Config{
			Dataset: ds, Model: nn.ResNet18, Epochs: epochs,
			BatchSize: 64, Workers: 1, PipelineIS: true, Seed: 42,
		}, pol)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s first-epoch hit=%5.1f%%  avg hit=%5.1f%%  bestAcc=%.1f%%\n",
			label, res.Epochs[0].HitRatio()*100, res.AvgHitRatio()*100, res.BestAcc*100)
		return res
	}

	// Cold run: importance is learned online.
	cold := build(42)
	run(cold, "cold")

	// Warm run: seeded with the cold run's final score table.
	warm := build(43)
	if err := warm.ImportScores(cold.ExportScores()); err != nil {
		log.Fatal(err)
	}
	run(warm, "warm-start")

	fmt.Println("\nwarm starts lift the early-epoch hit ratio: the sampler and cache")
	fmt.Println("already know which samples matter before the first batch is seen")
}
