// Quickstart: train a model with SpiderCache on the CIFAR10-like workload
// and compare against the LRU baseline — the repository's 60-second tour.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"spidercache"
)

func main() {
	ds, err := spidercache.NewCIFAR10(0.5, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("dataset %s: %d samples, %d classes, %.1f MiB\n\n",
		ds.Name(), ds.Len(), ds.Classes(), float64(ds.TotalBytes())/(1<<20))

	var results []*spidercache.Result
	for _, policy := range []string{spidercache.PolicySpiderCache, spidercache.PolicyBaseline} {
		res, err := spidercache.Train(spidercache.TrainConfig{
			Dataset:       ds,
			Policy:        policy,
			Model:         "ResNet18",
			Epochs:        15,
			CacheFraction: 0.2,
			Seed:          42,
		})
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, res)
		fmt.Printf("%-12s hit=%5.1f%%  bestAcc=%5.1f%%  simulated training time=%s\n",
			res.Policy, res.AvgHitRatio()*100, res.BestAcc*100,
			res.TotalTime.Round(time.Millisecond))
	}

	spider, base := results[0], results[1]
	fmt.Printf("\nSpiderCache vs Baseline: %.1fx the hit ratio, %.2fx faster training\n",
		spider.AvgHitRatio()/base.AvgHitRatio(),
		float64(base.TotalTime)/float64(spider.TotalTime))
}
