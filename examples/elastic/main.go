// Elastic cache tuning: reproduce the paper's Section 6.5 study on your own
// workload — a static 90:10 split versus dynamic 90→80 and 90→50 shifts
// between the Importance and Homophily cache sections.
//
// Lower final imp-ratios buy hit ratio (and therefore training speed) at a
// small accuracy cost; the Imp-Ratio is the user-facing knob SpiderCache
// exposes for that trade.
//
//	go run ./examples/elastic
package main

import (
	"fmt"
	"log"
	"time"

	"spidercache"
)

func main() {
	ds, err := spidercache.NewCIFAR10(0.5, 42)
	if err != nil {
		log.Fatal(err)
	}

	strategies := []struct {
		label  string
		rStart float64
		rEnd   float64
		static bool
	}{
		{"static 90%", 0.90, 0.90, true},
		{"90% -> 80%", 0.90, 0.80, false},
		{"90% -> 50%", 0.90, 0.50, false},
	}

	fmt.Printf("%-12s %10s %10s %10s %12s\n", "strategy", "avgHit%", "lateHit%", "bestAcc%", "trainTime")
	for _, s := range strategies {
		res, err := spidercache.Train(spidercache.TrainConfig{
			Dataset:       ds,
			Policy:        spidercache.PolicySpiderCache,
			Epochs:        20,
			CacheFraction: 0.2,
			RStart:        s.rStart,
			REnd:          s.rEnd,
			StaticRatio:   s.static,
			Seed:          42,
		})
		if err != nil {
			log.Fatal(err)
		}
		// Late-stage hit ratio: the last quarter of training, where the
		// paper shows the static split sagging.
		late := res.Epochs[len(res.Epochs)*3/4:]
		var lateHit float64
		for _, e := range late {
			lateHit += e.HitRatio
		}
		lateHit /= float64(len(late))

		fmt.Printf("%-12s %10.1f %10.1f %10.1f %12s\n",
			s.label, res.AvgHitRatio()*100, lateHit*100, res.BestAcc*100,
			res.TotalTime.Round(time.Millisecond))
	}
	fmt.Println("\nprefer accuracy -> keep the imp-ratio high; prefer speed -> let it fall")
}
