// Policy sweep: run every caching policy in the repository on the same
// workload and print a side-by-side comparison — the quickest way to see the
// paper's headline orderings (hit ratio, training time, accuracy) emerge.
//
//	go run ./examples/policysweep
//	go run ./examples/policysweep -dataset cifar100 -epochs 25
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"

	"spidercache"
)

func main() {
	var (
		dsName = flag.String("dataset", "cifar10", "cifar10, cifar100 or imagenet")
		epochs = flag.Int("epochs", 15, "training epochs")
		scale  = flag.Float64("scale", 0.5, "dataset size multiplier")
		cache  = flag.Float64("cache", 0.2, "cache fraction")
		seed   = flag.Uint64("seed", 42, "seed")
	)
	flag.Parse()

	var (
		ds  *spidercache.Dataset
		err error
	)
	switch strings.ToLower(*dsName) {
	case "cifar10":
		ds, err = spidercache.NewCIFAR10(*scale, *seed)
	case "cifar100":
		ds, err = spidercache.NewCIFAR100(*scale, *seed)
	case "imagenet":
		ds, err = spidercache.NewImageNet(*scale, *seed)
	default:
		log.Fatalf("unknown dataset %q", *dsName)
	}
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("workload: %s, %d samples, %d%% cache, %d epochs\n\n",
		ds.Name(), ds.Len(), int(*cache*100), *epochs)
	fmt.Printf("%-16s %8s %8s %9s %12s\n", "policy", "hit%", "sub%", "bestAcc%", "trainTime")
	for _, pol := range spidercache.Policies() {
		res, err := spidercache.Train(spidercache.TrainConfig{
			Dataset:       ds,
			Policy:        pol,
			Epochs:        *epochs,
			CacheFraction: *cache,
			Seed:          *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		var sub float64
		for _, e := range res.Epochs {
			sub += e.SubRatio
		}
		sub /= float64(len(res.Epochs))
		fmt.Printf("%-16s %8.1f %8.1f %9.1f %12s\n",
			res.Policy, res.AvgHitRatio()*100, sub*100, res.BestAcc*100,
			res.TotalTime.Round(time.Millisecond))
	}
}
