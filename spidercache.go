// Package spidercache is the public API of this repository: a reproduction
// of "SpiderCache: Semantic-Aware Caching Strategy for DNN Training"
// (ICPP 2025) on a fully simulated, single-binary substrate.
//
// The package exposes three entry points:
//
//   - NewDataset / presets: deterministic synthetic training workloads that
//     stand in for CIFAR-10, CIFAR-100 and ImageNet.
//   - Train: run one (dataset, model, policy) training configuration —
//     SpiderCache or any of the paper's baselines — and receive per-epoch
//     hit ratios, simulated times, accuracies and elastic-manager state.
//   - RunExperiment / Experiments: regenerate any table or figure of the
//     paper's evaluation.
//
// See DESIGN.md for the architecture and EXPERIMENTS.md for paper-vs-
// measured results.
package spidercache

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"

	"spidercache/internal/dataset"
	"spidercache/internal/experiments"
	"spidercache/internal/nn"
	"spidercache/internal/telemetry"
	"spidercache/internal/tensor"
	"spidercache/internal/trainer"
)

// Policy names accepted by TrainConfig.Policy.
const (
	PolicyBaseline       = "baseline"       // LRU cache + random sampling
	PolicyLFU            = "lfu"            // LFU cache + random sampling
	PolicyCoorDL         = "coordl"         // static MinIO cache + random sampling
	PolicyGraphAware     = "graphaware"     // GreedyDual cache with label-ring neighbour spill
	PolicyGraphAwareSem  = "graphaware-sem" // GraphAware wired to the learned semantic graph
	PolicySHADE          = "shade"          // loss-based IS + importance cache
	PolicyICacheImp      = "icache-imp"     // iCache, importance region only
	PolicyICache         = "icache"         // full iCache with random replacement
	PolicySpiderCacheImp = "spider-imp"     // SpiderCache, Importance Cache only
	PolicySpiderCache    = "spider"         // full SpiderCache
)

// Policies lists every accepted policy name in evaluation order.
func Policies() []string { return experiments.PolicyNames() }

// ValidatePolicy reports nil when name is one of the Policy* constants, or
// a descriptive error listing every accepted name. The Policy* constants
// and Policies() are the single source of truth; Train rejects unknown
// names with this error before building anything.
func ValidatePolicy(name string) error {
	if err := experiments.ValidatePolicy(name); err != nil {
		return fmt.Errorf("spidercache: %w", err)
	}
	return nil
}

// Models lists the supported model cost profiles.
func Models() []string {
	ps := nn.AllProfiles()
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Name
	}
	return out
}

// Dataset is an opaque handle to a synthetic training workload.
type Dataset struct {
	ds *dataset.Dataset
}

// Name returns the dataset's preset name.
func (d *Dataset) Name() string { return d.ds.Config.Name }

// Len returns the number of training samples.
func (d *Dataset) Len() int { return d.ds.Len() }

// Classes returns the number of classes.
func (d *Dataset) Classes() int { return d.ds.Config.Classes }

// TotalBytes returns the summed payload size of the training set.
func (d *Dataset) TotalBytes() int64 { return d.ds.TotalBytes() }

// NewCIFAR10 builds the CIFAR-10-like workload. scale multiplies the sample
// counts (1.0 = repository default).
func NewCIFAR10(scale float64, seed uint64) (*Dataset, error) {
	return newDataset(dataset.CIFAR10Like(scale, seed))
}

// NewCIFAR100 builds the CIFAR-100-like workload.
func NewCIFAR100(scale float64, seed uint64) (*Dataset, error) {
	return newDataset(dataset.CIFAR100Like(scale, seed))
}

// NewImageNet builds the ImageNet-like workload (more classes, larger
// payloads).
func NewImageNet(scale float64, seed uint64) (*Dataset, error) {
	return newDataset(dataset.ImageNetLike(scale, seed))
}

func newDataset(cfg dataset.Config) (*Dataset, error) {
	ds, err := dataset.New(cfg)
	if err != nil {
		return nil, err
	}
	return &Dataset{ds: ds}, nil
}

// TrainConfig describes one training run through the public API.
type TrainConfig struct {
	Dataset *Dataset
	// Policy is one of the Policy* constants (default: PolicySpiderCache).
	Policy string
	// Model is a profile name from Models() (default: "ResNet18").
	Model string
	// Epochs to train (default 30).
	Epochs int
	// BatchSize per mini-batch (default 64).
	BatchSize int
	// CacheFraction sizes the cache as a fraction of the dataset
	// (default 0.2, the paper's end-to-end setting).
	CacheFraction float64
	// Workers simulates data-parallel GPUs (default 1).
	Workers int
	// RStart / REnd override SpiderCache's elastic imp-ratio endpoints
	// (defaults 0.90 / 0.80, the paper's recommendation).
	RStart, REnd float64
	// StaticRatio freezes the imp-ratio at RStart (Table 6's static mode).
	StaticRatio bool
	// DisablePipeline charges the full IS cost on the critical path.
	DisablePipeline bool
	// SerialLoading disables the DataLoader prefetch overlap, charging
	// loading and compute sequentially (stall accounting).
	SerialLoading bool
	// Threads caps real CPU parallelism (tensor kernels and SpiderCache
	// batch scoring): 0 keeps the defaults (all cores), 1 forces serial
	// execution. Parallel and serial runs produce identical numbers; this
	// only trades wall-clock for cores. Distinct from Workers, which
	// simulates GPUs inside the cost model.
	Threads int
	// Prefetch overlaps the serving of batch t+1 (cache lookups, miss
	// fetches, tensor build) with batch t's forward pass on a host
	// goroutine. Deterministic; see trainer.Config.Prefetch for the
	// one-batch staleness caveat. Default off.
	Prefetch bool
	// SnapshotDrift enables SpiderCache's neighborhood-snapshot cache when
	// positive: per-sample scoring is served from cached kNN results while
	// the sample's embedding stays within this distance of its indexed
	// position, and only drift past the budget triggers a fresh ANN search.
	// 0 (the default) keeps the always-fresh scoring path. Applies to the
	// spider/spider-imp/graphaware-sem policies only.
	SnapshotDrift float64
	// Metrics receives live serving-path and cache telemetry (per-tier
	// lookup counters, fetch-latency histograms, elastic imp_ratio/σ
	// gauges); nil disables recording. See internal/telemetry and the
	// README's Observability section for the exposition formats.
	Metrics *telemetry.Registry
	Seed    uint64
}

func (c *TrainConfig) fillDefaults() error {
	if c.Dataset == nil {
		return fmt.Errorf("spidercache: TrainConfig.Dataset must be set")
	}
	if c.Policy == "" {
		c.Policy = PolicySpiderCache
	}
	if c.Model == "" {
		c.Model = "ResNet18"
	}
	if c.Epochs == 0 {
		c.Epochs = 30
	}
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.CacheFraction == 0 {
		c.CacheFraction = 0.2
	}
	if c.Workers == 0 {
		c.Workers = 1
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return nil
}

// EpochStats is the per-epoch record of a training run.
type EpochStats struct {
	Epoch     int
	HitRatio  float64       // (cache + substitute hits) / requests
	SubRatio  float64       // substitute hits / requests
	Accuracy  float64       // held-out Top-1 after the epoch
	TrainLoss float64       // mean training loss
	EpochTime time.Duration // simulated wall time
	ScoreStd  float64       // σ of importance scores (SpiderCache only)
	ImpRatio  float64       // Importance Cache share (SpiderCache only)
}

// Result is the outcome of a training run.
type Result struct {
	Policy    string
	Model     string
	Dataset   string
	Epochs    []EpochStats
	TotalTime time.Duration // simulated end-to-end training time
	FinalAcc  float64
	BestAcc   float64
}

// AvgHitRatio returns the mean per-epoch hit ratio.
func (r *Result) AvgHitRatio() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	var s float64
	for _, e := range r.Epochs {
		s += e.HitRatio
	}
	return s / float64(len(r.Epochs))
}

// WriteCSV serialises the run's per-epoch records (header + one line per
// epoch) for external plotting.
func (r *Result) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# policy=%s model=%s dataset=%s\n", r.Policy, r.Model, r.Dataset); err != nil {
		return err
	}
	if _, err := bw.WriteString("epoch,hit_ratio,sub_ratio,accuracy,train_loss,epoch_ms,score_std,imp_ratio\n"); err != nil {
		return err
	}
	for _, e := range r.Epochs {
		if _, err := fmt.Fprintf(bw, "%d,%.6f,%.6f,%.6f,%.6f,%d,%.6f,%.6f\n",
			e.Epoch, e.HitRatio, e.SubRatio, e.Accuracy, e.TrainLoss,
			e.EpochTime.Milliseconds(), e.ScoreStd, e.ImpRatio); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Train runs one training configuration and returns its full record.
//
// Zero-valued fields of cfg take repository defaults (Epochs 30,
// CacheFraction 0.2, ...), which makes a genuine zero unexpressible; use
// TrainWith and functional options when that distinction matters.
func Train(cfg TrainConfig) (*Result, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	return train(cfg)
}

// train runs a fully resolved configuration: no defaulting happens here.
func train(cfg TrainConfig) (*Result, error) {
	if cfg.Dataset == nil {
		return nil, fmt.Errorf("spidercache: TrainConfig.Dataset must be set")
	}
	if err := ValidatePolicy(cfg.Policy); err != nil {
		return nil, err
	}
	model, err := nn.ProfileByName(cfg.Model)
	if err != nil {
		return nil, err
	}
	if cfg.Threads > 0 {
		tensor.SetWorkers(cfg.Threads)
	}
	capacity := int(float64(cfg.Dataset.Len()) * cfg.CacheFraction)
	pol, err := experiments.BuildPolicy(cfg.Policy, experiments.PolicyParams{
		Dataset:        cfg.Dataset.ds,
		Capacity:       capacity,
		Epochs:         cfg.Epochs,
		Seed:           cfg.Seed,
		RStart:         cfg.RStart,
		REnd:           cfg.REnd,
		DisableElastic: cfg.StaticRatio,
		Metrics:        cfg.Metrics,
		Workers:        cfg.Threads,
		SnapshotDrift:  cfg.SnapshotDrift,
	})
	if err != nil {
		return nil, err
	}
	tc := trainer.Config{
		Dataset:       cfg.Dataset.ds,
		Model:         model,
		Epochs:        cfg.Epochs,
		BatchSize:     cfg.BatchSize,
		Workers:       cfg.Workers,
		PipelineIS:    !cfg.DisablePipeline,
		SerialLoading: cfg.SerialLoading,
		Prefetch:      cfg.Prefetch,
		Metrics:       cfg.Metrics,
		Seed:          cfg.Seed,
	}
	res, err := trainer.Run(tc, pol)
	if err != nil {
		return nil, err
	}
	return convertResult(res), nil
}

func convertResult(res *trainer.Result) *Result {
	out := &Result{
		Policy:    res.Policy,
		Model:     res.Model,
		Dataset:   res.Dataset,
		TotalTime: res.TotalTime,
		FinalAcc:  res.FinalAcc,
		BestAcc:   res.BestAcc,
	}
	for _, e := range res.Epochs {
		sub := 0.0
		if e.Requests > 0 {
			sub = float64(e.HitSub) / float64(e.Requests)
		}
		out.Epochs = append(out.Epochs, EpochStats{
			Epoch:     e.Epoch,
			HitRatio:  e.HitRatio(),
			SubRatio:  sub,
			Accuracy:  e.Accuracy,
			TrainLoss: e.TrainLoss,
			EpochTime: e.EpochTime,
			ScoreStd:  e.ScoreStd,
			ImpRatio:  e.ImpRatio,
		})
	}
	return out
}

// Experiments lists the regenerable paper tables and figures.
func Experiments() []string { return experiments.List() }

// ExperimentReport is a completed experiment, renderable as an aligned text
// table or as CSV.
type ExperimentReport struct {
	rep *experiments.Report
}

// ID returns the canonical experiment id (aliases resolved).
func (r *ExperimentReport) ID() string { return r.rep.ID }

// Text renders the report as aligned tables with notes.
func (r *ExperimentReport) Text() string { return r.rep.String() }

// CSV renders every table of the report as CSV blocks.
func (r *ExperimentReport) CSV() string { return r.rep.CSV() }

// GetExperiment regenerates one paper table/figure. scale multiplies dataset
// sizes (1.0 = default); epochs overrides the experiment's default when
// positive.
func GetExperiment(id string, scale float64, epochs int, seed uint64) (*ExperimentReport, error) {
	rep, err := experiments.Run(id, experiments.Options{Scale: scale, EpochOverride: epochs, Seed: seed})
	if err != nil {
		return nil, err
	}
	return &ExperimentReport{rep: rep}, nil
}

// Format selects the rendering of an experiment report.
type Format int

// Report formats accepted by RenderExperiment.
const (
	// FormatText renders aligned tables with notes (terminal output).
	FormatText Format = iota
	// FormatCSV renders every table as CSV blocks (machine-readable).
	FormatCSV
)

// String returns "text" or "csv".
func (f Format) String() string {
	switch f {
	case FormatText:
		return "text"
	case FormatCSV:
		return "csv"
	default:
		return fmt.Sprintf("Format(%d)", int(f))
	}
}

// ParseFormat resolves "text" or "csv" (case-insensitive) to a Format.
func ParseFormat(s string) (Format, error) {
	switch strings.ToLower(s) {
	case "text", "":
		return FormatText, nil
	case "csv":
		return FormatCSV, nil
	default:
		return 0, fmt.Errorf("spidercache: unknown format %q (want text or csv)", s)
	}
}

// RenderExperiment regenerates one paper table/figure and returns the
// report rendered in the requested format. See GetExperiment for a handle
// that can render both without re-running.
func RenderExperiment(id string, scale float64, epochs int, seed uint64, format Format) (string, error) {
	rep, err := GetExperiment(id, scale, epochs, seed)
	if err != nil {
		return "", err
	}
	switch format {
	case FormatText:
		return rep.Text(), nil
	case FormatCSV:
		return rep.CSV(), nil
	default:
		return "", fmt.Errorf("spidercache: unknown format %v", format)
	}
}

// RunExperiment regenerates one paper table/figure and returns the rendered
// report; csv switches the output format.
//
// Deprecated: the boolean flag reads poorly at call sites; use
// RenderExperiment with FormatText or FormatCSV instead. This wrapper is
// kept so existing callers compile and behave identically.
func RunExperiment(id string, scale float64, epochs int, seed uint64, csv bool) (string, error) {
	format := FormatText
	if csv {
		format = FormatCSV
	}
	return RenderExperiment(id, scale, epochs, seed, format)
}
