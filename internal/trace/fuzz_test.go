package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV checks that arbitrary input never panics the parser and that
// anything it accepts round-trips losslessly. `go test` exercises the seed
// corpus; `go test -fuzz=FuzzReadCSV ./internal/trace` explores further.
func FuzzReadCSV(f *testing.F) {
	f.Add("seq,epoch,id,served,source\n0,0,1,1,cache\n")
	f.Add("0,0,1,1,miss\n1,0,2,9,substitute\n")
	f.Add("")
	f.Add("garbage")
	f.Add("0,0,1,1,cache\n0,0") // truncated second record
	f.Add("9223372036854775807,2147483647,1,1,miss\n")
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := ReadCSV(strings.NewReader(input))
		if err != nil {
			return // rejection is fine; panics are not
		}
		var buf bytes.Buffer
		if err := tr.WriteCSV(&buf); err != nil {
			t.Fatalf("accepted trace failed to serialise: %v", err)
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("serialised trace rejected: %v", err)
		}
		if back.Len() != tr.Len() {
			t.Fatalf("round-trip length %d != %d", back.Len(), tr.Len())
		}
		for i := range tr.Events {
			if tr.Events[i] != back.Events[i] {
				t.Fatalf("event %d changed in round-trip", i)
			}
		}
	})
}
