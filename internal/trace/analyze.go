package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"spidercache/internal/policy"
)

// Summary aggregates a trace.
type Summary struct {
	Requests    int
	Misses      int
	CacheHits   int
	Substitutes int
	Epochs      int
	UniqueIDs   int

	// MeanReuseDistance is the mean number of distinct other samples
	// requested between consecutive accesses to the same sample (the
	// quantity LRU effectiveness depends on); -1 when no sample repeats.
	MeanReuseDistance float64
	// MedianReuseDistance is the distribution's median; -1 when undefined.
	MedianReuseDistance float64
	// TopShare is the fraction of requests landing on the most-requested
	// 10% of distinct samples (sampling skew; 0.1 under uniform).
	TopShare float64
}

// HitRatio returns (cache + substitute hits) / requests.
func (s Summary) HitRatio() float64 {
	if s.Requests == 0 {
		return 0
	}
	return float64(s.CacheHits+s.Substitutes) / float64(s.Requests)
}

// Analyze computes the trace summary.
func Analyze(t *Trace) Summary {
	var sum Summary
	sum.Requests = len(t.Events)
	if sum.Requests == 0 {
		sum.MeanReuseDistance = -1
		sum.MedianReuseDistance = -1
		return sum
	}

	counts := map[int]int{}
	lastSeen := map[int]int{} // id -> index into events of previous access
	var distances []float64
	maxEpoch := 0

	// Reuse distance via a per-access distinct-count scan. O(n * gap) in the
	// worst case; traces at simulation scale keep this tractable, and the
	// distinct count is what stack-distance analysis needs.
	for i, e := range t.Events {
		switch e.Source {
		case policy.SourceMiss:
			sum.Misses++
		case policy.SourceCache:
			sum.CacheHits++
		case policy.SourceSubstitute:
			sum.Substitutes++
		}
		if e.Epoch > maxEpoch {
			maxEpoch = e.Epoch
		}
		counts[e.ID]++
		if prev, ok := lastSeen[e.ID]; ok {
			distinct := map[int]struct{}{}
			for _, mid := range t.Events[prev+1 : i] {
				distinct[mid.ID] = struct{}{}
			}
			distances = append(distances, float64(len(distinct)))
		}
		lastSeen[e.ID] = i
	}
	sum.Epochs = maxEpoch + 1
	sum.UniqueIDs = len(counts)

	if len(distances) == 0 {
		sum.MeanReuseDistance = -1
		sum.MedianReuseDistance = -1
	} else {
		var s float64
		for _, d := range distances {
			s += d
		}
		sum.MeanReuseDistance = s / float64(len(distances))
		sort.Float64s(distances)
		sum.MedianReuseDistance = distances[len(distances)/2]
	}

	// Skew: share of requests on the hottest 10% of distinct samples.
	freqs := make([]int, 0, len(counts))
	for _, c := range counts {
		freqs = append(freqs, c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
	top := int(math.Ceil(float64(len(freqs)) * 0.1))
	var topReq int
	for _, c := range freqs[:top] {
		topReq += c
	}
	sum.TopShare = float64(topReq) / float64(sum.Requests)
	return sum
}

// Render formats the summary as an aligned report.
func (s Summary) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "requests           %d\n", s.Requests)
	fmt.Fprintf(&b, "epochs             %d\n", s.Epochs)
	fmt.Fprintf(&b, "unique samples     %d\n", s.UniqueIDs)
	fmt.Fprintf(&b, "hit ratio          %.2f%%\n", s.HitRatio()*100)
	fmt.Fprintf(&b, "  cache hits       %d\n", s.CacheHits)
	fmt.Fprintf(&b, "  substitutes      %d\n", s.Substitutes)
	fmt.Fprintf(&b, "  misses           %d\n", s.Misses)
	if s.MeanReuseDistance >= 0 {
		fmt.Fprintf(&b, "reuse distance     mean %.1f, median %.0f\n", s.MeanReuseDistance, s.MedianReuseDistance)
	} else {
		b.WriteString("reuse distance     n/a (no repeated accesses)\n")
	}
	fmt.Fprintf(&b, "top-10%% share      %.1f%% of requests\n", s.TopShare*100)
	return b.String()
}

// PerEpochHitRatios returns the hit ratio of each epoch in the trace.
func PerEpochHitRatios(t *Trace) []float64 {
	if len(t.Events) == 0 {
		return nil
	}
	maxEpoch := 0
	for _, e := range t.Events {
		if e.Epoch > maxEpoch {
			maxEpoch = e.Epoch
		}
	}
	hits := make([]int, maxEpoch+1)
	total := make([]int, maxEpoch+1)
	for _, e := range t.Events {
		total[e.Epoch]++
		if e.Source != policy.SourceMiss {
			hits[e.Epoch]++
		}
	}
	out := make([]float64, maxEpoch+1)
	for i := range out {
		if total[i] > 0 {
			out[i] = float64(hits[i]) / float64(total[i])
		}
	}
	return out
}
