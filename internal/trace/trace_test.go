package trace

import (
	"bytes"
	"strings"
	"testing"

	"spidercache/internal/policy"
)

// scriptedPolicy returns canned lookups for Recorder tests.
type scriptedPolicy struct {
	n     int
	serve map[int]policy.Lookup
}

func (p *scriptedPolicy) Name() string { return "scripted" }
func (p *scriptedPolicy) EpochOrder(int) []int {
	out := make([]int, p.n)
	for i := range out {
		out[i] = i
	}
	return out
}
func (p *scriptedPolicy) Lookup(id int) policy.Lookup {
	if lk, ok := p.serve[id]; ok {
		return lk
	}
	return policy.Lookup{Source: policy.SourceMiss, ServedID: id}
}
func (p *scriptedPolicy) OnMiss(int, int)                             {}
func (p *scriptedPolicy) OnBatchEnd(int, []policy.Feedback)           {}
func (p *scriptedPolicy) OnEpochEnd(int, float64)                     {}
func (p *scriptedPolicy) BackpropWeights([]policy.Feedback) []float64 { return nil }
func (p *scriptedPolicy) HasGraphIS() bool                            { return false }

func recordScripted(t *testing.T) *Trace {
	t.Helper()
	inner := &scriptedPolicy{
		n: 4,
		serve: map[int]policy.Lookup{
			1: {Source: policy.SourceCache, ServedID: 1},
			2: {Source: policy.SourceSubstitute, ServedID: 9},
		},
	}
	rec, tr := NewRecorder(inner)
	for epoch := 0; epoch < 2; epoch++ {
		for _, id := range rec.EpochOrder(epoch) {
			rec.Lookup(id)
		}
	}
	return tr
}

func TestRecorderCapturesEvents(t *testing.T) {
	tr := recordScripted(t)
	if tr.Len() != 8 {
		t.Fatalf("events %d, want 8", tr.Len())
	}
	e := tr.Events[2] // id 2 in epoch 0
	if e.ID != 2 || e.Served != 9 || e.Source != policy.SourceSubstitute || e.Epoch != 0 {
		t.Fatalf("event %+v", e)
	}
	if tr.Events[5].Epoch != 1 {
		t.Fatalf("epoch not tracked: %+v", tr.Events[5])
	}
	for i, e := range tr.Events {
		if e.Seq != int64(i) {
			t.Fatalf("seq %d at index %d", e.Seq, i)
		}
	}
}

func TestCSVRoundtrip(t *testing.T) {
	tr := recordScripted(t)
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() {
		t.Fatalf("roundtrip length %d != %d", back.Len(), tr.Len())
	}
	for i := range tr.Events {
		if tr.Events[i] != back.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, tr.Events[i], back.Events[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"seq,epoch,id,served,source\n1,2,3\n",
		"x,0,1,1,cache\n",
		"0,x,1,1,cache\n",
		"0,0,x,1,cache\n",
		"0,0,1,x,cache\n",
		"0,0,1,1,teleport\n",
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestAnalyzeCounts(t *testing.T) {
	tr := recordScripted(t)
	s := Analyze(tr)
	if s.Requests != 8 || s.Epochs != 2 || s.UniqueIDs != 4 {
		t.Fatalf("summary %+v", s)
	}
	if s.CacheHits != 2 || s.Substitutes != 2 || s.Misses != 4 {
		t.Fatalf("source counts %+v", s)
	}
	if s.HitRatio() != 0.5 {
		t.Fatalf("hit ratio %g", s.HitRatio())
	}
}

func TestAnalyzeReuseDistance(t *testing.T) {
	// Sequence: 0 1 2 0 — reuse of 0 sees {1,2} = distance 2.
	tr := &Trace{Events: []Event{
		{Seq: 0, ID: 0}, {Seq: 1, ID: 1}, {Seq: 2, ID: 2}, {Seq: 3, ID: 0},
	}}
	s := Analyze(tr)
	if s.MeanReuseDistance != 2 || s.MedianReuseDistance != 2 {
		t.Fatalf("reuse distance %+v", s)
	}
}

func TestAnalyzeNoRepeats(t *testing.T) {
	tr := &Trace{Events: []Event{{ID: 0}, {ID: 1}}}
	s := Analyze(tr)
	if s.MeanReuseDistance != -1 {
		t.Fatalf("expected undefined reuse distance, got %g", s.MeanReuseDistance)
	}
}

func TestAnalyzeSkew(t *testing.T) {
	// 10 distinct ids; id 0 requested 91 times, others once: top-10% share
	// (the single hottest id) = 91/100.
	var tr Trace
	for i := 0; i < 91; i++ {
		tr.Events = append(tr.Events, Event{ID: 0})
	}
	for id := 1; id < 10; id++ {
		tr.Events = append(tr.Events, Event{ID: id})
	}
	s := Analyze(&tr)
	if s.TopShare != 0.91 {
		t.Fatalf("TopShare %g, want 0.91", s.TopShare)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	s := Analyze(&Trace{})
	if s.Requests != 0 || s.MeanReuseDistance != -1 {
		t.Fatalf("empty summary %+v", s)
	}
	if PerEpochHitRatios(&Trace{}) != nil {
		t.Fatal("per-epoch ratios on empty trace")
	}
}

func TestPerEpochHitRatios(t *testing.T) {
	tr := recordScripted(t)
	ratios := PerEpochHitRatios(tr)
	if len(ratios) != 2 {
		t.Fatalf("ratios %v", ratios)
	}
	for _, r := range ratios {
		if r != 0.5 {
			t.Fatalf("per-epoch ratio %v", ratios)
		}
	}
}

func TestRenderSummary(t *testing.T) {
	out := Analyze(recordScripted(t)).Render()
	for _, want := range []string{"requests", "hit ratio", "substitutes", "top-10%"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
}
