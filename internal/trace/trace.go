// Package trace records per-request cache events during training and
// derives the access-pattern statistics cache research lives on: reuse
// distances, per-epoch frequency histograms, and per-source breakdowns.
//
// A Recorder wraps any policy.Policy; every Lookup emits one Event. Traces
// serialise to a compact CSV (one line per request) so runs can be archived
// and replayed through the analyzer (cmd/spidertrace) or external tooling.
package trace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"spidercache/internal/policy"
)

// Event is one cache request.
type Event struct {
	Seq    int64         // global request sequence number
	Epoch  int           // training epoch
	ID     int           // requested sample
	Served int           // sample actually delivered
	Source policy.Source // miss / cache / substitute
}

// Trace is an in-memory event sequence.
type Trace struct {
	Events []Event
}

// Recorder wraps a policy and appends one Event per Lookup. It implements
// policy.Policy and forwards every other call unchanged.
type Recorder struct {
	policy.Policy
	trace *Trace
	epoch int
	seq   int64
}

// NewRecorder wraps inner; events accumulate in the returned Trace.
func NewRecorder(inner policy.Policy) (*Recorder, *Trace) {
	tr := &Trace{}
	return &Recorder{Policy: inner, trace: tr}, tr
}

// EpochOrder tracks the current epoch before delegating.
func (r *Recorder) EpochOrder(epoch int) []int {
	r.epoch = epoch
	return r.Policy.EpochOrder(epoch)
}

// Lookup records the event and delegates.
func (r *Recorder) Lookup(id int) policy.Lookup {
	lk := r.Policy.Lookup(id)
	r.trace.Events = append(r.trace.Events, Event{
		Seq:    r.seq,
		Epoch:  r.epoch,
		ID:     id,
		Served: lk.ServedID,
		Source: lk.Source,
	})
	r.seq++
	return lk
}

// Len returns the number of recorded events.
func (t *Trace) Len() int { return len(t.Events) }

// WriteCSV serialises the trace (header + one line per event).
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("seq,epoch,id,served,source\n"); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%s\n", e.Seq, e.Epoch, e.ID, e.Served, e.Source); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	tr := &Trace{}
	first := true
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if first {
			first = false
			if strings.HasPrefix(line, "seq,") {
				continue
			}
		}
		parts := strings.Split(line, ",")
		if len(parts) != 5 {
			return nil, fmt.Errorf("trace: malformed line %q", line)
		}
		var e Event
		var err error
		if e.Seq, err = strconv.ParseInt(parts[0], 10, 64); err != nil {
			return nil, fmt.Errorf("trace: bad seq %q", parts[0])
		}
		if e.Epoch, err = strconv.Atoi(parts[1]); err != nil {
			return nil, fmt.Errorf("trace: bad epoch %q", parts[1])
		}
		if e.ID, err = strconv.Atoi(parts[2]); err != nil {
			return nil, fmt.Errorf("trace: bad id %q", parts[2])
		}
		if e.Served, err = strconv.Atoi(parts[3]); err != nil {
			return nil, fmt.Errorf("trace: bad served %q", parts[3])
		}
		switch parts[4] {
		case "miss":
			e.Source = policy.SourceMiss
		case "cache":
			e.Source = policy.SourceCache
		case "substitute":
			e.Source = policy.SourceSubstitute
		default:
			return nil, fmt.Errorf("trace: unknown source %q", parts[4])
		}
		tr.Events = append(tr.Events, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}
