// Package simclock provides the virtual time base for all performance
// experiments in this repository.
//
// The paper's evaluation reports wall-clock training times measured on a
// GPU/NFS testbed. This reproduction replaces that hardware with a metered
// simulation: every fetch, compute stage and pipeline overlap charges
// duration to a Clock instead of sleeping. Experiments therefore run orders
// of magnitude faster than the systems they model while preserving the time
// *ratios* the paper reports.
package simclock

import (
	"fmt"
	"time"
)

// Clock accumulates simulated time. The zero value is a clock at t=0.
// Clock is not safe for concurrent use; the trainer owns one clock per run.
type Clock struct {
	now time.Duration
}

// Now returns the current simulated time since the start of the run.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves the clock forward by d. Negative durations are ignored so
// call sites can pass raw residuals without clamping.
func (c *Clock) Advance(d time.Duration) {
	if d > 0 {
		c.now += d
	}
}

// Reset rewinds the clock to zero.
func (c *Clock) Reset() { c.now = 0 }

// Span measures a simulated interval: s := clock.Start(); ...; d := s.Elapsed().
type Span struct {
	c     *Clock
	start time.Duration
}

// Start opens a measurement span at the current simulated time.
func (c *Clock) Start() Span { return Span{c: c, start: c.now} }

// Elapsed reports the simulated time accumulated since the span started.
func (s Span) Elapsed() time.Duration { return s.c.now - s.start }

// Overlap2 returns the critical-path duration of two stages that may run
// concurrently: stage a runs in the foreground while budget b of background
// capacity is available to hide stage hidden. It models the paper's Fig 12
// pipelines: the visible cost is a plus any part of hidden that exceeds b.
func Overlap2(a, hidden, b time.Duration) time.Duration {
	residual := hidden - b
	if residual < 0 {
		residual = 0
	}
	return a + residual
}

// FormatDuration renders a simulated duration compactly for tables
// (e.g. "2m3s", "1.5h"). It exists so renderers do not depend on the exact
// time.Duration formatting of long durations.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Hour:
		return fmt.Sprintf("%.1fh", d.Hours())
	case d >= time.Minute:
		return fmt.Sprintf("%.1fm", d.Minutes())
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	default:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	}
}
