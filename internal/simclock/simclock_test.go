package simclock

import (
	"testing"
	"time"
)

func TestAdvance(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Fatalf("fresh clock at %v", c.Now())
	}
	c.Advance(3 * time.Second)
	c.Advance(2 * time.Second)
	if c.Now() != 5*time.Second {
		t.Fatalf("got %v, want 5s", c.Now())
	}
}

func TestAdvanceIgnoresNegative(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	c.Advance(-10 * time.Second)
	if c.Now() != time.Second {
		t.Fatalf("negative advance changed clock: %v", c.Now())
	}
}

func TestReset(t *testing.T) {
	var c Clock
	c.Advance(time.Minute)
	c.Reset()
	if c.Now() != 0 {
		t.Fatalf("reset left %v", c.Now())
	}
}

func TestSpan(t *testing.T) {
	var c Clock
	c.Advance(time.Second)
	s := c.Start()
	c.Advance(3 * time.Second)
	if s.Elapsed() != 3*time.Second {
		t.Fatalf("span = %v, want 3s", s.Elapsed())
	}
}

func TestOverlap2(t *testing.T) {
	cases := []struct {
		a, hidden, budget, want time.Duration
	}{
		{10, 5, 8, 10},  // hidden fully absorbed
		{10, 8, 8, 10},  // exactly absorbed
		{10, 12, 8, 14}, // 4 residual
		{10, 12, 0, 22}, // no overlap budget
		{0, 7, 3, 4},
	}
	for _, c := range cases {
		if got := Overlap2(c.a, c.hidden, c.budget); got != c.want {
			t.Errorf("Overlap2(%v,%v,%v) = %v, want %v", c.a, c.hidden, c.budget, got, c.want)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{90 * time.Minute, "1.5h"},
		{90 * time.Second, "1.5m"},
		{1500 * time.Millisecond, "1.50s"},
		{500 * time.Microsecond, "0.50ms"},
	}
	for _, c := range cases {
		if got := FormatDuration(c.d); got != c.want {
			t.Errorf("FormatDuration(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
