package cache

import (
	"testing"

	"spidercache/internal/xrand"
)

const benchCap = 1000

func BenchmarkLRUPutGet(b *testing.B) {
	c := NewLRU(benchCap)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := rng.Intn(benchCap * 4)
		if _, ok := c.Get(id); !ok {
			c.Put(Item{ID: id})
		}
	}
}

func BenchmarkLFUPutGet(b *testing.B) {
	c := NewLFU(benchCap)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id := rng.Intn(benchCap * 4)
		if _, ok := c.Get(id); !ok {
			c.Put(Item{ID: id})
		}
	}
}

func BenchmarkImportancePut(b *testing.B) {
	c := NewImportance(benchCap)
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Put(Item{ID: rng.Intn(benchCap * 4)}, rng.Float64())
	}
}

func BenchmarkImportanceUpdateScore(b *testing.B) {
	c := NewImportance(benchCap)
	for i := 0; i < benchCap; i++ {
		c.Put(Item{ID: i}, float64(i))
	}
	rng := xrand.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.UpdateScore(rng.Intn(benchCap), rng.Float64())
	}
}

func BenchmarkHomophilyLookupNeighbor(b *testing.B) {
	c := NewHomophily(200)
	rng := xrand.New(1)
	for i := 0; i < 200; i++ {
		nbs := make([]int, 8)
		for j := range nbs {
			nbs[j] = rng.Intn(4000)
		}
		c.Put(Item{ID: 10000 + i}, nbs)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.LookupNeighbor(rng.Intn(4000))
	}
}
