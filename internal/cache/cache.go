// Package cache provides the capacity-bounded sample caches used by every
// policy in the repository:
//
//   - LRU / LFU:        the conventional baselines of the paper's Fig 3(b)
//   - FIFO:             update strategy of the Homophily Cache
//   - Static:           CoorDL's MinIO cache (fill once, never evict)
//   - RandomReplace:    iCache's L-sample cache (evict a random victim)
//   - Importance:       min-heap keyed by importance score (SHADE, iCache
//     H-cache, SpiderCache's Importance Cache)
//   - Homophily:        FIFO of high-degree nodes plus their neighbour ID
//     lists (SpiderCache's substitute-serving cache)
//
// Capacities are expressed in items: the paper sizes caches as a percentage
// of the dataset's sample count. Payload sizes are carried through for I/O
// accounting but do not bound admission.
package cache

import "fmt"

// Item is a cached sample reference: the trainer stores (ID, payload size)
// pairs; actual bytes live in the storage simulator.
type Item struct {
	ID   int
	Size int
}

// Basic is the interface shared by the simple caches (LRU, LFU, FIFO,
// Static, RandomReplace). The Importance and Homophily caches have richer
// APIs and are used directly.
type Basic interface {
	// Get reports whether id is cached and, for recency-based policies,
	// records the touch.
	Get(id int) (Item, bool)
	// Put admits the item, evicting per policy when full. It reports
	// whether the item resides in the cache afterwards.
	Put(item Item) bool
	// Len returns the number of cached items.
	Len() int
	// Cap returns the item capacity.
	Cap() int
}

func checkCap(capacity int) {
	if capacity < 0 {
		panic(fmt.Sprintf("cache: negative capacity %d", capacity))
	}
}
