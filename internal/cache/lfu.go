package cache

// LFU is a least-frequently-used cache. Frequency counts persist only while
// an item is resident (as in the classic in-memory LFU the paper benchmarks
// in Fig 3b). Ties are broken by least-recent insertion using a
// monotonically increasing sequence number.
type LFU struct {
	capacity int
	entries  map[int]*lfuEntry
	heap     []*lfuEntry // min-heap on (freq, seq)
	seq      uint64
}

type lfuEntry struct {
	item Item
	freq int
	seq  uint64
	pos  int // heap index
}

// NewLFU returns an empty LFU cache holding up to capacity items.
func NewLFU(capacity int) *LFU {
	checkCap(capacity)
	return &LFU{capacity: capacity, entries: make(map[int]*lfuEntry, capacity)}
}

// Get reports whether id is cached, incrementing its frequency on a hit.
func (c *LFU) Get(id int) (Item, bool) {
	e, ok := c.entries[id]
	if !ok {
		return Item{}, false
	}
	e.freq++
	c.siftDown(e.pos)
	return e.item, true
}

// Put admits item, evicting the least frequently used entry when full.
func (c *LFU) Put(item Item) bool {
	if c.capacity == 0 {
		return false
	}
	if e, ok := c.entries[item.ID]; ok {
		e.item = item
		e.freq++
		c.siftDown(e.pos)
		return true
	}
	if len(c.entries) >= c.capacity {
		victim := c.heap[0]
		c.removeAt(0)
		delete(c.entries, victim.item.ID)
	}
	c.seq++
	e := &lfuEntry{item: item, freq: 1, seq: c.seq, pos: len(c.heap)}
	c.entries[item.ID] = e
	c.heap = append(c.heap, e)
	c.siftUp(e.pos)
	return true
}

// Len returns the number of cached items.
func (c *LFU) Len() int { return len(c.entries) }

// Cap returns the item capacity.
func (c *LFU) Cap() int { return c.capacity }

func (c *LFU) less(i, j int) bool {
	a, b := c.heap[i], c.heap[j]
	if a.freq != b.freq {
		return a.freq < b.freq
	}
	return a.seq < b.seq
}

func (c *LFU) swap(i, j int) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.heap[i].pos = i
	c.heap[j].pos = j
}

func (c *LFU) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			return
		}
		c.swap(i, parent)
		i = parent
	}
}

func (c *LFU) siftDown(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && c.less(l, small) {
			small = l
		}
		if r < n && c.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		c.swap(i, small)
		i = small
	}
}

func (c *LFU) removeAt(i int) {
	last := len(c.heap) - 1
	c.swap(i, last)
	c.heap = c.heap[:last]
	if i < last {
		c.siftDown(i)
		c.siftUp(i)
	}
}
