package cache

// Homophily is SpiderCache's substitute-serving cache (Section 4.2): it
// stores high-degree graph nodes together with the IDs of their neighbours.
// A request for sample x that appears in some resident node h's neighbour
// list is served by h — a semantically similar substitute — instead of going
// to remote storage. Residents are replaced FIFO so the substitute pool
// keeps rotating, "fostering greater diversity in the training data".
type Homophily struct {
	capacity int
	entries  map[int]*homEntry // host node ID -> entry
	order    []int             // FIFO of host node IDs
	headIdx  int
	// neighbour ID -> host node IDs currently advertising it. Multiple
	// hosts may share a neighbour; lookup picks the oldest host for
	// deterministic behaviour.
	byNeighbor map[int][]int
	evictions  int64
}

type homEntry struct {
	item      Item
	neighbors []int
}

// NewHomophily returns an empty homophily cache holding up to capacity host
// nodes.
func NewHomophily(capacity int) *Homophily {
	checkCap(capacity)
	return &Homophily{
		capacity:   capacity,
		entries:    make(map[int]*homEntry, capacity),
		byNeighbor: make(map[int][]int),
	}
}

// Get reports whether host node id itself is resident.
func (c *Homophily) Get(id int) (Item, bool) {
	e, ok := c.entries[id]
	if !ok {
		return Item{}, false
	}
	return e.item, true
}

// LookupNeighbor reports whether requested sample id appears in a resident
// node's neighbour list, returning that host node's item as the substitute
// (Case 3 of the paper's walkthrough).
func (c *Homophily) LookupNeighbor(id int) (Item, bool) {
	hosts := c.byNeighbor[id]
	if len(hosts) == 0 {
		return Item{}, false
	}
	e := c.entries[hosts[0]]
	return e.item, true
}

// Contains reports whether host node id is resident (used by Algorithm 1 to
// pick a top-degree node "not previously in the Homophily Cache").
func (c *Homophily) Contains(id int) bool {
	_, ok := c.entries[id]
	return ok
}

// Put inserts a high-degree host node with its neighbour ID list, evicting
// the oldest resident when full (FIFO). Re-putting a resident host refreshes
// its neighbour list in place without changing its queue position.
func (c *Homophily) Put(item Item, neighbors []int) bool {
	if c.capacity == 0 {
		return false
	}
	if e, ok := c.entries[item.ID]; ok {
		c.dropNeighbors(item.ID, e.neighbors)
		e.item = item
		e.neighbors = append([]int(nil), neighbors...)
		c.addNeighbors(item.ID, e.neighbors)
		return true
	}
	if len(c.entries) >= c.capacity {
		c.evictOldest()
	}
	e := &homEntry{item: item, neighbors: append([]int(nil), neighbors...)}
	c.entries[item.ID] = e
	c.order = append(c.order, item.ID)
	c.addNeighbors(item.ID, e.neighbors)
	if c.headIdx > len(c.order)/2 && c.headIdx > 64 {
		c.order = append([]int(nil), c.order[c.headIdx:]...)
		c.headIdx = 0
	}
	return true
}

// Resize changes the capacity, evicting oldest residents when shrinking.
func (c *Homophily) Resize(capacity int) {
	checkCap(capacity)
	c.capacity = capacity
	for len(c.entries) > capacity {
		c.evictOldest()
	}
}

// Len returns the number of resident host nodes.
func (c *Homophily) Len() int { return len(c.entries) }

// Cap returns the host-node capacity.
func (c *Homophily) Cap() int { return c.capacity }

// NeighborCoverage returns how many distinct sample IDs are currently
// servable as neighbours of some resident host.
func (c *Homophily) NeighborCoverage() int { return len(c.byNeighbor) }

// Evictions returns the cumulative number of FIFO-displaced host nodes.
func (c *Homophily) Evictions() int64 { return c.evictions }

func (c *Homophily) evictOldest() {
	for c.headIdx < len(c.order) {
		id := c.order[c.headIdx]
		c.headIdx++
		if e, ok := c.entries[id]; ok {
			c.dropNeighbors(id, e.neighbors)
			delete(c.entries, id)
			c.evictions++
			return
		}
	}
}

func (c *Homophily) addNeighbors(host int, neighbors []int) {
	for _, nb := range neighbors {
		c.byNeighbor[nb] = append(c.byNeighbor[nb], host)
	}
}

func (c *Homophily) dropNeighbors(host int, neighbors []int) {
	for _, nb := range neighbors {
		hosts := c.byNeighbor[nb]
		for i, h := range hosts {
			if h == host {
				hosts = append(hosts[:i], hosts[i+1:]...)
				break
			}
		}
		if len(hosts) == 0 {
			delete(c.byNeighbor, nb)
		} else {
			c.byNeighbor[nb] = hosts
		}
	}
}
