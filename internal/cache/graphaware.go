package cache

// GraphAware is a GreedyDual-family eviction policy with neighbour score
// propagation, in the spirit of graph-native stores (GraphKV) that keep a
// vertex hot while its neighbourhood is hot. Each resident carries a
// priority score; a touch (Get hit or Put) lifts the touched sample to
// max(score, age)+graphBoost and also credits its *resident* graph
// neighbours with a smaller increment, so a sample whose semantic
// neighbourhood sees traffic accumulates standing even if it is never
// re-requested itself. Eviction takes the minimum-score resident (oldest
// touch breaking ties, so the nil-graph degenerate case orders exactly
// like LRU) and raises the global age to the victim's score — the
// GreedyDual ageing trick that lets stale neighbourhood credit expire
// without per-item timers: once traffic moves elsewhere, the floor
// climbs to the abandoned cluster's frozen scores and reclaims it.
//
// The neighbour relation is supplied as a callback so callers choose the
// graph: the experiment harness derives bounded-degree neighbour lists
// from dataset labels (samples of the same class in a ring), matching the
// homophily structure SpiderCache exploits.
type GraphAware struct {
	capacity  int
	neighbors func(id int) []int
	entries   map[int]*gaEntry
	heap      []*gaEntry
	age       float64
	seq       int64
	evictions int64
}

type gaEntry struct {
	item  Item
	score float64
	seq   int64 // last direct touch, for LRU tie-breaking
	pos   int
}

const (
	// graphBoost is the credit a direct touch adds above the ageing floor.
	graphBoost = 1.0
	// graphSpill is the credit spilled to each resident neighbour of a
	// touched sample. Below graphBoost so spilled standing accrues slower
	// than direct hits, but accumulates across touches: a neighbourhood
	// under sustained traffic outscores one-shot scan entries.
	graphSpill = 0.4
)

// NewGraphAware returns an empty graph-aware cache holding up to capacity
// items. neighbors may be nil, degrading to GreedyDual ageing with LRU
// tie-breaking.
func NewGraphAware(capacity int, neighbors func(id int) []int) *GraphAware {
	checkCap(capacity)
	return &GraphAware{
		capacity:  capacity,
		neighbors: neighbors,
		entries:   make(map[int]*gaEntry, capacity),
	}
}

// Get reports whether id is cached, recording the touch and propagating
// neighbour credit on a hit.
func (c *GraphAware) Get(id int) (Item, bool) {
	e, ok := c.entries[id]
	if !ok {
		return Item{}, false
	}
	c.touch(e)
	return e.item, true
}

// Put admits the item, evicting the minimum-score resident when full. It
// reports whether the item resides in the cache afterwards (always, when
// capacity is non-zero: a fresh touch scores age+graphBoost, strictly
// above the eviction floor, so admission never fails).
func (c *GraphAware) Put(item Item) bool {
	if c.capacity == 0 {
		return false
	}
	if e, ok := c.entries[item.ID]; ok {
		e.item = item
		c.touch(e)
		return true
	}
	if len(c.entries) >= c.capacity {
		victim := c.heap[0]
		c.age = victim.score
		c.removeAt(0)
		delete(c.entries, victim.item.ID)
		c.evictions++
	}
	e := &gaEntry{item: item, pos: len(c.heap)}
	c.entries[item.ID] = e
	c.heap = append(c.heap, e)
	c.touch(e)
	return true
}

// Len returns the number of cached items.
func (c *GraphAware) Len() int { return len(c.entries) }

// Cap returns the item capacity.
func (c *GraphAware) Cap() int { return c.capacity }

// Evictions returns the cumulative number of displaced residents.
func (c *GraphAware) Evictions() int64 { return c.evictions }

// Score returns the current priority of a resident (tests and debugging).
func (c *GraphAware) Score(id int) (float64, bool) {
	e, ok := c.entries[id]
	if !ok {
		return 0, false
	}
	return e.score, true
}

// touch credits e with a full boost above the ageing floor, stamps its
// recency sequence, and spills partial credit onto resident neighbours.
// Scores only ever rise, so heap maintenance is a sift-down per credited
// entry.
func (c *GraphAware) touch(e *gaEntry) {
	c.seq++
	e.seq = c.seq
	c.credit(e, graphBoost)
	if c.neighbors == nil {
		return
	}
	for _, nb := range c.neighbors(e.item.ID) {
		if ne, ok := c.entries[nb]; ok && ne != e {
			c.credit(ne, graphSpill)
		}
	}
}

// credit raises e's score to max(score, age)+boost: entries above the
// floor accumulate standing with every credit (frequency), entries the
// floor has overtaken restart from it (ageing). Sifting both ways covers
// the one raise that can still move an entry up — a fresh insert leaving
// its zero-score leaf position.
func (c *GraphAware) credit(e *gaEntry, boost float64) {
	base := e.score
	if c.age > base {
		base = c.age
	}
	e.score = base + boost
	c.siftDownGA(e.pos)
	c.siftUpGA(e.pos)
}

// less orders the eviction heap: lowest score first, oldest direct touch
// breaking ties.
func (c *GraphAware) less(i, j int) bool {
	a, b := c.heap[i], c.heap[j]
	if a.score != b.score {
		return a.score < b.score
	}
	return a.seq < b.seq
}

func (c *GraphAware) swapGA(i, j int) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.heap[i].pos = i
	c.heap[j].pos = j
}

func (c *GraphAware) siftUpGA(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.less(i, parent) {
			return
		}
		c.swapGA(i, parent)
		i = parent
	}
}

func (c *GraphAware) siftDownGA(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && c.less(l, small) {
			small = l
		}
		if r < n && c.less(r, small) {
			small = r
		}
		if small == i {
			return
		}
		c.swapGA(i, small)
		i = small
	}
}

func (c *GraphAware) removeAt(i int) {
	last := len(c.heap) - 1
	c.swapGA(i, last)
	c.heap = c.heap[:last]
	if i < last {
		c.siftDownGA(i)
		c.siftUpGA(i)
	}
}
