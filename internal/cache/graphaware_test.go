package cache

import (
	"fmt"
	"testing"
)

// cliqueNeighbors links ids [0,n) into a full clique.
func cliqueNeighbors(n int) func(id int) []int {
	return func(id int) []int {
		if id < 0 || id >= n {
			return nil
		}
		out := make([]int, 0, n-1)
		for i := 0; i < n; i++ {
			if i != id {
				out = append(out, i)
			}
		}
		return out
	}
}

func TestGraphAwareBasics(t *testing.T) {
	c := NewGraphAware(2, nil)
	if ok := c.Put(Item{ID: 1, Size: 10}); !ok {
		t.Fatal("put rejected")
	}
	c.Put(Item{ID: 2, Size: 10})
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("len=%d cap=%d", c.Len(), c.Cap())
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("1 not resident")
	}
	// 2 is now the minimum; inserting 3 must evict it.
	c.Put(Item{ID: 3, Size: 10})
	if _, ok := c.Get(2); ok {
		t.Fatal("2 survived eviction")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("touched 1 was evicted instead of stale 2")
	}
	if c.Evictions() != 1 {
		t.Fatalf("evictions = %d", c.Evictions())
	}

	zero := NewGraphAware(0, nil)
	if zero.Put(Item{ID: 1}) {
		t.Fatal("zero-capacity cache admitted an item")
	}
}

// TestGraphAwareNilNeighborsIsGreedyDual: without a graph the policy
// degenerates to GreedyDual ageing, which evicts in exact recency order.
func TestGraphAwareNilNeighborsIsGreedyDual(t *testing.T) {
	c := NewGraphAware(4, nil)
	for id := 0; id < 4; id++ {
		c.Put(Item{ID: id})
	}
	// Touch in reverse so 3 is stalest... then 0 freshest.
	for id := 3; id >= 0; id-- {
		c.Get(id)
	}
	for want := 3; want >= 1; want-- {
		c.Put(Item{ID: 100 + want})
		if _, ok := c.Get(want); ok {
			t.Fatalf("expected %d to be the eviction victim", want)
		}
	}
	if _, ok := c.Get(0); !ok {
		t.Fatal("freshest entry evicted")
	}
}

// TestGraphAwareNeighborhoodSurvivesScan is the policy's reason to exist:
// a cold sequential scan evicts an LRU cache's entire working set, but
// under graph-aware scoring the hot sample's neighbourhood keeps
// receiving spilled credit and outlives the scan.
func TestGraphAwareNeighborhoodSurvivesScan(t *testing.T) {
	const cluster = 10
	const capacity = 16
	ga := NewGraphAware(capacity, cliqueNeighbors(cluster))
	lru := NewLRU(capacity)
	for id := 0; id < cluster; id++ {
		ga.Put(Item{ID: id})
		lru.Put(Item{ID: id})
	}
	// One hot sample; every other access is a never-repeating scan key.
	for i := 0; i < 500; i++ {
		ga.Get(0)
		lru.Get(0)
		scan := Item{ID: 1000 + i}
		ga.Put(scan)
		lru.Put(scan)
	}
	gaAlive, lruAlive := 0, 0
	for id := 1; id < cluster; id++ {
		if _, ok := ga.entries[id]; ok { // entries, not Get: no touch
			gaAlive++
		}
		if _, ok := lru.Get(id); ok {
			lruAlive++
		}
	}
	if lruAlive != 0 {
		t.Fatalf("LRU kept %d untouched cluster members through a scan; scan too short", lruAlive)
	}
	if gaAlive != cluster-1 {
		t.Fatalf("graph-aware cache kept %d/%d of the hot sample's neighbourhood", gaAlive, cluster-1)
	}
}

// TestGraphAwareScoreMonotone checks the GreedyDual invariant: the global
// age never exceeds any resident's score, so every admission lands above
// the eviction floor.
func TestGraphAwareScoreMonotone(t *testing.T) {
	c := NewGraphAware(8, cliqueNeighbors(64))
	for i := 0; i < 1000; i++ {
		c.Put(Item{ID: i % 64})
		if i%3 == 0 {
			c.Get((i * 7) % 64)
		}
		for id := range c.entries {
			s, ok := c.Score(id)
			if !ok || s < c.age {
				t.Fatalf("resident %d score %g below age %g", id, s, c.age)
			}
		}
	}
}

func BenchmarkGraphAware(b *testing.B) {
	for _, deg := range []int{0, 8} {
		b.Run(fmt.Sprintf("degree=%d", deg), func(b *testing.B) {
			var nb func(int) []int
			if deg > 0 {
				nb = func(id int) []int {
					out := make([]int, deg)
					for j := range out {
						out[j] = (id + j + 1) % 1024
					}
					return out
				}
			}
			c := NewGraphAware(512, nb)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				id := i % 1024
				if _, ok := c.Get(id); !ok {
					c.Put(Item{ID: id})
				}
			}
		})
	}
}
