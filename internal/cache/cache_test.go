package cache

import (
	"testing"
	"testing/quick"

	"spidercache/internal/xrand"
)

func TestLRUEvictionOrder(t *testing.T) {
	c := NewLRU(2)
	c.Put(Item{ID: 1, Size: 10})
	c.Put(Item{ID: 2, Size: 10})
	if _, ok := c.Get(1); !ok { // touch 1: now 2 is LRU
		t.Fatal("item 1 missing")
	}
	c.Put(Item{ID: 3, Size: 10}) // evicts 2
	if _, ok := c.Get(2); ok {
		t.Fatal("LRU victim 2 still present")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("recently used 1 evicted")
	}
	if _, ok := c.Get(3); !ok {
		t.Fatal("new item 3 missing")
	}
}

func TestLRUUpdateExisting(t *testing.T) {
	c := NewLRU(2)
	c.Put(Item{ID: 1, Size: 10})
	c.Put(Item{ID: 1, Size: 99})
	if c.Len() != 1 {
		t.Fatalf("duplicate Put grew cache to %d", c.Len())
	}
	it, _ := c.Get(1)
	if it.Size != 99 {
		t.Fatalf("size not refreshed: %d", it.Size)
	}
}

func TestLRUZeroCapacity(t *testing.T) {
	c := NewLRU(0)
	if c.Put(Item{ID: 1}) {
		t.Fatal("zero-capacity cache admitted an item")
	}
	if c.Len() != 0 {
		t.Fatal("zero-capacity cache non-empty")
	}
}

func TestLFUEvictsLeastFrequent(t *testing.T) {
	c := NewLFU(2)
	c.Put(Item{ID: 1})
	c.Put(Item{ID: 2})
	c.Get(1)
	c.Get(1) // freq(1)=3, freq(2)=1
	c.Put(Item{ID: 3})
	if _, ok := c.Get(2); ok {
		t.Fatal("LFU victim 2 still present")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("frequent item 1 evicted")
	}
}

func TestLFUTieBreaksByAge(t *testing.T) {
	c := NewLFU(2)
	c.Put(Item{ID: 1})
	c.Put(Item{ID: 2}) // same freq; 1 is older
	c.Put(Item{ID: 3})
	if _, ok := c.Get(1); ok {
		t.Fatal("older tie 1 survived")
	}
	if _, ok := c.Get(2); !ok {
		t.Fatal("newer tie 2 evicted")
	}
}

func TestFIFOEvictsOldest(t *testing.T) {
	c := NewFIFO(2)
	c.Put(Item{ID: 1})
	c.Put(Item{ID: 2})
	c.Get(1) // FIFO ignores recency
	c.Put(Item{ID: 3})
	if _, ok := c.Get(1); ok {
		t.Fatal("FIFO kept oldest item despite Get")
	}
}

func TestFIFOCompaction(t *testing.T) {
	c := NewFIFO(4)
	for i := 0; i < 1000; i++ {
		c.Put(Item{ID: i})
	}
	if c.Len() != 4 {
		t.Fatalf("Len = %d", c.Len())
	}
	for i := 996; i < 1000; i++ {
		if _, ok := c.Get(i); !ok {
			t.Fatalf("latest item %d missing", i)
		}
	}
}

func TestStaticNeverEvicts(t *testing.T) {
	c := NewStatic(2)
	if !c.Put(Item{ID: 1}) || !c.Put(Item{ID: 2}) {
		t.Fatal("admission failed with free space")
	}
	if c.Put(Item{ID: 3}) {
		t.Fatal("full static cache admitted an item")
	}
	if _, ok := c.Get(1); !ok {
		t.Fatal("static resident evicted")
	}
	// Refresh of a resident is allowed.
	if !c.Put(Item{ID: 1, Size: 5}) {
		t.Fatal("refresh rejected")
	}
}

func TestRandomReplaceEvictsSomething(t *testing.T) {
	c := NewRandomReplace(3, xrand.New(1))
	for i := 0; i < 100; i++ {
		c.Put(Item{ID: i})
	}
	if c.Len() != 3 {
		t.Fatalf("Len = %d", c.Len())
	}
	it, ok := c.RandomResident()
	if !ok {
		t.Fatal("RandomResident on non-empty cache failed")
	}
	if _, found := c.Get(it.ID); !found {
		t.Fatal("RandomResident returned non-resident")
	}
}

func TestRandomReplaceEmptyResident(t *testing.T) {
	c := NewRandomReplace(3, xrand.New(1))
	if _, ok := c.RandomResident(); ok {
		t.Fatal("empty cache returned a resident")
	}
}

func TestImportanceAdmissionRules(t *testing.T) {
	c := NewImportance(2)
	c.Put(Item{ID: 1}, 0.3) // Case: free space -> admit
	c.Put(Item{ID: 2}, 0.5)
	if min, ok := c.MinScore(); !ok || min != 0.3 {
		t.Fatalf("MinScore = %v,%v", min, ok)
	}
	// Case 2: lower score than min -> rejected.
	if c.Put(Item{ID: 3}, 0.2) {
		t.Fatal("low-score item displaced a better one")
	}
	// Case 4: higher score -> evict min.
	if !c.Put(Item{ID: 4}, 0.6) {
		t.Fatal("high-score item rejected")
	}
	if _, ok := c.Get(1); ok {
		t.Fatal("min-score item survived displacement")
	}
	if min, _ := c.MinScore(); min != 0.5 {
		t.Fatalf("new MinScore = %v", min)
	}
}

func TestImportanceUpdateScore(t *testing.T) {
	c := NewImportance(2)
	c.Put(Item{ID: 1}, 0.9)
	c.Put(Item{ID: 2}, 0.8)
	if !c.UpdateScore(1, 0.1) {
		t.Fatal("UpdateScore on resident failed")
	}
	if c.UpdateScore(99, 0.5) {
		t.Fatal("UpdateScore on absent id succeeded")
	}
	c.Put(Item{ID: 3}, 0.5) // should now displace 1 (score 0.1)
	if _, ok := c.Get(1); ok {
		t.Fatal("re-scored item not evicted first")
	}
}

func TestImportanceResize(t *testing.T) {
	c := NewImportance(4)
	for i := 0; i < 4; i++ {
		c.Put(Item{ID: i}, float64(i))
	}
	c.Resize(2) // evicts scores 0 and 1
	if c.Len() != 2 || c.Cap() != 2 {
		t.Fatalf("after shrink Len=%d Cap=%d", c.Len(), c.Cap())
	}
	for _, id := range []int{0, 1} {
		if _, ok := c.Get(id); ok {
			t.Fatalf("low-score %d survived shrink", id)
		}
	}
	for _, id := range []int{2, 3} {
		if _, ok := c.Get(id); !ok {
			t.Fatalf("high-score %d evicted by shrink", id)
		}
	}
	c.Resize(10)
	if !c.Put(Item{ID: 9}, 0.01) {
		t.Fatal("grown cache rejected admission")
	}
}

// Property: Importance never exceeds capacity and always keeps the items
// with the highest scores among those offered (when scores are distinct and
// only inserted once).
func TestImportanceKeepsTopScores(t *testing.T) {
	check := func(seed uint16) bool {
		rng := xrand.New(uint64(seed))
		cap := 1 + rng.Intn(8)
		c := NewImportance(cap)
		n := cap + 1 + rng.Intn(20)
		scores := rng.Perm(n) // distinct scores 0..n-1
		for id, s := range scores {
			c.Put(Item{ID: id}, float64(s))
		}
		if c.Len() > cap {
			return false
		}
		// The kept items must be exactly those with the top-cap scores.
		for id, s := range scores {
			_, resident := c.Get(id)
			wantResident := s >= n-cap
			if resident != wantResident {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestHomophilyNeighborLookup(t *testing.T) {
	c := NewHomophily(2)
	c.Put(Item{ID: 100}, []int{1, 2, 3})
	if it, ok := c.LookupNeighbor(2); !ok || it.ID != 100 {
		t.Fatalf("LookupNeighbor(2) = %+v, %v", it, ok)
	}
	if _, ok := c.LookupNeighbor(9); ok {
		t.Fatal("unknown neighbour matched")
	}
	if !c.Contains(100) {
		t.Fatal("Contains(host) false")
	}
	if _, ok := c.Get(100); !ok {
		t.Fatal("host itself not retrievable")
	}
}

func TestHomophilyFIFOEviction(t *testing.T) {
	c := NewHomophily(2)
	c.Put(Item{ID: 100}, []int{1})
	c.Put(Item{ID: 200}, []int{2})
	c.Put(Item{ID: 300}, []int{3}) // evicts 100
	if c.Contains(100) {
		t.Fatal("oldest host not evicted")
	}
	if _, ok := c.LookupNeighbor(1); ok {
		t.Fatal("evicted host's neighbours still served")
	}
	if it, ok := c.LookupNeighbor(3); !ok || it.ID != 300 {
		t.Fatal("new host's neighbours not served")
	}
}

func TestHomophilySharedNeighbors(t *testing.T) {
	c := NewHomophily(3)
	c.Put(Item{ID: 100}, []int{7})
	c.Put(Item{ID: 200}, []int{7})
	// Lookup picks the oldest host deterministically.
	if it, _ := c.LookupNeighbor(7); it.ID != 100 {
		t.Fatalf("expected oldest host 100, got %d", it.ID)
	}
	c.Put(Item{ID: 300}, []int{9})
	c.Put(Item{ID: 400}, []int{9}) // evicts 100
	if it, ok := c.LookupNeighbor(7); !ok || it.ID != 200 {
		t.Fatalf("after eviction LookupNeighbor(7) = %+v,%v", it, ok)
	}
}

func TestHomophilyRefreshKeepsQueuePosition(t *testing.T) {
	c := NewHomophily(2)
	c.Put(Item{ID: 100}, []int{1})
	c.Put(Item{ID: 200}, []int{2})
	c.Put(Item{ID: 100}, []int{5}) // refresh neighbours, still oldest
	if _, ok := c.LookupNeighbor(1); ok {
		t.Fatal("stale neighbour list survived refresh")
	}
	if _, ok := c.LookupNeighbor(5); !ok {
		t.Fatal("refreshed neighbour list not installed")
	}
	c.Put(Item{ID: 300}, []int{3}) // evicts 100 (queue position unchanged)
	if c.Contains(100) {
		t.Fatal("refreshed host jumped the FIFO queue")
	}
}

func TestHomophilyResize(t *testing.T) {
	c := NewHomophily(4)
	for i := 0; i < 4; i++ {
		c.Put(Item{ID: 100 + i}, []int{i})
	}
	c.Resize(2)
	if c.Len() != 2 {
		t.Fatalf("Len after shrink = %d", c.Len())
	}
	if c.Contains(100) || c.Contains(101) {
		t.Fatal("oldest hosts survived shrink")
	}
	if c.NeighborCoverage() != 2 {
		t.Fatalf("NeighborCoverage = %d", c.NeighborCoverage())
	}
}

// Property: every cache type respects its capacity under arbitrary
// workloads.
func TestCapacityInvariant(t *testing.T) {
	check := func(seed uint16, capRaw uint8) bool {
		rng := xrand.New(uint64(seed))
		capacity := int(capRaw%16) + 1
		caches := []Basic{
			NewLRU(capacity),
			NewLFU(capacity),
			NewFIFO(capacity),
			NewStatic(capacity),
			NewRandomReplace(capacity, xrand.New(uint64(seed)+1)),
		}
		imp := NewImportance(capacity)
		hom := NewHomophily(capacity)
		for op := 0; op < 300; op++ {
			id := rng.Intn(40)
			for _, c := range caches {
				if rng.Float64() < 0.5 {
					c.Put(Item{ID: id})
				} else {
					c.Get(id)
				}
			}
			imp.Put(Item{ID: id}, rng.Float64())
			hom.Put(Item{ID: id}, []int{rng.Intn(40)})
		}
		for _, c := range caches {
			if c.Len() > capacity {
				return false
			}
		}
		return imp.Len() <= capacity && hom.Len() <= capacity
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative capacity accepted")
		}
	}()
	NewLRU(-1)
}
