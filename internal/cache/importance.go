package cache

// Importance is the score-driven cache of the paper's Section 4.2: a
// min-heap keyed by importance score evicts the least important resident
// sample when a more important one arrives. SHADE's cache, iCache's H-sample
// region and SpiderCache's Importance Cache are all instances of it.
type Importance struct {
	capacity  int
	entries   map[int]*impEntry
	heap      []*impEntry
	evictions int64
}

type impEntry struct {
	item  Item
	score float64
	pos   int
}

// NewImportance returns an empty importance cache holding up to capacity
// items.
func NewImportance(capacity int) *Importance {
	checkCap(capacity)
	return &Importance{capacity: capacity, entries: make(map[int]*impEntry, capacity)}
}

// Get reports whether id is cached.
func (c *Importance) Get(id int) (Item, bool) {
	e, ok := c.entries[id]
	if !ok {
		return Item{}, false
	}
	return e.item, true
}

// MinScore returns the score at the heap top (the eviction candidate) and
// whether the cache is non-empty. Case 2 of the paper's walkthrough: an
// arriving sample scoring below MinScore does not displace anything.
func (c *Importance) MinScore() (float64, bool) {
	if len(c.heap) == 0 {
		return 0, false
	}
	return c.heap[0].score, true
}

// Put offers item with the given importance score. While free space remains
// the item is admitted unconditionally; once full it displaces the minimum
// only when score exceeds it (Case 4 of the paper's walkthrough). It reports
// whether the item is resident afterwards.
func (c *Importance) Put(item Item, score float64) bool {
	if c.capacity == 0 {
		return false
	}
	if e, ok := c.entries[item.ID]; ok {
		e.item = item
		c.updateAt(e, score)
		return true
	}
	if len(c.entries) >= c.capacity {
		if c.heap[0].score >= score {
			return false
		}
		victim := c.heap[0]
		c.removeAt(0)
		delete(c.entries, victim.item.ID)
		c.evictions++
	}
	e := &impEntry{item: item, score: score, pos: len(c.heap)}
	c.entries[item.ID] = e
	c.heap = append(c.heap, e)
	c.siftUp(e.pos)
	return true
}

// UpdateScore adjusts the score of a resident item (scores drift as the
// graph-based IS re-evaluates samples). It reports whether id was resident.
func (c *Importance) UpdateScore(id int, score float64) bool {
	e, ok := c.entries[id]
	if !ok {
		return false
	}
	c.updateAt(e, score)
	return true
}

// Resize changes the capacity. Shrinking evicts the lowest-score entries
// until the new capacity is met; growing takes effect immediately. This is
// how the Elastic Cache Manager moves space between cache sections.
func (c *Importance) Resize(capacity int) {
	checkCap(capacity)
	c.capacity = capacity
	for len(c.entries) > capacity {
		victim := c.heap[0]
		c.removeAt(0)
		delete(c.entries, victim.item.ID)
		c.evictions++
	}
}

// Evictions returns the cumulative number of displaced residents (both
// score-based displacement in Put and shrink evictions in Resize).
func (c *Importance) Evictions() int64 { return c.evictions }

// Len returns the number of cached items.
func (c *Importance) Len() int { return len(c.entries) }

// Cap returns the item capacity.
func (c *Importance) Cap() int { return c.capacity }

func (c *Importance) updateAt(e *impEntry, score float64) {
	old := e.score
	e.score = score
	if score < old {
		c.siftUp(e.pos)
	} else {
		c.siftDown(e.pos)
	}
}

func (c *Importance) swap(i, j int) {
	c.heap[i], c.heap[j] = c.heap[j], c.heap[i]
	c.heap[i].pos = i
	c.heap[j].pos = j
}

func (c *Importance) siftUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if c.heap[parent].score <= c.heap[i].score {
			return
		}
		c.swap(i, parent)
		i = parent
	}
}

func (c *Importance) siftDown(i int) {
	n := len(c.heap)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && c.heap[l].score < c.heap[small].score {
			small = l
		}
		if r < n && c.heap[r].score < c.heap[small].score {
			small = r
		}
		if small == i {
			return
		}
		c.swap(i, small)
		i = small
	}
}

func (c *Importance) removeAt(i int) {
	last := len(c.heap) - 1
	c.swap(i, last)
	c.heap = c.heap[:last]
	if i < last {
		c.siftDown(i)
		c.siftUp(i)
	}
}
