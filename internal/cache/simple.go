package cache

import "spidercache/internal/xrand"

// FIFO evicts in insertion order.
type FIFO struct {
	capacity int
	entries  map[int]Item
	order    []int // ring buffer of IDs in insertion order
	headIdx  int
}

// NewFIFO returns an empty FIFO cache holding up to capacity items.
func NewFIFO(capacity int) *FIFO {
	checkCap(capacity)
	return &FIFO{capacity: capacity, entries: make(map[int]Item, capacity)}
}

// Get reports whether id is cached (no recency effect).
func (c *FIFO) Get(id int) (Item, bool) {
	it, ok := c.entries[id]
	return it, ok
}

// Put admits item, evicting the oldest entry when full. Re-putting a
// resident item refreshes its payload but not its queue position.
func (c *FIFO) Put(item Item) bool {
	if c.capacity == 0 {
		return false
	}
	if _, ok := c.entries[item.ID]; ok {
		c.entries[item.ID] = item
		return true
	}
	if len(c.entries) >= c.capacity {
		victim := c.order[c.headIdx]
		c.headIdx++
		delete(c.entries, victim)
	}
	c.entries[item.ID] = item
	c.order = append(c.order, item.ID)
	// Compact the consumed prefix occasionally to bound memory.
	if c.headIdx > len(c.order)/2 && c.headIdx > 64 {
		c.order = append([]int(nil), c.order[c.headIdx:]...)
		c.headIdx = 0
	}
	return true
}

// Len returns the number of cached items.
func (c *FIFO) Len() int { return len(c.entries) }

// Cap returns the item capacity.
func (c *FIFO) Cap() int { return c.capacity }

// Static is CoorDL's MinIO cache: items are admitted until the cache fills
// and are never replaced, so across epochs the same subset always hits.
type Static struct {
	capacity int
	entries  map[int]Item
}

// NewStatic returns an empty static (MinIO) cache.
func NewStatic(capacity int) *Static {
	checkCap(capacity)
	return &Static{capacity: capacity, entries: make(map[int]Item, capacity)}
}

// Get reports whether id is cached.
func (c *Static) Get(id int) (Item, bool) {
	it, ok := c.entries[id]
	return it, ok
}

// Put admits item only while free space remains; it never evicts.
func (c *Static) Put(item Item) bool {
	if _, ok := c.entries[item.ID]; ok {
		c.entries[item.ID] = item
		return true
	}
	if len(c.entries) >= c.capacity {
		return false
	}
	c.entries[item.ID] = item
	return true
}

// Len returns the number of cached items.
func (c *Static) Len() int { return len(c.entries) }

// Cap returns the item capacity.
func (c *Static) Cap() int { return c.capacity }

// RandomReplace evicts a uniformly random resident item when full — the
// replacement rule iCache applies to its L-sample (non-important) cache
// region.
type RandomReplace struct {
	capacity int
	entries  map[int]int // id -> index in ids
	ids      []int
	items    []Item
	rng      *xrand.Rand
}

// NewRandomReplace returns an empty random-replacement cache; rng drives
// victim selection deterministically.
func NewRandomReplace(capacity int, rng *xrand.Rand) *RandomReplace {
	checkCap(capacity)
	return &RandomReplace{capacity: capacity, entries: make(map[int]int, capacity), rng: rng}
}

// Get reports whether id is cached.
func (c *RandomReplace) Get(id int) (Item, bool) {
	idx, ok := c.entries[id]
	if !ok {
		return Item{}, false
	}
	return c.items[idx], true
}

// Put admits item, evicting a random resident entry when full.
func (c *RandomReplace) Put(item Item) bool {
	if c.capacity == 0 {
		return false
	}
	if idx, ok := c.entries[item.ID]; ok {
		c.items[idx] = item
		return true
	}
	if len(c.ids) >= c.capacity {
		v := c.rng.Intn(len(c.ids))
		delete(c.entries, c.ids[v])
		last := len(c.ids) - 1
		c.ids[v], c.items[v] = c.ids[last], c.items[last]
		c.entries[c.ids[v]] = v
		c.ids = c.ids[:last]
		c.items = c.items[:last]
	}
	c.entries[item.ID] = len(c.ids)
	c.ids = append(c.ids, item.ID)
	c.items = append(c.items, item)
	return true
}

// RandomResident returns a uniformly random cached item, used by iCache to
// serve a substitute for an L-sample miss. ok is false when empty.
func (c *RandomReplace) RandomResident() (Item, bool) {
	if len(c.ids) == 0 {
		return Item{}, false
	}
	return c.items[c.rng.Intn(len(c.items))], true
}

// Len returns the number of cached items.
func (c *RandomReplace) Len() int { return len(c.ids) }

// Cap returns the item capacity.
func (c *RandomReplace) Cap() int { return c.capacity }
