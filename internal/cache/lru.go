package cache

// LRU is a least-recently-used cache over sample items.
type LRU struct {
	capacity int
	entries  map[int]*lruNode
	head     *lruNode // most recent
	tail     *lruNode // least recent
}

type lruNode struct {
	item       Item
	prev, next *lruNode
}

// NewLRU returns an empty LRU cache holding up to capacity items.
func NewLRU(capacity int) *LRU {
	checkCap(capacity)
	return &LRU{capacity: capacity, entries: make(map[int]*lruNode, capacity)}
}

// Get reports whether id is cached, marking it most recently used.
func (c *LRU) Get(id int) (Item, bool) {
	n, ok := c.entries[id]
	if !ok {
		return Item{}, false
	}
	c.moveToFront(n)
	return n.item, true
}

// Put admits item, evicting the least recently used entry when full.
func (c *LRU) Put(item Item) bool {
	if c.capacity == 0 {
		return false
	}
	if n, ok := c.entries[item.ID]; ok {
		n.item = item
		c.moveToFront(n)
		return true
	}
	if len(c.entries) >= c.capacity {
		c.evictTail()
	}
	n := &lruNode{item: item}
	c.entries[item.ID] = n
	c.pushFront(n)
	return true
}

// Len returns the number of cached items.
func (c *LRU) Len() int { return len(c.entries) }

// Cap returns the item capacity.
func (c *LRU) Cap() int { return c.capacity }

func (c *LRU) pushFront(n *lruNode) {
	n.prev = nil
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *LRU) unlink(n *lruNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (c *LRU) moveToFront(n *lruNode) {
	if c.head == n {
		return
	}
	c.unlink(n)
	c.pushFront(n)
}

func (c *LRU) evictTail() {
	if c.tail == nil {
		return
	}
	victim := c.tail
	c.unlink(victim)
	delete(c.entries, victim.item.ID)
}
