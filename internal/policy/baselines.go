package policy

import (
	"fmt"
	"sort"

	"spidercache/internal/cache"
	"spidercache/internal/sampler"
	"spidercache/internal/xrand"
)

// simple wraps a Basic cache with a sampler: the shape of Baseline (LRU +
// random sampling), the LFU variant of Fig 3(b), and CoorDL (static MinIO
// cache + random sampling).
type simple struct {
	name    string
	cache   cache.Basic
	sampler sampler.Sampler
}

// NewBaselineLRU is the paper's Baseline: LRU cache, PyTorch-default random
// sampling.
func NewBaselineLRU(n, capacity int, seed uint64) (Policy, error) {
	return newSimple("Baseline", n, seed, cache.NewLRU(capacity))
}

// NewLFU pairs an LFU cache with random sampling (Fig 3b's second
// conventional policy).
func NewLFU(n, capacity int, seed uint64) (Policy, error) {
	return newSimple("LFU", n, seed, cache.NewLFU(capacity))
}

// NewCoorDL models CoorDL's MinIO cache: fill once, never evict, random
// sampling. Hit ratio converges to capacity/n.
func NewCoorDL(n, capacity int, seed uint64) (Policy, error) {
	return newSimple("CoorDL", n, seed, cache.NewStatic(capacity))
}

// NewGraphAware pairs the graph-aware GreedyDual cache with random
// sampling: eviction priority spills to a touched sample's graph
// neighbours, so semantically clustered access (the homophily the paper's
// datasets exhibit) keeps whole neighbourhoods resident. neighbors
// supplies each sample's bounded neighbour list and may be nil (plain
// GreedyDual).
func NewGraphAware(n, capacity int, seed uint64, neighbors func(id int) []int) (Policy, error) {
	return newSimple("GraphAware", n, seed, cache.NewGraphAware(capacity, neighbors))
}

func newSimple(name string, n int, seed uint64, c cache.Basic) (Policy, error) {
	u, err := sampler.NewUniform(n, seed)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return &simple{name: name, cache: c, sampler: u}, nil
}

func (p *simple) Name() string               { return p.name }
func (p *simple) EpochOrder(epoch int) []int { return p.sampler.EpochOrder(epoch) }

func (p *simple) Lookup(id int) Lookup {
	if _, ok := p.cache.Get(id); ok {
		return Lookup{Source: SourceCache, ServedID: id}
	}
	return Lookup{Source: SourceMiss, ServedID: id}
}

func (p *simple) OnMiss(id, size int)                  { p.cache.Put(cache.Item{ID: id, Size: size}) }
func (p *simple) OnBatchEnd(int, []Feedback)           {}
func (p *simple) OnEpochEnd(int, float64)              {}
func (p *simple) BackpropWeights([]Feedback) []float64 { return nil }
func (p *simple) HasGraphIS() bool                     { return false }

// Shade implements SHADE (Khan et al., FAST'23): per-mini-batch loss *rank*
// importance plus an importance-score cache. A sample's weight is its loss
// rank within the batch it was last seen in, (rank+1)/batchSize ∈ (0,1].
// This is exactly the weakness the paper's Motivation 1 targets: rank
// weights are only comparable within one batch — a batch of easy samples
// crowns its least-easy member with the same weight a genuinely hard sample
// gets elsewhere — so the global cache ordering SHADE builds from them is
// noisy.
type Shade struct {
	sampler  *sampler.Multinomial
	cache    *cache.Importance
	lastRank []float64 // batch-local rank weight per sample
}

// NewShade builds SHADE over n samples with the given cache capacity.
func NewShade(n, capacity int, seed uint64) (*Shade, error) {
	mn, err := sampler.NewMultinomial(n, seed)
	if err != nil {
		return nil, fmt.Errorf("SHADE: %w", err)
	}
	ranks := make([]float64, n)
	for i := range ranks {
		ranks[i] = 1 // unseen samples carry top rank until observed
	}
	if err := mn.SetWeights(ranks); err != nil {
		return nil, fmt.Errorf("SHADE: %w", err)
	}
	return &Shade{
		sampler:  mn,
		cache:    cache.NewImportance(capacity),
		lastRank: ranks,
	}, nil
}

// Name returns "SHADE".
func (p *Shade) Name() string { return "SHADE" }

// EpochOrder draws a loss-weighted multinomial order.
func (p *Shade) EpochOrder(epoch int) []int { return p.sampler.EpochOrder(epoch) }

// Lookup consults the importance cache.
func (p *Shade) Lookup(id int) Lookup {
	if _, ok := p.cache.Get(id); ok {
		return Lookup{Source: SourceCache, ServedID: id}
	}
	return Lookup{Source: SourceMiss, ServedID: id}
}

// OnMiss offers the fetched sample at its last batch-local rank score.
func (p *Shade) OnMiss(id, size int) {
	p.cache.Put(cache.Item{ID: id, Size: size}, p.lastRank[id])
}

// OnBatchEnd ranks the batch by loss and records the rank weights as both
// sampling weights and cache scores.
func (p *Shade) OnBatchEnd(_ int, fb []Feedback) {
	idx := make([]int, len(fb))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return fb[idx[a]].Loss < fb[idx[b]].Loss })
	for rank, i := range idx {
		id := fb[i].ID
		w := float64(rank+1) / float64(len(fb))
		p.lastRank[id] = w
		p.sampler.SetWeight(id, w)
		p.cache.UpdateScore(id, w)
	}
}

// OnEpochEnd is a no-op: SHADE has no accuracy feedback loop.
func (p *Shade) OnEpochEnd(int, float64) {}

// BackpropWeights trains every sample (SHADE does not skip backprop).
func (p *Shade) BackpropWeights([]Feedback) []float64 { return nil }

// HasGraphIS reports false: SHADE's loss ranking is free byproduct of the
// forward pass.
func (p *Shade) HasGraphIS() bool { return false }

// ICacheConfig tunes the iCache reproduction.
type ICacheConfig struct {
	// HFrac is the share of capacity given to the H-sample (importance)
	// region; the rest is the randomly-replaced L region.
	HFrac float64
	// SkipFrac is the per-batch fraction of lowest-loss samples whose
	// backprop is skipped (the compute-bound IS of Jiang et al.).
	SkipFrac float64
	// Substitute enables serving L-sample misses with a random resident of
	// the L region — the hit-boosting, accuracy-hurting behaviour the paper
	// observes (Fig 6b). Disabled for the iCache-imp ablation.
	Substitute bool
	// SubstituteProb bounds how often an eligible L-sample miss is served
	// by a substitute instead of remote storage. Without this bound the
	// substitution loop starves unseen samples entirely (a sample never
	// fetched is never trained, so it stays classified L forever).
	SubstituteProb float64
}

// DefaultICacheConfig returns the full-iCache setting.
func DefaultICacheConfig() ICacheConfig {
	return ICacheConfig{HFrac: 0.7, SkipFrac: 0.25, Substitute: true, SubstituteProb: 0.30}
}

// ICache reproduces iCache (Chen et al., HPCA'23): samples are split into
// important (H) and non-important (L) groups by loss; H-samples are cached
// by importance score, L-sample misses are served by random substitutes.
type ICache struct {
	cfg      ICacheConfig
	name     string
	sampler  *sampler.Selective
	hCache   *cache.Importance
	lCache   *cache.RandomReplace
	lastLoss []float64
	seen     []bool
	// lossEMA tracks the recent loss level (exponential moving average);
	// using a decaying mean instead of a cumulative one lets starved
	// samples re-qualify as H once the rest of the dataset has learned
	// past them, preventing a permanent substitution/starvation loop.
	lossEMA float64
	emaInit bool
	rng     *xrand.Rand
	// pendingSub maps a substitute's ID to the IDs of the samples it stood
	// in for during the current batch. iCache's replacement happens inside
	// the data loader, below the sampler's bookkeeping: the requested
	// index "was trained", so its recorded loss is overwritten with the
	// substitute's (typically low) loss. This identity confusion is what
	// silently starves mis-classified L-samples and costs accuracy.
	pendingSub map[int][]int
}

// NewICache builds the full iCache policy.
func NewICache(n, capacity int, cfg ICacheConfig, seed uint64) (*ICache, error) {
	if cfg.HFrac < 0 || cfg.HFrac > 1 {
		return nil, fmt.Errorf("iCache: HFrac must be in [0,1], got %g", cfg.HFrac)
	}
	sel, err := sampler.NewSelective(n, cfg.SkipFrac, seed)
	if err != nil {
		return nil, fmt.Errorf("iCache: %w", err)
	}
	hCap := int(float64(capacity) * cfg.HFrac)
	name := "iCache"
	if !cfg.Substitute {
		name = "iCache-imp"
		hCap = capacity // importance-only ablation uses the full budget
	}
	p := &ICache{
		cfg:        cfg,
		name:       name,
		sampler:    sel,
		hCache:     cache.NewImportance(hCap),
		lastLoss:   make([]float64, n),
		seen:       make([]bool, n),
		rng:        xrand.New(seed ^ 0x5b5b),
		pendingSub: make(map[int][]int),
	}
	if cfg.Substitute {
		p.lCache = cache.NewRandomReplace(capacity-hCap, xrand.New(seed^0x1ca11e))
	}
	return p, nil
}

// NewICacheImp builds the importance-cache-only ablation (Fig 14's
// "iCache-imp").
func NewICacheImp(n, capacity int, seed uint64) (*ICache, error) {
	cfg := DefaultICacheConfig()
	cfg.Substitute = false
	return NewICache(n, capacity, cfg, seed)
}

// Name returns "iCache" or "iCache-imp".
func (p *ICache) Name() string { return p.name }

// EpochOrder is a uniform permutation: compute-bound IS does not bias the
// sampling order, which is why its importance cache hits poorly (Fig 14).
func (p *ICache) EpochOrder(epoch int) []int { return p.sampler.EpochOrder(epoch) }

// meanLoss is the running H/L classification threshold (EMA of observed
// losses).
func (p *ICache) meanLoss() float64 { return p.lossEMA }

// Lookup checks the H region, then the L region, then — for L-classified
// samples under full iCache — serves a random substitute.
func (p *ICache) Lookup(id int) Lookup {
	if _, ok := p.hCache.Get(id); ok {
		return Lookup{Source: SourceCache, ServedID: id}
	}
	if p.lCache != nil {
		if _, ok := p.lCache.Get(id); ok {
			return Lookup{Source: SourceCache, ServedID: id}
		}
		// Substitute only samples that have been trained at least once and
		// classified L, and only with bounded probability (see
		// ICacheConfig.SubstituteProb).
		// Any sample whose recorded loss sits below the recent mean is
		// classified L — including samples never actually trained, whose
		// record is zero or was corrupted by an earlier substitution. This
		// is faithful to iCache's package loading, and it is the source of
		// its accuracy cost.
		if p.cfg.Substitute && p.lastLoss[id] < p.meanLoss() &&
			p.rng.Float64() < p.cfg.SubstituteProb {
			if it, ok := p.lCache.RandomResident(); ok {
				p.pendingSub[it.ID] = append(p.pendingSub[it.ID], id)
				return Lookup{Source: SourceSubstitute, ServedID: it.ID}
			}
		}
	}
	return Lookup{Source: SourceMiss, ServedID: id}
}

// OnMiss routes the fetched sample to the H or L region by loss.
func (p *ICache) OnMiss(id, size int) {
	item := cache.Item{ID: id, Size: size}
	if p.lCache == nil || p.lastLoss[id] >= p.meanLoss() {
		p.hCache.Put(item, p.lastLoss[id])
		return
	}
	p.lCache.Put(item)
}

// OnBatchEnd records losses for sampling, classification and cache scoring.
func (p *ICache) OnBatchEnd(_ int, fb []Feedback) {
	for _, f := range fb {
		p.lastLoss[f.ID] = f.Loss
		p.seen[f.ID] = true
		if !p.emaInit {
			p.lossEMA = f.Loss
			p.emaInit = true
		} else {
			p.lossEMA += 0.002 * (f.Loss - p.lossEMA)
		}
		p.hCache.UpdateScore(f.ID, f.Loss)
		// Replacement happened below the sampler's bookkeeping: the
		// requested samples are marked trained at the substitute's loss.
		if reqs := p.pendingSub[f.ID]; len(reqs) > 0 {
			for _, req := range reqs {
				p.lastLoss[req] = f.Loss
			}
			delete(p.pendingSub, f.ID)
		}
	}
}

// OnEpochEnd is a no-op: iCache has no accuracy feedback loop.
func (p *ICache) OnEpochEnd(int, float64) {}

// BackpropWeights skips backprop for samples the model has clearly already
// learned: loss below 85% of the recent mean loss level, capped at SkipFrac of
// the batch. Early in training nothing qualifies (all losses sit at the
// same high level), which is the natural warm-up of selective backprop;
// skipping by within-batch rank instead would train only the
// currently-worst samples and never converge on many-class tasks.
func (p *ICache) BackpropWeights(fb []Feedback) []float64 {
	if len(fb) == 0 || !p.emaInit {
		return nil
	}
	thr := 0.85 * p.lossEMA
	idx := make([]int, 0, len(fb))
	for i, f := range fb {
		if f.Loss < thr {
			idx = append(idx, i)
		}
	}
	if len(idx) == 0 {
		return nil
	}
	if maxSkip := int(float64(len(fb)) * p.cfg.SkipFrac); len(idx) > maxSkip {
		sort.Slice(idx, func(a, b int) bool { return fb[idx[a]].Loss < fb[idx[b]].Loss })
		idx = idx[:maxSkip]
	}
	// No renormalisation over the kept set: selective backprop simply
	// drops the skipped samples' gradients. The resulting gradient bias is
	// part of the accuracy cost the paper attributes to compute-bound IS.
	w := make([]float64, len(fb))
	uniform := 1 / float64(len(fb))
	for i := range w {
		w[i] = uniform
	}
	for _, i := range idx {
		w[i] = 0
	}
	return w
}

// HasGraphIS reports false: iCache's IS is loss-based.
func (p *ICache) HasGraphIS() bool { return false }
