package policy

import (
	"fmt"

	"spidercache/internal/cache"
	"spidercache/internal/sampler"
	"spidercache/internal/semgraph"
)

// GraphAwareSem is the GraphAware cache wired to the *learned* semantic
// graph instead of the label-ring proxy: eviction-priority spill flows
// along each sample's snapshot CloseNeighbors list — the near-duplicate
// same-class neighbours SpiderCache's grapher discovers from embeddings —
// so the cache keeps genuinely interchangeable neighbourhoods resident
// rather than arbitrary same-class ring-mates. Sampling stays uniform,
// matching the plain GraphAware baseline so the two isolate the graph
// source as the only difference.
//
// The policy runs the grapher's batch scoring to keep the graph learning,
// which makes it the one GraphAware variant that pays the graph-IS cost;
// the neighborhood-snapshot cache is what makes that affordable, so the
// grapher must be built with a positive SnapshotDrift (CloseNeighbors
// lists are read from snapshots).
type GraphAwareSem struct {
	cache   cache.Basic
	sampler sampler.Sampler
	g       *semgraph.Grapher

	// reusable OnBatchEnd scratch
	ids  []int
	embs [][]float64
}

var (
	_ Policy              = (*GraphAwareSem)(nil)
	_ SearchStatsReporter = (*GraphAwareSem)(nil)
)

// NewGraphAwareSem builds the semantic-graph GraphAware policy over n
// samples. g must be a grapher with snapshots enabled (SnapshotDrift > 0):
// without them no CloseNeighbors lists are retained between batches and
// the cache would degenerate to plain GreedyDual.
func NewGraphAwareSem(n, capacity int, seed uint64, g *semgraph.Grapher) (*GraphAwareSem, error) {
	if g == nil {
		return nil, fmt.Errorf("GraphAware-sem: grapher must not be nil")
	}
	if g.SnapshotDrift() <= 0 {
		return nil, fmt.Errorf("GraphAware-sem: grapher needs SnapshotDrift > 0 (got %g): neighbour lists are read from snapshots", g.SnapshotDrift())
	}
	u, err := sampler.NewUniform(n, seed)
	if err != nil {
		return nil, fmt.Errorf("GraphAware-sem: %w", err)
	}
	return &GraphAwareSem{
		cache:   cache.NewGraphAware(capacity, g.SnapshotCloseNeighbors),
		sampler: u,
		g:       g,
	}, nil
}

// Name returns "GraphAware-sem".
func (p *GraphAwareSem) Name() string { return "GraphAware-sem" }

// EpochOrder is a uniform permutation, as in the plain GraphAware baseline.
func (p *GraphAwareSem) EpochOrder(epoch int) []int { return p.sampler.EpochOrder(epoch) }

// Lookup consults the graph-aware cache.
func (p *GraphAwareSem) Lookup(id int) Lookup {
	if _, ok := p.cache.Get(id); ok {
		return Lookup{Source: SourceCache, ServedID: id}
	}
	return Lookup{Source: SourceMiss, ServedID: id}
}

// OnMiss offers the fetched sample for GreedyDual admission.
func (p *GraphAwareSem) OnMiss(id, size int) { p.cache.Put(cache.Item{ID: id, Size: size}) }

// OnBatchEnd feeds the batch embeddings to the grapher so the semantic
// graph (and the snapshots the cache reads neighbour lists from) keeps
// tracking the model's representation.
func (p *GraphAwareSem) OnBatchEnd(_ int, fb []Feedback) {
	if len(fb) == 0 {
		return
	}
	p.ids = p.ids[:0]
	p.embs = p.embs[:0]
	for _, f := range fb {
		p.ids = append(p.ids, f.ID)
		p.embs = append(p.embs, f.Embedding)
	}
	// Out-of-range IDs cannot occur from the trainer; scores are discarded
	// (this policy samples uniformly) — only the graph side effects matter.
	_, _ = p.g.ScoreBatch(p.ids, p.embs)
}

// OnEpochEnd is a no-op: the policy has no accuracy feedback loop.
func (p *GraphAwareSem) OnEpochEnd(int, float64) {}

// BackpropWeights trains every sample.
func (p *GraphAwareSem) BackpropWeights([]Feedback) []float64 { return nil }

// HasGraphIS reports true: the trainer charges the per-batch graph cost.
func (p *GraphAwareSem) HasGraphIS() bool { return true }

// SearchStats reports the grapher's cumulative SearchKNN calls and
// snapshot-served scoring requests.
func (p *GraphAwareSem) SearchStats() (searches, snapshotHits int64) {
	return p.g.SearchCalls(), p.g.SnapshotStats().Hits
}

// Grapher exposes the underlying semantic graph for experiments.
func (p *GraphAwareSem) Grapher() *semgraph.Grapher { return p.g }
