package policy

import (
	"testing"

	"spidercache/internal/hnsw"
	"spidercache/internal/semgraph"
	"spidercache/internal/xrand"
)

func testSemGrapher(t *testing.T, n int, drift float64) *semgraph.Grapher {
	t.Helper()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 4
	}
	ix, err := hnsw.New(hnsw.Config{M: 8, EfConstruction: 64, EfSearch: 48, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg := semgraph.DefaultConfig()
	cfg.SnapshotDrift = drift
	g, err := semgraph.New(cfg, labels, ix)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGraphAwareSemRequiresSnapshots(t *testing.T) {
	if _, err := NewGraphAwareSem(16, 8, 1, nil); err == nil {
		t.Fatal("nil grapher accepted")
	}
	g := testSemGrapher(t, 16, 0)
	if _, err := NewGraphAwareSem(16, 8, 1, g); err == nil {
		t.Fatal("snapshot-less grapher accepted")
	}
}

// TestGraphAwareSemLearnsNeighbors drives a few batches of clustered
// embeddings through the policy and checks the cache's neighbour source is
// the learned semantic graph: after training, snapshot CloseNeighbors lists
// exist and stay within the sample's own class.
func TestGraphAwareSemLearnsNeighbors(t *testing.T) {
	const n, dim = 64, 8
	g := testSemGrapher(t, n, semgraph.DefaultSnapshotDrift)
	p, err := NewGraphAwareSem(n, 16, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "GraphAware-sem" {
		t.Fatalf("Name = %q", p.Name())
	}
	if !p.HasGraphIS() {
		t.Fatal("graph-IS cost not reported")
	}

	rng := xrand.New(7)
	embs := make([][]float64, n)
	for id := range embs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64() * 0.05
		}
		v[id%4] += 1 // four tight class clusters
		embs[id] = v
	}
	// Two identical epochs: the second replays the same embeddings, so every
	// sample sits inside the drift budget and scoring serves from snapshots.
	for round := 0; round < 2; round++ {
		for start := 0; start < n; start += 16 {
			fb := make([]Feedback, 0, 16)
			for id := start; id < start+16; id++ {
				fb = append(fb, Feedback{ID: id, Embedding: embs[id]})
			}
			p.OnBatchEnd(0, fb)
		}
	}

	withNeighbors := 0
	for id := 0; id < n; id++ {
		close := g.SnapshotCloseNeighbors(id)
		for _, nb := range close {
			if nb%4 != id%4 {
				t.Fatalf("sample %d has cross-class close neighbour %d", id, nb)
			}
		}
		if len(close) > 0 {
			withNeighbors++
		}
	}
	if withNeighbors == 0 {
		t.Fatal("no sample learned any close neighbours")
	}

	searches, hits := p.SearchStats()
	if searches == 0 {
		t.Fatal("scoring issued no searches")
	}
	if hits == 0 {
		t.Fatal("second identical round served no snapshot hits")
	}

	// Cache mechanics still behave like a Basic-cache policy.
	if lk := p.Lookup(0); lk.Source != SourceMiss {
		t.Fatalf("empty cache lookup = %+v", lk)
	}
	p.OnMiss(0, 1)
	if lk := p.Lookup(0); lk.Source != SourceCache || lk.ServedID != 0 {
		t.Fatalf("resident lookup = %+v", lk)
	}
}
