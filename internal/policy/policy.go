// Package policy defines the contract between the training loop and a
// caching/sampling strategy, plus the baseline strategies the paper
// evaluates against (Baseline-LRU, LFU, CoorDL, SHADE, iCache). SpiderCache
// itself — the paper's contribution — lives in internal/core and implements
// the same interface.
package policy

// Source identifies where a requested sample was served from.
type Source uint8

// Serving tiers, in lookup order.
const (
	// SourceMiss: not cached anywhere; the trainer fetches from remote
	// storage and then offers the sample back via OnMiss.
	SourceMiss Source = iota
	// SourceCache: served from the policy's primary cache (LRU, static,
	// importance, ...) — the requested sample itself.
	SourceCache
	// SourceSubstitute: served by a *different* cached sample standing in
	// for the requested one (SpiderCache's homophily hit, iCache's random
	// L-sample replacement).
	SourceSubstitute
)

// String returns a short human-readable tier name.
func (s Source) String() string {
	switch s {
	case SourceMiss:
		return "miss"
	case SourceCache:
		return "cache"
	case SourceSubstitute:
		return "substitute"
	default:
		return "unknown"
	}
}

// Lookup is the outcome of consulting a policy's caches for one sample.
type Lookup struct {
	Source Source
	// ServedID is the sample actually delivered to training. Equal to the
	// requested ID except for substitute hits.
	ServedID int
}

// Feedback carries per-sample results of a forward pass back to the policy.
type Feedback struct {
	ID        int       // sample that was trained on (ServedID)
	Loss      float64   // cross-entropy of this sample
	Embedding []float64 // feature-extraction-layer output
	Correct   bool      // prediction matched label
}

// Policy is a pluggable caching + sampling strategy driven by the trainer.
// Implementations are single-goroutine; the trainer serialises all calls.
type Policy interface {
	// Name returns the policy's display name used in tables.
	Name() string
	// EpochOrder returns the sample IDs to train on this epoch, in order.
	EpochOrder(epoch int) []int
	// Lookup consults the caches for id without side effects on storage.
	Lookup(id int) Lookup
	// OnMiss offers a just-fetched sample (id, payload bytes) for
	// admission.
	OnMiss(id, size int)
	// OnBatchEnd delivers forward-pass feedback for the completed batch.
	OnBatchEnd(epoch int, fb []Feedback)
	// OnEpochEnd delivers the held-out accuracy measured after the epoch.
	OnEpochEnd(epoch int, accuracy float64)
	// BackpropWeights returns optional per-sample loss weights for the
	// batch (nil = train all uniformly; 0 entries skip backprop).
	BackpropWeights(fb []Feedback) []float64
	// HasGraphIS reports whether the policy runs the graph-based IS stage,
	// whose per-batch cost the trainer charges (with pipeline overlap).
	HasGraphIS() bool
}

// ScoreStdReporter is implemented by policies that track an importance-score
// distribution; the trainer records σ per epoch for Fig 6(c)/16 analyses.
type ScoreStdReporter interface {
	ScoreStd() float64
}

// RatioReporter is implemented by policies with an elastic cache split; the
// trainer records the Importance Cache share per epoch.
type RatioReporter interface {
	ImpRatio() float64
}

// SearchStatsReporter is implemented by policies whose scoring path queries
// an ANN index. Searches is the cumulative count of real SearchKNN calls;
// SnapshotHits is how many scoring requests were served from the
// drift-bounded neighborhood-snapshot cache instead (0 when disabled). The
// trainer diffs both per epoch so SearchKNN-calls/epoch is reportable.
type SearchStatsReporter interface {
	SearchStats() (searches, snapshotHits int64)
}
