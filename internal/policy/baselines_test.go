package policy

import (
	"testing"
)

func drainOrder(t *testing.T, p Policy, n int) []int {
	t.Helper()
	order := p.EpochOrder(0)
	if len(order) != n {
		t.Fatalf("%s: order length %d, want %d", p.Name(), len(order), n)
	}
	for _, id := range order {
		if id < 0 || id >= n {
			t.Fatalf("%s: id %d out of range", p.Name(), id)
		}
	}
	return order
}

func TestSimplePoliciesBasics(t *testing.T) {
	const n, capacity = 50, 10
	builders := []func() (Policy, error){
		func() (Policy, error) { return NewBaselineLRU(n, capacity, 1) },
		func() (Policy, error) { return NewLFU(n, capacity, 1) },
		func() (Policy, error) { return NewCoorDL(n, capacity, 1) },
	}
	for _, build := range builders {
		p, err := build()
		if err != nil {
			t.Fatal(err)
		}
		drainOrder(t, p, n)
		if lk := p.Lookup(7); lk.Source != SourceMiss || lk.ServedID != 7 {
			t.Fatalf("%s: fresh lookup = %+v", p.Name(), lk)
		}
		p.OnMiss(7, 100)
		if lk := p.Lookup(7); lk.Source != SourceCache || lk.ServedID != 7 {
			t.Fatalf("%s: post-miss lookup = %+v", p.Name(), lk)
		}
		if p.HasGraphIS() {
			t.Fatalf("%s claims graph IS", p.Name())
		}
		if w := p.BackpropWeights(nil); w != nil {
			t.Fatalf("%s returns backprop weights", p.Name())
		}
		p.OnBatchEnd(0, nil)
		p.OnEpochEnd(0, 0.5)
	}
}

func TestCoorDLStatic(t *testing.T) {
	p, _ := NewCoorDL(10, 2, 1)
	p.OnMiss(1, 10)
	p.OnMiss(2, 10)
	p.OnMiss(3, 10) // no space: dropped
	if lk := p.Lookup(3); lk.Source != SourceMiss {
		t.Fatal("static cache admitted over capacity")
	}
	if lk := p.Lookup(1); lk.Source != SourceCache {
		t.Fatal("static resident evicted")
	}
}

func TestShadeRankWeights(t *testing.T) {
	p, err := NewShade(10, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	fb := []Feedback{
		{ID: 0, Loss: 0.1},
		{ID: 1, Loss: 2.0},
		{ID: 2, Loss: 0.5},
		{ID: 3, Loss: 1.0},
	}
	p.OnBatchEnd(0, fb)
	// Ranks ascending by loss: 0 -> 1/4, 2 -> 2/4, 3 -> 3/4, 1 -> 4/4.
	wants := map[int]float64{0: 0.25, 2: 0.5, 3: 0.75, 1: 1.0}
	for id, want := range wants {
		if got := p.lastRank[id]; got != want {
			t.Errorf("rank weight of %d = %g, want %g", id, got, want)
		}
	}
	// Unseen samples keep top weight.
	if p.lastRank[9] != 1 {
		t.Errorf("unseen rank = %g, want 1", p.lastRank[9])
	}
}

func TestShadeCacheUsesRanks(t *testing.T) {
	p, _ := NewShade(10, 1, 1)
	p.OnBatchEnd(0, []Feedback{{ID: 0, Loss: 0.1}, {ID: 1, Loss: 2.0}})
	p.OnMiss(0, 10) // rank 0.5
	p.OnMiss(1, 10) // rank 1.0: displaces 0
	if lk := p.Lookup(1); lk.Source != SourceCache {
		t.Fatal("high-rank sample not cached")
	}
	if lk := p.Lookup(0); lk.Source != SourceMiss {
		t.Fatal("low-rank sample still cached")
	}
}

func TestICacheRouting(t *testing.T) {
	cfg := DefaultICacheConfig()
	cfg.SubstituteProb = 1.0
	p, err := NewICache(20, 10, cfg, 1)
	if err != nil {
		t.Fatal(err)
	}
	drainOrder(t, p, 20)
	// Establish a loss distribution: ids 0-3 well-learned, 4-5 hard.
	fb := []Feedback{
		{ID: 0, Loss: 0.1}, {ID: 1, Loss: 0.1}, {ID: 2, Loss: 0.1}, {ID: 3, Loss: 0.1},
		{ID: 4, Loss: 5.0}, {ID: 5, Loss: 5.0},
	}
	p.OnBatchEnd(0, fb)
	// A high-loss miss routes to the H (importance) region.
	p.OnMiss(4, 10)
	if lk := p.Lookup(4); lk.Source != SourceCache {
		t.Fatal("H-sample not cached")
	}
	// A low-loss miss routes to the L region.
	p.OnMiss(0, 10)
	if lk := p.Lookup(0); lk.Source != SourceCache {
		t.Fatal("L-sample not cached")
	}
	// Another low-loss sample missing both regions gets substituted (prob 1).
	lk := p.Lookup(1)
	if lk.Source != SourceSubstitute {
		t.Fatalf("eligible L-sample not substituted: %+v", lk)
	}
	if lk.ServedID == 1 {
		t.Fatal("substitute is the requested sample")
	}
}

func TestICacheIdentityConfusion(t *testing.T) {
	cfg := DefaultICacheConfig()
	cfg.SubstituteProb = 1.0
	p, _ := NewICache(20, 10, cfg, 1)
	p.OnBatchEnd(0, []Feedback{
		{ID: 0, Loss: 0.1}, {ID: 1, Loss: 3.0}, {ID: 2, Loss: 0.1},
	})
	p.OnMiss(0, 10) // resident L sample
	lk := p.Lookup(2)
	if lk.Source != SourceSubstitute {
		t.Skip("substitution did not trigger under this seed")
	}
	// Feedback arrives for the substitute; the requested sample's loss
	// record must be overwritten with it.
	p.OnBatchEnd(0, []Feedback{{ID: lk.ServedID, Loss: 0.42}})
	if p.lastLoss[2] != 0.42 {
		t.Fatalf("requested sample's loss = %g, want substitute's 0.42", p.lastLoss[2])
	}
}

func TestICacheImpNoSubstitution(t *testing.T) {
	p, err := NewICacheImp(20, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name() != "iCache-imp" {
		t.Fatalf("name %q", p.Name())
	}
	p.OnBatchEnd(0, []Feedback{{ID: 0, Loss: 0.01}, {ID: 1, Loss: 9.9}})
	for id := 2; id < 20; id++ {
		if lk := p.Lookup(id); lk.Source == SourceSubstitute {
			t.Fatal("imp-only variant substituted")
		}
	}
}

func TestICacheSkipWarmup(t *testing.T) {
	p, _ := NewICache(20, 10, DefaultICacheConfig(), 1)
	// Before any feedback there is no EMA: train everything.
	if w := p.BackpropWeights([]Feedback{{ID: 0, Loss: 4.6}}); w != nil {
		t.Fatal("skipped before warm-up")
	}
	// Uniform high losses: nothing qualifies as learned.
	fb := make([]Feedback, 8)
	for i := range fb {
		fb[i] = Feedback{ID: i, Loss: 4.6}
	}
	p.OnBatchEnd(0, fb)
	if w := p.BackpropWeights(fb); w != nil {
		t.Fatal("skipped samples at uniform loss level")
	}
}

func TestICacheSkipsLearnedSamples(t *testing.T) {
	cfg := DefaultICacheConfig()
	cfg.SkipFrac = 0.5
	p, _ := NewICache(20, 10, cfg, 1)
	// Push the EMA to ~1.0.
	warm := make([]Feedback, 0, 600)
	for i := 0; i < 600; i++ {
		warm = append(warm, Feedback{ID: i % 20, Loss: 1.0})
	}
	p.OnBatchEnd(0, warm)
	fb := []Feedback{
		{ID: 0, Loss: 0.01}, // clearly learned
		{ID: 1, Loss: 1.2},
		{ID: 2, Loss: 0.02}, // clearly learned
		{ID: 3, Loss: 1.1},
	}
	w := p.BackpropWeights(fb)
	if w == nil {
		t.Fatal("no skipping despite learned samples")
	}
	if w[0] != 0 || w[2] != 0 {
		t.Fatalf("learned samples not skipped: %v", w)
	}
	if w[1] == 0 || w[3] == 0 {
		t.Fatalf("unlearned samples skipped: %v", w)
	}
	// Skip cap: at most SkipFrac of the batch.
	many := make([]Feedback, 10)
	for i := range many {
		many[i] = Feedback{ID: i, Loss: 0.01}
	}
	w = p.BackpropWeights(many)
	skipped := 0
	for _, v := range w {
		if v == 0 {
			skipped++
		}
	}
	if skipped > 5 {
		t.Fatalf("skipped %d > cap 5", skipped)
	}
}

func TestICacheValidation(t *testing.T) {
	cfg := DefaultICacheConfig()
	cfg.HFrac = 1.5
	if _, err := NewICache(10, 5, cfg, 1); err == nil {
		t.Fatal("HFrac > 1 accepted")
	}
	cfg = DefaultICacheConfig()
	cfg.SkipFrac = 1.0
	if _, err := NewICache(10, 5, cfg, 1); err == nil {
		t.Fatal("SkipFrac = 1 accepted")
	}
}

func TestSourceString(t *testing.T) {
	if SourceMiss.String() != "miss" || SourceCache.String() != "cache" ||
		SourceSubstitute.String() != "substitute" || Source(9).String() != "unknown" {
		t.Fatal("Source.String labels wrong")
	}
}
