package semgraph

import (
	"fmt"
	"math"
	"sort"

	"spidercache/internal/hnsw"
	"spidercache/internal/pq"
)

// PQSearcher is a NeighborSearcher that stores vectors as Product
// Quantization codes and answers kNN queries with asymmetric distance
// computation — the memory-frugal configuration the paper's overhead
// analysis (Section 5, Table 2) pairs with HNSW for billion-scale corpora.
//
// The quantizer is trained lazily on the first TrainAfter distinct vectors
// (stored raw until then), after which all raw vectors are converted to
// codes and new upserts are encoded on arrival. Search is an exhaustive ADC
// scan; at the repository's simulation scales this is fast enough, and it
// isolates exactly the accuracy cost of quantisation for the ablation
// benchmarks (the HNSW-over-codes composition used in production systems
// changes recall, not the quantisation error studied here).
type PQSearcher struct {
	cfg        pq.Config
	trainAfter int

	quant *pq.Quantizer
	ids   []int
	slot  map[int]int
	raw   [][]float64 // until trained
	codes [][]byte    // after training
}

// NewPQSearcher creates a searcher that trains its codebooks once
// trainAfter distinct vectors have been observed (minimum: cfg.Centroids).
func NewPQSearcher(cfg pq.Config, trainAfter int) (*PQSearcher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if trainAfter < cfg.Centroids {
		return nil, fmt.Errorf("semgraph: trainAfter %d < centroids %d", trainAfter, cfg.Centroids)
	}
	return &PQSearcher{cfg: cfg, trainAfter: trainAfter, slot: make(map[int]int)}, nil
}

// Trained reports whether the codebooks have been fitted.
func (p *PQSearcher) Trained() bool { return p.quant != nil }

// Len reports how many points are indexed.
func (p *PQSearcher) Len() int { return len(p.ids) }

// MemoryBytes estimates resident size (codes or raw vectors plus IDs).
func (p *PQSearcher) MemoryBytes() int64 {
	var total int64
	for _, r := range p.raw {
		total += int64(len(r)) * 8
	}
	for _, c := range p.codes {
		total += int64(len(c))
	}
	return total + int64(len(p.ids))*8
}

// Upsert inserts or replaces the vector stored under id.
func (p *PQSearcher) Upsert(id int, vec []float64) error {
	owned := make([]float64, len(vec))
	copy(owned, vec)
	s, exists := p.slot[id]
	if !exists {
		s = len(p.ids)
		p.slot[id] = s
		p.ids = append(p.ids, id)
		p.raw = append(p.raw, nil)
		p.codes = append(p.codes, nil)
	}
	if p.quant == nil {
		p.raw[s] = owned
		if len(p.ids) >= p.trainAfter {
			return p.train()
		}
		return nil
	}
	code, err := p.quant.Encode(owned)
	if err != nil {
		return err
	}
	p.codes[s] = code
	p.raw[s] = nil
	return nil
}

func (p *PQSearcher) train() error {
	vecs := make([][]float64, 0, len(p.raw))
	for _, r := range p.raw {
		if r != nil {
			vecs = append(vecs, r)
		}
	}
	q, err := pq.Train(p.cfg, vecs)
	if err != nil {
		return err
	}
	p.quant = q
	for s, r := range p.raw {
		if r == nil {
			continue
		}
		code, err := q.Encode(r)
		if err != nil {
			return err
		}
		p.codes[s] = code
		p.raw[s] = nil
	}
	return nil
}

// SearchKNN returns the k nearest indexed points by (exact or ADC) distance.
func (p *PQSearcher) SearchKNN(q []float64, k int) []hnsw.Result {
	if k <= 0 || len(p.ids) == 0 {
		return nil
	}
	res := make([]hnsw.Result, 0, len(p.ids))
	for s, id := range p.ids {
		var d float64
		if p.codes[s] != nil {
			adc, err := p.quant.ADC(q, p.codes[s])
			if err != nil {
				continue
			}
			d = adc
		} else {
			var sum float64
			for j, qv := range q {
				diff := qv - p.raw[s][j]
				sum += diff * diff
			}
			d = math.Sqrt(sum)
		}
		res = append(res, hnsw.Result{ID: id, Dist: d})
	}
	sort.Slice(res, func(a, b int) bool {
		if res[a].Dist != res[b].Dist {
			return res[a].Dist < res[b].Dist
		}
		return res[a].ID < res[b].ID
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}
