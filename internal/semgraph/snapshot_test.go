package semgraph

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"spidercache/internal/hnsw"
	"spidercache/internal/xrand"
)

// testGrapherDrift is testGrapher with a snapshot drift budget.
func testGrapherDrift(t *testing.T, n int, seed uint64, drift float64) *Grapher {
	t.Helper()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 4
	}
	ix, err := hnsw.New(hnsw.Config{M: 8, EfConstruction: 64, EfSearch: 48, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig()
	cfg.SnapshotDrift = drift
	g, err := New(cfg, labels, ix)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// exactSearcher is a deterministic brute-force NeighborSearcher that also
// counts upserts, so tests can assert exactly when the drift gate skips an
// index write.
type exactSearcher struct {
	vecs    map[int][]float64
	upserts int
}

func newExactSearcher() *exactSearcher { return &exactSearcher{vecs: map[int][]float64{}} }

func (s *exactSearcher) Upsert(id int, vec []float64) error {
	s.upserts++
	v := make([]float64, len(vec))
	copy(v, vec)
	s.vecs[id] = v
	return nil
}

func (s *exactSearcher) SearchKNN(q []float64, k int) []hnsw.Result {
	ids := make([]int, 0, len(s.vecs))
	//lint:ignore determinism results are sorted by (dist, id) below, so map order cannot leak
	for id := range s.vecs {
		ids = append(ids, id)
	}
	res := make([]hnsw.Result, 0, len(ids))
	for _, id := range ids {
		res = append(res, hnsw.Result{ID: id, Dist: distTo(q, s.vecs[id])})
	}
	sort.Slice(res, func(a, b int) bool {
		if res[a].Dist != res[b].Dist {
			return res[a].Dist < res[b].Dist
		}
		return res[a].ID < res[b].ID
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

func (s *exactSearcher) Len() int { return len(s.vecs) }

// TestSnapshotValidate covers the new config bounds.
func TestSnapshotValidate(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SnapshotDrift = -0.1
	if cfg.Validate() == nil {
		t.Fatal("negative SnapshotDrift accepted")
	}
	cfg.SnapshotDrift = 2.5
	if cfg.Validate() == nil {
		t.Fatal("SnapshotDrift >= 2 accepted")
	}
	cfg.SnapshotDrift = DefaultSnapshotDrift
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotDriftZeroEquivalence is the acceptance-criteria equivalence
// test: a grapher built with SnapshotDrift 0 must be bitwise-identical to
// the always-fresh path over a multi-epoch workload — same per-batch
// results, same score table, same statistics — with the snapshot machinery
// fully disabled.
func TestSnapshotDriftZeroEquivalence(t *testing.T) {
	const n, dim = 96, 12
	fresh := testGrapher(t, n, 5)
	zero := testGrapherDrift(t, n, 5, 0)
	if zero.snaps != nil {
		t.Fatal("SnapshotDrift 0 built a snapshot store")
	}
	if st := zero.SnapshotStats(); st != (SnapshotStats{}) {
		t.Fatalf("disabled snapshots report stats %+v", st)
	}

	for epoch := uint64(0); epoch < 3; epoch++ {
		ids, embs := testBatches(n, dim, 77+epoch)
		for b := range ids {
			fres, err := fresh.ScoreBatch(ids[b], embs[b])
			if err != nil {
				t.Fatal(err)
			}
			zres, err := zero.ScoreBatch(ids[b], embs[b])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fres, zres) {
				t.Fatalf("epoch %d batch %d: budget-0 results differ from always-fresh", epoch, b)
			}
		}
	}
	for id := 0; id < n; id++ {
		if fresh.ScoreOf(id) != zero.ScoreOf(id) {
			t.Fatalf("score table diverged at id %d", id)
		}
	}
	if fresh.ScoreStd() != zero.ScoreStd() || fresh.ScoreMean() != zero.ScoreMean() {
		t.Fatal("aggregate statistics diverged")
	}
	if fresh.SearchCalls() != zero.SearchCalls() {
		t.Fatalf("search counts diverged: fresh %d, budget-0 %d", fresh.SearchCalls(), zero.SearchCalls())
	}
}

// TestSnapshotAlwaysExceedingBudgetMatchesFresh drives the snapshot code
// path with a budget so small every embedding exceeds it: the drift-gated
// phases must then reproduce the always-fresh results bitwise, proving the
// restructured ScoreBatch introduces no divergence of its own.
func TestSnapshotAlwaysExceedingBudgetMatchesFresh(t *testing.T) {
	const n, dim = 96, 12
	fresh := testGrapher(t, n, 5)
	tiny := testGrapherDrift(t, n, 5, 1e-9)
	if tiny.snaps == nil {
		t.Fatal("positive budget did not enable snapshots")
	}

	for epoch := uint64(0); epoch < 3; epoch++ {
		// New noise every epoch: normalised embeddings always move far
		// beyond 1e-9, so no sample is ever served from a snapshot.
		ids, embs := testBatches(n, dim, 123+epoch)
		for b := range ids {
			fres, err := fresh.ScoreBatch(ids[b], embs[b])
			if err != nil {
				t.Fatal(err)
			}
			tres, err := tiny.ScoreBatch(ids[b], embs[b])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(fres, tres) {
				t.Fatalf("epoch %d batch %d: snapshot-path results differ from fresh", epoch, b)
			}
		}
	}
	if hits := tiny.SnapshotStats().Hits; hits != 0 {
		t.Fatalf("always-exceeding budget served %d snapshot hits", hits)
	}
	if fresh.SearchCalls() != tiny.SearchCalls() {
		t.Fatalf("search counts diverged: %d vs %d", fresh.SearchCalls(), tiny.SearchCalls())
	}
}

// TestSnapshotRepeatedEpochSkipsSearches is the perf contract: replaying
// identical embeddings must serve every sample from its snapshot — zero
// additional SearchKNN calls — while recording the same scores.
func TestSnapshotRepeatedEpochSkipsSearches(t *testing.T) {
	const n, dim = 64, 12
	g := testGrapherDrift(t, n, 7, DefaultSnapshotDrift)
	g.SetWorkers(4)
	rng := xrand.New(3)
	ids := make([]int, n)
	embs := make([][]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = i
		embs[i] = clusteredEmbedding(i, dim, rng)
	}
	first, err := g.ScoreBatch(ids, embs)
	if err != nil {
		t.Fatal(err)
	}
	afterFirst := g.SearchCalls()
	if afterFirst != int64(n) {
		t.Fatalf("first pass searched %d times, want %d", afterFirst, n)
	}

	second, err := g.ScoreBatch(ids, embs)
	if err != nil {
		t.Fatal(err)
	}
	if g.SearchCalls() != afterFirst {
		t.Fatalf("replay searched %d more times, want 0", g.SearchCalls()-afterFirst)
	}
	st := g.SnapshotStats()
	if st.Hits != int64(n) {
		t.Fatalf("replay hits = %d, want %d", st.Hits, n)
	}
	if st.Entries != n {
		t.Fatalf("valid snapshot entries = %d, want %d", st.Entries, n)
	}
	if st.Bytes <= 0 {
		t.Fatal("snapshot store reports no resident bytes")
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("snapshot-served results differ from the fresh results they cached")
	}
}

// TestSnapshotInvalidationOnNeighborMove is the bidirectional-invalidation
// test: moving sample B past its drift budget must dirty the snapshot of A
// (which holds B in its neighbour list), forcing A's next scoring to a
// fresh search even though A itself never moved.
func TestSnapshotInvalidationOnNeighborMove(t *testing.T) {
	labels := []int{0, 0, 0}
	s := newExactSearcher()
	cfg := DefaultConfig()
	cfg.SnapshotDrift = 0.2
	g, err := New(cfg, labels, s)
	if err != nil {
		t.Fatal(err)
	}

	a := []float64{1, 0, 0}
	b := []float64{0.99, 0.14, 0} // within edge distance of a
	c := []float64{0, 0, 1}       // far from both
	if _, err := g.ScoreBatch([]int{0, 1, 2}, [][]float64{a, b, c}); err != nil {
		t.Fatal(err)
	}
	if got := g.SnapshotNeighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("A's snapshot neighbours = %v, want [1]", got)
	}

	// Move B across the sphere: far past its 0.2 budget.
	searchesBefore := g.SearchCalls()
	if _, err := g.ScoreBatch([]int{1}, [][]float64{{0, 1, 0}}); err != nil {
		t.Fatal(err)
	}
	if inv := g.SnapshotStats().Invalidated; inv < 1 {
		t.Fatalf("B's move invalidated %d snapshots, want >= 1 (A's)", inv)
	}
	if g.SearchCalls() != searchesBefore+1 {
		t.Fatalf("B's re-score searched %d times, want 1", g.SearchCalls()-searchesBefore)
	}

	// A unchanged: its snapshot is dirty, so scoring must search fresh and
	// rebuild the neighbour list without the vanished B.
	res, err := g.ScoreBatch([]int{0}, [][]float64{a})
	if err != nil {
		t.Fatal(err)
	}
	if g.SearchCalls() != searchesBefore+2 {
		t.Fatal("A was served from a dirty snapshot")
	}
	for _, nb := range res[0].Neighbors {
		if nb == 1 {
			t.Fatal("A's refreshed neighbours still reference moved-away B")
		}
	}
	if got := g.SnapshotNeighbors(0); len(got) != 0 {
		t.Fatalf("A's reinstalled snapshot = %v, want empty", got)
	}
}

// TestSnapshotUpdateDriftGate checks the single-sample API coherence: an
// Update within the budget skips the index write entirely; one past the
// budget re-indexes and dirties dependents.
func TestSnapshotUpdateDriftGate(t *testing.T) {
	labels := []int{0, 0}
	s := newExactSearcher()
	cfg := DefaultConfig()
	cfg.SnapshotDrift = 0.2
	g, err := New(cfg, labels, s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.ScoreBatch([]int{0, 1}, [][]float64{{1, 0, 0}, {0.99, 0.14, 0}}); err != nil {
		t.Fatal(err)
	}
	ups := s.upserts

	// A nudge well inside the budget: no index write.
	if err := g.Update(0, []float64{0.999, 0.02, 0}); err != nil {
		t.Fatal(err)
	}
	if s.upserts != ups {
		t.Fatalf("within-budget Update wrote the index (%d upserts)", s.upserts-ups)
	}

	// A move past the budget: re-index + dirty sample 1's snapshot (it
	// holds 0 as a neighbour).
	invBefore := g.SnapshotStats().Invalidated
	if err := g.Update(0, []float64{0, 0, 1}); err != nil {
		t.Fatal(err)
	}
	if s.upserts != ups+1 {
		t.Fatalf("past-budget Update made %d index writes, want 1", s.upserts-ups)
	}
	if g.SnapshotStats().Invalidated <= invBefore {
		t.Fatal("past-budget Update did not dirty dependent snapshots")
	}
}

// TestSnapshotDuplicateIDsLastWins keeps the duplicate-id contract on the
// snapshot path: when a batch carries the same id twice, the recorded score
// must match the last occurrence, exactly like sequential Score calls.
func TestSnapshotDuplicateIDsLastWins(t *testing.T) {
	const n, dim = 32, 8
	g := testGrapherDrift(t, n, 11, DefaultSnapshotDrift)
	g.SetWorkers(4)
	ids, embs := testBatches(n, dim, 19) // every batch duplicates its first id
	for b := range ids {
		res, err := g.ScoreBatch(ids[b], embs[b])
		if err != nil {
			t.Fatal(err)
		}
		last := res[len(res)-1]
		if g.ScoreOf(last.ID) != last.Score {
			t.Fatalf("batch %d: duplicate id %d recorded %v, want last occurrence's %v",
				b, last.ID, g.ScoreOf(last.ID), last.Score)
		}
	}
}

// TestSnapshotRefreshScoringStress mixes snapshot hits, refreshes and
// invalidations inside heavily parallel batches; run under -race it checks
// the serve-from-store reads and the atomic search counter never conflict
// with the fan-out's fresh searches.
func TestSnapshotRefreshScoringStress(t *testing.T) {
	const n, dim, rounds = 128, 12, 12
	g := testGrapherDrift(t, n, 23, DefaultSnapshotDrift)
	g.SetWorkers(8)
	rng := xrand.New(41)
	base := make([][]float64, n)
	for i := range base {
		base[i] = clusteredEmbedding(i, dim, rng)
	}
	ids := make([]int, n)
	embs := make([][]float64, n)
	for r := 0; r < rounds; r++ {
		for i := 0; i < n; i++ {
			ids[i] = i
			// A few samples jump to a fresh draw each round (drift past
			// the budget → refresh + dependant invalidation cascading
			// through their cluster); the rest replay their base embedding
			// (snapshot hits). Jumps are sparse because each jumper dirties
			// up to K dependent snapshots — dense jumping would leave no
			// hits to race against refreshes.
			if i%32 == r%32 {
				base[i] = clusteredEmbedding(i, dim, rng)
			}
			embs[i] = base[i]
		}
		if _, err := g.ScoreBatch(ids, embs); err != nil {
			t.Fatal(err)
		}
	}
	st := g.SnapshotStats()
	if st.Hits == 0 || st.Refreshes == 0 {
		t.Fatalf("stress exercised no mixed traffic: %+v", st)
	}
	if math.IsNaN(g.ScoreStd()) {
		t.Fatal("statistics corrupted")
	}
}

// TestSnapshotMemoryAccounting sanity-checks the incremental byte gauge
// against the store's actual contents after churn.
func TestSnapshotMemoryAccounting(t *testing.T) {
	const n, dim = 48, 10
	g := testGrapherDrift(t, n, 31, DefaultSnapshotDrift)
	rng := xrand.New(9)
	ids := make([]int, n)
	for e := 0; e < 4; e++ {
		embs := make([][]float64, n)
		for i := 0; i < n; i++ {
			ids[i] = i
			embs[i] = clusteredEmbedding(i, dim, rng) // fresh draw: churn
		}
		if _, err := g.ScoreBatch(ids, embs); err != nil {
			t.Fatal(err)
		}
	}
	var want int64
	for i := range g.snaps.entries {
		ent := &g.snaps.entries[i]
		if ent.anchor != nil {
			want += int64(len(ent.anchor))*8 + snapEntryOverhead
		}
		want += int64(len(ent.neighbors)+len(ent.close)) * 8
	}
	for _, hs := range g.snaps.holders {
		want += int64(len(hs)) * 8
	}
	if g.snaps.bytes != want {
		t.Fatalf("incremental bytes %d, recomputed %d", g.snaps.bytes, want)
	}
	if g.SnapshotStats().Bytes != want {
		t.Fatal("SnapshotStats.Bytes disagrees with the store")
	}
}

// BenchmarkScoreBatchSnapshot measures the repeated-epoch scoring workload
// with snapshots off vs. on. Embeddings jitter slightly between epochs
// (well inside the default budget), the regime the snapshot cache targets.
// The searches/op metric is the acceptance criterion's SearchKNN count.
func BenchmarkScoreBatchSnapshot(b *testing.B) {
	const n, dim, batch = 2048, 16, 64
	for _, bench := range []struct {
		name  string
		drift float64
	}{
		{"off", 0},
		{"on", DefaultSnapshotDrift},
	} {
		b.Run(bench.name, func(b *testing.B) {
			labels := make([]int, n)
			for i := range labels {
				labels[i] = i % 10
			}
			ix, err := hnsw.New(hnsw.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			cfg := DefaultConfig()
			cfg.SnapshotDrift = bench.drift
			g, err := New(cfg, labels, ix)
			if err != nil {
				b.Fatal(err)
			}
			rng := xrand.New(4)
			base := make([][]float64, n)
			ids := make([]int, n)
			for id := 0; id < n; id++ {
				ids[id] = id
				base[id] = clusteredEmbedding(id, dim, rng)
			}
			// Warm pass: populate the index (and snapshots when enabled).
			if _, err := g.ScoreBatch(ids, base); err != nil {
				b.Fatal(err)
			}
			// Steady-state batches sweep the dataset in order (a repeated
			// epoch) with tiny per-visit jitter — an order of magnitude
			// inside the 0.15 budget.
			batchIDs := make([]int, batch)
			embs := make([][]float64, batch)
			for i := range embs {
				embs[i] = make([]float64, dim)
			}
			startSearches := g.SearchCalls()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for j := 0; j < batch; j++ {
					id := (i*batch + j) % n
					batchIDs[j] = id
					for d := 0; d < dim; d++ {
						embs[j][d] = base[id][d] + rng.NormFloat64()*0.003
					}
				}
				if _, err := g.ScoreBatch(batchIDs, embs); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(g.SearchCalls()-startSearches)/float64(b.N), "searches/op")
		})
	}
}
