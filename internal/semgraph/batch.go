package semgraph

import (
	"fmt"

	"spidercache/internal/par"
)

// SetWorkers sets how many workers ScoreBatch fans per-sample scoring
// across. n <= 0 restores the default (GOMAXPROCS); n == 1 forces the
// serial path.
func (g *Grapher) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	g.workers = n
}

// Workers reports the current ScoreBatch fan-out.
func (g *Grapher) Workers() int {
	if g.workers > 0 {
		return g.workers
	}
	return par.DefaultWorkers()
}

// minParallelBatch is the batch size below which ScoreBatch stays serial;
// fork/join overhead dominates tiny batches.
const minParallelBatch = 4

// ScoreBatch runs the per-batch half of Algorithm 1 (lines 15-21) for a
// whole mini-batch: it first upserts every embedding into the ANN index,
// then recomputes each sample's global importance score and records it in
// the score table. ids[i] pairs with embeddings[i]; duplicate ids are
// allowed (substitute serving can train the same host twice) and the last
// occurrence's score wins, exactly as sequential Score calls would behave.
//
// Scoring fans out across the worker pool: once the upserts complete the
// index is read-only for the rest of the call, and per-sample scores are
// independent, so the parallel result is bitwise-identical to serial
// scoring — Algorithm 1 semantics and determinism are preserved. Score
// recording happens serially in input order after the parallel phase.
//
// ScoreBatch must not run concurrently with other Grapher calls; it is the
// batch-level replacement for an Update+Score loop, not a thread-safe API.
func (g *Grapher) ScoreBatch(ids []int, embeddings [][]float64) ([]ScoreResult, error) {
	if len(ids) != len(embeddings) {
		return nil, fmt.Errorf("semgraph: %d ids for %d embeddings", len(ids), len(embeddings))
	}
	for _, id := range ids {
		if id < 0 || id >= len(g.labels) {
			return nil, fmt.Errorf("semgraph: id %d out of range [0,%d)", id, len(g.labels))
		}
	}
	// Phase 1 — serial upserts (the ANN_index.update of Algorithm 1 line
	// 15). The normalisation buffer is reused across samples; searchers
	// copy on Upsert.
	for i, id := range ids {
		g.normBuf = NormalizeInto(g.normBuf, embeddings[i])
		if err := g.searcher.Upsert(id, g.normBuf); err != nil {
			return nil, fmt.Errorf("semgraph: upsert id %d: %w", id, err)
		}
	}

	// Phase 2 — score fan-out over the now-frozen index. Each worker block
	// keeps its own normalisation buffer; computeScore only reads shared
	// state and each block writes disjoint result slots.
	results := make([]ScoreResult, len(ids))
	w := g.Workers()
	if len(ids) < minParallelBatch {
		w = 1
	}
	par.For(w, len(ids), func(start, end int) {
		var buf []float64
		for i := start; i < end; i++ {
			buf = NormalizeInto(buf, embeddings[i])
			results[i] = g.computeScore(ids[i], buf)
		}
	})

	// Phase 3 — serial recording in input order, so duplicates resolve the
	// same way a sequential Score loop would and the incremental statistics
	// stay exact.
	for i := range results {
		g.recordScore(results[i])
	}
	return results, nil
}
