package semgraph

import (
	"fmt"

	"spidercache/internal/par"
)

// SetWorkers sets how many workers ScoreBatch fans per-sample scoring
// across. n <= 0 restores the default (GOMAXPROCS); n == 1 forces the
// serial path.
func (g *Grapher) SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	g.workers = n
}

// Workers reports the current ScoreBatch fan-out.
func (g *Grapher) Workers() int {
	if g.workers > 0 {
		return g.workers
	}
	return par.DefaultWorkers()
}

// minParallelBatch is the batch size below which ScoreBatch stays serial;
// fork/join overhead dominates tiny batches.
const minParallelBatch = 4

// ScoreBatch runs the per-batch half of Algorithm 1 (lines 15-21) for a
// whole mini-batch: it first upserts every embedding into the ANN index,
// then recomputes each sample's global importance score and records it in
// the score table. ids[i] pairs with embeddings[i]; duplicate ids are
// allowed (substitute serving can train the same host twice) and the last
// occurrence's score wins, exactly as sequential Score calls would behave.
//
// Scoring fans out across the worker pool: once the upserts complete the
// index is read-only for the rest of the call, and per-sample scores are
// independent, so the parallel result is bitwise-identical to serial
// scoring — Algorithm 1 semantics and determinism are preserved. Score
// recording happens serially in input order after the parallel phase.
//
// With Config.SnapshotDrift > 0 the call additionally consults the
// neighborhood-snapshot cache: samples whose normalised embedding stayed
// within the drift budget of their indexed position skip both the upsert
// and the SearchKNN, serving their cached ScoreResult instead (see
// scoreBatchSnapshot). With the budget at 0 this path is compiled out of
// the call entirely and behaviour is bit-identical to the always-fresh
// code below.
//
// ScoreBatch must not run concurrently with other Grapher calls; it is the
// batch-level replacement for an Update+Score loop, not a thread-safe API.
func (g *Grapher) ScoreBatch(ids []int, embeddings [][]float64) ([]ScoreResult, error) {
	if len(ids) != len(embeddings) {
		return nil, fmt.Errorf("semgraph: %d ids for %d embeddings", len(ids), len(embeddings))
	}
	for _, id := range ids {
		if id < 0 || id >= len(g.labels) {
			return nil, fmt.Errorf("semgraph: id %d out of range [0,%d)", id, len(g.labels))
		}
	}
	if g.snaps != nil {
		return g.scoreBatchSnapshot(ids, embeddings)
	}
	// Phase 1 — serial upserts (the ANN_index.update of Algorithm 1 line
	// 15). The normalisation buffer is reused across samples; searchers
	// copy on Upsert.
	for i, id := range ids {
		g.normBuf = NormalizeInto(g.normBuf, embeddings[i])
		if err := g.searcher.Upsert(id, g.normBuf); err != nil {
			return nil, fmt.Errorf("semgraph: upsert id %d: %w", id, err)
		}
	}

	// Phase 2 — score fan-out over the now-frozen index. Each worker block
	// keeps its own normalisation buffer; computeScore only reads shared
	// state and each block writes disjoint result slots.
	results := make([]ScoreResult, len(ids))
	w := g.Workers()
	if len(ids) < minParallelBatch {
		w = 1
	}
	par.For(w, len(ids), func(start, end int) {
		var buf []float64
		for i := start; i < end; i++ {
			buf = NormalizeInto(buf, embeddings[i])
			results[i] = g.computeScore(ids[i], buf)
		}
	})

	// Phase 3 — serial recording in input order, so duplicates resolve the
	// same way a sequential Score loop would and the incremental statistics
	// stay exact.
	for i := range results {
		g.recordScore(results[i])
	}
	g.flushSearchTelemetry()
	return results, nil
}

// scoreBatchSnapshot is ScoreBatch's drift-gated variant. Its phases:
//
//  0. parallel: normalise every embedding and run the drift check, so
//     samples still within budget of their indexed position are known
//     before any index mutation;
//  1. serial: upsert only the drift-exceeding samples, in input order,
//     moving their anchors and dirtying dependent snapshots;
//  2. serial: classify each sample hit/fresh against the post-upsert
//     snapshot state (so a batch-mate's movement invalidates same-batch
//     hits too);
//  3. parallel: serve hits from snapshots, search fresh samples over the
//     now-frozen index;
//  4. serial, input order: install fresh results as snapshots and record
//     scores, so duplicates resolve last-wins exactly like sequential
//     Score calls.
//
// Why the remaining upserts in phase 1 stay ordered even though the HNSW
// index is concurrency-safe: the graph an HNSW insert builds depends on
// which points were already indexed, so insertion order is part of the
// reproducibility contract — reordering upserts across runs would change
// search results for ties and thus scores. Duplicated ids in one batch
// must also resolve last-wins, which only input order guarantees. There is
// no throughput left on the table either: Upsert takes the index's
// exclusive lock, so "parallel" upserts would serialise on it and only add
// scheduling overhead. The drift gate instead removes upserts wholesale,
// which is where the real win is.
func (g *Grapher) scoreBatchSnapshot(ids []int, embeddings [][]float64) ([]ScoreResult, error) {
	n := len(ids)
	rows := g.batchRows(n)
	w := g.Workers()
	if n < minParallelBatch {
		w = 1
	}

	// Phase 0 — parallel normalise + drift pre-check. Each slot is written
	// by exactly one worker; the snapshot store is read-only here.
	exceeded := g.batchServeFlags(n) // reused scratch: true = must upsert
	par.For(w, n, func(start, end int) {
		for i := start; i < end; i++ {
			rows[i] = NormalizeInto(rows[i], embeddings[i])
			exceeded[i] = g.driftExceeded(ids[i], rows[i])
		}
	})

	// Phase 1 — serial, ordered upserts of the drift-exceeding samples
	// only (see the function comment for why these stay ordered). For
	// duplicate ids the pre-check used the batch-start anchor for both
	// occurrences; re-checking against the current anchor keeps the later
	// occurrence from re-upserting when the earlier one already moved the
	// anchor to within its budget.
	for i, id := range ids {
		if !exceeded[i] || !g.driftExceeded(id, rows[i]) {
			continue
		}
		if err := g.searcher.Upsert(id, rows[i]); err != nil {
			return nil, fmt.Errorf("semgraph: upsert id %d: %w", id, err)
		}
		g.snaps.setAnchor(id, rows[i])
		g.snaps.invalidateDependents(id)
	}

	// Phase 2 — serial classification against the post-upsert state:
	// serve[i] means sample i's snapshot is valid, not dirtied by any
	// upsert above (its own or a member's), and its embedding is within
	// budget of its anchor.
	serve := exceeded // reuse the same scratch slice under its real meaning
	hits := 0
	for i, id := range ids {
		serve[i] = g.snaps.serveable(id, rows[i])
		if serve[i] {
			hits++
		}
	}

	// Phase 3 — parallel serve/search over the frozen index. Workers only
	// read the snapshot store and write disjoint result slots.
	results := make([]ScoreResult, n)
	par.For(w, n, func(start, end int) {
		for i := start; i < end; i++ {
			if serve[i] {
				results[i] = g.snaps.serve(ids[i])
			} else {
				results[i] = g.computeScore(ids[i], rows[i])
			}
		}
	})

	// Phase 4 — serial install + record in input order. Fresh results
	// refresh their sample's snapshot (lists recomputed at a query within
	// budget of the anchor, dirty cleared); duplicates resolve last-wins.
	refreshes := 0
	for i := range results {
		if !serve[i] {
			g.snaps.install(ids[i], &results[i])
			refreshes++
		}
		g.recordScore(results[i])
	}
	g.snaps.hits += int64(hits)
	g.snaps.refreshes += int64(refreshes)
	g.flushBatchTelemetry(hits, refreshes)
	return results, nil
}

// batchRows returns the reusable normalised-row scratch sized for n.
func (g *Grapher) batchRows(n int) [][]float64 {
	if cap(g.rowsBuf) < n {
		g.rowsBuf = make([][]float64, n)
	}
	g.rowsBuf = g.rowsBuf[:n]
	return g.rowsBuf
}

// batchServeFlags returns the reusable per-sample flag scratch sized for n.
func (g *Grapher) batchServeFlags(n int) []bool {
	if cap(g.serveBuf) < n {
		g.serveBuf = make([]bool, n)
	}
	g.serveBuf = g.serveBuf[:n]
	return g.serveBuf
}

// flushBatchTelemetry pushes one batch's snapshot activity into the
// attached registry (no-ops when none is attached). The invalidation and
// search counters are flushed as deltas against their last-flushed marks.
func (g *Grapher) flushBatchTelemetry(hits, refreshes int) {
	g.tel.snapHit.Add(int64(hits))
	g.tel.snapRefresh.Add(int64(refreshes))
	g.tel.snapInvalid.Add(g.snaps.invalidated - g.telInvalidated)
	g.telInvalidated = g.snaps.invalidated
	g.tel.snapBytes.Set(float64(g.snaps.bytes))
	g.flushSearchTelemetry()
}

// flushSearchTelemetry advances the SearchKNN counter by the calls issued
// since the last flush; it runs on both the fresh and snapshot paths.
func (g *Grapher) flushSearchTelemetry() {
	searches := g.searchCalls.Load()
	g.tel.searches.Add(searches - g.telSearches)
	g.telSearches = searches
}
