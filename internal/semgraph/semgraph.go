// Package semgraph implements the paper's Graph-based Importance Score
// Algorithm (Section 4.1).
//
// Each training sample is a node; its position is the embedding produced by
// the model's feature-extraction layer. Approximate nearest neighbours come
// from an ANN searcher (HNSW by default). Two samples are joined by an edge
// when their similarity sim(x,y) = exp(-λ·d(x,y)) exceeds a threshold α
// (Eqs. 2-3). For each scored sample the counts x_same (same-class
// neighbours) and x_other (different-class neighbours) yield the global
// importance score of Eq. 4:
//
//	score(x) = ln(1/x_same + x_other/neighborMax + 1)
//
// The sample itself counts as one same-class neighbour so x_same >= 1 and
// the score stays finite (hnswlib likewise returns the query point when it
// is indexed). The graph is transient: only scores and the per-batch
// top-degree node's neighbour list are retained, exactly as the paper's
// overhead analysis (Section 5) prescribes.
package semgraph

import (
	"fmt"
	"math"
	"sync/atomic"

	"spidercache/internal/hnsw"
)

// NeighborSearcher abstracts the ANN index so exact brute-force search can
// be swapped in for recall tests and ablation benchmarks.
type NeighborSearcher interface {
	// Upsert inserts or replaces the vector stored under id.
	Upsert(id int, vec []float64) error
	// SearchKNN returns up to k nearest indexed points to q with Euclidean
	// distances, nearest first.
	SearchKNN(q []float64, k int) []hnsw.Result
	// Len reports how many points are indexed.
	Len() int
}

// Config tunes the scoring algorithm.
type Config struct {
	Lambda      float64 // similarity decay rate (Eq. 2)
	Alpha       float64 // edge threshold on similarity (Eq. 3)
	NeighborMax int     // normaliser in Eq. 4; the paper uses HNSW's default 500
	K           int     // neighbours retrieved per scored sample
	// HomAlpha is the stricter similarity bar a neighbour must clear to
	// enter a high-degree node's stored neighbour list (the Homophily
	// Cache's substitution set). Edges at Alpha capture class structure
	// for scoring; substitution additionally requires near-duplicate
	// similarity, per the paper's argument that replacing a sample is safe
	// only for "duplicate or highly similar" counterparts.
	HomAlpha float64
	// SnapshotDrift enables the neighborhood-snapshot cache when positive:
	// a sample whose normalised embedding moved less than this Euclidean
	// distance since it was last indexed skips both the index upsert and
	// the SearchKNN, serving scoring from its cached snapshot instead.
	// 0 (the default) disables snapshots entirely — every batch upserts
	// and searches fresh, bit-identical to the pre-snapshot behaviour.
	SnapshotDrift float64
}

// DefaultConfig matches the paper's described settings, with K sized for the
// scaled-down datasets. Lambda/Alpha are calibrated for unit-normalised
// embeddings (pairwise distances in [0, 2]): the edge threshold
// -ln(Alpha)/Lambda ≈ 1.05 connects samples within roughly a 60° angle.
//
// NeighborMax normalises the x_other term of Eq. 4 by the maximum possible
// neighbour count. The paper uses hnswlib's default of 500 because its
// neighbour lists can grow that long; here lists are capped at K, so the
// equivalent normaliser is K — it keeps Part2 in [0, 1] exactly as in the
// paper's setting.
func DefaultConfig() Config {
	return Config{Lambda: 1.0, Alpha: 0.35, NeighborMax: 24, K: 24, HomAlpha: 0.65}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Lambda <= 0:
		return fmt.Errorf("semgraph: Lambda must be positive, got %g", c.Lambda)
	case c.Alpha <= 0 || c.Alpha >= 1:
		return fmt.Errorf("semgraph: Alpha must be in (0,1), got %g", c.Alpha)
	case c.NeighborMax < 1:
		return fmt.Errorf("semgraph: NeighborMax must be >= 1, got %d", c.NeighborMax)
	case c.K < 1:
		return fmt.Errorf("semgraph: K must be >= 1, got %d", c.K)
	case c.HomAlpha < c.Alpha || c.HomAlpha >= 1:
		return fmt.Errorf("semgraph: HomAlpha must be in [Alpha,1), got %g", c.HomAlpha)
	case c.SnapshotDrift < 0 || c.SnapshotDrift >= 2:
		return fmt.Errorf("semgraph: SnapshotDrift must be in [0,2) for unit-normalised embeddings, got %g", c.SnapshotDrift)
	}
	return nil
}

// ScoreResult is the outcome of scoring one sample.
type ScoreResult struct {
	ID        int
	Score     float64
	Same      int   // same-class graph neighbours (includes self)
	Other     int   // different-class graph neighbours
	Neighbors []int // IDs of edge-connected neighbours, self excluded
	// CloseNeighbors is the subset of Neighbors above the stricter
	// HomAlpha similarity bar and sharing this node's class — the IDs this
	// node may substitute for when installed into the Homophily Cache.
	// (A substitute with a different label would silently change the
	// supervision signal; "duplicate or highly similar" samples in the
	// paper's sense are same-class by construction.)
	CloseNeighbors []int
}

// Degree returns the node's edge count (self excluded).
func (r ScoreResult) Degree() int { return len(r.Neighbors) }

// Grapher maintains global importance scores over the training set.
//
// Single calls (Update, Score, the stat readers) are not safe for concurrent
// use; ScoreBatch is the concurrency entry point — it fans per-sample
// scoring across the worker pool internally while presenting a serial
// interface to the caller.
type Grapher struct {
	cfg      Config
	searcher NeighborSearcher
	labels   []int
	scores   []float64
	scored   []bool
	// distance thresholds equivalent to sim > alpha (resp. homAlpha):
	// d < -ln(alpha)/lambda.
	distThresh    float64
	homDistThresh float64

	// workers is the ScoreBatch fan-out; 0 means GOMAXPROCS.
	workers int
	// normBuf is the reusable normalisation buffer for the serial
	// Update/Score path, so per-sample scoring stops allocating.
	normBuf []float64

	// snaps is the drift-bounded neighborhood-snapshot cache; nil when
	// Config.SnapshotDrift is 0 (snapshots disabled).
	snaps *snapshotStore
	// rowsBuf/serveBuf are ScoreBatch's reusable per-batch scratch: the
	// normalised embedding rows and the served-from-snapshot flags.
	rowsBuf  [][]float64
	serveBuf []bool
	// searchCalls counts real SearchKNN calls; atomic because the scoring
	// fan-out increments it from worker goroutines.
	searchCalls atomic.Int64
	// tel holds the grapher's telemetry instruments (shared no-ops until
	// SetMetrics attaches a registry). telSearches/telInvalidated are the
	// last-flushed marks so per-batch flushes add deltas, not totals.
	tel            grapherTelemetry
	telSearches    int64
	telInvalidated int64

	// Incrementally maintained score statistics: the elastic manager reads
	// σ every epoch and the substitution gate reads the mean, so keeping
	// them here turns those former O(n) scans into O(1) reads. Maintained
	// in Welford form (running mean + M2) rather than sum/sum-of-squares,
	// because batches of near-identical scores would lose the E[x²]−E[x]²
	// form to cancellation. recordScore keeps them in sync with
	// scores/scored, retiring the old contribution on rescoring.
	statN    int
	statMean float64
	statM2   float64 // sum of squared deviations from the running mean
}

// New builds a Grapher over a dataset with the given per-sample labels.
// searcher starts empty and is populated by Update calls as batches flow
// through training.
func New(cfg Config, labels []int, searcher NeighborSearcher) (*Grapher, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if searcher == nil {
		return nil, fmt.Errorf("semgraph: searcher must not be nil")
	}
	if len(labels) == 0 {
		return nil, fmt.Errorf("semgraph: empty label set")
	}
	g := &Grapher{
		cfg:           cfg,
		searcher:      searcher,
		labels:        labels,
		scores:        make([]float64, len(labels)),
		scored:        make([]bool, len(labels)),
		distThresh:    -math.Log(cfg.Alpha) / cfg.Lambda,
		homDistThresh: -math.Log(cfg.HomAlpha) / cfg.Lambda,
		tel:           newGrapherTelemetry(nil),
	}
	if cfg.SnapshotDrift > 0 {
		g.snaps = newSnapshotStore(len(labels), cfg.SnapshotDrift)
	}
	return g, nil
}

// Similarity computes Eq. 2 for a given Euclidean distance.
func (g *Grapher) Similarity(dist float64) float64 {
	return math.Exp(-g.cfg.Lambda * dist)
}

// Normalize returns the L2-normalised copy of vec that the grapher indexes
// and scores. Normalisation puts every embedding on the unit sphere so the
// similarity decay (Eq. 2) and edge threshold (Eq. 3) operate on a bounded,
// architecture-independent distance scale — the same reason cosine distance
// is the default in embedding retrieval systems. Zero vectors are returned
// unchanged.
func Normalize(vec []float64) []float64 {
	return NormalizeInto(nil, vec)
}

// NormalizeInto is Normalize writing into dst, reusing its storage when it
// has sufficient capacity (dst may be nil or an earlier return value of this
// function). It returns the normalised slice. vec is never modified, and
// the result aliases dst, not vec.
func NormalizeInto(dst, vec []float64) []float64 {
	if cap(dst) < len(vec) {
		dst = make([]float64, len(vec))
	} else {
		dst = dst[:len(vec)]
	}
	var n float64
	for _, v := range vec {
		n += v * v
	}
	if n == 0 {
		copy(dst, vec)
		return dst
	}
	n = 1 / math.Sqrt(n)
	for i, v := range vec {
		dst[i] = v * n
	}
	return dst
}

// Update inserts or refreshes the embedding of sample id in the ANN index
// (line 15 of the paper's Algorithm 1). The embedding is L2-normalised
// before indexing. With snapshots enabled the same drift gate ScoreBatch
// applies holds here: an embedding still within the drift budget of the
// indexed position skips the upsert (the index already represents it), and
// one that moved past the budget re-indexes, which also dirties every
// snapshot whose neighbour list contains id.
func (g *Grapher) Update(id int, embedding []float64) error {
	if id < 0 || id >= len(g.labels) {
		return fmt.Errorf("semgraph: id %d out of range [0,%d)", id, len(g.labels))
	}
	// Searchers copy the vector on Upsert, so the reusable buffer is safe
	// to hand over and immediately reuse.
	g.normBuf = NormalizeInto(g.normBuf, embedding)
	if g.snaps != nil {
		if !g.driftExceeded(id, g.normBuf) {
			return nil
		}
		if err := g.searcher.Upsert(id, g.normBuf); err != nil {
			return err
		}
		g.snaps.setAnchor(id, g.normBuf)
		g.snaps.invalidateDependents(id)
		return nil
	}
	return g.searcher.Upsert(id, g.normBuf)
}

// driftExceeded reports whether id must be re-indexed for the normalised
// embedding q: it has no anchor yet, or q moved past the drift budget.
func (g *Grapher) driftExceeded(id int, q []float64) bool {
	anchor := g.snaps.entries[id].anchor
	return anchor == nil || distTo(q, anchor) > g.snaps.budget
}

// Score computes the global importance of sample id from its current
// embedding (lines 16-21 of Algorithm 1) and records it in the global score
// table. The embedding passed is the one just produced by the forward pass.
func (g *Grapher) Score(id int, embedding []float64) (ScoreResult, error) {
	if id < 0 || id >= len(g.labels) {
		return ScoreResult{}, fmt.Errorf("semgraph: id %d out of range [0,%d)", id, len(g.labels))
	}
	g.normBuf = NormalizeInto(g.normBuf, embedding)
	res := g.computeScore(id, g.normBuf)
	g.recordScore(res)
	return res, nil
}

// computeScore evaluates Eq. 4 for sample id from its normalised embedding q
// (lines 16-21 of Algorithm 1). It only reads grapher state and the
// searcher, so ScoreBatch may call it from many workers at once.
func (g *Grapher) computeScore(id int, q []float64) ScoreResult {
	res := ScoreResult{ID: id, Same: 1} // self counts as a same-class neighbour
	g.searchCalls.Add(1)
	hits := g.searcher.SearchKNN(q, g.cfg.K)
	for _, h := range hits {
		if h.ID == id {
			continue
		}
		if h.Dist >= g.distThresh { // sim(x,y) <= alpha: no edge
			continue
		}
		res.Neighbors = append(res.Neighbors, h.ID)
		if g.labels[h.ID] == g.labels[id] {
			res.Same++
			if h.Dist < g.homDistThresh {
				res.CloseNeighbors = append(res.CloseNeighbors, h.ID)
			}
		} else {
			res.Other++
		}
	}
	res.Score = math.Log(1/float64(res.Same) + float64(res.Other)/float64(g.cfg.NeighborMax) + 1)
	return res
}

// recordScore installs a computed score into the global table, keeping the
// incremental statistics in sync. Rescoring a sample first retires its
// previous contribution.
func (g *Grapher) recordScore(res ScoreResult) {
	id := res.ID
	if g.scored[id] {
		g.statRemove(g.scores[id])
	} else {
		g.scored[id] = true
	}
	g.scores[id] = res.Score
	g.statAdd(res.Score)
}

// statAdd folds one score into the Welford accumulators.
func (g *Grapher) statAdd(x float64) {
	g.statN++
	d := x - g.statMean
	g.statMean += d / float64(g.statN)
	g.statM2 += d * (x - g.statMean)
}

// statRemove retires one previously added score (reverse Welford update).
func (g *Grapher) statRemove(x float64) {
	if g.statN <= 1 {
		g.statN, g.statMean, g.statM2 = 0, 0, 0
		return
	}
	d := x - g.statMean
	newMean := g.statMean - d/float64(g.statN-1)
	g.statM2 -= d * (x - newMean)
	if g.statM2 < 0 {
		g.statM2 = 0
	}
	g.statMean = newMean
	g.statN--
}

// ScoreOf returns the last recorded global score for id (0 before the first
// scoring pass touches it).
func (g *Grapher) ScoreOf(id int) float64 { return g.scores[id] }

// Scores returns the global score table, indexed by sample ID. The returned
// slice is live; callers must not mutate it.
func (g *Grapher) Scores() []float64 { return g.scores }

// ScoredCount reports how many samples have been scored at least once.
// O(1): maintained incrementally by recordScore.
func (g *Grapher) ScoredCount() int { return g.statN }

// ScoreMean returns the mean score over all scored samples (0 when none).
// O(1): maintained incrementally by recordScore.
func (g *Grapher) ScoreMean() float64 {
	if g.statN == 0 {
		return 0
	}
	return g.statMean
}

// ScoreStd returns the standard deviation of the scores of all scored
// samples — the σ the Elastic Cache Manager's Importance Monitor tracks
// (Eq. 5). It returns 0 when fewer than two samples have been scored.
// O(1): read from the Welford accumulators maintained by recordScore (the
// former per-call scan was O(n) on every batch of the hot loop, since the
// elastic manager reads σ each epoch and the substitution gate reads the
// mean).
func (g *Grapher) ScoreStd() float64 {
	if g.statN < 2 {
		return 0
	}
	return math.Sqrt(g.statM2 / float64(g.statN))
}

// ExportScores returns a copy of the global score table (NaN marks samples
// never scored), suitable for warm-starting a later run on the same dataset.
func (g *Grapher) ExportScores() []float64 {
	out := make([]float64, len(g.scores))
	for i, ok := range g.scored {
		if ok {
			out[i] = g.scores[i]
		} else {
			out[i] = math.NaN()
		}
	}
	return out
}

// ImportScores seeds the global score table from a previous run's export.
// NaN entries are skipped; length must match the dataset.
func (g *Grapher) ImportScores(scores []float64) error {
	if len(scores) != len(g.scores) {
		return fmt.Errorf("semgraph: got %d scores for %d samples", len(scores), len(g.scores))
	}
	for i, s := range scores {
		if math.IsNaN(s) {
			continue
		}
		g.recordScore(ScoreResult{ID: i, Score: s})
	}
	return nil
}

// Len returns the number of samples the grapher tracks.
func (g *Grapher) Len() int { return len(g.labels) }

// K returns the configured neighbour count.
func (g *Grapher) K() int { return g.cfg.K }
