package semgraph

import (
	"math"

	"spidercache/internal/telemetry"
)

// DefaultSnapshotDrift is the drift budget used when a caller enables
// neighborhood snapshots without choosing one. Embeddings are
// unit-normalised (pairwise distances in [0, 2]); 0.15 sits far below the
// edge threshold (-ln(Alpha)/Lambda ≈ 1.05) and the near-duplicate bar
// (≈ 0.43), so a snapshot served inside this budget still describes the
// same neighbourhood regime the fresh search would find. The
// staleness-vs-accuracy sweep (`spiderbench -exp snapshot`) measures where
// this stops being true.
const DefaultSnapshotDrift = 0.15

// snapEntry is one sample's cached neighborhood snapshot.
//
// anchor is the normalised embedding the sample was last *upserted into the
// ANN index* with. It only changes together with an index upsert, which is
// what makes staleness hard-bounded: the indexed position equals anchor,
// scoring is served from the snapshot only while the live embedding stays
// within the drift budget of anchor, and the cached lists were computed
// from a query that was itself within the budget of anchor. So the lists
// are never more than 2×budget away from the embedding they are served for,
// and the indexed position never more than 1×budget from the live one.
type snapEntry struct {
	anchor []float64
	// Cached ScoreResult pieces from the last real SearchKNN.
	neighbors []int
	close     []int
	same      int
	other     int
	score     float64
	// valid reports the lists are populated and were computed against the
	// current anchor. An upsert (anchor move) clears it.
	valid bool
	// dirty marks the lists as poisoned by a *member's* movement: some
	// sample in neighbors moved past its own budget, so this snapshot may
	// reference a position that no longer exists. Served snapshots are
	// never dirty.
	dirty bool
}

// snapshotStore caches per-sample neighborhood snapshots and maintains the
// reverse index used for bidirectional invalidation. It is not safe for
// concurrent mutation; ScoreBatch mutates it only in the serial phases and
// reads it from parallel workers in between (the workers never write).
type snapshotStore struct {
	budget  float64
	entries []snapEntry
	// holders[m] lists the snapshot ids whose neighbor list contains m —
	// the reverse index that lets an upsert of m dirty every snapshot that
	// would otherwise keep serving m's old position.
	holders [][]int

	// Cumulative counters (read via SnapshotStats).
	hits        int64
	refreshes   int64
	invalidated int64
	bytes       int64 // approximate resident bytes, kept incrementally
}

// snapEntryOverhead approximates the fixed per-entry cost (struct header,
// slice headers, bookkeeping) charged to the memory gauge.
const snapEntryOverhead = 96

func newSnapshotStore(n int, budget float64) *snapshotStore {
	return &snapshotStore{
		budget:  budget,
		entries: make([]snapEntry, n),
		holders: make([][]int, n),
	}
}

// distTo returns the Euclidean distance between two equal-length vectors.
func distTo(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// setAnchor records v as id's indexed position, reusing the previous
// anchor's storage. The entry's lists become stale (valid=false): they were
// computed around the old position.
func (s *snapshotStore) setAnchor(id int, v []float64) {
	ent := &s.entries[id]
	if ent.anchor == nil {
		s.bytes += int64(len(v))*8 + snapEntryOverhead
	}
	if cap(ent.anchor) < len(v) {
		ent.anchor = make([]float64, len(v))
	}
	ent.anchor = ent.anchor[:len(v)]
	copy(ent.anchor, v)
	ent.valid = false
}

// invalidateDependents marks every snapshot whose neighbor list contains
// id as dirty: id's indexed position moved past its budget, so those lists
// may reference a vanished neighbor. Returns how many snapshots were newly
// dirtied.
func (s *snapshotStore) invalidateDependents(id int) int {
	n := 0
	for _, h := range s.holders[id] {
		ent := &s.entries[h]
		if ent.valid && !ent.dirty {
			ent.dirty = true
			n++
		}
	}
	s.invalidated += int64(n)
	return n
}

// serveable reports whether id's snapshot may answer a scoring request for
// the normalised embedding q.
func (s *snapshotStore) serveable(id int, q []float64) bool {
	ent := &s.entries[id]
	return ent.valid && !ent.dirty && distTo(q, ent.anchor) <= s.budget
}

// serve builds a ScoreResult from id's snapshot. The returned slices are
// fresh copies, matching the fresh-search path where every result owns its
// storage. Safe to call from parallel workers: it only reads the store.
func (s *snapshotStore) serve(id int) ScoreResult {
	ent := &s.entries[id]
	return ScoreResult{
		ID:             id,
		Score:          ent.score,
		Same:           ent.same,
		Other:          ent.other,
		Neighbors:      copyIDs(ent.neighbors),
		CloseNeighbors: copyIDs(ent.close),
	}
}

// install records a fresh search result as id's snapshot: the old list's
// reverse-index memberships are retired, the new ones registered, and the
// entry becomes clean and valid. Must run serially.
func (s *snapshotStore) install(id int, res *ScoreResult) {
	ent := &s.entries[id]
	oldBytes := int64(len(ent.neighbors)+len(ent.close)) * 8
	for _, m := range ent.neighbors {
		s.dropHolder(m, id)
	}
	ent.neighbors = append(ent.neighbors[:0], res.Neighbors...)
	ent.close = append(ent.close[:0], res.CloseNeighbors...)
	ent.same = res.Same
	ent.other = res.Other
	ent.score = res.Score
	ent.valid = true
	ent.dirty = false
	for _, m := range ent.neighbors {
		s.holders[m] = append(s.holders[m], id)
		s.bytes += 8 // reverse-index membership
	}
	s.bytes += int64(len(ent.neighbors)+len(ent.close))*8 - oldBytes
}

// dropHolder removes one occurrence of holder from m's reverse-index list
// (swap-remove; order is irrelevant, the list is an unordered set).
func (s *snapshotStore) dropHolder(m, holder int) {
	hs := s.holders[m]
	for i, h := range hs {
		if h == holder {
			last := len(hs) - 1
			hs[i] = hs[last]
			s.holders[m] = hs[:last]
			s.bytes -= 8
			return
		}
	}
}

// SnapshotStats summarises the snapshot cache's activity and footprint.
type SnapshotStats struct {
	// Hits counts scoring requests served from a snapshot (no SearchKNN).
	Hits int64
	// Refreshes counts real searches that (re)populated a snapshot.
	Refreshes int64
	// Invalidated counts snapshots dirtied because a member sample's
	// indexed position moved past the drift budget.
	Invalidated int64
	// Entries is the number of samples holding a valid snapshot.
	Entries int
	// Bytes approximates the snapshot store's resident memory.
	Bytes int64
}

// SnapshotStats returns the snapshot cache's cumulative counters, or the
// zero value when snapshots are disabled. Entries is computed on demand
// (O(n)); the counters are O(1) reads.
func (g *Grapher) SnapshotStats() SnapshotStats {
	if g.snaps == nil {
		return SnapshotStats{}
	}
	st := SnapshotStats{
		Hits:        g.snaps.hits,
		Refreshes:   g.snaps.refreshes,
		Invalidated: g.snaps.invalidated,
		Bytes:       g.snaps.bytes,
	}
	for i := range g.snaps.entries {
		if g.snaps.entries[i].valid {
			st.Entries++
		}
	}
	return st
}

// SnapshotDrift returns the configured drift budget (0 = snapshots off).
func (g *Grapher) SnapshotDrift() float64 { return g.cfg.SnapshotDrift }

// SnapshotNeighbors returns id's cached edge-connected neighbour list, or
// nil when the sample holds no valid snapshot. The slice is live store
// state: callers must not mutate or retain it across Grapher calls.
func (g *Grapher) SnapshotNeighbors(id int) []int {
	if g.snaps == nil || id < 0 || id >= len(g.snaps.entries) {
		return nil
	}
	ent := &g.snaps.entries[id]
	if !ent.valid {
		return nil
	}
	return ent.neighbors
}

// SnapshotCloseNeighbors returns id's cached near-duplicate same-class
// neighbour list (the Homophily substitution set) from its snapshot, or nil
// when the sample holds no valid snapshot. The slice is live store state:
// callers must not mutate or retain it across Grapher calls. This is the
// learned semantic graph the GraphAware-sem cache policy consumes.
func (g *Grapher) SnapshotCloseNeighbors(id int) []int {
	if g.snaps == nil || id < 0 || id >= len(g.snaps.entries) {
		return nil
	}
	ent := &g.snaps.entries[id]
	if !ent.valid {
		return nil
	}
	return ent.close
}

// SearchCalls reports the cumulative number of real SearchKNN calls this
// grapher has issued (snapshot hits do not search). Safe for concurrent
// reads.
func (g *Grapher) SearchCalls() int64 { return g.searchCalls.Load() }

// copyIDs returns an owned copy of ids, preserving nil-ness so snapshot
// serving is indistinguishable from a fresh search that found no edges.
func copyIDs(ids []int) []int {
	if ids == nil {
		return nil
	}
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

// grapherTelemetry groups the grapher's instruments; with a nil registry
// they are shared no-ops, so record sites stay unconditional.
type grapherTelemetry struct {
	snapHit     *telemetry.Counter
	snapRefresh *telemetry.Counter
	snapInvalid *telemetry.Counter
	snapBytes   *telemetry.Gauge
	searches    *telemetry.Counter
}

func newGrapherTelemetry(reg *telemetry.Registry) grapherTelemetry {
	reg.Describe("semgraph_snapshot_total", "neighborhood snapshot events by result (hit/refresh/invalidated)")
	reg.Describe("semgraph_snapshot_bytes", "approximate resident bytes of the neighborhood snapshot store")
	reg.Describe("semgraph_searchknn_total", "real ANN SearchKNN calls issued by the scoring path")
	return grapherTelemetry{
		snapHit:     reg.Counter("semgraph_snapshot_total", telemetry.Labels{"result": "hit"}),
		snapRefresh: reg.Counter("semgraph_snapshot_total", telemetry.Labels{"result": "refresh"}),
		snapInvalid: reg.Counter("semgraph_snapshot_total", telemetry.Labels{"result": "invalidated"}),
		snapBytes:   reg.Gauge("semgraph_snapshot_bytes", nil),
		searches:    reg.Counter("semgraph_searchknn_total", nil),
	}
}

// SetMetrics attaches a telemetry registry: the grapher records snapshot
// hit/refresh/invalidation counters, the snapshot memory gauge and the
// SearchKNN call counter into it. Nil detaches (no-op instruments).
func (g *Grapher) SetMetrics(reg *telemetry.Registry) {
	g.tel = newGrapherTelemetry(reg)
}
