package semgraph

import (
	"math"
	"testing"

	"spidercache/internal/hnsw"
	"spidercache/internal/xrand"
)

// buildClustered indexes two well-separated class clusters plus one
// misclassified point and returns (grapher, labels).
// Layout (2-D, pre-normalisation):
//
//	class 0: tight cluster around (1, 0)
//	class 1: tight cluster around (0, 1)
//	sample 20 ("misclassified"): label 0 but embedded inside class 1
func buildClustered(t *testing.T) *Grapher {
	t.Helper()
	labels := make([]int, 21)
	for i := 10; i < 20; i++ {
		labels[i] = 1
	}
	labels[20] = 0
	g, err := New(DefaultConfig(), labels, NewBruteSearcher())
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(1)
	emb := func(cx, cy float64) []float64 {
		return []float64{cx + rng.NormFloat64()*0.05, cy + rng.NormFloat64()*0.05}
	}
	for i := 0; i < 10; i++ {
		if err := g.Update(i, emb(1, 0)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 20; i++ {
		if err := g.Update(i, emb(0, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.Update(20, emb(0, 1)); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Lambda = 0 },
		func(c *Config) { c.Alpha = 0 },
		func(c *Config) { c.Alpha = 1 },
		func(c *Config) { c.NeighborMax = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.HomAlpha = c.Alpha - 0.1 },
		func(c *Config) { c.HomAlpha = 1 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(DefaultConfig(), nil, NewBruteSearcher()); err == nil {
		t.Fatal("empty labels accepted")
	}
	if _, err := New(DefaultConfig(), []int{0}, nil); err == nil {
		t.Fatal("nil searcher accepted")
	}
}

func TestNormalize(t *testing.T) {
	v := Normalize([]float64{3, 4})
	if math.Abs(v[0]-0.6) > 1e-12 || math.Abs(v[1]-0.8) > 1e-12 {
		t.Fatalf("Normalize = %v", v)
	}
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Fatalf("zero vector changed: %v", z)
	}
	// Input must not be mutated.
	in := []float64{2, 0}
	Normalize(in)
	if in[0] != 2 {
		t.Fatal("Normalize mutated input")
	}
}

func TestSimilarityDecay(t *testing.T) {
	g, _ := New(DefaultConfig(), []int{0, 1}, NewBruteSearcher())
	if s := g.Similarity(0); s != 1 {
		t.Fatalf("sim(0) = %g", s)
	}
	if g.Similarity(1) >= g.Similarity(0.5) {
		t.Fatal("similarity not decreasing in distance")
	}
}

// TestScoreStates verifies the paper's Fig 8(b) state mapping: the
// misclassified sample scores strictly highest, well-classified samples
// strictly lowest.
func TestScoreStates(t *testing.T) {
	g := buildClustered(t)
	// Replay the generator stream of buildClustered so each Score call uses
	// exactly the embedding that was indexed for that sample.
	results := make(map[int]ScoreResult)
	rng := xrand.New(1)
	emb := func(cx, cy float64) []float64 {
		return []float64{cx + rng.NormFloat64()*0.05, cy + rng.NormFloat64()*0.05}
	}
	for i := 0; i < 10; i++ {
		r, err := g.Score(i, emb(1, 0))
		if err != nil {
			t.Fatal(err)
		}
		results[i] = r
	}
	for i := 10; i < 20; i++ {
		r, _ := g.Score(i, emb(0, 1))
		results[i] = r
	}
	mis, _ := g.Score(20, emb(0, 1))

	for i := 0; i < 20; i++ {
		if mis.Score <= results[i].Score {
			t.Fatalf("misclassified score %.3f not above well-classified %.3f (id %d)",
				mis.Score, results[i].Score, i)
		}
	}
	if mis.Other == 0 {
		t.Fatal("misclassified sample has no other-class neighbours")
	}
	if results[0].Same < 5 {
		t.Fatalf("well-classified sample has only %d same-class neighbours", results[0].Same)
	}
}

func TestScoreFormula(t *testing.T) {
	// score = ln(1/same + other/neighborMax + 1) with same including self.
	cfg := DefaultConfig()
	g, _ := New(cfg, []int{0, 0, 1}, NewBruteSearcher())
	g.Update(0, []float64{1, 0})
	g.Update(1, []float64{1, 0.01})
	g.Update(2, []float64{1, 0.02})
	r, err := g.Score(0, []float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(1/float64(r.Same) + float64(r.Other)/float64(cfg.NeighborMax) + 1)
	if math.Abs(r.Score-want) > 1e-12 {
		t.Fatalf("score %.6f, formula gives %.6f", r.Score, want)
	}
	if g.ScoreOf(0) != r.Score {
		t.Fatal("global table not updated")
	}
}

func TestCloseNeighborsSameClassOnly(t *testing.T) {
	g, _ := New(DefaultConfig(), []int{0, 0, 1}, NewBruteSearcher())
	g.Update(0, []float64{1, 0})
	g.Update(1, []float64{1, 0.001}) // near-duplicate, same class
	g.Update(2, []float64{1, 0.002}) // near-duplicate, other class
	r, _ := g.Score(0, []float64{1, 0})
	foundSame, foundOther := false, false
	for _, nb := range r.CloseNeighbors {
		if nb == 1 {
			foundSame = true
		}
		if nb == 2 {
			foundOther = true
		}
	}
	if !foundSame {
		t.Fatal("same-class near-duplicate missing from CloseNeighbors")
	}
	if foundOther {
		t.Fatal("other-class sample in CloseNeighbors")
	}
}

func TestScoreRangeChecks(t *testing.T) {
	g, _ := New(DefaultConfig(), []int{0, 1}, NewBruteSearcher())
	if err := g.Update(5, []float64{1}); err == nil {
		t.Fatal("out-of-range Update accepted")
	}
	if _, err := g.Score(-1, []float64{1}); err == nil {
		t.Fatal("negative id accepted")
	}
}

func TestScoreStdAndMean(t *testing.T) {
	g := buildClustered(t)
	if g.ScoreStd() != 0 || g.ScoreMean() != 0 {
		t.Fatal("unscored grapher reports nonzero stats")
	}
	rng := xrand.New(2)
	for i := 0; i < 21; i++ {
		cx, cy := 1.0, 0.0
		if i >= 10 {
			cx, cy = 0, 1
		}
		g.Score(i, []float64{cx + rng.NormFloat64()*0.05, cy + rng.NormFloat64()*0.05})
	}
	if g.ScoredCount() != 21 {
		t.Fatalf("ScoredCount = %d", g.ScoredCount())
	}
	if g.ScoreStd() <= 0 {
		t.Fatal("σ of heterogeneous scores is zero")
	}
	if g.ScoreMean() <= 0 {
		t.Fatal("mean score is zero")
	}
}

func TestGrapherWithHNSWMatchesBrute(t *testing.T) {
	labels := make([]int, 200)
	for i := range labels {
		labels[i] = i % 4
	}
	mk := func(s NeighborSearcher) *Grapher {
		g, err := New(DefaultConfig(), labels, s)
		if err != nil {
			t.Fatal(err)
		}
		return g
	}
	idx, _ := hnsw.New(hnsw.DefaultConfig())
	gh := mk(idx)
	gb := mk(NewBruteSearcher())

	rng := xrand.New(3)
	vecs := make([][]float64, 200)
	for i := range vecs {
		base := float64(labels[i])
		vecs[i] = []float64{base + rng.NormFloat64()*0.1, -base + rng.NormFloat64()*0.1, rng.NormFloat64() * 0.1}
		gh.Update(i, vecs[i])
		gb.Update(i, vecs[i])
	}
	var diff, n float64
	for i := 0; i < 200; i += 5 {
		rh, _ := gh.Score(i, vecs[i])
		rb, _ := gb.Score(i, vecs[i])
		diff += math.Abs(rh.Score - rb.Score)
		n++
	}
	if avg := diff / n; avg > 0.05 {
		t.Fatalf("HNSW scores diverge from exact by %.4f on average", avg)
	}
}

func TestBruteSearcherUpsertReplaces(t *testing.T) {
	b := NewBruteSearcher()
	b.Upsert(1, []float64{0, 0})
	b.Upsert(1, []float64{5, 5})
	if b.Len() != 1 {
		t.Fatalf("Len = %d", b.Len())
	}
	res := b.SearchKNN([]float64{5, 5}, 1)
	if res[0].Dist != 0 {
		t.Fatal("vector not replaced")
	}
}

func TestExportImportScores(t *testing.T) {
	g, _ := New(DefaultConfig(), []int{0, 0, 1}, NewBruteSearcher())
	g.Update(0, []float64{1, 0})
	g.Update(1, []float64{1, 0.01})
	g.Update(2, []float64{0, 1})
	g.Score(0, []float64{1, 0})

	exp := g.ExportScores()
	if len(exp) != 3 {
		t.Fatalf("export length %d", len(exp))
	}
	if math.IsNaN(exp[0]) || !math.IsNaN(exp[1]) || !math.IsNaN(exp[2]) {
		t.Fatalf("NaN marking wrong: %v", exp)
	}

	g2, _ := New(DefaultConfig(), []int{0, 0, 1}, NewBruteSearcher())
	if err := g2.ImportScores(exp); err != nil {
		t.Fatal(err)
	}
	if g2.ScoredCount() != 1 || g2.ScoreOf(0) != g.ScoreOf(0) {
		t.Fatal("import did not restore state")
	}
	if err := g2.ImportScores(exp[:1]); err == nil {
		t.Fatal("length mismatch accepted")
	}
}
