package semgraph

import (
	"testing"

	"spidercache/internal/pq"
	"spidercache/internal/xrand"
)

func pqConfig() pq.Config {
	return pq.Config{Subspaces: 4, Centroids: 16, Iters: 8, Seed: 1}
}

func TestPQSearcherValidation(t *testing.T) {
	if _, err := NewPQSearcher(pq.Config{}, 100); err == nil {
		t.Fatal("invalid pq config accepted")
	}
	if _, err := NewPQSearcher(pqConfig(), 4); err == nil {
		t.Fatal("trainAfter below centroid count accepted")
	}
}

func TestPQSearcherLifecycle(t *testing.T) {
	s, err := NewPQSearcher(pqConfig(), 32)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(2)
	vecs := make([][]float64, 200)
	for i := range vecs {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
		if err := s.Upsert(i, v); err != nil {
			t.Fatal(err)
		}
		if i == 10 && s.Trained() {
			t.Fatal("trained before threshold")
		}
	}
	if !s.Trained() {
		t.Fatal("never trained")
	}
	if s.Len() != 200 {
		t.Fatalf("Len = %d", s.Len())
	}
	// A point must be its own (approximate) nearest neighbour most of the
	// time; PQ quantisation can swap very close points, so check top-3.
	hits := 0
	for i := 0; i < 50; i++ {
		for _, r := range s.SearchKNN(vecs[i], 3) {
			if r.ID == i {
				hits++
				break
			}
		}
	}
	if hits < 40 {
		t.Fatalf("self-recall@3 = %d/50", hits)
	}
}

func TestPQSearcherCompression(t *testing.T) {
	s, _ := NewPQSearcher(pqConfig(), 32)
	rng := xrand.New(3)
	for i := 0; i < 300; i++ {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		s.Upsert(i, v)
	}
	raw := int64(300 * 8 * 8)
	if mem := s.MemoryBytes(); mem >= raw/2 {
		t.Fatalf("PQ memory %d not well below raw %d", mem, raw)
	}
}

func TestPQSearcherUpsertReplace(t *testing.T) {
	s, _ := NewPQSearcher(pqConfig(), 32)
	rng := xrand.New(4)
	for i := 0; i < 100; i++ {
		v := make([]float64, 8)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		s.Upsert(i, v)
	}
	far := []float64{9, 9, 9, 9, 9, 9, 9, 9}
	if err := s.Upsert(5, far); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 100 {
		t.Fatalf("replace grew index to %d", s.Len())
	}
	res := s.SearchKNN(far, 1)
	if len(res) == 0 || res[0].ID != 5 {
		t.Fatalf("moved point not found: %+v", res)
	}
}

// TestGrapherOverPQSearcher runs the scoring pipeline over the quantised
// searcher end to end.
func TestGrapherOverPQSearcher(t *testing.T) {
	labels := make([]int, 120)
	for i := range labels {
		labels[i] = i % 3
	}
	s, _ := NewPQSearcher(pqConfig(), 32)
	g, err := New(DefaultConfig(), labels, s)
	if err != nil {
		t.Fatal(err)
	}
	rng := xrand.New(5)
	vecs := make([][]float64, 120)
	for i := range vecs {
		base := float64(labels[i])
		v := make([]float64, 8)
		for j := range v {
			v[j] = base + rng.NormFloat64()*0.1
		}
		vecs[i] = v
		if err := g.Update(i, v); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 120; i += 10 {
		if _, err := g.Score(i, vecs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if g.ScoredCount() != 12 {
		t.Fatalf("ScoredCount = %d", g.ScoredCount())
	}
	if g.ScoreMean() <= 0 {
		t.Fatal("no scores produced over PQ searcher")
	}
}
