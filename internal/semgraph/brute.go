package semgraph

import (
	"math"
	"sort"

	"spidercache/internal/hnsw"
)

// BruteSearcher is an exact-kNN NeighborSearcher used as ground truth in
// recall tests and as the baseline in the HNSW ablation benchmark.
type BruteSearcher struct {
	ids  []int
	vecs [][]float64
	slot map[int]int
}

// NewBruteSearcher returns an empty exact searcher.
func NewBruteSearcher() *BruteSearcher {
	return &BruteSearcher{slot: make(map[int]int)}
}

// Upsert inserts or replaces the vector stored under id.
func (b *BruteSearcher) Upsert(id int, vec []float64) error {
	owned := make([]float64, len(vec))
	copy(owned, vec)
	if s, ok := b.slot[id]; ok {
		b.vecs[s] = owned
		return nil
	}
	b.slot[id] = len(b.ids)
	b.ids = append(b.ids, id)
	b.vecs = append(b.vecs, owned)
	return nil
}

// SearchKNN scans every indexed vector and returns the exact k nearest.
func (b *BruteSearcher) SearchKNN(q []float64, k int) []hnsw.Result {
	if k <= 0 || len(b.ids) == 0 {
		return nil
	}
	res := make([]hnsw.Result, 0, len(b.ids))
	for i, v := range b.vecs {
		var s float64
		for j, qv := range q {
			d := qv - v[j]
			s += d * d
		}
		res = append(res, hnsw.Result{ID: b.ids[i], Dist: math.Sqrt(s)})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Dist != res[j].Dist {
			return res[i].Dist < res[j].Dist
		}
		return res[i].ID < res[j].ID
	})
	if len(res) > k {
		res = res[:k]
	}
	return res
}

// Len reports how many points are indexed.
func (b *BruteSearcher) Len() int { return len(b.ids) }
