package semgraph

import (
	"math"
	"reflect"
	"testing"

	"spidercache/internal/hnsw"
	"spidercache/internal/xrand"
)

func testGrapher(t *testing.T, n int, seed uint64) *Grapher {
	t.Helper()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = i % 4
	}
	ix, err := hnsw.New(hnsw.Config{M: 8, EfConstruction: 64, EfSearch: 48, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(DefaultConfig(), labels, ix)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func clusteredEmbedding(id, dim int, rng *xrand.Rand) []float64 {
	v := make([]float64, dim)
	for j := range v {
		v[j] = rng.NormFloat64() * 0.05
	}
	v[id%4] += 1 // four tight class clusters
	return v
}

// batches returns deterministic batch id/embedding pairs, including
// duplicate ids within a batch (as substitute serving produces).
func testBatches(n, dim int, seed uint64) ([][]int, [][][]float64) {
	rng := xrand.New(seed)
	var ids [][]int
	var embs [][][]float64
	for start := 0; start < n; start += 16 {
		end := start + 16
		if end > n {
			end = n
		}
		var bi []int
		var be [][]float64
		for id := start; id < end; id++ {
			bi = append(bi, id)
			be = append(be, clusteredEmbedding(id, dim, rng))
		}
		// Duplicate the first sample of every batch at the tail.
		bi = append(bi, bi[0])
		be = append(be, clusteredEmbedding(bi[0], dim, rng))
		ids = append(ids, bi)
		embs = append(embs, be)
	}
	return ids, embs
}

// TestScoreBatchParallelMatchesSerial is the determinism test of the
// acceptance criteria: the same batches scored with 1 worker and with many
// workers must produce bitwise-identical results and score tables.
func TestScoreBatchParallelMatchesSerial(t *testing.T) {
	const n, dim = 96, 12
	serial := testGrapher(t, n, 5)
	parallel := testGrapher(t, n, 5)
	serial.SetWorkers(1)
	parallel.SetWorkers(8)

	ids, embs := testBatches(n, dim, 77)
	for b := range ids {
		sres, err := serial.ScoreBatch(ids[b], embs[b])
		if err != nil {
			t.Fatal(err)
		}
		pres, err := parallel.ScoreBatch(ids[b], embs[b])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(sres, pres) {
			t.Fatalf("batch %d: parallel results differ from serial", b)
		}
	}
	for id := 0; id < n; id++ {
		if serial.ScoreOf(id) != parallel.ScoreOf(id) {
			t.Fatalf("score table diverged at id %d: %v vs %v", id, serial.ScoreOf(id), parallel.ScoreOf(id))
		}
	}
	if serial.ScoreStd() != parallel.ScoreStd() || serial.ScoreMean() != parallel.ScoreMean() {
		t.Fatal("aggregate statistics diverged between serial and parallel scoring")
	}
}

// TestScoreBatchMatchesSequentialScoreCalls checks the serial path against
// the one-sample API: upserts first, then per-sample Score calls over the
// frozen index must land on the same scores ScoreBatch records.
func TestScoreBatchMatchesSequentialScoreCalls(t *testing.T) {
	const n, dim = 48, 10
	a := testGrapher(t, n, 9)
	b := testGrapher(t, n, 9)
	a.SetWorkers(1)

	rng := xrand.New(13)
	ids := make([]int, n)
	embs := make([][]float64, n)
	for i := 0; i < n; i++ {
		ids[i] = i
		embs[i] = clusteredEmbedding(i, dim, rng)
	}
	if _, err := a.ScoreBatch(ids, embs); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if err := b.Update(id, embs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for i, id := range ids {
		if _, err := b.Score(id, embs[i]); err != nil {
			t.Fatal(err)
		}
	}
	for id := 0; id < n; id++ {
		if a.ScoreOf(id) != b.ScoreOf(id) {
			t.Fatalf("id %d: ScoreBatch %v vs sequential %v", id, a.ScoreOf(id), b.ScoreOf(id))
		}
	}
}

func TestScoreBatchValidation(t *testing.T) {
	g := testGrapher(t, 8, 3)
	if _, err := g.ScoreBatch([]int{1, 2}, [][]float64{{1}}); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := g.ScoreBatch([]int{99}, [][]float64{{1, 0}}); err == nil {
		t.Fatal("out-of-range id accepted")
	}
	if _, err := g.ScoreBatch(nil, nil); err != nil {
		t.Fatalf("empty batch rejected: %v", err)
	}
}

// scanStats recomputes count/mean/std the way the former O(n) scans did:
// two-pass over the scored table. The incremental statistics must agree
// within float tolerance.
func scanStats(g *Grapher) (count int, mean, std float64) {
	var sum float64
	for i, ok := range g.scored {
		if ok {
			sum += g.scores[i]
			count++
		}
	}
	if count == 0 {
		return 0, 0, 0
	}
	mean = sum / float64(count)
	if count < 2 {
		return count, mean, 0
	}
	var ss float64
	for i, ok := range g.scored {
		if ok {
			d := g.scores[i] - mean
			ss += d * d
		}
	}
	return count, mean, math.Sqrt(ss / float64(count))
}

// stdClose compares standard deviations with sqrt-amplification in mind:
// when the true σ is at machine-epsilon scale, an O(1e-18) variance rounding
// difference blows up to O(1e-9) on the std, so near zero the comparison
// falls back to the variances.
func stdClose(got, want float64) bool {
	if math.Abs(got-want) <= 1e-9 {
		return true
	}
	return math.Abs(got*got-want*want) <= 1e-12
}

func TestIncrementalStatsMatchScan(t *testing.T) {
	const n, dim = 80, 8
	g := testGrapher(t, n, 21)
	g.SetWorkers(2)
	ids, embs := testBatches(n, dim, 31)
	for b := range ids {
		if _, err := g.ScoreBatch(ids[b], embs[b]); err != nil {
			t.Fatal(err)
		}
		wantN, wantMean, wantStd := scanStats(g)
		if g.ScoredCount() != wantN {
			t.Fatalf("batch %d: ScoredCount %d, scan %d", b, g.ScoredCount(), wantN)
		}
		if math.Abs(g.ScoreMean()-wantMean) > 1e-9 {
			t.Fatalf("batch %d: ScoreMean %v, scan %v", b, g.ScoreMean(), wantMean)
		}
		if !stdClose(g.ScoreStd(), wantStd) {
			t.Fatalf("batch %d: ScoreStd %v, scan %v", b, g.ScoreStd(), wantStd)
		}
	}
	// Rescoring the same samples (score replacement path) must keep the
	// statistics exact, not drift.
	for b := range ids {
		if _, err := g.ScoreBatch(ids[b], embs[b]); err != nil {
			t.Fatal(err)
		}
	}
	_, wantMean, wantStd := scanStats(g)
	if math.Abs(g.ScoreMean()-wantMean) > 1e-9 || !stdClose(g.ScoreStd(), wantStd) {
		t.Fatalf("stats drifted after rescoring: mean %v/%v std %v/%v",
			g.ScoreMean(), wantMean, g.ScoreStd(), wantStd)
	}
}

func TestIncrementalStatsAfterImport(t *testing.T) {
	g := testGrapher(t, 10, 1)
	scores := []float64{0.5, math.NaN(), 0.25, math.NaN(), 0.75, math.NaN(), math.NaN(), math.NaN(), math.NaN(), 1.0}
	if err := g.ImportScores(scores); err != nil {
		t.Fatal(err)
	}
	wantN, wantMean, wantStd := scanStats(g)
	if g.ScoredCount() != wantN || math.Abs(g.ScoreMean()-wantMean) > 1e-12 || math.Abs(g.ScoreStd()-wantStd) > 1e-12 {
		t.Fatalf("imported stats mismatch: n %d/%d mean %v/%v std %v/%v",
			g.ScoredCount(), wantN, g.ScoreMean(), wantMean, g.ScoreStd(), wantStd)
	}
}

func TestNormalizeInto(t *testing.T) {
	vec := []float64{3, 4}
	got := NormalizeInto(nil, vec)
	if math.Abs(got[0]-0.6) > 1e-12 || math.Abs(got[1]-0.8) > 1e-12 {
		t.Fatalf("NormalizeInto = %v", got)
	}
	if vec[0] != 3 || vec[1] != 4 {
		t.Fatal("input mutated")
	}
	// Buffer reuse: a second call must reuse the same backing array.
	buf := make([]float64, 4)
	out := NormalizeInto(buf, vec)
	if &out[0] != &buf[0] {
		t.Fatal("sufficient-capacity buffer was not reused")
	}
	if len(out) != 2 {
		t.Fatalf("result length %d", len(out))
	}
	// Zero vector passes through unchanged.
	z := NormalizeInto(nil, []float64{0, 0, 0})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("zero vector normalised to %v", z)
		}
	}
	// Normalize keeps its allocating contract.
	if got := Normalize(vec); math.Abs(got[0]-0.6) > 1e-12 {
		t.Fatalf("Normalize = %v", got)
	}
}

func BenchmarkScoreBatch(b *testing.B) {
	const n, dim, batch = 2048, 16, 64
	for _, workers := range []int{1, 0} {
		name := "serial"
		if workers == 0 {
			name = "parallel"
		}
		b.Run(name, func(b *testing.B) {
			labels := make([]int, n)
			for i := range labels {
				labels[i] = i % 10
			}
			ix, err := hnsw.New(hnsw.DefaultConfig())
			if err != nil {
				b.Fatal(err)
			}
			g, err := New(DefaultConfig(), labels, ix)
			if err != nil {
				b.Fatal(err)
			}
			g.SetWorkers(workers)
			rng := xrand.New(4)
			// Pre-populate the index so searches do real work.
			for id := 0; id < n; id++ {
				if err := g.Update(id, clusteredEmbedding(id, dim, rng)); err != nil {
					b.Fatal(err)
				}
			}
			ids := make([]int, batch)
			embs := make([][]float64, batch)
			for i := range ids {
				ids[i] = i
				embs[i] = clusteredEmbedding(i, dim, rng)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := g.ScoreBatch(ids, embs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
