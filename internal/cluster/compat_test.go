// Compat tests pinning the deprecated static-list constructor to the new
// functional-options API: same placement, same defaults, same behaviour.
// NewClient keeps working until these tests say otherwise (the same
// contract spidercache_compat_test.go holds over Train vs TrainWith).
package cluster

import (
	"strings"
	"testing"
	"time"

	"spidercache/internal/kvserver"
	"spidercache/internal/leakcheck"
)

func TestNewMatchesNewClientPlacement(t *testing.T) {
	leakcheck.Check(t)
	a, b := startNode(t), startNode(t)
	nodes := []string{a.Addr(), b.Addr()}

	oldC, err := NewClient(nodes, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer oldC.Close()
	newC, err := New(WithSeeds(nodes...))
	if err != nil {
		t.Fatal(err)
	}
	defer newC.Close()

	for id := 0; id < 256; id++ {
		oldOwners := oldC.Ring().Owners(id, 2)
		newOwners := newC.Ring().Owners(id, 2)
		if strings.Join(oldOwners, ",") != strings.Join(newOwners, ",") {
			t.Fatalf("id %d: NewClient places on %v, New places on %v", id, oldOwners, newOwners)
		}
	}
}

func TestNewClientStillServes(t *testing.T) {
	leakcheck.Check(t)
	a, b := startNode(t), startNode(t)
	c, err := NewClient([]string{a.Addr(), b.Addr()}, testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for id := 0; id < 32; id++ {
		if err := c.Set(id, []byte{byte(id)}); err != nil {
			t.Fatalf("Set(%d): %v", id, err)
		}
		v, found, err := c.Get(id)
		if err != nil || !found || v[0] != byte(id) {
			t.Fatalf("Get(%d) = %v, %v, %v", id, v, found, err)
		}
	}
	// The static client must not run discovery: its node set is fixed.
	if got := c.Nodes(); len(got) != 2 {
		t.Fatalf("static client nodes = %v", got)
	}
}

func TestNewOptionValidation(t *testing.T) {
	leakcheck.Check(t)
	cases := map[string][]Option{
		"no seeds":           {},
		"empty WithSeeds":    {WithSeeds()},
		"bad replicas":       {WithSeeds("x:1"), WithReplicas(0)},
		"bad discovery":      {WithSeeds("x:1"), WithDiscovery(0)},
		"bad pool size":      {WithSeeds("x:1"), WithPoolSize(0)},
		"bad ring points":    {WithSeeds("x:1"), WithRingPoints(-1)},
		"duplicate seeds":    {WithSeeds("x:1", "x:1")},
		"first error sticks": {WithReplicas(-1), WithSeeds()},
	}
	for name, opts := range cases {
		if c, err := New(opts...); err == nil {
			//lint:ignore errcheck the test is about construction, not teardown
			c.Close()
			t.Fatalf("New(%s) did not error", name)
		}
	}
}

func TestNewAppliesOptions(t *testing.T) {
	leakcheck.Check(t)
	srv := startNode(t)
	c, err := New(
		WithSeeds(srv.Addr()),
		WithReplicas(3),
		WithPoolSize(5),
		WithRingPoints(64),
		WithDial(kvserver.DialOptions{DialTimeout: time.Second}),
		WithRetry(kvserver.RetryOptions{Attempts: 4}),
		WithBreaker(kvserver.BreakerOptions{Window: 16}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.opts.Replicas != 3 || c.opts.PoolSize != 5 || c.opts.RingPoints != 64 ||
		c.opts.Dial.DialTimeout != time.Second || c.opts.Retry.Attempts != 4 ||
		c.opts.Breaker.Window != 16 {
		t.Fatalf("options not applied: %+v", c.opts)
	}
}
