package cluster

import (
	"time"

	"spidercache/internal/kvserver"
)

// discoverLoop polls cluster membership until Close. It runs one round
// immediately so a client seeded with a single node learns the full
// topology before the first tick, then settles into the interval.
func (c *Client) discoverLoop() {
	defer c.discoveryWG.Done()
	ticker := time.NewTicker(c.discoverEvery)
	defer ticker.Stop()
	for {
		c.discoverOnce()
		select {
		case <-c.discoveryDone:
			return
		case <-ticker.C:
		}
	}
}

// discoverOnce asks every current node for its member list (the NODES
// gossip verb) and reconciles the client's node set with the union of the
// non-empty replies.
//
// Only non-empty replies count: a plain kvserver with no cluster hooks
// answers NODES with an empty list, and treating that as "the cluster has
// no members" would evict every node the first time the client polls a
// standalone server. And if no node answers at all, the round is dropped —
// a fully unreachable cluster is a reason to keep trying the nodes we
// know, not to forget them.
func (c *Client) discoverOnce() {
	c.mu.RLock()
	known := append([]string(nil), c.nodes...)
	pools := make([]*kvserver.Pool, len(known))
	for i, n := range known {
		pools[i] = c.pools[n]
	}
	c.mu.RUnlock()

	union := make(map[string]struct{})
	heard := false
	for _, pool := range pools {
		var members []string
		err := pool.Do(func(kc *kvserver.Client) error {
			var e error
			members, e = kc.Nodes()
			return e
		})
		if err != nil || len(members) == 0 {
			continue
		}
		heard = true
		for _, m := range members {
			union[m] = struct{}{}
		}
	}
	if !heard {
		return
	}
	for m := range union {
		if hasNode(known, m) {
			continue
		}
		if err := c.addNode(m); err == nil {
			c.tel.added.Inc()
		}
	}
	for _, n := range known {
		if _, ok := union[n]; !ok {
			c.removeNode(n)
			c.tel.removed.Inc()
		}
	}
}

// hasNode reports whether node is in the sorted snapshot.
func hasNode(nodes []string, node string) bool {
	for _, n := range nodes {
		if n == node {
			return true
		}
	}
	return false
}
