package cluster

import (
	"bytes"
	"fmt"
	"testing"

	"spidercache/internal/kvserver"
)

// startCluster spins up n kvservers on loopback and returns the sharded
// client over them.
func startCluster(t *testing.T, n int) (*ShardedCache, []*kvserver.Server) {
	t.Helper()
	nodes := make(map[string]string, n)
	servers := make([]*kvserver.Server, 0, n)
	for i := 0; i < n; i++ {
		srv, err := kvserver.Serve("127.0.0.1:0", 1024)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		nodes[fmt.Sprintf("w%d", i)] = srv.Addr()
		servers = append(servers, srv)
	}
	sc, err := NewShardedCache(nodes)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sc.Close() })
	return sc, servers
}

func TestShardedValidation(t *testing.T) {
	if _, err := NewShardedCache(nil); err == nil {
		t.Fatal("empty node map accepted")
	}
}

func TestShardedRoundtrip(t *testing.T) {
	sc, _ := startCluster(t, 3)
	for id := 0; id < 100; id++ {
		payload := []byte(fmt.Sprintf("payload-%d", id))
		if err := sc.Set(id, payload); err != nil {
			t.Fatal(err)
		}
		got, ok, err := sc.Get(id)
		if err != nil || !ok || !bytes.Equal(got, payload) {
			t.Fatalf("id %d: ok=%v err=%v got=%q", id, ok, err, got)
		}
	}
	if _, ok, _ := sc.Get(99999); ok {
		t.Fatal("absent sample found")
	}
}

func TestShardedSpreadsLoad(t *testing.T) {
	sc, servers := startCluster(t, 3)
	for id := 0; id < 300; id++ {
		if err := sc.Set(id, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	populated := 0
	total := 0
	for _, srv := range servers {
		items, _, _ := srv.Stats()
		total += items
		if items > 0 {
			populated++
		}
		if items > 250 {
			t.Fatalf("one shard holds %d/300 items", items)
		}
	}
	if populated != 3 {
		t.Fatalf("only %d/3 shards populated", populated)
	}
	if total != 300 {
		t.Fatalf("items across shards %d, want 300", total)
	}
}

func TestShardedRoutingIsStable(t *testing.T) {
	sc, servers := startCluster(t, 3)
	_ = servers
	for id := 0; id < 50; id++ {
		if sc.Owner(id) != sc.Owner(id) {
			t.Fatal("routing unstable")
		}
	}
	// Routing must agree with a freshly built ring over the same nodes.
	ring, _ := NewRing(128)
	ring.Add("w0")
	ring.Add("w1")
	ring.Add("w2")
	for id := 0; id < 200; id++ {
		if sc.Owner(id) != ring.Owner(id) {
			t.Fatalf("id %d routed to %s, ring says %s", id, sc.Owner(id), ring.Owner(id))
		}
	}
}
