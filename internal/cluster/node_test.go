package cluster

import (
	"fmt"
	"testing"
	"time"

	"spidercache/internal/kvserver"
	"spidercache/internal/leakcheck"
)

// startTestNode boots a daemon with fast gossip so membership converges
// within test-friendly deadlines.
func startTestNode(t *testing.T, seeds ...string) *Node {
	t.Helper()
	cfg := kvserver.DefaultConfig()
	cfg.Capacity = 1 << 12
	cfg.PoolSize = 2
	cfg.Timeout = 2 * time.Second
	cfg.Retries = 2
	n, err := StartNode(NodeOptions{
		Listen:      "127.0.0.1:0",
		Seeds:       seeds,
		Replicas:    2,
		Store:       cfg,
		GossipEvery: 25 * time.Millisecond,
		DeadAfter:   3,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore errcheck test cleanup
		n.Close()
	})
	return n
}

// waitMembers polls until every node's member list has exactly want
// entries, failing the test at the deadline.
func waitMembers(t *testing.T, want int, nodes ...*Node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		converged := true
		for _, n := range nodes {
			if len(n.Members()) != want {
				converged = false
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			lists := make([][]string, len(nodes))
			for i, n := range nodes {
				lists[i] = n.Members()
			}
			t.Fatalf("membership did not converge to %d nodes: %v", want, lists)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// testClusterClient dials the cluster through one seed with discovery on.
func testClusterClient(t *testing.T, seed string) *Client {
	t.Helper()
	c, err := New(
		WithSeeds(seed),
		WithReplicas(2),
		WithPoolSize(2),
		WithDial(kvserver.DialOptions{DialTimeout: 2 * time.Second, ReadTimeout: 2 * time.Second, WriteTimeout: 2 * time.Second}),
		WithRetry(kvserver.RetryOptions{Attempts: 2}),
		WithBreaker(kvserver.BreakerOptions{}),
		WithDiscovery(25*time.Millisecond),
	)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore errcheck test cleanup
		c.Close()
	})
	return c
}

func TestNodeGossipMembershipConverges(t *testing.T) {
	leakcheck.Check(t)
	n1 := startTestNode(t)
	n2 := startTestNode(t, n1.Addr())
	n3 := startTestNode(t, n1.Addr()) // joins via n1; must still learn n2
	waitMembers(t, 3, n1, n2, n3)

	// A discovery client seeded with only n1 learns the full topology.
	c := testClusterClient(t, n1.Addr())
	deadline := time.Now().Add(10 * time.Second)
	for len(c.Nodes()) != 3 {
		if time.Now().After(deadline) {
			t.Fatalf("client discovered %v, want 3 nodes", c.Nodes())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReplicatedSetReadableFromEveryOwner(t *testing.T) {
	leakcheck.Check(t)
	n1 := startTestNode(t)
	n2 := startTestNode(t, n1.Addr())
	n3 := startTestNode(t, n1.Addr())
	waitMembers(t, 3, n1, n2, n3)

	byAddr := map[string]*Node{n1.Addr(): n1, n2.Addr(): n2, n3.Addr(): n3}
	c := testClusterClient(t, n1.Addr())

	for id := 0; id < 64; id++ {
		payload := []byte(fmt.Sprintf("v%d", id))
		if err := c.Set(id, payload); err != nil {
			t.Fatalf("Set(%d): %v", id, err)
		}
		owners := n1.Ring().Owners(id, 2)
		if len(owners) != 2 {
			t.Fatalf("Owners(%d) = %v, want 2", id, owners)
		}
		// The STORED reply means the fan-out already happened: the value
		// must be on every owner's local store right now, no polling.
		for _, owner := range owners {
			node, ok := byAddr[owner]
			if !ok {
				t.Fatalf("owner %q is not a known node", owner)
			}
			if _, ok := node.Server().Peek(key(id)); !ok {
				t.Fatalf("key %d missing from owner %s immediately after STORED", id, owner)
			}
		}
	}
}

func TestJoinMigrationKeepsEveryKeyReadable(t *testing.T) {
	leakcheck.Check(t)
	const keys = 200
	n1 := startTestNode(t)
	n2 := startTestNode(t, n1.Addr())
	waitMembers(t, 2, n1, n2)

	c := testClusterClient(t, n1.Addr())
	payload := []byte("migrate-me")
	for id := 0; id < keys; id++ {
		if err := c.Set(id, payload); err != nil {
			t.Fatalf("Set(%d): %v", id, err)
		}
	}

	// readAll asserts every key is readable — no NOT_FOUND window allowed.
	readAll := func(phase string) {
		for id := 0; id < keys; id++ {
			v, found, err := c.Get(id)
			if err != nil {
				t.Fatalf("%s: Get(%d) errored: %v", phase, id, err)
			}
			if !found {
				t.Fatalf("%s: Get(%d) returned NOT_FOUND — migration opened a miss window", phase, id)
			}
			if string(v) != string(payload) {
				t.Fatalf("%s: Get(%d) = %q", phase, id, v)
			}
		}
	}
	readAll("before join")

	// Third node joins; keep reading the whole keyspace while gossip,
	// client discovery and the rebalance all race the reads.
	n3 := startTestNode(t, n1.Addr())
	deadline := time.Now().Add(10 * time.Second)
	for {
		readAll("during join")
		if len(n1.Members()) == 3 && len(n2.Members()) == 3 && len(n3.Members()) == 3 && len(c.Nodes()) == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not converge: %v %v %v / client %v",
				n1.Members(), n2.Members(), n3.Members(), c.Nodes())
		}
	}
	// Let at least one full rebalance land, then verify the new owner set
	// actually serves every key (reads keep passing after the old copies
	// would stop mattering).
	time.Sleep(100 * time.Millisecond)
	readAll("after join")
}

func TestNodeDeathExpelledAndKeysSurvive(t *testing.T) {
	leakcheck.Check(t)
	const keys = 200
	n1 := startTestNode(t)
	n2 := startTestNode(t, n1.Addr())
	n3 := startTestNode(t, n1.Addr())
	waitMembers(t, 3, n1, n2, n3)

	c := testClusterClient(t, n1.Addr())
	payload := []byte("survive-me")
	for id := 0; id < keys; id++ {
		if err := c.Set(id, payload); err != nil {
			t.Fatalf("Set(%d): %v", id, err)
		}
	}

	// Kill one node. Replicas=2 means every key has a surviving owner.
	if err := n3.Close(); err != nil {
		t.Fatalf("closing n3: %v", err)
	}
	waitMembers(t, 2, n1, n2)

	deadline := time.Now().Add(10 * time.Second)
	for len(c.Nodes()) != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("client still routes to %v after node death", c.Nodes())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for id := 0; id < keys; id++ {
		v, found, err := c.Get(id)
		if err != nil {
			t.Fatalf("Get(%d) after node death errored: %v", id, err)
		}
		if !found || string(v) != string(payload) {
			t.Fatalf("Get(%d) after node death = %q, found=%v — replication lost the key", id, v, found)
		}
	}
}
