// Package cluster provides a consistent-hash shard ring for spreading a
// sample cache across multiple workers — the deployment shape of the
// cluster-wide caches (Quiver, Hoard, FanStore) the paper's related-work
// section positions SpiderCache against, and the natural way to scale its
// memory tier beyond one node.
//
// Keys are sample IDs; nodes are placed on the ring with multiple virtual
// points so load stays balanced, and removing a node only remaps the keys it
// owned (the consistent-hashing property the tests pin down).
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring. It is safe for concurrent use.
type Ring struct {
	mu       sync.RWMutex
	replicas int
	points   []ringPoint // sorted by hash
	nodes    map[string]struct{}
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing creates a ring placing each node at `replicas` virtual points
// (typical values 64-512; higher = smoother balance, larger ring).
func NewRing(replicas int) (*Ring, error) {
	if replicas < 1 {
		return nil, fmt.Errorf("cluster: replicas must be >= 1, got %d", replicas)
	}
	return &Ring{replicas: replicas, nodes: make(map[string]struct{})}, nil
}

// hash64 is FNV-1a over the string, mixed through SplitMix64's finaliser for
// better ring dispersion.
func hash64(s string) uint64 {
	var h uint64 = 0xcbf29ce484222325
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 0x100000001b3
	}
	h += 0x9e3779b97f4a7c15
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// Add places node on the ring; re-adding is a no-op.
func (r *Ring) Add(node string) error {
	if node == "" {
		return fmt.Errorf("cluster: empty node name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; ok {
		return nil
	}
	r.nodes[node] = struct{}{}
	for v := 0; v < r.replicas; v++ {
		r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", node, v)), node: node})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return nil
}

// Remove takes node off the ring; removing an absent node is a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.nodes[node]; !ok {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the current node set (sorted).
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Owner returns the node owning sample id, or "" when the ring is empty.
// It is OwnerKey over the id's wire key, so id- and key-based routing can
// never disagree.
func (r *Ring) Owner(id int) string { return r.OwnerKey(key(id)) }

// OwnerKey returns the node owning the given wire key, or "" when the
// ring is empty. Daemons route replication and migration by key string
// (they see keys, not sample IDs); clients route by id through Owner.
func (r *Ring) OwnerKey(k string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	h := hash64(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].node
}

// Owners returns the distinct nodes owning the first `n` replicas-worth of
// successors for id — used for replicated placement. Fewer than n nodes are
// returned when the ring is smaller than n.
func (r *Ring) Owners(id, n int) []string { return r.OwnersKey(key(id), n) }

// OwnersKey is Owners for a wire key (see OwnerKey).
func (r *Ring) OwnersKey(k string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n < 1 {
		return nil
	}
	h := hash64(k)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]struct{}, n)
	out := make([]string, 0, n)
	for steps := 0; steps < len(r.points) && len(out) < n; steps++ {
		p := r.points[(i+steps)%len(r.points)]
		if _, dup := seen[p.node]; dup {
			continue
		}
		seen[p.node] = struct{}{}
		out = append(out, p.node)
	}
	return out
}
