package cluster

import (
	"fmt"
	"time"

	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
)

// Option configures a cluster client built with New. Options mirror the
// trainer's TrainWith pattern: each is a small function over the settings
// struct, they compose left to right, and invalid combinations surface as
// a single error from New rather than a panic mid-construction.
type Option func(*clientSettings)

// clientSettings is the accumulator New folds Options into.
type clientSettings struct {
	seeds         []string
	discoverEvery time.Duration
	opts          ClientOptions
	err           error
}

func (s *clientSettings) fail(err error) {
	if s.err == nil {
		s.err = err
	}
}

// WithSeeds sets the initial node addresses. At least one seed is
// required; with discovery enabled the rest of the topology is learned
// from the seeds' gossip, so one live seed is enough to find the cluster.
func WithSeeds(addrs ...string) Option {
	return func(s *clientSettings) {
		if len(addrs) == 0 {
			s.fail(fmt.Errorf("cluster: WithSeeds needs at least one address"))
			return
		}
		s.seeds = append([]string(nil), addrs...)
	}
}

// WithReplicas sets how many distinct ring owners serve each key — the
// failover width and, against spiderkv daemons, the replication factor
// the client expects to read through (default 2).
func WithReplicas(n int) Option {
	return func(s *clientSettings) {
		if n < 1 {
			s.fail(fmt.Errorf("cluster: WithReplicas needs n >= 1, got %d", n))
			return
		}
		s.opts.Replicas = n
	}
}

// WithBreaker sets the per-node circuit breaker template. Each node gets
// its own breaker instance cloned from it.
func WithBreaker(b kvserver.BreakerOptions) Option {
	return func(s *clientSettings) { s.opts.Breaker = &b }
}

// WithRetry sets the per-node retry policy (see kvserver.RetryOptions).
func WithRetry(r kvserver.RetryOptions) Option {
	return func(s *clientSettings) { s.opts.Retry = r }
}

// WithDiscovery enables gossip-driven membership: the client polls the
// cluster's NODES verb every interval and adds/removes nodes as the
// daemons' member lists change. Without this option the node set is
// static, exactly like the deprecated NewClient.
func WithDiscovery(every time.Duration) Option {
	return func(s *clientSettings) {
		if every <= 0 {
			s.fail(fmt.Errorf("cluster: WithDiscovery needs a positive interval, got %v", every))
			return
		}
		s.discoverEvery = every
	}
}

// WithPoolSize sets the per-node connection pool size (default 2).
func WithPoolSize(n int) Option {
	return func(s *clientSettings) {
		if n < 1 {
			s.fail(fmt.Errorf("cluster: WithPoolSize needs n >= 1, got %d", n))
			return
		}
		s.opts.PoolSize = n
	}
}

// WithDial sets dial/read/write deadlines for every pooled connection.
func WithDial(d kvserver.DialOptions) Option {
	return func(s *clientSettings) { s.opts.Dial = d }
}

// WithRingPoints sets the virtual points per node on the placement ring
// (default 128; higher = smoother balance, larger ring).
func WithRingPoints(n int) Option {
	return func(s *clientSettings) {
		if n < 1 {
			s.fail(fmt.Errorf("cluster: WithRingPoints needs n >= 1, got %d", n))
			return
		}
		s.opts.RingPoints = n
	}
}

// WithMetrics routes the client's (and its pools') telemetry into reg.
func WithMetrics(reg *telemetry.Registry) Option {
	return func(s *clientSettings) { s.opts.Registry = reg }
}

// New builds a cluster client from functional options. The minimal call is
//
//	c, err := cluster.New(cluster.WithSeeds("host:7461"))
//
// which behaves like the deprecated NewClient over a one-node list; add
// WithDiscovery to track live membership, WithReplicas / WithBreaker /
// WithRetry to tune placement and resilience. Construction never dials.
func New(opts ...Option) (*Client, error) {
	var s clientSettings
	for _, opt := range opts {
		opt(&s)
	}
	if s.err != nil {
		return nil, s.err
	}
	if len(s.seeds) == 0 {
		return nil, fmt.Errorf("cluster: New requires WithSeeds")
	}
	return newClient(s.seeds, s.opts, s.discoverEvery)
}
