package cluster

import (
	"errors"
	"testing"
	"time"

	"spidercache/internal/kvserver"
	"spidercache/internal/leakcheck"
	"spidercache/internal/telemetry"
)

func startNode(t *testing.T) *kvserver.Server {
	t.Helper()
	srv, err := kvserver.Serve("127.0.0.1:0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore errcheck test cleanup
		srv.Close()
	})
	return srv
}

func testOptions(reg *telemetry.Registry) ClientOptions {
	return ClientOptions{
		PoolSize: 1,
		Dial:     kvserver.DialOptions{DialTimeout: 200 * time.Millisecond},
		Breaker: &kvserver.BreakerOptions{
			Window:           8,
			FailureThreshold: 0.5,
			MinSamples:       2,
			OpenFor:          time.Minute, // stays open for the whole test
		},
		Replicas: 2,
		Registry: reg,
	}
}

func TestClientBasicOps(t *testing.T) {
	leakcheck.Check(t)
	a, b := startNode(t), startNode(t)
	c, err := NewClient([]string{a.Addr(), b.Addr()}, testOptions(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for id := 0; id < 64; id++ {
		payload := []byte{byte(id), byte(id >> 8), 0xCC}
		if err := c.Set(id, payload); err != nil {
			t.Fatalf("Set(%d): %v", id, err)
		}
		got, found, err := c.Get(id)
		if err != nil || !found {
			t.Fatalf("Get(%d): found=%v err=%v", id, found, err)
		}
		if len(got) != 3 || got[0] != byte(id) {
			t.Fatalf("Get(%d) returned wrong payload %v", id, got)
		}
	}
	if _, found, err := c.Get(100000); err != nil || found {
		t.Fatalf("Get(absent): found=%v err=%v, want clean miss", found, err)
	}

	// Keys actually spread over both nodes.
	itemsA, _, _ := a.Stats()
	itemsB, _, _ := b.Stats()
	if itemsA == 0 || itemsB == 0 {
		t.Fatalf("placement did not spread: node items %d/%d", itemsA, itemsB)
	}
	for node, h := range c.Health() {
		if h.Breaker != kvserver.BreakerClosed {
			t.Fatalf("healthy node %s reports breaker %v", node, h.Breaker)
		}
	}
}

func TestClientFailsOverAroundDeadNode(t *testing.T) {
	leakcheck.Check(t)
	a, b := startNode(t), startNode(t)
	reg := telemetry.NewRegistry()
	c, err := NewClient([]string{a.Addr(), b.Addr()}, testOptions(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Seed values while both nodes are up.
	const n = 32
	for id := 0; id < n; id++ {
		if err := c.Set(id, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}

	// Kill node b. Every op must still succeed: ids owned by b fail over
	// to a (reads of b-owned values miss — the replica never had them —
	// but reads must not error).
	//lint:ignore errcheck shutting the node down is the point
	b.Close()
	for id := 0; id < n; id++ {
		if err := c.Set(id+n, []byte("w")); err != nil {
			t.Fatalf("Set(%d) with one node down: %v", id+n, err)
		}
		if _, _, err := c.Get(id + n); err != nil {
			t.Fatalf("Get(%d) with one node down: %v", id+n, err)
		}
	}

	// The dead node's breaker opened and failovers were counted.
	health := c.Health()
	if health[b.Addr()].Breaker != kvserver.BreakerOpen {
		t.Fatalf("dead node breaker = %v, want open", health[b.Addr()].Breaker)
	}
	if health[a.Addr()].Breaker != kvserver.BreakerClosed {
		t.Fatalf("live node breaker = %v, want closed", health[a.Addr()].Breaker)
	}
	if v := reg.Counter("kv_failover_total", telemetry.Labels{"result": "rerouted"}).Value(); v == 0 {
		t.Fatal("kv_failover_total{result=rerouted} = 0, want > 0")
	}
	if v := reg.Counter("kv_failover_total", telemetry.Labels{"result": "exhausted"}).Value(); v != 0 {
		t.Fatalf("kv_failover_total{result=exhausted} = %d, want 0 (one replica stayed up)", v)
	}
}

func TestClientAllNodesDown(t *testing.T) {
	leakcheck.Check(t)
	reg := telemetry.NewRegistry()
	// Ports from the TCP reserved range: nothing listens there.
	c, err := NewClient([]string{"127.0.0.1:1", "127.0.0.1:2"}, testOptions(reg))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Set(1, []byte("v")); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Set with cluster down: %v, want ErrNoNodes", err)
	}
	if _, _, err := c.Get(1); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Get with cluster down: %v, want ErrNoNodes", err)
	}
	if v := reg.Counter("kv_failover_total", telemetry.Labels{"result": "exhausted"}).Value(); v == 0 {
		t.Fatal("kv_failover_total{result=exhausted} = 0, want > 0")
	}

	// Once breakers open, ops keep failing fast (ErrNoNodes, not a hang).
	for i := 0; i < 8; i++ {
		//lint:ignore errcheck failures are the point
		c.Set(i, []byte("v"))
	}
	start := time.Now()
	if _, _, err := c.Get(2); !errors.Is(err, ErrNoNodes) {
		t.Fatalf("Get after breakers opened: %v", err)
	}
	if d := time.Since(start); d > 100*time.Millisecond {
		t.Fatalf("open-breaker Get took %v, want fast-fail", d)
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient(nil, ClientOptions{}); err == nil {
		t.Fatal("NewClient(nil) succeeded")
	}
	if _, err := NewClient([]string{"n1", "n1"}, ClientOptions{}); err == nil {
		t.Fatal("NewClient with duplicate nodes succeeded")
	}
}
