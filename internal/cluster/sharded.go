package cluster

import (
	"fmt"
	"strconv"
	"sync"

	"spidercache/internal/kvserver"
)

// ShardedCache routes sample payloads across multiple kvserver nodes by
// consistent hashing — a minimal Quiver/Hoard-style cluster cache. One
// connection per node is maintained lazily; the client is safe for
// concurrent use (per-node connections are mutex-guarded).
type ShardedCache struct {
	ring *Ring

	mu    sync.Mutex
	addrs map[string]string // node name -> dial address
	conns map[string]*kvserver.Client
}

// NewShardedCache builds a sharded cache over the given nodes
// (name -> address). The ring uses 128 virtual points per node.
func NewShardedCache(nodes map[string]string) (*ShardedCache, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: no nodes")
	}
	ring, err := NewRing(128)
	if err != nil {
		return nil, err
	}
	sc := &ShardedCache{
		ring:  ring,
		addrs: make(map[string]string, len(nodes)),
		conns: make(map[string]*kvserver.Client),
	}
	for name, addr := range nodes {
		if err := ring.Add(name); err != nil {
			return nil, err
		}
		sc.addrs[name] = addr
	}
	return sc, nil
}

// Owner exposes the routing decision for tests and diagnostics.
func (sc *ShardedCache) Owner(id int) string { return sc.ring.Owner(id) }

func (sc *ShardedCache) client(node string) (*kvserver.Client, error) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if c, ok := sc.conns[node]; ok {
		return c, nil
	}
	addr, ok := sc.addrs[node]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", node)
	}
	c, err := kvserver.Dial(addr)
	if err != nil {
		return nil, err
	}
	sc.conns[node] = c
	return c, nil
}

func key(id int) string { return "sample:" + strconv.Itoa(id) }

// Set stores the payload for sample id on its owning shard.
func (sc *ShardedCache) Set(id int, payload []byte) error {
	node := sc.ring.Owner(id)
	if node == "" {
		return fmt.Errorf("cluster: empty ring")
	}
	c, err := sc.client(node)
	if err != nil {
		return err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return c.Set(key(id), payload)
}

// Get fetches the payload for sample id from its owning shard.
func (sc *ShardedCache) Get(id int) ([]byte, bool, error) {
	node := sc.ring.Owner(id)
	if node == "" {
		return nil, false, fmt.Errorf("cluster: empty ring")
	}
	c, err := sc.client(node)
	if err != nil {
		return nil, false, err
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return c.Get(key(id))
}

// Close shuts every node connection.
func (sc *ShardedCache) Close() error {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	var first error
	for node, c := range sc.conns {
		if err := c.Close(); err != nil && first == nil {
			first = err
		}
		delete(sc.conns, node)
	}
	return first
}
