package cluster_test

import (
	"testing"
	"time"

	"spidercache/internal/cluster"
	"spidercache/internal/dataset"
	"spidercache/internal/kvserver"
	"spidercache/internal/nn"
	"spidercache/internal/policy"
	"spidercache/internal/telemetry"
	"spidercache/internal/trainer"
)

// Client satisfies the trainer's remote cache contract.
var _ trainer.RemoteCache = (*cluster.Client)(nil)

func startNode(t *testing.T) *kvserver.Server {
	t.Helper()
	srv, err := kvserver.Serve("127.0.0.1:0", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore errcheck test cleanup
		srv.Close()
	})
	return srv
}

func trainOnce(t *testing.T, rc trainer.RemoteCache, reg *telemetry.Registry) {
	t.Helper()
	ds, err := dataset.New(dataset.Config{
		Name: "tiny", Classes: 4, TrainSize: 200, TestSize: 100, Dim: 8,
		ClusterStd: 0.8, BoundaryFrac: 0.1, IsolatedFrac: 0.02, HardFrac: 0.05,
		PayloadMean: 4096, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := policy.NewBaselineLRU(ds.Len(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	cfg := trainer.Config{
		Dataset: ds, Model: nn.ResNet18, Epochs: 2, BatchSize: 64,
		Workers: 1, PipelineIS: true, Seed: 7,
		RemoteCache: rc, Metrics: reg,
	}
	if _, err := trainer.Run(cfg, pol); err != nil {
		t.Fatalf("training run failed: %v", err)
	}
}

// TestTrainerThroughCluster runs a real training loop with the ring client
// as its remote cache tier: epoch 1 populates the kvserver nodes, epoch 2
// hits them.
func TestTrainerThroughCluster(t *testing.T) {
	a, b := startNode(t), startNode(t)
	reg := telemetry.NewRegistry()
	c, err := cluster.NewClient([]string{a.Addr(), b.Addr()}, cluster.ClientOptions{Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	trainOnce(t, c, reg)
	if hits := reg.Counter("remote_cache_total", telemetry.Labels{"result": "hit"}).Value(); hits == 0 {
		t.Fatal("remote_cache_total{result=hit} = 0 after a warm epoch")
	}
	itemsA, _, _ := a.Stats()
	itemsB, _, _ := b.Stats()
	if itemsA == 0 || itemsB == 0 {
		t.Fatalf("training payloads did not spread: node items %d/%d", itemsA, itemsB)
	}
}

// TestTrainerDegradesWithClusterDown: with every node unreachable the run
// must complete from backing storage, counting errors instead of raising
// them.
func TestTrainerDegradesWithClusterDown(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, err := cluster.NewClient([]string{"127.0.0.1:1", "127.0.0.1:2"}, cluster.ClientOptions{
		Dial: kvserver.DialOptions{DialTimeout: 100 * time.Millisecond},
		Breaker: &kvserver.BreakerOptions{
			Window: 8, FailureThreshold: 0.5, MinSamples: 2, OpenFor: time.Minute,
		},
		Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	trainOnce(t, c, reg)
	if errs := reg.Counter("remote_cache_total", telemetry.Labels{"result": "error"}).Value(); errs == 0 {
		t.Fatal("remote_cache_total{result=error} = 0 with the cluster down")
	}
	for node, h := range c.Health() {
		if h.Breaker != kvserver.BreakerOpen {
			t.Fatalf("unreachable node %s breaker = %v, want open", node, h.Breaker)
		}
	}
}
