package cluster

import (
	"fmt"
	"testing"
)

func ringWith(t *testing.T, nodes ...string) *Ring {
	t.Helper()
	r, err := NewRing(128)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		if err := r.Add(n); err != nil {
			t.Fatal(err)
		}
	}
	return r
}

func TestNewRingValidation(t *testing.T) {
	if _, err := NewRing(0); err == nil {
		t.Fatal("zero replicas accepted")
	}
	r, _ := NewRing(4)
	if err := r.Add(""); err == nil {
		t.Fatal("empty node accepted")
	}
}

func TestEmptyRing(t *testing.T) {
	r, _ := NewRing(8)
	if got := r.Owner(1); got != "" {
		t.Fatalf("empty ring owner %q", got)
	}
	if got := r.Owners(1, 2); got != nil {
		t.Fatalf("empty ring owners %v", got)
	}
}

func TestOwnerDeterministic(t *testing.T) {
	a := ringWith(t, "w1", "w2", "w3")
	b := ringWith(t, "w3", "w1", "w2") // insertion order must not matter
	for id := 0; id < 500; id++ {
		if a.Owner(id) != b.Owner(id) {
			t.Fatalf("id %d: %s vs %s", id, a.Owner(id), b.Owner(id))
		}
	}
}

func TestBalance(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3", "w4")
	counts := map[string]int{}
	const keys = 20000
	for id := 0; id < keys; id++ {
		counts[r.Owner(id)]++
	}
	want := keys / 4
	for node, c := range counts {
		if c < want/2 || c > want*2 {
			t.Errorf("node %s owns %d keys, want ~%d", node, c, want)
		}
	}
}

func TestConsistencyOnRemoval(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3", "w4")
	before := make([]string, 10000)
	for id := range before {
		before[id] = r.Owner(id)
	}
	r.Remove("w3")
	moved := 0
	for id, prev := range before {
		now := r.Owner(id)
		if now == "w3" {
			t.Fatalf("removed node still owns id %d", id)
		}
		if prev != "w3" && now != prev {
			moved++
		}
	}
	// Consistent hashing: only keys owned by the removed node remap.
	if moved != 0 {
		t.Fatalf("%d keys moved between surviving nodes", moved)
	}
}

func TestConsistencyOnAddition(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3")
	before := make([]string, 10000)
	for id := range before {
		before[id] = r.Owner(id)
	}
	r.Add("w4")
	movedToNew, movedBetweenOld := 0, 0
	for id, prev := range before {
		now := r.Owner(id)
		if now == prev {
			continue
		}
		if now == "w4" {
			movedToNew++
		} else {
			movedBetweenOld++
		}
	}
	if movedBetweenOld != 0 {
		t.Fatalf("%d keys moved between pre-existing nodes", movedBetweenOld)
	}
	// The new node should take roughly a quarter of the keys.
	if movedToNew < len(before)/8 || movedToNew > len(before)/2 {
		t.Fatalf("new node took %d/%d keys", movedToNew, len(before))
	}
}

func TestAddIdempotent(t *testing.T) {
	r := ringWith(t, "w1")
	if err := r.Add("w1"); err != nil {
		t.Fatal(err)
	}
	if got := len(r.Nodes()); got != 1 {
		t.Fatalf("nodes %d", got)
	}
	r.Remove("absent") // no-op
}

func TestOwnersReplication(t *testing.T) {
	r := ringWith(t, "w1", "w2", "w3")
	for id := 0; id < 200; id++ {
		owners := r.Owners(id, 2)
		if len(owners) != 2 {
			t.Fatalf("id %d: owners %v", id, owners)
		}
		if owners[0] == owners[1] {
			t.Fatalf("id %d: duplicate owners %v", id, owners)
		}
		if owners[0] != r.Owner(id) {
			t.Fatalf("id %d: primary mismatch %v vs %s", id, owners, r.Owner(id))
		}
	}
	// Requesting more replicas than nodes returns every node once.
	if got := r.Owners(7, 10); len(got) != 3 {
		t.Fatalf("over-replication returned %v", got)
	}
}

func TestNodesSorted(t *testing.T) {
	r := ringWith(t, "b", "a", "c")
	got := r.Nodes()
	if fmt.Sprint(got) != "[a b c]" {
		t.Fatalf("Nodes() = %v", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	r := ringWith(t, "w1", "w2")
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			r.Add(fmt.Sprintf("extra%d", i%8))
			r.Remove(fmt.Sprintf("extra%d", (i+4)%8))
		}
		close(done)
	}()
	for i := 0; i < 5000; i++ {
		r.Owner(i)
		r.Owners(i, 2)
	}
	<-done
}
