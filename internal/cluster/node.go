package cluster

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
)

// NodeOptions configures one cluster daemon (see StartNode).
type NodeOptions struct {
	// Listen is the address to bind (e.g. "127.0.0.1:0").
	Listen string
	// Advertise is the address peers and clients should dial to reach this
	// node; empty means the bound listener address. Set it when the bind
	// address is not routable (e.g. listening on ":7461" behind NAT).
	Advertise string
	// Seeds are addresses of existing cluster members to join through. An
	// empty list bootstraps a new single-node cluster.
	Seeds []string
	// Replicas is how many distinct ring owners hold each key (default 2).
	// All members must agree on this for placement to converge.
	Replicas int
	// Store carries the canonical store/pool tuning shared with the
	// standalone server and the client (capacity, shards, pool size,
	// timeouts, retries, breaker template).
	Store kvserver.Config
	// GossipEvery is the membership gossip interval (default 500ms).
	GossipEvery time.Duration
	// DeadAfter is how many consecutive failed gossip rounds expel a peer
	// (default 3).
	DeadAfter int
	// RingPoints is the virtual points per node on the placement ring
	// (default 128). All members must agree on this too.
	RingPoints int
	// Registry receives the node's telemetry (and the embedded server's,
	// so METRICS exposes both); nil means the server keeps a private
	// registry and the node records nothing.
	Registry *telemetry.Registry
}

func (o NodeOptions) withDefaults() NodeOptions {
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.GossipEvery <= 0 {
		o.GossipEvery = 500 * time.Millisecond
	}
	if o.DeadAfter <= 0 {
		o.DeadAfter = 3
	}
	if o.RingPoints <= 0 {
		o.RingPoints = 128
	}
	return o
}

// nodeTelemetry is the single registration site for the cluster_members
// gauge and the cluster_membership_total, kv_replication_total and
// kv_migration_keys_total families.
type nodeTelemetry struct {
	members      *telemetry.Gauge
	joins        *telemetry.Counter
	leaves       *telemetry.Counter
	replOK       *telemetry.Counter
	replErr      *telemetry.Counter
	migrateOK    *telemetry.Counter
	migrateErr   *telemetry.Counter
	migrateTicks *telemetry.Counter
}

func newNodeTelemetry(reg *telemetry.Registry) nodeTelemetry {
	reg.Describe("cluster_members", "cluster members this node currently knows (including itself)")
	reg.Describe("cluster_membership_total", "membership changes observed by this node (event=join|leave)")
	reg.Describe("kv_replication_total", "replica write fan-outs by result (result=ok|error)")
	reg.Describe("kv_migration_keys_total", "keys pushed to replica owners during rebalance (result=ok|error)")
	reg.Describe("kv_migration_rounds_total", "rebalance rounds run after membership changes")
	return nodeTelemetry{
		members:      reg.Gauge("cluster_members", nil),
		joins:        reg.Counter("cluster_membership_total", telemetry.Labels{"event": "join"}),
		leaves:       reg.Counter("cluster_membership_total", telemetry.Labels{"event": "leave"}),
		replOK:       reg.Counter("kv_replication_total", telemetry.Labels{"result": "ok"}),
		replErr:      reg.Counter("kv_replication_total", telemetry.Labels{"result": "error"}),
		migrateOK:    reg.Counter("kv_migration_keys_total", telemetry.Labels{"result": "ok"}),
		migrateErr:   reg.Counter("kv_migration_keys_total", telemetry.Labels{"result": "error"}),
		migrateTicks: reg.Counter("kv_migration_rounds_total", nil),
	}
}

// Node is one spiderkv cluster daemon: a kvserver.Server wired into
// gossip membership, synchronous replica fan-out and background key
// migration. It implements kvserver.ClusterHooks, so the embedded server
// calls back into it on SET/MSET/DEL (to replicate) and on HELLO/NODES
// (to gossip).
//
// # Replication
//
// A client SET lands on one owner, which stores locally and then pushes
// an RSET to every other ring owner of the key before replying STORED —
// so by the time the client sees STORED, the value is readable from every
// live owner. RSET/RDEL never fan out again (replication is acyclic). A
// replica push that fails does not fail the client's write: the cache is
// availability-first, the miss is repaired by the next rebalance, and the
// failure is counted in kv_replication_total{result="error"}.
//
// # Membership and migration
//
// Nodes gossip by sending HELLO <self> to each peer every GossipEvery and
// merging the replied member lists; a peer that fails DeadAfter
// consecutive rounds is expelled. Every membership change kicks a
// rebalance round: the node scans its keys and pushes each to the key's
// current owners. Keys are never deleted by migration — an old owner
// keeps its copy until LRU evicts it — so a key readable before a join
// stays readable throughout (the client reads through all owners and an
// old owner remains one for any single join at Replicas >= 2).
type Node struct {
	opts NodeOptions
	self string
	srv  *kvserver.Server
	ring *Ring
	tel  nodeTelemetry

	mu    sync.RWMutex
	peers map[string]*kvserver.Pool
	fails map[string]int // consecutive gossip failures per peer

	kick chan struct{} // coalesced rebalance trigger
	done chan struct{}
	wg   sync.WaitGroup

	closeOnce sync.Once
	closeErr  error
}

// StartNode binds opts.Listen, starts the daemon and returns once it is
// serving. Joining is asynchronous: the node answers clients immediately
// and learns the rest of the cluster through gossip with its seeds.
func StartNode(opts NodeOptions) (*Node, error) {
	opts = opts.withDefaults()
	if err := opts.Store.Validate(); err != nil {
		return nil, err
	}
	ring, err := NewRing(opts.RingPoints)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", opts.Listen)
	if err != nil {
		return nil, fmt.Errorf("cluster: node listen %s: %w", opts.Listen, err)
	}
	self := opts.Advertise
	if self == "" {
		self = ln.Addr().String()
	}
	n := &Node{
		opts:  opts,
		self:  self,
		ring:  ring,
		tel:   newNodeTelemetry(opts.Registry),
		peers: make(map[string]*kvserver.Pool),
		fails: make(map[string]int),
		kick:  make(chan struct{}, 1),
		done:  make(chan struct{}),
	}
	if err := ring.Add(self); err != nil {
		//lint:ignore errcheck the ring error is what the caller sees; the unused listener's close error is noise
		ln.Close()
		return nil, err
	}
	n.tel.members.Set(1)
	sopts := opts.Store.ServerOptions(opts.Registry)
	sopts.Cluster = n
	srv, err := kvserver.ServeOn(ln, sopts)
	if err != nil {
		//lint:ignore errcheck the serve error is what the caller sees
		ln.Close()
		return nil, err
	}
	n.srv = srv
	for _, seed := range opts.Seeds {
		if seed != self {
			n.addMember(seed)
		}
	}
	n.wg.Add(2)
	go n.gossipLoop()
	go n.rebalanceLoop()
	return n, nil
}

// Addr returns the address this node advertises to peers and clients.
func (n *Node) Addr() string { return n.self }

// Server exposes the embedded kvserver (for stats and tests).
func (n *Node) Server() *kvserver.Server { return n.srv }

// Ring exposes the node's placement ring (for tests and inspection).
func (n *Node) Ring() *Ring { return n.ring }

// Members returns the member list this node currently believes in,
// including itself (sorted).
func (n *Node) Members() []string { return n.Nodes() }

// --- kvserver.ClusterHooks ---

// Hello records the caller as a member and returns this node's member
// list — the gossip exchange behind the HELLO verb.
func (n *Node) Hello(addr string) []string {
	if addr != "" && addr != n.self {
		n.addMember(addr)
	}
	return n.Nodes()
}

// Nodes returns the member list including self (sorted) — the NODES verb.
func (n *Node) Nodes() []string {
	n.mu.RLock()
	out := make([]string, 0, len(n.peers)+1)
	out = append(out, n.self)
	for p := range n.peers {
		out = append(out, p)
	}
	n.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ReplicateSet pushes freshly stored keys to each key's other ring
// owners, synchronously — the server calls this between storing and
// replying STORED. See the Node doc for the delivery guarantee.
func (n *Node) ReplicateSet(keys []string, values [][]byte) {
	for i, k := range keys {
		for _, owner := range n.ring.OwnersKey(k, n.opts.Replicas) {
			if owner == n.self {
				continue
			}
			pool := n.peerPool(owner)
			if pool == nil {
				continue
			}
			v := values[i]
			err := pool.Do(func(c *kvserver.Client) error { return c.RSet(k, v) })
			if err != nil {
				n.tel.replErr.Inc()
				continue
			}
			n.tel.replOK.Inc()
		}
	}
}

// ReplicateDel pushes a delete to the key's other ring owners (RDEL, no
// further fan-out), so a DEL observed by the client cannot resurrect from
// a replica on the next Get.
func (n *Node) ReplicateDel(key string) {
	for _, owner := range n.ring.OwnersKey(key, n.opts.Replicas) {
		if owner == n.self {
			continue
		}
		pool := n.peerPool(owner)
		if pool == nil {
			continue
		}
		err := pool.Do(func(c *kvserver.Client) error {
			_, e := c.RDel(key)
			return e
		})
		if err != nil {
			n.tel.replErr.Inc()
			continue
		}
		n.tel.replOK.Inc()
	}
}

// --- membership ---

// peerPool returns the pool for a member, or nil if the member vanished.
func (n *Node) peerPool(addr string) *kvserver.Pool {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return n.peers[addr]
}

// addMember registers a newly heard-of member: ring points, a lazy peer
// pool, a join event and a rebalance kick. No-op for known members.
func (n *Node) addMember(addr string) {
	n.mu.Lock()
	if _, ok := n.peers[addr]; ok || addr == n.self {
		n.mu.Unlock()
		return
	}
	pool, err := kvserver.NewPool(addr, n.opts.Store.PoolOptions(addr, true, n.opts.Registry))
	if err != nil {
		n.mu.Unlock()
		return // unreachable with lazy dial, kept for safety
	}
	//lint:ignore errcheck Add only fails on an empty name, which validNodeAddr already rejected
	n.ring.Add(addr)
	n.peers[addr] = pool
	n.fails[addr] = 0
	n.tel.members.Set(float64(len(n.peers) + 1))
	n.mu.Unlock()
	n.tel.joins.Inc()
	n.kickRebalance()
}

// expelMember drops a peer that failed too many gossip rounds.
func (n *Node) expelMember(addr string) {
	n.mu.Lock()
	pool, ok := n.peers[addr]
	if ok {
		delete(n.peers, addr)
		delete(n.fails, addr)
		n.ring.Remove(addr)
		n.tel.members.Set(float64(len(n.peers) + 1))
	}
	n.mu.Unlock()
	if !ok {
		return
	}
	//lint:ignore errcheck the pool is being retired; its close error is noise
	pool.Close()
	n.tel.leaves.Inc()
	n.kickRebalance()
}

// gossipLoop runs a round immediately (so a seeded node joins fast), then
// every GossipEvery until Close.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	ticker := time.NewTicker(n.opts.GossipEvery)
	defer ticker.Stop()
	for {
		n.gossipOnce()
		select {
		case <-n.done:
			return
		case <-ticker.C:
		}
	}
}

// gossipOnce sends HELLO <self> to every peer, merges replied member
// lists, and expels peers that keep failing. Network I/O happens outside
// the node mutex: membership is snapshotted first.
func (n *Node) gossipOnce() {
	n.mu.RLock()
	addrs := make([]string, 0, len(n.peers))
	pools := make([]*kvserver.Pool, 0, len(n.peers))
	for a, p := range n.peers {
		addrs = append(addrs, a)
		pools = append(pools, p)
	}
	n.mu.RUnlock()

	for i, addr := range addrs {
		var members []string
		err := pools[i].Do(func(c *kvserver.Client) error {
			var e error
			members, e = c.Hello(n.self)
			return e
		})
		if err != nil {
			if n.bumpFail(addr) {
				n.expelMember(addr)
			}
			continue
		}
		n.clearFail(addr)
		for _, m := range members {
			if m != n.self {
				n.addMember(m)
			}
		}
	}
}

// bumpFail counts a failed round; true means the peer hit DeadAfter.
func (n *Node) bumpFail(addr string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, ok := n.peers[addr]; !ok {
		return false
	}
	n.fails[addr]++
	return n.fails[addr] >= n.opts.DeadAfter
}

func (n *Node) clearFail(addr string) {
	n.mu.Lock()
	if _, ok := n.peers[addr]; ok {
		n.fails[addr] = 0
	}
	n.mu.Unlock()
}

// --- migration ---

// kickRebalance schedules a rebalance round; kicks coalesce while one is
// pending or running, which is fine — a round always reads the current
// membership.
func (n *Node) kickRebalance() {
	select {
	case n.kick <- struct{}{}:
	default:
	}
}

// rebalanceLoop runs a migration round after each membership change.
func (n *Node) rebalanceLoop() {
	defer n.wg.Done()
	for {
		select {
		case <-n.done:
			return
		case <-n.kick:
			n.rebalance()
		}
	}
}

// rebalance scans the local store and pushes every key to each of its
// current ring owners other than self. Nothing is deleted: an old owner
// keeps its copy (LRU reclaims the space), which is what closes the
// NOT_FOUND window during ownership handoff. Peek is used instead of Get
// so the scan neither perturbs LRU order nor inflates hit counters.
func (n *Node) rebalance() {
	n.tel.migrateTicks.Inc()
	for _, k := range n.srv.Keys() {
		select {
		case <-n.done:
			return
		default:
		}
		v, ok := n.srv.Peek(k)
		if !ok {
			continue // evicted since the scan; nothing to migrate
		}
		for _, owner := range n.ring.OwnersKey(k, n.opts.Replicas) {
			if owner == n.self {
				continue
			}
			pool := n.peerPool(owner)
			if pool == nil {
				continue
			}
			err := pool.Do(func(c *kvserver.Client) error { return c.RSet(k, v) })
			if err != nil {
				n.tel.migrateErr.Inc()
				continue
			}
			n.tel.migrateOK.Inc()
		}
	}
}

// Close stops gossip and migration, shuts the embedded server (draining
// its sessions) and closes every peer pool. Idempotent.
func (n *Node) Close() error {
	n.closeOnce.Do(func() {
		close(n.done)
		n.wg.Wait()
		n.closeErr = n.srv.Close()
		n.mu.Lock()
		pools := make([]*kvserver.Pool, 0, len(n.peers))
		for _, p := range n.peers {
			pools = append(pools, p)
		}
		n.peers = make(map[string]*kvserver.Pool)
		n.fails = make(map[string]int)
		n.mu.Unlock()
		for _, p := range pools {
			if err := p.Close(); err != nil && n.closeErr == nil {
				n.closeErr = err
			}
		}
	})
	return n.closeErr
}
