package cluster

import (
	"errors"
	"fmt"

	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
)

// ErrNoNodes is returned when every candidate node for a key is
// unavailable (breaker open or transport failure on each).
var ErrNoNodes = errors.New("cluster: no reachable node for key")

// ClientOptions configures a ring-aware cluster client.
type ClientOptions struct {
	// PoolSize is the per-node connection pool size (default 2: the
	// client fans out across nodes, so per-node pools stay small).
	PoolSize int
	// Dial applies to every pooled connection.
	Dial kvserver.DialOptions
	// Retry is the per-node retry policy (see kvserver.Pool). The zero
	// value disables in-node retries; cross-node failover still applies.
	Retry kvserver.RetryOptions
	// Breaker is the per-node circuit breaker template; nil installs a
	// default breaker (the failover path needs breaker state to route
	// around dead nodes without paying a dial timeout per request).
	Breaker *kvserver.BreakerOptions
	// Replicas is how many distinct ring owners are candidates for each
	// key — the failover width (default 2).
	Replicas int
	// RingPoints is the virtual points per node on the ring (default 128).
	RingPoints int
	// Registry receives telemetry from the client and its per-node pools;
	// nil records nothing.
	Registry *telemetry.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.RingPoints <= 0 {
		o.RingPoints = 128
	}
	if o.Breaker == nil {
		o.Breaker = &kvserver.BreakerOptions{}
	}
	return o
}

// NodeHealth reports one node's serving state as seen by the client.
type NodeHealth struct {
	// Breaker is the node's circuit breaker state; BreakerClosed means
	// the node is taking traffic normally.
	Breaker kvserver.BreakerState
}

// clientTelemetry is the single registration site for the
// kv_failover_total family.
type clientTelemetry struct {
	rerouted  *telemetry.Counter
	exhausted *telemetry.Counter
}

func newClientTelemetry(reg *telemetry.Registry) clientTelemetry {
	reg.Describe("kv_failover_total", "cluster ops rerouted to a replica (rerouted) or failed on every candidate (exhausted)")
	return clientTelemetry{
		rerouted:  reg.Counter("kv_failover_total", telemetry.Labels{"result": "rerouted"}),
		exhausted: reg.Counter("kv_failover_total", telemetry.Labels{"result": "exhausted"}),
	}
}

// Client is a ring-aware multi-node cache client: sample IDs map to nodes
// via a consistent-hash Ring, each node is served by its own
// kvserver.Pool (lazy-dialled, retrying, breaker-guarded), and operations
// fail over along the key's replica owners when a node is down or its
// breaker is open. It satisfies the trainer's RemoteCache contract, so a
// training run degrades to backing storage — never errors out — when the
// whole cluster is unreachable.
//
// Failing over a Set to a replica is safe even though the pool layer is
// conservative about mutation retries: cache population is idempotent by
// construction (a sample ID always maps to the same payload), so landing
// the value on a secondary owner can at worst duplicate a cache entry,
// never corrupt one.
type Client struct {
	ring  *Ring
	nodes []string
	pools map[string]*kvserver.Pool
	opts  ClientOptions
	tel   clientTelemetry
}

// NewClient builds a client over the given node addresses. Construction
// never dials: pools are lazy, so a client can be built while some (or
// all) nodes are down and traffic flows as they come up.
func NewClient(nodes []string, opts ClientOptions) (*Client, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: NewClient needs at least one node")
	}
	opts = opts.withDefaults()
	ring, err := NewRing(opts.RingPoints)
	if err != nil {
		return nil, err
	}
	c := &Client{
		ring:  ring,
		pools: make(map[string]*kvserver.Pool, len(nodes)),
		opts:  opts,
		tel:   newClientTelemetry(opts.Registry),
	}
	for _, node := range nodes {
		if _, dup := c.pools[node]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", node)
		}
		if err := ring.Add(node); err != nil {
			return nil, err
		}
		breaker := *opts.Breaker // each node gets its own breaker instance
		pool, err := kvserver.NewPool(node, kvserver.PoolOptions{
			Size:        opts.PoolSize,
			DialOptions: opts.Dial,
			LazyDial:    true,
			Retry:       opts.Retry,
			Breaker:     &breaker,
			Name:        node,
			Registry:    opts.Registry,
		})
		if err != nil {
			return nil, err // unreachable with LazyDial, kept for safety
		}
		c.pools[node] = pool
		c.nodes = append(c.nodes, node)
	}
	return c, nil
}

// Ring exposes the placement ring (for tests and topology inspection).
func (c *Client) Ring() *Ring { return c.ring }

// candidates returns the pools owning id, in placement order.
func (c *Client) candidates(id int) []*kvserver.Pool {
	owners := c.ring.Owners(id, c.opts.Replicas)
	pools := make([]*kvserver.Pool, 0, len(owners))
	for _, node := range owners {
		pools = append(pools, c.pools[node])
	}
	return pools
}

// Get fetches the cached payload for a sample ID, trying each replica
// owner in placement order. A node with an open breaker is skipped
// without touching the network. found=false with a nil error means every
// reachable owner answered and none had the value — a clean miss. An
// error means no owner could be reached at all.
func (c *Client) Get(id int) (value []byte, found bool, err error) {
	var lastErr error
	reachable, failedBefore := false, false
	for _, pool := range c.candidates(id) {
		v, ok, err := pool.Get(key(id))
		if err == nil {
			if failedBefore {
				c.tel.rerouted.Inc()
				failedBefore = false // count one reroute per op
			}
			if ok {
				return v, true, nil
			}
			reachable = true
			continue // clean miss here; a replica may still have it
		}
		lastErr = err
		failedBefore = true
	}
	if reachable {
		return nil, false, nil
	}
	c.tel.exhausted.Inc()
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return nil, false, fmt.Errorf("%w: %w", ErrNoNodes, lastErr)
}

// Set stores the payload for a sample ID on the first reachable replica
// owner. See the Client doc for why rerouting a cache Set is safe.
func (c *Client) Set(id int, payload []byte) error {
	var lastErr error
	for i, pool := range c.candidates(id) {
		err := pool.Set(key(id), payload)
		if err == nil {
			if i > 0 {
				c.tel.rerouted.Inc()
			}
			return nil
		}
		lastErr = err
	}
	c.tel.exhausted.Inc()
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return fmt.Errorf("%w: %w", ErrNoNodes, lastErr)
}

// Health reports each node's breaker state.
func (c *Client) Health() map[string]NodeHealth {
	out := make(map[string]NodeHealth, len(c.nodes))
	for _, node := range c.nodes {
		out[node] = NodeHealth{Breaker: c.pools[node].Breaker().State()}
	}
	return out
}

// Close shuts every per-node pool. Safe to call once.
func (c *Client) Close() error {
	var first error
	for _, node := range c.nodes {
		if err := c.pools[node].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
