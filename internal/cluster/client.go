package cluster

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"spidercache/internal/kvserver"
	"spidercache/internal/telemetry"
)

// ErrNoNodes is returned when every candidate node for a key is
// unavailable (breaker open or transport failure on each).
var ErrNoNodes = errors.New("cluster: no reachable node for key")

// ClientOptions configures a ring-aware cluster client.
//
// ClientOptions remains the carrier for the static-list constructor
// NewClient; new code should use New with functional options (WithSeeds,
// WithReplicas, WithBreaker, WithRetry, WithDiscovery, ...), which cover
// everything here plus gossip-driven topology discovery.
type ClientOptions struct {
	// PoolSize is the per-node connection pool size (default 2: the
	// client fans out across nodes, so per-node pools stay small).
	PoolSize int
	// Dial applies to every pooled connection.
	Dial kvserver.DialOptions
	// Retry is the per-node retry policy (see kvserver.Pool). The zero
	// value disables in-node retries; cross-node failover still applies.
	Retry kvserver.RetryOptions
	// Breaker is the per-node circuit breaker template; nil installs a
	// default breaker (the failover path needs breaker state to route
	// around dead nodes without paying a dial timeout per request).
	Breaker *kvserver.BreakerOptions
	// Replicas is how many distinct ring owners are candidates for each
	// key — the failover width (default 2).
	Replicas int
	// RingPoints is the virtual points per node on the ring (default 128).
	RingPoints int
	// Registry receives telemetry from the client and its per-node pools;
	// nil records nothing.
	Registry *telemetry.Registry
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.PoolSize <= 0 {
		o.PoolSize = 2
	}
	if o.Replicas <= 0 {
		o.Replicas = 2
	}
	if o.RingPoints <= 0 {
		o.RingPoints = 128
	}
	if o.Breaker == nil {
		o.Breaker = &kvserver.BreakerOptions{}
	}
	return o
}

// NodeHealth reports one node's serving state as seen by the client.
type NodeHealth struct {
	// Breaker is the node's circuit breaker state machine position.
	Breaker kvserver.BreakerState
	// Serving reports whether the client would actually send this node a
	// request right now. It is false not only when the breaker is open but
	// also when it is half-open with the probe quota exhausted — a state
	// in which every op fails fast exactly like open, which the bare
	// Breaker field used to paper over. Ops dashboards should alert on
	// !Serving, not on Breaker != BreakerClosed.
	Serving bool
}

// clientTelemetry is the single registration site for the
// kv_failover_total and cluster_discovery_total families and the
// cluster_client_nodes gauge.
type clientTelemetry struct {
	rerouted  *telemetry.Counter
	exhausted *telemetry.Counter
	added     *telemetry.Counter
	removed   *telemetry.Counter
	nodes     *telemetry.Gauge
}

func newClientTelemetry(reg *telemetry.Registry) clientTelemetry {
	reg.Describe("kv_failover_total", "cluster ops rerouted to a replica (rerouted) or failed on every candidate (exhausted)")
	reg.Describe("cluster_discovery_total", "client topology changes learned from gossip (nodes added/removed)")
	reg.Describe("cluster_client_nodes", "nodes the client currently routes to")
	return clientTelemetry{
		rerouted:  reg.Counter("kv_failover_total", telemetry.Labels{"result": "rerouted"}),
		exhausted: reg.Counter("kv_failover_total", telemetry.Labels{"result": "exhausted"}),
		added:     reg.Counter("cluster_discovery_total", telemetry.Labels{"result": "added"}),
		removed:   reg.Counter("cluster_discovery_total", telemetry.Labels{"result": "removed"}),
		nodes:     reg.Gauge("cluster_client_nodes", nil),
	}
}

// Client is a ring-aware multi-node cache client: sample IDs map to nodes
// via a consistent-hash Ring, each node is served by its own
// kvserver.Pool (lazy-dialled, retrying, breaker-guarded), and operations
// fail over along the key's replica owners when a node is down or its
// breaker is open. It satisfies the trainer's RemoteCache contract, so a
// training run degrades to backing storage — never errors out — when the
// whole cluster is unreachable.
//
// Membership is live: with WithDiscovery enabled the client polls the
// cluster's NODES gossip verb and adds/removes nodes (and their pools and
// ring points) as daemons join, leave or die, so topology is discovered
// rather than configured. All ops are safe concurrently with membership
// changes: an op racing a node removal sees its pool close underneath it
// and fails over like any other node failure.
//
// Failing over a Set to a replica is safe even though the pool layer is
// conservative about mutation retries: cache population is idempotent by
// construction (a sample ID always maps to the same payload), so landing
// the value on a secondary owner can at worst duplicate a cache entry,
// never corrupt one.
type Client struct {
	opts ClientOptions
	tel  clientTelemetry

	mu    sync.RWMutex
	ring  *Ring
	nodes []string // sorted
	pools map[string]*kvserver.Pool

	discoverEvery time.Duration
	discoveryDone chan struct{}
	discoveryWG   sync.WaitGroup
	closeOnce     sync.Once
}

// NewClient builds a client over the given static node addresses.
// Construction never dials: pools are lazy, so a client can be built while
// some (or all) nodes are down and traffic flows as they come up.
//
// Deprecated: NewClient cannot express dynamic topology — the node list it
// is handed is the node list it dies with. Use New with WithSeeds (and
// WithDiscovery for gossip-driven membership); this constructor is kept
// working, verified by compat tests, for existing callers.
func NewClient(nodes []string, opts ClientOptions) (*Client, error) {
	return newClient(nodes, opts, 0)
}

// newClient is the shared constructor behind New and NewClient.
func newClient(seeds []string, opts ClientOptions, discoverEvery time.Duration) (*Client, error) {
	if len(seeds) == 0 {
		return nil, fmt.Errorf("cluster: client needs at least one seed node")
	}
	opts = opts.withDefaults()
	ring, err := NewRing(opts.RingPoints)
	if err != nil {
		return nil, err
	}
	c := &Client{
		opts:          opts,
		tel:           newClientTelemetry(opts.Registry),
		ring:          ring,
		pools:         make(map[string]*kvserver.Pool, len(seeds)),
		discoverEvery: discoverEvery,
		discoveryDone: make(chan struct{}),
	}
	for _, node := range seeds {
		if _, dup := c.pools[node]; dup {
			return nil, fmt.Errorf("cluster: duplicate node %q", node)
		}
		if err := c.addNode(node); err != nil {
			return nil, err
		}
	}
	if discoverEvery > 0 {
		c.discoveryWG.Add(1)
		go c.discoverLoop()
	}
	return c, nil
}

// addNode places node on the ring and gives it a pool. No-op if present.
func (c *Client) addNode(node string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.pools[node]; ok {
		return nil
	}
	if err := c.ring.Add(node); err != nil {
		return err
	}
	breaker := *c.opts.Breaker // each node gets its own breaker instance
	pool, err := kvserver.NewPool(node, kvserver.PoolOptions{
		Size:        c.opts.PoolSize,
		DialOptions: c.opts.Dial,
		LazyDial:    true,
		Retry:       c.opts.Retry,
		Breaker:     &breaker,
		Name:        node,
		Registry:    c.opts.Registry,
	})
	if err != nil {
		c.ring.Remove(node)
		return err // unreachable with LazyDial, kept for safety
	}
	c.pools[node] = pool
	c.nodes = append(c.nodes, node)
	sort.Strings(c.nodes)
	c.tel.nodes.Set(float64(len(c.nodes)))
	return nil
}

// removeNode takes node off the ring and closes its pool. In-flight ops on
// the pool fail with ErrPoolClosed and fail over normally.
func (c *Client) removeNode(node string) {
	c.mu.Lock()
	pool, ok := c.pools[node]
	if ok {
		c.ring.Remove(node)
		delete(c.pools, node)
		kept := c.nodes[:0]
		for _, n := range c.nodes {
			if n != node {
				kept = append(kept, n)
			}
		}
		c.nodes = kept
		c.tel.nodes.Set(float64(len(c.nodes)))
	}
	c.mu.Unlock()
	if ok {
		//lint:ignore errcheck the pool is being retired; its close error is noise
		pool.Close()
	}
}

// Ring exposes the placement ring (for tests and topology inspection).
func (c *Client) Ring() *Ring { return c.ring }

// Nodes returns the node set the client currently routes to (sorted).
func (c *Client) Nodes() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, len(c.nodes))
	copy(out, c.nodes)
	return out
}

// candidates returns the pools owning id, in placement order.
func (c *Client) candidates(id int) []*kvserver.Pool {
	owners := c.ring.Owners(id, c.opts.Replicas)
	c.mu.RLock()
	defer c.mu.RUnlock()
	pools := make([]*kvserver.Pool, 0, len(owners))
	for _, node := range owners {
		if pool, ok := c.pools[node]; ok {
			pools = append(pools, pool)
		}
	}
	return pools
}

// Get fetches the cached payload for a sample ID, trying each replica
// owner in placement order. A node with an open breaker is skipped
// without touching the network. found=false with a nil error means every
// reachable owner answered and none had the value — a clean miss. An
// error means no owner could be reached at all.
func (c *Client) Get(id int) (value []byte, found bool, err error) {
	var lastErr error
	reachable, failedBefore := false, false
	for _, pool := range c.candidates(id) {
		v, ok, err := pool.Get(key(id))
		if err == nil {
			if failedBefore {
				c.tel.rerouted.Inc()
				failedBefore = false // count one reroute per op
			}
			if ok {
				return v, true, nil
			}
			reachable = true
			continue // clean miss here; a replica may still have it
		}
		lastErr = err
		failedBefore = true
	}
	if reachable {
		return nil, false, nil
	}
	c.tel.exhausted.Inc()
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return nil, false, fmt.Errorf("%w: %w", ErrNoNodes, lastErr)
}

// NGet is Get with a semantic fallback (the NGET verb): each replica
// owner is tried in placement order, and a near miss — the owner
// answered but had neither the key nor a close-enough resident
// neighbor — falls through to the next replica exactly like a clean
// GET miss, since a replica may hold (or have a substitute for) what
// the primary evicted. found covers exact and near hits; near is
// non-nil only for substitutes.
func (c *Client) NGet(id int, emb []float32, threshold float64) (value []byte, near *kvserver.Near, found bool, err error) {
	var lastErr error
	reachable, failedBefore := false, false
	for _, pool := range c.candidates(id) {
		v, nr, ok, err := pool.NGet(key(id), emb, threshold)
		if err == nil {
			if failedBefore {
				c.tel.rerouted.Inc()
				failedBefore = false // count one reroute per op
			}
			if ok {
				return v, nr, true, nil
			}
			reachable = true
			continue
		}
		lastErr = err
		failedBefore = true
	}
	if reachable {
		return nil, nil, false, nil
	}
	c.tel.exhausted.Inc()
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return nil, nil, false, fmt.Errorf("%w: %w", ErrNoNodes, lastErr)
}

// ESet attaches the embedding for a sample ID on EVERY reachable
// replica owner, not just the first: semantic indexes are node-local
// (ESET has no server-side fan-out, unlike SET's RSET replication), so
// each owner that may later serve an NGET for this ring neighborhood
// needs its own copy. Re-indexing an embedding is idempotent, which is
// why the blanket fan-out is safe. An error means no owner took it.
func (c *Client) ESet(id int, emb []float32) error {
	var lastErr error
	landed := 0
	for _, pool := range c.candidates(id) {
		if err := pool.ESet(key(id), emb); err != nil {
			lastErr = err
			continue
		}
		landed++
	}
	if landed > 0 {
		return nil
	}
	c.tel.exhausted.Inc()
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return fmt.Errorf("%w: %w", ErrNoNodes, lastErr)
}

// Set stores the payload for a sample ID on the first reachable replica
// owner. See the Client doc for why rerouting a cache Set is safe.
func (c *Client) Set(id int, payload []byte) error {
	var lastErr error
	for i, pool := range c.candidates(id) {
		err := pool.Set(key(id), payload)
		if err == nil {
			if i > 0 {
				c.tel.rerouted.Inc()
			}
			return nil
		}
		lastErr = err
	}
	c.tel.exhausted.Inc()
	if lastErr == nil {
		lastErr = ErrNoNodes
	}
	return fmt.Errorf("%w: %w", ErrNoNodes, lastErr)
}

// Health reports each node's breaker state and whether it is actually
// taking traffic (see NodeHealth.Serving).
func (c *Client) Health() map[string]NodeHealth {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]NodeHealth, len(c.nodes))
	for _, node := range c.nodes {
		b := c.pools[node].Breaker()
		out[node] = NodeHealth{Breaker: b.State(), Serving: b.Serving()}
	}
	return out
}

// Close stops discovery and shuts every per-node pool. Idempotent.
func (c *Client) Close() error {
	c.closeOnce.Do(func() { close(c.discoveryDone) })
	c.discoveryWG.Wait()
	c.mu.Lock()
	defer c.mu.Unlock()
	var first error
	for _, node := range c.nodes {
		if err := c.pools[node].Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
