// Package faultnet wraps net.Conn and net.Listener with seed-deterministic
// fault injection, so the serving tier's failure handling (retry, circuit
// breaking, failover) can be exercised from ordinary tests and from the
// spiderload generator without a packet-mangling proxy.
//
// Faults are drawn per operation from an xrand stream derived from
// Config.Seed, so a given (seed, op sequence) always injects the same
// faults — a failing run replays exactly. Injectable faults:
//
//   - added latency before each read and write (Latency);
//   - short reads: Read returns fewer bytes than requested, without error
//     (legal per io.Reader; stresses reply framing);
//   - partial writes: Write delivers only a prefix to the wire and returns
//     ErrInjected with n < len(p) (legal per io.Writer: an error must
//     accompany a short write);
//   - read/write errors with nothing delivered;
//   - connection resets: the underlying conn is closed and the op fails,
//     so every later op on the conn fails too.
//
// Every injected fault increments kv_faults_injected_total{kind=...} when a
// telemetry registry is supplied, so load runs can report how much abuse
// the client layer absorbed.
package faultnet

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"spidercache/internal/telemetry"
	"spidercache/internal/xrand"
)

// ErrInjected is the base error for every injected fault; callers match it
// with errors.Is. The concrete errors carry the fault kind for messages.
var ErrInjected = errors.New("faultnet: injected fault")

// injectedErr tags an injected fault with its kind.
type injectedErr struct{ kind string }

func (e injectedErr) Error() string { return "faultnet: injected " + e.kind }
func (e injectedErr) Unwrap() error { return ErrInjected }

// Config sets the per-operation fault probabilities (each in [0,1]) and the
// deterministic seed. The zero value injects nothing.
type Config struct {
	// Seed drives the deterministic fault stream. Connections accepted by a
	// Listener derive their own stream from Seed and the accept index, so
	// concurrent connections stay individually deterministic.
	Seed uint64
	// Latency is added before every read and write (0 = none).
	Latency time.Duration
	// ShortReadProb truncates a read to a random shorter length (no error).
	ShortReadProb float64
	// PartialWriteProb delivers a random proper prefix and returns
	// ErrInjected (n < len(p), as the io.Writer contract requires).
	PartialWriteProb float64
	// ReadErrProb fails a read with ErrInjected, delivering nothing.
	ReadErrProb float64
	// WriteErrProb fails a write with ErrInjected, delivering nothing.
	WriteErrProb float64
	// ResetProb closes the underlying connection and fails the op; every
	// later op on the conn fails naturally.
	ResetProb float64
	// Registry counts injected faults (kv_faults_injected_total{kind=});
	// nil disables counting.
	Registry *telemetry.Registry
}

// Validate reports a descriptive error for out-of-range probabilities.
func (c Config) Validate() error {
	for _, p := range []struct {
		name string
		v    float64
	}{
		{"ShortReadProb", c.ShortReadProb},
		{"PartialWriteProb", c.PartialWriteProb},
		{"ReadErrProb", c.ReadErrProb},
		{"WriteErrProb", c.WriteErrProb},
		{"ResetProb", c.ResetProb},
	} {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("faultnet: %s must be in [0,1], got %g", p.name, p.v)
		}
	}
	if c.Latency < 0 {
		return fmt.Errorf("faultnet: Latency must be >= 0, got %v", c.Latency)
	}
	return nil
}

// counters groups the per-kind fault counters; shared by every conn of one
// Wrap/WrapListener call.
type counters struct {
	latency, shortRead, partialWrite *telemetry.Counter
	readErr, writeErr, reset         *telemetry.Counter
}

func newCounters(reg *telemetry.Registry) *counters {
	reg.Describe("kv_faults_injected_total", "faults injected into the serving path by faultnet, by kind")
	return &counters{
		latency:      reg.Counter("kv_faults_injected_total", telemetry.Labels{"kind": "latency"}),
		shortRead:    reg.Counter("kv_faults_injected_total", telemetry.Labels{"kind": "short_read"}),
		partialWrite: reg.Counter("kv_faults_injected_total", telemetry.Labels{"kind": "partial_write"}),
		readErr:      reg.Counter("kv_faults_injected_total", telemetry.Labels{"kind": "read_error"}),
		writeErr:     reg.Counter("kv_faults_injected_total", telemetry.Labels{"kind": "write_error"}),
		reset:        reg.Counter("kv_faults_injected_total", telemetry.Labels{"kind": "reset"}),
	}
}

// Conn is a fault-injecting net.Conn wrapper.
type Conn struct {
	net.Conn
	cfg Config
	ctr *counters

	mu  sync.Mutex // guards rng; net.Conn allows concurrent Read/Write
	rng *xrand.Rand
}

// Wrap returns conn with cfg's faults injected. The fault stream is seeded
// from cfg.Seed directly; use WrapListener for per-connection streams.
func Wrap(conn net.Conn, cfg Config) *Conn {
	return newConn(conn, cfg, xrand.New(cfg.Seed), newCounters(cfg.Registry))
}

func newConn(conn net.Conn, cfg Config, rng *xrand.Rand, ctr *counters) *Conn {
	return &Conn{Conn: conn, cfg: cfg, rng: rng, ctr: ctr}
}

// roll draws one uniform float under the rng lock.
func (c *Conn) roll() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Float64()
}

// intn draws a uniform int in [0,n) under the rng lock.
func (c *Conn) intn(n int) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rng.Intn(n)
}

// delay injects the configured latency before an op.
func (c *Conn) delay() {
	if c.cfg.Latency > 0 {
		c.ctr.latency.Inc()
		time.Sleep(c.cfg.Latency)
	}
}

// reset closes the underlying conn and returns the injected reset error.
func (c *Conn) reset() error {
	c.ctr.reset.Inc()
	//lint:ignore errcheck the injected reset error is what callers see; Close failure adds nothing
	c.Conn.Close()
	return injectedErr{kind: "connection reset"}
}

// Read injects read faults, then reads from the wrapped conn (possibly a
// truncated request for a short read).
func (c *Conn) Read(p []byte) (int, error) {
	c.delay()
	if c.cfg.ResetProb > 0 && c.roll() < c.cfg.ResetProb {
		return 0, c.reset()
	}
	if c.cfg.ReadErrProb > 0 && c.roll() < c.cfg.ReadErrProb {
		c.ctr.readErr.Inc()
		return 0, injectedErr{kind: "read error"}
	}
	if len(p) > 1 && c.cfg.ShortReadProb > 0 && c.roll() < c.cfg.ShortReadProb {
		c.ctr.shortRead.Inc()
		p = p[:1+c.intn(len(p)-1)]
	}
	return c.Conn.Read(p)
}

// Write injects write faults, then writes to the wrapped conn. A partial
// write delivers a proper prefix and returns n < len(p) with ErrInjected,
// as the io.Writer contract requires for short writes.
func (c *Conn) Write(p []byte) (int, error) {
	c.delay()
	if c.cfg.ResetProb > 0 && c.roll() < c.cfg.ResetProb {
		return 0, c.reset()
	}
	if c.cfg.WriteErrProb > 0 && c.roll() < c.cfg.WriteErrProb {
		c.ctr.writeErr.Inc()
		return 0, injectedErr{kind: "write error"}
	}
	if len(p) > 1 && c.cfg.PartialWriteProb > 0 && c.roll() < c.cfg.PartialWriteProb {
		c.ctr.partialWrite.Inc()
		n, err := c.Conn.Write(p[:1+c.intn(len(p)-1)])
		if err != nil {
			return n, err
		}
		return n, injectedErr{kind: "partial write"}
	}
	return c.Conn.Write(p)
}

// Listener wraps accepted connections with fault injection. Each accepted
// conn gets its own fault stream derived from Config.Seed and the accept
// index, so per-connection behaviour is deterministic regardless of how
// goroutines interleave across connections.
type Listener struct {
	net.Listener
	cfg Config
	ctr *counters

	mu   sync.Mutex
	next uint64 // accept index
}

// WrapListener returns ln with every accepted conn wrapped via cfg.
func WrapListener(ln net.Listener, cfg Config) *Listener {
	return &Listener{Listener: ln, cfg: cfg, ctr: newCounters(cfg.Registry)}
}

// Accept waits for the next connection and wraps it.
func (l *Listener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	l.mu.Lock()
	idx := l.next
	l.next++
	l.mu.Unlock()
	// SplitMix-style index mixing keeps per-conn streams uncorrelated.
	rng := xrand.New(l.cfg.Seed ^ (idx+1)*0x9e3779b97f4a7c15)
	return newConn(conn, l.cfg, rng, l.ctr), nil
}
