package faultnet

import (
	"errors"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"spidercache/internal/telemetry"
)

// pipePair returns a wrapped client end and the raw server end of an
// in-memory duplex connection, with the server end pumped by echo so writes
// never block.
func pipePair(t *testing.T, cfg Config) (*Conn, net.Conn) {
	t.Helper()
	a, b := net.Pipe()
	t.Cleanup(func() {
		a.Close()
		b.Close()
	})
	return Wrap(a, cfg), b
}

func TestWriteErrorInjected(t *testing.T) {
	c, _ := pipePair(t, Config{Seed: 1, WriteErrProb: 1})
	n, err := c.Write([]byte("hello"))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Write = (%d, %v), want (0, ErrInjected)", n, err)
	}
}

func TestReadErrorInjected(t *testing.T) {
	c, _ := pipePair(t, Config{Seed: 1, ReadErrProb: 1})
	n, err := c.Read(make([]byte, 8))
	if n != 0 || !errors.Is(err, ErrInjected) {
		t.Fatalf("Read = (%d, %v), want (0, ErrInjected)", n, err)
	}
}

func TestPartialWriteDeliversPrefix(t *testing.T) {
	c, peer := pipePair(t, Config{Seed: 7, PartialWriteProb: 1})
	msg := []byte("0123456789")
	got := make(chan []byte, 1)
	go func() {
		buf := make([]byte, len(msg))
		n, _ := peer.Read(buf)
		got <- buf[:n]
	}()
	n, err := c.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write err = %v, want ErrInjected", err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("partial write n = %d, want a proper prefix of %d", n, len(msg))
	}
	prefix := <-got
	if string(prefix) != string(msg[:n]) {
		t.Fatalf("wire saw %q, want prefix %q", prefix, msg[:n])
	}
}

func TestResetClosesUnderlyingConn(t *testing.T) {
	c, _ := pipePair(t, Config{Seed: 3, ResetProb: 1})
	if _, err := c.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write err = %v, want ErrInjected", err)
	}
	// The underlying conn is closed: a fault-free op now fails too.
	c.cfg = Config{}
	if _, err := c.Write([]byte("x")); err == nil {
		t.Fatal("write after injected reset succeeded; conn was not closed")
	}
}

func TestShortReadTruncatesWithoutError(t *testing.T) {
	c, peer := pipePair(t, Config{Seed: 5, ShortReadProb: 1})
	go func() {
		peer.Write([]byte("0123456789"))
	}()
	buf := make([]byte, 10)
	n, err := c.Read(buf)
	if err != nil {
		t.Fatalf("short read err = %v, want nil", err)
	}
	if n <= 0 || n >= len(buf) {
		t.Fatalf("short read n = %d, want 0 < n < %d", n, len(buf))
	}
}

// TestDeterministicStream: the same seed and op sequence injects the same
// faults, byte for byte.
func TestDeterministicStream(t *testing.T) {
	run := func() []string {
		c, peer := pipePair(t, Config{Seed: 42, PartialWriteProb: 0.5, WriteErrProb: 0.2})
		go func() {
			io.Copy(io.Discard, peer)
		}()
		var trace []string
		for i := 0; i < 64; i++ {
			n, err := c.Write([]byte("payload-payload-payload"))
			s := "ok"
			if err != nil {
				s = err.Error()
			}
			trace = append(trace, s+":"+string(rune('0'+n%10)))
		}
		return trace
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d diverged: %q vs %q", i, a[i], b[i])
		}
	}
}

func TestListenerWrapsAcceptedConns(t *testing.T) {
	reg := telemetry.NewRegistry()
	raw, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ln := WrapListener(raw, Config{Seed: 9, WriteErrProb: 1, Registry: reg})
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		defer conn.Close()
		_, werr := conn.Write([]byte("hi"))
		done <- werr
	}()
	c, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if werr := <-done; !errors.Is(werr, ErrInjected) {
		t.Fatalf("accepted conn write err = %v, want ErrInjected", werr)
	}
	if !strings.Contains(reg.Prometheus(), `kv_faults_injected_total{kind="write_error"} 1`) {
		t.Fatalf("fault counter not recorded:\n%s", reg.Prometheus())
	}
}

func TestValidate(t *testing.T) {
	if err := (Config{ResetProb: 1.5}).Validate(); err == nil {
		t.Fatal("out-of-range probability accepted")
	}
	if err := (Config{Latency: -time.Second}).Validate(); err == nil {
		t.Fatal("negative latency accepted")
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config rejected: %v", err)
	}
}
