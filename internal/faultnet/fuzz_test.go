package faultnet_test

import (
	"bytes"
	"net"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"spidercache/internal/faultnet"
	"spidercache/internal/kvserver"
)

// fuzzCase numbers fuzz executions so each case works on a fresh key: the
// kvserver instance is shared across cases, and a stale value from an
// earlier case must not masquerade as a torn write.
var fuzzCase atomic.Int64

// FuzzClientFraming drives the kvserver request/reply protocol through a
// fault-injecting connection and asserts the one invariant that matters:
// faults may surface as errors, but a call that returns err == nil must
// have an exactly correct result. A partial write or short read must never
// silently corrupt a reply.
//
// The fuzzer varies the fault seed, the per-op fault probabilities, and
// the key/value payload, so the corpus explores different interleavings of
// injected faults against protocol state.
func FuzzClientFraming(f *testing.F) {
	srv, err := kvserver.ServeWith("127.0.0.1:0", kvserver.Options{Shards: 4, Capacity: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		//lint:ignore errcheck test cleanup
		srv.Close()
	})

	f.Add(uint64(1), uint16(200), uint16(500), []byte("k0"), []byte("hello"))
	f.Add(uint64(7), uint16(0), uint16(0), []byte("key-long-name"), bytes.Repeat([]byte{0xAB}, 4096))
	f.Add(uint64(42), uint16(1000), uint16(1000), []byte("x"), []byte{})
	f.Add(uint64(9999), uint16(50), uint16(50), []byte("abc"), bytes.Repeat([]byte("v"), 257))

	f.Fuzz(func(t *testing.T, seed uint64, shortMil uint16, partialMil uint16, key []byte, value []byte) {
		// Clamp probabilities to [0, 0.5] so some ops usually get through.
		shortP := float64(shortMil%1000) / 2000
		partialP := float64(partialMil%1000) / 2000

		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		cfg := faultnet.Config{
			Seed:             seed,
			ShortReadProb:    shortP,
			PartialWriteProb: partialP,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		fc := faultnet.Wrap(raw, cfg)
		// ReadTimeout keeps a desynced framing bug from hanging the fuzzer
		// instead of failing it.
		c := kvserver.NewClient(fc, kvserver.DialOptions{
			ReadTimeout:  500 * time.Millisecond,
			WriteTimeout: 500 * time.Millisecond,
		})
		defer c.Close()

		k := sanitizeKey(key) + "-" + strconv.FormatInt(fuzzCase.Add(1), 10)
		// A per-case embedding exercises the binary embedding frame
		// (ESET payload, NGET request) through the same fault stream.
		// NGETs use threshold 0, which the server serves with exact GET
		// semantics — so the Get invariants below apply verbatim and a
		// NEAR reply would itself be a framing bug.
		emb := []float32{float32(seed%97) + 1, float32(len(value)%13) + 1}
		wrote := false
		checkRead := func(got []byte, found bool) {
			if wrote {
				if !found {
					t.Fatalf("read after successful Set: not found (seed=%d)", seed)
				}
				if !bytes.Equal(got, value) {
					t.Fatalf("read returned corrupt value: got %d bytes, want %d (seed=%d)", len(got), len(value), seed)
				}
			} else if found && !bytes.Equal(got, value) {
				// A Set that errored may or may not have landed, but if a
				// value exists it must be the exact payload — never a
				// torn/corrupt one.
				t.Fatalf("read returned torn value after failed Set (seed=%d)", seed)
			}
		}
		for i := 0; i < 12; i++ {
			switch i % 4 {
			case 0:
				if err := c.Set(k, value); err == nil {
					wrote = true
				}
			case 1:
				got, found, err := c.Get(k)
				if err != nil {
					continue // fault surfaced as an error: allowed
				}
				checkRead(got, found)
			case 2:
				// Faults may surface as errors; a clean STORED means the
				// embedding frame survived the wire intact.
				//lint:ignore errcheck fault-injected ESet may fail; framing is checked by the NGet below
				c.ESet(k, emb)
			default:
				got, near, found, err := c.NGet(k, emb, 0)
				if err != nil {
					continue
				}
				if near != nil {
					t.Fatalf("threshold-0 NGet answered NEAR %q (seed=%d)", near.Key, seed)
				}
				checkRead(got, found)
			}
		}
	})
}

// sanitizeKey maps arbitrary fuzz bytes onto the protocol's key alphabet
// (non-empty, no spaces/control chars) so validation rejections don't
// drown out framing coverage.
func sanitizeKey(b []byte) string {
	if len(b) == 0 {
		return "k"
	}
	if len(b) > 64 {
		b = b[:64]
	}
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = 'a' + c%26
	}
	return string(out)
}
