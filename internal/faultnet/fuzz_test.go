package faultnet_test

import (
	"bytes"
	"net"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"spidercache/internal/faultnet"
	"spidercache/internal/kvserver"
)

// fuzzCase numbers fuzz executions so each case works on a fresh key: the
// kvserver instance is shared across cases, and a stale value from an
// earlier case must not masquerade as a torn write.
var fuzzCase atomic.Int64

// FuzzClientFraming drives the kvserver request/reply protocol through a
// fault-injecting connection and asserts the one invariant that matters:
// faults may surface as errors, but a call that returns err == nil must
// have an exactly correct result. A partial write or short read must never
// silently corrupt a reply.
//
// The fuzzer varies the fault seed, the per-op fault probabilities, and
// the key/value payload, so the corpus explores different interleavings of
// injected faults against protocol state.
func FuzzClientFraming(f *testing.F) {
	srv, err := kvserver.ServeWith("127.0.0.1:0", kvserver.Options{Shards: 4, Capacity: 1 << 20})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() {
		//lint:ignore errcheck test cleanup
		srv.Close()
	})

	f.Add(uint64(1), uint16(200), uint16(500), []byte("k0"), []byte("hello"))
	f.Add(uint64(7), uint16(0), uint16(0), []byte("key-long-name"), bytes.Repeat([]byte{0xAB}, 4096))
	f.Add(uint64(42), uint16(1000), uint16(1000), []byte("x"), []byte{})
	f.Add(uint64(9999), uint16(50), uint16(50), []byte("abc"), bytes.Repeat([]byte("v"), 257))

	f.Fuzz(func(t *testing.T, seed uint64, shortMil uint16, partialMil uint16, key []byte, value []byte) {
		// Clamp probabilities to [0, 0.5] so some ops usually get through.
		shortP := float64(shortMil%1000) / 2000
		partialP := float64(partialMil%1000) / 2000

		raw, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		cfg := faultnet.Config{
			Seed:             seed,
			ShortReadProb:    shortP,
			PartialWriteProb: partialP,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		fc := faultnet.Wrap(raw, cfg)
		// ReadTimeout keeps a desynced framing bug from hanging the fuzzer
		// instead of failing it.
		c := kvserver.NewClient(fc, kvserver.DialOptions{
			ReadTimeout:  500 * time.Millisecond,
			WriteTimeout: 500 * time.Millisecond,
		})
		defer c.Close()

		k := sanitizeKey(key) + "-" + strconv.FormatInt(fuzzCase.Add(1), 10)
		wrote := false
		for i := 0; i < 8; i++ {
			if i%2 == 0 {
				if err := c.Set(k, value); err == nil {
					wrote = true
				}
				continue
			}
			got, found, err := c.Get(k)
			if err != nil {
				continue // fault surfaced as an error: allowed
			}
			if wrote {
				if !found {
					t.Fatalf("Get after successful Set: not found (seed=%d)", seed)
				}
				if !bytes.Equal(got, value) {
					t.Fatalf("Get returned corrupt value: got %d bytes, want %d (seed=%d)", len(got), len(value), seed)
				}
			} else if found && !bytes.Equal(got, value) {
				// A Set that errored may or may not have landed, but if a
				// value exists it must be the exact payload — never a
				// torn/corrupt one.
				t.Fatalf("Get returned torn value after failed Set (seed=%d)", seed)
			}
		}
	})
}

// sanitizeKey maps arbitrary fuzz bytes onto the protocol's key alphabet
// (non-empty, no spaces/control chars) so validation rejections don't
// drown out framing coverage.
func sanitizeKey(b []byte) string {
	if len(b) == 0 {
		return "k"
	}
	if len(b) > 64 {
		b = b[:64]
	}
	out := make([]byte, len(b))
	for i, c := range b {
		out[i] = 'a' + c%26
	}
	return string(out)
}
