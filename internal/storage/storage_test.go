package storage

import (
	"testing"
	"time"

	"spidercache/internal/xrand"
)

func noJitter() Params {
	p := DefaultParams()
	p.JitterFrac = 0
	return p
}

func TestValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.BaseLatency = -1 },
		func(p *Params) { p.Bandwidth = 0 },
		func(p *Params) { p.JitterFrac = 1.0 },
		func(p *Params) { p.JitterFrac = -0.1 },
		func(p *Params) { p.HitLatency = -1 },
		func(p *Params) { p.MemBandwidth = 0 },
	}
	for i, mutate := range bad {
		p := DefaultParams()
		mutate(&p)
		if _, err := New(p, xrand.New(1)); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(DefaultParams(), nil); err == nil {
		t.Error("nil rng accepted")
	}
}

func TestRemoteCostModel(t *testing.T) {
	s, err := New(noJitter(), xrand.New(1))
	if err != nil {
		t.Fatal(err)
	}
	small := s.FetchRemote(1 << 10)
	large := s.FetchRemote(1 << 20)
	if large <= small {
		t.Fatalf("larger payload not slower: %v vs %v", large, small)
	}
	if small < s.Params().BaseLatency {
		t.Fatalf("fetch %v below base latency %v", small, s.Params().BaseLatency)
	}
}

func TestMemoryMuchFasterThanRemote(t *testing.T) {
	s, _ := New(noJitter(), xrand.New(1))
	remote := s.FetchRemote(3 << 10)
	memory := s.FetchMemory(3 << 10)
	if remote < 20*memory {
		t.Fatalf("remote/memory ratio too small: %v vs %v", remote, memory)
	}
}

func TestJitterBounds(t *testing.T) {
	p := DefaultParams()
	p.JitterFrac = 0.1
	s, _ := New(p, xrand.New(2))
	base := p.BaseLatency + time.Duration(float64(3<<10)/p.Bandwidth*float64(time.Second))
	lo := time.Duration(float64(base) * 0.9)
	hi := time.Duration(float64(base) * 1.1)
	for i := 0; i < 500; i++ {
		d := s.FetchRemote(3 << 10)
		if d < lo-time.Microsecond || d > hi+time.Microsecond {
			t.Fatalf("jittered fetch %v outside [%v,%v]", d, lo, hi)
		}
	}
}

func TestCounters(t *testing.T) {
	s, _ := New(noJitter(), xrand.New(1))
	s.FetchRemote(100)
	s.FetchRemote(200)
	s.FetchMemory(50)
	r, m := s.RemoteStats(), s.MemoryStats()
	if r.Requests != 2 || r.Bytes != 300 {
		t.Fatalf("remote stats %+v", r)
	}
	if m.Requests != 1 || m.Bytes != 50 {
		t.Fatalf("memory stats %+v", m)
	}
	if r.Time <= 0 || m.Time <= 0 {
		t.Fatal("time counters not accumulated")
	}
	s.ResetStats()
	if s.RemoteStats().Requests != 0 || s.MemoryStats().Bytes != 0 {
		t.Fatal("ResetStats incomplete")
	}
}

func TestDefaultCalibration(t *testing.T) {
	// The documented calibration: a CIFAR-like 3 KiB remote fetch costs
	// about 2 ms; an in-memory hit costs ~10 µs.
	s, _ := New(noJitter(), xrand.New(1))
	remote := s.FetchRemote(3 << 10)
	if remote < time.Millisecond || remote > 5*time.Millisecond {
		t.Fatalf("3KiB remote fetch = %v, want ~2ms", remote)
	}
	mem := s.FetchMemory(3 << 10)
	if mem > 100*time.Microsecond {
		t.Fatalf("3KiB memory hit = %v, want ~10µs", mem)
	}
}
