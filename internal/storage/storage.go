// Package storage simulates the remote persistent store (the paper's
// NFS-over-10GbE setup) that training data is fetched from on a cache miss,
// and the in-memory cache tier (the paper's Redis) that serves hits.
//
// Fetch costs are pure durations charged to the trainer's virtual clock:
//
//	remote miss: BaseLatency + payload/Bandwidth (+ deterministic jitter)
//	memory hit:  HitLatency  + payload/MemBandwidth
//
// The simulator also keeps byte/request counters so experiments can report
// I/O volumes alongside hit ratios.
package storage

import (
	"fmt"
	"time"

	"spidercache/internal/xrand"
)

// Params configures the storage cost model. Defaults (see DefaultParams)
// approximate the paper's testbed: a dataset on NFS reached over a 10 Gbps
// datacenter network, with Redis serving in-memory hits.
type Params struct {
	BaseLatency  time.Duration // per-request remote latency floor
	Bandwidth    float64       // remote bytes per second
	JitterFrac   float64       // +/- fraction of remote cost, deterministic RNG
	HitLatency   time.Duration // per-request in-memory latency
	MemBandwidth float64       // in-memory bytes per second
}

// DefaultParams returns the calibrated cost model used by the experiments.
// With CIFAR-like 3 KiB payloads a remote fetch costs ≈ 2.1 ms and a memory
// hit ≈ 12 µs, making data loading dominate epoch time exactly as the
// paper's Fig 3(a) reports (>60% share uncached).
func DefaultParams() Params {
	return Params{
		BaseLatency:  2 * time.Millisecond,
		Bandwidth:    64 << 20, // 64 MiB/s effective per-stream NFS throughput
		JitterFrac:   0.10,
		HitLatency:   10 * time.Microsecond,
		MemBandwidth: 8 << 30, // 8 GiB/s memory-tier copy
	}
}

// Validate reports a descriptive error for unusable parameters.
func (p Params) Validate() error {
	switch {
	case p.BaseLatency < 0:
		return fmt.Errorf("storage: BaseLatency must be >= 0, got %v", p.BaseLatency)
	case p.Bandwidth <= 0:
		return fmt.Errorf("storage: Bandwidth must be positive, got %g", p.Bandwidth)
	case p.JitterFrac < 0 || p.JitterFrac >= 1:
		return fmt.Errorf("storage: JitterFrac must be in [0,1), got %g", p.JitterFrac)
	case p.HitLatency < 0:
		return fmt.Errorf("storage: HitLatency must be >= 0, got %v", p.HitLatency)
	case p.MemBandwidth <= 0:
		return fmt.Errorf("storage: MemBandwidth must be positive, got %g", p.MemBandwidth)
	}
	return nil
}

// Stats aggregates traffic counters for one tier.
type Stats struct {
	Requests int64
	Bytes    int64
	Time     time.Duration
}

// Store is the metered storage simulator.
type Store struct {
	params Params
	rng    *xrand.Rand

	remote Stats
	memory Stats
}

// New builds a Store; rng drives deterministic fetch jitter and must not be
// shared with other components.
func New(params Params, rng *xrand.Rand) (*Store, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if rng == nil {
		return nil, fmt.Errorf("storage: rng must not be nil")
	}
	return &Store{params: params, rng: rng}, nil
}

// FetchRemote returns the simulated cost of reading size bytes from the
// remote store and records it.
func (s *Store) FetchRemote(size int) time.Duration {
	d := s.params.BaseLatency + time.Duration(float64(size)/s.params.Bandwidth*float64(time.Second))
	if j := s.params.JitterFrac; j > 0 {
		d = time.Duration(float64(d) * (1 + (s.rng.Float64()*2-1)*j))
	}
	s.remote.Requests++
	s.remote.Bytes += int64(size)
	s.remote.Time += d
	return d
}

// FetchMemory returns the simulated cost of serving size bytes from the
// in-memory cache tier and records it.
func (s *Store) FetchMemory(size int) time.Duration {
	d := s.params.HitLatency + time.Duration(float64(size)/s.params.MemBandwidth*float64(time.Second))
	s.memory.Requests++
	s.memory.Bytes += int64(size)
	s.memory.Time += d
	return d
}

// RemoteStats returns cumulative remote-tier counters.
func (s *Store) RemoteStats() Stats { return s.remote }

// MemoryStats returns cumulative memory-tier counters.
func (s *Store) MemoryStats() Stats { return s.memory }

// ResetStats zeroes all counters (the cost model is unchanged).
func (s *Store) ResetStats() {
	s.remote = Stats{}
	s.memory = Stats{}
}

// Params returns the cost model in use.
func (s *Store) Params() Params { return s.params }
