package telemetry

import (
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines, perG = 32, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Get-or-create from every goroutine: the getter itself must
			// be race-free, not just the instrument.
			c := reg.Counter("reqs_total", Labels{"source": "cache"})
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	got := reg.Counter("reqs_total", Labels{"source": "cache"}).Value()
	if got != goroutines*perG {
		t.Fatalf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeConcurrentAdd(t *testing.T) {
	reg := NewRegistry()
	g := reg.Gauge("level", nil)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				g.Add(1)
				g.Add(-0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := g.Value(), 16*1000*0.5; math.Abs(got-want) > 1e-6 {
		t.Fatalf("gauge = %v, want %v", got, want)
	}
	g.Set(-3.25)
	if g.Value() != -3.25 {
		t.Fatalf("Set: got %v", g.Value())
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat_seconds", nil)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(base float64) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(base + float64(j))
			}
		}(float64(i))
	}
	wg.Wait()
	if h.Count() != 8*500 {
		t.Fatalf("count = %d, want %d", h.Count(), 8*500)
	}
}

// oracleQuantile is the independent sorted-slice reference: nearest rank,
// element ceil(q*n)-1 of the ascending order.
func oracleQuantile(xs []float64, q float64) float64 {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	idx := int(math.Ceil(q*float64(len(s)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(s) {
		idx = len(s) - 1
	}
	return s[idx]
}

func TestHistogramQuantileAgainstOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, n := range []int{1, 2, 5, 100, 1000, DefaultWindow} {
		h := newHistogram(DefaultWindow)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 100
			h.Observe(xs[i])
		}
		for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0} {
			got, want := h.Quantile(q), oracleQuantile(xs, q)
			if got != want {
				t.Fatalf("n=%d q=%v: got %v, want %v", n, q, got, want)
			}
		}
	}
}

func TestHistogramWindowEviction(t *testing.T) {
	const win = 64
	h := newHistogram(win)
	total := 10 * win
	for i := 0; i < total; i++ {
		h.Observe(float64(i))
	}
	// Window holds the last 64 observations: 576..639.
	tail := make([]float64, win)
	for i := range tail {
		tail[i] = float64(total - win + i)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		if got, want := h.Quantile(q), oracleQuantile(tail, q); got != want {
			t.Fatalf("q=%v: got %v, want %v", q, got, want)
		}
	}
	if h.Count() != int64(total) {
		t.Fatalf("cumulative count %d, want %d", h.Count(), total)
	}
	snap := h.Snapshot()
	if snap.Min != tail[0] || snap.Max != tail[win-1] {
		t.Fatalf("snapshot min/max = %v/%v, want %v/%v", snap.Min, snap.Max, tail[0], tail[win-1])
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	h := newHistogram(8)
	snap := h.Snapshot()
	if snap != (HistogramSnapshot{}) {
		t.Fatalf("empty snapshot not zero: %+v", snap)
	}
	if !math.IsNaN(h.Quantile(0.5)) {
		t.Fatalf("empty quantile = %v, want NaN", h.Quantile(0.5))
	}
}

func TestPrometheusExposition(t *testing.T) {
	reg := NewRegistry()
	reg.Describe("lookups_total", "serving-tier lookups")
	reg.Counter("lookups_total", Labels{"source": "cache"}).Add(3)
	reg.Counter("lookups_total", Labels{"source": "miss"}).Inc()
	reg.Gauge("imp_ratio", nil).Set(0.875)
	h := reg.Histogram("fetch_seconds", nil)
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i) / 1000)
	}
	text := reg.Prometheus()

	for _, want := range []string{
		"# HELP lookups_total serving-tier lookups\n",
		"# TYPE lookups_total counter\n",
		`lookups_total{source="cache"} 3` + "\n",
		`lookups_total{source="miss"} 1` + "\n",
		"# TYPE imp_ratio gauge\n",
		"imp_ratio 0.875\n",
		"# TYPE fetch_seconds summary\n",
		"p50/p95/p99", // default histogram HELP advertises quantiles
		`fetch_seconds{quantile="0.5"} 0.05` + "\n",
		`fetch_seconds{quantile="0.95"} 0.095` + "\n",
		`fetch_seconds{quantile="0.99"} 0.099` + "\n",
		"fetch_seconds_count 100\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("weird_total", Labels{"path": `a"b\c` + "\nd"}).Inc()
	text := reg.Prometheus()
	want := `weird_total{path="a\"b\\c\nd"} 1`
	if !strings.Contains(text, want) {
		t.Fatalf("exposition missing %q:\n%s", want, text)
	}
}

func TestSnapshotJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("lookups_total", Labels{"source": "substitute"}).Add(7)
	reg.Gauge("score_std", nil).Set(1.5)
	reg.Histogram("op_seconds", Labels{"op": "get"}).Observe(0.25)

	var b strings.Builder
	if err := reg.WriteJSON(&b); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(b.String()), &snap); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if snap.Counters[`lookups_total{source="substitute"}`] != 7 {
		t.Fatalf("counter missing from snapshot: %+v", snap.Counters)
	}
	if snap.Gauges["score_std"] != 1.5 {
		t.Fatalf("gauge missing from snapshot: %+v", snap.Gauges)
	}
	hs, ok := snap.Histograms[`op_seconds{op="get"}`]
	if !ok || hs.Count != 1 || hs.P50 != 0.25 || hs.P99 != 0.25 {
		t.Fatalf("histogram snapshot wrong: %+v", snap.Histograms)
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var reg *Registry
	reg.Counter("a_total", nil).Inc()
	reg.Gauge("g", nil).Set(1)
	reg.Histogram("h_seconds", nil).Observe(2)
	reg.Describe("a_total", "ignored")
	if got := reg.Prometheus(); got != "" {
		t.Fatalf("nil exposition = %q, want empty", got)
	}
	snap := reg.Snapshot()
	if len(snap.Counters)+len(snap.Gauges)+len(snap.Histograms) != 0 {
		t.Fatalf("nil snapshot not empty: %+v", snap)
	}
	if reg.Families() != nil {
		t.Fatalf("nil Families = %v, want nil", reg.Families())
	}
}

func TestGetOrCreateIdempotent(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("x_total", Labels{"k": "v"})
	b := reg.Counter("x_total", Labels{"k": "v"})
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	if c := reg.Counter("x_total", Labels{"k": "w"}); c == a {
		t.Fatal("distinct labels shared an instrument")
	}
}

func TestKindConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("dual", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind conflict")
		}
	}()
	reg.Gauge("dual", nil)
}

func TestCounterIgnoresNegativeAdd(t *testing.T) {
	var c Counter
	c.Add(5)
	c.Add(-3)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}
