package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4). Counters and gauges become single samples;
// histograms are rendered as summaries with p50/p95/p99 quantile samples
// over the sliding window plus cumulative _sum and _count. A nil registry
// writes nothing.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	var lastFamily string
	for _, s := range r.snapshotSeries() {
		if s.name != lastFamily {
			lastFamily = s.name
			help := r.helpFor(s.name)
			if help == "" && s.kind == kindHistogram {
				help = "sliding-window latency summary (p50/p95/p99)"
			}
			if help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", s.name, escapeHelp(help)); err != nil {
					return err
				}
			}
			typ := s.kind.String()
			if s.kind == kindHistogram {
				typ = "summary"
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", s.name, typ); err != nil {
				return err
			}
		}
		if err := writeSeries(w, s); err != nil {
			return err
		}
	}
	return nil
}

// Prometheus returns the text exposition as a string.
func (r *Registry) Prometheus() string {
	var b strings.Builder
	r.WritePrometheus(&b) // strings.Builder never errors
	return b.String()
}

func writeSeries(w io.Writer, s *series) error {
	switch s.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %d\n", s.id(), s.counter.Value())
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", s.id(), formatFloat(s.gauge.Value()))
		return err
	case kindHistogram:
		snap := s.hist.Snapshot()
		for _, qv := range []struct {
			q string
			v float64
		}{{"0.5", snap.P50}, {"0.95", snap.P95}, {"0.99", snap.P99}} {
			if _, err := fmt.Fprintf(w, "%s %s\n", withLabel(s, "quantile", qv.q), formatFloat(qv.v)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", suffixed(s, "_sum"), formatFloat(snap.Sum)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", suffixed(s, "_count"), snap.Count)
		return err
	}
	return nil
}

// withLabel renders the series id with one extra label appended.
func withLabel(s *series, key, value string) string {
	extra := key + `="` + escapeLabelValue(value) + `"`
	if s.labels == "" {
		return s.name + "{" + extra + "}"
	}
	return s.name + "{" + s.labels + "," + extra + "}"
}

// suffixed renders the series id with a name suffix (for _sum/_count).
func suffixed(s *series, suffix string) string {
	if s.labels == "" {
		return s.name + suffix
	}
	return s.name + suffix + "{" + s.labels + "}"
}

func formatFloat(v float64) string {
	if math.IsNaN(v) {
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Snapshot is a point-in-time JSON-friendly view of a registry. Map keys
// are full series identities (`name{label="value"}`).
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every registered series. A nil registry yields an
// empty snapshot.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return snap
	}
	for _, s := range r.snapshotSeries() {
		switch s.kind {
		case kindCounter:
			snap.Counters[s.id()] = s.counter.Value()
		case kindGauge:
			snap.Gauges[s.id()] = s.gauge.Value()
		case kindHistogram:
			snap.Histograms[s.id()] = s.hist.Snapshot()
		}
	}
	return snap
}

// WriteJSON writes the snapshot as indented JSON (map keys sorted by
// encoding/json, so output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// Families lists the distinct family names registered, sorted.
func (r *Registry) Families() []string {
	if r == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, s := range r.snapshotSeries() {
		if !seen[s.name] {
			seen[s.name] = true
			out = append(out, s.name)
		}
	}
	sort.Strings(out)
	return out
}
