// Package telemetry is the repository's dependency-free metrics substrate:
// a registry of named, optionally labeled instruments — atomic counters,
// float gauges and sliding-window histograms with p50/p95/p99 quantiles —
// plus Prometheus-style text exposition and a JSON snapshot (expose.go).
//
// Design points:
//
//   - All instruments are safe for concurrent use. Counters and gauges are
//     single atomic words; histograms serialise observations behind a mutex
//     over a fixed-size ring (the sliding window).
//   - Getters are get-or-create and idempotent: calling Counter with the
//     same name+labels returns the same instrument, so call sites never
//     need registration ceremony.
//   - A nil *Registry is valid everywhere and hands out shared no-op
//     instruments, so instrumented packages take an optional registry
//     without guarding every record site.
//
// Series identity is Prometheus-style: a family name plus a sorted label
// set, rendered as `name{k1="v1",k2="v2"}`.
package telemetry

import (
	"fmt"
	"math"
	"regexp"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels is an unordered label set attached to one series of a family.
// Nil means an unlabeled series.
type Labels map[string]string

// DefaultWindow is the histogram sliding-window size used by
// Registry.Histogram.
const DefaultWindow = 1024

var nameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// kind discriminates instrument types within the registry.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "unknown"
	}
}

// Counter is a monotonically increasing integer metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters are monotonic).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a float64 metric that can go up and down.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (lock-free compare-and-swap loop).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram records observations into a fixed-size sliding window and
// reports quantiles over the most recent window alongside cumulative
// count/sum. Quantiles use the nearest-rank definition on the sorted
// window: q maps to element ceil(q·n)−1 of the ascending order.
type Histogram struct {
	mu     sync.Mutex
	window []float64 // ring buffer of the last len(window) observations
	next   int       // next write position
	n      int       // valid entries in window (≤ len(window))
	count  int64     // cumulative observation count
	sum    float64   // cumulative observation sum
}

func newHistogram(window int) *Histogram {
	if window < 1 {
		window = DefaultWindow
	}
	return &Histogram{window: make([]float64, window)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	h.window[h.next] = v
	h.next = (h.next + 1) % len(h.window)
	if h.n < len(h.window) {
		h.n++
	}
	h.count++
	h.sum += v
	h.mu.Unlock()
}

// Count returns the cumulative number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the cumulative sum of observations.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Quantile returns the q-quantile (0 < q ≤ 1) over the sliding window,
// or NaN when no observations have been recorded.
func (h *Histogram) Quantile(q float64) float64 {
	return quantile(h.windowCopy(), q)
}

// windowCopy snapshots the current window contents (unsorted).
func (h *Histogram) windowCopy() []float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]float64, h.n)
	if h.n == len(h.window) {
		copy(out, h.window)
	} else {
		copy(out, h.window[:h.n])
	}
	return out
}

// quantile computes the nearest-rank q-quantile of xs (destructive: sorts).
func quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	sort.Float64s(xs)
	if q <= 0 {
		return xs[0]
	}
	if q >= 1 {
		return xs[len(xs)-1]
	}
	idx := int(math.Ceil(q*float64(len(xs)))) - 1
	if idx < 0 {
		idx = 0
	}
	return xs[idx]
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot returns cumulative count/sum plus min/max and p50/p95/p99 over
// the sliding window. Quantile fields are NaN-free: an empty histogram
// snapshots as all zeros.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	xs := make([]float64, h.n)
	if h.n == len(h.window) {
		copy(xs, h.window)
	} else {
		copy(xs, h.window[:h.n])
	}
	snap := HistogramSnapshot{Count: h.count, Sum: h.sum}
	h.mu.Unlock()

	if len(xs) == 0 {
		return snap
	}
	sort.Float64s(xs)
	snap.Min = xs[0]
	snap.Max = xs[len(xs)-1]
	rank := func(q float64) float64 {
		idx := int(math.Ceil(q*float64(len(xs)))) - 1
		if idx < 0 {
			idx = 0
		}
		return xs[idx]
	}
	snap.P50 = rank(0.50)
	snap.P95 = rank(0.95)
	snap.P99 = rank(0.99)
	return snap
}

// series is one registered instrument.
type series struct {
	name   string
	labels string // canonical sorted `k1="v1",k2="v2"` form ("" if none)
	kind   kind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// id returns the full series identity, `name` or `name{labels}`.
func (s *series) id() string {
	if s.labels == "" {
		return s.name
	}
	return s.name + "{" + s.labels + "}"
}

// Registry holds a process's instruments. The zero value is NOT usable —
// call NewRegistry — but a nil *Registry is: every getter on nil returns a
// shared unregistered no-op instrument.
type Registry struct {
	mu     sync.RWMutex
	byID   map[string]*series
	help   map[string]string // family name -> help text
	sorted []*series         // insertion order; exposition re-sorts
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]*series), help: make(map[string]string)}
}

// Shared no-op instruments handed out by a nil registry. They are real,
// functioning instruments — just not attached to any exposition.
var (
	nopCounter   = &Counter{}
	nopGauge     = &Gauge{}
	nopHistogram = newHistogram(1)
)

// Describe sets the help text emitted for a family in the Prometheus
// exposition. No-op on a nil registry.
func (r *Registry) Describe(name, help string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.help[name] = help
	r.mu.Unlock()
}

// Counter returns the counter for name+labels, creating it on first use.
// Panics if the series already exists with a different kind or the name is
// invalid. On a nil registry it returns a shared no-op counter.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nopCounter
	}
	return r.lookup(name, labels, kindCounter).counter
}

// Gauge returns the gauge for name+labels, creating it on first use.
// On a nil registry it returns a shared no-op gauge.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nopGauge
	}
	return r.lookup(name, labels, kindGauge).gauge
}

// Histogram returns the sliding-window histogram for name+labels with the
// DefaultWindow size, creating it on first use. On a nil registry it
// returns a shared no-op histogram.
func (r *Registry) Histogram(name string, labels Labels) *Histogram {
	return r.HistogramWindow(name, DefaultWindow, labels)
}

// HistogramWindow is Histogram with an explicit sliding-window size; the
// window argument only applies on first creation.
func (r *Registry) HistogramWindow(name string, window int, labels Labels) *Histogram {
	if r == nil {
		return nopHistogram
	}
	return r.lookupHist(name, labels, window).hist
}

func (r *Registry) lookup(name string, labels Labels, k kind) *series {
	return r.getOrCreate(name, labels, k, DefaultWindow)
}

func (r *Registry) lookupHist(name string, labels Labels, window int) *series {
	return r.getOrCreate(name, labels, kindHistogram, window)
}

func (r *Registry) getOrCreate(name string, labels Labels, k kind, window int) *series {
	ls := canonLabels(labels)
	id := name
	if ls != "" {
		id = name + "{" + ls + "}"
	}
	r.mu.RLock()
	s, ok := r.byID[id]
	r.mu.RUnlock()
	if ok {
		if s.kind != k {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", id, s.kind, k))
		}
		return s
	}
	if !nameRE.MatchString(name) {
		panic(fmt.Sprintf("telemetry: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if s, ok := r.byID[id]; ok { // lost the creation race
		if s.kind != k {
			panic(fmt.Sprintf("telemetry: %s registered as %s, requested as %s", id, s.kind, k))
		}
		return s
	}
	s = &series{name: name, labels: ls, kind: k}
	switch k {
	case kindCounter:
		s.counter = &Counter{}
	case kindGauge:
		s.gauge = &Gauge{}
	case kindHistogram:
		s.hist = newHistogram(window)
	}
	r.byID[id] = s
	r.sorted = append(r.sorted, s)
	return s
}

// canonLabels renders labels in sorted `k1="v1",k2="v2"` form with
// Prometheus escaping of values.
func canonLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		if !nameRE.MatchString(k) {
			panic(fmt.Sprintf("telemetry: invalid label name %q", k))
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(labels[k]))
		b.WriteByte('"')
	}
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// snapshotSeries returns the registered series sorted by family name then
// label string, for deterministic exposition.
func (r *Registry) snapshotSeries() []*series {
	r.mu.RLock()
	out := make([]*series, len(r.sorted))
	copy(out, r.sorted)
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].name != out[j].name {
			return out[i].name < out[j].name
		}
		return out[i].labels < out[j].labels
	})
	return out
}

func (r *Registry) helpFor(name string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.help[name]
}
