package epoch

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPinBlocksReclaim(t *testing.T) {
	r := New()
	s := r.Pin()
	e := r.Retire()
	if r.Safe(e) {
		t.Fatal("Safe(e) true with a reader pinned at e")
	}
	s.Unpin()
	if !r.Safe(e) {
		t.Fatal("Safe(e) false after the only reader unpinned")
	}
}

func TestLateReaderDoesNotBlockOldRetirement(t *testing.T) {
	r := New()
	e := r.Retire()
	s := r.Pin() // pinned at e+1: entered after the retirement
	defer s.Unpin()
	if !r.Safe(e) {
		t.Fatal("reader pinned after Retire blocked the old retirement")
	}
	if r.Safe(r.Retire()) {
		t.Fatal("reader pinned at the new epoch did not block the new retirement")
	}
}

func TestSlotReuse(t *testing.T) {
	r := New()
	a := r.Pin()
	a.Unpin()
	b := r.Pin()
	b.Unpin()
	if a != b {
		t.Fatal("sequential Pin did not reuse the freed slot")
	}
	if n := len(*r.slots.Load()); n != 1 {
		t.Fatalf("registry grew to %d slots under a single reader", n)
	}
}

func TestRegistryBoundedByConcurrency(t *testing.T) {
	r := New()
	const readers = 8
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s := r.Pin()
				s.Unpin()
			}
		}()
	}
	wg.Wait()
	if n := len(*r.slots.Load()); n > readers {
		t.Fatalf("registry has %d slots for %d concurrent readers", n, readers)
	}
	if got := r.Readers(); got != 0 {
		t.Fatalf("%d readers still pinned after all unpinned", got)
	}
}

// TestGraceProtectsRecycledBytes is the protocol in miniature: writers
// publish values into one of two buffers, retire the other, and overwrite
// it only once Safe — while readers continuously validate that the bytes
// they loaded under a pin are internally consistent. Run under -race this
// also proves the happens-before edges are the ones the package documents.
func TestGraceProtectsRecycledBytes(t *testing.T) {
	r := New()
	const bufLen = 64
	type loc struct{ b []byte }
	bufs := [2][]byte{make([]byte, bufLen), make([]byte, bufLen)}
	var cur atomic.Pointer[loc]
	fill := func(b []byte, v byte) {
		for i := range b {
			b[i] = v
		}
	}
	fill(bufs[0], 1)
	cur.Store(&loc{b: bufs[0]})

	stop := make(chan struct{})
	var fail atomic.Bool
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := r.Pin()
				b := cur.Load().b
				v := b[0]
				for i := range b {
					if b[i] != v {
						fail.Store(true)
					}
				}
				s.Unpin()
			}
		}()
	}

	// Writer: flip between buffers, honouring the grace period.
	deadline := time.Now().Add(200 * time.Millisecond)
	active, val := 0, byte(1)
	for time.Now().Before(deadline) {
		next := 1 - active
		val++
		if val == 0 {
			val = 1
		}
		fill(bufs[next], val)
		cur.Store(&loc{b: bufs[next]})
		e := r.Retire()
		for !r.Safe(e) {
			// Spin: readers unpin in nanoseconds.
		}
		// Grace elapsed: the old buffer is provably unobserved; writing
		// garbage into it must be invisible to every validator.
		fill(bufs[active], 0xEE)
		active = next
	}
	close(stop)
	wg.Wait()
	if fail.Load() {
		t.Fatal("a reader observed torn bytes despite the grace period")
	}
}

func BenchmarkPinUnpin(b *testing.B) {
	r := New()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			s := r.Pin()
			s.Unpin()
		}
	})
}
