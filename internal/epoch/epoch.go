// Package epoch implements epoch-based reclamation (EBR): the coordination
// protocol that lets lock-free readers traverse memory a writer wants to
// recycle. Readers bracket each read-side critical section with Pin/Unpin,
// recording the global epoch they entered under; a writer that has removed
// all new paths to a region of memory calls Retire (which advances the
// epoch) and may overwrite the region only once Safe reports that no reader
// pinned at or before the retirement epoch is still active.
//
// The kvserver arena store is the intended client: GET serves value bytes
// straight out of a shard arena without taking the shard mutex, and
// compaction recycles arena chunks. Without a grace period, a recycled
// chunk could be overwritten mid-read, handing a reader torn bytes; with
// one, the protocol is:
//
//	reader                         writer (compaction)
//	------                         -------------------
//	s := r.Pin()                   copy live values to new chunks
//	v := index lookup (atomic)     publish new locations (atomic stores)
//	use v...                       e := r.Retire()        // epoch++
//	s.Unpin()                      ... later, if r.Safe(e): reuse chunks
//
// Safety argument. Go's sync/atomic operations are sequentially consistent,
// so all pins, location stores and the epoch bump order into one total
// order. A reader pinned at epoch <= e may have loaded an old location
// before the writer republished it, so it can legally hold bytes in a
// retired chunk — and Safe(e) reports false until it unpins. A reader
// pinned at epoch > e observed the bump, which the writer performed *after*
// republishing every location; by sequential consistency its subsequent
// index loads see the new locations, so it can never reach the retired
// chunk. Hence once every active slot shows epoch > e, no reader holds or
// can obtain a reference into chunks retired at e. Pin itself closes the
// classic registration race (reader loads epoch e, stalls, writer advances
// and scans, reader publishes e late) by re-checking the epoch after
// publishing its slot and re-publishing until the two agree.
//
// The race detector sees the same argument: the writer's Safe load of a
// slot synchronises with that reader's Unpin store, establishing the
// happens-before edge from the reader's plain loads of chunk bytes to the
// writer's plain stores over them.
//
// Slots are claimed from a grow-only registry by CAS, so Pin allocates only
// when every registered slot is busy — the registry size converges to the
// peak number of concurrent readers and the steady-state Pin/Unpin cost is
// a few atomic operations with zero allocations.
package epoch

import (
	"sync"
	"sync/atomic"
)

// Reclaimer coordinates one population of readers and writers. The zero
// value is not usable; call New.
type Reclaimer struct {
	epoch atomic.Uint64
	slots atomic.Pointer[[]*Slot] // grow-only; swapped under mu
	mu    sync.Mutex
	seq   atomic.Uint32 // rotates the claim scan's start index
}

// Slot is one reader's registration. A Slot is held between Pin and Unpin
// and must not be shared between goroutines while held.
type Slot struct {
	// state is 0 when the slot is free, else the epoch recorded at Pin.
	// Epochs start at 1 so 0 is unambiguous.
	state atomic.Uint64
	// Pad each slot to its own cache line: slots are claimed and released
	// by unrelated goroutines, and sharing a line would turn every
	// Pin/Unpin pair into cross-core traffic on its neighbours.
	_ [56]byte
}

// New returns a Reclaimer with no registered readers.
func New() *Reclaimer {
	r := &Reclaimer{}
	r.epoch.Store(1)
	empty := make([]*Slot, 0)
	r.slots.Store(&empty)
	return r
}

// Pin registers the caller as a reader under the current epoch and returns
// its slot. Every Pin must be paired with Unpin; the protected reads must
// happen between them.
func (r *Reclaimer) Pin() *Slot {
	s := r.claim()
	for {
		e := r.epoch.Load()
		s.state.Store(e)
		// Re-validate: if the epoch moved between the load and the
		// publication, a writer may have scanned the slot while it was
		// still free and concluded the coast was clear. Publishing the
		// *current* epoch (and re-checking) guarantees that by the time
		// Pin returns, either the writer saw us, or we entered after its
		// bump and will only see its republished locations.
		if r.epoch.Load() == e {
			return s
		}
	}
}

// Unpin ends the read-side critical section and frees the slot. A nil
// receiver is a no-op, so callers that only sometimes read under epoch
// protection can thread a nil Slot through the common path.
func (s *Slot) Unpin() {
	if s == nil {
		return
	}
	s.state.Store(0)
}

// claim finds a free registered slot by CAS, registering a new one only
// when all are busy.
func (r *Reclaimer) claim() *Slot {
	slots := *r.slots.Load()
	if n := len(slots); n > 0 {
		start := int(r.seq.Add(1)) % n
		for i := 0; i < n; i++ {
			s := slots[(start+i)%n]
			if s.state.Load() == 0 && s.state.CompareAndSwap(0, claiming) {
				return s
			}
		}
	}
	s := &Slot{}
	s.state.Store(claiming)
	r.mu.Lock()
	old := *r.slots.Load()
	next := make([]*Slot, len(old)+1)
	copy(next, old)
	next[len(old)] = s
	r.slots.Store(&next)
	r.mu.Unlock()
	return s
}

// claiming marks a slot between claim and Pin's epoch publication. It is
// larger than any real epoch a live process reaches, so Safe treats a
// just-claimed slot as "entered after every retirement" — correct, because
// Pin has not yet returned and the claimant cannot have loaded any
// location.
const claiming = ^uint64(0)

// Epoch returns the current epoch (informational; useful in tests).
func (r *Reclaimer) Epoch() uint64 { return r.epoch.Load() }

// Retire advances the epoch and returns the retirement epoch e: memory
// unreachable since before the call may be recycled once Safe(e) reports
// true. The caller must have already unpublished every path to that memory
// (with atomic stores) before calling Retire.
func (r *Reclaimer) Retire() uint64 {
	return r.epoch.Add(1) - 1
}

// Safe reports whether every reader pinned at or before the retirement
// epoch e has unpinned, i.e. whether memory retired at e may be recycled.
func (r *Reclaimer) Safe(e uint64) bool {
	for _, s := range *r.slots.Load() {
		if st := s.state.Load(); st != 0 && st <= e {
			return false
		}
	}
	return true
}

// Readers returns the number of currently pinned readers (informational).
func (r *Reclaimer) Readers() int {
	n := 0
	for _, s := range *r.slots.Load() {
		if s.state.Load() != 0 {
			n++
		}
	}
	return n
}
