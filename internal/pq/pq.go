// Package pq implements Product Quantization (Jégou et al.), the vector
// compression scheme the paper pairs with HNSW to keep the ANN index small
// (its Table 2: ~1000x compression on ImageNet-1K).
//
// A vector of dimension D is split into M contiguous sub-vectors; each
// sub-space is vector-quantised by k-means with K centroids, so a vector is
// stored as M centroid indexes (M bytes when K <= 256). Asymmetric distance
// computation (ADC) estimates Euclidean distances between a raw query and a
// code without decoding.
package pq

import (
	"fmt"
	"math"

	"spidercache/internal/xrand"
)

// Config sizes the quantizer.
type Config struct {
	Subspaces int // M: number of sub-quantizers
	Centroids int // K per subspace; <= 256 so codes fit in bytes
	Iters     int // k-means iterations
	Seed      uint64
}

// DefaultConfig compresses the repository's embedding vectors (dim 32-64) to
// 8 bytes per vector.
func DefaultConfig() Config {
	return Config{Subspaces: 8, Centroids: 256, Iters: 15, Seed: 7}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Subspaces < 1:
		return fmt.Errorf("pq: Subspaces must be >= 1, got %d", c.Subspaces)
	case c.Centroids < 2 || c.Centroids > 256:
		return fmt.Errorf("pq: Centroids must be in [2,256], got %d", c.Centroids)
	case c.Iters < 1:
		return fmt.Errorf("pq: Iters must be >= 1, got %d", c.Iters)
	}
	return nil
}

// Quantizer is a trained product quantizer.
type Quantizer struct {
	cfg    Config
	dim    int
	subDim int
	// codebooks[m] is a (K x subDim) row-major centroid table.
	codebooks [][]float64
}

// Train fits codebooks on the sample vectors. All vectors must share a
// dimensionality divisible by cfg.Subspaces, and there must be at least as
// many training vectors as centroids.
func Train(cfg Config, vectors [][]float64) (*Quantizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if len(vectors) == 0 {
		return nil, fmt.Errorf("pq: no training vectors")
	}
	dim := len(vectors[0])
	if dim%cfg.Subspaces != 0 {
		return nil, fmt.Errorf("pq: dim %d not divisible by %d subspaces", dim, cfg.Subspaces)
	}
	if len(vectors) < cfg.Centroids {
		return nil, fmt.Errorf("pq: %d training vectors < %d centroids", len(vectors), cfg.Centroids)
	}
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("pq: vector %d has dim %d, want %d", i, len(v), dim)
		}
	}
	q := &Quantizer{cfg: cfg, dim: dim, subDim: dim / cfg.Subspaces}
	rng := xrand.New(cfg.Seed)
	q.codebooks = make([][]float64, cfg.Subspaces)
	sub := make([][]float64, len(vectors))
	for m := 0; m < cfg.Subspaces; m++ {
		lo := m * q.subDim
		for i, v := range vectors {
			sub[i] = v[lo : lo+q.subDim]
		}
		q.codebooks[m] = kmeans(sub, cfg.Centroids, cfg.Iters, q.subDim, rng)
	}
	return q, nil
}

// Dim returns the full vector dimensionality the quantizer was trained on.
func (q *Quantizer) Dim() int { return q.dim }

// CodeSize returns the bytes needed to store one encoded vector.
func (q *Quantizer) CodeSize() int { return q.cfg.Subspaces }

// Encode quantises vec into a fresh code of CodeSize bytes.
func (q *Quantizer) Encode(vec []float64) ([]byte, error) {
	if len(vec) != q.dim {
		return nil, fmt.Errorf("pq: encode dim %d, want %d", len(vec), q.dim)
	}
	code := make([]byte, q.cfg.Subspaces)
	for m := range code {
		lo := m * q.subDim
		code[m] = byte(q.nearest(m, vec[lo:lo+q.subDim]))
	}
	return code, nil
}

// Decode reconstructs the centroid approximation of a code.
func (q *Quantizer) Decode(code []byte) ([]float64, error) {
	if len(code) != q.cfg.Subspaces {
		return nil, fmt.Errorf("pq: code size %d, want %d", len(code), q.cfg.Subspaces)
	}
	out := make([]float64, q.dim)
	for m, c := range code {
		cen := q.centroid(m, int(c))
		copy(out[m*q.subDim:], cen)
	}
	return out, nil
}

// ADC returns the asymmetric (query is raw, target is coded) Euclidean
// distance estimate.
func (q *Quantizer) ADC(query []float64, code []byte) (float64, error) {
	if len(query) != q.dim {
		return 0, fmt.Errorf("pq: query dim %d, want %d", len(query), q.dim)
	}
	if len(code) != q.cfg.Subspaces {
		return 0, fmt.Errorf("pq: code size %d, want %d", len(code), q.cfg.Subspaces)
	}
	var s float64
	for m, c := range code {
		cen := q.centroid(m, int(c))
		sub := query[m*q.subDim : (m+1)*q.subDim]
		for j, v := range sub {
			d := v - cen[j]
			s += d * d
		}
	}
	return math.Sqrt(s), nil
}

func (q *Quantizer) centroid(m, k int) []float64 {
	cb := q.codebooks[m]
	return cb[k*q.subDim : (k+1)*q.subDim]
}

func (q *Quantizer) nearest(m int, sub []float64) int {
	cb := q.codebooks[m]
	best, bi := math.Inf(1), 0
	for k := 0; k < q.cfg.Centroids; k++ {
		cen := cb[k*q.subDim : (k+1)*q.subDim]
		var s float64
		for j, v := range sub {
			d := v - cen[j]
			s += d * d
		}
		if s < best {
			best, bi = s, k
		}
	}
	return bi
}

// kmeans runs Lloyd's algorithm with k-means++-style seeding (greedy farthest
// spread from a random start) and returns a (k x dim) row-major table.
func kmeans(points [][]float64, k, iters, dim int, rng *xrand.Rand) []float64 {
	centroids := make([]float64, k*dim)
	// Seed: first centroid random, the rest sampled proportional to squared
	// distance from the nearest chosen centroid.
	chosen := make([]int, 0, k)
	chosen = append(chosen, rng.Intn(len(points)))
	d2 := make([]float64, len(points))
	for i := range d2 {
		d2[i] = sq(points[i], points[chosen[0]])
	}
	for len(chosen) < k {
		var total float64
		for _, d := range d2 {
			total += d
		}
		idx := 0
		if total > 0 {
			target := rng.Float64() * total
			for i, d := range d2 {
				target -= d
				if target <= 0 {
					idx = i
					break
				}
			}
		} else {
			idx = rng.Intn(len(points))
		}
		chosen = append(chosen, idx)
		for i := range d2 {
			if d := sq(points[i], points[idx]); d < d2[i] {
				d2[i] = d
			}
		}
	}
	for c, p := range chosen {
		copy(centroids[c*dim:], points[p])
	}

	assign := make([]int, len(points))
	counts := make([]int, k)
	for it := 0; it < iters; it++ {
		changed := false
		for i, p := range points {
			best, bi := math.Inf(1), 0
			for c := 0; c < k; c++ {
				cen := centroids[c*dim : (c+1)*dim]
				var s float64
				for j, v := range p {
					d := v - cen[j]
					s += d * d
				}
				if s < best {
					best, bi = s, c
				}
			}
			if assign[i] != bi {
				assign[i] = bi
				changed = true
			}
		}
		if !changed && it > 0 {
			break
		}
		for i := range centroids {
			centroids[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			cen := centroids[c*dim : (c+1)*dim]
			for j, v := range p {
				cen[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed empty clusters from a random point.
				copy(centroids[c*dim:(c+1)*dim], points[rng.Intn(len(points))])
				continue
			}
			inv := 1 / float64(counts[c])
			cen := centroids[c*dim : (c+1)*dim]
			for j := range cen {
				cen[j] *= inv
			}
		}
	}
	return centroids
}

func sq(a, b []float64) float64 {
	var s float64
	for i, v := range a {
		d := v - b[i]
		s += d * d
	}
	return s
}
