package pq

import (
	"math"
	"testing"

	"spidercache/internal/xrand"
)

func trainingVecs(n, dim int, seed uint64) [][]float64 {
	rng := xrand.New(seed)
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func smallConfig() Config {
	return Config{Subspaces: 4, Centroids: 16, Iters: 10, Seed: 1}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Subspaces: 0, Centroids: 16, Iters: 5},
		{Subspaces: 4, Centroids: 1, Iters: 5},
		{Subspaces: 4, Centroids: 300, Iters: 5},
		{Subspaces: 4, Centroids: 16, Iters: 0},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(smallConfig(), nil); err == nil {
		t.Error("no training vectors accepted")
	}
	if _, err := Train(smallConfig(), trainingVecs(100, 6, 1)); err == nil {
		t.Error("indivisible dimension accepted")
	}
	if _, err := Train(smallConfig(), trainingVecs(8, 8, 1)); err == nil {
		t.Error("fewer vectors than centroids accepted")
	}
	vecs := trainingVecs(100, 8, 1)
	vecs[50] = vecs[50][:4]
	if _, err := Train(smallConfig(), vecs); err == nil {
		t.Error("ragged vectors accepted")
	}
}

func TestEncodeDecodeRoundtrip(t *testing.T) {
	vecs := trainingVecs(500, 8, 2)
	q, err := Train(smallConfig(), vecs)
	if err != nil {
		t.Fatal(err)
	}
	if q.CodeSize() != 4 || q.Dim() != 8 {
		t.Fatalf("CodeSize=%d Dim=%d", q.CodeSize(), q.Dim())
	}
	var errSum, normSum float64
	for _, v := range vecs[:100] {
		code, err := q.Encode(v)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := q.Decode(code)
		if err != nil {
			t.Fatal(err)
		}
		for j := range v {
			d := v[j] - dec[j]
			errSum += d * d
			normSum += v[j] * v[j]
		}
	}
	if rel := errSum / normSum; rel > 0.5 {
		t.Fatalf("relative reconstruction error %.3f too high", rel)
	}
}

func TestADCApproximatesTrueDistance(t *testing.T) {
	vecs := trainingVecs(500, 8, 3)
	q, _ := Train(smallConfig(), vecs)
	query := trainingVecs(1, 8, 4)[0]
	var relErrSum float64
	n := 0
	for _, v := range vecs[:100] {
		code, _ := q.Encode(v)
		adc, err := q.ADC(query, code)
		if err != nil {
			t.Fatal(err)
		}
		var s float64
		for j := range v {
			d := query[j] - v[j]
			s += d * d
		}
		truth := math.Sqrt(s)
		if truth > 0.5 {
			relErrSum += math.Abs(adc-truth) / truth
			n++
		}
	}
	if rel := relErrSum / float64(n); rel > 0.35 {
		t.Fatalf("mean ADC relative error %.3f too high", rel)
	}
}

func TestADCPreservesRanking(t *testing.T) {
	// Near points must rank below far points under ADC.
	vecs := trainingVecs(500, 8, 5)
	q, _ := Train(smallConfig(), vecs)
	query := vecs[0]
	near := vecs[0]
	far := make([]float64, 8)
	for j := range far {
		far[j] = query[j] + 10
	}
	nearCode, _ := q.Encode(near)
	farCode, _ := q.Encode(far)
	dn, _ := q.ADC(query, nearCode)
	df, _ := q.ADC(query, farCode)
	if dn >= df {
		t.Fatalf("ADC ranking broken: near %g, far %g", dn, df)
	}
}

func TestEncodeDecodeValidation(t *testing.T) {
	q, _ := Train(smallConfig(), trainingVecs(200, 8, 6))
	if _, err := q.Encode(make([]float64, 7)); err == nil {
		t.Error("wrong-dim encode accepted")
	}
	if _, err := q.Decode(make([]byte, 3)); err == nil {
		t.Error("wrong-size decode accepted")
	}
	if _, err := q.ADC(make([]float64, 7), make([]byte, 4)); err == nil {
		t.Error("wrong-dim ADC query accepted")
	}
	if _, err := q.ADC(make([]float64, 8), make([]byte, 5)); err == nil {
		t.Error("wrong-size ADC code accepted")
	}
}

func TestDeterministicTraining(t *testing.T) {
	vecs := trainingVecs(300, 8, 7)
	a, _ := Train(smallConfig(), vecs)
	b, _ := Train(smallConfig(), vecs)
	ca, _ := a.Encode(vecs[3])
	cb, _ := b.Encode(vecs[3])
	for i := range ca {
		if ca[i] != cb[i] {
			t.Fatal("same-seed training produced different codebooks")
		}
	}
}

func TestClusteredDataCompressesWell(t *testing.T) {
	// Vectors drawn from 16 tight clusters should be near-exactly
	// representable by 16 centroids per subspace.
	rng := xrand.New(8)
	centers := trainingVecs(16, 8, 9)
	vecs := make([][]float64, 400)
	for i := range vecs {
		c := centers[rng.Intn(16)]
		v := make([]float64, 8)
		for j := range v {
			v[j] = c[j] + rng.NormFloat64()*0.01
		}
		vecs[i] = v
	}
	q, _ := Train(smallConfig(), vecs)
	var errSum, normSum float64
	for _, v := range vecs[:50] {
		code, _ := q.Encode(v)
		dec, _ := q.Decode(code)
		for j := range v {
			d := v[j] - dec[j]
			errSum += d * d
			normSum += v[j] * v[j]
		}
	}
	if rel := errSum / normSum; rel > 0.05 {
		t.Fatalf("clustered data reconstruction error %.4f, want < 0.05", rel)
	}
}
