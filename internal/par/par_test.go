package par

import (
	"sync/atomic"
	"testing"

	"spidercache/internal/leakcheck"
)

// checkLeaks asserts the test spawns nothing beyond the package's own
// worker pool, whose goroutines intentionally park forever.
func checkLeaks(t *testing.T) {
	leakcheck.Check(t, leakcheck.IgnoreFunc("internal/par.worker"))
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	checkLeaks(t)
	for _, workers := range []int{1, 2, 3, 8, 33} {
		for _, n := range []int{0, 1, 2, 7, 100, 1001} {
			hits := make([]atomic.Int32, n)
			For(workers, n, func(start, end int) {
				if start < 0 || end > n || start >= end {
					t.Errorf("workers=%d n=%d: bad block [%d,%d)", workers, n, start, end)
				}
				for i := start; i < end; i++ {
					hits[i].Add(1)
				}
			})
			for i := range hits {
				if got := hits[i].Load(); got != 1 {
					t.Fatalf("workers=%d n=%d: index %d executed %d times", workers, n, i, got)
				}
			}
		}
	}
}

func TestForBlocksAreContiguousAndOrderedPerWorkerCount(t *testing.T) {
	checkLeaks(t)
	// Block boundaries depend only on (workers, n), never on scheduling.
	n, workers := 103, 4
	var blocks [][2]int
	got := make(chan [2]int, workers)
	For(workers, n, func(start, end int) { got <- [2]int{start, end} })
	close(got)
	for b := range got {
		blocks = append(blocks, b)
	}
	covered := make([]bool, n)
	for _, b := range blocks {
		for i := b[0]; i < b[1]; i++ {
			if covered[i] {
				t.Fatalf("index %d covered twice", i)
			}
			covered[i] = true
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("index %d not covered", i)
		}
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	checkLeaks(t)
	var total atomic.Int64
	For(4, 8, func(start, end int) {
		for i := start; i < end; i++ {
			For(4, 16, func(s, e int) {
				total.Add(int64(e - s))
			})
		}
	})
	if got := total.Load(); got != 8*16 {
		t.Fatalf("nested For executed %d units, want %d", got, 8*16)
	}
}

func TestStatsMonotonic(t *testing.T) {
	checkLeaks(t)
	p0, i0 := Stats()
	For(4, 64, func(start, end int) {})
	p1, i1 := Stats()
	if p1 < p0 || i1 < i0 {
		t.Fatalf("stats went backwards: (%d,%d) -> (%d,%d)", p0, i0, p1, i1)
	}
	if p1-p0+i1-i0 == 0 {
		t.Fatal("no blocks recorded")
	}
}
