// Package par provides the repository's shared CPU worker pool: a small,
// dependency-free fork/join primitive used by the parallel hot paths
// (tensor kernels, semantic-graph batch scoring).
//
// Design points:
//
//   - For splits an index range into contiguous blocks, so callers that
//     partition output rows keep bitwise-identical results regardless of
//     how many workers execute the blocks.
//   - Work is handed to a pool worker only when one is parked and ready
//     (unbuffered channel + non-blocking send); otherwise the block runs
//     inline on the caller. Tasks are therefore never queued, which makes
//     nested or reentrant For calls deadlock-free by construction.
//   - The caller always executes the first block itself, so For never
//     leaves the submitting goroutine idle while workers run.
//   - Pool/inline execution counters are exported for the worker-pool
//     utilisation telemetry recorded by internal/trainer.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// task is one contiguous block of a For call.
type task struct {
	fn         func(start, end int)
	start, end int
	wg         *sync.WaitGroup
}

var (
	poolMu    sync.Mutex
	poolSize  int
	taskCh    = make(chan task) // unbuffered: hand-off only, never queued
	poolRuns  atomic.Int64
	inlineRun atomic.Int64
)

// ensureWorkers grows the pool to at least n parked workers. Workers are
// cheap when idle (a parked goroutine), so the pool only ever grows.
func ensureWorkers(n int) {
	if n < 1 {
		n = 1
	}
	poolMu.Lock()
	for poolSize < n {
		poolSize++
		go worker()
	}
	poolMu.Unlock()
}

func worker() {
	for t := range taskCh {
		t.fn(t.start, t.end)
		poolRuns.Add(1)
		t.wg.Done()
	}
}

// Stats reports how many blocks have been executed by pool workers versus
// inline on the submitting goroutine since process start. The ratio
// pool/(pool+inline) is the pool utilisation exported via telemetry.
func Stats() (pool, inline int64) {
	return poolRuns.Load(), inlineRun.Load()
}

// For executes fn over [0, n) split into at most workers contiguous blocks.
// Blocks run concurrently on pool workers when any are idle; the first block
// (and any block no worker is ready to take) runs on the calling goroutine.
// For returns after every block has completed. workers <= 1 or n <= 1 runs
// serially with no synchronisation.
func For(workers, n int, fn func(start, end int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		fn(0, n)
		return
	}
	ensureWorkers(workers - 1)

	chunk := (n + workers - 1) / workers
	var wg sync.WaitGroup
	for start := chunk; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		select {
		case taskCh <- task{fn: fn, start: start, end: end, wg: &wg}:
		default:
			// No worker parked: run the block on the caller rather than
			// queueing, so nested For calls can never deadlock.
			fn(start, end)
			inlineRun.Add(1)
			wg.Done()
		}
	}
	fn(0, chunk)
	inlineRun.Add(1)
	wg.Wait()
}

// DefaultWorkers returns the default parallel width: the number of CPUs the
// Go runtime will schedule on.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }
