package hnsw

import (
	"sync"
	"testing"

	"spidercache/internal/xrand"
)

// TestConcurrentUpsertSearch stresses the RWMutex contract: writers upsert
// (inserts and in-place updates) while readers run SearchKNN and the other
// read-only accessors. Run under -race this verifies no search touches index
// state mutably and no mutation escapes the exclusive lock.
func TestConcurrentUpsertSearch(t *testing.T) {
	ix, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const (
		dim      = 16
		writers  = 4
		readers  = 4
		nPerGoro = 150
	)
	// Seed a few points so early searches have something to traverse.
	seed := xrand.New(99)
	for i := 0; i < 32; i++ {
		if err := ix.Upsert(i, randomVec(dim, seed)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := xrand.New(uint64(1000 + w))
			for i := 0; i < nPerGoro; i++ {
				// Half fresh inserts, half updates of the seeded range.
				id := 32 + w*nPerGoro + i
				if i%2 == 1 {
					id = i % 32
				}
				if err := ix.Upsert(id, randomVec(dim, rng)); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			rng := xrand.New(uint64(2000 + r))
			for i := 0; i < nPerGoro; i++ {
				q := randomVec(dim, rng)
				res := ix.SearchKNN(q, 8)
				for j := 1; j < len(res); j++ {
					if res[j].Dist < res[j-1].Dist {
						t.Errorf("reader %d: results unsorted", r)
						return
					}
				}
				_ = ix.Len()
				_ = ix.Contains(i % 32)
				_ = ix.Vector(i % 32)
			}
		}(r)
	}
	wg.Wait()

	if got := ix.Len(); got < 32 {
		t.Fatalf("index shrank to %d points", got)
	}
	// The index must still be coherent after the storm.
	res := ix.SearchKNN(randomVec(dim, seed), 10)
	if len(res) == 0 {
		t.Fatal("no results after concurrent stress")
	}
}

func randomVec(dim int, rng *xrand.Rand) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}
