package hnsw

// candidate pairs a node with its distance to the current query.
type candidate struct {
	id   uint32
	dist float64
}

// minHeap orders candidates by ascending distance (closest first).
type minHeap []candidate

func (h *minHeap) push(c candidate) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist <= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *minHeap) pop() candidate {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	h.siftDown(0)
	return top
}

func (h *minHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < n && (*h)[l].dist < (*h)[small].dist {
			small = l
		}
		if r < n && (*h)[r].dist < (*h)[small].dist {
			small = r
		}
		if small == i {
			return
		}
		(*h)[i], (*h)[small] = (*h)[small], (*h)[i]
		i = small
	}
}

// maxHeap orders candidates by descending distance (farthest first); it
// implements the bounded result set of the layer search.
type maxHeap []candidate

func (h *maxHeap) push(c candidate) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if (*h)[parent].dist >= (*h)[i].dist {
			break
		}
		(*h)[parent], (*h)[i] = (*h)[i], (*h)[parent]
		i = parent
	}
}

func (h *maxHeap) pop() candidate {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	h.siftDown(0)
	return top
}

func (h *maxHeap) siftDown(i int) {
	n := len(*h)
	for {
		l, r := 2*i+1, 2*i+2
		big := i
		if l < n && (*h)[l].dist > (*h)[big].dist {
			big = l
		}
		if r < n && (*h)[r].dist > (*h)[big].dist {
			big = r
		}
		if big == i {
			return
		}
		(*h)[i], (*h)[big] = (*h)[big], (*h)[i]
		i = big
	}
}

func (h maxHeap) top() candidate { return h[0] }
