package hnsw

import (
	"math"
	"sort"
	"testing"

	"spidercache/internal/xrand"
)

func randomVecs(n, dim int, seed uint64) [][]float64 {
	rng := xrand.New(seed)
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func bruteKNN(vecs [][]float64, q []float64, k int) []int {
	type pair struct {
		id int
		d  float64
	}
	ps := make([]pair, len(vecs))
	for i, v := range vecs {
		var s float64
		for j := range q {
			d := q[j] - v[j]
			s += d * d
		}
		ps[i] = pair{i, s}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].d < ps[b].d })
	out := make([]int, 0, k)
	for i := 0; i < k && i < len(ps); i++ {
		out = append(out, ps[i].id)
	}
	return out
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{M: 1, EfConstruction: 100, EfSearch: 10},
		{M: 8, EfConstruction: 4, EfSearch: 10},
		{M: 8, EfConstruction: 100, EfSearch: 0},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig()); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyIndex(t *testing.T) {
	ix, _ := New(DefaultConfig())
	if got := ix.SearchKNN([]float64{1, 2}, 5); got != nil {
		t.Fatalf("search on empty index returned %v", got)
	}
	if ix.Len() != 0 || ix.Dim() != 0 || ix.Contains(3) {
		t.Fatal("empty index state wrong")
	}
}

func TestUpsertValidation(t *testing.T) {
	ix, _ := New(DefaultConfig())
	if err := ix.Upsert(0, nil); err == nil {
		t.Fatal("empty vector accepted")
	}
	if err := ix.Upsert(0, []float64{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if err := ix.Upsert(1, []float64{1, 2}); err == nil {
		t.Fatal("dimension mismatch accepted")
	}
}

func TestRecallAgainstBruteForce(t *testing.T) {
	const n, dim, k, queries = 2000, 16, 10, 50
	vecs := randomVecs(n, dim, 1)
	ix, _ := New(DefaultConfig())
	for i, v := range vecs {
		if err := ix.Upsert(i, v); err != nil {
			t.Fatal(err)
		}
	}
	qs := randomVecs(queries, dim, 2)
	var hits, total int
	for _, q := range qs {
		truth := bruteKNN(vecs, q, k)
		truthSet := map[int]bool{}
		for _, id := range truth {
			truthSet[id] = true
		}
		for _, r := range ix.SearchKNN(q, k) {
			if truthSet[r.ID] {
				hits++
			}
		}
		total += k
	}
	recall := float64(hits) / float64(total)
	if recall < 0.9 {
		t.Fatalf("recall@%d = %.3f, want >= 0.9", k, recall)
	}
}

func TestSearchReturnsSortedDistances(t *testing.T) {
	vecs := randomVecs(500, 8, 3)
	ix, _ := New(DefaultConfig())
	for i, v := range vecs {
		ix.Upsert(i, v)
	}
	res := ix.SearchKNN(vecs[7], 20)
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatalf("results unsorted at %d: %v < %v", i, res[i].Dist, res[i-1].Dist)
		}
	}
	if res[0].ID != 7 || res[0].Dist != 0 {
		t.Fatalf("indexed query point not first hit: %+v", res[0])
	}
}

func TestUpdateMovesPoint(t *testing.T) {
	const dim = 8
	vecs := randomVecs(600, dim, 4)
	ix, _ := New(DefaultConfig())
	for i, v := range vecs {
		ix.Upsert(i, v)
	}
	// Move point 5 to a far-away location and verify searches find it there.
	far := make([]float64, dim)
	for j := range far {
		far[j] = 40
	}
	if err := ix.Upsert(5, far); err != nil {
		t.Fatal(err)
	}
	if ix.Len() != 600 {
		t.Fatalf("update changed Len to %d", ix.Len())
	}
	got := ix.Vector(5)
	for j := range far {
		if got[j] != far[j] {
			t.Fatal("stored vector not replaced")
		}
	}
	res := ix.SearchKNN(far, 1)
	if len(res) == 0 || res[0].ID != 5 {
		t.Fatalf("moved point not found at new location: %+v", res)
	}
	// The old location must no longer return point 5 first.
	res = ix.SearchKNN(vecs[5], 3)
	for _, r := range res {
		if r.ID == 5 {
			t.Fatalf("stale location still matches moved point")
		}
	}
}

func TestManyUpdatesKeepRecall(t *testing.T) {
	const n, dim, k = 800, 8, 5
	vecs := randomVecs(n, dim, 5)
	ix, _ := New(DefaultConfig())
	for i, v := range vecs {
		ix.Upsert(i, v)
	}
	// Re-insert every vector with a small perturbation (simulating
	// embedding drift during training).
	rng := xrand.New(6)
	for i := range vecs {
		nv := make([]float64, dim)
		for j := range nv {
			nv[j] = vecs[i][j] + rng.NormFloat64()*0.01
		}
		vecs[i] = nv
		ix.Upsert(i, nv)
	}
	var hits, total int
	for qi := 0; qi < 30; qi++ {
		q := vecs[qi*7%n]
		truth := bruteKNN(vecs, q, k)
		set := map[int]bool{}
		for _, id := range truth {
			set[id] = true
		}
		for _, r := range ix.SearchKNN(q, k) {
			if set[r.ID] {
				hits++
			}
		}
		total += k
	}
	if recall := float64(hits) / float64(total); recall < 0.85 {
		t.Fatalf("recall after updates = %.3f", recall)
	}
}

func TestDistancesAreEuclidean(t *testing.T) {
	ix, _ := New(DefaultConfig())
	ix.Upsert(0, []float64{0, 0})
	ix.Upsert(1, []float64{3, 4})
	res := ix.SearchKNN([]float64{0, 0}, 2)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if math.Abs(res[1].Dist-5) > 1e-12 {
		t.Fatalf("distance %g, want 5", res[1].Dist)
	}
}

func TestDeterminism(t *testing.T) {
	build := func() *Index {
		ix, _ := New(DefaultConfig())
		for i, v := range randomVecs(300, 8, 7) {
			ix.Upsert(i, v)
		}
		return ix
	}
	a, b := build(), build()
	q := randomVecs(1, 8, 8)[0]
	ra, rb := a.SearchKNN(q, 10), b.SearchKNN(q, 10)
	if len(ra) != len(rb) {
		t.Fatal("result lengths differ")
	}
	for i := range ra {
		if ra[i] != rb[i] {
			t.Fatalf("result %d differs: %+v vs %+v", i, ra[i], rb[i])
		}
	}
}

func TestKLargerThanIndex(t *testing.T) {
	ix, _ := New(DefaultConfig())
	for i, v := range randomVecs(5, 4, 9) {
		ix.Upsert(i, v)
	}
	res := ix.SearchKNN([]float64{0, 0, 0, 0}, 50)
	if len(res) != 5 {
		t.Fatalf("got %d results, want 5", len(res))
	}
}

func TestMemoryBytes(t *testing.T) {
	ix, _ := New(DefaultConfig())
	if ix.MemoryBytes() != 0 {
		t.Fatal("empty index reports memory")
	}
	for i, v := range randomVecs(100, 16, 10) {
		ix.Upsert(i, v)
	}
	got := ix.MemoryBytes()
	if got < 100*16*8 {
		t.Fatalf("MemoryBytes %d below raw vector size", got)
	}
}
