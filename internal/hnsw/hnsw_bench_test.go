package hnsw

import (
	"testing"

	"spidercache/internal/xrand"
)

func benchVecs(n, dim int) [][]float64 {
	rng := xrand.New(1)
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func BenchmarkInsert(b *testing.B) {
	vecs := benchVecs(b.N+1, 32)
	ix, _ := New(DefaultConfig())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Upsert(i, vecs[i]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSearchKNN(b *testing.B) {
	const n = 8000
	vecs := benchVecs(n, 32)
	ix, _ := New(DefaultConfig())
	for i, v := range vecs {
		ix.Upsert(i, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ix.SearchKNN(vecs[i%n], 24)
	}
}

func BenchmarkUpdate(b *testing.B) {
	const n = 4000
	vecs := benchVecs(n, 32)
	ix, _ := New(DefaultConfig())
	for i, v := range vecs {
		ix.Upsert(i, v)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := ix.Upsert(i%n, vecs[(i+1)%n]); err != nil {
			b.Fatal(err)
		}
	}
}
