// Package hnsw is a from-scratch implementation of Hierarchical Navigable
// Small World graphs (Malkov & Yashunin, 2018), the approximate
// nearest-neighbour index the paper uses (via hnswlib) to evaluate sample
// embeddings.
//
// The index supports dynamic insertion and in-place vector updates — the two
// operations SpiderCache's per-batch IS loop performs — plus k-NN search
// with a tunable ef parameter. Distances are Euclidean (the paper's Eq. 1).
// The index is safe for concurrent use: an RWMutex gives Upsert exclusive
// access while any number of searches proceed in parallel under the shared
// lock, matching hnswlib's concurrent read / exclusive write model the paper
// relies on.
//
// The implementation follows the paper's Algorithms 1-5: multi-layer
// proximity graphs with exponentially decaying layer population, greedy
// descent from the entry point, best-first beam search per layer
// (efConstruction / efSearch), and the diversity-preserving neighbour
// selection heuristic.
package hnsw

import (
	"fmt"
	"math"
	"sync"

	"spidercache/internal/xrand"
)

// Config tunes index construction and search.
type Config struct {
	M              int // max neighbours per node on upper layers (layer 0 gets 2*M)
	EfConstruction int // beam width during insertion
	EfSearch       int // default beam width during search
	// UpdateEps is the Euclidean movement below which an Upsert of an
	// existing point only replaces its stored vector without repairing
	// graph links. Embedding drift between consecutive scoring passes is
	// tiny once training stabilises, so this avoids paying the full
	// re-link cost every batch; 0 always re-links.
	UpdateEps float64
	Seed      uint64
}

// DefaultConfig returns values that give high recall on the embedding
// workloads in this repository (small dimensionality, 10^3..10^5 points).
// UpdateEps is calibrated for unit-normalised embeddings (distances in
// [0, 2]).
func DefaultConfig() Config {
	return Config{M: 12, EfConstruction: 120, EfSearch: 64, UpdateEps: 0.02, Seed: 1}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.M < 2:
		return fmt.Errorf("hnsw: M must be >= 2, got %d", c.M)
	case c.EfConstruction < c.M:
		return fmt.Errorf("hnsw: EfConstruction %d < M %d", c.EfConstruction, c.M)
	case c.EfSearch < 1:
		return fmt.Errorf("hnsw: EfSearch must be >= 1, got %d", c.EfSearch)
	}
	return nil
}

// node is one indexed point.
type node struct {
	id    int       // external ID
	vec   []float64 // owned copy of the vector
	level int
	// links[l] holds neighbour slot indexes at layer l, 0 <= l <= level.
	links [][]uint32
}

// Index is an HNSW approximate nearest-neighbour index. It is safe for
// concurrent use: Upsert takes an exclusive lock, searches take a shared
// lock, so any number of SearchKNN calls proceed in parallel and serialise
// only against mutations. Search working memory comes from a scratch pool,
// not the index, so concurrent searches never contend on shared state.
type Index struct {
	mu    sync.RWMutex
	cfg   Config
	ml    float64 // level normalisation factor 1/ln(M)
	rng   *xrand.Rand
	nodes []*node
	byID  map[int]uint32 // external ID -> slot
	entry int            // slot of entry point, -1 if empty
	maxLv int
}

// scratch is the visit-marking working set of one search or insert
// operation: one epoch counter per slot, bumped per searchLayer call so the
// array never needs clearing between calls.
type scratch struct {
	visited []uint32
	epoch   uint32
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// getScratch returns a scratch sized for the current node count.
func (ix *Index) getScratch() *scratch {
	s := scratchPool.Get().(*scratch)
	if len(s.visited) < len(ix.nodes)+1 {
		s.visited = make([]uint32, 2*len(ix.nodes)+16)
		s.epoch = 0
	}
	return s
}

func putScratch(s *scratch) { scratchPool.Put(s) }

// nextEpoch advances the scratch epoch, clearing the array on wrap-around.
func (s *scratch) nextEpoch() uint32 {
	s.epoch++
	if s.epoch == 0 {
		clear(s.visited)
		s.epoch = 1
	}
	return s.epoch
}

// New creates an empty index.
func New(cfg Config) (*Index, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Index{
		cfg:   cfg,
		ml:    1 / math.Log(float64(cfg.M)),
		rng:   xrand.New(cfg.Seed),
		byID:  make(map[int]uint32),
		entry: -1,
	}, nil
}

// Len returns the number of indexed points.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.nodes)
}

// Dim returns the dimensionality of the indexed vectors (0 when empty).
func (ix *Index) Dim() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.dim()
}

// dim is Dim without locking, for use under either lock mode.
func (ix *Index) dim() int {
	if len(ix.nodes) == 0 {
		return 0
	}
	return len(ix.nodes[0].vec)
}

// Contains reports whether id has been indexed.
func (ix *Index) Contains(id int) bool {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	_, ok := ix.byID[id]
	return ok
}

// Vector returns a copy of the stored vector for id, or nil when unknown.
func (ix *Index) Vector(id int) []float64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	slot, ok := ix.byID[id]
	if !ok {
		return nil
	}
	out := make([]float64, len(ix.nodes[slot].vec))
	copy(out, ix.nodes[slot].vec)
	return out
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i, av := range a {
		d := av - b[i]
		s += d * d
	}
	return s
}

func (ix *Index) dist(slot uint32, q []float64) float64 {
	return sqDist(ix.nodes[slot].vec, q)
}

// Upsert inserts the vector under id, or replaces the stored vector when id
// is already indexed (re-linking the point at every layer it occupies). This
// is the per-batch "ANN_index.update" operation of the paper's Algorithm 1.
// Upsert takes the exclusive lock and may run concurrently with SearchKNN
// callers, which serialise against it.
func (ix *Index) Upsert(id int, vec []float64) error {
	if len(vec) == 0 {
		return fmt.Errorf("hnsw: empty vector for id %d", id)
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if d := ix.dim(); d != 0 && len(vec) != d {
		return fmt.Errorf("hnsw: vector dim %d != index dim %d", len(vec), d)
	}
	if slot, ok := ix.byID[id]; ok {
		ix.updateVector(slot, vec)
		return nil
	}
	ix.insert(id, vec)
	return nil
}

func (ix *Index) insert(id int, vec []float64) {
	owned := make([]float64, len(vec))
	copy(owned, vec)
	level := ix.randomLevel()
	n := &node{id: id, vec: owned, level: level, links: make([][]uint32, level+1)}
	slot := uint32(len(ix.nodes))
	ix.nodes = append(ix.nodes, n)
	ix.byID[id] = slot

	if ix.entry < 0 {
		ix.entry = int(slot)
		ix.maxLv = level
		return
	}

	sc := ix.getScratch()
	defer putScratch(sc)
	ep := uint32(ix.entry)
	epDist := ix.dist(ep, vec)
	// Greedy descent through layers above the new node's level.
	for l := ix.maxLv; l > level; l-- {
		ep, epDist = ix.greedyStep(ep, epDist, vec, l)
	}
	// Beam search + heuristic linking on each layer from min(level, maxLv)
	// down to 0.
	for l := min(level, ix.maxLv); l >= 0; l-- {
		cands := ix.searchLayer(sc, ep, epDist, vec, ix.cfg.EfConstruction, l)
		selected := ix.selectHeuristic(cands, ix.layerCap(l))
		n.links[l] = make([]uint32, 0, len(selected))
		for _, c := range selected {
			n.links[l] = append(n.links[l], c.id)
			ix.linkBack(c.id, slot, l)
		}
		if len(cands) > 0 {
			ep, epDist = cands[0].id, cands[0].dist
		}
	}
	if level > ix.maxLv {
		ix.maxLv = level
		ix.entry = int(slot)
	}
}

// updateVector replaces the stored vector and repairs the point's outgoing
// links by re-running neighbour selection at each of its layers, mirroring
// hnswlib's update_point repair. Movements below UpdateEps skip the repair.
func (ix *Index) updateVector(slot uint32, vec []float64) {
	n := ix.nodes[slot]
	if eps := ix.cfg.UpdateEps; eps > 0 && sqDist(n.vec, vec) < eps*eps {
		copy(n.vec, vec)
		return
	}
	copy(n.vec, vec)
	if len(ix.nodes) == 1 {
		return
	}
	sc := ix.getScratch()
	defer putScratch(sc)
	ep := uint32(ix.entry)
	epDist := ix.dist(ep, n.vec)
	for l := ix.maxLv; l > n.level; l-- {
		ep, epDist = ix.greedyStep(ep, epDist, n.vec, l)
	}
	for l := min(n.level, ix.maxLv); l >= 0; l-- {
		cands := ix.searchLayer(sc, ep, epDist, n.vec, ix.cfg.EfConstruction, l)
		// Drop self-references before selecting.
		filtered := cands[:0]
		for _, c := range cands {
			if c.id != slot {
				filtered = append(filtered, c)
			}
		}
		selected := ix.selectHeuristic(filtered, ix.layerCap(l))
		n.links[l] = n.links[l][:0]
		for _, c := range selected {
			n.links[l] = append(n.links[l], c.id)
			ix.linkBack(c.id, slot, l)
		}
		if len(filtered) > 0 {
			ep, epDist = filtered[0].id, filtered[0].dist
		}
	}
}

// layerCap returns the max neighbours per node at layer l.
func (ix *Index) layerCap(l int) int {
	if l == 0 {
		return 2 * ix.cfg.M
	}
	return ix.cfg.M
}

// linkBack adds src as a neighbour of dst at layer l, pruning dst's list
// with the selection heuristic when it overflows.
func (ix *Index) linkBack(dst, src uint32, l int) {
	d := ix.nodes[dst]
	for _, existing := range d.links[l] {
		if existing == src {
			return
		}
	}
	d.links[l] = append(d.links[l], src)
	if cap := ix.layerCap(l); len(d.links[l]) > cap {
		cands := make([]candidate, 0, len(d.links[l]))
		for _, nb := range d.links[l] {
			cands = append(cands, candidate{id: nb, dist: ix.dist(nb, d.vec)})
		}
		sortCandidates(cands)
		selected := ix.selectHeuristic(cands, cap)
		d.links[l] = d.links[l][:0]
		for _, c := range selected {
			d.links[l] = append(d.links[l], c.id)
		}
	}
}

// greedyStep walks layer l greedily towards q, returning the local minimum.
func (ix *Index) greedyStep(ep uint32, epDist float64, q []float64, l int) (uint32, float64) {
	for {
		improved := false
		n := ix.nodes[ep]
		if l < len(n.links) {
			for _, nb := range n.links[l] {
				if d := ix.dist(nb, q); d < epDist {
					ep, epDist = nb, d
					improved = true
				}
			}
		}
		if !improved {
			return ep, epDist
		}
	}
}

// searchLayer runs best-first beam search on layer l starting from ep and
// returns up to ef candidates sorted by ascending distance. Visit marks live
// in the caller's scratch, so concurrent searches are independent.
func (ix *Index) searchLayer(sc *scratch, ep uint32, epDist float64, q []float64, ef int, l int) []candidate {
	epoch := sc.nextEpoch()
	visited := sc.visited
	visited[ep] = epoch

	var frontier minHeap
	var results maxHeap
	frontier.push(candidate{id: ep, dist: epDist})
	results.push(candidate{id: ep, dist: epDist})

	for len(frontier) > 0 {
		cur := frontier.pop()
		if len(results) >= ef && cur.dist > results.top().dist {
			break
		}
		n := ix.nodes[cur.id]
		if l >= len(n.links) {
			continue
		}
		for _, nb := range n.links[l] {
			if visited[nb] == epoch {
				continue
			}
			visited[nb] = epoch
			d := ix.dist(nb, q)
			if len(results) < ef || d < results.top().dist {
				frontier.push(candidate{id: nb, dist: d})
				results.push(candidate{id: nb, dist: d})
				if len(results) > ef {
					results.pop()
				}
			}
		}
	}
	out := make([]candidate, len(results))
	copy(out, results)
	sortCandidates(out)
	return out
}

// selectHeuristic implements the diversity-preserving neighbour selection of
// the HNSW paper (Algorithm 4): a candidate is kept only if it is closer to
// the query than to every already-selected neighbour. cands must be sorted
// ascending by distance.
func (ix *Index) selectHeuristic(cands []candidate, m int) []candidate {
	if len(cands) <= m {
		return cands
	}
	selected := make([]candidate, 0, m)
	for _, c := range cands {
		if len(selected) >= m {
			break
		}
		keep := true
		cv := ix.nodes[c.id].vec
		for _, s := range selected {
			if sqDist(cv, ix.nodes[s.id].vec) < c.dist {
				keep = false
				break
			}
		}
		if keep {
			selected = append(selected, c)
		}
	}
	// Backfill with nearest remaining candidates when the heuristic was too
	// aggressive (keepPrunedConnections in hnswlib terms).
	if len(selected) < m {
		for _, c := range cands {
			if len(selected) >= m {
				break
			}
			dup := false
			for _, s := range selected {
				if s.id == c.id {
					dup = true
					break
				}
			}
			if !dup {
				selected = append(selected, c)
			}
		}
	}
	return selected
}

func sortCandidates(cands []candidate) {
	// Insertion sort: candidate lists are small (<= ef).
	for i := 1; i < len(cands); i++ {
		c := cands[i]
		j := i - 1
		for j >= 0 && cands[j].dist > c.dist {
			cands[j+1] = cands[j]
			j--
		}
		cands[j+1] = c
	}
}

// Result is one search hit.
type Result struct {
	ID   int
	Dist float64 // Euclidean distance (Eq. 1 of the paper)
}

// SearchKNN returns up to k approximate nearest neighbours of q using the
// configured EfSearch beam width.
func (ix *Index) SearchKNN(q []float64, k int) []Result {
	return ix.SearchKNNEf(q, k, ix.cfg.EfSearch)
}

// SearchKNNEf is SearchKNN with an explicit beam width ef (>= k recommended).
// Safe for concurrent use; parallel searches share only the read lock.
func (ix *Index) SearchKNNEf(q []float64, k, ef int) []Result {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	if ix.entry < 0 || k <= 0 {
		return nil
	}
	if ef < k {
		ef = k
	}
	sc := ix.getScratch()
	defer putScratch(sc)
	ep := uint32(ix.entry)
	epDist := ix.dist(ep, q)
	for l := ix.maxLv; l > 0; l-- {
		ep, epDist = ix.greedyStep(ep, epDist, q, l)
	}
	cands := ix.searchLayer(sc, ep, epDist, q, ef, 0)
	if len(cands) > k {
		cands = cands[:k]
	}
	out := make([]Result, len(cands))
	for i, c := range cands {
		out[i] = Result{ID: ix.nodes[c.id].id, Dist: math.Sqrt(c.dist)}
	}
	return out
}

// randomLevel draws the node level from the exponential distribution
// floor(-ln(U) * mL) used by the HNSW paper.
func (ix *Index) randomLevel() int {
	lv := int(ix.rng.ExpFloat64() * ix.ml)
	const maxLevel = 30
	if lv > maxLevel {
		lv = maxLevel
	}
	return lv
}

// MemoryBytes estimates the resident size of the index: vectors plus link
// lists plus per-node overhead. Used by the Table 2 storage-efficiency
// experiment.
func (ix *Index) MemoryBytes() int64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	var total int64
	for _, n := range ix.nodes {
		total += int64(len(n.vec)) * 8
		for _, l := range n.links {
			total += int64(len(l)) * 4
		}
		total += 48 // struct overhead: id, level, slice headers
	}
	return total
}
