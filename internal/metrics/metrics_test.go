package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestStats(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if Mean(xs) != 2.5 {
		t.Fatalf("Mean = %g", Mean(xs))
	}
	if math.Abs(Std(xs)-math.Sqrt(1.25)) > 1e-12 {
		t.Fatalf("Std = %g", Std(xs))
	}
	if Max(xs) != 4 || Min(xs) != 1 {
		t.Fatal("Max/Min wrong")
	}
	if Mean(nil) != 0 || Std(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Fatal("empty-input stats nonzero")
	}
	if Std([]float64{5}) != 0 {
		t.Fatal("single-point std nonzero")
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("My Title", "Name", "Value")
	tb.AddRow("alpha", "1")
	tb.AddRow("beta") // short row padded
	out := tb.String()
	if !strings.Contains(out, "My Title") {
		t.Fatal("title missing")
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Fatal("rows missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Columns align: both data rows start with padded first column.
	if len(lines[3]) < len("alpha") {
		t.Fatal("row truncated")
	}
}

func TestTableAddRowf(t *testing.T) {
	tb := NewTable("", "A", "B", "C")
	tb.AddRowf("x", 1.23456, 42)
	row := tb.Rows[0]
	if row[0] != "x" || row[1] != "1.23" || row[2] != "42" {
		t.Fatalf("AddRowf formatting: %v", row)
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := NewTable("", "A", "B")
	tb.AddRow("has,comma", `has"quote`)
	csv := tb.CSV()
	if !strings.Contains(csv, `"has,comma"`) {
		t.Fatalf("comma cell not quoted: %s", csv)
	}
	if !strings.Contains(csv, `"has""quote"`) {
		t.Fatalf("quote cell not escaped: %s", csv)
	}
	if !strings.HasPrefix(csv, "A,B\n") {
		t.Fatalf("header wrong: %s", csv)
	}
}

func TestRenderSeries(t *testing.T) {
	out := RenderSeries("Curves", "Epoch", nil,
		Series{Name: "a", Points: []float64{1, 2}},
		Series{Name: "b", Points: []float64{3}},
	)
	if !strings.Contains(out, "Curves") || !strings.Contains(out, "Epoch") {
		t.Fatal("header missing")
	}
	if !strings.Contains(out, "1.0000") || !strings.Contains(out, "3.0000") {
		t.Fatal("points missing")
	}
}
