// Package metrics provides the small statistics and rendering helpers the
// experiment harness uses to print paper-style tables and figure series.
package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

// Max returns the maximum of xs (0 for empty input).
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs (0 for empty input).
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Table is a simple column-aligned text table with an optional title,
// rendered in the style of the paper's tables.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, header ...string) *Table {
	return &Table{Title: title, Header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.Header) {
		cells = append(cells, "")
	}
	t.Rows = append(t.Rows, cells)
}

// AddRowf appends a row of fmt.Sprintf-formatted cells, alternating
// (format, value) is not supported — each cell is rendered with %v.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString(t.Title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	total := len(widths)*2 - 2
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header + rows). Cells
// containing commas or quotes are quoted.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteByte('"')
				b.WriteString(strings.ReplaceAll(c, "\"", "\"\""))
				b.WriteByte('"')
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Series is a named numeric sequence used to emit figure data (one line per
// point) for plotting.
type Series struct {
	Name   string
	Points []float64
}

// RenderSeries prints multiple series as a wide table: one row per index,
// one column per series. xs provides the x-axis labels (nil = 0..n-1).
func RenderSeries(title, xlabel string, xs []string, series ...Series) string {
	n := 0
	for _, s := range series {
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	header := []string{xlabel}
	for _, s := range series {
		header = append(header, s.Name)
	}
	t := NewTable(title, header...)
	for i := 0; i < n; i++ {
		row := make([]string, 0, len(series)+1)
		if xs != nil && i < len(xs) {
			row = append(row, xs[i])
		} else {
			row = append(row, fmt.Sprintf("%d", i))
		}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.4f", s.Points[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t.String()
}
