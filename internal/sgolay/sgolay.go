// Package sgolay implements the Savitzky-Golay smoothing filter (Savitzky &
// Golay, 1964) used by the paper's Accuracy Monitor to de-noise the
// per-epoch accuracy series before computing its growth rate (Eq. 6).
//
// The filter fits a degree-p polynomial to each odd-length window by linear
// least squares and evaluates it at the window centre, which reduces to a
// fixed convolution whose coefficients depend only on (window, order).
// Coefficients are derived here directly from the normal equations using a
// small Gaussian elimination — no external linear algebra needed.
package sgolay

import "fmt"

// Filter holds precomputed convolution coefficients.
type Filter struct {
	window int
	order  int
	coeffs []float64 // length window, centre-evaluation weights
}

// New builds a filter with the given odd window length and polynomial order
// (order < window).
func New(window, order int) (*Filter, error) {
	if window < 3 || window%2 == 0 {
		return nil, fmt.Errorf("sgolay: window must be odd and >= 3, got %d", window)
	}
	if order < 0 || order >= window {
		return nil, fmt.Errorf("sgolay: order must be in [0,window), got %d", order)
	}
	half := window / 2
	// Normal equations: (AᵀA) c = Aᵀ e0 where A[i][j] = i^j for i in
	// [-half, half], and the smoothed centre value is the polynomial's
	// constant term. The convolution weight for offset i is then
	// sum_j (AᵀA)⁻¹[0][j] * i^j.
	n := order + 1
	ata := make([][]float64, n)
	for r := range ata {
		ata[r] = make([]float64, n)
		for c := range ata[r] {
			var s float64
			for i := -half; i <= half; i++ {
				s += powi(float64(i), r+c)
			}
			ata[r][c] = s
		}
	}
	inv0 := solveRow0(ata)
	coeffs := make([]float64, window)
	for i := -half; i <= half; i++ {
		var w float64
		for j := 0; j < n; j++ {
			w += inv0[j] * powi(float64(i), j)
		}
		coeffs[i+half] = w
	}
	return &Filter{window: window, order: order, coeffs: coeffs}, nil
}

// Window returns the filter's window length.
func (f *Filter) Window() int { return f.window }

// Smooth returns the filtered series, same length as xs. Edges are handled
// by mirror-padding half a window on each side. Series shorter than the
// window are returned as a copy, unfiltered.
func (f *Filter) Smooth(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) < f.window {
		copy(out, xs)
		return out
	}
	half := f.window / 2
	at := func(i int) float64 {
		// Mirror padding: ..., x2, x1, | x0, x1, ... , xn-1 |, xn-2, ...
		if i < 0 {
			i = -i
		}
		if i >= len(xs) {
			i = 2*len(xs) - 2 - i
		}
		return xs[i]
	}
	for i := range xs {
		var s float64
		for k := -half; k <= half; k++ {
			s += f.coeffs[k+half] * at(i+k)
		}
		out[i] = s
	}
	return out
}

// powi computes x^k for small non-negative integer k.
func powi(x float64, k int) float64 {
	p := 1.0
	for ; k > 0; k-- {
		p *= x
	}
	return p
}

// solveRow0 returns row 0 of the inverse of symmetric positive-definite m,
// i.e. the solution of m x = e0, via Gaussian elimination with partial
// pivoting. m is destroyed.
func solveRow0(m [][]float64) []float64 {
	n := len(m)
	rhs := make([]float64, n)
	rhs[0] = 1
	for col := 0; col < n; col++ {
		// Pivot.
		p := col
		for r := col + 1; r < n; r++ {
			if abs(m[r][col]) > abs(m[p][col]) {
				p = r
			}
		}
		m[col], m[p] = m[p], m[col]
		rhs[col], rhs[p] = rhs[p], rhs[col]
		piv := m[col][col]
		for r := 0; r < n; r++ {
			if r == col || m[r][col] == 0 {
				continue
			}
			f := m[r][col] / piv
			for c := col; c < n; c++ {
				m[r][c] -= f * m[col][c]
			}
			rhs[r] -= f * rhs[col]
		}
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = rhs[i] / m[i][i]
	}
	return out
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
