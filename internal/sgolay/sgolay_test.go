package sgolay

import (
	"math"
	"testing"
	"testing/quick"

	"spidercache/internal/xrand"
)

func TestValidation(t *testing.T) {
	cases := []struct{ window, order int }{
		{2, 1}, {4, 2}, {1, 0}, {5, 5}, {5, -1},
	}
	for _, c := range cases {
		if _, err := New(c.window, c.order); err == nil {
			t.Errorf("New(%d,%d) accepted", c.window, c.order)
		}
	}
}

// TestKnownCoefficients checks the classic quadratic/cubic 5-point weights
// (-3, 12, 17, 12, -3)/35 from the original Savitzky-Golay tables.
func TestKnownCoefficients(t *testing.T) {
	f, err := New(5, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{-3.0 / 35, 12.0 / 35, 17.0 / 35, 12.0 / 35, -3.0 / 35}
	for i, w := range want {
		if math.Abs(f.coeffs[i]-w) > 1e-12 {
			t.Fatalf("coeff[%d] = %.9f, want %.9f", i, f.coeffs[i], w)
		}
	}
}

func TestCoefficientsSumToOne(t *testing.T) {
	for _, c := range []struct{ w, o int }{{5, 2}, {7, 2}, {7, 3}, {9, 4}, {3, 1}} {
		f, err := New(c.w, c.o)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		for _, v := range f.coeffs {
			sum += v
		}
		if math.Abs(sum-1) > 1e-10 {
			t.Errorf("window %d order %d: coefficients sum to %g", c.w, c.o, sum)
		}
	}
}

// TestPolynomialReproduction: an SG filter of order p reproduces any
// polynomial of degree <= p exactly (away from edge effects the mirror
// padding also preserves symmetric low-order behaviour; we check interior
// points only).
func TestPolynomialReproduction(t *testing.T) {
	f, _ := New(7, 3)
	poly := func(x float64) float64 { return 2 + 0.5*x - 0.3*x*x + 0.01*x*x*x }
	xs := make([]float64, 40)
	for i := range xs {
		xs[i] = poly(float64(i))
	}
	sm := f.Smooth(xs)
	for i := 3; i < len(xs)-3; i++ {
		if math.Abs(sm[i]-xs[i]) > 1e-9 {
			t.Fatalf("interior point %d: %g != %g", i, sm[i], xs[i])
		}
	}
}

func TestSmoothReducesNoise(t *testing.T) {
	rng := xrand.New(1)
	f, _ := New(5, 2)
	n := 200
	noisy := make([]float64, n)
	clean := make([]float64, n)
	for i := range noisy {
		clean[i] = math.Sin(float64(i) / 20)
		noisy[i] = clean[i] + rng.NormFloat64()*0.2
	}
	sm := f.Smooth(noisy)
	var before, after float64
	for i := 5; i < n-5; i++ {
		before += (noisy[i] - clean[i]) * (noisy[i] - clean[i])
		after += (sm[i] - clean[i]) * (sm[i] - clean[i])
	}
	if after >= before*0.7 {
		t.Fatalf("smoothing did not reduce noise: %.4f -> %.4f", before, after)
	}
}

func TestShortSeriesReturnedUnfiltered(t *testing.T) {
	f, _ := New(7, 2)
	xs := []float64{1, 2, 3}
	sm := f.Smooth(xs)
	for i := range xs {
		if sm[i] != xs[i] {
			t.Fatalf("short series modified: %v", sm)
		}
	}
	// And the output must be a copy.
	sm[0] = 99
	if xs[0] != 1 {
		t.Fatal("Smooth aliases input")
	}
}

func TestSmoothPreservesConstants(t *testing.T) {
	f, _ := New(5, 2)
	check := func(v float64) bool {
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e12 {
			// Astronomic magnitudes lose relative precision in the
			// convolution's cancellations; the filter operates on
			// accuracy series in [0, 1].
			return true
		}
		xs := make([]float64, 20)
		for i := range xs {
			xs[i] = v
		}
		for _, s := range f.Smooth(xs) {
			if math.Abs(s-v) > math.Abs(v)*1e-9+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWindowAccessor(t *testing.T) {
	f, _ := New(9, 2)
	if f.Window() != 9 {
		t.Fatalf("Window() = %d", f.Window())
	}
}
