// Package xrand provides a small, fast, deterministic random number
// generator used throughout the repository.
//
// Every stochastic component (dataset synthesis, samplers, HNSW level
// selection, storage jitter, ...) takes an explicit *xrand.Rand so that whole
// experiments are reproducible from a single seed. The generator is
// xoshiro256** seeded via SplitMix64, the combination recommended by the
// xoshiro authors; it is not cryptographically secure and does not need to
// be.
package xrand

import "math"

// Rand is a deterministic pseudo-random number generator. It is NOT safe for
// concurrent use; derive per-goroutine generators with Split.
type Rand struct {
	s [4]uint64
}

// New returns a generator seeded from seed via SplitMix64 so that nearby
// seeds produce uncorrelated streams.
func New(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	for i := range r.s {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Split returns a new generator whose stream is independent of, but
// deterministically derived from, the current state of r. Use it to hand
// isolated randomness to sub-components.
func (r *Rand) Split() *Rand {
	return New(r.Uint64() ^ 0xa5a5a5a5deadbeef)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	s := &r.s
	result := rotl(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = rotl(s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn called with n <= 0")
	}
	// Lemire's nearly-divisionless bounded generation.
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := -bound % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

func mul64(x, y uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	x0, x1 := x&mask32, x>>32
	y0, y1 := y&mask32, y>>32
	w0 := x0 * y0
	t := x1*y0 + w0>>32
	w1 := t & mask32
	w2 := t >> 32
	w1 += x0 * y1
	hi = x1*y1 + w2 + w1>>32
	lo = x * y
	return
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard-normal variate (Marsaglia polar method).
func (r *Rand) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// ExpFloat64 returns an exponential variate with mean 1.
func (r *Rand) ExpFloat64() float64 {
	for {
		u := r.Float64()
		if u > 0 {
			return -math.Log(u)
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(p)
	return p
}

// Shuffle permutes p in place (Fisher-Yates).
func (r *Rand) Shuffle(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}
