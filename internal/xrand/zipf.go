package xrand

import "math"

// Zipf draws integers in [0, n) with a bounded zipfian distribution:
// P(k) ∝ 1/(k+1)^s. Cache and serving workloads are classically zipfian
// (a few hot keys dominate), so the load generator uses this to produce
// realistic skew; s = 0 degenerates to uniform.
//
// The implementation precomputes the CDF once (O(n) memory, float64 per
// rank) and inverts it by binary search per draw (O(log n)). That favours
// simplicity and determinism over the constant-space rejection-inversion
// samplers; for the load generator's key-space sizes (≤ tens of millions)
// the table is small next to the payloads being served.
//
// Like Rand, a Zipf is NOT safe for concurrent use; give each goroutine
// its own via NewZipf(r.Split(), ...).
type Zipf struct {
	r   *Rand
	cdf []float64 // cdf[k] = P(X <= k), cdf[n-1] == 1
}

// NewZipf builds a zipfian sampler over [0, n) with exponent s >= 0,
// drawing from r. It panics if n <= 0, s < 0, or r is nil.
func NewZipf(r *Rand, s float64, n int) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf called with n <= 0")
	}
	if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
		panic("xrand: NewZipf called with invalid exponent")
	}
	if r == nil {
		panic("xrand: NewZipf called with nil Rand")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := 0; k < n; k++ {
		sum += math.Pow(float64(k+1), -s)
		cdf[k] = sum
	}
	inv := 1 / sum
	for k := range cdf {
		cdf[k] *= inv
	}
	cdf[n-1] = 1 // exact, despite rounding
	return &Zipf{r: r, cdf: cdf}
}

// N returns the size of the sampled range.
func (z *Zipf) N() int { return len(z.cdf) }

// Next draws the next rank in [0, N()). Rank 0 is the hottest key.
func (z *Zipf) Next() int {
	u := z.r.Float64()
	// Binary search for the first rank whose CDF covers u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
