package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/100 identical draws from different seeds", same)
	}
}

func TestIntnRange(t *testing.T) {
	r := New(7)
	for _, n := range []int{1, 2, 3, 10, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestIntnUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Intn(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > want*0.1 {
			t.Errorf("bucket %d: %d draws, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	var sum float64
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean = %g, want ~0.5", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(5)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %g, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %g, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(9)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatalf("ExpFloat64 = %g < 0", v)
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Errorf("exponential mean = %g, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	check := func(n uint8) bool {
		size := int(n%64) + 1
		p := r.Perm(size)
		if len(p) != size {
			return false
		}
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShuffleKeepsElements(t *testing.T) {
	r := New(17)
	p := []int{5, 6, 7, 8, 9}
	r.Shuffle(p)
	sum := 0
	for _, v := range p {
		sum += v
	}
	if sum != 35 {
		t.Fatalf("shuffle changed elements: %v", p)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(23)
	a := parent.Split()
	b := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("split streams overlap: %d/100", same)
	}
}
