package xrand

import (
	"math"
	"testing"
)

func TestZipfBounds(t *testing.T) {
	z := NewZipf(New(1), 0.99, 100)
	for i := 0; i < 10000; i++ {
		k := z.Next()
		if k < 0 || k >= 100 {
			t.Fatalf("draw %d out of range", k)
		}
	}
}

func TestZipfDeterministic(t *testing.T) {
	a := NewZipf(New(7), 1.1, 1000)
	b := NewZipf(New(7), 1.1, 1000)
	for i := 0; i < 1000; i++ {
		if x, y := a.Next(), b.Next(); x != y {
			t.Fatalf("draw %d diverged: %d != %d", i, x, y)
		}
	}
}

// TestZipfSkew: with s≈1 the head ranks dominate; rank 0 must be drawn
// far more often than a mid-range rank, and the hottest 10%% of ranks must
// carry well over half the draws.
func TestZipfSkew(t *testing.T) {
	const n, draws = 1000, 200000
	z := NewZipf(New(42), 0.99, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	if counts[0] < 10*counts[n/2] {
		t.Fatalf("rank 0 drawn %d times vs rank %d %d times — not zipfian",
			counts[0], n/2, counts[n/2])
	}
	head := 0
	for _, c := range counts[:n/10] {
		head += c
	}
	if frac := float64(head) / draws; frac < 0.5 {
		t.Fatalf("hottest 10%% carries only %.2f of draws", frac)
	}
}

// TestZipfUniform: s = 0 degenerates to the uniform distribution.
func TestZipfUniform(t *testing.T) {
	const n, draws = 100, 100000
	z := NewZipf(New(3), 0, n)
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[z.Next()]++
	}
	mean := float64(draws) / n
	for k, c := range counts {
		if math.Abs(float64(c)-mean) > mean/2 {
			t.Fatalf("rank %d drawn %d times, mean %.0f — not uniform", k, c, mean)
		}
	}
}

func TestZipfSingleton(t *testing.T) {
	z := NewZipf(New(1), 2.0, 1)
	for i := 0; i < 100; i++ {
		if z.Next() != 0 {
			t.Fatal("singleton range must always draw 0")
		}
	}
}

func TestZipfPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"n=0":   func() { NewZipf(New(1), 1, 0) },
		"s<0":   func() { NewZipf(New(1), -1, 10) },
		"s=NaN": func() { NewZipf(New(1), math.NaN(), 10) },
		"nil r": func() { NewZipf(nil, 1, 10) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
