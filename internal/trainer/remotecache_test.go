package trainer

import (
	"errors"
	"sync"
	"testing"

	"spidercache/internal/policy"
	"spidercache/internal/telemetry"
)

// flakyCache is a RemoteCache double whose every Nth op fails with a
// transport-style error, exercising the degrade-to-storage path. It is
// mutex-guarded because the prefetching loader calls it off-thread.
type flakyCache struct {
	mu      sync.Mutex
	data    map[int][]byte
	every   int // 0 = never fail
	ops     int
	gets    int
	sets    int
	errs    int
	setFail bool // fail Sets too (not just Gets)
}

var errFlaky = errors.New("flaky cache: injected failure")

func newFlakyCache(every int, setFail bool) *flakyCache {
	return &flakyCache{data: make(map[int][]byte), every: every, setFail: setFail}
}

func (f *flakyCache) fail() bool {
	f.ops++
	if f.every > 0 && f.ops%f.every == 0 {
		f.errs++
		return true
	}
	return false
}

func (f *flakyCache) Get(id int) ([]byte, bool, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.gets++
	if f.fail() {
		return nil, false, errFlaky
	}
	v, ok := f.data[id]
	return v, ok, nil
}

func (f *flakyCache) Set(id int, payload []byte) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.sets++
	if f.setFail && f.fail() {
		return errFlaky
	}
	f.data[id] = payload
	return nil
}

// TestRemoteCacheServesMisses: with a zero-capacity local cache every
// lookup is a policy miss; the remote tier absorbs repeats after the first
// epoch populates it, and the telemetry splits hit/miss correctly.
func TestRemoteCacheServesMisses(t *testing.T) {
	cfg := tinyConfig(t, 2)
	reg := telemetry.NewRegistry()
	rc := newFlakyCache(0, false)
	cfg.RemoteCache = rc
	cfg.Metrics = reg
	pol, err := policy.NewBaselineLRU(cfg.Dataset.Len(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}

	hits := reg.Counter("remote_cache_total", telemetry.Labels{"result": "hit"}).Value()
	misses := reg.Counter("remote_cache_total", telemetry.Labels{"result": "miss"}).Value()
	errs := reg.Counter("remote_cache_total", telemetry.Labels{"result": "error"}).Value()
	n := int64(cfg.Dataset.Len())
	// Epoch 1 misses the cold tier and populates it; epoch 2 hits.
	if misses < n {
		t.Fatalf("remote_cache misses = %d, want >= %d (cold first epoch)", misses, n)
	}
	if hits < n {
		t.Fatalf("remote_cache hits = %d, want >= %d (warm second epoch)", hits, n)
	}
	if errs != 0 {
		t.Fatalf("remote_cache errors = %d with a healthy cache", errs)
	}
	// EpochStats accounting is tier-agnostic: a remote hit is still a
	// policy miss.
	for _, e := range res.Epochs {
		if e.Misses != e.Requests {
			t.Fatalf("epoch %d: misses %d != requests %d despite zero-capacity local cache", e.Epoch, e.Misses, e.Requests)
		}
	}
}

// TestRemoteCacheDegradesOnErrors: a cache failing every 3rd op must never
// fail the run — errors degrade to storage fetches and are counted.
func TestRemoteCacheDegradesOnErrors(t *testing.T) {
	cfg := tinyConfig(t, 2)
	reg := telemetry.NewRegistry()
	rc := newFlakyCache(3, true)
	cfg.RemoteCache = rc
	cfg.Metrics = reg
	pol, err := policy.NewBaselineLRU(cfg.Dataset.Len(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, pol); err != nil {
		t.Fatalf("run with flaky remote cache failed: %v", err)
	}
	if errs := reg.Counter("remote_cache_total", telemetry.Labels{"result": "error"}).Value(); errs == 0 {
		t.Fatal("remote_cache_total{result=error} = 0, want > 0")
	}
	if rc.errs == 0 {
		t.Fatal("fake cache never injected a failure; test is vacuous")
	}
}

// TestRemoteCachePrefetchPath: the remote tier is exercised from the
// prefetch goroutine too (run under -race to pin concurrency safety).
func TestRemoteCachePrefetchPath(t *testing.T) {
	cfg := tinyConfig(t, 2)
	cfg.Prefetch = true
	rc := newFlakyCache(5, true)
	cfg.RemoteCache = rc
	pol, err := policy.NewBaselineLRU(cfg.Dataset.Len(), 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(cfg, pol); err != nil {
		t.Fatal(err)
	}
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.gets == 0 || rc.sets == 0 {
		t.Fatalf("remote cache untouched: gets=%d sets=%d", rc.gets, rc.sets)
	}
}
