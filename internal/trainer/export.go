package trainer

import (
	"bufio"
	"fmt"
	"io"
)

// WriteCSV serialises the run's per-epoch records (one line per epoch, with
// a header) for external plotting or archival.
func (r *Result) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# policy=%s model=%s dataset=%s workers=%d\n",
		r.Policy, r.Model, r.Dataset, r.Workers); err != nil {
		return err
	}
	cols := "epoch,requests,hit_cache,hit_sub,misses,hit_ratio," +
		"load_ms,preproc_ms,compute_ms,is_ms,comm_ms,epoch_ms," +
		"accuracy,train_loss,score_std,imp_ratio\n"
	if _, err := bw.WriteString(cols); err != nil {
		return err
	}
	ms := func(d interface{ Milliseconds() int64 }) int64 { return d.Milliseconds() }
	for _, e := range r.Epochs {
		if _, err := fmt.Fprintf(bw, "%d,%d,%d,%d,%d,%.6f,%d,%d,%d,%d,%d,%d,%.6f,%.6f,%.6f,%.6f\n",
			e.Epoch, e.Requests, e.HitCache, e.HitSub, e.Misses, e.HitRatio(),
			ms(e.LoadTime), ms(e.PreprocTime), ms(e.ComputeTime), ms(e.ISTime), ms(e.CommTime), ms(e.EpochTime),
			e.Accuracy, e.TrainLoss, e.ScoreStd, e.ImpRatio); err != nil {
			return err
		}
	}
	return bw.Flush()
}
