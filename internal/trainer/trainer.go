// Package trainer drives DNN training runs against pluggable cache/sampling
// policies, implementing the paper's Algorithm 1 end to end:
//
//	for each epoch, for each batch:
//	    serve samples through the policy's caches (miss -> remote storage)
//	    forward pass  -> per-sample losses + embeddings
//	    backward pass -> SGD update (policies may skip samples)
//	    policy IS stage (graph scoring, cache updates)
//	elastic control at epoch end
//
// All performance numbers are accounted in virtual time (internal/simclock):
// storage fetches from the storage simulator, compute stages from the model
// cost profile (Table 1), with the Fig 12 pipeline hiding the IS stage
// behind Stage 2 (and, for long-IS models, the next batch's Stage 1). The
// learning itself is real — an MLP trained with SGD — so accuracy, loss and
// embedding dynamics are genuine rather than scripted.
package trainer

import (
	"fmt"
	"math"
	"time"

	"spidercache/internal/dataset"
	"spidercache/internal/nn"
	"spidercache/internal/par"
	"spidercache/internal/policy"
	"spidercache/internal/simclock"
	"spidercache/internal/storage"
	"spidercache/internal/telemetry"
	"spidercache/internal/tensor"
	"spidercache/internal/xrand"
)

// RemoteCache is a shared cache tier between the workers and backing
// storage — in deployment, a kvserver cluster reached through
// internal/cluster.Client, which satisfies this interface directly. The
// trainer treats it as strictly best-effort: a Get error degrades the
// sample to a backing-storage fetch, and a failed Set is dropped, so an
// unreachable cluster slows training but never fails it.
//
// Implementations must be safe for concurrent use: with Config.Prefetch
// the serving path runs on a background goroutine.
type RemoteCache interface {
	// Get returns the cached payload for a sample ID. found=false with a
	// nil error is a clean miss.
	Get(id int) (payload []byte, found bool, err error)
	// Set stores the payload for a sample ID.
	Set(id int, payload []byte) error
}

// Config describes one training run.
type Config struct {
	Dataset *dataset.Dataset
	Model   nn.Profile
	Epochs  int
	// BatchSize is the mini-batch size; Table 1 stage costs are charged
	// per mini-batch.
	BatchSize int
	// Workers is the simulated data-parallel GPU count (Fig 17). Remote
	// storage bandwidth is shared across workers; compute and memory-tier
	// reads scale with the worker count.
	Workers int
	// Storage overrides the storage cost model; zero value means
	// storage.DefaultParams.
	Storage storage.Params
	// PipelineIS enables the Fig 12 overlap of the IS stage; disabling it
	// charges the full IS cost on the critical path (ablation).
	PipelineIS bool
	// SerialLoading disables the DataLoader prefetch pipeline, charging
	// loading and compute sequentially. The default (false) matches real
	// training stacks — PyTorch DataLoader workers prefetch the next batch
	// while the GPU computes — so a batch's wall time is
	// max(loading, compute), and removing I/O stalls translates almost 1:1
	// into wall-clock savings, as in the paper's end-to-end numbers.
	SerialLoading bool
	// Prefetch overlaps the real (host CPU) work too: while batch t runs
	// its forward pass, a goroutine serves batch t+1 (cache lookups, miss
	// fetches, substitution, tensor build). The pipeline is one deep and
	// joins before any further policy call, so policies stay effectively
	// single-threaded and runs are deterministic. Note the serving of batch
	// t+1 then observes cache state from before batch t's IS stage (the
	// usual one-batch staleness of a prefetching loader), so per-epoch hit
	// counts can differ slightly from the non-prefetching loop. Default off.
	Prefetch bool
	// PreprocessCost is the per-batch decode/collate charge (the paper's
	// lightweight Preprocessing stage, Fig 3a).
	PreprocessCost time.Duration
	// CommCost is the per-round gradient-synchronisation charge added per
	// extra worker (Fig 17's "communication costs").
	CommCost time.Duration
	// MLP optionally overrides the learner architecture; zero value
	// derives it from the dataset and model profile.
	MLP nn.MLPConfig
	// RemoteCache, when set, is consulted on every policy miss before the
	// backing-storage fetch: a hit is served at memory-tier cost, a miss
	// or error falls through to storage (and the fetched payload is
	// written back best-effort). The sample still counts as a policy miss
	// in EpochStats either way. Nil disables the tier.
	RemoteCache RemoteCache
	// Metrics receives live serving-path telemetry (per-tier lookup
	// counters, simulated fetch/compute latency histograms, per-epoch
	// accuracy/loss gauges); nil disables recording.
	Metrics *telemetry.Registry
	Seed    uint64
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.Dataset == nil:
		return fmt.Errorf("trainer: Dataset must not be nil")
	case c.Epochs < 1:
		return fmt.Errorf("trainer: Epochs must be >= 1, got %d", c.Epochs)
	case c.BatchSize < 1:
		return fmt.Errorf("trainer: BatchSize must be >= 1, got %d", c.BatchSize)
	case c.Workers < 1:
		return fmt.Errorf("trainer: Workers must be >= 1, got %d", c.Workers)
	case c.Model.Name == "":
		return fmt.Errorf("trainer: Model profile must be set")
	}
	return nil
}

func (c *Config) fillDefaults() {
	if c.Storage == (storage.Params{}) {
		c.Storage = storage.DefaultParams()
	}
	if c.PreprocessCost == 0 {
		c.PreprocessCost = 4 * time.Millisecond
	}
	if c.CommCost == 0 {
		c.CommCost = 3 * time.Millisecond
	}
	if c.MLP == (nn.MLPConfig{}) {
		// Over-provision the learner: rare hard subclusters must be
		// learnable without displacing easy mass, as they are for the
		// overparameterised CNNs the paper trains.
		hidden := 4 * c.Model.EmbedDim
		if hidden < 128 {
			hidden = 128
		}
		c.MLP = nn.MLPConfig{
			InputDim:  c.Dataset.Config.Dim,
			HiddenDim: hidden,
			EmbedDim:  c.Model.EmbedDim,
			Classes:   c.Dataset.Config.Classes,
			LR:        0.05,
			Momentum:  0.9,
			WeightDec: 1e-4,
		}
	}
}

// EpochStats records one epoch of a run.
type EpochStats struct {
	Epoch    int
	Requests int
	HitCache int // served by a cache with the requested sample itself
	HitSub   int // served by a substitute (homophily / random replacement)
	Misses   int

	LoadTime    time.Duration // data-loading share (fetch + hit service)
	PreprocTime time.Duration
	ComputeTime time.Duration // forward + backward
	ISTime      time.Duration // visible (non-hidden) IS cost
	CommTime    time.Duration
	EpochTime   time.Duration // wall time under the worker model

	Accuracy  float64 // held-out Top-1 after this epoch
	TrainLoss float64 // mean training loss over the epoch
	ScoreStd  float64 // σ of importance scores (0 if not reported)
	ImpRatio  float64 // Importance Cache share (0 if not reported)

	// SearchKNN and SnapshotHits are this epoch's ANN search count and
	// snapshot-served scoring count (both 0 if the policy does not report
	// search statistics; SnapshotHits is 0 with snapshots disabled).
	SearchKNN    int64
	SnapshotHits int64
}

// HitRatio returns (cache + substitute hits) / requests.
func (e EpochStats) HitRatio() float64 {
	if e.Requests == 0 {
		return 0
	}
	return float64(e.HitCache+e.HitSub) / float64(e.Requests)
}

// Result aggregates a full run.
type Result struct {
	Policy  string
	Model   string
	Dataset string
	Workers int
	Epochs  []EpochStats

	TotalTime time.Duration
	FinalAcc  float64
	BestAcc   float64

	// FinalModel is the trained learner, exposed for post-run diagnostics
	// (e.g. per-population accuracy breakdowns).
	FinalModel *nn.MLP
}

// AvgHitRatio returns the mean per-epoch hit ratio across the run.
func (r *Result) AvgHitRatio() float64 {
	if len(r.Epochs) == 0 {
		return 0
	}
	var s float64
	for _, e := range r.Epochs {
		s += e.HitRatio()
	}
	return s / float64(len(r.Epochs))
}

// AccuracySeries returns the per-epoch held-out accuracies.
func (r *Result) AccuracySeries() []float64 {
	out := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		out[i] = e.Accuracy
	}
	return out
}

// LossSeries returns the per-epoch mean training losses.
func (r *Result) LossSeries() []float64 {
	out := make([]float64, len(r.Epochs))
	for i, e := range r.Epochs {
		out[i] = e.TrainLoss
	}
	return out
}

// runTelemetry groups the serving-path instruments, resolved once per run.
// With a nil registry every instrument is a shared no-op, so the hot loop
// records unconditionally.
type runTelemetry struct {
	lookCache *telemetry.Counter // served by a cache, requested sample itself
	lookSub   *telemetry.Counter // served by a homophily/random substitute
	lookMiss  *telemetry.Counter // fetched from remote storage

	fetchRemote *telemetry.Histogram // simulated per-sample remote fetch
	fetchMemory *telemetry.Histogram // simulated per-sample memory-tier read
	batchWall   *telemetry.Histogram // simulated per-batch wall time
	epochWall   *telemetry.Histogram // simulated per-epoch wall time

	accuracy *telemetry.Gauge
	loss     *telemetry.Gauge
	epochs   *telemetry.Counter

	prefetchHit   *telemetry.Counter   // next batch was ready when needed
	prefetchStall *telemetry.Counter   // training waited on the loader
	prefetchWait  *telemetry.Histogram // real seconds spent waiting per stall

	rcHit  *telemetry.Counter // policy miss served by the remote cache tier
	rcMiss *telemetry.Counter // remote cache answered, value absent
	rcErr  *telemetry.Counter // remote cache unreachable; degraded to storage

	// Worker-pool utilisation, exported as per-epoch deltas of the
	// process-global par/tensor counters (training runs execute serially,
	// so the deltas attribute cleanly to this run's epochs).
	poolTasks   *telemetry.Counter // par tasks executed by pool workers
	inlineTasks *telemetry.Counter // par tasks executed inline on the caller
	kernelsPar  *telemetry.Counter
	kernelsSer  *telemetry.Counter
	poolUtil    *telemetry.Gauge // pooled share of the epoch's par tasks

	lastPool, lastInline, lastKernPar, lastKernSer int64
}

func newRunTelemetry(reg *telemetry.Registry) runTelemetry {
	reg.Describe("lookups_total", "sample lookups per serving tier (cache/substitute/miss)")
	reg.Describe("fetch_seconds", "simulated per-sample fetch latency per storage tier (p50/p95/p99)")
	reg.Describe("batch_seconds", "simulated wall time per mini-batch (p50/p95/p99)")
	reg.Describe("epoch_seconds", "simulated wall time per epoch (p50/p95/p99)")
	reg.Describe("train_accuracy", "held-out Top-1 accuracy after the last epoch")
	reg.Describe("train_loss", "mean training loss of the last epoch")
	reg.Describe("prefetch_batches_total", "prefetched batch joins by outcome (hit = ready in time, stall = training waited)")
	reg.Describe("remote_cache_total", "policy-miss consultations of the remote cache tier by outcome (hit/miss/error)")
	reg.Describe("prefetch_stall_seconds", "real time spent waiting on the prefetch loader per stall")
	reg.Describe("pool_tasks_total", "CPU worker-pool task blocks by execution site (pooled/inline)")
	reg.Describe("tensor_kernels_total", "tensor kernel dispatches by mode (parallel/serial)")
	reg.Describe("pool_utilization", "pooled share of the last epoch's worker-pool task blocks")
	pooled, inline := par.Stats()
	kp, ks := tensor.KernelStats()
	return runTelemetry{
		lookCache:   reg.Counter("lookups_total", telemetry.Labels{"source": "cache"}),
		lookSub:     reg.Counter("lookups_total", telemetry.Labels{"source": "substitute"}),
		lookMiss:    reg.Counter("lookups_total", telemetry.Labels{"source": "miss"}),
		fetchRemote: reg.Histogram("fetch_seconds", telemetry.Labels{"tier": "remote"}),
		fetchMemory: reg.Histogram("fetch_seconds", telemetry.Labels{"tier": "memory"}),
		batchWall:   reg.Histogram("batch_seconds", nil),
		epochWall:   reg.HistogramWindow("epoch_seconds", 256, nil),
		accuracy:    reg.Gauge("train_accuracy", nil),
		loss:        reg.Gauge("train_loss", nil),
		epochs:      reg.Counter("epochs_total", nil),

		prefetchHit:   reg.Counter("prefetch_batches_total", telemetry.Labels{"result": "hit"}),
		prefetchStall: reg.Counter("prefetch_batches_total", telemetry.Labels{"result": "stall"}),
		prefetchWait:  reg.Histogram("prefetch_stall_seconds", nil),

		rcHit:  reg.Counter("remote_cache_total", telemetry.Labels{"result": "hit"}),
		rcMiss: reg.Counter("remote_cache_total", telemetry.Labels{"result": "miss"}),
		rcErr:  reg.Counter("remote_cache_total", telemetry.Labels{"result": "error"}),

		poolTasks:   reg.Counter("pool_tasks_total", telemetry.Labels{"exec": "pooled"}),
		inlineTasks: reg.Counter("pool_tasks_total", telemetry.Labels{"exec": "inline"}),
		kernelsPar:  reg.Counter("tensor_kernels_total", telemetry.Labels{"mode": "parallel"}),
		kernelsSer:  reg.Counter("tensor_kernels_total", telemetry.Labels{"mode": "serial"}),
		poolUtil:    reg.Gauge("pool_utilization", nil),

		lastPool: pooled, lastInline: inline, lastKernPar: kp, lastKernSer: ks,
	}
}

// flushPoolStats publishes the per-epoch deltas of the process-global
// worker-pool and tensor-kernel counters, plus the epoch's pooled share.
func (t *runTelemetry) flushPoolStats() {
	pooled, inline := par.Stats()
	kp, ks := tensor.KernelStats()
	dPool, dInline := pooled-t.lastPool, inline-t.lastInline
	t.poolTasks.Add(dPool)
	t.inlineTasks.Add(dInline)
	t.kernelsPar.Add(kp - t.lastKernPar)
	t.kernelsSer.Add(ks - t.lastKernSer)
	if total := dPool + dInline; total > 0 {
		t.poolUtil.Set(float64(dPool) / float64(total))
	}
	t.lastPool, t.lastInline, t.lastKernPar, t.lastKernSer = pooled, inline, kp, ks
}

// Run trains cfg.Epochs epochs under pol and returns the full record.
func Run(cfg Config, pol policy.Policy) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if pol == nil {
		return nil, fmt.Errorf("trainer: policy must not be nil")
	}
	cfg.fillDefaults()

	rng := xrand.New(cfg.Seed)
	store, err := storage.New(cfg.Storage, rng.Split())
	if err != nil {
		return nil, err
	}
	mlp, err := nn.NewMLP(cfg.MLP, rng.Split())
	if err != nil {
		return nil, err
	}

	ds := cfg.Dataset
	testX := featuresMatrix(ds.TestFeatures)
	clock := &simclock.Clock{}
	res := &Result{
		Policy:  pol.Name(),
		Model:   cfg.Model.Name,
		Dataset: ds.Config.Name,
		Workers: cfg.Workers,
	}

	tel := newRunTelemetry(cfg.Metrics)
	baseLR := cfg.MLP.LR
	var lastSearches, lastSnapHits int64
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		// Cosine learning-rate decay to 10% of the base rate, the standard
		// schedule for the paper's fixed-epoch training runs; it keeps late
		// epochs stable for every sampling policy.
		frac := float64(epoch) / float64(cfg.Epochs)
		mlp.SetLR(baseLR * (0.55 + 0.45*math.Cos(math.Pi*frac)))
		st := runEpoch(cfg, pol, store, mlp, clock, epoch, &tel)
		st.Accuracy, _ = mlp.Evaluate(testX, ds.TestLabels)
		pol.OnEpochEnd(epoch, st.Accuracy)
		tel.epochWall.Observe(st.EpochTime.Seconds())
		tel.accuracy.Set(st.Accuracy)
		tel.loss.Set(st.TrainLoss)
		tel.epochs.Inc()
		tel.flushPoolStats()
		if rep, ok := pol.(policy.ScoreStdReporter); ok {
			st.ScoreStd = rep.ScoreStd()
		}
		if rep, ok := pol.(policy.RatioReporter); ok {
			st.ImpRatio = rep.ImpRatio()
		}
		if rep, ok := pol.(policy.SearchStatsReporter); ok {
			searches, snapHits := rep.SearchStats()
			st.SearchKNN = searches - lastSearches
			st.SnapshotHits = snapHits - lastSnapHits
			lastSearches, lastSnapHits = searches, snapHits
		}
		res.Epochs = append(res.Epochs, st)
		if st.Accuracy > res.BestAcc {
			res.BestAcc = st.Accuracy
		}
	}
	res.TotalTime = clock.Now()
	res.FinalModel = mlp
	if n := len(res.Epochs); n > 0 {
		res.FinalAcc = res.Epochs[n-1].Accuracy
	}
	return res, nil
}

// runEpoch executes one epoch and returns its stats (accuracy filled by the
// caller).
//
// With cfg.Prefetch the epoch loop is a one-deep pipeline: while batch t's
// forward pass runs, a goroutine serves batch t+1. The pipeline joins
// before BackpropWeights, so Lookup/OnMiss for batch t+1 never run
// concurrently with any other policy call — the policy remains effectively
// single-threaded, and the policy-call order (hence the result) is
// deterministic.
func runEpoch(cfg Config, pol policy.Policy, store *storage.Store, mlp *nn.MLP, clock *simclock.Clock, epoch int, tel *runTelemetry) EpochStats {
	ds := cfg.Dataset
	st := EpochStats{Epoch: epoch}
	order := pol.EpochOrder(epoch)
	w := float64(cfg.Workers)

	var batches [][]int
	for start := 0; start < len(order); start += cfg.BatchSize {
		end := start + cfg.BatchSize
		if end > len(order) {
			end = len(order)
		}
		batches = append(batches, order[start:end])
	}

	var lossSum float64
	var lossN int
	span := clock.Start()

	pf := prefetcher{hit: tel.prefetchHit, stall: tel.prefetchStall, stallSec: tel.prefetchWait}
	var pending *batchData
	for b := 0; b < len(batches); b++ {
		// --- Data Loading: serve each requested sample, either prefetched
		// during the previous iteration or inline. Misses share the remote
		// link across workers; hits are served from worker-local memory
		// tiers and scale with the worker count.
		data := pending
		pending = nil
		if data == nil {
			data = serveBatch(pol, store, ds, batches[b], cfg.RemoteCache, tel)
		}
		st.Requests += data.requests
		st.Misses += data.misses
		st.HitCache += data.hitCache
		st.HitSub += data.hitSub
		load := data.missLoad + time.Duration(float64(data.hitLoad)/w)

		// Start serving the next batch; it overlaps only the forward pass
		// below, which makes no policy calls.
		if cfg.Prefetch && b+1 < len(batches) {
			next := batches[b+1]
			pf.spawn(func() *batchData { return serveBatch(pol, store, ds, next, cfg.RemoteCache, tel) })
		}

		// --- Preprocessing + Computation (forward/backward on the real
		// learner; virtual costs from the model profile).
		fr := mlp.Forward(data.x, data.labels)
		fb := make([]policy.Feedback, len(data.served))
		for i, id := range data.served {
			fb[i] = policy.Feedback{
				ID:        id,
				Loss:      fr.Losses[i],
				Embedding: fr.Embeddings[i],
				Correct:   fr.Pred[i] == data.labels[i],
			}
			lossSum += fr.Losses[i]
			lossN++
		}
		if cfg.Prefetch && b+1 < len(batches) {
			pending = pf.join()
		}
		weights := pol.BackpropWeights(fb)
		mlp.Backward(weights)

		backward := cfg.Model.BackwardCost
		if frac := keptFraction(weights); frac < 1 {
			backward = time.Duration(float64(backward) * frac)
		}
		compute := cfg.Model.ForwardCost + backward

		// --- IS stage (graph scoring) with Fig 12 pipeline overlap.
		pol.OnBatchEnd(epoch, fb)
		var visibleIS time.Duration
		if pol.HasGraphIS() {
			visibleIS = cfg.Model.ISCost
			if cfg.PipelineIS {
				budget := backward
				if cfg.Model.DeepOverlap {
					// Long-IS models additionally overlap with the next
					// batch's Stage 1 (approximated by this batch's).
					budget += load + cfg.Model.ForwardCost
				}
				visibleIS = simclock.Overlap2(0, cfg.Model.ISCost, budget)
			}
		}

		comm := time.Duration(0)
		if cfg.Workers > 1 {
			comm = time.Duration(float64(cfg.CommCost) * float64(cfg.Workers-1))
		}

		// Wall-clock charge: loading is shared-bottleneck, compute stages
		// divide across workers, communication is added per batch round.
		// With the prefetch pipeline (default), loading of the next batch
		// overlaps this batch's preprocessing and compute, so the visible
		// cost is the maximum of the two tracks; serial mode sums them.
		preproc := cfg.PreprocessCost / time.Duration(cfg.Workers)
		gpuTrack := preproc + time.Duration(float64(compute+visibleIS)/w)
		var batchWall time.Duration
		if cfg.SerialLoading {
			batchWall = load + gpuTrack + comm
		} else {
			batchWall = max(load, gpuTrack) + comm
		}

		st.LoadTime += load
		st.PreprocTime += preproc
		st.ComputeTime += time.Duration(float64(compute) / w)
		st.ISTime += time.Duration(float64(visibleIS) / w)
		st.CommTime += comm
		tel.batchWall.Observe(batchWall.Seconds())
		clock.Advance(batchWall)
	}

	st.EpochTime = span.Elapsed()
	if lossN > 0 {
		st.TrainLoss = lossSum / float64(lossN)
	}
	return st
}

// keptFraction returns the fraction of batch samples with non-zero backprop
// weight (1 when weights is nil).
func keptFraction(weights []float64) float64 {
	if weights == nil {
		return 1
	}
	kept := 0
	for _, w := range weights {
		if w != 0 {
			kept++
		}
	}
	if len(weights) == 0 {
		return 1
	}
	return float64(kept) / float64(len(weights))
}

// batchTensors materialises the feature matrix and label slice for the
// served sample IDs.
func batchTensors(ds *dataset.Dataset, ids []int) (*tensor.Matrix, []int) {
	dim := ds.Config.Dim
	x := tensor.New(len(ids), dim)
	labels := make([]int, len(ids))
	for i, id := range ids {
		copy(x.Row(i), ds.Features[id])
		labels[i] = ds.Labels[id]
	}
	return x, labels
}

func featuresMatrix(rows [][]float64) *tensor.Matrix {
	if len(rows) == 0 {
		return tensor.New(0, 0)
	}
	x := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	return x
}
