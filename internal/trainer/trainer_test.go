package trainer

import (
	"strings"
	"testing"
	"time"

	"spidercache/internal/dataset"
	"spidercache/internal/nn"
	"spidercache/internal/policy"
)

func tinyDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.New(dataset.Config{
		Name: "tiny", Classes: 4, TrainSize: 400, TestSize: 200, Dim: 8,
		ClusterStd: 0.8, BoundaryFrac: 0.1, IsolatedFrac: 0.02, HardFrac: 0.05,
		PayloadMean: 6144, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func tinyConfig(t *testing.T, epochs int) Config {
	return Config{
		Dataset:    tinyDataset(t),
		Model:      nn.ResNet18,
		Epochs:     epochs,
		BatchSize:  64,
		Workers:    1,
		PipelineIS: true,
		Seed:       7,
	}
}

func TestConfigValidation(t *testing.T) {
	good := tinyConfig(t, 2)
	bad := []func(*Config){
		func(c *Config) { c.Dataset = nil },
		func(c *Config) { c.Epochs = 0 },
		func(c *Config) { c.BatchSize = 0 },
		func(c *Config) { c.Workers = 0 },
		func(c *Config) { c.Model = nn.Profile{} },
	}
	for i, mutate := range bad {
		cfg := good
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := Run(good, nil); err == nil {
		t.Fatal("nil policy accepted")
	}
}

func TestRunBaselineLearns(t *testing.T) {
	cfg := tinyConfig(t, 8)
	pol, err := policy.NewBaselineLRU(cfg.Dataset.Len(), 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Epochs) != 8 {
		t.Fatalf("epoch records %d", len(res.Epochs))
	}
	if res.FinalAcc < 0.5 {
		t.Fatalf("final accuracy %.3f on easy 4-class task", res.FinalAcc)
	}
	if res.BestAcc < res.FinalAcc {
		t.Fatal("best < final")
	}
	if res.TotalTime <= 0 {
		t.Fatal("no simulated time accumulated")
	}
	if res.FinalModel == nil {
		t.Fatal("trained model not exposed")
	}
	first := res.Epochs[0]
	if first.Requests != cfg.Dataset.Len() {
		t.Fatalf("epoch requests %d, want %d", first.Requests, cfg.Dataset.Len())
	}
	if first.HitCache+first.HitSub+first.Misses != first.Requests {
		t.Fatal("hit/miss accounting does not sum to requests")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		cfg := tinyConfig(t, 3)
		pol, _ := policy.NewBaselineLRU(cfg.Dataset.Len(), 80, 1)
		res, err := Run(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	for e := range a.Epochs {
		if a.Epochs[e] != b.Epochs[e] {
			t.Fatalf("epoch %d differs:\n%+v\n%+v", e, a.Epochs[e], b.Epochs[e])
		}
	}
}

func TestHitsReduceEpochTime(t *testing.T) {
	cfg := tinyConfig(t, 4)
	noCache, _ := policy.NewBaselineLRU(cfg.Dataset.Len(), 0, 1)
	bigCache, _ := policy.NewCoorDL(cfg.Dataset.Len(), cfg.Dataset.Len(), 1)
	slow, err := Run(cfg, noCache)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := Run(cfg, bigCache)
	if err != nil {
		t.Fatal(err)
	}
	// A full static cache hits everything after epoch 1.
	if fast.Epochs[3].HitRatio() < 0.99 {
		t.Fatalf("full cache hit ratio %.3f", fast.Epochs[3].HitRatio())
	}
	if fast.Epochs[3].EpochTime >= slow.Epochs[3].EpochTime/2 {
		t.Fatalf("cached epoch (%v) not much faster than uncached (%v)",
			fast.Epochs[3].EpochTime, slow.Epochs[3].EpochTime)
	}
}

func TestLoadingDominatesUncached(t *testing.T) {
	cfg := tinyConfig(t, 2)
	pol, _ := policy.NewBaselineLRU(cfg.Dataset.Len(), 0, 1)
	res, _ := Run(cfg, pol)
	last := res.Epochs[1]
	parts := last.LoadTime + last.PreprocTime + last.ComputeTime + last.ISTime
	if frac := float64(last.LoadTime) / float64(parts); frac <= 0.6 {
		t.Fatalf("loading share %.2f, want > 0.6 (paper Fig 3a)", frac)
	}
	// With the prefetch pipeline the wall clock follows the loading track
	// when uncached.
	if last.EpochTime < last.LoadTime {
		t.Fatalf("wall %v below loading track %v", last.EpochTime, last.LoadTime)
	}
}

// stubPolicy exercises the trainer's policy hooks deterministically.
type stubPolicy struct {
	n          int
	graphIS    bool
	substitute bool
	batchCalls int
	epochCalls int
	gotLosses  bool
	gotEmbed   bool
}

func (s *stubPolicy) Name() string { return "stub" }
func (s *stubPolicy) EpochOrder(int) []int {
	out := make([]int, s.n)
	for i := range out {
		out[i] = i
	}
	return out
}
func (s *stubPolicy) Lookup(id int) policy.Lookup {
	if s.substitute {
		return policy.Lookup{Source: policy.SourceSubstitute, ServedID: (id + 1) % s.n}
	}
	return policy.Lookup{Source: policy.SourceMiss, ServedID: id}
}
func (s *stubPolicy) OnMiss(int, int) {}
func (s *stubPolicy) OnBatchEnd(_ int, fb []policy.Feedback) {
	s.batchCalls++
	for _, f := range fb {
		if f.Loss > 0 {
			s.gotLosses = true
		}
		if len(f.Embedding) > 0 {
			s.gotEmbed = true
		}
	}
}
func (s *stubPolicy) OnEpochEnd(int, float64)                     { s.epochCalls++ }
func (s *stubPolicy) BackpropWeights([]policy.Feedback) []float64 { return nil }
func (s *stubPolicy) HasGraphIS() bool                            { return s.graphIS }

func TestPolicyHooksDriven(t *testing.T) {
	cfg := tinyConfig(t, 2)
	stub := &stubPolicy{n: cfg.Dataset.Len()}
	if _, err := Run(cfg, stub); err != nil {
		t.Fatal(err)
	}
	wantBatches := 2 * ((cfg.Dataset.Len() + cfg.BatchSize - 1) / cfg.BatchSize)
	if stub.batchCalls != wantBatches {
		t.Fatalf("OnBatchEnd calls %d, want %d", stub.batchCalls, wantBatches)
	}
	if stub.epochCalls != 2 {
		t.Fatalf("OnEpochEnd calls %d", stub.epochCalls)
	}
	if !stub.gotLosses || !stub.gotEmbed {
		t.Fatal("feedback missing losses or embeddings")
	}
}

func TestSubstituteAccounting(t *testing.T) {
	cfg := tinyConfig(t, 1)
	stub := &stubPolicy{n: cfg.Dataset.Len(), substitute: true}
	res, err := Run(cfg, stub)
	if err != nil {
		t.Fatal(err)
	}
	e := res.Epochs[0]
	if e.HitSub != e.Requests || e.Misses != 0 {
		t.Fatalf("substitute accounting wrong: %+v", e)
	}
}

func TestPipelineHidesIS(t *testing.T) {
	run := func(pipeline bool) *Result {
		cfg := tinyConfig(t, 2)
		cfg.PipelineIS = pipeline
		// Serial loading isolates the IS pipeline's wall-clock effect from
		// the DataLoader prefetch overlap.
		cfg.SerialLoading = true
		stub := &stubPolicy{n: cfg.Dataset.Len(), graphIS: true}
		res, err := Run(cfg, stub)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	with := run(true)
	without := run(false)
	// ResNet18: IS (16ms) < Stage2 (35ms), so the pipeline hides it fully.
	if with.Epochs[1].ISTime != 0 {
		t.Fatalf("visible IS time %v with pipeline", with.Epochs[1].ISTime)
	}
	if without.Epochs[1].ISTime == 0 {
		t.Fatal("no IS time charged without pipeline")
	}
	if with.TotalTime >= without.TotalTime {
		t.Fatal("pipeline did not shorten the run")
	}
}

func TestNoISChargeForLossPolicies(t *testing.T) {
	cfg := tinyConfig(t, 1)
	stub := &stubPolicy{n: cfg.Dataset.Len(), graphIS: false}
	res, _ := Run(cfg, stub)
	if res.Epochs[0].ISTime != 0 {
		t.Fatal("IS time charged to a non-graph policy")
	}
}

func TestWorkersScaleComputeNotMissLoad(t *testing.T) {
	run := func(workers int) *Result {
		cfg := tinyConfig(t, 2)
		cfg.Workers = workers
		pol, _ := policy.NewBaselineLRU(cfg.Dataset.Len(), 0, 1)
		res, err := Run(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	one := run(1)
	four := run(4)
	// Compute shrinks with workers; miss-dominated loading does not.
	if four.Epochs[1].ComputeTime >= one.Epochs[1].ComputeTime {
		t.Fatal("compute did not scale with workers")
	}
	ratio := float64(one.Epochs[1].LoadTime) / float64(four.Epochs[1].LoadTime)
	if ratio > 1.3 {
		t.Fatalf("miss-bound load scaled too much: %.2fx", ratio)
	}
	if four.Epochs[1].CommTime == 0 {
		t.Fatal("no communication cost with 4 workers")
	}
	if one.Epochs[1].CommTime != 0 {
		t.Fatal("communication cost with 1 worker")
	}
}

func TestAccuracySeriesHelpers(t *testing.T) {
	cfg := tinyConfig(t, 3)
	pol, _ := policy.NewBaselineLRU(cfg.Dataset.Len(), 10, 1)
	res, _ := Run(cfg, pol)
	if len(res.AccuracySeries()) != 3 || len(res.LossSeries()) != 3 {
		t.Fatal("series lengths wrong")
	}
	if res.AvgHitRatio() < 0 || res.AvgHitRatio() > 1 {
		t.Fatal("AvgHitRatio out of range")
	}
}

func TestEpochStatsHitRatio(t *testing.T) {
	e := EpochStats{Requests: 100, HitCache: 30, HitSub: 20}
	if e.HitRatio() != 0.5 {
		t.Fatalf("HitRatio = %g", e.HitRatio())
	}
	if (EpochStats{}).HitRatio() != 0 {
		t.Fatal("empty stats hit ratio nonzero")
	}
}

func TestBatchCostScalesWithSkippedBackprop(t *testing.T) {
	if keptFraction(nil) != 1 {
		t.Fatal("nil weights should keep everything")
	}
	if keptFraction([]float64{0, 0, 1, 1}) != 0.5 {
		t.Fatal("kept fraction wrong")
	}
	if keptFraction([]float64{}) != 1 {
		t.Fatal("empty weights edge case")
	}
}

func TestEvaluateUsesHeldOutSet(t *testing.T) {
	// The accuracy must be computed on the test split: a dataset with an
	// empty-but-valid test size of 1 must still work.
	ds, err := dataset.New(dataset.Config{
		Name: "t1", Classes: 2, TrainSize: 64, TestSize: 1, Dim: 4,
		ClusterStd: 0.5, PayloadMean: 128, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Dataset: ds, Model: nn.ResNet18, Epochs: 1, BatchSize: 16, Workers: 1, Seed: 1}
	pol, _ := policy.NewBaselineLRU(64, 8, 1)
	res, err := Run(cfg, pol)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Epochs[0].Accuracy; acc != 0 && acc != 1 {
		t.Fatalf("single-test-sample accuracy %g", acc)
	}
}

func TestDefaultsFilled(t *testing.T) {
	cfg := tinyConfig(t, 1)
	cfg.fillDefaults()
	if cfg.Storage.Bandwidth == 0 || cfg.PreprocessCost == 0 || cfg.CommCost == 0 {
		t.Fatal("defaults not filled")
	}
	if cfg.MLP.InputDim != cfg.Dataset.Config.Dim || cfg.MLP.Classes != cfg.Dataset.Config.Classes {
		t.Fatal("derived MLP config wrong")
	}
	if cfg.MLP.EmbedDim != nn.ResNet18.EmbedDim {
		t.Fatal("embedding dim not taken from profile")
	}
}

func TestEpochTimeIsSumOfPartsWhenSerial(t *testing.T) {
	cfg := tinyConfig(t, 1)
	cfg.SerialLoading = true
	pol, _ := policy.NewBaselineLRU(cfg.Dataset.Len(), 0, 1)
	res, _ := Run(cfg, pol)
	e := res.Epochs[0]
	sum := e.LoadTime + e.PreprocTime + e.ComputeTime + e.ISTime + e.CommTime
	diff := e.EpochTime - sum
	if diff < 0 {
		diff = -diff
	}
	if diff > time.Millisecond {
		t.Fatalf("serial epoch time %v != parts sum %v", e.EpochTime, sum)
	}
}

func TestPrefetchOverlapsLoading(t *testing.T) {
	run := func(serial bool) *Result {
		cfg := tinyConfig(t, 1)
		cfg.SerialLoading = serial
		pol, _ := policy.NewBaselineLRU(cfg.Dataset.Len(), 0, 1)
		res, err := Run(cfg, pol)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	overlapped := run(false)
	serial := run(true)
	eo, es := overlapped.Epochs[0], serial.Epochs[0]
	if eo.EpochTime >= es.EpochTime {
		t.Fatalf("prefetch did not shorten the epoch: %v vs %v", eo.EpochTime, es.EpochTime)
	}
	// Uncached and load-bound: the overlapped wall tracks loading alone.
	slack := time.Duration(float64(eo.LoadTime) * 0.05)
	if eo.EpochTime > eo.LoadTime+eo.CommTime+slack {
		t.Fatalf("overlapped wall %v far above loading track %v", eo.EpochTime, eo.LoadTime)
	}
}

func TestTrainerResultWriteCSV(t *testing.T) {
	cfg := tinyConfig(t, 2)
	pol, _ := policy.NewBaselineLRU(cfg.Dataset.Len(), 10, 1)
	res, _ := Run(cfg, pol)
	var buf strings.Builder
	if err := res.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("CSV lines %d", len(lines))
	}
	if !strings.Contains(lines[1], "load_ms") || !strings.Contains(lines[1], "imp_ratio") {
		t.Fatalf("header %q", lines[1])
	}
}
