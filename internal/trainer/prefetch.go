package trainer

import (
	"time"

	"spidercache/internal/dataset"
	"spidercache/internal/policy"
	"spidercache/internal/storage"
	"spidercache/internal/telemetry"
	"spidercache/internal/tensor"
)

// batchData is one fully served mini-batch: the Stage 1 work of Algorithm 1
// (cache lookups, miss fetches, substitution, tensor materialisation) plus
// the serving counters, detached from the epoch loop so it can run ahead of
// it on the prefetch goroutine.
type batchData struct {
	served []int
	x      *tensor.Matrix
	labels []int

	requests, misses, hitCache, hitSub int
	missLoad, hitLoad                  time.Duration
}

// serveBatch performs the data-loading stage for one mini-batch: every
// requested sample is served through the policy's caches (miss -> remote
// storage fetch + OnMiss admission), then the feature tensor is built.
//
// It calls pol.Lookup and pol.OnMiss — policies are single-threaded, so
// callers must never run serveBatch concurrently with any other policy
// call. The prefetch pipeline upholds this by only overlapping serveBatch
// with the forward pass, which touches no policy state.
//
// On a policy miss, a non-nil rc (the shared remote cache tier) is
// consulted first: a hit is served at memory-tier cost, anything else —
// clean miss or transport error — degrades to the backing-storage fetch,
// with the payload written back best-effort. The sample remains a policy
// miss in the stats regardless, so EpochStats stay comparable across runs
// with and without the tier.
func serveBatch(pol policy.Policy, store *storage.Store, ds *dataset.Dataset, batch []int, rc RemoteCache, tel *runTelemetry) *batchData {
	d := &batchData{served: make([]int, len(batch))}
	for i, id := range batch {
		lk := pol.Lookup(id)
		d.served[i] = lk.ServedID
		d.requests++
		switch lk.Source {
		case policy.SourceMiss:
			d.misses++
			size := ds.Payload[id]
			served := false
			if rc != nil {
				if v, found, err := rc.Get(id); err != nil {
					tel.rcErr.Inc()
				} else if found {
					dur := store.FetchMemory(len(v))
					d.missLoad += dur
					tel.rcHit.Inc()
					tel.fetchMemory.Observe(dur.Seconds())
					served = true
				} else {
					tel.rcMiss.Inc()
				}
			}
			if !served {
				dur := store.FetchRemote(size)
				d.missLoad += dur
				tel.fetchRemote.Observe(dur.Seconds())
				if rc != nil {
					// Best-effort population: a failed write only costs
					// the next consumer a storage fetch.
					_ = rc.Set(id, make([]byte, size))
				}
			}
			tel.lookMiss.Inc()
			pol.OnMiss(id, size)
		case policy.SourceCache:
			d.hitCache++
			dur := store.FetchMemory(ds.Payload[lk.ServedID])
			d.hitLoad += dur
			tel.lookCache.Inc()
			tel.fetchMemory.Observe(dur.Seconds())
		case policy.SourceSubstitute:
			d.hitSub++
			dur := store.FetchMemory(ds.Payload[lk.ServedID])
			d.hitLoad += dur
			tel.lookSub.Inc()
			tel.fetchMemory.Observe(dur.Seconds())
		}
	}
	d.x, d.labels = batchTensors(ds, d.served)
	return d
}

// prefetchResult carries a served batch or the panic that interrupted it.
type prefetchResult struct {
	data     *batchData
	panicVal any
}

// prefetcher runs serveBatch for batch t+1 on a goroutine while batch t
// computes, giving the epoch loop a one-deep pipeline. A panic on the
// serving goroutine is captured and re-raised at the join point, so errors
// shut the pipeline down cleanly on the caller's stack instead of crashing
// the process from a detached goroutine.
type prefetcher struct {
	ch chan prefetchResult

	hit      *telemetry.Counter
	stall    *telemetry.Counter
	stallSec *telemetry.Histogram
}

// spawn starts serving the next batch in the background.
func (p *prefetcher) spawn(fn func() *batchData) {
	ch := make(chan prefetchResult, 1)
	p.ch = ch
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- prefetchResult{panicVal: r}
			}
		}()
		ch <- prefetchResult{data: fn()}
	}()
}

// join collects the in-flight batch, recording whether the pipeline kept up
// (the batch was ready before training needed it) or stalled, and for how
// long. Re-raises any panic captured on the serving goroutine.
func (p *prefetcher) join() *batchData {
	var r prefetchResult
	select {
	case r = <-p.ch:
		p.hit.Inc()
	default:
		//lint:ignore determinism stall timing is telemetry only; batch contents stay deterministic
		start := time.Now()
		r = <-p.ch
		p.stall.Inc()
		//lint:ignore determinism stall timing is telemetry only; batch contents stay deterministic
		p.stallSec.Observe(time.Since(start).Seconds())
	}
	p.ch = nil
	if r.panicVal != nil {
		panic(r.panicVal)
	}
	return r.data
}
