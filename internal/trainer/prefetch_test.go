// External test package: these tests build policies through the experiments
// registry, which itself imports trainer.
package trainer_test

import (
	"reflect"
	"testing"

	"spidercache/internal/dataset"
	"spidercache/internal/experiments"
	"spidercache/internal/leakcheck"
	"spidercache/internal/nn"
	"spidercache/internal/policy"
	"spidercache/internal/trainer"
)

// checkLeaks asserts the prefetch pipeline's serving goroutine is reaped by
// the time the test ends; the tensor kernels' par workers park by design.
func checkLeaks(t *testing.T) {
	leakcheck.Check(t, leakcheck.IgnoreFunc("internal/par.worker"))
}

func prefetchDataset(tb testing.TB) *dataset.Dataset {
	tb.Helper()
	ds, err := dataset.New(dataset.Config{
		Name: "tiny", Classes: 4, TrainSize: 400, TestSize: 200, Dim: 8,
		ClusterStd: 0.8, BoundaryFrac: 0.1, IsolatedFrac: 0.02, HardFrac: 0.05,
		PayloadMean: 6144, Seed: 3,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return ds
}

func prefetchConfig(tb testing.TB, epochs int, prefetch bool) trainer.Config {
	return trainer.Config{
		Dataset: prefetchDataset(tb), Model: nn.ResNet18, Epochs: epochs,
		BatchSize: 64, Workers: 1, PipelineIS: true, Prefetch: prefetch, Seed: 7,
	}
}

// runWith trains a fresh policy and returns the result stripped of the
// model pointer, so results are directly comparable.
func runWith(t *testing.T, cfg trainer.Config, build func() policy.Policy) *trainer.Result {
	t.Helper()
	res, err := trainer.Run(cfg, build())
	if err != nil {
		t.Fatal(err)
	}
	res.FinalModel = nil
	return res
}

// TestPrefetchDeterministic runs the full SpiderCache policy twice with the
// pipeline on: identical seeds must give identical results in every field
// (epoch stats, simulated times, accuracy trajectory).
func TestPrefetchDeterministic(t *testing.T) {
	checkLeaks(t)
	cfg := prefetchConfig(t, 3, true)
	build := func() policy.Policy {
		pol, err := experiments.BuildPolicy("spider", experiments.PolicyParams{
			Dataset: cfg.Dataset, Capacity: 80, Epochs: cfg.Epochs, Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		return pol
	}
	a := runWith(t, cfg, build)
	b := runWith(t, cfg, build)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("prefetch runs diverged:\n%+v\nvs\n%+v", a, b)
	}
}

// TestPrefetchMatchesSerialForStatelessHooks: for a policy whose OnBatchEnd
// and BackpropWeights do not influence serving (baseline LRU), reordering
// the next batch's lookups ahead of them is unobservable — the pipeline must
// reproduce the serial loop bit for bit.
func TestPrefetchMatchesSerialForStatelessHooks(t *testing.T) {
	checkLeaks(t)
	build := func() policy.Policy {
		pol, err := policy.NewBaselineLRU(400, 80, 5)
		if err != nil {
			t.Fatal(err)
		}
		return pol
	}
	a := runWith(t, prefetchConfig(t, 3, false), build)
	b := runWith(t, prefetchConfig(t, 3, true), build)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("prefetch changed a hook-stateless run:\n%+v\nvs\n%+v", a, b)
	}
}

// panicPolicy wraps a policy and panics on the nth Lookup, emulating a
// loader fault on the prefetch goroutine.
type panicPolicy struct {
	policy.Policy
	lookups, panicAt int
}

func (p *panicPolicy) Lookup(id int) policy.Lookup {
	p.lookups++
	if p.lookups == p.panicAt {
		panic("loader fault")
	}
	return p.Policy.Lookup(id)
}

// TestPrefetchPanicPropagates checks clean shutdown on error: a panic on
// the serving goroutine must resurface on the training goroutine's stack
// (where Run's caller can recover it), not crash the process detached.
func TestPrefetchPanicPropagates(t *testing.T) {
	checkLeaks(t)
	cfg := prefetchConfig(t, 1, true)
	inner, err := policy.NewBaselineLRU(400, 80, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Batch size 64 on 400 samples: lookup 100 lands mid-epoch, inside a
	// prefetched batch.
	pol := &panicPolicy{Policy: inner, panicAt: 100}
	defer func() {
		if r := recover(); r != "loader fault" {
			t.Fatalf("recovered %v, want loader fault", r)
		}
	}()
	_, _ = trainer.Run(cfg, pol)
	t.Fatal("run completed despite loader fault")
}

func benchEpoch(b *testing.B, prefetch bool) {
	cfg := prefetchConfig(b, 1, prefetch)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pol, err := experiments.BuildPolicy("spider", experiments.PolicyParams{
			Dataset: cfg.Dataset, Capacity: 200, Epochs: 1, Seed: 11,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := trainer.Run(cfg, pol); err != nil {
			b.Fatal(err)
		}
	}
}

// End-to-end epoch benchmarks: the same training run with the serial loop
// and with the one-deep prefetch pipeline.
func BenchmarkEpochSerial(b *testing.B)   { benchEpoch(b, false) }
func BenchmarkEpochPrefetch(b *testing.B) { benchEpoch(b, true) }
