package kvserver

import "fmt"

// opKind discriminates queued pipeline operations for reply parsing.
type opKind uint8

const (
	opGet opKind = iota
	opSet
	opDel
	opNGet
	opESet
)

// Result is the outcome of one pipelined operation, in queue order.
type Result struct {
	// Value is the fetched payload (Get and NGet hits only).
	Value []byte
	// Found reports a Get/NGet hit or a Del that removed a key; Set and
	// ESet success is Err == nil.
	Found bool
	// Near is set when an NGet was answered with a semantic substitute
	// rather than an exact hit.
	Near *Near
	// Err is a per-op protocol failure. Transport errors abort the whole
	// Exec instead.
	Err error
}

// Pipeline queues operations on a client and sends them all in one network
// flush; the server answers back to back, so N operations cost one round
// trip instead of N. Build with Client.Pipeline, queue with Get/Set/Del,
// send with Exec. Like Client, a Pipeline is single-goroutine.
//
// Queued requests are written into the client's buffer immediately (a full
// buffer drains to the socket early, which is harmless — replies are only
// expected after Exec). After Exec the pipeline is empty and reusable.
type Pipeline struct {
	c    *Client
	ops  []opKind
	werr error // first queue-time error; Exec reports it
}

// Pipeline starts an empty pipeline on the client. The client must not be
// used for other operations until Exec.
func (c *Client) Pipeline() *Pipeline {
	return &Pipeline{c: c}
}

// Len reports the number of queued operations.
func (p *Pipeline) Len() int { return len(p.ops) }

// Get queues a GET.
func (p *Pipeline) Get(key string) {
	if p.werr != nil {
		return
	}
	if err := validKey(key); err != nil {
		p.werr = err
		return
	}
	p.c.w.WriteString("GET ")
	p.c.w.WriteString(key)
	if _, err := p.c.w.WriteString("\r\n"); err != nil {
		p.werr = err
		return
	}
	p.ops = append(p.ops, opGet)
}

// Set queues a SET.
func (p *Pipeline) Set(key string, value []byte) {
	if p.werr != nil {
		return
	}
	if err := p.c.writeSetFrame("SET ", key, value); err != nil {
		p.werr = err
		return
	}
	p.ops = append(p.ops, opSet)
}

// Del queues a DEL.
func (p *Pipeline) Del(key string) {
	if p.werr != nil {
		return
	}
	if err := validKey(key); err != nil {
		p.werr = err
		return
	}
	p.c.w.WriteString("DEL ")
	p.c.w.WriteString(key)
	if _, err := p.c.w.WriteString("\r\n"); err != nil {
		p.werr = err
		return
	}
	p.ops = append(p.ops, opDel)
}

// NGet queues an NGET (see Client.NGet).
func (p *Pipeline) NGet(key string, emb []float32, threshold float64) {
	if p.werr != nil {
		return
	}
	if err := p.c.writeNGetFrame(key, emb, threshold); err != nil {
		p.werr = err
		return
	}
	p.ops = append(p.ops, opNGet)
}

// ESet queues an ESET (see Client.ESet).
func (p *Pipeline) ESet(key string, emb []float32) {
	if p.werr != nil {
		return
	}
	if err := p.c.writeESetFrame(key, emb); err != nil {
		p.werr = err
		return
	}
	p.ops = append(p.ops, opESet)
}

// Exec flushes every queued operation in one write and collects their
// replies in order. A transport or framing error aborts with a nil slice
// (the connection should be discarded); per-op protocol errors land in the
// matching Result.Err. Exec on an empty pipeline is a no-op.
func (p *Pipeline) Exec() ([]Result, error) {
	ops := p.ops
	p.ops = p.ops[:0]
	if p.werr != nil {
		err := p.werr
		p.werr = nil
		return nil, err
	}
	if len(ops) == 0 {
		return nil, nil
	}
	if err := p.c.flush(); err != nil {
		return nil, err
	}
	results := make([]Result, len(ops))
	for i, kind := range ops {
		switch kind {
		case opGet:
			v, ok, err := p.c.readValueReply("GET")
			if err != nil {
				if isTransportErr(err) {
					return nil, err
				}
				results[i].Err = err
				continue
			}
			results[i].Value, results[i].Found = v, ok
		case opSet:
			if err := p.c.readStoredReply("SET"); err != nil {
				if isTransportErr(err) {
					return nil, err
				}
				results[i].Err = err
			}
		case opDel:
			ok, err := p.c.readDelReply()
			if err != nil {
				if isTransportErr(err) {
					return nil, err
				}
				results[i].Err = err
				continue
			}
			results[i].Found = ok
		case opNGet:
			v, near, ok, err := p.c.readNGetReply()
			if err != nil {
				if isTransportErr(err) {
					return nil, err
				}
				results[i].Err = err
				continue
			}
			results[i].Value, results[i].Near, results[i].Found = v, near, ok
		case opESet:
			if err := p.c.readStoredReply("ESET"); err != nil {
				if isTransportErr(err) {
					return nil, err
				}
				results[i].Err = err
			}
		default:
			return nil, fmt.Errorf("kvserver: unknown pipeline op %d", kind)
		}
	}
	return results, nil
}

// isTransportErr distinguishes connection-level failures (the reply stream
// is unusable, remaining replies will never arrive — abort the Exec) from
// unexpected-reply parses, which the client wraps with a "kvserver:"
// prefix and which consume exactly one reply (safe to report per-op and
// keep reading). A SERVER_ERROR reply also closes the server side, so the
// next read aborts as a transport error anyway.
func isTransportErr(err error) bool {
	s := err.Error()
	return !(len(s) >= 9 && s[:9] == "kvserver:")
}
