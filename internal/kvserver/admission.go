package kvserver

import (
	"sync"
	"sync/atomic"

	"spidercache/internal/telemetry"
)

// admission is a TinyLFU admission filter (Einziger et al., the policy
// behind Caffeine's W-TinyLFU): a frequency sketch decides whether a new
// key deserves the cache slot the eviction policy would have to free for
// it. On insert-at-capacity the arriving key's estimated frequency is
// compared against the eviction victim's; the victim survives unless the
// newcomer is strictly more popular. Under a skewed (zipfian) mix this
// keeps one-hit wonders from churning warm residents out, which is exactly
// where raw LRU bleeds hit rate.
//
// Frequencies live in a 4-bit count-min sketch (four rows, counters capped
// at 15) fronted by a doorkeeper bloom filter: a key's first sighting in
// the current sample window only sets its doorkeeper bits, so the sketch
// counts a key from its *second* sighting on and singletons never pollute
// it. Estimates add the doorkeeper bit back. Once the number of sketched
// touches reaches sampleCap the window closes: every counter is halved
// (the "periodic halving" that turns raw counts into an exponentially
// decayed frequency) and the doorkeeper is cleared.
//
// All hot-path operations are lock-free — the GET path touches the sketch
// outside any shard lock — using CAS loops over the packed counter words;
// the halving pass takes a mutex only to elect one halver, and concurrent
// touches during a halve land approximately, which is fine for a structure
// that is an estimate by construction.
type admission struct {
	mask  uint64      // counters-per-row - 1 (power of two)
	rows  [4][]uint64 // 4-bit counters, 16 per word
	door  []uint64    // doorkeeper bloom bitset
	dmask uint64      // doorkeeper bits - 1 (power of two)

	samples   atomic.Int64 // sketched touches since the last halving
	sampleCap int64

	mu sync.Mutex // elects a single halver

	admitted *telemetry.Counter
	rejected *telemetry.Counter
}

// admissionSampleFactor scales the halving window: the sketch decays after
// seeing ~10 touches per cache slot, the ratio the TinyLFU paper found to
// balance reactivity against retention.
const admissionSampleFactor = 10

// newAdmission sizes a filter for a store of capacity items. reg may be
// nil (no-op instruments). This is the single registration site for the
// kv_admission_total family.
func newAdmission(capacity int, reg *telemetry.Registry) *admission {
	counters := nextPow2(capacity)
	if counters < 64 {
		counters = 64
	}
	doorBits := nextPow2(capacity * 8)
	if doorBits < 512 {
		doorBits = 512
	}
	reg.Describe("kv_admission_total", "TinyLFU admission decisions on insert-at-capacity")
	a := &admission{
		mask:      uint64(counters - 1),
		dmask:     uint64(doorBits - 1),
		door:      make([]uint64, doorBits/64),
		sampleCap: int64(capacity) * admissionSampleFactor,
		admitted:  reg.Counter("kv_admission_total", telemetry.Labels{"result": "admit"}),
		rejected:  reg.Counter("kv_admission_total", telemetry.Labels{"result": "reject"}),
	}
	for i := range a.rows {
		a.rows[i] = make([]uint64, counters/16)
	}
	return a
}

func nextPow2(n int) int {
	p := 1
	for p < n {
		p *= 2
	}
	return p
}

// fnv1a64 is the 64-bit FNV-1a hash, the sketch's key hash (the store's
// 32-bit shard hash is too narrow to derive four independent rows from).
func fnv1a64(key []byte) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

func fnv1a64String(key string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h
}

// mix remixes h into the i-th row's index stream (splitmix64 finalizer,
// seeded per row so the four rows hash independently).
func mix(h, seed uint64) uint64 {
	h += seed * 0x9E3779B97F4A7C15
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return h
}

// touch records one access to the key hashed h. Lock-free; called from the
// GET path outside any shard lock.
func (a *admission) touch(h uint64) {
	if a == nil {
		return
	}
	if a.doorAdd(h) {
		// First sighting this window: the doorkeeper absorbs it.
		return
	}
	for i := range a.rows {
		a.inc(i, mix(h, uint64(i)+1)&a.mask)
	}
	if a.samples.Add(1) >= a.sampleCap {
		a.halve()
	}
}

// estimate returns the decayed frequency estimate for h.
func (a *admission) estimate(h uint64) uint64 {
	est := ^uint64(0)
	for i := range a.rows {
		if c := a.counter(i, mix(h, uint64(i)+1)&a.mask); c < est {
			est = c
		}
	}
	if a.doorHas(h) {
		est++
	}
	return est
}

// admit decides whether a new key (hash h) may displace the eviction
// victim (hash victim), and counts the decision.
func (a *admission) admit(h, victim uint64) bool {
	if a.estimate(h) > a.estimate(victim) {
		a.admitted.Inc()
		return true
	}
	a.rejected.Inc()
	return false
}

// counter reads the 4-bit counter at idx of row i.
func (a *admission) counter(i int, idx uint64) uint64 {
	w := atomic.LoadUint64(&a.rows[i][idx/16])
	return (w >> ((idx % 16) * 4)) & 0xF
}

// inc increments the 4-bit counter at idx of row i, saturating at 15.
func (a *admission) inc(i int, idx uint64) {
	word, shift := idx/16, (idx%16)*4
	for {
		old := atomic.LoadUint64(&a.rows[i][word])
		if (old>>shift)&0xF == 0xF {
			return // saturated; halving will make room
		}
		if atomic.CompareAndSwapUint64(&a.rows[i][word], old, old+1<<shift) {
			return
		}
	}
}

// halveMask clears the high bit of each nibble after a right shift, so a
// whole word of 4-bit counters halves in one operation.
const halveMask = 0x7777777777777777

// halve closes the sample window: all counters are halved and the
// doorkeeper forgets. Concurrent touches may lose an increment to the
// store-after-shift — acceptable for an estimator.
func (a *admission) halve() {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.samples.Load() < a.sampleCap {
		return // another goroutine already halved
	}
	for i := range a.rows {
		row := a.rows[i]
		for w := range row {
			for {
				old := atomic.LoadUint64(&row[w])
				if atomic.CompareAndSwapUint64(&row[w], old, (old>>1)&halveMask) {
					break
				}
			}
		}
	}
	for w := range a.door {
		atomic.StoreUint64(&a.door[w], 0)
	}
	a.samples.Store(0)
}

// doorAdd sets h's doorkeeper bits, reporting true when at least one was
// previously clear (a first sighting this window).
func (a *admission) doorAdd(h uint64) bool {
	fresh := false
	for _, b := range [2]uint64{mix(h, 7) & a.dmask, mix(h, 11) & a.dmask} {
		word, bit := b/64, uint64(1)<<(b%64)
		for {
			old := atomic.LoadUint64(&a.door[word])
			if old&bit != 0 {
				break
			}
			fresh = true
			if atomic.CompareAndSwapUint64(&a.door[word], old, old|bit) {
				break
			}
		}
	}
	return fresh
}

// doorHas reports whether both of h's doorkeeper bits are set.
func (a *admission) doorHas(h uint64) bool {
	for _, b := range [2]uint64{mix(h, 7) & a.dmask, mix(h, 11) & a.dmask} {
		if atomic.LoadUint64(&a.door[b/64])&(uint64(1)<<(b%64)) == 0 {
			return false
		}
	}
	return true
}
