package kvserver

import (
	"bytes"
	"strconv"
	"sync"
	"sync/atomic"

	"spidercache/internal/epoch"
	"spidercache/internal/telemetry"
)

// arenaStore is the GC-free, lock-free-read implementation of the store
// interface. It differs from mutexStore in three coordinated ways.
//
// Memory: a resident key costs ZERO dedicated heap objects. Payload bytes
// live in large []byte chunks (64KiB, or span-sized for oversized values)
// that each shard bump-allocates from; every value is stored as one span
// [klen₂][key][value] and addressed by a packed chunk-id/offset/length
// word — the offset table. The index maps the key's 64-bit hash to a slot
// in a segmented entry slab (map[uint64]uint32 and []aentry segments are
// both pointer-free, so the collector never scans them), and the key
// bytes inside the span disambiguate the ~never case of a 64-bit hash
// collision: a colliding insert displaces the previous key (cache
// semantics allow it), and a lookup whose span key mismatches is a miss —
// wrong bytes can never be returned. Where the mutex store holds two
// scannable heap objects per key (list node + value slice) plus a
// string-keyed map, the whole arena shard is a handful of pointerless
// buffers: GC mark cost goes from O(keys) to O(chunks). Overwrites and
// deletes don't free anything — they mark the old span dead in its chunk;
// when a shard's dead bytes exceed both a floor and half its arena, the
// shard compacts: live spans are copied into fresh chunks and the old
// chunks retired.
//
// Reads: GET never takes the shard mutex. Each shard publishes a
// read-only snapshot of its hash index through an atomic pointer; readers
// look the hash up there, load the slot's location word, and resolve it
// through the shard's atomically-published chunk table. Location words
// are loaded BEFORE the chunk table: sequential consistency then
// guarantees the table observed contains every chunk any observed
// location can name. Chunk memory recycled after compaction is guarded by
// epoch-based reclamation (internal/epoch): the server pins an epoch slot
// around each GET's read-and-reply window, and a retired chunk's bytes
// and table slot are only reused once no reader pinned at or before its
// retirement remains — see the epoch package comment for the full safety
// argument. Anything the fast path cannot positively confirm — hash
// absent from the snapshot, tombstoned slot, span key mismatch — diverts
// to a mutex slow path against the authoritative index, so reads are
// always current; the snapshot is republished after enough index changes
// accumulate.
//
// Eviction: lock-free readers can't maintain an intrusive LRU list, so
// each slot carries an atomic recency stamp (a shard clock bumped on
// every write) and eviction samples K random slots and takes the stalest
// — the approximation Redis uses for allkeys-lru. The TinyLFU admission
// filter (admission.go) applies in front exactly as in mutex mode.
//
// Writers (SET/DEL/compaction) still serialise on the shard mutex.
type arenaStore struct {
	shards      []*arenaShard
	stats_      []shardStat // contiguous padded per-shard counters
	mask        uint64
	adm         *admission   // nil: admit everything
	onEvict     func(string) // eviction notification; set before serving, nil ok
	rec         *epoch.Reclaimer
	deadG       *telemetry.Gauge
	compactions *telemetry.Counter
}

const (
	// arenaChunkSize is the standard chunk; spans larger than this get a
	// dedicated chunk of their exact size.
	arenaChunkSize = 64 << 10
	// arenaCompactMinDead is the dead-bytes floor below which a shard never
	// compacts, so small or write-light shards don't churn.
	arenaCompactMinDead = 256 << 10
	// arenaFreeChunks caps the retired standard chunks a shard keeps for
	// epoch-gated reuse; the rest are dropped to the GC once their table
	// slot can be safely cleared.
	arenaFreeChunks = 4
	// arenaSampleK is the eviction sample width. 5 gives sampled-LRU a
	// stale-victim quality close to exact LRU on zipfian mixes.
	arenaSampleK = 5
	// arenaSpanHeader is the per-span key-length prefix (two bytes,
	// little-endian; MaxKeyLen fits comfortably).
	arenaSpanHeader = 2
	// arenaSegBits sizes an entry-slab segment (1<<arenaSegBits slots).
	// Segments are allocated on demand and never move, so a published
	// slot index stays dereferenceable forever.
	arenaSegBits = 10
)

// A location word packs (chunk id, byte offset, span length) plus a
// presence flag into one uint64, so a whole offset-table row updates with
// a single atomic store:
//
//	bit 63     locPresent (0 means tombstone / empty slot)
//	bits 44-62 chunk id    (locIdxBits wide)
//	bits 27-43 byte offset (locOffBits wide; 0 for dedicated chunks)
//	bits  0-26 span length (locLenBits wide; covers MaxValueSize + key)
//
// Chunk ids index the shard's published chunk table. Ids are recycled
// with their chunks (epoch-gated), so the table size tracks the live
// chunk count; exhausting the 19-bit id space would take ~32GiB of live
// 64KiB chunks in ONE shard.
const (
	locLenBits = 27
	locOffBits = 17
	locIdxBits = 63 - locLenBits - locOffBits
	locPresent = uint64(1) << 63
)

func packLoc(id, off, n int) uint64 {
	return locPresent | uint64(id)<<(locOffBits+locLenBits) | uint64(off)<<locLenBits | uint64(n)
}

// achunk is one arena chunk. All fields are guarded by the owning shard's
// mutex; the bytes of buf are immutable from first publication until the
// chunk is retired AND its retirement epoch is Safe.
type achunk struct {
	buf       []byte
	id        int // slot in the shard's chunk table
	used      int
	dead      int
	retiredAt uint64
}

// aentry is one slot of the segmented entry slab — a row of the offset
// table. It is deliberately pointer-free. Slot lifecycle (hash/listPos
// fields, free-slot membership) is guarded by the shard mutex; loc and
// stamp are atomics because the lock-free read path loads them through
// published snapshots, including stale ones: an overwrite (loc.Store) is
// visible through any snapshot instantly, only index-shape changes
// (insert, delete, evict) wait for a republish.
type aentry struct {
	loc     atomic.Uint64 // packed span location; 0 = tombstone
	stamp   atomic.Int64  // recency clock at last touch
	hash    uint64        // key hash owning this slot
	listPos uint32        // position in shard.list
	_       uint32
}

// freeSlot records a chunk-table slot whose chunk was dropped (not queued
// for byte reuse) at retirement epoch at; the slot may be reassigned once
// that epoch is Safe.
type freeSlot struct {
	id int
	at uint64
}

type arenaShard struct {
	mu       sync.Mutex
	capacity int
	rec      *epoch.Reclaimer

	entries   map[uint64]uint32 // authoritative index: hash -> slot+1; guarded by mu
	list      []uint32          // live slots, for eviction sampling; guarded by mu
	freeSlots []uint32          // unoccupied slab slots; guarded by mu
	nextSlot  uint32            // first never-used slab slot; guarded by mu
	dirty     int               // index-shape changes since the last publish

	snap atomic.Pointer[map[uint64]uint32] // read-only published index
	segs atomic.Pointer[[][]aentry]        // slot/1024 -> segment; copy-on-write growth
	tab  atomic.Pointer[[]*achunk]         // chunk id -> chunk; copy-on-write

	chunks  []*achunk  // in-use chunks
	active  *achunk    // bump-allocation target
	free    []*achunk  // retired chunks awaiting a Safe epoch for byte reuse
	freeIds []freeSlot // table slots of dropped chunks awaiting Safe
	total   int        // bytes across in-use chunks
	dead    int        // dead bytes across in-use chunks

	clock atomic.Int64 // recency clock (see aentry.stamp)

	rng          uint64 // xorshift state for eviction sampling; guarded by mu
	bytesG       *telemetry.Gauge
	deadReported int // portion of dead already folded into the aggregate gauge
}

// newArenaTelemetry is the single registration site for the three
// kv_arena_* families.
func newArenaTelemetry(reg *telemetry.Registry, shards int) ([]*telemetry.Gauge, *telemetry.Gauge, *telemetry.Counter) {
	reg.Describe("kv_arena_bytes", "arena bytes held per shard (live + dead)")
	reg.Describe("kv_arena_dead_bytes", "dead (overwritten/deleted/evicted) arena bytes awaiting compaction")
	reg.Describe("kv_arena_compactions_total", "arena compaction passes")
	bytesG := make([]*telemetry.Gauge, shards)
	for i := range bytesG {
		bytesG[i] = reg.Gauge("kv_arena_bytes", telemetry.Labels{"shard": strconv.Itoa(i)})
	}
	return bytesG, reg.Gauge("kv_arena_dead_bytes", nil), reg.Counter("kv_arena_compactions_total", nil)
}

// newArenaStore builds an arena store. adm and reg may be nil.
func newArenaStore(capacity, shards int, adm *admission, reg *telemetry.Registry) *arenaStore {
	caps := shardCaps(capacity, shards)
	bytesG, deadG, compactions := newArenaTelemetry(reg, len(caps))
	s := &arenaStore{
		shards:      make([]*arenaShard, len(caps)),
		stats_:      make([]shardStat, len(caps)),
		mask:        uint64(len(caps) - 1),
		adm:         adm,
		rec:         epoch.New(),
		deadG:       deadG,
		compactions: compactions,
	}
	for i, c := range caps {
		sh := &arenaShard{
			capacity: c,
			rec:      s.rec,
			entries:  make(map[uint64]uint32, c),
			rng:      uint64(i)*0x9E3779B97F4A7C15 + 0x2545F4914F6CDD1D,
			bytesG:   bytesG[i],
		}
		tab := make([]*achunk, 0)
		sh.tab.Store(&tab)
		segs := make([][]aentry, 0)
		sh.segs.Store(&segs)
		s.shards[i] = sh
	}
	return s
}

var _ store = (*arenaStore)(nil)

// entryAt returns the slab entry for slot. Safe both under the shard
// mutex and from the lock-free read path: segments never move, and the
// copy-on-write segment list is published before any slot inside a new
// segment is.
func (sh *arenaShard) entryAt(slot uint32) *aentry {
	return &(*sh.segs.Load())[slot>>arenaSegBits][slot&(1<<arenaSegBits-1)]
}

// grabSlot returns an unoccupied slab slot, growing the slab by one
// segment if every allocated slot is live. Caller holds sh.mu.
func (sh *arenaShard) grabSlot() uint32 {
	if n := len(sh.freeSlots); n > 0 {
		slot := sh.freeSlots[n-1]
		sh.freeSlots = sh.freeSlots[:n-1]
		return slot
	}
	segs := *sh.segs.Load()
	if int(sh.nextSlot)>>arenaSegBits >= len(segs) {
		next := make([][]aentry, len(segs)+1)
		copy(next, segs)
		next[len(segs)] = make([]aentry, 1<<arenaSegBits)
		sh.segs.Store(&next)
	}
	slot := sh.nextSlot
	sh.nextSlot++
	return slot
}

// touchAt refreshes e's recency stamp to the shard's current clock. The
// clock only advances on writes, so reads never contend on a shared
// counter line — a hot key read repeatedly in one write window skips even
// its own stamp store. The cost is write-window (rather than per-access)
// recency granularity, which is as fine as sampled eviction can exploit:
// eviction only runs on writes, and any key touched since the last write
// already carries the maximum stamp a victim comparison can see.
func (e *aentry) touchAt(sh *arenaShard) {
	if c := sh.clock.Load(); e.stamp.Load() != c {
		e.stamp.Store(c)
	}
}

// resolve turns a location word into its span bytes. loc must have been
// loaded BEFORE this call loads the chunk table: by sequential
// consistency the table is then at least as new as the location, so
// every id a loaded location can name is populated. Callers must hold
// either an epoch pin or the shard mutex.
func (sh *arenaShard) resolve(loc uint64) ([]byte, bool) {
	if loc == 0 {
		return nil, false
	}
	n := int(loc & (1<<locLenBits - 1))
	off := int(loc >> locLenBits & (1<<locOffBits - 1))
	ck := (*sh.tab.Load())[loc>>(locOffBits+locLenBits)&(1<<locIdxBits-1)]
	return ck.buf[off : off+n : off+n], true
}

// spanKey and spanVal split a span ([klen₂][key][value]) without copying.
func spanKey(span []byte) []byte {
	return span[arenaSpanHeader : arenaSpanHeader+int(span[0])|int(span[1])<<8]
}

func spanVal(span []byte) []byte {
	return span[arenaSpanHeader+int(span[0])|int(span[1])<<8:]
}

// pin opens the epoch critical section protecting returned value bytes.
func (s *arenaStore) pin() *epoch.Slot { return s.rec.Pin() }

func (s *arenaStore) get(key string) ([]byte, bool) {
	h := fnv1a64String(key)
	if s.adm != nil {
		s.adm.touch(h)
	}
	i := int(h & s.mask)
	sh := s.shards[i]
	if m := sh.snap.Load(); m != nil {
		if ip, ok := (*m)[h]; ok {
			e := sh.entryAt(ip - 1)
			if span, live := sh.resolve(e.loc.Load()); live && string(spanKey(span)) == key {
				e.touchAt(sh)
				s.stats_[i].hits.Add(1)
				return spanVal(span), true
			}
		}
	}
	// Anything short of a confirmed live hit — hash absent from the
	// snapshot, tombstone, displaced slot — consults the authoritative
	// index.
	sh.mu.Lock()
	var v []byte
	live := false
	if ip, ok := sh.entries[h]; ok {
		e := sh.entryAt(ip - 1)
		if span, ok := sh.resolve(e.loc.Load()); ok && string(spanKey(span)) == key {
			v, live = spanVal(span), true
			e.touchAt(sh)
		}
	}
	sh.mu.Unlock()
	if !live {
		s.stats_[i].misses.Add(1)
		return nil, false
	}
	s.stats_[i].hits.Add(1)
	return v, true
}

// getBytes is the zero-allocation GET path; identical to get modulo the
// key type (bytes.Equal and string(span)==key both avoid allocating).
func (s *arenaStore) getBytes(key []byte) ([]byte, bool) {
	h := fnv1a64(key)
	if s.adm != nil {
		s.adm.touch(h)
	}
	i := int(h & s.mask)
	sh := s.shards[i]
	if m := sh.snap.Load(); m != nil {
		if ip, ok := (*m)[h]; ok {
			e := sh.entryAt(ip - 1)
			if span, live := sh.resolve(e.loc.Load()); live && bytes.Equal(spanKey(span), key) {
				e.touchAt(sh)
				s.stats_[i].hits.Add(1)
				return spanVal(span), true
			}
		}
	}
	sh.mu.Lock()
	var v []byte
	live := false
	if ip, ok := sh.entries[h]; ok {
		e := sh.entryAt(ip - 1)
		if span, ok := sh.resolve(e.loc.Load()); ok && bytes.Equal(spanKey(span), key) {
			v, live = spanVal(span), true
			e.touchAt(sh)
		}
	}
	sh.mu.Unlock()
	if !live {
		s.stats_[i].misses.Add(1)
		return nil, false
	}
	s.stats_[i].hits.Add(1)
	return v, true
}

// peek returns a copy: its callers (migration) hold no pin, and a live
// arena slice could be recycled under them after compaction.
func (s *arenaStore) peek(key string) ([]byte, bool) {
	h := fnv1a64String(key)
	sh := s.shards[h&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ip, ok := sh.entries[h]
	if !ok {
		return nil, false
	}
	span, live := sh.resolve(sh.entryAt(ip - 1).loc.Load())
	if !live || string(spanKey(span)) != key {
		return nil, false
	}
	return append([]byte(nil), spanVal(span)...), true
}

// keys materialises every resident key from its span bytes.
func (s *arenaStore) keys() []string {
	out := make([]string, 0, 256)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for _, slot := range sh.list {
			if span, live := sh.resolve(sh.entryAt(slot).loc.Load()); live {
				out = append(out, string(spanKey(span)))
			}
		}
		sh.mu.Unlock()
	}
	return out
}

func (s *arenaStore) setEvictHook(fn func(string)) { s.onEvict = fn }

func (s *arenaStore) set(key string, value []byte) {
	h := fnv1a64String(key)
	if s.adm != nil {
		s.adm.touch(h)
	}
	sh := s.shards[h&s.mask]
	var evicted string
	hasEvicted := false
	sh.mu.Lock()
	if ip, ok := sh.entries[h]; ok {
		// Overwrite — of this key, or (vanishingly rare 64-bit collision)
		// displacement of another key owning the same hash; either way the
		// slot's span is replaced whole.
		e := sh.entryAt(ip - 1)
		old := e.loc.Load()
		if s.onEvict != nil {
			// A displaced colliding key vanishes from the store here, so
			// it must be reported like any other eviction. Resolving the
			// old span only materializes a key string on the collision
			// path (the comparison itself does not allocate).
			if span, live := sh.resolve(old); live && string(spanKey(span)) != key {
				evicted, hasEvicted = string(spanKey(span)), true
			}
		}
		e.loc.Store(sh.alloc(key, value))
		sh.kill(old)
		e.stamp.Store(sh.clock.Add(1))
	} else {
		if len(sh.entries) >= sh.capacity {
			if vs := sh.sampleVictim(); vs >= 0 {
				victim := sh.entryAt(uint32(vs))
				if s.adm != nil && !s.adm.admit(h, victim.hash) {
					// Rejected: the touch above still credited the key, so a
					// key that keeps arriving eventually earns admission.
					sh.mu.Unlock()
					return
				}
				if s.onEvict != nil {
					if span, live := sh.resolve(victim.loc.Load()); live {
						evicted, hasEvicted = string(spanKey(span)), true
					}
				}
				sh.drop(uint32(vs))
			}
		}
		slot := sh.grabSlot()
		e := sh.entryAt(slot)
		e.hash = h
		e.listPos = uint32(len(sh.list))
		e.loc.Store(sh.alloc(key, value))
		e.stamp.Store(sh.clock.Add(1))
		sh.list = append(sh.list, slot)
		sh.entries[h] = slot + 1
		sh.dirty++
		sh.maybePublish()
	}
	sh.maybeCompact(s)
	sh.refreshGauges(s)
	sh.mu.Unlock()
	// Outside the shard lock: the hook may take its own locks without
	// entering the shard-lock ordering (see the store interface).
	if hasEvicted && s.onEvict != nil {
		s.onEvict(evicted)
	}
}

func (s *arenaStore) del(key string) bool {
	h := fnv1a64String(key)
	sh := s.shards[h&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ip, ok := sh.entries[h]
	if !ok {
		return false
	}
	e := sh.entryAt(ip - 1)
	if span, live := sh.resolve(e.loc.Load()); !live || string(spanKey(span)) != key {
		return false // hash present but owned by a colliding key
	}
	sh.drop(ip - 1)
	sh.maybePublish()
	sh.maybeCompact(s)
	sh.refreshGauges(s)
	return true
}

func (s *arenaStore) stats() (items int, hits, misses int64) {
	for i, sh := range s.shards {
		sh.mu.Lock()
		items += len(sh.entries)
		sh.mu.Unlock()
		hits += s.stats_[i].hits.Load()
		misses += s.stats_[i].misses.Load()
	}
	return items, hits, misses
}

func (s *arenaStore) shardStats(i int) (items int, hits, misses int64, capacity int) {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.entries), s.stats_[i].hits.Load(), s.stats_[i].misses.Load(), sh.capacity
}

func (s *arenaStore) numShards() int { return len(s.shards) }

// alloc reserves arena space for key+value, writes the span in place, and
// returns its packed location. Caller holds sh.mu.
func (sh *arenaShard) alloc(key string, value []byte) uint64 {
	span, loc := sh.reserve(arenaSpanHeader + len(key) + len(value))
	span[0] = byte(len(key))
	span[1] = byte(len(key) >> 8)
	copy(span[arenaSpanHeader:], key)
	copy(span[arenaSpanHeader+len(key):], value)
	return loc
}

// allocSpan copies a whole prebuilt span (compaction's path). Caller
// holds sh.mu.
func (sh *arenaShard) allocSpan(span []byte) uint64 {
	dst, loc := sh.reserve(len(span))
	copy(dst, span)
	return loc
}

// reserve carves n bytes out of the arena and returns the in-place span
// buffer plus its packed location (split so alloc/allocSpan can fill the
// bytes without an intermediate buffer). Caller holds sh.mu.
func (sh *arenaShard) reserve(n int) ([]byte, uint64) {
	if n > arenaChunkSize {
		ck := &achunk{buf: make([]byte, n), used: n}
		sh.mount(ck)
		return ck.buf, packLoc(ck.id, 0, n)
	}
	if sh.active == nil || len(sh.active.buf)-sh.active.used < n {
		if ck := sh.reuseChunk(); ck != nil {
			sh.active = ck
			sh.chunks = append(sh.chunks, ck)
			sh.total += len(ck.buf)
		} else {
			sh.active = &achunk{buf: make([]byte, arenaChunkSize)}
			sh.mount(sh.active)
		}
	}
	ck := sh.active
	off := ck.used
	ck.used += n
	return ck.buf[off : off+n : off+n], packLoc(ck.id, off, n)
}

// mount registers a brand-new chunk: it takes over a Safe dropped slot if
// one exists (republishing the table in place), else appends a new slot.
// Caller holds sh.mu.
func (sh *arenaShard) mount(ck *achunk) {
	tab := *sh.tab.Load()
	slot := -1
	for i, fs := range sh.freeIds {
		if sh.rec.Safe(fs.at) {
			slot = fs.id
			sh.freeIds = append(sh.freeIds[:i], sh.freeIds[i+1:]...)
			break
		}
	}
	var next []*achunk
	if slot >= 0 {
		ck.id = slot
		next = make([]*achunk, len(tab))
		copy(next, tab)
		next[slot] = ck
	} else {
		ck.id = len(tab)
		next = make([]*achunk, len(tab)+1)
		copy(next, tab)
		next[ck.id] = ck
	}
	sh.tab.Store(&next)
	sh.chunks = append(sh.chunks, ck)
	sh.total += len(ck.buf)
}

// reuseChunk returns a retired standard chunk whose grace period has
// elapsed, or nil. A reused chunk keeps its table slot: the chunk object
// (and id) are unchanged, only its bytes get rewritten — legal because no
// reader that could still hold a location into it remains. Caller holds
// sh.mu.
func (sh *arenaShard) reuseChunk() *achunk {
	for i, ck := range sh.free {
		if sh.rec.Safe(ck.retiredAt) {
			sh.free = append(sh.free[:i], sh.free[i+1:]...)
			ck.used, ck.dead, ck.retiredAt = 0, 0, 0
			return ck
		}
	}
	return nil
}

// kill marks a superseded span's bytes dead. Caller holds sh.mu.
func (sh *arenaShard) kill(loc uint64) {
	if loc == 0 {
		return
	}
	n := int(loc & (1<<locLenBits - 1))
	ck := (*sh.tab.Load())[loc>>(locOffBits+locLenBits)&(1<<locIdxBits-1)]
	ck.dead += n
	sh.dead += n
}

// drop removes the entry in slot (delete or eviction). The tombstone
// store makes stale-snapshot readers divert to the authoritative index,
// where the hash is already gone; the slot may be reassigned to a
// different key immediately — readers catch that via the span key check.
// Caller holds sh.mu.
func (sh *arenaShard) drop(slot uint32) {
	e := sh.entryAt(slot)
	old := e.loc.Load()
	e.loc.Store(0)
	sh.kill(old)
	delete(sh.entries, e.hash)
	last := len(sh.list) - 1
	moved := sh.list[last]
	sh.list[e.listPos] = moved
	sh.entryAt(moved).listPos = e.listPos
	sh.list = sh.list[:last]
	sh.freeSlots = append(sh.freeSlots, slot)
	sh.dirty++
}

// sampleVictim picks the stalest of arenaSampleK random live slots,
// returning its slab slot, or -1 if the shard is empty. Caller holds
// sh.mu.
func (sh *arenaShard) sampleVictim() int {
	n := len(sh.list)
	if n == 0 {
		return -1
	}
	best := -1
	var bestStamp int64
	k := arenaSampleK
	if k > n {
		k = n
	}
	for j := 0; j < k; j++ {
		sh.rng ^= sh.rng << 13
		sh.rng ^= sh.rng >> 7
		sh.rng ^= sh.rng << 17
		slot := sh.list[sh.rng%uint64(n)]
		if st := sh.entryAt(slot).stamp.Load(); best < 0 || st < bestStamp {
			best, bestStamp = int(slot), st
		}
	}
	return best
}

// maybePublish republishes the snapshot once enough index-shape changes
// have accumulated: at a quarter of the resident set (amortising the
// copy) with an absolute floor that keeps small shards instantly visible.
// Caller holds sh.mu.
func (sh *arenaShard) maybePublish() {
	if sh.dirty*4 >= len(sh.entries) || sh.dirty >= 64 {
		sh.publish()
	}
}

func (sh *arenaShard) publish() {
	m := make(map[uint64]uint32, len(sh.entries))
	for h, ip := range sh.entries {
		m[h] = ip
	}
	sh.snap.Store(&m)
	sh.dirty = 0
}

// maybeCompact compacts when dead bytes clear the floor AND make up at
// least half the arena, bounding both churn and worst-case waste (steady
// state: live bytes <= arena <= 2x live + floor). Caller holds sh.mu.
func (sh *arenaShard) maybeCompact(s *arenaStore) {
	if sh.dead < arenaCompactMinDead || sh.dead*2 < sh.total {
		return
	}
	sh.compact(s)
}

// compact copies every live span into fresh chunks, republishes each
// slot's location, and retires the old chunks at a new epoch. Standard-
// size chunks queue for byte reuse once the grace period elapses; the
// rest hold their table slot until a later mount observes the slot Safe
// and reassigns it (a dropped chunk must stay reachable through the
// table as long as a pre-retirement reader could resolve into it).
// Caller holds sh.mu.
func (sh *arenaShard) compact(s *arenaStore) {
	old := sh.chunks
	sh.chunks = nil
	sh.active = nil
	sh.total = 0
	sh.dead = 0
	for _, slot := range sh.list {
		e := sh.entryAt(slot)
		span, live := sh.resolve(e.loc.Load())
		if !live {
			continue
		}
		e.loc.Store(sh.allocSpan(span))
	}
	// Every live location now points into the new chunks; readers that
	// pin after this retirement can only see those. Readers pinned before
	// it may still hold old-chunk bytes, so reuse waits for Safe.
	at := sh.rec.Retire()
	for _, ck := range old {
		ck.retiredAt = at
		if len(ck.buf) == arenaChunkSize && len(sh.free) < arenaFreeChunks {
			sh.free = append(sh.free, ck)
		} else {
			sh.freeIds = append(sh.freeIds, freeSlot{id: ck.id, at: at})
		}
	}
	s.compactions.Inc()
}

// refreshGauges folds this shard's arena accounting into the exported
// gauges. Caller holds sh.mu.
func (sh *arenaShard) refreshGauges(s *arenaStore) {
	sh.bytesG.Set(float64(sh.total))
	if d := sh.dead - sh.deadReported; d != 0 {
		s.deadG.Add(float64(d))
		sh.deadReported = sh.dead
	}
}
