package kvserver

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"spidercache/internal/telemetry"
	"spidercache/internal/xrand"
)

// newTestArena builds an arena store without admission. It gets a private
// registry (not nil) so counter assertions see only this store's activity —
// nil-registry instruments all share one no-op counter.
func newTestArena(capacity, shards int) *arenaStore {
	return newArenaStore(capacity, shards, nil, telemetry.NewRegistry())
}

// TestStoreModeEquivalence replays one deterministic mixed op sequence
// against both store implementations at a capacity no workload reaches, so
// eviction (where the two legitimately differ: exact vs sampled LRU) never
// fires — every GET must then return bitwise-identical results.
func TestStoreModeEquivalence(t *testing.T) {
	mutex := newStoreShards(1<<16, 8)
	arena := newTestArena(1<<16, 8)
	rng := xrand.New(42)
	key := func(i int) string { return fmt.Sprintf("eq-key-%d", i) }
	for op := 0; op < 20000; op++ {
		k := key(rng.Intn(700))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			n := rng.Intn(300)
			v := make([]byte, n)
			for j := range v {
				v[j] = byte(rng.Uint64())
			}
			mutex.set(k, v)
			arena.set(k, v)
		case 4:
			if mutex.del(k) != arena.del(k) {
				t.Fatalf("op %d: del(%q) diverged", op, k)
			}
		default:
			mv, mok := mutex.get(k)
			pin := arena.pin()
			av, aok := arena.get(k)
			if mok != aok || !bytes.Equal(mv, av) {
				t.Fatalf("op %d: get(%q) diverged: mutex (%v, %d bytes) arena (%v, %d bytes)",
					op, k, mok, len(mv), aok, len(av))
			}
			pin.Unpin()
		}
	}
	mi, _, _ := mutex.stats()
	ai, _, _ := arena.stats()
	if mi != ai {
		t.Fatalf("resident items diverged: mutex %d, arena %d", mi, ai)
	}
	for _, k := range mutex.keys() {
		mv, _ := mutex.peek(k)
		av, ok := arena.peek(k)
		if !ok || !bytes.Equal(mv, av) {
			t.Fatalf("peek(%q) diverged after replay", k)
		}
	}
}

// TestArenaRaceStress runs pinned lock-free readers against overwriting
// writers and deleters on a single-shard store sized so compaction (and
// chunk reuse) fires many times. Values are uniform-fill and fixed-length,
// so any torn read — bytes recycled under a pinned reader — is detected
// directly, and under -race the detector cross-checks the epoch
// happens-before edges.
func TestArenaRaceStress(t *testing.T) {
	const (
		keys    = 32
		valSize = 8 << 10
		writes  = 1500
	)
	st := newTestArena(keys*2, 1)
	key := func(i int) string { return fmt.Sprintf("rs-%d", i) }
	fill := func(seed byte) []byte {
		v := make([]byte, valSize)
		for i := range v {
			v[i] = seed
		}
		return v
	}
	for i := 0; i < keys; i++ {
		st.set(key(i), fill(byte(i+1)))
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	fail := make(chan string, 16)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				pin := st.pin()
				v, ok := st.get(key(i % keys))
				if ok {
					if len(v) != valSize {
						select {
						case fail <- fmt.Sprintf("reader got %d bytes, want %d", len(v), valSize):
						default:
						}
					}
					b := v[0]
					for j := 0; j < len(v); j += 97 {
						if v[j] != b {
							select {
							case fail <- fmt.Sprintf("torn read at offset %d: %d != %d", j, v[j], b):
							default:
							}
							break
						}
					}
				}
				pin.Unpin()
				i++
			}
		}(g)
	}
	for w := 0; w < writes; w++ {
		k := key(w % keys)
		switch w % 7 {
		case 6:
			st.del(k)
		default:
			st.set(k, fill(byte(w%251+1)))
		}
	}
	close(stop)
	wg.Wait()
	select {
	case msg := <-fail:
		t.Fatal(msg)
	default:
	}
	if got := st.compactions.Value(); got == 0 {
		t.Fatalf("stress never compacted (dead=%d total=%d): thresholds wrong for this workload",
			st.shards[0].dead, st.shards[0].total)
	}
}

// TestServerRaceStressArena is TestServerRaceStress over the arena +
// tinylfu plane: the full wire path (pipelines, batches) against the
// lock-free store under -race.
func TestServerRaceStressArena(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", Options{
		Capacity: 512, Shards: 8, Mode: StoreModeArena, Admission: AdmissionTinyLFU,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const conns = 8
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%40)
				switch i % 5 {
				case 0:
					if err := c.Set(key, []byte("v")); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, _, err := c.Get(key); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := c.Del(key); err != nil {
						errs <- err
						return
					}
				case 3:
					if err := c.MSet([]string{key + "a", key + "b"}, [][]byte{{1}, {2}}); err != nil {
						errs <- err
						return
					}
				case 4:
					p := c.Pipeline()
					p.Set(key, []byte("p"))
					p.Get(key)
					p.Del(key)
					if _, err := p.Exec(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if items, _, _ := srv.Stats(); items > 512 {
		t.Fatalf("capacity breached: %d items", items)
	}
}

// TestArenaCompaction drives overwrites until compaction fires, then
// verifies every live value survived bitwise, the dead-byte ledger reset,
// and retired chunks were recycled rather than reallocated.
func TestArenaCompaction(t *testing.T) {
	st := newTestArena(64, 1)
	sh := st.shards[0]
	val := func(k, gen int) []byte {
		return bytes.Repeat([]byte{byte(k + 1), byte(gen)}, 2<<10)
	}
	const keys = 16
	gens := make([]int, keys)
	for gen := 0; sh.dead < 3*arenaCompactMinDead; gen++ {
		for k := 0; k < keys; k++ {
			st.set(fmt.Sprintf("c-%d", k), val(k, gen))
			gens[k] = gen
		}
		if st.compactions.Value() > 2 {
			break
		}
	}
	if st.compactions.Value() == 0 {
		t.Fatalf("no compaction after %d dead bytes", sh.dead)
	}
	for k := 0; k < keys; k++ {
		got, ok := st.get(fmt.Sprintf("c-%d", k))
		if !ok || !bytes.Equal(got, val(k, gens[k])) {
			t.Fatalf("key %d corrupted after compaction (ok=%v)", k, ok)
		}
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.dead*2 >= sh.total+arenaCompactMinDead {
		t.Fatalf("dead bytes not reclaimed: dead=%d total=%d", sh.dead, sh.total)
	}
	if len(sh.free) == 0 {
		t.Fatal("no retired chunks queued for reuse")
	}
}

// TestArenaGetZeroAlloc is the in-process form of the check.sh alloc gate:
// the pinned arena GET path must not allocate.
func TestArenaGetZeroAlloc(t *testing.T) {
	st := newTestArena(4096, 4)
	payload := bytes.Repeat([]byte("z"), 512)
	keys := make([][]byte, 256)
	for i := range keys {
		k := fmt.Sprintf("za-%d", i)
		st.set(k, payload)
		keys[i] = []byte(k)
	}
	i := 0
	allocs := testing.AllocsPerRun(2000, func() {
		pin := st.pin()
		v, ok := st.getBytes(keys[i%len(keys)])
		if !ok || len(v) != len(payload) {
			t.Fatal("unexpected miss")
		}
		pin.Unpin()
		i++
	})
	if allocs != 0 {
		t.Fatalf("arena GET path allocates %.1f allocs/op, want 0", allocs)
	}
}

// TestTinyLFUBeatsLRUZipfian is the admission-quality gate from the issue:
// on the same zipfian request stream at the same capacity, the
// TinyLFU-fronted store must land a strictly higher hit ratio than raw LRU,
// in both store modes.
func TestTinyLFUBeatsLRUZipfian(t *testing.T) {
	const (
		capacity = 512
		keySpace = 8192
		ops      = 120000
	)
	run := func(mode, adm string) float64 {
		st, err := newStoreFor(Options{Capacity: capacity, Shards: 4, Mode: mode, Admission: adm}, nil)
		if err != nil {
			t.Fatal(err)
		}
		zipf := xrand.NewZipf(xrand.New(1234), 0.99, keySpace)
		val := []byte("v")
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("z-%d", zipf.Next())
			if _, ok := st.get(k); !ok {
				st.set(k, val)
			}
		}
		_, hits, misses := st.stats()
		return float64(hits) / float64(hits+misses)
	}
	lru := run(StoreModeMutex, AdmissionNone)
	tiny := run(StoreModeMutex, AdmissionTinyLFU)
	arenaTiny := run(StoreModeArena, AdmissionTinyLFU)
	t.Logf("zipfian hit ratio: lru=%.4f mutex+tinylfu=%.4f arena+tinylfu=%.4f", lru, tiny, arenaTiny)
	if tiny <= lru {
		t.Fatalf("tinylfu (%.4f) must beat raw LRU (%.4f) on the zipfian mix", tiny, lru)
	}
	if arenaTiny <= lru {
		t.Fatalf("arena+tinylfu (%.4f) must beat raw LRU (%.4f) on the zipfian mix", arenaTiny, lru)
	}
}

// TestAdmissionSketch covers the filter's moving parts directly: the
// doorkeeper absorbs first sightings, repetition raises estimates, halving
// decays them, and admit prefers the hotter key.
func TestAdmissionSketch(t *testing.T) {
	a := newAdmission(64, nil)
	hot, cold := fnv1a64String("hot"), fnv1a64String("cold")
	if got := a.estimate(hot); got != 0 {
		t.Fatalf("untouched estimate = %d, want 0", got)
	}
	a.touch(hot)
	if got := a.estimate(hot); got != 1 {
		t.Fatalf("after one touch (doorkeeper only): estimate = %d, want 1", got)
	}
	for i := 0; i < 10; i++ {
		a.touch(hot)
	}
	a.touch(cold)
	if eh, ec := a.estimate(hot), a.estimate(cold); eh <= ec {
		t.Fatalf("hot estimate %d not above cold %d", eh, ec)
	}
	if !a.admit(hot, cold) {
		t.Fatal("hot key not admitted over cold victim")
	}
	if a.admit(cold, hot) {
		t.Fatal("cold key admitted over hot victim")
	}
	before := a.estimate(hot)
	a.samples.Store(a.sampleCap)
	a.halve()
	if after := a.estimate(hot); after >= before {
		t.Fatalf("halving did not decay: %d -> %d", before, after)
	}
}

// TestArenaMetricsExposed: the new families flow through METRICS in the
// Prometheus exposition.
func TestArenaMetricsExposed(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", Options{
		Capacity: 128, Shards: 2, Mode: StoreModeArena, Admission: AdmissionTinyLFU,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 300; i++ {
		k := fmt.Sprintf("m-%d", i%64)
		if err := c.Set(k, bytes.Repeat([]byte("x"), 64)); err != nil {
			t.Fatal(err)
		}
		if _, _, err := c.Get(k); err != nil {
			t.Fatal(err)
		}
	}
	text := srv.metricsText()
	for _, want := range []string{
		`kv_arena_bytes{shard="0"}`,
		`kv_arena_bytes{shard="1"}`,
		"kv_arena_dead_bytes",
		"kv_arena_compactions_total",
		`kv_admission_total{result=`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("METRICS missing %s", want)
		}
	}
}

// TestStoreModeOptionValidation: unknown modes and policies are rejected at
// startup, not at first use.
func TestStoreModeOptionValidation(t *testing.T) {
	if _, err := ServeWith("127.0.0.1:0", Options{Capacity: 8, Mode: "slab"}); err == nil {
		t.Fatal("unknown store mode accepted")
	}
	if _, err := ServeWith("127.0.0.1:0", Options{Capacity: 8, Admission: "lfu"}); err == nil {
		t.Fatal("unknown admission policy accepted")
	}
	cfg := DefaultConfig()
	cfg.StoreMode = "slab"
	if err := cfg.Validate(); err == nil {
		t.Fatal("Config.Validate accepted unknown store mode")
	}
	cfg = DefaultConfig()
	cfg.Admission = "lfu"
	if err := cfg.Validate(); err == nil {
		t.Fatal("Config.Validate accepted unknown admission policy")
	}
}

// FuzzArenaOffsetTable drives an arena shard with an arbitrary op stream —
// store, overwrite, delete, forced compaction — against a plain map model:
// every surviving key must round-trip its exact bytes through the
// offset/length table regardless of op order.
func FuzzArenaOffsetTable(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{4, 0, 4, 1, 4, 2})
	f.Add([]byte{0, 0, 0, 0, 1, 1, 2, 2, 3, 3, 4, 4})
	f.Add(bytes.Repeat([]byte{0, 4, 1, 4}, 32))
	f.Fuzz(func(t *testing.T, data []byte) {
		st := newTestArena(64, 1)
		sh := st.shards[0]
		model := make(map[string][]byte)
		key := func(b byte) string { return fmt.Sprintf("f-%d", b%13) }
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			k := key(arg)
			switch op % 5 {
			case 0, 1: // set/overwrite with a value derived from the stream
				n := int(arg) * 37 % 900
				v := make([]byte, n)
				for j := range v {
					v[j] = byte(int(arg) + j)
				}
				st.set(k, v)
				model[k] = v
			case 2:
				st.del(k)
				delete(model, k)
			case 3: // forced compaction, regardless of thresholds
				sh.mu.Lock()
				sh.compact(st)
				sh.refreshGauges(st)
				sh.mu.Unlock()
			case 4:
				got, ok := st.get(k)
				want, wok := model[k]
				if ok != wok || !bytes.Equal(got, want) {
					t.Fatalf("op %d: get(%q) = (%d bytes, %v), want (%d bytes, %v)",
						i, k, len(got), ok, len(want), wok)
				}
			}
		}
		for k, want := range model {
			got, ok := st.get(k)
			if !ok || !bytes.Equal(got, want) {
				t.Fatalf("final: get(%q) = (%d bytes, %v), want %d bytes", k, len(got), ok, len(want))
			}
		}
		items, _, _ := st.stats()
		if items != len(model) {
			t.Fatalf("resident %d items, model has %d", items, len(model))
		}
		sh.mu.Lock()
		defer sh.mu.Unlock()
		if sh.dead > sh.total {
			t.Fatalf("accounting broken: dead=%d > total=%d", sh.dead, sh.total)
		}
	})
}
