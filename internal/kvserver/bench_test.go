package kvserver

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

// The serving-path benchmarks compare the three wire disciplines the data
// plane supports, at several connection counts:
//
//   - serial:    one GET per round trip (the pre-batching protocol)
//   - pipeline:  D GETs per round trip via the Pipeline client
//   - mget:      D keys per MGET verb
//
// The acceptance bar for the batching work is pipeline/mget sustaining
// >= 2x the serial ops/s; on multi-core runners the sharded store adds
// further headroom across connections.

const (
	benchPayloadSize = 3 << 10 // CIFAR-sized sample
	benchKeySpace    = 2048
)

func benchKey(i int) string { return fmt.Sprintf("k%d", i%benchKeySpace) }

func startBenchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := Serve("127.0.0.1:0", 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })

	payload := bytes.Repeat([]byte("x"), benchPayloadSize)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, benchKeySpace)
	values := make([][]byte, benchKeySpace)
	for i := range keys {
		keys[i], values[i] = benchKey(i), payload
	}
	if err := c.MSet(keys, values); err != nil {
		b.Fatal(err)
	}
	return srv
}

// runConns splits b.N GETs across conns goroutines, each with its own
// connection driven by loop(client, ops).
func runConns(b *testing.B, srv *Server, conns int, loop func(c *Client, ops int) error) {
	b.Helper()
	b.SetBytes(benchPayloadSize)
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		ops := b.N / conns
		if w == 0 {
			ops += b.N % conns
		}
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := loop(c, ops); err != nil {
				errs <- err
			}
		}(ops)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}

func BenchmarkServerGet(b *testing.B) {
	for _, conns := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("serial/conns=%d", conns), func(b *testing.B) {
			srv := startBenchServer(b)
			runConns(b, srv, conns, func(c *Client, ops int) error {
				for i := 0; i < ops; i++ {
					if _, ok, err := c.Get(benchKey(i)); err != nil || !ok {
						return fmt.Errorf("get %d: ok=%v err=%v", i, ok, err)
					}
				}
				return nil
			})
		})
		b.Run(fmt.Sprintf("pipeline=16/conns=%d", conns), func(b *testing.B) {
			srv := startBenchServer(b)
			runConns(b, srv, conns, func(c *Client, ops int) error {
				p := c.Pipeline()
				for done := 0; done < ops; {
					window := 16
					if ops-done < window {
						window = ops - done
					}
					for i := 0; i < window; i++ {
						p.Get(benchKey(done + i))
					}
					results, err := p.Exec()
					if err != nil {
						return err
					}
					for _, r := range results {
						if !r.Found {
							return fmt.Errorf("miss at %d", done)
						}
					}
					done += window
				}
				return nil
			})
		})
		b.Run(fmt.Sprintf("mget=16/conns=%d", conns), func(b *testing.B) {
			srv := startBenchServer(b)
			runConns(b, srv, conns, func(c *Client, ops int) error {
				keys := make([]string, 16)
				for done := 0; done < ops; {
					window := 16
					if ops-done < window {
						window = ops - done
					}
					for i := 0; i < window; i++ {
						keys[i] = benchKey(done + i)
					}
					_, found, err := c.MGet(keys[:window]...)
					if err != nil {
						return err
					}
					for _, ok := range found {
						if !ok {
							return fmt.Errorf("miss at %d", done)
						}
					}
					done += window
				}
				return nil
			})
		})
	}
}

// BenchmarkServerSetPipelined measures the write path at depth 16.
func BenchmarkServerSetPipelined(b *testing.B) {
	srv := startBenchServer(b)
	payload := bytes.Repeat([]byte("x"), benchPayloadSize)
	runConns(b, srv, 4, func(c *Client, ops int) error {
		p := c.Pipeline()
		for done := 0; done < ops; {
			window := 16
			if ops-done < window {
				window = ops - done
			}
			for i := 0; i < window; i++ {
				p.Set(benchKey(done+i), payload)
			}
			if _, err := p.Exec(); err != nil {
				return err
			}
			done += window
		}
		return nil
	})
}

// BenchmarkStoreGet isolates the store from the network: shards=1 is the
// old single-mutex arrangement, larger counts show the sharding win under
// parallel load (visible on multi-core runners).
func BenchmarkStoreGet(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), benchPayloadSize)
	for _, shards := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			st := newStoreShards(4096, shards)
			for i := 0; i < benchKeySpace; i++ {
				st.set(benchKey(i), payload)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if _, ok := st.get(benchKey(i)); !ok {
						b.Fatal("miss")
					}
					i++
				}
			})
		})
	}
}
