package kvserver

import (
	"bytes"
	"fmt"
	"runtime"
	"sync"
	"testing"
)

// The serving-path benchmarks compare the three wire disciplines the data
// plane supports, at several connection counts:
//
//   - serial:    one GET per round trip (the pre-batching protocol)
//   - pipeline:  D GETs per round trip via the Pipeline client
//   - mget:      D keys per MGET verb
//
// The acceptance bar for the batching work is pipeline/mget sustaining
// >= 2x the serial ops/s; on multi-core runners the sharded store adds
// further headroom across connections.

const (
	benchPayloadSize = 3 << 10 // CIFAR-sized sample
	benchKeySpace    = 2048
)

func benchKey(i int) string { return fmt.Sprintf("k%d", i%benchKeySpace) }

func startBenchServer(b *testing.B) *Server {
	b.Helper()
	srv, err := Serve("127.0.0.1:0", 4096)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Close() })

	payload := bytes.Repeat([]byte("x"), benchPayloadSize)
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	keys := make([]string, benchKeySpace)
	values := make([][]byte, benchKeySpace)
	for i := range keys {
		keys[i], values[i] = benchKey(i), payload
	}
	if err := c.MSet(keys, values); err != nil {
		b.Fatal(err)
	}
	return srv
}

// runConns splits b.N GETs across conns goroutines, each with its own
// connection driven by loop(client, ops).
func runConns(b *testing.B, srv *Server, conns int, loop func(c *Client, ops int) error) {
	b.Helper()
	b.SetBytes(benchPayloadSize)
	b.ResetTimer()
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		ops := b.N / conns
		if w == 0 {
			ops += b.N % conns
		}
		wg.Add(1)
		go func(ops int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			if err := loop(c, ops); err != nil {
				errs <- err
			}
		}(ops)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		b.Fatal(err)
	}
}

func BenchmarkServerGet(b *testing.B) {
	for _, conns := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("serial/conns=%d", conns), func(b *testing.B) {
			srv := startBenchServer(b)
			runConns(b, srv, conns, func(c *Client, ops int) error {
				for i := 0; i < ops; i++ {
					if _, ok, err := c.Get(benchKey(i)); err != nil || !ok {
						return fmt.Errorf("get %d: ok=%v err=%v", i, ok, err)
					}
				}
				return nil
			})
		})
		b.Run(fmt.Sprintf("pipeline=16/conns=%d", conns), func(b *testing.B) {
			srv := startBenchServer(b)
			runConns(b, srv, conns, func(c *Client, ops int) error {
				p := c.Pipeline()
				for done := 0; done < ops; {
					window := 16
					if ops-done < window {
						window = ops - done
					}
					for i := 0; i < window; i++ {
						p.Get(benchKey(done + i))
					}
					results, err := p.Exec()
					if err != nil {
						return err
					}
					for _, r := range results {
						if !r.Found {
							return fmt.Errorf("miss at %d", done)
						}
					}
					done += window
				}
				return nil
			})
		})
		b.Run(fmt.Sprintf("mget=16/conns=%d", conns), func(b *testing.B) {
			srv := startBenchServer(b)
			runConns(b, srv, conns, func(c *Client, ops int) error {
				keys := make([]string, 16)
				for done := 0; done < ops; {
					window := 16
					if ops-done < window {
						window = ops - done
					}
					for i := 0; i < window; i++ {
						keys[i] = benchKey(done + i)
					}
					_, found, err := c.MGet(keys[:window]...)
					if err != nil {
						return err
					}
					for _, ok := range found {
						if !ok {
							return fmt.Errorf("miss at %d", done)
						}
					}
					done += window
				}
				return nil
			})
		})
	}
}

// BenchmarkServerSetPipelined measures the write path at depth 16.
func BenchmarkServerSetPipelined(b *testing.B) {
	srv := startBenchServer(b)
	payload := bytes.Repeat([]byte("x"), benchPayloadSize)
	runConns(b, srv, 4, func(c *Client, ops int) error {
		p := c.Pipeline()
		for done := 0; done < ops; {
			window := 16
			if ops-done < window {
				window = ops - done
			}
			for i := 0; i < window; i++ {
				p.Set(benchKey(done+i), payload)
			}
			if _, err := p.Exec(); err != nil {
				return err
			}
			done += window
		}
		return nil
	})
}

// BenchmarkStoreGet isolates the store from the network: shards=1 is the
// old single-mutex arrangement, larger counts show the sharding win under
// parallel load (visible on multi-core runners). The mode dimension A/Bs
// the two store implementations over the identical pinned GET discipline
// the server uses; run with -benchmem, mode=arena must report 0 allocs/op
// (scripts/check.sh enforces this).
//
// Shard-stat padding note: the per-shard hit/miss counters live in one
// contiguous []shardStat. Before padding each element to a cache line,
// neighbouring shards' counters shared 64-byte lines and every counter
// bump invalidated the neighbour's line; on an 8-core runner that false
// sharing cost ~1.8x ops/s at shards=16 on this benchmark. With the
// padded layout, per-shard counter traffic stays core-local.
func BenchmarkStoreGet(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), benchPayloadSize)
	keys := make([][]byte, benchKeySpace)
	for i := range keys {
		keys[i] = []byte(benchKey(i))
	}
	for _, mode := range []string{StoreModeMutex, StoreModeArena} {
		for _, shards := range []int{1, 4, 16} {
			b.Run(fmt.Sprintf("mode=%s/shards=%d", mode, shards), func(b *testing.B) {
				st, err := newStoreFor(Options{Capacity: 4096, Shards: shards, Mode: mode}, nil)
				if err != nil {
					b.Fatal(err)
				}
				for i := 0; i < benchKeySpace; i++ {
					st.set(benchKey(i), payload)
				}
				b.ReportAllocs()
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					i := 0
					for pb.Next() {
						pin := st.pin()
						if _, ok := st.getBytes(keys[i%benchKeySpace]); !ok {
							b.Fatal("miss")
						}
						pin.Unpin()
						i++
					}
				})
			})
		}
	}
}

// BenchmarkStoreResidentGC measures what the arena exists to eliminate:
// the garbage collector's cost of scanning a large resident cache. Each
// iteration is one forced GC cycle over a store holding 100k values. In
// mutex mode those are ~200k scannable heap objects (list node + value
// slice per key) plus a string-keyed map; in arena mode they collapse
// into a few hundred pointer-free chunks and pointer-free index
// structures the collector never scans, so ns/op drops by more than an
// order of magnitude (measured ~49x at 100k x 512B on the reference
// runner) even though both modes hold identical bytes.
func BenchmarkStoreResidentGC(b *testing.B) {
	const resident = 100_000
	payload := bytes.Repeat([]byte("x"), 512)
	for _, mode := range []string{StoreModeMutex, StoreModeArena} {
		b.Run(fmt.Sprintf("mode=%s", mode), func(b *testing.B) {
			// 2x capacity headroom: per-shard budgets are exact slices of
			// the total, so a store sized exactly to the key count would
			// evict wherever FNV overfills a shard.
			st, err := newStoreFor(Options{Capacity: 2 * resident, Mode: mode}, nil)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < resident; i++ {
				st.set(fmt.Sprintf("gc-%d", i), payload)
			}
			runtime.GC()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runtime.GC()
			}
			b.StopTimer()
			if items, _, _ := st.stats(); items != resident {
				b.Fatalf("resident set shrank to %d", items)
			}
		})
	}
}

// BenchmarkStoreGetWithWriters is the contended mix: every parallel
// worker issues one SET per 64 GETs against a single shard, the
// arrangement where mutex-mode readers must queue behind every writer's
// lock hold while arena readers sail past it lock-free.
func BenchmarkStoreGetWithWriters(b *testing.B) {
	payload := bytes.Repeat([]byte("x"), 512)
	keys := make([][]byte, benchKeySpace)
	for i := range keys {
		keys[i] = []byte(benchKey(i))
	}
	for _, mode := range []string{StoreModeMutex, StoreModeArena} {
		b.Run(fmt.Sprintf("mode=%s", mode), func(b *testing.B) {
			st, err := newStoreFor(Options{Capacity: 4096, Shards: 1, Mode: mode}, nil)
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < benchKeySpace; i++ {
				st.set(benchKey(i), payload)
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%64 == 63 {
						st.set(benchKey(i), payload)
					} else {
						pin := st.pin()
						if _, ok := st.getBytes(keys[i%benchKeySpace]); !ok {
							b.Fatal("miss")
						}
						pin.Unpin()
					}
					i++
				}
			})
		})
	}
}
