package kvserver

import (
	"flag"
	"reflect"
	"sync"
	"testing"
	"time"

	"spidercache/internal/simclock"
)

// fakeHooks records ClusterHooks calls so tests can assert exactly what
// the server fans out — and, critically, what it does NOT (RSET/RDEL must
// never cascade).
type fakeHooks struct {
	mu    sync.Mutex
	hello []string
	nodes []string
	sets  map[string][]byte
	dels  []string
}

func newFakeHooks(nodes ...string) *fakeHooks {
	return &fakeHooks{nodes: nodes, sets: make(map[string][]byte)}
}

func (f *fakeHooks) Hello(addr string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.hello = append(f.hello, addr)
	return f.nodes
}

func (f *fakeHooks) Nodes() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes
}

func (f *fakeHooks) ReplicateSet(keys []string, values [][]byte) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, k := range keys {
		f.sets[k] = append([]byte(nil), values[i]...)
	}
}

func (f *fakeHooks) ReplicateDel(key string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.dels = append(f.dels, key)
}

func (f *fakeHooks) snapshot() (sets map[string][]byte, dels, hello []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	sets = make(map[string][]byte, len(f.sets))
	for k, v := range f.sets {
		sets[k] = v
	}
	return sets, append([]string(nil), f.dels...), append([]string(nil), f.hello...)
}

func serveWithHooks(t *testing.T, hooks ClusterHooks) (*Server, *Client) {
	t.Helper()
	srv, err := ServeWith("127.0.0.1:0", Options{Capacity: 1 << 10, Cluster: hooks})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore errcheck test cleanup
		srv.Close()
	})
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		//lint:ignore errcheck test cleanup
		c.Close()
	})
	return srv, c
}

func TestStandaloneServerAnswersClusterVerbs(t *testing.T) {
	_, c := serveWithHooks(t, nil)
	nodes, err := c.Nodes()
	if err != nil || len(nodes) != 0 {
		t.Fatalf("standalone NODES = %v, %v; want empty, nil", nodes, err)
	}
	nodes, err = c.Hello("127.0.0.1:9999")
	if err != nil || len(nodes) != 0 {
		t.Fatalf("standalone HELLO = %v, %v; want empty, nil", nodes, err)
	}
	// RSET/RDEL behave as SET/DEL on a standalone server.
	if err := c.RSet("k", []byte("v")); err != nil {
		t.Fatalf("RSet: %v", err)
	}
	v, ok, err := c.Get("k")
	if err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after RSet = %q, %v, %v", v, ok, err)
	}
	found, err := c.RDel("k")
	if err != nil || !found {
		t.Fatalf("RDel = %v, %v; want true, nil", found, err)
	}
}

func TestClusterHooksFanOutAndGossip(t *testing.T) {
	hooks := newFakeHooks("127.0.0.1:1", "127.0.0.1:2")
	_, c := serveWithHooks(t, hooks)

	nodes, err := c.Nodes()
	if err != nil || !reflect.DeepEqual(nodes, hooks.nodes) {
		t.Fatalf("NODES = %v, %v; want %v", nodes, err, hooks.nodes)
	}
	nodes, err = c.Hello("127.0.0.1:3")
	if err != nil || !reflect.DeepEqual(nodes, hooks.nodes) {
		t.Fatalf("HELLO reply = %v, %v; want %v", nodes, err, hooks.nodes)
	}
	if _, err := c.Hello("bad addr with spaces"); err == nil {
		t.Fatal("HELLO with a space-bearing address did not error")
	}

	// SET, MSET and DEL reach the hooks; RSET and RDEL must not (the
	// fan-out is acyclic by construction).
	if err := c.Set("a", []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := c.MSet([]string{"b", "c"}, [][]byte{[]byte("2"), []byte("3")}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Del("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Del("ghost"); err != nil { // a miss still replicates the delete
		t.Fatal(err)
	}
	if err := c.RSet("r", []byte("4")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.RDel("b"); err != nil {
		t.Fatal(err)
	}

	sets, dels, hello := hooks.snapshot()
	want := map[string][]byte{"a": []byte("1"), "b": []byte("2"), "c": []byte("3")}
	if !reflect.DeepEqual(sets, want) {
		t.Fatalf("replicated sets = %v, want %v (RSET must not cascade)", sets, want)
	}
	if !reflect.DeepEqual(dels, []string{"a", "ghost"}) {
		t.Fatalf("replicated dels = %v, want [a ghost] (RDEL must not cascade)", dels)
	}
	if !reflect.DeepEqual(hello, []string{"127.0.0.1:3"}) {
		t.Fatalf("hello announcements = %v, want [127.0.0.1:3]", hello)
	}
}

func TestBreakerServingTracksProbeQuota(t *testing.T) {
	clock := &simclock.Clock{}
	b := newTestBreaker(clock)

	if !b.Serving() {
		t.Fatal("closed breaker reports not serving")
	}
	for i := 0; i < 4; i++ {
		b.Allow()
		b.Record(false)
	}
	if b.Serving() {
		t.Fatal("open breaker reports serving")
	}

	// Half-open: serving only while probe quota (2) remains.
	clock.Advance(100 * time.Millisecond)
	if !b.Serving() {
		t.Fatal("half-open breaker with free probe quota reports not serving")
	}
	b.Allow()
	if !b.Serving() {
		t.Fatal("half-open breaker with one probe left reports not serving")
	}
	b.Allow()
	if b.Serving() {
		t.Fatal("half-open breaker with exhausted probe quota reports serving — ops would see fail-fast errors while Health claims healthy")
	}
	b.Record(true)
	b.Record(true)
	if !b.Serving() {
		t.Fatal("re-closed breaker reports not serving")
	}
}

func TestConfigFlagBindingAndDerivation(t *testing.T) {
	cfg := DefaultConfig()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg.BindStoreFlags(fs)
	cfg.BindPoolFlags(fs)
	err := fs.Parse([]string{"-capacity", "512", "-shards", "2", "-conns", "7", "-timeout", "3s", "-retries", "5"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Capacity != 512 || cfg.Shards != 2 || cfg.PoolSize != 7 ||
		cfg.Timeout != 3*time.Second || cfg.Retries != 5 {
		t.Fatalf("flag binding produced %+v", cfg)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}

	so := cfg.ServerOptions(nil)
	if so.Capacity != 512 || so.Shards != 2 {
		t.Fatalf("ServerOptions = %+v", so)
	}
	cfg.Breaker = &BreakerOptions{Window: 4}
	po := cfg.PoolOptions("n1", true, nil)
	if po.Size != 7 || !po.LazyDial || po.Name != "n1" ||
		po.DialTimeout != 3*time.Second || po.Retry.Attempts != 5 {
		t.Fatalf("PoolOptions = %+v", po)
	}
	if po.Breaker == cfg.Breaker {
		t.Fatal("PoolOptions shared the breaker template instead of cloning it")
	}
	if po.Breaker.Window != 4 {
		t.Fatalf("cloned breaker lost its settings: %+v", po.Breaker)
	}

	for _, bad := range []Config{
		{Capacity: 0, PoolSize: 1, Retries: 1},
		{Capacity: 1, PoolSize: 0, Retries: 1},
		{Capacity: 1, PoolSize: 1, Retries: 0},
		{Capacity: 1, PoolSize: 1, Retries: 1, Shards: -1},
		{Capacity: 1, PoolSize: 1, Retries: 1, Timeout: -time.Second},
	} {
		if err := bad.Validate(); err == nil {
			t.Fatalf("Validate accepted %+v", bad)
		}
	}
}
