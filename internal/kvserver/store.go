package kvserver

import (
	"errors"
	"sync"
	"sync/atomic"

	"spidercache/internal/epoch"
	"spidercache/internal/telemetry"
)

// The value store is N-way sharded: keys are FNV-1a-hashed to a shard and
// shards never contend with each other. Two implementations sit behind the
// store interface:
//
//   - mutexStore (this file): each shard is a mutex-guarded exact LRU whose
//     values are individual GC-managed allocations. Simple, strictly
//     ordered, and the reference semantics the arena store is tested
//     against.
//   - arenaStore (arena.go): each shard keeps its payload bytes in a
//     chunked []byte arena with an epoch-protected lock-free GET path and
//     approximate (sampled) LRU eviction.
//
// Both optionally take a TinyLFU admission filter (admission.go): on
// insert-at-capacity the arriving key must out-score the eviction victim's
// estimated frequency or the insert is dropped.
//
// Shard count is a power of two chosen from the capacity: one shard per
// minShardItems items, capped at maxAutoShards. Small stores (capacity <
// 2*minShardItems) stay single-sharded, which preserves strict global LRU
// ordering — the sharded arrangement is LRU *per shard*, so eviction order
// across the whole store is only approximately LRU.

const (
	// minShardItems is the smallest per-shard capacity the automatic
	// shard-count heuristic will produce.
	minShardItems = 64
	// maxAutoShards caps the automatic shard count.
	maxAutoShards = 16
	// MaxShards caps an explicit Options.Shards request.
	MaxShards = 256
)

// Store modes selectable via Options.Mode / Config.StoreMode.
const (
	// StoreModeMutex is the classic arrangement: per-shard mutex, exact
	// LRU, one GC allocation per value.
	StoreModeMutex = "mutex"
	// StoreModeArena keeps values in per-shard []byte arenas with
	// epoch-based lock-free GETs and sampled LRU eviction (see arena.go).
	StoreModeArena = "arena"
)

// Admission policies selectable via Options.Admission / Config.Admission.
const (
	// AdmissionNone admits every insert (evicting per policy when full).
	AdmissionNone = "none"
	// AdmissionTinyLFU gates insert-at-capacity behind the TinyLFU
	// frequency sketch (see admission.go).
	AdmissionTinyLFU = "tinylfu"
)

// store is the interface the server drives; see the package comment above
// for the two implementations.
type store interface {
	// pin opens an epoch read-side critical section guarding any value
	// slice later returned by get/getBytes, until Unpin. The mutex store
	// returns nil (Unpin on nil is a no-op): its values are GC-owned and
	// never recycled.
	pin() *epoch.Slot
	get(key string) ([]byte, bool)
	getBytes(key []byte) ([]byte, bool)
	// peek reads without touching recency, hit/miss counters or the
	// admission sketch. The arena store returns a copy (migration callers
	// hold no pin); the mutex store returns the live value.
	peek(key string) ([]byte, bool)
	keys() []string
	set(key string, value []byte)
	del(key string) bool
	// setEvictHook registers fn to be called with each key the store
	// evicts to make room (NOT keys removed by del — the caller already
	// knows those). Must be set before the store serves traffic; fn is
	// invoked after the owning shard's mutex is released, so it may take
	// locks of its own without ordering against shard locks.
	setEvictHook(fn func(key string))
	stats() (items int, hits, misses int64)
	shardStats(i int) (items int, hits, misses int64, capacity int)
	numShards() int
}

// shardStat is one shard's hit/miss counters, padded out to a full cache
// line. The counters for all shards live in one contiguous slice; without
// the padding, two neighbouring shards' counters share a 64-byte line and
// every hit on shard i invalidates the line under shard i±1's counter —
// false sharing that showed up directly in the shard-sweep benchmark
// (BenchmarkStoreGet: ~1.8x worse ops/s at shards=16 with unpadded
// adjacent counters; see the note there).
type shardStat struct {
	hits   atomic.Int64
	misses atomic.Int64
	_      [48]byte
}

// newStoreFor builds the store Options describe. reg may be nil.
func newStoreFor(opts Options, reg *telemetry.Registry) (store, error) {
	shards := autoShards(opts.Capacity)
	if opts.Shards != 0 {
		shards = opts.Shards
		if shards > MaxShards {
			shards = MaxShards
		}
	}
	var adm *admission
	switch opts.Admission {
	case "", AdmissionNone:
	case AdmissionTinyLFU:
		adm = newAdmission(opts.Capacity, reg)
	default:
		return nil, errors.New("kvserver: unknown admission policy " + opts.Admission + " (want none or tinylfu)")
	}
	switch opts.Mode {
	case "", StoreModeMutex:
		st := newStoreShards(opts.Capacity, shards)
		st.adm = adm
		return st, nil
	case StoreModeArena:
		return newArenaStore(opts.Capacity, shards, adm, reg), nil
	default:
		return nil, errors.New("kvserver: unknown store mode " + opts.Mode + " (want mutex or arena)")
	}
}

// mutexStore routes keys across mutex-LRU shards.
type mutexStore struct {
	shards  []*shard
	stats_  []shardStat // contiguous padded per-shard counters
	mask    uint32
	adm     *admission   // nil: admit everything
	onEvict func(string) // eviction notification; set before serving, nil ok
}

// shard is one independent LRU partition.
type shard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*kvNode
	head     *kvNode // most recently used
	tail     *kvNode
}

type kvNode struct {
	key        string
	value      []byte
	prev, next *kvNode
}

// autoShards picks a power-of-two shard count for capacity.
func autoShards(capacity int) int {
	n := capacity / minShardItems
	if n < 1 {
		n = 1
	}
	if n > maxAutoShards {
		n = maxAutoShards
	}
	return floorPow2(n)
}

func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// shardCaps splits capacity exactly across n shards: base items per shard,
// the remainder spread one-each over the first shards, so the sum of shard
// capacities equals capacity. n is rounded down to a power of two and
// clamped to [1, capacity] so every shard holds at least one item.
func shardCaps(capacity, n int) []int {
	if n < 1 {
		n = 1
	}
	if n > capacity {
		n = capacity
	}
	n = floorPow2(n)
	caps := make([]int, n)
	base, rem := capacity/n, capacity%n
	for i := range caps {
		caps[i] = base
		if i < rem {
			caps[i]++
		}
	}
	return caps
}

// newStore builds a mutex store with the automatic shard count.
func newStore(capacity int) *mutexStore {
	return newStoreShards(capacity, autoShards(capacity))
}

// newStoreShards builds a mutex store with an explicit shard count.
func newStoreShards(capacity, shards int) *mutexStore {
	caps := shardCaps(capacity, shards)
	s := &mutexStore{
		shards: make([]*shard, len(caps)),
		stats_: make([]shardStat, len(caps)),
		mask:   uint32(len(caps) - 1),
	}
	for i, c := range caps {
		s.shards[i] = &shard{capacity: c, entries: make(map[string]*kvNode, c)}
	}
	return s
}

// fnv1a is the 32-bit FNV-1a hash of key.
func fnv1a(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func fnv1aBytes(key []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// pin is a no-op: mutex-store values are GC-owned, never recycled.
func (s *mutexStore) pin() *epoch.Slot { return nil }

func (s *mutexStore) shardFor(key string) (int, *shard) {
	i := int(fnv1a(key) & s.mask)
	return i, s.shards[i]
}

func (s *mutexStore) get(key string) ([]byte, bool) {
	if s.adm != nil {
		s.adm.touch(fnv1a64String(key))
	}
	i, sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[key]
	if !ok {
		s.stats_[i].misses.Add(1)
		return nil, false
	}
	s.stats_[i].hits.Add(1)
	sh.moveToFront(n)
	return n.value, true
}

// getBytes is get with a []byte key: the map lookup via string(key)
// compiles to an allocation-free conversion, so the hot GET path never
// copies the key.
func (s *mutexStore) getBytes(key []byte) ([]byte, bool) {
	if s.adm != nil {
		s.adm.touch(fnv1a64(key))
	}
	i := int(fnv1aBytes(key) & s.mask)
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[string(key)]
	if !ok {
		s.stats_[i].misses.Add(1)
		return nil, false
	}
	s.stats_[i].hits.Add(1)
	sh.moveToFront(n)
	return n.value, true
}

// peek returns the value under key without bumping LRU recency or the
// hit/miss counters — the migration scan's read primitive, so pushing keys
// to a new replica owner neither distorts eviction order nor pollutes the
// serving hit ratio.
func (s *mutexStore) peek(key string) ([]byte, bool) {
	_, sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	return n.value, true
}

// keys returns every resident key. Each shard is snapshotted under its own
// lock, so the result is a consistent per-shard view (keys inserted or
// evicted mid-scan may or may not appear, as with stats).
func (s *mutexStore) keys() []string {
	out := make([]string, 0, 256)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k := range sh.entries {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

func (s *mutexStore) setEvictHook(fn func(string)) { s.onEvict = fn }

func (s *mutexStore) set(key string, value []byte) {
	if s.adm != nil {
		s.adm.touch(fnv1a64String(key))
	}
	_, sh := s.shardFor(key)
	var evicted string
	hasEvicted := false
	sh.mu.Lock()
	if n, ok := sh.entries[key]; ok {
		n.value = value
		sh.moveToFront(n)
		sh.mu.Unlock()
		return
	}
	if len(sh.entries) >= sh.capacity && sh.tail != nil {
		// At capacity: the tail is the victim. With admission on, the
		// newcomer must out-score it or the insert is dropped (the touch
		// above still recorded the access, so a key that keeps arriving
		// eventually earns its slot).
		if s.adm != nil && !s.adm.admit(fnv1a64String(key), fnv1a64String(sh.tail.key)) {
			sh.mu.Unlock()
			return
		}
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
		evicted, hasEvicted = victim.key, true
	}
	n := &kvNode{key: key, value: value}
	sh.entries[key] = n
	sh.pushFront(n)
	sh.mu.Unlock()
	// The hook runs outside the shard lock so it can take its own locks
	// without entering the shard-lock ordering (see the store interface).
	if hasEvicted && s.onEvict != nil {
		s.onEvict(evicted)
	}
}

func (s *mutexStore) del(key string) bool {
	_, sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[key]
	if !ok {
		return false
	}
	sh.unlink(n)
	delete(sh.entries, key)
	return true
}

// stats aggregates (items, hits, misses) across shards. Item counts are
// read per shard under that shard's lock, so the totals are a consistent
// sum of per-shard snapshots (not a single global snapshot — concurrent
// ops may land between shard reads, as with any sharded counter).
func (s *mutexStore) stats() (items int, hits, misses int64) {
	for i, sh := range s.shards {
		sh.mu.Lock()
		items += len(sh.entries)
		sh.mu.Unlock()
		hits += s.stats_[i].hits.Load()
		misses += s.stats_[i].misses.Load()
	}
	return items, hits, misses
}

// shardStats reports (items, hits, misses, capacity) for shard i.
func (s *mutexStore) shardStats(i int) (items int, hits, misses int64, capacity int) {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.entries), s.stats_[i].hits.Load(), s.stats_[i].misses.Load(), sh.capacity
}

func (s *mutexStore) numShards() int { return len(s.shards) }

func (sh *shard) pushFront(n *kvNode) {
	n.prev = nil
	n.next = sh.head
	if sh.head != nil {
		sh.head.prev = n
	}
	sh.head = n
	if sh.tail == nil {
		sh.tail = n
	}
}

func (sh *shard) unlink(n *kvNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sh.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		sh.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (sh *shard) moveToFront(n *kvNode) {
	if sh.head == n {
		return
	}
	sh.unlink(n)
	sh.pushFront(n)
}
