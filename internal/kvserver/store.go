package kvserver

import "sync"

// The value store is an N-way sharded LRU: keys are FNV-1a-hashed to a
// shard, each shard is an independent mutex-guarded LRU with its own slice
// of the item capacity and its own hit/miss counters. Concurrent GET/SET on
// different shards never contend; STATS and METRICS aggregate across
// shards.
//
// Shard count is a power of two chosen from the capacity: one shard per
// minShardItems items, capped at maxAutoShards. Small stores (capacity <
// 2*minShardItems) stay single-sharded, which preserves strict global LRU
// ordering — the sharded arrangement is LRU *per shard*, so eviction order
// across the whole store is only approximately LRU.

const (
	// minShardItems is the smallest per-shard capacity the automatic
	// shard-count heuristic will produce.
	minShardItems = 64
	// maxAutoShards caps the automatic shard count.
	maxAutoShards = 16
	// MaxShards caps an explicit Options.Shards request.
	MaxShards = 256
)

// store routes keys across shards.
type store struct {
	shards []*shard
	mask   uint32
}

// shard is one independent LRU partition.
type shard struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*kvNode
	head     *kvNode // most recently used
	tail     *kvNode
	hits     int64
	misses   int64
}

type kvNode struct {
	key        string
	value      []byte
	prev, next *kvNode
}

// autoShards picks a power-of-two shard count for capacity.
func autoShards(capacity int) int {
	n := capacity / minShardItems
	if n < 1 {
		n = 1
	}
	if n > maxAutoShards {
		n = maxAutoShards
	}
	return floorPow2(n)
}

func floorPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

// newStore builds a store with the automatic shard count for capacity.
func newStore(capacity int) *store {
	return newStoreShards(capacity, autoShards(capacity))
}

// newStoreShards builds a store with an explicit shard count (rounded down
// to a power of two, clamped to [1, capacity] so every shard holds at least
// one item).
func newStoreShards(capacity, shards int) *store {
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	shards = floorPow2(shards)
	s := &store{shards: make([]*shard, shards), mask: uint32(shards - 1)}
	// Split the capacity exactly: base items per shard, the remainder
	// spread one-each over the first shards, so sum(shard capacities) ==
	// capacity.
	base, rem := capacity/shards, capacity%shards
	for i := range s.shards {
		cap := base
		if i < rem {
			cap++
		}
		s.shards[i] = &shard{capacity: cap, entries: make(map[string]*kvNode, cap)}
	}
	return s
}

// fnv1a is the 32-bit FNV-1a hash of key.
func fnv1a(key string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

func (s *store) shardFor(key string) *shard {
	return s.shards[fnv1a(key)&s.mask]
}

func (s *store) get(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[key]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	sh.moveToFront(n)
	return n.value, true
}

// getBytes is get with a []byte key: the map lookup via string(key)
// compiles to an allocation-free conversion, so the hot GET path never
// copies the key.
func (s *store) getBytes(key []byte) ([]byte, bool) {
	sh := s.shards[fnv1aBytes(key)&s.mask]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[string(key)]
	if !ok {
		sh.misses++
		return nil, false
	}
	sh.hits++
	sh.moveToFront(n)
	return n.value, true
}

func fnv1aBytes(key []byte) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return h
}

// peek returns the value under key without bumping LRU recency or the
// hit/miss counters — the migration scan's read primitive, so pushing keys
// to a new replica owner neither distorts eviction order nor pollutes the
// serving hit ratio.
func (s *store) peek(key string) ([]byte, bool) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[key]
	if !ok {
		return nil, false
	}
	return n.value, true
}

// keys returns every resident key. Each shard is snapshotted under its own
// lock, so the result is a consistent per-shard view (keys inserted or
// evicted mid-scan may or may not appear, as with stats).
func (s *store) keys() []string {
	out := make([]string, 0, 256)
	for _, sh := range s.shards {
		sh.mu.Lock()
		for k := range sh.entries {
			out = append(out, k)
		}
		sh.mu.Unlock()
	}
	return out
}

func (s *store) set(key string, value []byte) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if n, ok := sh.entries[key]; ok {
		n.value = value
		sh.moveToFront(n)
		return
	}
	if len(sh.entries) >= sh.capacity && sh.tail != nil {
		victim := sh.tail
		sh.unlink(victim)
		delete(sh.entries, victim.key)
	}
	n := &kvNode{key: key, value: value}
	sh.entries[key] = n
	sh.pushFront(n)
}

func (s *store) del(key string) bool {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	n, ok := sh.entries[key]
	if !ok {
		return false
	}
	sh.unlink(n)
	delete(sh.entries, key)
	return true
}

// stats aggregates (items, hits, misses) across shards. The counters are
// read per shard under that shard's lock, so the totals are a consistent
// sum of per-shard snapshots (not a single global snapshot — concurrent
// ops may land between shard reads, as with any sharded counter).
func (s *store) stats() (items int, hits, misses int64) {
	for _, sh := range s.shards {
		sh.mu.Lock()
		items += len(sh.entries)
		hits += sh.hits
		misses += sh.misses
		sh.mu.Unlock()
	}
	return items, hits, misses
}

// shardStats reports (items, hits, misses, capacity) for shard i.
func (s *store) shardStats(i int) (items int, hits, misses int64, capacity int) {
	sh := s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return len(sh.entries), sh.hits, sh.misses, sh.capacity
}

func (s *store) numShards() int { return len(s.shards) }

func (sh *shard) pushFront(n *kvNode) {
	n.prev = nil
	n.next = sh.head
	if sh.head != nil {
		sh.head.prev = n
	}
	sh.head = n
	if sh.tail == nil {
		sh.tail = n
	}
}

func (sh *shard) unlink(n *kvNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		sh.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		sh.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (sh *shard) moveToFront(n *kvNode) {
	if sh.head == n {
		return
	}
	sh.unlink(n)
	sh.pushFront(n)
}
