package kvserver

import (
	"sync"
	"time"
)

// BreakerState is the circuit breaker's three-state machine.
type BreakerState int32

const (
	// BreakerClosed: requests flow; outcomes feed the sliding window.
	BreakerClosed BreakerState = iota
	// BreakerHalfOpen: the open interval elapsed; a limited number of probe
	// requests test the node. Success closes the breaker, failure reopens.
	BreakerHalfOpen
	// BreakerOpen: the failure rate tripped the threshold; requests fail
	// fast without touching the node until OpenFor elapses.
	BreakerOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	default:
		return "unknown"
	}
}

// BreakerOptions tunes a Breaker. The zero value is usable: every field
// falls back to the documented default.
type BreakerOptions struct {
	// Window is the sliding window of recorded outcomes (default 32).
	Window int
	// FailureThreshold opens the breaker when the window's failure rate
	// reaches it, once MinSamples outcomes are recorded (default 0.5).
	FailureThreshold float64
	// MinSamples is the minimum recorded outcomes before the threshold is
	// evaluated, so one early failure cannot trip an idle node (default 8).
	MinSamples int
	// OpenFor is how long the breaker stays open before allowing a
	// half-open probe (default 500ms).
	OpenFor time.Duration
	// HalfOpenSuccesses is the consecutive probe successes required to close
	// from half-open (default 1).
	HalfOpenSuccesses int
	// Now supplies monotonic time, for deterministic tests (e.g. a
	// simclock.Clock's Now method). Nil means wall time measured from the
	// breaker's creation.
	Now func() time.Duration
}

func (o BreakerOptions) withDefaults() BreakerOptions {
	if o.Window <= 0 {
		o.Window = 32
	}
	if o.FailureThreshold <= 0 {
		o.FailureThreshold = 0.5
	}
	if o.MinSamples <= 0 {
		o.MinSamples = 8
	}
	if o.OpenFor <= 0 {
		o.OpenFor = 500 * time.Millisecond
	}
	if o.HalfOpenSuccesses <= 0 {
		o.HalfOpenSuccesses = 1
	}
	return o
}

// Breaker is a per-node circuit breaker: a sliding window of op outcomes
// drives closed -> open -> half-open -> closed transitions. It is safe for
// concurrent use.
//
// Callers ask Allow before an op and Record the outcome after; an op denied
// by Allow must not be sent (and must not be recorded).
type Breaker struct {
	opts BreakerOptions

	mu       sync.Mutex
	state    BreakerState
	window   []bool // ring of outcomes; true = failure
	next     int
	n        int
	fails    int
	openedAt time.Duration // Now() at the open transition
	probes   int           // in-flight half-open probes
	probeOK  int           // consecutive half-open successes
	start    time.Time     // wall-clock epoch for the default Now
}

// NewBreaker builds a breaker from opts (zero value = defaults).
func NewBreaker(opts BreakerOptions) *Breaker {
	b := &Breaker{opts: opts.withDefaults(), start: time.Now()}
	b.window = make([]bool, b.opts.Window)
	return b
}

// now reads the injected or wall clock.
func (b *Breaker) now() time.Duration {
	if b.opts.Now != nil {
		return b.opts.Now()
	}
	return time.Since(b.start)
}

// State reports the current state (transitioning open -> half-open if the
// open interval has elapsed, so observers see the same state Allow would).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	return b.state
}

// Serving reports whether a request would be allowed right now, without
// consuming a half-open probe slot. It differs from State in exactly the
// case operators care about: a half-open breaker whose probe quota is
// already in flight fails every further request fast (Allow returns
// false), so it is NOT serving even though State still says half-open.
// Health reporting should use Serving, not State, to describe what callers
// actually experience.
func (b *Breaker) Serving() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.maybeHalfOpen()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerHalfOpen:
		return b.probes < b.opts.HalfOpenSuccesses
	default:
		return false
	}
}

// Allow reports whether a request may proceed. In half-open state only
// HalfOpenSuccesses probes may be in flight at once; excess requests fail
// fast like open.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		b.maybeHalfOpen()
		if b.state != BreakerHalfOpen {
			return false
		}
		fallthrough
	case BreakerHalfOpen:
		if b.probes >= b.opts.HalfOpenSuccesses {
			return false
		}
		b.probes++
		return true
	default:
		return false
	}
}

// maybeHalfOpen transitions open -> half-open once OpenFor has elapsed.
// Caller holds b.mu.
func (b *Breaker) maybeHalfOpen() {
	if b.state == BreakerOpen && b.now()-b.openedAt >= b.opts.OpenFor {
		b.state = BreakerHalfOpen
		b.probes = 0
		b.probeOK = 0
	}
}

// Record feeds one op outcome back. In closed state it updates the sliding
// window and trips to open past the failure threshold; in half-open state a
// success counts toward closing and a failure reopens immediately.
func (b *Breaker) Record(success bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		b.push(!success)
		if b.n >= b.opts.MinSamples &&
			float64(b.fails)/float64(b.n) >= b.opts.FailureThreshold {
			b.trip()
		}
	case BreakerHalfOpen:
		if b.probes > 0 {
			b.probes--
		}
		if !success {
			b.trip()
			return
		}
		b.probeOK++
		if b.probeOK >= b.opts.HalfOpenSuccesses {
			b.state = BreakerClosed
			b.resetWindow()
		}
	case BreakerOpen:
		// A straggler from before the trip; the window is already moot.
	}
}

// push records one outcome into the ring. Caller holds b.mu.
func (b *Breaker) push(fail bool) {
	if b.n == len(b.window) {
		if b.window[b.next] {
			b.fails--
		}
	} else {
		b.n++
	}
	b.window[b.next] = fail
	if fail {
		b.fails++
	}
	b.next = (b.next + 1) % len(b.window)
}

// trip moves to open and stamps the open time. Caller holds b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.probes = 0
	b.probeOK = 0
}

// resetWindow clears the outcome ring after closing. Caller holds b.mu.
func (b *Breaker) resetWindow() {
	b.next, b.n, b.fails = 0, 0, 0
	for i := range b.window {
		b.window[i] = false
	}
}
