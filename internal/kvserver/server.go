// Package kvserver implements the in-memory cache tier as a real networked
// service — the role Redis plays in the paper's implementation ("uses Redis
// for in-memory caching, following SHADE").
//
// The simulation in internal/storage models this tier's *cost*; kvserver is
// the working implementation for deployments that want an actual shared
// cache process: a TCP server speaking a small memcached-style text
// protocol, backed by a concurrency-safe LRU store with an item capacity.
//
// Protocol (lines end in \r\n; payloads are raw bytes):
//
//	SET <key> <nbytes>\r\n<payload>\r\n    -> STORED | SERVER_ERROR <msg>
//	GET <key>\r\n                          -> VALUE <nbytes>\r\n<payload>\r\n | NOT_FOUND
//	DEL <key>\r\n                          -> DELETED | NOT_FOUND
//	STATS\r\n                              -> STATS <items> <hits> <misses>\r\n
//	METRICS\r\n                            -> METRICS <nbytes>\r\n<payload>\r\n
//	QUIT\r\n                               -> connection closed
//
// METRICS returns the server's telemetry registry rendered in the
// Prometheus text exposition format: per-op counters
// (kv_ops_total{op=...,result=...}), per-op latency summaries with
// p50/p95/p99 (kv_op_seconds{op=...}) and resident-item/hit/miss gauges —
// a strict superset of STATS.
package kvserver

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spidercache/internal/telemetry"
)

// MaxValueSize bounds a single payload (guards the server against abusive
// SETs).
const MaxValueSize = 64 << 20

// MaxKeyLen bounds key length.
const MaxKeyLen = 256

// store is the concurrency-safe LRU value store.
type store struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*kvNode
	head     *kvNode // most recently used
	tail     *kvNode
	hits     int64
	misses   int64
}

type kvNode struct {
	key        string
	value      []byte
	prev, next *kvNode
}

func newStore(capacity int) *store {
	return &store{capacity: capacity, entries: make(map[string]*kvNode, capacity)}
}

func (s *store) get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[key]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.moveToFront(n)
	return n.value, true
}

func (s *store) set(key string, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n, ok := s.entries[key]; ok {
		n.value = value
		s.moveToFront(n)
		return
	}
	if len(s.entries) >= s.capacity && s.tail != nil {
		victim := s.tail
		s.unlink(victim)
		delete(s.entries, victim.key)
	}
	n := &kvNode{key: key, value: value}
	s.entries[key] = n
	s.pushFront(n)
}

func (s *store) del(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, ok := s.entries[key]
	if !ok {
		return false
	}
	s.unlink(n)
	delete(s.entries, key)
	return true
}

func (s *store) stats() (items int, hits, misses int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries), s.hits, s.misses
}

func (s *store) pushFront(n *kvNode) {
	n.prev = nil
	n.next = s.head
	if s.head != nil {
		s.head.prev = n
	}
	s.head = n
	if s.tail == nil {
		s.tail = n
	}
}

func (s *store) unlink(n *kvNode) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		s.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		s.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

func (s *store) moveToFront(n *kvNode) {
	if s.head == n {
		return
	}
	s.unlink(n)
	s.pushFront(n)
}

// Server is the TCP cache server.
type Server struct {
	store    *store
	listener net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool

	reg *telemetry.Registry
	tel serverTelemetry
}

// serverTelemetry groups the per-op instruments, resolved once at startup.
type serverTelemetry struct {
	getHit, getMiss, setOps, delHit, delMiss *telemetry.Counter
	getLat, setLat, delLat                   *telemetry.Histogram
	items, hits, misses                      *telemetry.Gauge
}

func newServerTelemetry(reg *telemetry.Registry) serverTelemetry {
	reg.Describe("kv_ops_total", "kvserver operations by op and result")
	reg.Describe("kv_op_seconds", "kvserver per-op service latency (p50/p95/p99)")
	reg.Describe("kv_items", "resident items")
	return serverTelemetry{
		getHit:  reg.Counter("kv_ops_total", telemetry.Labels{"op": "get", "result": "hit"}),
		getMiss: reg.Counter("kv_ops_total", telemetry.Labels{"op": "get", "result": "miss"}),
		setOps:  reg.Counter("kv_ops_total", telemetry.Labels{"op": "set", "result": "stored"}),
		delHit:  reg.Counter("kv_ops_total", telemetry.Labels{"op": "del", "result": "deleted"}),
		delMiss: reg.Counter("kv_ops_total", telemetry.Labels{"op": "del", "result": "miss"}),
		getLat:  reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "get"}),
		setLat:  reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "set"}),
		delLat:  reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "del"}),
		items:   reg.Gauge("kv_items", nil),
		hits:    reg.Gauge("kv_hits", nil),
		misses:  reg.Gauge("kv_misses", nil),
	}
}

// Options configures a server beyond the listen address.
type Options struct {
	// Capacity is the item budget of the LRU store (required, >= 1).
	Capacity int
	// Registry receives the server's telemetry and backs the METRICS verb.
	// Nil means a private registry owned by the server — METRICS always
	// works. Passing a shared registry lets a host process fold kvserver
	// metrics into its own exposition (and vice versa: anything else
	// registered there is served by METRICS too).
	Registry *telemetry.Registry
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") holding up to capacity
// items. It returns once the listener is bound; connections are handled in
// background goroutines until Close.
func Serve(addr string, capacity int) (*Server, error) {
	return ServeWith(addr, Options{Capacity: capacity})
}

// ServeWith is Serve with full Options.
func ServeWith(addr string, opts Options) (*Server, error) {
	if opts.Capacity < 1 {
		return nil, fmt.Errorf("kvserver: capacity must be >= 1, got %d", opts.Capacity)
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &Server{
		store:    newStore(opts.Capacity),
		listener: ln,
		reg:      reg,
		tel:      newServerTelemetry(reg),
	}
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv, nil
}

// Metrics returns the server's telemetry registry (never nil).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the listener and waits for in-flight connections to finish.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

// Stats reports (items, hits, misses).
func (s *Server) Stats() (int, int64, int64) { return s.store.stats() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := bufio.NewReader(conn)
	w := bufio.NewWriter(conn)
	for {
		if err := s.serveOne(r, w); err != nil {
			if !errors.Is(err, io.EOF) && !s.closed.Load() {
				fmt.Fprintf(w, "SERVER_ERROR %s\r\n", sanitise(err.Error()))
				w.Flush()
			}
			return
		}
		if err := w.Flush(); err != nil {
			return
		}
	}
}

var errQuit = errors.New("quit")

func (s *Server) serveOne(r *bufio.Reader, w *bufio.Writer) error {
	line, err := readLine(r)
	if err != nil {
		return err
	}
	fields := strings.Fields(line)
	if len(fields) == 0 {
		return fmt.Errorf("empty command")
	}
	switch strings.ToUpper(fields[0]) {
	case "SET":
		if len(fields) != 3 {
			return fmt.Errorf("SET wants <key> <nbytes>")
		}
		key := fields[1]
		if len(key) > MaxKeyLen {
			return fmt.Errorf("key too long")
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 || n > MaxValueSize {
			return fmt.Errorf("bad length %q", fields[2])
		}
		value := make([]byte, n)
		if _, err := io.ReadFull(r, value); err != nil {
			return err
		}
		if err := expectCRLF(r); err != nil {
			return err
		}
		start := time.Now()
		s.store.set(key, value)
		_, err = w.WriteString("STORED\r\n")
		s.tel.setOps.Inc()
		s.tel.setLat.Observe(time.Since(start).Seconds())
		return err
	case "GET":
		if len(fields) != 2 {
			return fmt.Errorf("GET wants <key>")
		}
		start := time.Now()
		value, ok := s.store.get(fields[1])
		defer func() { s.tel.getLat.Observe(time.Since(start).Seconds()) }()
		if !ok {
			s.tel.getMiss.Inc()
			_, err := w.WriteString("NOT_FOUND\r\n")
			return err
		}
		s.tel.getHit.Inc()
		if _, err := fmt.Fprintf(w, "VALUE %d\r\n", len(value)); err != nil {
			return err
		}
		if _, err := w.Write(value); err != nil {
			return err
		}
		_, err := w.WriteString("\r\n")
		return err
	case "DEL":
		if len(fields) != 2 {
			return fmt.Errorf("DEL wants <key>")
		}
		start := time.Now()
		deleted := s.store.del(fields[1])
		s.tel.delLat.Observe(time.Since(start).Seconds())
		if deleted {
			s.tel.delHit.Inc()
			_, err := w.WriteString("DELETED\r\n")
			return err
		}
		s.tel.delMiss.Inc()
		_, err := w.WriteString("NOT_FOUND\r\n")
		return err
	case "STATS":
		items, hits, misses := s.store.stats()
		_, err := fmt.Fprintf(w, "STATS %d %d %d\r\n", items, hits, misses)
		return err
	case "METRICS":
		payload := []byte(s.metricsText())
		if _, err := fmt.Fprintf(w, "METRICS %d\r\n", len(payload)); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		_, err := w.WriteString("\r\n")
		return err
	case "QUIT":
		return errQuit
	default:
		return fmt.Errorf("unknown command %q", fields[0])
	}
}

// metricsText refreshes the store-level gauges and renders the registry in
// the Prometheus text exposition format.
func (s *Server) metricsText() string {
	items, hits, misses := s.store.stats()
	s.tel.items.Set(float64(items))
	s.tel.hits.Set(float64(hits))
	s.tel.misses.Set(float64(misses))
	return s.reg.Prometheus()
}

// readLine reads a \r\n- (or \n-) terminated line without the terminator.
func readLine(r *bufio.Reader) (string, error) {
	line, err := r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

func expectCRLF(r *bufio.Reader) error {
	b := make([]byte, 2)
	if _, err := io.ReadFull(r, b); err != nil {
		return err
	}
	if b[0] != '\r' || b[1] != '\n' {
		return fmt.Errorf("payload not CRLF-terminated")
	}
	return nil
}

func sanitise(msg string) string {
	return strings.Map(func(r rune) rune {
		if r == '\r' || r == '\n' {
			return ' '
		}
		return r
	}, msg)
}
