// Package kvserver implements the in-memory cache tier as a real networked
// service — the role Redis plays in the paper's implementation ("uses Redis
// for in-memory caching, following SHADE").
//
// The simulation in internal/storage models this tier's *cost*; kvserver is
// the working implementation for deployments that want an actual shared
// cache process: a TCP server speaking a small memcached-style text
// protocol, backed by an N-way sharded, concurrency-safe LRU store with an
// item capacity (see store.go).
//
// # Protocol
//
// Lines end in \r\n; payloads are raw bytes:
//
//	GET <key>\r\n                          -> VALUE <nbytes>\r\n<payload>\r\n | NOT_FOUND
//	SET <key> <nbytes>\r\n<payload>\r\n    -> STORED | SERVER_ERROR <msg>
//	DEL <key>\r\n                          -> DELETED | NOT_FOUND
//	MGET [<key>...]\r\n                    -> per key, in request order:
//	                                            VALUE <nbytes>\r\n<payload>\r\n | NOT_FOUND\r\n
//	                                          then END\r\n (zero keys: bare END\r\n)
//	MSET <count>\r\n                       -> STORED <count>\r\n
//	  followed by <count> frames, each:
//	    <key> <nbytes>\r\n<payload>\r\n
//	  (count 0 is legal: no frames follow, the reply is STORED 0)
//	NGET <key> <threshold> <dim>\r\n<embedding>\r\n
//	                                       -> VALUE <nbytes>\r\n<payload>\r\n   (exact hit)
//	                                        | NEAR <key> <dist> <nbytes>\r\n<payload>\r\n
//	                                        | NOT_FOUND
//	ESET <key> <dim>\r\n<embedding>\r\n    -> STORED
//	STATS\r\n                              -> STATS <items> <hits> <misses>\r\n
//	METRICS\r\n                            -> METRICS <nbytes>\r\n<payload>\r\n
//	QUIT\r\n                               -> connection closed
//
// MGET/MSET batches are capped at MaxBatchOps keys/frames per command.
//
// NGET/ESET embeddings are <dim> little-endian IEEE-754 float32s
// (1 <= dim <= MaxEmbedDim), unit-normalized by the server; NGET's
// <threshold> is a decimal cosine-distance bound in [0, 2] and its NEAR
// fallback serves the nearest still-resident neighbor inside it — see
// nget.go for the full semantics (threshold 0 is byte-identical to GET).
//
// Cluster verbs (see clusterverbs.go; standalone servers answer them too):
//
//	HELLO <addr>\r\n                       -> NODES <n>\r\n then n lines <addr>\r\n
//	NODES\r\n                              -> NODES <n>\r\n then n lines <addr>\r\n
//	RSET <key> <nbytes>\r\n<payload>\r\n   -> STORED (replica write: no fan-out)
//	RDEL <key>\r\n                         -> DELETED | NOT_FOUND (no fan-out)
//
// # Pipelining
//
// Clients may write any number of complete request frames back to back
// without waiting for replies; the server answers them in order. The
// connection loop drains every *complete* buffered request before flushing,
// so one coalesced write (often one syscall) carries many replies — this,
// not per-op latency, is where batch throughput comes from. Each request
// frame should be written whole: the server blocks reading an incomplete
// frame's payload with replies still unflushed, so a client that sends a
// partial frame and then waits for earlier replies can deadlock itself
// (the same contract as memcached/redis pipelining).
//
// # Errors
//
// Malformed input earns `SERVER_ERROR <msg>` and a closed connection,
// where <msg> is one of the stable strings below (errBadCommand etc.) —
// never a raw Go error, so clients and fuzz corpora can match on them
// across refactors. I/O errors close the connection silently.
//
// # METRICS
//
// METRICS returns the server's telemetry registry rendered in the
// Prometheus text exposition format: per-op counters
// (kv_ops_total{op=...,result=...}), per-op latency summaries with
// p50/p95/p99 (kv_op_seconds{op=...}), resident-item/hit/miss gauges,
// per-shard resident-item gauges (kv_shard_items{shard="N"} — shard
// balance at a glance), the pipeline-depth histogram kv_pipeline_depth
// (requests served per network flush) and the kv_net_flushes_total
// coalescing counter — a strict superset of STATS.
package kvserver

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"spidercache/internal/telemetry"
)

// MaxValueSize bounds a single payload (guards the server against abusive
// SETs).
const MaxValueSize = 64 << 20

// MaxKeyLen bounds key length.
const MaxKeyLen = 256

// MaxBatchOps bounds the keys in one MGET and the frames in one MSET.
const MaxBatchOps = 4096

// maxLineLen bounds a single request line (an MGET line holds at most
// MaxBatchOps keys).
const maxLineLen = 1 << 20

// protoErr is a protocol-level error with a stable wire string. Every
// malformed frame maps onto exactly one of the values below; the server
// replies "SERVER_ERROR <string>" and closes the connection.
type protoErr string

func (e protoErr) Error() string { return string(e) }

// The full stable protocol error vocabulary.
const (
	errEmptyCommand  = protoErr("empty command")
	errUnknownCmd    = protoErr("unknown command")
	errBadArgs       = protoErr("bad arguments")
	errKeyTooLong    = protoErr("key too long")
	errBadLength     = protoErr("bad value length")
	errBadPayload    = protoErr("bad payload framing")
	errBadBatchCount = protoErr("bad batch count")
	errLineTooLong   = protoErr("line too long")
	errBadEmbedDim   = protoErr("bad embedding dim")
	errBadThreshold  = protoErr("bad threshold")
)

// Server is the TCP cache server.
type Server struct {
	store    store
	sem      *semIndex // node-local semantic index behind NGET/ESET
	listener net.Listener
	wg       sync.WaitGroup
	closed   atomic.Bool

	connMu sync.Mutex
	conns  map[net.Conn]struct{}

	cluster ClusterHooks

	reg *telemetry.Registry
	tel serverTelemetry
}

// serverTelemetry groups the per-op instruments, resolved once at startup.
type serverTelemetry struct {
	getHit, getMiss            *telemetry.Counter
	mgetHit, mgetMiss          *telemetry.Counter
	setOps, msetOps            *telemetry.Counter
	rsetOps, esetOps           *telemetry.Counter
	delHit, delMiss            *telemetry.Counter
	rdelHit, rdelMiss          *telemetry.Counter
	semExact, semNear, semMiss *telemetry.Counter   // NGET outcomes
	semDist                    *telemetry.Histogram // cosine distance of served NEAR substitutes
	getLat, setLat, delLat     *telemetry.Histogram
	mgetLat, msetLat           *telemetry.Histogram
	rsetLat, ngetLat, esetLat  *telemetry.Histogram
	items, hits, misses        *telemetry.Gauge
	shardItems                 []*telemetry.Gauge // one gauge per store shard
	flushes                    *telemetry.Counter // network flushes (coalesced writes)
	pipelineDepth              *telemetry.Histogram
}

func newServerTelemetry(reg *telemetry.Registry, shards int) serverTelemetry {
	reg.Describe("kv_ops_total", "kvserver operations by op and result")
	reg.Describe("kv_op_seconds", "kvserver per-op service latency (p50/p95/p99)")
	reg.Describe("kv_items", "resident items")
	reg.Describe("kv_shard_items", "resident items per store shard")
	reg.Describe("kv_net_flushes_total", "network flushes; each may carry many pipelined replies")
	reg.Describe("kv_pipeline_depth", "requests served per network flush")
	reg.Describe("kv_semantic_hits_total", "NGET outcomes: exact hit, near (semantic substitute served), miss")
	reg.Describe("kv_semantic_dist", "cosine distance of served NEAR substitutes")
	tel := serverTelemetry{
		getHit:        reg.Counter("kv_ops_total", telemetry.Labels{"op": "get", "result": "hit"}),
		getMiss:       reg.Counter("kv_ops_total", telemetry.Labels{"op": "get", "result": "miss"}),
		mgetHit:       reg.Counter("kv_ops_total", telemetry.Labels{"op": "mget", "result": "hit"}),
		mgetMiss:      reg.Counter("kv_ops_total", telemetry.Labels{"op": "mget", "result": "miss"}),
		setOps:        reg.Counter("kv_ops_total", telemetry.Labels{"op": "set", "result": "stored"}),
		msetOps:       reg.Counter("kv_ops_total", telemetry.Labels{"op": "mset", "result": "stored"}),
		rsetOps:       reg.Counter("kv_ops_total", telemetry.Labels{"op": "rset", "result": "stored"}),
		esetOps:       reg.Counter("kv_ops_total", telemetry.Labels{"op": "eset", "result": "stored"}),
		semExact:      reg.Counter("kv_semantic_hits_total", telemetry.Labels{"result": "exact"}),
		semNear:       reg.Counter("kv_semantic_hits_total", telemetry.Labels{"result": "near"}),
		semMiss:       reg.Counter("kv_semantic_hits_total", telemetry.Labels{"result": "miss"}),
		semDist:       reg.Histogram("kv_semantic_dist", nil),
		delHit:        reg.Counter("kv_ops_total", telemetry.Labels{"op": "del", "result": "deleted"}),
		delMiss:       reg.Counter("kv_ops_total", telemetry.Labels{"op": "del", "result": "miss"}),
		rdelHit:       reg.Counter("kv_ops_total", telemetry.Labels{"op": "rdel", "result": "deleted"}),
		rdelMiss:      reg.Counter("kv_ops_total", telemetry.Labels{"op": "rdel", "result": "miss"}),
		getLat:        reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "get"}),
		setLat:        reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "set"}),
		delLat:        reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "del"}),
		mgetLat:       reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "mget"}),
		msetLat:       reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "mset"}),
		rsetLat:       reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "rset"}),
		ngetLat:       reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "nget"}),
		esetLat:       reg.Histogram("kv_op_seconds", telemetry.Labels{"op": "eset"}),
		items:         reg.Gauge("kv_items", nil),
		hits:          reg.Gauge("kv_hits", nil),
		misses:        reg.Gauge("kv_misses", nil),
		flushes:       reg.Counter("kv_net_flushes_total", nil),
		pipelineDepth: reg.Histogram("kv_pipeline_depth", nil),
	}
	tel.shardItems = make([]*telemetry.Gauge, shards)
	for i := range tel.shardItems {
		tel.shardItems[i] = reg.Gauge("kv_shard_items", telemetry.Labels{"shard": strconv.Itoa(i)})
	}
	return tel
}

// Options configures a server beyond the listen address.
type Options struct {
	// Capacity is the item budget of the LRU store (required, >= 1).
	Capacity int
	// Shards overrides the automatic store shard count (power of two;
	// rounded down otherwise, clamped to [1, min(Capacity, MaxShards)]).
	// Zero means automatic: one shard per 64 items, at most 16, so small
	// stores keep strict global LRU order and large ones spread lock
	// contention.
	Shards int
	// Mode selects the store implementation: StoreModeMutex (default,
	// also selected by "") or StoreModeArena — per-shard []byte arenas
	// with an epoch-protected lock-free GET path and sampled LRU
	// eviction; see arena.go.
	Mode string
	// Admission selects the insert admission policy: AdmissionNone
	// (default, also selected by "") or AdmissionTinyLFU — a frequency
	// sketch that only lets a new key displace an eviction victim it
	// out-scores; see admission.go.
	Admission string
	// Registry receives the server's telemetry and backs the METRICS verb.
	// Nil means a private registry owned by the server — METRICS always
	// works. Passing a shared registry lets a host process fold kvserver
	// metrics into its own exposition (and vice versa: anything else
	// registered there is served by METRICS too).
	Registry *telemetry.Registry
	// Cluster connects the server to a cluster daemon's membership and
	// replication machinery (see ClusterHooks). Nil means standalone:
	// HELLO/NODES answer with an empty node set and mutations are never
	// fanned out.
	Cluster ClusterHooks
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") holding up to capacity
// items. It returns once the listener is bound; connections are handled in
// background goroutines until Close.
func Serve(addr string, capacity int) (*Server, error) {
	return ServeWith(addr, Options{Capacity: capacity})
}

// ServeWith is Serve with full Options.
func ServeWith(addr string, opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv, err := ServeOn(ln, opts)
	if err != nil {
		//lint:ignore errcheck the options error is what the caller sees; the listener close is cleanup
		ln.Close()
		return nil, err
	}
	return srv, nil
}

// ServeOn is ServeWith over an already-bound listener — e.g. one wrapped
// by internal/faultnet for fault-injection runs. The server owns ln and
// closes it on Close.
func ServeOn(ln net.Listener, opts Options) (*Server, error) {
	if opts.Capacity < 1 {
		return nil, errors.New("kvserver: capacity must be >= 1, got " + strconv.Itoa(opts.Capacity))
	}
	if opts.Shards < 0 {
		return nil, errors.New("kvserver: shards must be >= 0, got " + strconv.Itoa(opts.Shards))
	}
	reg := opts.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	st, err := newStoreFor(opts, reg)
	if err != nil {
		return nil, err
	}
	srv := newServerCore(st, reg)
	srv.listener = ln
	srv.cluster = opts.Cluster
	srv.wg.Add(1)
	go srv.acceptLoop()
	return srv, nil
}

// newServerCore assembles the serving state over an already-built store
// — everything but the listener plumbing, shared by ServeOn and the
// in-process tests/fuzzers that drive serveOne directly. It wires the
// store's eviction notifications into the semantic index: an evicted
// key's embedding must stop producing NEAR candidates (the residency
// check would drop them anyway, but they would crowd the top-k). The
// hook is invoked after the shard mutex is released (see store.go), so
// the sem.mu acquisition here never nests inside a shard lock.
func newServerCore(st store, reg *telemetry.Registry) *Server {
	srv := &Server{
		store: st,
		sem:   newSemIndex(),
		conns: make(map[net.Conn]struct{}),
		reg:   reg,
		tel:   newServerTelemetry(reg, st.numShards()),
	}
	st.setEvictHook(srv.sem.unlink)
	return srv
}

// Metrics returns the server's telemetry registry (never nil).
func (s *Server) Metrics() *telemetry.Registry { return s.reg }

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Shards returns the store's shard count.
func (s *Server) Shards() int { return s.store.numShards() }

// Close stops the listener, force-closes active connections, and waits
// for their handlers to exit. Idle clients (e.g. pooled connections) do
// not delay shutdown; their next op fails as a transport error.
func (s *Server) Close() error {
	s.closed.Store(true)
	err := s.listener.Close()
	s.connMu.Lock()
	for conn := range s.conns {
		//lint:ignore errcheck force-close on shutdown; the handler observes the read error
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// Stats reports (items, hits, misses).
func (s *Server) Stats() (int, int64, int64) { return s.store.stats() }

// Keys returns every resident key — the migration scan's entry point.
// Each shard is snapshotted under its own lock; keys inserted or evicted
// mid-scan may or may not appear.
func (s *Server) Keys() []string { return s.store.keys() }

// Peek returns the value under key without touching LRU recency or the
// hit/miss counters, so migration reads never distort eviction order or
// serving stats. In mutex mode the returned slice is the store's live
// value (callers must not modify it); in arena mode it is a copy, since a
// live arena slice could be recycled under an unpinned caller.
func (s *Server) Peek(key string) ([]byte, bool) { return s.store.peek(key) }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.closed.Load() {
			// Lost the race with Close: it already swept s.conns, so this
			// conn would never be force-closed. Reject it here instead.
			s.connMu.Unlock()
			//lint:ignore errcheck rejecting a connection that raced shutdown
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.connMu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				s.connMu.Lock()
				delete(s.conns, conn)
				s.connMu.Unlock()
			}()
			s.handle(conn)
		}()
	}
}

// connBufSize sizes the pooled per-connection read/write buffers.
const connBufSize = 16 << 10

// Per-connection buffers come from sync.Pools: connection churn (dial, a
// few ops, close — the load generator's default mode) would otherwise
// allocate two 16KiB buffers plus parse scratch per connection.
var (
	readerPool  = sync.Pool{New: func() any { return bufio.NewReaderSize(nil, connBufSize) }}
	writerPool  = sync.Pool{New: func() any { return bufio.NewWriterSize(nil, connBufSize) }}
	sessionPool = sync.Pool{New: func() any { return &session{} }}
)

// session is the per-connection parse state: the bufio pair plus reusable
// scratch so steady-state request parsing allocates nothing.
type session struct {
	r      *bufio.Reader
	w      *bufio.Writer
	fields [][]byte  // field-split scratch, aliases the reader's buffer
	long   []byte    // spill buffer for lines longer than the reader buffer
	num    []byte    // integer formatting scratch
	emb    []byte    // embedding payload scratch (NGET/ESET)
	vec    []float64 // decoded embedding scratch (NGET/ESET)
}

func newSession(r *bufio.Reader, w *bufio.Writer) *session {
	return &session{r: r, w: w}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	r := readerPool.Get().(*bufio.Reader)
	w := writerPool.Get().(*bufio.Writer)
	sess := sessionPool.Get().(*session)
	r.Reset(conn)
	w.Reset(conn)
	sess.r, sess.w = r, w
	defer func() {
		sess.r, sess.w = nil, nil
		sessionPool.Put(sess)
		r.Reset(nil)
		w.Reset(nil)
		readerPool.Put(r)
		writerPool.Put(w)
	}()

	depth := int64(0) // requests answered since the last flush
	for {
		err := s.serveOne(sess)
		if err != nil {
			// Flush replies already produced by earlier pipelined
			// requests, then report protocol errors with their stable
			// string. I/O errors (EOF, reset) close silently.
			var pe protoErr
			if errors.As(err, &pe) && !s.closed.Load() {
				w.WriteString("SERVER_ERROR ")
				w.WriteString(string(pe))
				w.WriteString("\r\n")
			}
			//lint:ignore errcheck connection is closing; nothing can act on a flush failure
			w.Flush()
			return
		}
		depth++
		// Drain: if at least one more complete request line is already
		// buffered, keep serving before paying for a flush — one coalesced
		// write then carries every reply.
		if n := r.Buffered(); n > 0 {
			if peek, _ := r.Peek(n); bytes.IndexByte(peek, '\n') >= 0 {
				continue
			}
		}
		s.tel.flushes.Inc()
		s.tel.pipelineDepth.Observe(float64(depth))
		depth = 0
		if err := w.Flush(); err != nil {
			return
		}
	}
}

var errQuit = errors.New("quit")

// serveOne reads and answers exactly one request frame. Replies are written
// to sess.w but not flushed; the caller owns flushing.
func (s *Server) serveOne(sess *session) error {
	line, err := sess.readLine()
	if err != nil {
		return err
	}
	fields := splitFields(line, sess.fields[:0])
	sess.fields = fields // keep grown scratch for the next request
	if len(fields) == 0 {
		return errEmptyCommand
	}
	cmd := fields[0]
	args := fields[1:]
	switch {
	case cmdEq(cmd, "GET"):
		return s.doGet(sess, args)
	case cmdEq(cmd, "SET"):
		return s.doSet(sess, args)
	case cmdEq(cmd, "MGET"):
		return s.doMGet(sess, args)
	case cmdEq(cmd, "MSET"):
		return s.doMSet(sess, args)
	case cmdEq(cmd, "DEL"):
		return s.doDel(sess, args)
	case cmdEq(cmd, "NGET"):
		return s.doNGet(sess, args)
	case cmdEq(cmd, "ESET"):
		return s.doESet(sess, args)
	case cmdEq(cmd, "RSET"):
		return s.doRSet(sess, args)
	case cmdEq(cmd, "RDEL"):
		return s.doRDel(sess, args)
	case cmdEq(cmd, "HELLO"):
		return s.doHello(sess, args)
	case cmdEq(cmd, "NODES"):
		return s.doNodes(sess, args)
	case cmdEq(cmd, "STATS"):
		return s.doStats(sess, args)
	case cmdEq(cmd, "METRICS"):
		return s.doMetrics(sess, args)
	case cmdEq(cmd, "QUIT"):
		return errQuit
	default:
		return errUnknownCmd
	}
}

func (s *Server) doGet(sess *session, args [][]byte) error {
	if len(args) != 1 {
		return errBadArgs
	}
	start := time.Now()
	// The pin brackets both the lookup and the reply write: in arena mode
	// the value slice aliases arena memory that compaction may recycle,
	// and the epoch keeps it intact until the bytes have left for the
	// bufio writer. Mutex mode returns a nil (no-op) slot.
	pin := s.store.pin()
	value, ok := s.store.getBytes(args[0])
	err := sess.writeValueOrMiss(value, ok)
	pin.Unpin()
	if ok {
		s.tel.getHit.Inc()
	} else {
		s.tel.getMiss.Inc()
	}
	s.tel.getLat.Observe(time.Since(start).Seconds())
	return err
}

func (s *Server) doMGet(sess *session, args [][]byte) error {
	if len(args) > MaxBatchOps {
		return errBadBatchCount
	}
	if len(args) == 0 {
		// An empty batch is a legal (if pointless) request — e.g. a client
		// whose key filter left nothing — and answers with a bare END, the
		// exact frame a batch of N misses would end with.
		_, err := sess.w.WriteString("END\r\n")
		return err
	}
	start := time.Now()
	var hits, misses int64
	// One pin covers the whole batch (bounded by MaxBatchOps); see doGet.
	pin := s.store.pin()
	for _, key := range args {
		value, ok := s.store.getBytes(key)
		if ok {
			hits++
		} else {
			misses++
		}
		if err := sess.writeValueOrMiss(value, ok); err != nil {
			pin.Unpin()
			return err
		}
	}
	pin.Unpin()
	_, err := sess.w.WriteString("END\r\n")
	s.tel.mgetHit.Add(hits)
	s.tel.mgetMiss.Add(misses)
	s.tel.mgetLat.Observe(time.Since(start).Seconds())
	return err
}

func (s *Server) doSet(sess *session, args [][]byte) error {
	if len(args) != 2 {
		return errBadArgs
	}
	start := time.Now()
	key, value, err := sess.readPayload(args[0], args[1])
	if err != nil {
		return err
	}
	s.store.set(key, value)
	// Fan out before the reply: when STORED lands at the client, every
	// reachable replica owner already has the value.
	if s.cluster != nil {
		s.cluster.ReplicateSet([]string{key}, [][]byte{value})
	}
	_, err = sess.w.WriteString("STORED\r\n")
	s.tel.setOps.Inc()
	s.tel.setLat.Observe(time.Since(start).Seconds())
	return err
}

// doRSet is doSet without the replication fan-out: the store half of the
// replication protocol itself.
func (s *Server) doRSet(sess *session, args [][]byte) error {
	if len(args) != 2 {
		return errBadArgs
	}
	start := time.Now()
	key, value, err := sess.readPayload(args[0], args[1])
	if err != nil {
		return err
	}
	s.store.set(key, value)
	_, err = sess.w.WriteString("STORED\r\n")
	s.tel.rsetOps.Inc()
	s.tel.rsetLat.Observe(time.Since(start).Seconds())
	return err
}

func (s *Server) doMSet(sess *session, args [][]byte) error {
	if len(args) != 1 {
		return errBadArgs
	}
	count, err := parseLength(args[0])
	if err != nil || count > MaxBatchOps {
		return errBadBatchCount
	}
	// count 0 falls through: zero frames to read, reply STORED 0 — the
	// degenerate batch is legal, mirroring MGET's zero-key bare END.
	start := time.Now()
	var rkeys []string
	var rvalues [][]byte
	if s.cluster != nil {
		rkeys = make([]string, 0, count)
		rvalues = make([][]byte, 0, count)
	}
	for i := 0; i < count; i++ {
		line, err := sess.readLine()
		if err != nil {
			return err
		}
		fields := splitFields(line, sess.fields[:0])
		sess.fields = fields
		if len(fields) != 2 {
			return errBadArgs
		}
		key, value, err := sess.readPayload(fields[0], fields[1])
		if err != nil {
			return err
		}
		s.store.set(key, value)
		if s.cluster != nil {
			rkeys = append(rkeys, key)
			rvalues = append(rvalues, value)
		}
	}
	if s.cluster != nil {
		s.cluster.ReplicateSet(rkeys, rvalues)
	}
	sess.w.WriteString("STORED ")
	sess.writeInt(int64(count))
	_, err = sess.w.WriteString("\r\n")
	s.tel.msetOps.Add(int64(count))
	s.tel.msetLat.Observe(time.Since(start).Seconds())
	return err
}

func (s *Server) doDel(sess *session, args [][]byte) error {
	if len(args) != 1 {
		return errBadArgs
	}
	start := time.Now()
	key := string(args[0])
	deleted := s.store.del(key)
	// The embedding goes with the value unconditionally: ESET-then-DEL
	// must clear the index even when the value itself was never stored
	// (or already evicted), or the dead key would keep winning NEAR
	// candidacies it can no longer serve.
	s.sem.unlink(key)
	// Deletes fan out even on a local miss: a replica may hold the value
	// this node already evicted, and a DEL must not resurrect it.
	if s.cluster != nil {
		s.cluster.ReplicateDel(key)
	}
	s.tel.delLat.Observe(time.Since(start).Seconds())
	if deleted {
		s.tel.delHit.Inc()
		_, err := sess.w.WriteString("DELETED\r\n")
		return err
	}
	s.tel.delMiss.Inc()
	_, err := sess.w.WriteString("NOT_FOUND\r\n")
	return err
}

// doRDel is doDel without the replication fan-out.
func (s *Server) doRDel(sess *session, args [][]byte) error {
	if len(args) != 1 {
		return errBadArgs
	}
	key := string(args[0])
	defer s.sem.unlink(key) // see doDel
	if s.store.del(key) {
		s.tel.rdelHit.Inc()
		_, err := sess.w.WriteString("DELETED\r\n")
		return err
	}
	s.tel.rdelMiss.Inc()
	_, err := sess.w.WriteString("NOT_FOUND\r\n")
	return err
}

func (s *Server) doStats(sess *session, args [][]byte) error {
	if len(args) != 0 {
		return errBadArgs
	}
	items, hits, misses := s.store.stats()
	sess.w.WriteString("STATS ")
	sess.writeInt(int64(items))
	sess.w.WriteByte(' ')
	sess.writeInt(hits)
	sess.w.WriteByte(' ')
	sess.writeInt(misses)
	_, err := sess.w.WriteString("\r\n")
	return err
}

func (s *Server) doMetrics(sess *session, args [][]byte) error {
	if len(args) != 0 {
		return errBadArgs
	}
	payload := s.metricsText()
	sess.w.WriteString("METRICS ")
	sess.writeInt(int64(len(payload)))
	sess.w.WriteString("\r\n")
	sess.w.WriteString(payload)
	_, err := sess.w.WriteString("\r\n")
	return err
}

// readPayload validates a <key> <nbytes> header pair and reads the
// CRLF-terminated payload. The returned key is a fresh string (it outlives
// the read buffer); the value is freshly allocated (the store owns it).
func (sess *session) readPayload(keyField, lenField []byte) (key string, value []byte, err error) {
	if len(keyField) > MaxKeyLen {
		return "", nil, errKeyTooLong
	}
	n, err := parseLength(lenField)
	if err != nil || n < 0 || n > MaxValueSize {
		return "", nil, errBadLength
	}
	// Copy the key BEFORE reading the payload: keyField aliases the
	// reader's buffer, which the payload read refills.
	key = string(keyField)
	value = make([]byte, n)
	if _, err := io.ReadFull(sess.r, value); err != nil {
		return "", nil, err
	}
	if err := sess.expectCRLF(); err != nil {
		return "", nil, err
	}
	return key, value, nil
}

// writeValueOrMiss writes "VALUE <n>\r\n<payload>\r\n" or "NOT_FOUND\r\n".
func (sess *session) writeValueOrMiss(value []byte, ok bool) error {
	if !ok {
		_, err := sess.w.WriteString("NOT_FOUND\r\n")
		return err
	}
	sess.w.WriteString("VALUE ")
	sess.writeInt(int64(len(value)))
	sess.w.WriteString("\r\n")
	sess.w.Write(value)
	_, err := sess.w.WriteString("\r\n")
	return err
}

func (sess *session) writeInt(n int64) {
	sess.num = strconv.AppendInt(sess.num[:0], n, 10)
	sess.w.Write(sess.num)
}

// readLine returns the next line without its \r\n (or \n) terminator. The
// returned slice aliases the reader's buffer (or sess.long for oversized
// lines) and is only valid until the next read.
func (sess *session) readLine() ([]byte, error) {
	line, err := sess.r.ReadSlice('\n')
	if err == nil {
		return trimCRLF(line), nil
	}
	if err != bufio.ErrBufferFull {
		return nil, err
	}
	// Slow path: the line exceeds the buffer; accumulate into sess.long.
	long := append(sess.long[:0], line...)
	for {
		if len(long) > maxLineLen {
			return nil, errLineTooLong
		}
		line, err = sess.r.ReadSlice('\n')
		long = append(long, line...)
		if err == nil {
			sess.long = long
			return trimCRLF(long), nil
		}
		if err != bufio.ErrBufferFull {
			return nil, err
		}
	}
}

func trimCRLF(line []byte) []byte {
	if n := len(line); n > 0 && line[n-1] == '\n' {
		line = line[:n-1]
	}
	if n := len(line); n > 0 && line[n-1] == '\r' {
		line = line[:n-1]
	}
	return line
}

func (sess *session) expectCRLF() error {
	b, err := sess.r.ReadByte()
	if err != nil {
		return err
	}
	if b != '\r' {
		return errBadPayload
	}
	b, err = sess.r.ReadByte()
	if err != nil {
		return err
	}
	if b != '\n' {
		return errBadPayload
	}
	return nil
}

// splitFields appends line's space-separated fields to out (reusing its
// backing array). Fields alias line.
func splitFields(line []byte, out [][]byte) [][]byte {
	i := 0
	for i < len(line) {
		for i < len(line) && line[i] == ' ' {
			i++
		}
		start := i
		for i < len(line) && line[i] != ' ' {
			i++
		}
		if i > start {
			out = append(out, line[start:i])
		}
	}
	return out
}

// cmdEq reports whether cmd equals the (uppercase) verb, ASCII
// case-insensitively, without allocating.
func cmdEq(cmd []byte, verb string) bool {
	if len(cmd) != len(verb) {
		return false
	}
	for i := 0; i < len(cmd); i++ {
		c := cmd[i]
		if 'a' <= c && c <= 'z' {
			c -= 'a' - 'A'
		}
		if c != verb[i] {
			return false
		}
	}
	return true
}

// parseLength parses a non-negative decimal integer field.
func parseLength(b []byte) (int, error) {
	if len(b) == 0 || len(b) > 10 {
		return 0, errBadLength
	}
	n := 0
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, errBadLength
		}
		n = n*10 + int(c-'0')
	}
	return n, nil
}

// metricsText refreshes the store-level and per-shard gauges and renders
// the registry in the Prometheus text exposition format.
func (s *Server) metricsText() string {
	items, hits, misses := s.store.stats()
	s.tel.items.Set(float64(items))
	s.tel.hits.Set(float64(hits))
	s.tel.misses.Set(float64(misses))
	for i, g := range s.tel.shardItems {
		n, _, _, _ := s.store.shardStats(i)
		g.Set(float64(n))
	}
	return s.reg.Prometheus()
}
