package kvserver

import (
	"testing"
	"time"

	"spidercache/internal/simclock"
)

// newTestBreaker returns a breaker on a deterministic simclock with small,
// test-friendly thresholds.
func newTestBreaker(clock *simclock.Clock) *Breaker {
	return NewBreaker(BreakerOptions{
		Window:            8,
		FailureThreshold:  0.5,
		MinSamples:        4,
		OpenFor:           100 * time.Millisecond,
		HalfOpenSuccesses: 2,
		Now:               clock.Now,
	})
}

func TestBreakerFullCycle(t *testing.T) {
	clock := &simclock.Clock{}
	b := newTestBreaker(clock)

	if b.State() != BreakerClosed {
		t.Fatalf("initial state = %v, want closed", b.State())
	}

	// Closed -> open: 4 failures put the window at 100% failure rate with
	// MinSamples reached.
	for i := 0; i < 4; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied request %d", i)
		}
		b.Record(false)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state after 4 failures = %v, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request before OpenFor elapsed")
	}

	// Open -> half-open: once OpenFor elapses, probes flow — but only
	// HalfOpenSuccesses of them concurrently.
	clock.Advance(100 * time.Millisecond)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after OpenFor = %v, want half-open", b.State())
	}
	if !b.Allow() || !b.Allow() {
		t.Fatal("half-open breaker denied its probe quota")
	}
	if b.Allow() {
		t.Fatal("half-open breaker allowed a third concurrent probe (quota 2)")
	}

	// Half-open -> closed: both probes succeed.
	b.Record(true)
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state after 1/2 probe successes = %v, want half-open", b.State())
	}
	b.Record(true)
	if b.State() != BreakerClosed {
		t.Fatalf("state after 2/2 probe successes = %v, want closed", b.State())
	}

	// The window was reset on close: a single failure must not re-trip.
	if !b.Allow() {
		t.Fatal("re-closed breaker denied a request")
	}
	b.Record(false)
	if b.State() != BreakerClosed {
		t.Fatalf("one failure after close re-tripped: %v", b.State())
	}
}

func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	clock := &simclock.Clock{}
	b := newTestBreaker(clock)
	for i := 0; i < 4; i++ {
		b.Record(false)
	}
	clock.Advance(100 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("half-open breaker denied the probe")
	}
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("state after failed probe = %v, want open", b.State())
	}
	// The reopen restarts the OpenFor interval from the failure.
	clock.Advance(99 * time.Millisecond)
	if b.Allow() {
		t.Fatal("reopened breaker allowed a request before the new OpenFor elapsed")
	}
	clock.Advance(time.Millisecond)
	if !b.Allow() {
		t.Fatal("reopened breaker denied the probe after the new OpenFor elapsed")
	}
}

func TestBreakerMinSamplesGuard(t *testing.T) {
	clock := &simclock.Clock{}
	b := newTestBreaker(clock)
	// 3 failures < MinSamples=4: must stay closed even at 100% failure.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("breaker tripped below MinSamples: %v", b.State())
	}
}

func TestBreakerSlidingWindowEvictsOldFailures(t *testing.T) {
	clock := &simclock.Clock{}
	b := newTestBreaker(clock) // window 8, threshold 0.5
	// One early failure followed by a full window of successes: the failure
	// rate stays below threshold at every step, then the old failure is
	// evicted entirely.
	b.Record(false)
	for i := 0; i < 8; i++ {
		b.Record(true)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("diluted window tripped the breaker: %v", b.State())
	}
	// Failure rate is now 0/8; 3 fresh failures put it at 3/8 < 0.5.
	for i := 0; i < 3; i++ {
		b.Record(false)
	}
	if b.State() != BreakerClosed {
		t.Fatalf("sub-threshold rate tripped the breaker: %v", b.State())
	}
	// One more failure makes 4/8 = 0.5 >= threshold.
	b.Record(false)
	if b.State() != BreakerOpen {
		t.Fatalf("at-threshold rate did not trip the breaker: %v", b.State())
	}
}

func TestBreakerStateStrings(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed:   "closed",
		BreakerHalfOpen: "half-open",
		BreakerOpen:     "open",
	} {
		if got := state.String(); got != want {
			t.Fatalf("BreakerState(%d).String() = %q, want %q", state, got, want)
		}
	}
}
