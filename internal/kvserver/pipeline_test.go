package kvserver

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

func TestPipelineMixedOps(t *testing.T) {
	srv := startServer(t, 64)
	c := dial(t, srv)

	p := c.Pipeline()
	p.Set("a", []byte("1"))
	p.Set("b", []byte("2"))
	p.Get("a")
	p.Get("missing")
	p.Del("b")
	p.Del("b")
	p.Get("b")
	if p.Len() != 7 {
		t.Fatalf("Len = %d", p.Len())
	}
	results, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 7 {
		t.Fatalf("got %d results", len(results))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("op %d: %v", i, r.Err)
		}
	}
	if !bytes.Equal(results[2].Value, []byte("1")) || !results[2].Found {
		t.Fatalf("Get a: %+v", results[2])
	}
	if results[3].Found {
		t.Fatal("missing key found")
	}
	if !results[4].Found { // first DEL removed b
		t.Fatal("Del b reported not found")
	}
	if results[5].Found { // second DEL is a miss
		t.Fatal("double Del reported found")
	}
	if results[6].Found {
		t.Fatal("deleted b still readable")
	}
	// Pipeline is reusable after Exec.
	p.Get("a")
	results, err = p.Exec()
	if err != nil || len(results) != 1 || !results[0].Found {
		t.Fatalf("reuse: %v %+v", err, results)
	}
}

func TestPipelineEmptyExec(t *testing.T) {
	srv := startServer(t, 4)
	c := dial(t, srv)
	results, err := c.Pipeline().Exec()
	if err != nil || results != nil {
		t.Fatalf("empty Exec: %v %v", err, results)
	}
}

func TestPipelineInvalidKeyAborts(t *testing.T) {
	srv := startServer(t, 4)
	c := dial(t, srv)
	p := c.Pipeline()
	p.Set("ok", []byte("v"))
	p.Get("has space")
	p.Get("ok")
	if _, err := p.Exec(); err == nil {
		t.Fatal("invalid queued key did not fail Exec")
	}
	// The client connection survives a queue-time error only if nothing
	// was flushed; the first Set WAS buffered, so the connection state is
	// undefined — dial a fresh client to keep testing.
}

func TestPipelineDeep(t *testing.T) {
	srv := startServer(t, 2048)
	c := dial(t, srv)
	const n = 500
	payload := bytes.Repeat([]byte("x"), 1024)
	p := c.Pipeline()
	for i := 0; i < n; i++ {
		p.Set(fmt.Sprintf("k%d", i), payload)
	}
	results, err := p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("set %d: %v", i, r.Err)
		}
	}
	for i := 0; i < n; i++ {
		p.Get(fmt.Sprintf("k%d", i))
	}
	results, err = p.Exec()
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if !r.Found || !bytes.Equal(r.Value, payload) {
			t.Fatalf("get %d: found=%v", i, r.Found)
		}
	}
}

func TestMGetMSetRoundTrip(t *testing.T) {
	srv := startServer(t, 64)
	c := dial(t, srv)

	keys := []string{"x", "y", "z"}
	values := [][]byte{[]byte("1"), {}, []byte("three\r\nwith crlf")}
	if err := c.MSet(keys, values); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.MGet("x", "absent", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	wantFound := []bool{true, false, true, true}
	wantVals := [][]byte{values[0], nil, values[1], values[2]}
	for i := range wantFound {
		if found[i] != wantFound[i] {
			t.Fatalf("found[%d]=%v want %v", i, found[i], wantFound[i])
		}
		if !bytes.Equal(got[i], wantVals[i]) {
			t.Fatalf("got[%d]=%q want %q", i, got[i], wantVals[i])
		}
	}

	// Stats reflect the batch ops through the same store counters.
	items, hits, misses, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if items != 3 || hits != 3 || misses != 1 {
		t.Fatalf("stats %d/%d/%d, want 3/3/1", items, hits, misses)
	}
}

func TestMSetLengthMismatch(t *testing.T) {
	srv := startServer(t, 4)
	c := dial(t, srv)
	if err := c.MSet([]string{"a"}, nil); err == nil {
		t.Fatal("mismatched MSet accepted")
	}
	if err := c.MSet(nil, nil); err != nil {
		t.Fatalf("empty MSet: %v", err)
	}
}

func TestMGetEmpty(t *testing.T) {
	srv := startServer(t, 4)
	c := dial(t, srv)
	vs, found, err := c.MGet()
	if err != nil || vs != nil || found != nil {
		t.Fatalf("empty MGet: %v %v %v", vs, found, err)
	}
}

// TestMGetLargeBatch exercises the client-side split across MaxBatchOps
// and the server's oversized-line slow path.
func TestMGetLargeBatch(t *testing.T) {
	srv := startServer(t, 8192)
	c := dial(t, srv)
	const n = MaxBatchOps + 100
	keys := make([]string, n)
	values := make([][]byte, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%05d", i)
		values[i] = []byte(fmt.Sprintf("v%d", i))
	}
	if err := c.MSet(keys, values); err != nil {
		t.Fatal(err)
	}
	got, found, err := c.MGet(keys...)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("got %d results, want %d", len(got), n)
	}
	for i := range keys {
		if !found[i] || !bytes.Equal(got[i], values[i]) {
			t.Fatalf("key %d: found=%v got=%q want=%q", i, found[i], got[i], values[i])
		}
	}
}

// TestRawPipelinedStream pushes a hand-built multi-command byte stream in
// one write and checks the replies arrive in order — the wire-level
// contract the Pipeline type builds on.
func TestRawPipelinedStream(t *testing.T) {
	srv := startServer(t, 64)
	c := dial(t, srv)
	// Use the underlying conn directly.
	raw := "SET a 1\r\nx\r\nSET b 1\r\ny\r\nMGET a b\r\nGET a\r\nSTATS\r\n"
	if _, err := c.conn.Write([]byte(raw)); err != nil {
		t.Fatal(err)
	}
	want := "STORED\r\nSTORED\r\nVALUE 1\r\nx\r\nVALUE 1\r\ny\r\nEND\r\nVALUE 1\r\nx\r\nSTATS 2 3 0\r\n"
	buf := make([]byte, len(want))
	if _, err := io.ReadFull(c.conn, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != want {
		t.Fatalf("pipelined replies:\n got %q\nwant %q", buf, want)
	}
}
