package kvserver

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"net"
	"sync"
	"testing"

	"spidercache/internal/telemetry"
)

// embedPayload renders emb as the wire embedding frame (little-endian
// float32s followed by CRLF).
func embedPayload(emb []float32) []byte {
	buf := make([]byte, 0, 4*len(emb)+2)
	for _, x := range emb {
		buf = binary.LittleEndian.AppendUint32(buf, math.Float32bits(x))
	}
	return append(buf, '\r', '\n')
}

// unit returns v scaled to unit norm.
func unit(v ...float32) []float32 {
	var n float64
	for _, x := range v {
		n += float64(x) * float64(x)
	}
	n = math.Sqrt(n)
	out := make([]float32, len(v))
	for i, x := range v {
		out[i] = float32(float64(x) / n)
	}
	return out
}

// readReply consumes exactly one protocol reply from r: a line, plus the
// payload for VALUE/NEAR replies. It returns the raw bytes.
func readReply(t *testing.T, r *bufio.Reader) []byte {
	t.Helper()
	line, err := r.ReadBytes('\n')
	if err != nil {
		t.Fatalf("read reply line: %v", err)
	}
	out := append([]byte(nil), line...)
	fields := bytes.Fields(line)
	var n int
	switch {
	case len(fields) == 2 && string(fields[0]) == "VALUE":
		fmt.Sscanf(string(fields[1]), "%d", &n)
	case len(fields) == 4 && string(fields[0]) == "NEAR":
		fmt.Sscanf(string(fields[3]), "%d", &n)
	default:
		return out
	}
	payload := make([]byte, n+2)
	if _, err := io.ReadFull(r, payload); err != nil {
		t.Fatalf("read reply payload: %v", err)
	}
	return append(out, payload...)
}

// TestNGetThresholdZeroMatchesGet: with threshold 0 an NGET must behave
// as a GET with extra bytes on the request — byte-identical replies for
// hits and misses alike, in both store modes.
func TestNGetThresholdZeroMatchesGet(t *testing.T) {
	for _, mode := range []string{StoreModeMutex, StoreModeArena} {
		t.Run(mode, func(t *testing.T) {
			srv, err := ServeWith("127.0.0.1:0", Options{Capacity: 64, Mode: mode})
			if err != nil {
				t.Fatal(err)
			}
			defer srv.Close()
			conn, err := net.Dial("tcp", srv.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer conn.Close()
			r := bufio.NewReader(conn)

			emb := embedPayload(unit(1, 0, 0, 0))
			fmt.Fprint(conn, "SET k 5\r\nhello\r\n")
			if got := readReply(t, r); string(got) != "STORED\r\n" {
				t.Fatalf("SET reply %q", got)
			}
			conn.Write([]byte("ESET k 4\r\n"))
			conn.Write(emb)
			if got := readReply(t, r); string(got) != "STORED\r\n" {
				t.Fatalf("ESET reply %q", got)
			}

			for _, key := range []string{"k", "missing"} {
				fmt.Fprintf(conn, "GET %s\r\n", key)
				getReply := readReply(t, r)
				fmt.Fprintf(conn, "NGET %s 0 4\r\n", key)
				conn.Write(emb)
				ngetReply := readReply(t, r)
				if !bytes.Equal(getReply, ngetReply) {
					t.Fatalf("key %q: GET %q != NGET(threshold 0) %q", key, getReply, ngetReply)
				}
			}
		})
	}
}

// TestNGetNearServing covers the full semantic path through the Client:
// exact hit, near hit (with the neighbor's value and distance), distance
// cutoff, and DEL unlinking the embedding.
func TestNGetNearServing(t *testing.T) {
	srv := startServer(t, 64)
	c := dial(t, srv)

	vecA := unit(1, 0, 0, 0)
	nearA := unit(1, 0.05, 0, 0) // cosine distance ≈ 0.00125
	ortho := unit(0, 1, 0, 0)    // cosine distance ≈ 1

	if err := c.Set("a", []byte("value-a")); err != nil {
		t.Fatal(err)
	}
	if err := c.ESet("a", vecA); err != nil {
		t.Fatal(err)
	}

	// Exact hit: the key is resident, so the index is never consulted.
	v, near, found, err := c.NGet("a", vecA, 0.5)
	if err != nil || !found || near != nil || string(v) != "value-a" {
		t.Fatalf("exact NGet = %q %v %v %v", v, near, found, err)
	}

	// Near hit: unknown key, nearby embedding.
	v, near, found, err = c.NGet("b", nearA, 0.5)
	if err != nil || !found || near == nil {
		t.Fatalf("near NGet = %q %v %v %v", v, near, found, err)
	}
	if near.Key != "a" || string(v) != "value-a" {
		t.Fatalf("near NGet served %q from %q, want value-a from a", v, near.Key)
	}
	if near.Dist <= 0 || near.Dist > 0.01 {
		t.Fatalf("near dist %v, want (0, 0.01]", near.Dist)
	}

	// Distance cutoff: an orthogonal query finds no neighbor within 0.5.
	if _, near, found, err = c.NGet("b", ortho, 0.5); err != nil || found || near != nil {
		t.Fatalf("orthogonal NGet = %v %v %v, want miss", near, found, err)
	}

	// DEL unlinks the embedding: the same near query now misses.
	if _, err := c.Del("a"); err != nil {
		t.Fatal(err)
	}
	if _, near, found, err = c.NGet("b", nearA, 0.5); err != nil || found || near != nil {
		t.Fatalf("NGet after DEL = %v %v %v, want miss", near, found, err)
	}
	if live, _ := srv.sem.size(); live != 0 {
		t.Fatalf("semantic index live=%d after DEL, want 0", live)
	}
}

// TestNGetEvictionUnlinks: when the store evicts a key, its embedding
// must stop producing NEAR candidates.
func TestNGetEvictionUnlinks(t *testing.T) {
	srv := startServer(t, 1) // capacity 1: every SET evicts the previous key
	c := dial(t, srv)

	vecA := unit(1, 0)
	if err := c.Set("a", []byte("va")); err != nil {
		t.Fatal(err)
	}
	if err := c.ESet("a", vecA); err != nil {
		t.Fatal(err)
	}
	if err := c.Set("b", []byte("vb")); err != nil { // evicts a
		t.Fatal(err)
	}
	if _, near, found, err := c.NGet("q", unit(1, 0.01), 0.5); err != nil || found || near != nil {
		t.Fatalf("NGet after eviction = %v %v %v, want miss", near, found, err)
	}
	if live, _ := srv.sem.size(); live != 0 {
		t.Fatalf("semantic index live=%d after eviction, want 0", live)
	}
}

// TestNGetTelemetry: each NGET outcome increments exactly one result
// bucket of kv_semantic_hits_total, and near hits feed kv_semantic_dist.
func TestNGetTelemetry(t *testing.T) {
	reg := telemetry.NewRegistry()
	srv, err := ServeWith("127.0.0.1:0", Options{Capacity: 64, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	vecA := unit(1, 0)
	if err := c.Set("a", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := c.ESet("a", vecA); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := c.NGet("a", vecA, 0.5); err != nil { // exact
		t.Fatal(err)
	}
	if _, _, _, err := c.NGet("b", unit(1, 0.05), 0.5); err != nil { // near
		t.Fatal(err)
	}
	if _, _, _, err := c.NGet("b", unit(0, 1), 0.5); err != nil { // miss
		t.Fatal(err)
	}

	counters := reg.Snapshot().Counters
	for _, result := range []string{"exact", "near", "miss"} {
		name := fmt.Sprintf("kv_semantic_hits_total{result=%q}", result)
		if counters[name] != 1 {
			t.Errorf("%s = %d, want 1", name, counters[name])
		}
	}
}

// TestNGetArenaPinnedAcrossChurn hammers an arena store with evicting,
// compacting SET traffic while NGETs serve NEAR replies from it. The
// reply write happens under the epoch pin taken before the neighbor
// lookup, so every served payload must be intact — a torn read here
// means a span was reclaimed or compacted away mid-reply. Run with
// -race this also shakes out index/store interleavings.
func TestNGetArenaPinnedAcrossChurn(t *testing.T) {
	// Capacity below the churned key count (48) so SET traffic both
	// evicts and, via overwrites, leaves dead bytes that trigger shard
	// compaction under the readers.
	srv, err := ServeWith("127.0.0.1:0", Options{Capacity: 32, Mode: StoreModeArena})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	payloadFor := func(i int) []byte {
		b := make([]byte, 256)
		for j := range b {
			b[j] = byte('a' + (i+j)%26)
		}
		return b
	}
	vecFor := func(i int) []float32 {
		return unit(1, float32(i%7)*0.01, float32(i%5)*0.01)
	}

	seedClient := dial(t, srv)
	for i := 0; i < 32; i++ {
		key := fmt.Sprintf("seed:%d", i)
		if err := seedClient.Set(key, payloadFor(i)); err != nil {
			t.Fatal(err)
		}
		if err := seedClient.ESet(key, vecFor(i)); err != nil {
			t.Fatal(err)
		}
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // churn: overwrites and evictions force compaction
		defer wg.Done()
		c := dial(t, srv)
		for i := 0; i < 3000; i++ {
			key := fmt.Sprintf("seed:%d", i%48)
			if err := c.Set(key, payloadFor(i%48)); err != nil {
				t.Error(err)
				return
			}
			if i%3 == 0 {
				if err := c.ESet(key, vecFor(i%48)); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()

	reader := dial(t, srv)
	for i := 0; i < 1000; i++ {
		v, near, found, err := reader.NGet("query", vecFor(i%32), 0.2)
		if err != nil {
			t.Fatal(err)
		}
		if !found {
			continue // everything resident may have churned away
		}
		if near == nil {
			t.Fatal("exact hit for a never-stored key")
		}
		var id int
		if _, err := fmt.Sscanf(near.Key, "seed:%d", &id); err != nil {
			t.Fatalf("unexpected neighbor key %q", near.Key)
		}
		if !bytes.Equal(v, payloadFor(id)) {
			t.Fatalf("torn NEAR payload for %q: got %q", near.Key, v[:16])
		}
	}
	wg.Wait()
}
