package kvserver

// The cluster verbs: HELLO/NODES for membership gossip and RSET/RDEL for
// replica writes. A standalone Server answers all four (HELLO and NODES
// report an empty node set; RSET/RDEL behave like SET/DEL), so clients and
// peers never need to know whether an address is a bare cache or a
// cluster daemon. A daemon wires Options.Cluster to its membership and
// replication machinery, and the server becomes one node of a replicated
// tier:
//
//   - a client-initiated SET/MSET/DEL is stored locally and then handed to
//     ClusterHooks for synchronous fan-out to the key's other ring owners
//     (sent as RSET/RDEL so the fan-out never cascades);
//   - HELLO <addr> registers the announcing peer and returns the node set,
//     which is how both daemons and discovery-enabled clients learn
//     topology instead of being handed a static list.

import (
	"fmt"
	"strconv"
	"strings"
)

// MaxClusterNodes bounds the node list in one NODES reply.
const MaxClusterNodes = 1024

// errBadNodeAddr rejects HELLO addresses the wire protocol cannot carry.
const errBadNodeAddr = protoErr("bad node address")

// ClusterHooks connects a Server to the cluster daemon embedding it. Every
// method is called synchronously from connection-handler goroutines:
// Hello/Nodes must return quickly, and ReplicateSet/ReplicateDel run on
// the mutation's critical path (the client's STORED reply waits for the
// fan-out, which is what makes a replicated SET readable from every owner
// as soon as it returns).
type ClusterHooks interface {
	// Hello registers a peer that announced itself and returns the node
	// set known afterwards (the receiver included).
	Hello(addr string) []string
	// Nodes returns the known node set without registering anything.
	Nodes() []string
	// ReplicateSet fans client-initiated stores out to each key's other
	// ring owners. Implementations must not call back into this server's
	// own client-facing verbs.
	ReplicateSet(keys []string, values [][]byte)
	// ReplicateDel fans a client-initiated delete out likewise.
	ReplicateDel(key string)
}

func (s *Server) doHello(sess *session, args [][]byte) error {
	if len(args) != 1 {
		return errBadArgs
	}
	if !validNodeAddr(args[0]) {
		return errBadNodeAddr
	}
	var nodes []string
	if s.cluster != nil {
		nodes = s.cluster.Hello(string(args[0]))
	}
	return sess.writeNodes(nodes)
}

func (s *Server) doNodes(sess *session, args [][]byte) error {
	if len(args) != 0 {
		return errBadArgs
	}
	var nodes []string
	if s.cluster != nil {
		nodes = s.cluster.Nodes()
	}
	return sess.writeNodes(nodes)
}

// validNodeAddr accepts anything the line protocol can carry as a single
// field; real dialability is the gossip layer's problem, not the parser's.
func validNodeAddr(addr []byte) bool {
	if len(addr) == 0 || len(addr) > MaxKeyLen {
		return false
	}
	for _, c := range addr {
		if c == ' ' || c == '\r' || c == '\n' {
			return false
		}
	}
	return true
}

// writeNodes writes "NODES <n>\r\n" followed by one address per line.
func (sess *session) writeNodes(nodes []string) error {
	if len(nodes) > MaxClusterNodes {
		nodes = nodes[:MaxClusterNodes]
	}
	sess.w.WriteString("NODES ")
	sess.writeInt(int64(len(nodes)))
	_, err := sess.w.WriteString("\r\n")
	for _, n := range nodes {
		sess.w.WriteString(n)
		_, err = sess.w.WriteString("\r\n")
	}
	return err
}

// Hello announces addr as a cluster node to the server and returns the
// node set the server knows afterwards. Against a standalone server the
// reply is empty.
func (c *Client) Hello(addr string) ([]string, error) {
	if addr == "" || len(addr) > MaxKeyLen || strings.ContainsAny(addr, " \r\n") {
		return nil, fmt.Errorf("%w: invalid node address %q", errBadRequest, addr)
	}
	if _, err := fmt.Fprintf(c.w, "HELLO %s\r\n", addr); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	return c.readNodesReply()
}

// Nodes returns the node set the server knows (the NODES verb). An empty
// reply means the server carries no topology — a standalone cache, not an
// empty cluster.
func (c *Client) Nodes() ([]string, error) {
	if _, err := fmt.Fprint(c.w, "NODES\r\n"); err != nil {
		return nil, err
	}
	if err := c.flush(); err != nil {
		return nil, err
	}
	return c.readNodesReply()
}

func (c *Client) readNodesReply() ([]string, error) {
	line, err := c.readLine()
	if err != nil {
		return nil, err
	}
	if !strings.HasPrefix(line, "NODES ") {
		return nil, fmt.Errorf("kvserver: NODES failed: %s", line)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(line, "NODES "))
	if err != nil || n < 0 || n > MaxClusterNodes {
		return nil, fmt.Errorf("kvserver: bad NODES header %q", line)
	}
	nodes := make([]string, 0, n)
	for i := 0; i < n; i++ {
		addr, err := c.readLine()
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, addr)
	}
	return nodes, nil
}

// RSet stores value under key as a replica write: the server never fans it
// back out, which is what keeps daemon-to-daemon replication acyclic.
func (c *Client) RSet(key string, value []byte) error {
	if err := c.writeSetFrame("RSET ", key, value); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	return c.readStoredReply("RSET")
}

// RDel removes key as a replica delete (no fan-out); ok reports presence.
func (c *Client) RDel(key string) (bool, error) {
	if _, err := fmt.Fprintf(c.w, "RDEL %s\r\n", key); err != nil {
		return false, err
	}
	if err := c.flush(); err != nil {
		return false, err
	}
	return c.readDelReply()
}
