package kvserver

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"spidercache/internal/leakcheck"
)

func TestPoolBasicOps(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 64)
	pool, err := NewPool(srv.Addr(), PoolOptions{Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	if err := pool.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	v, found, err := pool.Get("k")
	if err != nil || !found || !bytes.Equal(v, []byte("v")) {
		t.Fatalf("Get: %q %v %v", v, found, err)
	}
	if err := pool.MSet([]string{"a", "b"}, [][]byte{{1}, {2}}); err != nil {
		t.Fatal(err)
	}
	vs, fs, err := pool.MGet("a", "b", "nope")
	if err != nil || !fs[0] || !fs[1] || fs[2] {
		t.Fatalf("MGet: %v %v %v", vs, fs, err)
	}
	if found, err := pool.Del("k"); err != nil || !found {
		t.Fatalf("Del: %v %v", found, err)
	}
}

func TestPoolConcurrent(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 4096)
	pool, err := NewPool(srv.Addr(), PoolOptions{Size: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	const goroutines = 16 // 4x oversubscribed: exercises Acquire blocking
	const ops = 50
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i)
				if err := pool.Set(key, []byte{byte(i)}); err != nil {
					errs <- err
					return
				}
				v, found, err := pool.Get(key)
				if err != nil || !found || !bytes.Equal(v, []byte{byte(i)}) {
					errs <- fmt.Errorf("g%d op%d: found=%v err=%v", g, i, found, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestPoolRecoversFromBrokenConn: an op error discards the connection and
// the slot redials lazily, so the pool keeps working at full size.
func TestPoolRecoversFromBrokenConn(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 64)
	pool, err := NewPool(srv.Addr(), PoolOptions{Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Break the pooled connection from inside a Do: close the raw conn so
	// the op fails and Do discards it.
	_ = pool.Do(func(c *Client) error {
		c.conn.Close()
		return fmt.Errorf("poisoned")
	})
	// The single slot must redial transparently.
	if err := pool.Set("k", []byte("v")); err != nil {
		t.Fatalf("pool did not recover: %v", err)
	}
	v, found, err := pool.Get("k")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("after recovery: %q %v %v", v, found, err)
	}
}

func TestPoolPipeline(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 64)
	pool, err := NewPool(srv.Addr(), PoolOptions{Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	err = pool.Do(func(c *Client) error {
		p := c.Pipeline()
		p.Set("p1", []byte("a"))
		p.Set("p2", []byte("b"))
		p.Get("p1")
		results, err := p.Exec()
		if err != nil {
			return err
		}
		if !results[2].Found || string(results[2].Value) != "a" {
			return fmt.Errorf("pipeline over pool: %+v", results[2])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPoolClose(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 4)
	pool, err := NewPool(srv.Addr(), PoolOptions{Size: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	if err := pool.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := pool.Acquire(); err == nil {
		t.Fatal("Acquire succeeded on closed pool")
	}
}

func TestPoolDeadlines(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 64)
	pool, err := NewPool(srv.Addr(), PoolOptions{
		Size: 1,
		DialOptions: DialOptions{
			DialTimeout:  time.Second,
			ReadTimeout:  time.Second,
			WriteTimeout: time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	// Deadlines are re-armed per op: two ops with a pause between them must
	// both succeed even with a short window relative to total test time.
	if err := pool.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if _, _, err := pool.Get("k"); err != nil {
		t.Fatal(err)
	}
}

// TestDialTimeoutIsApplied: a deadline-configured client times out reading
// from a server that never replies, instead of blocking forever.
func TestReadTimeout(t *testing.T) {
	leakcheck.Check(t)
	// A listener that accepts and then stays silent.
	srv := startServer(t, 4)
	c, err := DialWith(srv.Addr(), DialOptions{ReadTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.conn.Close()
	// Bypass the protocol: send a frame the server will wait on (declared
	// payload never arrives), so no reply ever comes back.
	fmt.Fprintf(c.w, "SET k 10\r\n")
	c.flush()
	done := make(chan error, 1)
	go func() {
		_, err := c.readLine()
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("read returned without error from a silent server")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("ReadTimeout not applied; read blocked")
	}
}
