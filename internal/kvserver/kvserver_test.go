package kvserver

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
)

func startServer(t *testing.T, capacity int) *Server {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", capacity)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv
}

func dial(t *testing.T, srv *Server) *Client {
	t.Helper()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestServeValidation(t *testing.T) {
	if _, err := Serve("127.0.0.1:0", 0); err == nil {
		t.Fatal("zero capacity accepted")
	}
}

func TestSetGetDel(t *testing.T) {
	srv := startServer(t, 16)
	c := dial(t, srv)

	payload := []byte("sample-bytes \r\n with binary \x00\x01\x02")
	if err := c.Set("img:42", payload); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("img:42")
	if err != nil || !ok {
		t.Fatalf("Get: ok=%v err=%v", ok, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("payload mismatch: %q", got)
	}

	if _, ok, _ := c.Get("absent"); ok {
		t.Fatal("absent key found")
	}
	if ok, err := c.Del("img:42"); err != nil || !ok {
		t.Fatalf("Del: ok=%v err=%v", ok, err)
	}
	if ok, _ := c.Del("img:42"); ok {
		t.Fatal("double delete succeeded")
	}
	if _, ok, _ := c.Get("img:42"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestEmptyValue(t *testing.T) {
	srv := startServer(t, 4)
	c := dial(t, srv)
	if err := c.Set("empty", nil); err != nil {
		t.Fatal(err)
	}
	got, ok, err := c.Get("empty")
	if err != nil || !ok || len(got) != 0 {
		t.Fatalf("empty value roundtrip: %v %v %q", ok, err, got)
	}
}

func TestLRUEvictionOverWire(t *testing.T) {
	srv := startServer(t, 2)
	c := dial(t, srv)
	c.Set("a", []byte("1"))
	c.Set("b", []byte("2"))
	if _, ok, _ := c.Get("a"); !ok { // touch a: b becomes LRU
		t.Fatal("a missing")
	}
	c.Set("c", []byte("3")) // evicts b
	if _, ok, _ := c.Get("b"); ok {
		t.Fatal("LRU victim b still present")
	}
	if _, ok, _ := c.Get("a"); !ok {
		t.Fatal("recently used a evicted")
	}
	items, hits, misses := srv.Stats()
	if items != 2 {
		t.Fatalf("items %d", items)
	}
	if hits < 2 || misses < 1 {
		t.Fatalf("hits=%d misses=%d", hits, misses)
	}
}

func TestStatsOverWire(t *testing.T) {
	srv := startServer(t, 8)
	c := dial(t, srv)
	c.Set("k", []byte("v"))
	c.Get("k")
	c.Get("nope")
	items, hits, misses, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if items != 1 || hits != 1 || misses != 1 {
		t.Fatalf("stats %d/%d/%d", items, hits, misses)
	}
}

func TestInvalidClientKey(t *testing.T) {
	srv := startServer(t, 8)
	c := dial(t, srv)
	for _, key := range []string{"", "has space", "has\nnewline"} {
		if err := c.Set(key, []byte("v")); err == nil {
			t.Errorf("key %q accepted", key)
		}
	}
}

// TestProtocolErrors pins every malformed frame to its exact stable
// SERVER_ERROR string — the strings are protocol surface (fuzz corpora and
// clients match on them), so a refactor that changes one is a breaking
// change this test catches.
func TestProtocolErrors(t *testing.T) {
	srv := startServer(t, 8)
	cases := []struct {
		raw  string
		want string
	}{
		{"BOGUS\r\n", "unknown command"},
		{"SET onlykey\r\n", "bad arguments"},
		{"SET k notanumber\r\n", "bad value length"},
		{"SET k -1\r\n", "bad value length"},
		{"SET k 99999999999999999999\r\n", "bad value length"},
		{"GET\r\n", "bad arguments"},
		{"GET a b\r\n", "bad arguments"},
		{"DEL\r\n", "bad arguments"},
		{"STATS extra\r\n", "bad arguments"},
		{"METRICS extra\r\n", "bad arguments"},
		{"MSET\r\n", "bad arguments"},
		{"MSET nope\r\n", "bad batch count"},
		{"MSET -1\r\n", "bad batch count"},
		{"MSET 99999999\r\n", "bad batch count"},
		{"MSET 1\r\na b c\r\n", "bad arguments"},
		{"SET k 3\r\nabcXY", "bad payload framing"},
		{fmt.Sprintf("SET %s 1\r\nx\r\n", strings.Repeat("k", MaxKeyLen+1)), "key too long"},
	}
	for _, tc := range cases {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(conn, tc.raw)
		reply, _ := io.ReadAll(conn)
		want := "SERVER_ERROR " + tc.want + "\r\n"
		if string(reply) != want {
			t.Errorf("input %q: reply %q, want %q", tc.raw, reply, want)
		}
		conn.Close()
	}
}

// TestZeroBatchVerbs: the degenerate batch sizes are legal, not protocol
// errors — MGET with no keys answers a bare END and MSET 0 answers
// STORED 0, in both cases leaving the connection open for the next
// command (the exact-match replies below include a follow-up GET to
// prove the session survived).
func TestZeroBatchVerbs(t *testing.T) {
	srv := startServer(t, 8)
	cases := []struct {
		raw  string
		want string
	}{
		{"MGET\r\nQUIT\r\n", "END\r\n"},
		{"MSET 0\r\nQUIT\r\n", "STORED 0\r\n"},
		{"SET k 1\r\nv\r\nMGET\r\nGET k\r\nQUIT\r\n", "STORED\r\nEND\r\nVALUE 1\r\nv\r\n"},
		{"MSET 0\r\nMGET\r\nMSET 0\r\nQUIT\r\n", "STORED 0\r\nEND\r\nSTORED 0\r\n"},
	}
	for _, tc := range cases {
		conn, err := net.Dial("tcp", srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(conn, tc.raw)
		reply, _ := io.ReadAll(conn)
		if string(reply) != tc.want {
			t.Errorf("input %q: reply %q, want %q", tc.raw, reply, tc.want)
		}
		conn.Close()
	}
}

// Client.MGet and Client.MSet short-circuit the zero-key case without
// touching the wire, matching the server's semantics exactly.
func TestClientZeroBatch(t *testing.T) {
	srv := startServer(t, 8)
	c := dial(t, srv)
	vs, found, err := c.MGet()
	if err != nil || vs != nil || found != nil {
		t.Fatalf("MGet() = %v %v %v, want nil nil nil", vs, found, err)
	}
	if err := c.MSet(nil, nil); err != nil {
		t.Fatalf("MSet(nil, nil) = %v", err)
	}
	// The connection must still be usable.
	if err := c.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, ok, err := c.Get("k"); err != nil || !ok || string(v) != "v" {
		t.Fatalf("Get after zero batches: %q %v %v", v, ok, err)
	}
}

// TestProtocolErrorAfterPipelinedReplies: replies produced before the bad
// frame are delivered, then the stable error, then close.
func TestProtocolErrorAfterPipelinedReplies(t *testing.T) {
	srv := startServer(t, 8)
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "SET k 1\r\nv\r\nGET k\r\nBOGUS\r\n")
	reply, _ := io.ReadAll(conn)
	want := "STORED\r\nVALUE 1\r\nv\r\nSERVER_ERROR unknown command\r\n"
	if string(reply) != want {
		t.Fatalf("reply %q, want %q", reply, want)
	}
}

func TestConcurrentClients(t *testing.T) {
	srv := startServer(t, 1024)
	const clients, opsPerClient = 8, 200
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for g := 0; g < clients; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < opsPerClient; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%50)
				val := []byte(fmt.Sprintf("v-%d-%d", g, i))
				if err := c.Set(key, val); err != nil {
					errs <- err
					return
				}
				got, ok, err := c.Get(key)
				if err != nil || !ok || !bytes.Equal(got, val) {
					errs <- fmt.Errorf("g%d op%d: ok=%v err=%v got=%q", g, i, ok, err, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	items, _, _ := srv.Stats()
	if items != clients*50 {
		t.Fatalf("items %d, want %d", items, clients*50)
	}
}

func TestUpdateExistingKey(t *testing.T) {
	srv := startServer(t, 4)
	c := dial(t, srv)
	c.Set("k", []byte("v1"))
	c.Set("k", []byte("v2"))
	got, ok, _ := c.Get("k")
	if !ok || string(got) != "v2" {
		t.Fatalf("update lost: %q", got)
	}
	items, _, _ := srv.Stats()
	if items != 1 {
		t.Fatalf("duplicate key grew store to %d", items)
	}
}

func TestCloseStopsServer(t *testing.T) {
	srv, err := Serve("127.0.0.1:0", 4)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr); err == nil {
		t.Fatal("dial succeeded after Close")
	}
}

func BenchmarkSetGet(b *testing.B) {
	srv, err := Serve("127.0.0.1:0", 4096)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte("x"), 3<<10) // CIFAR-sized sample
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := fmt.Sprintf("k%d", i%2048)
		if err := c.Set(key, payload); err != nil {
			b.Fatal(err)
		}
		if _, _, err := c.Get(key); err != nil {
			b.Fatal(err)
		}
	}
}
