package kvserver

import (
	"fmt"
	"sync"
	"testing"
)

func TestAutoShards(t *testing.T) {
	cases := []struct {
		capacity, want int
	}{
		{1, 1},
		{2, 1},
		{63, 1},
		{64, 1},
		{127, 1},
		{128, 2},
		{256, 4},
		{512, 8},
		{1024, 16},
		{1 << 20, 16}, // capped at maxAutoShards
	}
	for _, tc := range cases {
		if got := autoShards(tc.capacity); got != tc.want {
			t.Errorf("autoShards(%d) = %d, want %d", tc.capacity, got, tc.want)
		}
	}
}

// TestShardCapacityAccounting: the per-shard capacities sum exactly to the
// requested capacity, for every shard count, including non-dividing ones.
func TestShardCapacityAccounting(t *testing.T) {
	for _, capacity := range []int{1, 2, 7, 64, 100, 1000, 4096} {
		for _, shards := range []int{1, 2, 4, 8, 16} {
			st := newStoreShards(capacity, shards)
			sum := 0
			for i := 0; i < st.numShards(); i++ {
				_, _, _, cap := st.shardStats(i)
				if cap < 0 {
					t.Fatalf("capacity=%d shards=%d: negative shard cap", capacity, shards)
				}
				sum += cap
			}
			if sum != capacity {
				t.Errorf("capacity=%d shards=%d: shard caps sum to %d", capacity, shards, sum)
			}
		}
	}
}

// TestShardedEvictionBound: resident items never exceed the configured
// capacity no matter how keys hash, because each shard evicts against its
// own slice of the budget.
func TestShardedEvictionBound(t *testing.T) {
	const capacity = 100
	st := newStoreShards(capacity, 8)
	for i := 0; i < 10*capacity; i++ {
		st.set(fmt.Sprintf("key-%d", i), []byte("v"))
		if items, _, _ := st.stats(); items > capacity {
			t.Fatalf("after %d sets: %d items > capacity %d", i+1, items, capacity)
		}
	}
	items, _, _ := st.stats()
	// Every shard saw far more keys than its slice holds, so the store
	// should be full (each shard pinned at its own capacity).
	if items != capacity {
		t.Fatalf("store not full after 10x-capacity inserts: %d/%d", items, capacity)
	}
}

// TestStatsEqualsShardSums: the aggregate STATS triple is exactly the sum
// of the per-shard counters.
func TestStatsEqualsShardSums(t *testing.T) {
	st := newStoreShards(256, 8)
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("k%d", i%100)
		if i%3 == 0 {
			st.set(key, []byte("v"))
		} else {
			st.get(fmt.Sprintf("k%d", i%150)) // mix of hits and misses
		}
	}
	items, hits, misses := st.stats()
	var sumItems int
	var sumHits, sumMisses int64
	for i := 0; i < st.numShards(); i++ {
		it, h, m, _ := st.shardStats(i)
		sumItems += it
		sumHits += h
		sumMisses += m
	}
	if items != sumItems || hits != sumHits || misses != sumMisses {
		t.Fatalf("stats (%d,%d,%d) != shard sums (%d,%d,%d)",
			items, hits, misses, sumItems, sumHits, sumMisses)
	}
	if hits == 0 || misses == 0 {
		t.Fatalf("degenerate workload: hits=%d misses=%d", hits, misses)
	}
}

// TestShardDistribution: FNV-1a spreads realistic key shapes across shards
// (no shard empty, no shard hoarding) — the property shard balance gauges
// exist to watch.
func TestShardDistribution(t *testing.T) {
	st := newStoreShards(1<<14, 16)
	const n = 4096
	for i := 0; i < n; i++ {
		st.set(fmt.Sprintf("sample:%d", i), []byte("v"))
	}
	mean := n / st.numShards()
	for i := 0; i < st.numShards(); i++ {
		items, _, _, _ := st.shardStats(i)
		if items < mean/2 || items > mean*2 {
			t.Errorf("shard %d has %d items, mean %d — badly unbalanced", i, items, mean)
		}
	}
}

// TestSingleShardStrictLRU: a 1-shard store preserves the exact global LRU
// behaviour of the pre-sharding implementation.
func TestSingleShardStrictLRU(t *testing.T) {
	st := newStoreShards(2, 1)
	st.set("a", []byte("1"))
	st.set("b", []byte("2"))
	if _, ok := st.get("a"); !ok {
		t.Fatal("a missing")
	}
	st.set("c", []byte("3")) // must evict b, the global LRU
	if _, ok := st.get("b"); ok {
		t.Fatal("LRU victim b still present")
	}
	if _, ok := st.get("a"); !ok {
		t.Fatal("recently used a evicted")
	}
}

// TestStoreRaceStress hammers one store with mixed GET/SET/DEL from many
// goroutines; run under -race it checks the per-shard locking discipline.
func TestStoreRaceStress(t *testing.T) {
	st := newStoreShards(512, 8)
	const goroutines = 8
	const ops = 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("k%d", (g*31+i*7)%256)
				switch i % 4 {
				case 0, 1:
					st.get(key)
				case 2:
					st.set(key, []byte{byte(g), byte(i)})
				case 3:
					st.del(key)
				}
			}
		}(g)
	}
	wg.Wait()
	items, hits, misses := st.stats()
	if items < 0 || items > 512 {
		t.Fatalf("items out of bounds: %d", items)
	}
	if hits+misses == 0 {
		t.Fatal("no gets recorded")
	}
}

// TestServerRaceStress drives mixed verbs over many real connections — the
// wire-level -race stress for the sharded data plane, including the batch
// verbs and pipelines.
func TestServerRaceStress(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", Options{Capacity: 512, Shards: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	const conns = 8
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for g := 0; g < conns; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 100; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%40)
				switch i % 5 {
				case 0:
					if err := c.Set(key, []byte("v")); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, _, err := c.Get(key); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := c.Del(key); err != nil {
						errs <- err
						return
					}
				case 3:
					if err := c.MSet([]string{key + "a", key + "b"}, [][]byte{{1}, {2}}); err != nil {
						errs <- err
						return
					}
				case 4:
					p := c.Pipeline()
					p.Set(key, []byte("p"))
					p.Get(key)
					p.Del(key)
					if _, err := p.Exec(); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if items, _, _ := srv.Stats(); items > 512 {
		t.Fatalf("capacity breached: %d items", items)
	}
}

// TestShardsOption: explicit Options.Shards is honoured (rounded to a
// power of two, clamped to capacity).
func TestShardsOption(t *testing.T) {
	cases := []struct {
		capacity, shards, want int
	}{
		{1024, 4, 4},
		{1024, 5, 4},  // rounded down to pow2
		{1024, 0, 16}, // auto
		{4, 64, 4},    // clamped to capacity
		{1024, 1, 1},
	}
	for _, tc := range cases {
		srv, err := ServeWith("127.0.0.1:0", Options{Capacity: tc.capacity, Shards: tc.shards})
		if err != nil {
			t.Fatal(err)
		}
		if got := srv.Shards(); got != tc.want {
			t.Errorf("capacity=%d shards=%d: got %d shards, want %d",
				tc.capacity, tc.shards, got, tc.want)
		}
		srv.Close()
	}
}
