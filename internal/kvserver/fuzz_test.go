package kvserver

import (
	"bufio"
	"bytes"
	"testing"

	"spidercache/internal/telemetry"
)

// FuzzServeOne drives the protocol handler with arbitrary bytes: the server
// must never panic regardless of input, and every reply must be a protocol
// line. The seed corpus covers each command and common malformations.
func FuzzServeOne(f *testing.F) {
	f.Add([]byte("GET k\r\n"))
	f.Add([]byte("SET k 3\r\nabc\r\n"))
	f.Add([]byte("SET k 3\r\nabcXX"))
	f.Add([]byte("DEL k\r\n"))
	f.Add([]byte("STATS\r\n"))
	f.Add([]byte("METRICS\r\n"))
	f.Add([]byte("QUIT\r\n"))
	f.Add([]byte("SET k 99999999999999999999\r\n"))
	f.Add([]byte("\r\n"))
	f.Add([]byte{0, 1, 2, '\n'})
	f.Fuzz(func(t *testing.T, input []byte) {
		reg := telemetry.NewRegistry()
		srv := &Server{store: newStore(8), reg: reg, tel: newServerTelemetry(reg)}
		r := bufio.NewReader(bytes.NewReader(input))
		var out bytes.Buffer
		w := bufio.NewWriter(&out)
		// Serve until the handler reports an error (EOF, protocol error,
		// quit); each call must return rather than panic.
		for i := 0; i < 16; i++ {
			if err := srv.serveOne(r, w); err != nil {
				break
			}
		}
		w.Flush()
	})
}
