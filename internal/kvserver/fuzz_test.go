package kvserver

import (
	"bufio"
	"bytes"
	"strings"
	"testing"

	"spidercache/internal/telemetry"
)

// FuzzServeOne drives the protocol handler with arbitrary bytes: the server
// must never panic regardless of input, and every error must map to a
// stable protocol string (see protoErr) or be an I/O error. The seed corpus
// covers each command — including the batch verbs and pipelined
// multi-command streams — and common malformations.
func FuzzServeOne(f *testing.F) {
	f.Add([]byte("GET k\r\n"))
	f.Add([]byte("SET k 3\r\nabc\r\n"))
	f.Add([]byte("SET k 3\r\nabcXX"))
	f.Add([]byte("DEL k\r\n"))
	f.Add([]byte("STATS\r\n"))
	f.Add([]byte("METRICS\r\n"))
	f.Add([]byte("QUIT\r\n"))
	f.Add([]byte("SET k 99999999999999999999\r\n"))
	f.Add([]byte("\r\n"))
	f.Add([]byte{0, 1, 2, '\n'})
	// Batch verbs.
	f.Add([]byte("MGET a b c\r\n"))
	f.Add([]byte("MGET\r\n"))
	f.Add([]byte("MSET 2\r\na 1\r\nx\r\nb 1\r\ny\r\n"))
	f.Add([]byte("MSET 2\r\na 1\r\nx\r\n")) // truncated batch
	f.Add([]byte("MSET 0\r\n"))             // zero count
	f.Add([]byte("MSET -1\r\n"))            // bad count
	f.Add([]byte("MSET 999999999\r\n"))     // over MaxBatchOps
	f.Add([]byte("MSET 1\r\na b c\r\n"))    // malformed frame
	// Pipelined multi-command streams.
	f.Add([]byte("SET k 1\r\nv\r\nGET k\r\nDEL k\r\nGET k\r\n"))
	f.Add([]byte("MSET 1\r\na 1\r\nz\r\nMGET a b\r\nSTATS\r\n"))
	f.Add([]byte("GET a\r\nGET b\r\nGET c\r\nQUIT\r\nGET d\r\n"))
	f.Add([]byte("SET k 2\r\nvvXXGET k\r\n")) // bad framing mid-pipeline
	// Semantic verbs. "\x00\x00\x80?" is float32(1.0) little-endian.
	f.Add([]byte("ESET k 2\r\n\x00\x00\x80?\x00\x00\x80?\r\n"))
	f.Add([]byte("NGET k 0.5 2\r\n\x00\x00\x80?\x00\x00\x80?\r\n"))
	f.Add([]byte("ESET k 2\r\n\x00\x00\x80?\x00\x00\x80?\r\nNGET k 0 2\r\n\x00\x00\x80?\x00\x00\x80?\r\n"))
	f.Add([]byte("NGET k nan 2\r\n\x00\x00\x80?\x00\x00\x80?\r\n"))   // bad threshold
	f.Add([]byte("NGET k -1 2\r\n\x00\x00\x80?\x00\x00\x80?\r\n"))    // negative threshold
	f.Add([]byte("ESET k 0\r\n\r\n"))                                 // zero dim
	f.Add([]byte("ESET k 99999\r\n"))                                 // over MaxEmbedDim
	f.Add([]byte("ESET k 2\r\n\x00\x00\x80?\r\n"))                    // truncated payload
	f.Add([]byte("ESET k 2\r\n\x00\x00\x00\x00\x00\x00\x00\x00\r\n")) // zero vector
	f.Fuzz(func(t *testing.T, input []byte) {
		reg := telemetry.NewRegistry()
		srv := newServerCore(newStore(8), reg)
		r := bufio.NewReader(bytes.NewReader(input))
		var out bytes.Buffer
		w := bufio.NewWriter(&out)
		sess := newSession(r, w)
		// Serve until the handler reports an error (EOF, protocol error,
		// quit); each call must return rather than panic, and protocol
		// errors must carry one of the stable strings.
		for i := 0; i < 16; i++ {
			err := srv.serveOne(sess)
			if err == nil {
				continue
			}
			if pe, ok := err.(protoErr); ok {
				if !knownProtoErr(pe) {
					t.Fatalf("unstable protocol error %q for input %q", pe, input)
				}
			}
			break
		}
		w.Flush()
	})
}

func knownProtoErr(pe protoErr) bool {
	switch pe {
	case errEmptyCommand, errUnknownCmd, errBadArgs, errKeyTooLong,
		errBadLength, errBadPayload, errBadBatchCount, errLineTooLong,
		errBadEmbedDim, errBadThreshold:
		return true
	}
	return false
}

// FuzzClientRoundTrip fuzzes the key/value space end to end over a real
// connection: anything the client accepts must round-trip byte-identically
// through SET/GET and MSET/MGET.
func FuzzClientRoundTrip(f *testing.F) {
	f.Add("k", []byte("v"))
	f.Add("a:b:c", []byte{})
	f.Add(strings.Repeat("k", MaxKeyLen), bytes.Repeat([]byte{0xff}, 64))
	f.Fuzz(func(t *testing.T, key string, value []byte) {
		srv, err := Serve("127.0.0.1:0", 8)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		c, err := Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		if err := c.Set(key, value); err != nil {
			// The client rejects invalid keys locally; that is fine.
			if validKey(key) != nil {
				return
			}
			t.Fatalf("Set(%q): %v", key, err)
		}
		got, ok, err := c.Get(key)
		if err != nil || !ok || !bytes.Equal(got, value) {
			t.Fatalf("Get(%q): ok=%v err=%v got=%q want=%q", key, ok, err, got, value)
		}
		const absent = "\x01never-set"
		vs, found, err := c.MGet(key, absent)
		if err != nil || !found[0] || !bytes.Equal(vs[0], value) {
			t.Fatalf("MGet(%q): found=%v err=%v", key, found, err)
		}
		if key != absent && found[1] {
			t.Fatalf("MGet: absent key reported found")
		}
	})
}
