package kvserver

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"spidercache/internal/telemetry"
)

func TestMetricsVerbOverWire(t *testing.T) {
	srv := startServer(t, 16)
	c := dial(t, srv)

	if err := c.Set("img:1", []byte("payload")); err != nil {
		t.Fatal(err)
	}
	if _, ok, err := c.Get("img:1"); err != nil || !ok {
		t.Fatalf("Get hit: ok=%v err=%v", ok, err)
	}
	if _, ok, err := c.Get("img:missing"); err != nil || ok {
		t.Fatalf("Get miss: ok=%v err=%v", ok, err)
	}
	if _, err := c.Del("img:1"); err != nil {
		t.Fatal(err)
	}

	text, err := c.Metrics()
	if err != nil {
		t.Fatalf("Metrics: %v", err)
	}
	for _, want := range []string{
		`kv_ops_total{op="get",result="hit"} 1`,
		`kv_ops_total{op="get",result="miss"} 1`,
		`kv_ops_total{op="set",result="stored"} 1`,
		`kv_ops_total{op="del",result="deleted"} 1`,
		`kv_op_seconds{op="get",quantile="0.5"}`,
		`kv_op_seconds{op="get",quantile="0.95"}`,
		`kv_op_seconds{op="get",quantile="0.99"}`,
		`kv_op_seconds_count{op="get"} 2`,
		"# TYPE kv_ops_total counter",
		"# TYPE kv_op_seconds summary",
		"kv_items 0",
		"kv_hits 1",
		"kv_misses 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("METRICS output missing %q:\n%s", want, text)
		}
	}
}

func TestMetricsSharedRegistry(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Gauge("host_custom_gauge", nil).Set(42)
	srv, err := ServeWith("127.0.0.1:0", Options{Capacity: 4, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	if srv.Metrics() != reg {
		t.Fatal("server did not adopt the shared registry")
	}

	c := dial(t, srv)
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	// The METRICS verb serves host-registered series alongside kv_* ones.
	if !strings.Contains(text, "host_custom_gauge 42") {
		t.Fatalf("shared series missing:\n%s", text)
	}
	if !strings.Contains(text, "kv_items") {
		t.Fatalf("kv series missing:\n%s", text)
	}
}

// TestMetricsShardGauges: METRICS exports one kv_shard_items gauge per
// store shard, and their sum equals kv_items — shard balance is visible.
func TestMetricsShardGauges(t *testing.T) {
	srv, err := ServeWith("127.0.0.1:0", Options{Capacity: 1024, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	c := dial(t, srv)
	for i := 0; i < 64; i++ {
		if err := c.Set(fmt.Sprintf("key-%d", i), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for i := 0; i < 4; i++ {
		name := fmt.Sprintf(`kv_shard_items{shard="%d"}`, i)
		v, ok := scrapeGauge(text, name)
		if !ok {
			t.Fatalf("METRICS missing %s:\n%s", name, text)
		}
		total += v
	}
	if total != 64 {
		t.Fatalf("shard gauges sum to %v, want 64", total)
	}
	if items, ok := scrapeGauge(text, "kv_items"); !ok || items != 64 {
		t.Fatalf("kv_items = %v (ok=%v), want 64", items, ok)
	}
}

// scrapeGauge pulls one sample value out of Prometheus exposition text.
func scrapeGauge(text, series string) (float64, bool) {
	for _, line := range strings.Split(text, "\n") {
		if rest, ok := strings.CutPrefix(line, series+" "); ok {
			var v float64
			if _, err := fmt.Sscanf(rest, "%g", &v); err == nil {
				return v, true
			}
		}
	}
	return 0, false
}

// TestMetricsPipelineDepth: pipelined commands served under one flush are
// visible in kv_pipeline_depth and kv_net_flushes_total.
func TestMetricsPipelineDepth(t *testing.T) {
	srv := startServer(t, 64)
	c := dial(t, srv)
	p := c.Pipeline()
	for i := 0; i < 8; i++ {
		p.Set(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if _, err := p.Exec(); err != nil {
		t.Fatal(err)
	}
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"kv_pipeline_depth_count",
		`kv_pipeline_depth{quantile="0.5"}`,
		"kv_net_flushes_total",
		`kv_ops_total{op="mget"`,
		`kv_ops_total{op="mset"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("METRICS missing %q:\n%s", want, text)
		}
	}
	// All 8 pipelined SETs should have been answered under few flushes:
	// the max observed depth must exceed 1 for the coalescing to be real.
	if depth, ok := scrapeGauge(text, `kv_pipeline_depth{quantile="0.99"}`); !ok || depth < 2 {
		t.Fatalf("pipeline depth p99 = %v (ok=%v), want >= 2 — flush coalescing not engaged", depth, ok)
	}
}

func TestMetricsConcurrentWithTraffic(t *testing.T) {
	srv := startServer(t, 64)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := dial(t, srv)
			for i := 0; i < 50; i++ {
				key := "k" + string(rune('a'+g))
				if err := c.Set(key, []byte("v")); err != nil {
					t.Error(err)
					return
				}
				if _, _, err := c.Get(key); err != nil {
					t.Error(err)
					return
				}
				if _, err := c.Metrics(); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	c := dial(t, srv)
	text, err := c.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, `kv_ops_total{op="set",result="stored"} 200`) {
		t.Fatalf("expected 200 stored sets:\n%s", text)
	}
}
