package kvserver

// Semantic serving: the NGET/ESET verb pair (see the package comment's
// protocol table).
//
//	ESET <key> <dim>\r\n<dim little-endian float32s>\r\n
//	NGET <key> <threshold> <dim>\r\n<dim little-endian float32s>\r\n
//
// ESET attaches an embedding to a key in the node-local semantic index
// (semindex.go). NGET is GET with a fallback: an exact hit answers
// VALUE exactly like GET; on a miss, the index is consulted and the
// nearest *resident* neighbor within the cosine-distance threshold is
// served as "NEAR <key> <dist> <nbytes>" so the client can tell a
// substitute from the real thing. Embeddings are unit-normalized at
// the boundary, so cosine distance (1 − a·b, range [0,2]) is derived
// from the index's Euclidean metric as d²/2.
//
// A threshold of 0 never consults the index: it requests exact-match
// semantics, and the reply stream is byte-identical to GET (two
// distinct keys may carry identical embeddings, so even a zero
// distance does not imply the exact key).

import (
	"encoding/binary"
	"io"
	"math"
	"strconv"
	"time"
)

// MaxEmbedDim bounds the dimensionality of an ESET/NGET embedding.
const MaxEmbedDim = 1024

// ngetDistDigits is the fixed fraction width of the NEAR reply's
// distance field. Cosine distances live in [0, 2]; six digits keep the
// field short, stable, and far finer than any useful threshold.
const ngetDistDigits = 6

// parseThreshold parses NGET's cosine-distance threshold field: a
// finite, non-negative decimal float.
func parseThreshold(b []byte) (float64, error) {
	t, err := strconv.ParseFloat(string(b), 64)
	if err != nil || math.IsNaN(t) || math.IsInf(t, 0) || t < 0 {
		return 0, errBadThreshold
	}
	return t, nil
}

// readEmbedding validates a <dim> header field, reads the
// CRLF-terminated payload of dim little-endian float32s, and returns
// the unit-normalized vector. The slice aliases session scratch — it
// is only valid until the next readEmbedding on this session (the
// semantic index copies on upsert, and searches do not retain it).
func (sess *session) readEmbedding(dimField []byte) ([]float64, error) {
	dim, err := parseLength(dimField)
	if err != nil || dim < 1 || dim > MaxEmbedDim {
		return nil, errBadEmbedDim
	}
	n := dim * 4
	if cap(sess.emb) < n {
		sess.emb = make([]byte, n)
	}
	buf := sess.emb[:n]
	if _, err := io.ReadFull(sess.r, buf); err != nil {
		return nil, err
	}
	if err := sess.expectCRLF(); err != nil {
		return nil, err
	}
	if cap(sess.vec) < dim {
		sess.vec = make([]float64, dim)
	}
	vec := sess.vec[:dim]
	var norm float64
	for i := 0; i < dim; i++ {
		f := float64(math.Float32frombits(binary.LittleEndian.Uint32(buf[i*4:])))
		if math.IsNaN(f) || math.IsInf(f, 0) {
			return nil, errBadEmbedDim
		}
		vec[i] = f
		norm += f * f
	}
	// A zero vector has no direction, so cosine distance to it is
	// undefined; reject it with the same stable error as a bad dim.
	if norm == 0 {
		return nil, errBadEmbedDim
	}
	inv := 1 / math.Sqrt(norm)
	for i := range vec {
		vec[i] *= inv
	}
	return vec, nil
}

// doESet handles "ESET <key> <dim>": index the embedding under key.
func (s *Server) doESet(sess *session, args [][]byte) error {
	if len(args) != 2 {
		return errBadArgs
	}
	if len(args[0]) > MaxKeyLen {
		return errKeyTooLong
	}
	start := time.Now()
	// Copy the key BEFORE the payload read refills the reader's buffer
	// (args alias it).
	key := string(args[0])
	vec, err := sess.readEmbedding(args[1])
	if err != nil {
		return err
	}
	if err := s.sem.upsert(key, vec); err != nil {
		return err
	}
	_, err = sess.w.WriteString("STORED\r\n")
	s.tel.esetOps.Inc()
	s.tel.esetLat.Observe(time.Since(start).Seconds())
	return err
}

// doNGet handles "NGET <key> <threshold> <dim>": GET with semantic
// fallback.
func (s *Server) doNGet(sess *session, args [][]byte) error {
	if len(args) != 3 {
		return errBadArgs
	}
	if len(args[0]) > MaxKeyLen {
		return errKeyTooLong
	}
	threshold, err := parseThreshold(args[1])
	if err != nil {
		return err
	}
	start := time.Now()
	key := string(args[0]) // args alias the reader buffer; see doESet
	q, err := sess.readEmbedding(args[2])
	if err != nil {
		return err
	}
	// One pin brackets the exact probe, the neighbor probes, and the
	// reply write: in arena mode every value slice returned below
	// aliases arena memory that compaction may recycle, and the epoch
	// keeps those bytes intact until they have left for the bufio
	// writer (the same argument as doGet, extended to the NEAR reply).
	pin := s.store.pin()
	if value, ok := s.store.get(key); ok {
		err := sess.writeValueOrMiss(value, true)
		pin.Unpin()
		s.tel.semExact.Inc()
		s.tel.ngetLat.Observe(time.Since(start).Seconds())
		return err
	}
	if threshold > 0 {
		for _, nb := range s.sem.lookup(q) {
			if nb.dist > threshold {
				break // candidates ascend; nothing closer is coming
			}
			if nb.key == key {
				// The query key's own (stale) embedding; its value is
				// gone, so it cannot substitute for itself.
				continue
			}
			value, ok := s.store.get(nb.key)
			if !ok {
				continue // indexed but evicted; try the next-nearest
			}
			err := sess.writeNear(nb.key, nb.dist, value)
			pin.Unpin()
			s.tel.semNear.Inc()
			s.tel.semDist.Observe(nb.dist)
			s.tel.ngetLat.Observe(time.Since(start).Seconds())
			return err
		}
	}
	err = sess.writeValueOrMiss(nil, false)
	pin.Unpin()
	s.tel.semMiss.Inc()
	s.tel.ngetLat.Observe(time.Since(start).Seconds())
	return err
}

// writeNear writes "NEAR <key> <dist> <nbytes>\r\n<payload>\r\n".
func (sess *session) writeNear(key string, dist float64, value []byte) error {
	sess.w.WriteString("NEAR ")
	sess.w.WriteString(key)
	sess.w.WriteByte(' ')
	sess.num = strconv.AppendFloat(sess.num[:0], dist, 'f', ngetDistDigits, 64)
	sess.w.Write(sess.num)
	sess.w.WriteByte(' ')
	sess.writeInt(int64(len(value)))
	sess.w.WriteString("\r\n")
	sess.w.Write(value)
	_, err := sess.w.WriteString("\r\n")
	return err
}
