package kvserver

import (
	"errors"
	"fmt"
	"sync"
)

// PoolOptions configures a connection pool.
type PoolOptions struct {
	// Size is the fixed number of pooled connections (default 4).
	Size int
	// DialOptions apply to every pooled connection (dial/read/write
	// deadlines).
	DialOptions
}

// Pool is a fixed-size pool of client connections, safe for concurrent
// use: goroutines Acquire a connection, use it (including Pipeline/MGet),
// and Release it. Convenience wrappers (Get/Set/Del/MGet/MSet/Do) do the
// acquire/release dance and retire broken connections, redialling lazily
// so one failed op doesn't shrink the pool.
type Pool struct {
	addr  string
	opts  PoolOptions
	conns chan *Client // nil entry = slot needs a redial

	mu     sync.Mutex
	closed bool
}

// NewPool dials opts.Size connections to addr up front, failing fast if
// the server is unreachable.
func NewPool(addr string, opts PoolOptions) (*Pool, error) {
	if opts.Size <= 0 {
		opts.Size = 4
	}
	p := &Pool{addr: addr, opts: opts, conns: make(chan *Client, opts.Size)}
	for i := 0; i < opts.Size; i++ {
		c, err := DialWith(addr, opts.DialOptions)
		if err != nil {
			p.Close()
			return nil, fmt.Errorf("kvserver: pool dial %d/%d: %w", i+1, opts.Size, err)
		}
		p.conns <- c
	}
	return p, nil
}

// Size reports the pool's fixed connection count.
func (p *Pool) Size() int { return p.opts.Size }

// Acquire checks a connection out of the pool, blocking until one is free.
// Pass it back with Release (always, even after errors) — or, if the
// connection is broken, with Discard so the slot redials.
func (p *Pool) Acquire() (*Client, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil, errors.New("kvserver: pool is closed")
	}
	p.mu.Unlock()
	c := <-p.conns
	if c == nil {
		// Slot was discarded; redial it now. On failure the slot stays
		// marked so the pool never shrinks.
		c, err := DialWith(p.addr, p.opts.DialOptions)
		if err != nil {
			p.conns <- nil
			return nil, err
		}
		return c, nil
	}
	return c, nil
}

// Release returns a healthy connection to the pool.
func (p *Pool) Release(c *Client) {
	if c == nil {
		p.conns <- nil
		return
	}
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		c.Close()
		return
	}
	p.conns <- c
}

// Discard closes a broken connection and marks its slot for lazy redial.
func (p *Pool) Discard(c *Client) {
	if c != nil {
		c.Close()
	}
	p.conns <- nil
}

// Do runs f with a pooled connection. If f returns an error the connection
// is assumed poisoned (mid-stream state is unknowable) and is discarded;
// the slot redials on next use.
func (p *Pool) Do(f func(*Client) error) error {
	c, err := p.Acquire()
	if err != nil {
		return err
	}
	if err := f(c); err != nil {
		p.Discard(c)
		return err
	}
	p.Release(c)
	return nil
}

// Get is Client.Get over a pooled connection.
func (p *Pool) Get(key string) (value []byte, found bool, err error) {
	err = p.Do(func(c *Client) error {
		var e error
		value, found, e = c.Get(key)
		return e
	})
	return value, found, err
}

// Set is Client.Set over a pooled connection.
func (p *Pool) Set(key string, value []byte) error {
	return p.Do(func(c *Client) error { return c.Set(key, value) })
}

// Del is Client.Del over a pooled connection.
func (p *Pool) Del(key string) (found bool, err error) {
	err = p.Do(func(c *Client) error {
		var e error
		found, e = c.Del(key)
		return e
	})
	return found, err
}

// MGet is Client.MGet over a pooled connection.
func (p *Pool) MGet(keys ...string) (values [][]byte, found []bool, err error) {
	err = p.Do(func(c *Client) error {
		var e error
		values, found, e = c.MGet(keys...)
		return e
	})
	return values, found, err
}

// MSet is Client.MSet over a pooled connection.
func (p *Pool) MSet(keys []string, values [][]byte) error {
	return p.Do(func(c *Client) error { return c.MSet(keys, values) })
}

// Close closes every pooled connection. Outstanding Acquires fail;
// connections released later are closed on return.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	var first error
	for {
		select {
		case c := <-p.conns:
			if c != nil {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		default:
			return first
		}
	}
}
