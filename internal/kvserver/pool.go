package kvserver

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"spidercache/internal/telemetry"
	"spidercache/internal/xrand"
)

// ErrPoolClosed is returned by pool operations after Close. It fails fast:
// an Acquire blocked on a busy pool is woken, never left hanging.
var ErrPoolClosed = errors.New("kvserver: pool is closed")

// ErrBreakerOpen is returned without touching the network when the pool's
// circuit breaker is open (or half-open with its probe quota in flight).
// Callers holding alternatives (cluster failover, backing storage) should
// route around the node rather than retry.
var ErrBreakerOpen = errors.New("kvserver: circuit breaker open")

// RetryOptions tunes the pool's retry layer. The zero value disables
// retries, preserving the historical single-attempt behaviour.
type RetryOptions struct {
	// Attempts is the total tries for idempotent ops (Get/MGet); 1 or 0
	// means a single attempt. Mutations (Set/MSet/Del) never use the full
	// budget: they retry at most once, and only when the failure was
	// provably pre-write (see Pool docs).
	Attempts int
	// BaseBackoff is the delay before the first retry; each further retry
	// doubles it (default 2ms).
	BaseBackoff time.Duration
	// MaxBackoff caps the exponential growth (default 100ms).
	MaxBackoff time.Duration
	// JitterFrac randomises each backoff by ±JitterFrac of itself, in
	// [0,1) (default 0.2), so synchronised clients do not retry in lockstep.
	JitterFrac float64
	// Seed drives the deterministic jitter stream.
	Seed uint64
}

func (o RetryOptions) withDefaults() RetryOptions {
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 2 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 100 * time.Millisecond
	}
	if o.JitterFrac < 0 || o.JitterFrac >= 1 {
		o.JitterFrac = 0.2
	}
	return o
}

// PoolOptions configures a connection pool.
type PoolOptions struct {
	// Size is the fixed number of pooled connections (default 4).
	Size int
	// DialOptions apply to every pooled connection (dial/read/write
	// deadlines).
	DialOptions
	// LazyDial skips the up-front dials: every slot starts marked for
	// redial, so NewPool succeeds even while the node is down and the first
	// Acquire of each slot pays the dial. This is the right mode for
	// failover clients that must construct against unreachable nodes.
	LazyDial bool
	// Retry enables retry with exponential backoff + jitter on the
	// convenience ops. Zero value = single attempt.
	Retry RetryOptions
	// Breaker enables a per-node circuit breaker; nil disables it.
	Breaker *BreakerOptions
	// Name labels this pool's telemetry series (kv_retries_total,
	// kv_breaker_state); empty means the dial address.
	Name string
	// Registry receives the pool's telemetry; nil records nothing.
	Registry *telemetry.Registry
}

// poolTelemetry groups the pool's instruments, resolved once at NewPool.
// This is the single registration site for the kv_retries_total and
// kv_breaker_state families.
type poolTelemetry struct {
	retries      map[string]*telemetry.Counter // by op
	breakerState *telemetry.Gauge
}

func newPoolTelemetry(reg *telemetry.Registry, node string) poolTelemetry {
	reg.Describe("kv_retries_total", "pool op retries by op and node")
	reg.Describe("kv_breaker_state", "per-node circuit breaker state (0=closed 1=half-open 2=open)")
	tel := poolTelemetry{retries: make(map[string]*telemetry.Counter, 7)}
	for _, op := range []string{"get", "mget", "set", "mset", "del", "nget", "eset"} {
		tel.retries[op] = reg.Counter("kv_retries_total", telemetry.Labels{"op": op, "node": node})
	}
	tel.breakerState = reg.Gauge("kv_breaker_state", telemetry.Labels{"node": node})
	return tel
}

// Pool is a fixed-size pool of client connections, safe for concurrent
// use: goroutines Acquire a connection, use it (including Pipeline/MGet),
// and Release it. Convenience wrappers (Get/Set/Del/MGet/MSet/Do) do the
// acquire/release dance and retire broken connections, redialling lazily
// so one failed op doesn't shrink the pool.
//
// # Retry semantics
//
// With PoolOptions.Retry configured, the idempotent reads Get and MGet are
// retried up to Retry.Attempts times with exponential backoff + jitter,
// acquiring a fresh connection each time (the failed one is discarded).
// The mutations Set, MSet and Del retry at most ONCE, and only when the
// failure is provably pre-write: not a single byte of the request reached
// the socket (tracked per connection), so the server cannot have executed
// or partially received it. Any failure after bytes hit the wire is
// reported to the caller, because a blind re-send could double-apply the
// mutation. Do never retries: the pool cannot know what the closure sent.
//
// # Circuit breaker
//
// With PoolOptions.Breaker set, transport-level failures feed a per-node
// breaker; while it is open every op fails fast with ErrBreakerOpen and no
// connection is touched, giving the node time to recover and callers an
// immediate signal to fail over. Protocol-level errors (the node answered,
// just not what we expected) do not count against the breaker.
type Pool struct {
	addr  string
	opts  PoolOptions
	conns chan *Client // nil entry = slot needs a redial
	done  chan struct{}

	mu     sync.Mutex
	closed bool

	retry   RetryOptions
	breaker *Breaker
	tel     poolTelemetry

	rngMu sync.Mutex
	rng   *xrand.Rand
}

// NewPool dials opts.Size connections to addr up front, failing fast if
// the server is unreachable — or, with opts.LazyDial, marks every slot for
// on-demand dialing and never fails.
func NewPool(addr string, opts PoolOptions) (*Pool, error) {
	if opts.Size <= 0 {
		opts.Size = 4
	}
	name := opts.Name
	if name == "" {
		name = addr
	}
	p := &Pool{
		addr:  addr,
		opts:  opts,
		conns: make(chan *Client, opts.Size),
		done:  make(chan struct{}),
		retry: opts.Retry.withDefaults(),
		tel:   newPoolTelemetry(opts.Registry, name),
		rng:   xrand.New(opts.Retry.Seed),
	}
	if opts.Breaker != nil {
		p.breaker = NewBreaker(*opts.Breaker)
	}
	for i := 0; i < opts.Size; i++ {
		if opts.LazyDial {
			p.conns <- nil
			continue
		}
		c, err := DialWith(addr, opts.DialOptions)
		if err != nil {
			//lint:ignore errcheck the dial error is what the caller sees; Close here cannot fail usefully
			p.Close()
			return nil, fmt.Errorf("kvserver: pool dial %d/%d: %w", i+1, opts.Size, err)
		}
		p.conns <- c
	}
	return p, nil
}

// Size reports the pool's fixed connection count.
func (p *Pool) Size() int { return p.opts.Size }

// Breaker returns the pool's circuit breaker, or nil when disabled.
func (p *Pool) Breaker() *Breaker { return p.breaker }

// Acquire checks a connection out of the pool, blocking until one is free.
// It fails fast with ErrPoolClosed on a closed pool — including a close
// that lands while the caller is blocked waiting for a slot. Pass the
// connection back with Release (always, even after errors) — or, if the
// connection is broken, with Discard so the slot redials.
func (p *Pool) Acquire() (*Client, error) {
	var c *Client
	select {
	case <-p.done:
		return nil, ErrPoolClosed
	case c = <-p.conns:
	}
	if c == nil {
		// Slot was discarded; redial it now. On failure the slot stays
		// marked so the pool never shrinks.
		c2, err := DialWith(p.addr, p.opts.DialOptions)
		if err != nil {
			p.conns <- nil
			return nil, err
		}
		c = c2
	}
	// A Close that raced the wait or the redial has already drained the
	// channel and will never see this connection: close it here instead of
	// leaking it to a caller who would op against a closed pool.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		//lint:ignore errcheck the pool-closed error is what the caller sees
		c.Close()
		return nil, ErrPoolClosed
	}
	p.mu.Unlock()
	return c, nil
}

// Release returns a healthy connection to the pool. Release(nil) panics:
// a nil connection has no slot to restore — callers with a broken
// connection want Discard.
//
// The channel send happens under the pool mutex so it serialises with
// Close: either Close sees the connection in the channel and closes it, or
// Release observes the closed flag and closes it directly. Either way no
// connection leaks. The send cannot block: every checked-out connection
// owns a buffered slot.
func (p *Pool) Release(c *Client) {
	if c == nil {
		panic("kvserver: Pool.Release(nil); use Discard to retire a broken connection")
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		//lint:ignore errcheck nothing can act on a close failure of a retired connection
		c.Close()
		return
	}
	p.conns <- c
	p.mu.Unlock()
}

// Discard closes a broken connection and marks its slot for lazy redial.
// Discard(nil) only restores the slot marker (the redial already failed).
func (p *Pool) Discard(c *Client) {
	if c != nil {
		//lint:ignore errcheck the connection is already broken; its close error is noise
		c.Close()
	}
	p.conns <- nil
}

// Do runs f with a pooled connection — a single attempt, never retried
// (the pool cannot classify what the closure sent). If f returns an error
// the connection is assumed poisoned (mid-stream state is unknowable) and
// is discarded; the slot redials on next use. The breaker, if configured,
// gates and observes the attempt.
func (p *Pool) Do(f func(*Client) error) error {
	if !p.allow() {
		return ErrBreakerOpen
	}
	err, _ := p.attempt(f)
	p.record(err)
	return err
}

// attempt runs f over one acquired connection and reports whether a
// failure was provably pre-write: no byte of this op reached the socket,
// so the server cannot have seen any of it.
func (p *Pool) attempt(f func(*Client) error) (err error, preWrite bool) {
	c, err := p.Acquire()
	if err != nil {
		// Dial/closed failures happen before any request bytes exist.
		return err, true
	}
	mark := c.wroteBytes()
	if err := f(c); err != nil {
		p.Discard(c)
		return err, c.wroteBytes() == mark
	}
	p.Release(c)
	return nil, false
}

// allow consults the breaker (always true when disabled) and publishes its
// state gauge.
func (p *Pool) allow() bool {
	if p.breaker == nil {
		return true
	}
	ok := p.breaker.Allow()
	p.tel.breakerState.Set(float64(p.breaker.State()))
	return ok
}

// record feeds an op outcome to the breaker. Only transport-level failures
// count: a node that answers with an unexpected reply is still up.
func (p *Pool) record(err error) {
	if p.breaker == nil {
		return
	}
	if errors.Is(err, ErrPoolClosed) {
		return // pool lifecycle, not node health
	}
	p.breaker.Record(err == nil || !isTransportErr(err))
	p.tel.breakerState.Set(float64(p.breaker.State()))
}

// backoff sleeps before retry number n (1-based) with exponential growth
// and deterministic jitter.
func (p *Pool) backoff(n int) {
	d := p.retry.BaseBackoff << (n - 1)
	if d > p.retry.MaxBackoff || d <= 0 {
		d = p.retry.MaxBackoff
	}
	if j := p.retry.JitterFrac; j > 0 {
		p.rngMu.Lock()
		f := p.rng.Float64()
		p.rngMu.Unlock()
		d = time.Duration(float64(d) * (1 + (2*f-1)*j))
	}
	time.Sleep(d)
}

// doIdempotent runs f with the full retry budget: the op is read-only, so
// re-sending after any failure is safe.
func (p *Pool) doIdempotent(op string, f func(*Client) error) error {
	attempts := p.retry.Attempts
	if attempts < 1 {
		attempts = 1
	}
	var lastErr error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			p.tel.retries[op].Inc()
			p.backoff(i)
		}
		if !p.allow() {
			if lastErr != nil {
				return lastErr
			}
			return ErrBreakerOpen
		}
		err, _ := p.attempt(f)
		p.record(err)
		if err == nil {
			return nil
		}
		if errors.Is(err, ErrPoolClosed) || errors.Is(err, errBadRequest) {
			return err
		}
		lastErr = err
	}
	return lastErr
}

// doMutate runs f with at most one retry, taken only when the first
// failure was provably pre-write — the request never touched the wire, so
// a re-send cannot double-apply the mutation.
func (p *Pool) doMutate(op string, f func(*Client) error) error {
	if !p.allow() {
		return ErrBreakerOpen
	}
	err, preWrite := p.attempt(f)
	p.record(err)
	if err == nil || !preWrite || p.retry.Attempts < 2 ||
		errors.Is(err, ErrPoolClosed) || errors.Is(err, errBadRequest) {
		return err
	}
	p.tel.retries[op].Inc()
	p.backoff(1)
	if !p.allow() {
		return err
	}
	err2, _ := p.attempt(f)
	p.record(err2)
	return err2
}

// Get is Client.Get over a pooled connection (retried; idempotent).
func (p *Pool) Get(key string) (value []byte, found bool, err error) {
	err = p.doIdempotent("get", func(c *Client) error {
		var e error
		value, found, e = c.Get(key)
		return e
	})
	return value, found, err
}

// Set is Client.Set over a pooled connection (retried only pre-write).
func (p *Pool) Set(key string, value []byte) error {
	return p.doMutate("set", func(c *Client) error { return c.Set(key, value) })
}

// Del is Client.Del over a pooled connection (retried only pre-write).
func (p *Pool) Del(key string) (found bool, err error) {
	err = p.doMutate("del", func(c *Client) error {
		var e error
		found, e = c.Del(key)
		return e
	})
	return found, err
}

// MGet is Client.MGet over a pooled connection (retried; idempotent).
func (p *Pool) MGet(keys ...string) (values [][]byte, found []bool, err error) {
	err = p.doIdempotent("mget", func(c *Client) error {
		var e error
		values, found, e = c.MGet(keys...)
		return e
	})
	return values, found, err
}

// MSet is Client.MSet over a pooled connection (retried only pre-write).
func (p *Pool) MSet(keys []string, values [][]byte) error {
	return p.doMutate("mset", func(c *Client) error { return c.MSet(keys, values) })
}

// NGet is Client.NGet over a pooled connection (retried; idempotent —
// NGET never mutates, it only reads through the semantic index).
func (p *Pool) NGet(key string, emb []float32, threshold float64) (value []byte, near *Near, found bool, err error) {
	err = p.doIdempotent("nget", func(c *Client) error {
		var e error
		value, near, found, e = c.NGet(key, emb, threshold)
		return e
	})
	return value, near, found, err
}

// ESet is Client.ESet over a pooled connection (retried only pre-write,
// like every mutation — although re-indexing the same embedding is
// harmless, the uniform rule keeps the retry ledger honest).
func (p *Pool) ESet(key string, emb []float32) error {
	return p.doMutate("eset", func(c *Client) error { return c.ESet(key, emb) })
}

// Close closes every pooled connection and wakes blocked Acquires, which
// fail with ErrPoolClosed; connections released later are closed on
// return. Close is idempotent.
func (p *Pool) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	close(p.done)
	p.mu.Unlock()
	var first error
	for {
		select {
		case c := <-p.conns:
			if c != nil {
				if err := c.Close(); err != nil && first == nil {
					first = err
				}
			}
		default:
			return first
		}
	}
}
