package kvserver

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"net"
	"strconv"
	"strings"
	"time"
)

// DialOptions tunes a client connection. The zero value means no timeouts
// (block indefinitely), matching Dial.
type DialOptions struct {
	// DialTimeout bounds the TCP connect. Zero means no timeout.
	DialTimeout time.Duration
	// ReadTimeout bounds each reply read (the deadline is re-armed per
	// protocol read). Zero means no timeout.
	ReadTimeout time.Duration
	// WriteTimeout bounds each request flush. Zero means no timeout.
	WriteTimeout time.Duration
}

// errBadRequest tags client-side validation failures (invalid key,
// mismatched MSet arity): the request never formed, so retrying it
// verbatim can only fail the same way.
var errBadRequest = errors.New("kvserver: bad request")

// countingConn counts the bytes actually handed to the socket, so the pool
// can prove a failed mutation never reached the wire (and is therefore
// safe to retry). Client is single-goroutine, so a plain counter suffices;
// cross-goroutine handoff through the pool's channel orders the accesses.
type countingConn struct {
	net.Conn
	n int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.n += int64(n)
	return n, err
}

// Client is a connection to a kvserver. It is not safe for concurrent use;
// open one client per goroutine (the server handles each connection
// independently), or share connections through a Pool.
type Client struct {
	conn *countingConn
	r    *bufio.Reader
	w    *bufio.Writer
	opts DialOptions
}

// Dial connects to a kvserver at addr.
func Dial(addr string) (*Client, error) {
	return DialWith(addr, DialOptions{})
}

// DialWith is Dial with explicit timeouts.
func DialWith(addr string, opts DialOptions) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.DialTimeout)
	if err != nil {
		return nil, err
	}
	return NewClient(conn, opts), nil
}

// NewClient wraps an already-established connection — a net.Pipe end, a
// faultnet-wrapped conn, a TLS session — in a Client. The Client owns conn
// and closes it on Close.
func NewClient(conn net.Conn, opts DialOptions) *Client {
	cc := &countingConn{Conn: conn}
	return &Client{
		conn: cc,
		r:    bufio.NewReaderSize(cc, connBufSize),
		w:    bufio.NewWriterSize(cc, connBufSize),
		opts: opts,
	}
}

// wroteBytes reports the cumulative bytes delivered to the socket; the
// pool diffs marks around an op to classify failures as pre- or
// post-write.
func (c *Client) wroteBytes() int64 { return c.conn.n }

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	//lint:ignore errcheck QUIT is a best-effort courtesy; Close reports the real failure
	fmt.Fprint(c.w, "QUIT\r\n")
	//lint:ignore errcheck QUIT is a best-effort courtesy; Close reports the real failure
	c.flush()
	return c.conn.Close()
}

// flush arms the write deadline (if configured) and flushes the request
// buffer.
func (c *Client) flush() error {
	if c.opts.WriteTimeout > 0 {
		if err := c.conn.SetWriteDeadline(time.Now().Add(c.opts.WriteTimeout)); err != nil {
			return err
		}
	}
	return c.w.Flush()
}

// armRead arms the read deadline (if configured) before a reply read.
func (c *Client) armRead() error {
	if c.opts.ReadTimeout > 0 {
		return c.conn.SetReadDeadline(time.Now().Add(c.opts.ReadTimeout))
	}
	return nil
}

// readLine reads a \r\n- (or \n-) terminated reply line without the
// terminator.
func (c *Client) readLine() (string, error) {
	if err := c.armRead(); err != nil {
		return "", err
	}
	line, err := c.r.ReadString('\n')
	if err != nil {
		return "", err
	}
	return strings.TrimRight(line, "\r\n"), nil
}

// readFull fills buf from the reply stream.
func (c *Client) readFull(buf []byte) error {
	if err := c.armRead(); err != nil {
		return err
	}
	_, err := io.ReadFull(c.r, buf)
	return err
}

// readTrailingCRLF consumes the \r\n that terminates a payload.
func (c *Client) readTrailingCRLF() error {
	var b [2]byte
	if err := c.readFull(b[:]); err != nil {
		return err
	}
	if b[0] != '\r' || b[1] != '\n' {
		return fmt.Errorf("kvserver: payload not CRLF-terminated")
	}
	return nil
}

// validKey rejects keys the wire protocol cannot carry.
func validKey(key string) error {
	if key == "" || len(key) > MaxKeyLen || strings.ContainsAny(key, " \r\n") {
		return fmt.Errorf("%w: invalid key %q", errBadRequest, key)
	}
	return nil
}

// writeSetFrame appends one "<verb...> <key> <nbytes>\r\n<payload>\r\n"
// request to the write buffer without flushing.
func (c *Client) writeSetFrame(prefix, key string, value []byte) error {
	if err := validKey(key); err != nil {
		return err
	}
	if prefix != "" {
		if _, err := c.w.WriteString(prefix); err != nil {
			return err
		}
	}
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.Itoa(len(value)))
	c.w.WriteString("\r\n")
	c.w.Write(value)
	_, err := c.w.WriteString("\r\n")
	return err
}

// readValueReply parses one "VALUE <n>\r\n<payload>\r\n" or "NOT_FOUND"
// reply; any other line is reported as a protocol failure of op.
func (c *Client) readValueReply(op string) (value []byte, ok bool, err error) {
	line, err := c.readLine()
	if err != nil {
		return nil, false, err
	}
	switch {
	case line == "NOT_FOUND":
		return nil, false, nil
	case strings.HasPrefix(line, "VALUE "):
		n, err := strconv.Atoi(strings.TrimPrefix(line, "VALUE "))
		if err != nil || n < 0 || n > MaxValueSize {
			return nil, false, fmt.Errorf("kvserver: bad VALUE header %q", line)
		}
		value := make([]byte, n)
		if err := c.readFull(value); err != nil {
			return nil, false, err
		}
		if err := c.readTrailingCRLF(); err != nil {
			return nil, false, err
		}
		return value, true, nil
	default:
		return nil, false, fmt.Errorf("kvserver: %s failed: %s", op, line)
	}
}

// Set stores value under key.
func (c *Client) Set(key string, value []byte) error {
	if err := c.writeSetFrame("SET ", key, value); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	return c.readStoredReply("SET")
}

func (c *Client) readStoredReply(op string) error {
	line, err := c.readLine()
	if err != nil {
		return err
	}
	if line != "STORED" {
		return fmt.Errorf("kvserver: %s failed: %s", op, line)
	}
	return nil
}

// Get fetches the value under key; ok is false on a miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	if _, err := fmt.Fprintf(c.w, "GET %s\r\n", key); err != nil {
		return nil, false, err
	}
	if err := c.flush(); err != nil {
		return nil, false, err
	}
	return c.readValueReply("GET")
}

// MGet fetches many keys in one round trip (the MGET verb). values[i] and
// found[i] correspond to keys[i]; a miss is found[i]==false. Batches larger
// than MaxBatchOps are split into multiple MGET commands (still one flush).
func (c *Client) MGet(keys ...string) (values [][]byte, found []bool, err error) {
	if len(keys) == 0 {
		return nil, nil, nil
	}
	for _, key := range keys {
		if err := validKey(key); err != nil {
			return nil, nil, err
		}
	}
	var batches []int // keys per MGET command
	for start := 0; start < len(keys); start += MaxBatchOps {
		end := start + MaxBatchOps
		if end > len(keys) {
			end = len(keys)
		}
		c.w.WriteString("MGET")
		for _, key := range keys[start:end] {
			c.w.WriteByte(' ')
			c.w.WriteString(key)
		}
		if _, err := c.w.WriteString("\r\n"); err != nil {
			return nil, nil, err
		}
		batches = append(batches, end-start)
	}
	if err := c.flush(); err != nil {
		return nil, nil, err
	}
	values = make([][]byte, 0, len(keys))
	found = make([]bool, 0, len(keys))
	for _, n := range batches {
		for i := 0; i < n; i++ {
			v, ok, err := c.readValueReply("MGET")
			if err != nil {
				return nil, nil, err
			}
			values = append(values, v)
			found = append(found, ok)
		}
		line, err := c.readLine()
		if err != nil {
			return nil, nil, err
		}
		if line != "END" {
			return nil, nil, fmt.Errorf("kvserver: MGET missing END, got %q", line)
		}
	}
	return values, found, nil
}

// MSet stores len(keys) pairs in one round trip (the MSET verb);
// values[i] goes under keys[i]. Batches larger than MaxBatchOps are split
// into multiple MSET commands (still one flush).
func (c *Client) MSet(keys []string, values [][]byte) error {
	if len(keys) != len(values) {
		return fmt.Errorf("%w: MSet got %d keys, %d values", errBadRequest, len(keys), len(values))
	}
	if len(keys) == 0 {
		return nil
	}
	batches := 0
	for start := 0; start < len(keys); start += MaxBatchOps {
		end := start + MaxBatchOps
		if end > len(keys) {
			end = len(keys)
		}
		if _, err := fmt.Fprintf(c.w, "MSET %d\r\n", end-start); err != nil {
			return err
		}
		for i := start; i < end; i++ {
			if err := c.writeSetFrame("", keys[i], values[i]); err != nil {
				return err
			}
		}
		batches++
	}
	if err := c.flush(); err != nil {
		return err
	}
	for b := 0; b < batches; b++ {
		line, err := c.readLine()
		if err != nil {
			return err
		}
		if !strings.HasPrefix(line, "STORED ") {
			return fmt.Errorf("kvserver: MSET failed: %s", line)
		}
	}
	return nil
}

// Near identifies the substitute behind a semantic (NEAR) hit: which
// resident neighbor's value was served and how far its embedding sits
// from the query, in cosine distance.
type Near struct {
	Key  string
	Dist float64
}

// validEmbedding rejects embeddings the wire protocol cannot carry.
func validEmbedding(emb []float32) error {
	if len(emb) < 1 || len(emb) > MaxEmbedDim {
		return fmt.Errorf("%w: embedding dim %d (want 1..%d)", errBadRequest, len(emb), MaxEmbedDim)
	}
	return nil
}

// writeEmbedPayload appends the raw little-endian float32 payload.
func (c *Client) writeEmbedPayload(emb []float32) error {
	var b [4]byte
	for _, f := range emb {
		binary.LittleEndian.PutUint32(b[:], math.Float32bits(f))
		if _, err := c.w.Write(b[:]); err != nil {
			return err
		}
	}
	_, err := c.w.WriteString("\r\n")
	return err
}

// writeESetFrame appends one "ESET <key> <dim>\r\n<embedding>\r\n"
// request without flushing.
func (c *Client) writeESetFrame(key string, emb []float32) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := validEmbedding(emb); err != nil {
		return err
	}
	c.w.WriteString("ESET ")
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.Itoa(len(emb)))
	c.w.WriteString("\r\n")
	return c.writeEmbedPayload(emb)
}

// writeNGetFrame appends one "NGET <key> <threshold> <dim>\r\n
// <embedding>\r\n" request without flushing.
func (c *Client) writeNGetFrame(key string, emb []float32, threshold float64) error {
	if err := validKey(key); err != nil {
		return err
	}
	if err := validEmbedding(emb); err != nil {
		return err
	}
	if math.IsNaN(threshold) || math.IsInf(threshold, 0) || threshold < 0 {
		return fmt.Errorf("%w: invalid NGET threshold %v", errBadRequest, threshold)
	}
	c.w.WriteString("NGET ")
	c.w.WriteString(key)
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.FormatFloat(threshold, 'f', -1, 64))
	c.w.WriteByte(' ')
	c.w.WriteString(strconv.Itoa(len(emb)))
	c.w.WriteString("\r\n")
	return c.writeEmbedPayload(emb)
}

// readNGetReply parses VALUE (exact hit), NEAR (semantic substitute)
// or NOT_FOUND. found covers both hit kinds; near is non-nil only for
// NEAR.
func (c *Client) readNGetReply() (value []byte, near *Near, found bool, err error) {
	line, err := c.readLine()
	if err != nil {
		return nil, nil, false, err
	}
	switch {
	case line == "NOT_FOUND":
		return nil, nil, false, nil
	case strings.HasPrefix(line, "VALUE "):
		n, err := strconv.Atoi(strings.TrimPrefix(line, "VALUE "))
		if err != nil || n < 0 || n > MaxValueSize {
			return nil, nil, false, fmt.Errorf("kvserver: bad VALUE header %q", line)
		}
		value := make([]byte, n)
		if err := c.readFull(value); err != nil {
			return nil, nil, false, err
		}
		if err := c.readTrailingCRLF(); err != nil {
			return nil, nil, false, err
		}
		return value, nil, true, nil
	case strings.HasPrefix(line, "NEAR "):
		fields := strings.Fields(line)
		if len(fields) != 4 {
			return nil, nil, false, fmt.Errorf("kvserver: bad NEAR header %q", line)
		}
		dist, derr := strconv.ParseFloat(fields[2], 64)
		n, nerr := strconv.Atoi(fields[3])
		if derr != nil || nerr != nil || dist < 0 || n < 0 || n > MaxValueSize {
			return nil, nil, false, fmt.Errorf("kvserver: bad NEAR header %q", line)
		}
		value := make([]byte, n)
		if err := c.readFull(value); err != nil {
			return nil, nil, false, err
		}
		if err := c.readTrailingCRLF(); err != nil {
			return nil, nil, false, err
		}
		return value, &Near{Key: fields[1], Dist: dist}, true, nil
	default:
		return nil, nil, false, fmt.Errorf("kvserver: NGET failed: %s", line)
	}
}

// ESet attaches emb as key's embedding in the server's node-local
// semantic index (the ESET verb). The index and the value store are
// independent: ESet neither requires nor creates a stored value.
func (c *Client) ESet(key string, emb []float32) error {
	if err := c.writeESetFrame(key, emb); err != nil {
		return err
	}
	if err := c.flush(); err != nil {
		return err
	}
	return c.readStoredReply("ESET")
}

// NGet is Get with a semantic fallback (the NGET verb): an exact hit
// returns (value, nil, true); a near hit — the nearest resident
// neighbor within the cosine-distance threshold — returns its value
// with a non-nil near; a miss returns found == false. threshold 0
// requests exact-only (GET) semantics.
func (c *Client) NGet(key string, emb []float32, threshold float64) (value []byte, near *Near, found bool, err error) {
	if err := c.writeNGetFrame(key, emb, threshold); err != nil {
		return nil, nil, false, err
	}
	if err := c.flush(); err != nil {
		return nil, nil, false, err
	}
	return c.readNGetReply()
}

// Del removes key; ok reports whether it was present.
func (c *Client) Del(key string) (bool, error) {
	if _, err := fmt.Fprintf(c.w, "DEL %s\r\n", key); err != nil {
		return false, err
	}
	if err := c.flush(); err != nil {
		return false, err
	}
	return c.readDelReply()
}

func (c *Client) readDelReply() (bool, error) {
	line, err := c.readLine()
	if err != nil {
		return false, err
	}
	switch line {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, fmt.Errorf("kvserver: DEL failed: %s", line)
	}
}

// Metrics fetches the server's telemetry snapshot as Prometheus exposition
// text (the METRICS verb).
func (c *Client) Metrics() (string, error) {
	if _, err := fmt.Fprint(c.w, "METRICS\r\n"); err != nil {
		return "", err
	}
	if err := c.flush(); err != nil {
		return "", err
	}
	line, err := c.readLine()
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, "METRICS ") {
		return "", fmt.Errorf("kvserver: METRICS failed: %s", line)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(line, "METRICS "))
	if err != nil || n < 0 || n > MaxValueSize {
		return "", fmt.Errorf("kvserver: bad METRICS header %q", line)
	}
	payload := make([]byte, n)
	if err := c.readFull(payload); err != nil {
		return "", err
	}
	if err := c.readTrailingCRLF(); err != nil {
		return "", err
	}
	return string(payload), nil
}

// Stats returns (items, hits, misses) from the server.
func (c *Client) Stats() (items int, hits, misses int64, err error) {
	if _, err := fmt.Fprint(c.w, "STATS\r\n"); err != nil {
		return 0, 0, 0, err
	}
	if err := c.flush(); err != nil {
		return 0, 0, 0, err
	}
	line, err := c.readLine()
	if err != nil {
		return 0, 0, 0, err
	}
	var i int
	var h, m int64
	if _, err := fmt.Sscanf(line, "STATS %d %d %d", &i, &h, &m); err != nil {
		return 0, 0, 0, fmt.Errorf("kvserver: bad STATS reply %q", line)
	}
	return i, h, m, nil
}
