package kvserver

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"
)

// Client is a connection to a kvserver. It is not safe for concurrent use;
// open one client per goroutine (the server handles each connection
// independently).
type Client struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// Dial connects to a kvserver at addr.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn, r: bufio.NewReader(conn), w: bufio.NewWriter(conn)}, nil
}

// Close sends QUIT and closes the connection.
func (c *Client) Close() error {
	fmt.Fprint(c.w, "QUIT\r\n")
	c.w.Flush()
	return c.conn.Close()
}

// Set stores value under key.
func (c *Client) Set(key string, value []byte) error {
	if strings.ContainsAny(key, " \r\n") || key == "" {
		return fmt.Errorf("kvserver: invalid key %q", key)
	}
	if _, err := fmt.Fprintf(c.w, "SET %s %d\r\n", key, len(value)); err != nil {
		return err
	}
	if _, err := c.w.Write(value); err != nil {
		return err
	}
	if _, err := c.w.WriteString("\r\n"); err != nil {
		return err
	}
	if err := c.w.Flush(); err != nil {
		return err
	}
	line, err := readLine(c.r)
	if err != nil {
		return err
	}
	if line != "STORED" {
		return fmt.Errorf("kvserver: SET failed: %s", line)
	}
	return nil
}

// Get fetches the value under key; ok is false on a miss.
func (c *Client) Get(key string) (value []byte, ok bool, err error) {
	if _, err := fmt.Fprintf(c.w, "GET %s\r\n", key); err != nil {
		return nil, false, err
	}
	if err := c.w.Flush(); err != nil {
		return nil, false, err
	}
	line, err := readLine(c.r)
	if err != nil {
		return nil, false, err
	}
	switch {
	case line == "NOT_FOUND":
		return nil, false, nil
	case strings.HasPrefix(line, "VALUE "):
		n, err := strconv.Atoi(strings.TrimPrefix(line, "VALUE "))
		if err != nil || n < 0 || n > MaxValueSize {
			return nil, false, fmt.Errorf("kvserver: bad VALUE header %q", line)
		}
		value := make([]byte, n)
		if _, err := io.ReadFull(c.r, value); err != nil {
			return nil, false, err
		}
		if err := expectCRLF(c.r); err != nil {
			return nil, false, err
		}
		return value, true, nil
	default:
		return nil, false, fmt.Errorf("kvserver: GET failed: %s", line)
	}
}

// Del removes key; ok reports whether it was present.
func (c *Client) Del(key string) (bool, error) {
	if _, err := fmt.Fprintf(c.w, "DEL %s\r\n", key); err != nil {
		return false, err
	}
	if err := c.w.Flush(); err != nil {
		return false, err
	}
	line, err := readLine(c.r)
	if err != nil {
		return false, err
	}
	switch line {
	case "DELETED":
		return true, nil
	case "NOT_FOUND":
		return false, nil
	default:
		return false, fmt.Errorf("kvserver: DEL failed: %s", line)
	}
}

// Metrics fetches the server's telemetry snapshot as Prometheus exposition
// text (the METRICS verb).
func (c *Client) Metrics() (string, error) {
	if _, err := fmt.Fprint(c.w, "METRICS\r\n"); err != nil {
		return "", err
	}
	if err := c.w.Flush(); err != nil {
		return "", err
	}
	line, err := readLine(c.r)
	if err != nil {
		return "", err
	}
	if !strings.HasPrefix(line, "METRICS ") {
		return "", fmt.Errorf("kvserver: METRICS failed: %s", line)
	}
	n, err := strconv.Atoi(strings.TrimPrefix(line, "METRICS "))
	if err != nil || n < 0 || n > MaxValueSize {
		return "", fmt.Errorf("kvserver: bad METRICS header %q", line)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(c.r, payload); err != nil {
		return "", err
	}
	if err := expectCRLF(c.r); err != nil {
		return "", err
	}
	return string(payload), nil
}

// Stats returns (items, hits, misses) from the server.
func (c *Client) Stats() (items int, hits, misses int64, err error) {
	if _, err := fmt.Fprint(c.w, "STATS\r\n"); err != nil {
		return 0, 0, 0, err
	}
	if err := c.w.Flush(); err != nil {
		return 0, 0, 0, err
	}
	line, err := readLine(c.r)
	if err != nil {
		return 0, 0, 0, err
	}
	var i int
	var h, m int64
	if _, err := fmt.Sscanf(line, "STATS %d %d %d", &i, &h, &m); err != nil {
		return 0, 0, 0, fmt.Errorf("kvserver: bad STATS reply %q", line)
	}
	return i, h, m, nil
}
