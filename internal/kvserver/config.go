package kvserver

import (
	"flag"
	"fmt"
	"time"

	"spidercache/internal/telemetry"
)

// Config is the canonical kvserver option set: every knob a deployment
// tunes, server side (store capacity, shard count) and client side (pool
// size, timeouts, retry budget), in one struct with one set of defaults.
//
// Server, Pool and the daemons all derive their option structs from a
// Config — ServerOptions() and PoolOptions() are the only conversion
// points — and the binaries bind their command-line flags through
// BindStoreFlags/BindPoolFlags, so spiderkv flags, spiderload flags and Go
// callers share names, defaults and validation by construction instead of
// by convention. Options and PoolOptions remain the constructor argument
// types for compatibility; new code should start from a Config.
type Config struct {
	// Capacity is the item budget of the server's LRU store (default 1<<16).
	Capacity int
	// Shards overrides the store's automatic shard count (0 = automatic).
	Shards int
	// StoreMode selects the store implementation: "mutex" (default) or
	// "arena" (GC-free chunked arenas with epoch-protected lock-free GETs).
	StoreMode string
	// Admission selects the insert admission policy: "none" (default) or
	// "tinylfu" (frequency-sketch admission in front of eviction).
	Admission string
	// PoolSize is the client connection pool size (default 4).
	PoolSize int
	// Timeout bounds each dial, reply read and request flush on client
	// connections (default 10s; 0 means block indefinitely).
	Timeout time.Duration
	// Retries is the total attempt budget for idempotent pool ops; 1 or 0
	// means a single attempt (default 8). Mutations keep their provably-safe
	// retry rule regardless (see Pool).
	Retries int
	// RetrySeed drives the deterministic retry-jitter stream.
	RetrySeed uint64
	// Breaker is the per-node circuit breaker template; nil disables it.
	Breaker *BreakerOptions
}

// DefaultConfig returns the shared defaults every binary starts from.
func DefaultConfig() Config {
	return Config{
		Capacity:  1 << 16,
		Shards:    0,
		StoreMode: StoreModeMutex,
		Admission: AdmissionNone,
		PoolSize:  4,
		Timeout:   10 * time.Second,
		Retries:   8,
	}
}

// BindStoreFlags registers the server-side knobs on fs (-capacity,
// -shards, -store-mode, -admission), using the Config's current values as
// defaults.
func (c *Config) BindStoreFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.Capacity, "capacity", c.Capacity, "item capacity of the LRU store")
	fs.IntVar(&c.Shards, "shards", c.Shards, "store shards (0 = auto)")
	fs.StringVar(&c.StoreMode, "store-mode", c.StoreMode, "store implementation: mutex or arena")
	fs.StringVar(&c.Admission, "admission", c.Admission, "insert admission policy: none or tinylfu")
}

// BindPoolFlags registers the client-side knobs on fs (-conns, -timeout,
// -retries), using the Config's current values as defaults.
func (c *Config) BindPoolFlags(fs *flag.FlagSet) {
	fs.IntVar(&c.PoolSize, "conns", c.PoolSize, "concurrent client connections per node")
	fs.DurationVar(&c.Timeout, "timeout", c.Timeout, "per-connection dial/read/write timeout")
	fs.IntVar(&c.Retries, "retries", c.Retries, "attempts per idempotent op (1 = no retries)")
}

// Validate rejects values no Server or Pool would accept, with the flag
// names in the message so binaries can report it verbatim.
func (c Config) Validate() error {
	if c.Capacity < 1 {
		return fmt.Errorf("kvserver: -capacity must be >= 1, got %d", c.Capacity)
	}
	if c.Shards < 0 {
		return fmt.Errorf("kvserver: -shards must be >= 0, got %d", c.Shards)
	}
	switch c.StoreMode {
	case "", StoreModeMutex, StoreModeArena:
	default:
		return fmt.Errorf("kvserver: -store-mode must be mutex or arena, got %q", c.StoreMode)
	}
	switch c.Admission {
	case "", AdmissionNone, AdmissionTinyLFU:
	default:
		return fmt.Errorf("kvserver: -admission must be none or tinylfu, got %q", c.Admission)
	}
	if c.PoolSize < 1 {
		return fmt.Errorf("kvserver: -conns must be >= 1, got %d", c.PoolSize)
	}
	if c.Retries < 1 {
		return fmt.Errorf("kvserver: -retries must be >= 1, got %d", c.Retries)
	}
	if c.Timeout < 0 {
		return fmt.Errorf("kvserver: -timeout must be >= 0, got %v", c.Timeout)
	}
	return nil
}

// Dial returns the DialOptions the Config describes: one Timeout applied
// to dial, read and write.
func (c Config) Dial() DialOptions {
	return DialOptions{DialTimeout: c.Timeout, ReadTimeout: c.Timeout, WriteTimeout: c.Timeout}
}

// Retry returns the RetryOptions the Config describes.
func (c Config) Retry() RetryOptions {
	attempts := c.Retries
	if attempts < 1 {
		attempts = 1
	}
	return RetryOptions{Attempts: attempts, Seed: c.RetrySeed}
}

// ServerOptions converts the Config's server-side knobs into the Options
// ServeWith/ServeOn accept; reg may be nil (the server then owns a private
// registry).
func (c Config) ServerOptions(reg *telemetry.Registry) Options {
	return Options{Capacity: c.Capacity, Shards: c.Shards, Mode: c.StoreMode, Admission: c.Admission, Registry: reg}
}

// PoolOptions converts the Config's client-side knobs into the options
// NewPool accepts. Each node's breaker gets its own instance cloned from
// the template, so pools never share trip state.
func (c Config) PoolOptions(name string, lazy bool, reg *telemetry.Registry) PoolOptions {
	var breaker *BreakerOptions
	if c.Breaker != nil {
		b := *c.Breaker
		breaker = &b
	}
	return PoolOptions{
		Size:        c.PoolSize,
		DialOptions: c.Dial(),
		LazyDial:    lazy,
		Retry:       c.Retry(),
		Breaker:     breaker,
		Name:        name,
		Registry:    reg,
	}
}
