package kvserver

import (
	"sync"

	"spidercache/internal/hnsw"
)

// semIndex is the node-local semantic index behind NGET: a thin
// key<->id bookkeeping layer over internal/hnsw, which speaks dense
// integer ids and has no delete operation.
//
// Concurrency regime (matches the store's): upserts arrive from the
// connection goroutine serving ESET and take x.mu exclusively; lookups
// run the HNSW search entirely OUTSIDE x.mu (hnsw.Index has its own
// RWMutex and is safe for concurrent use), then re-enter x.mu only to
// map result ids back to keys. x.mu therefore never nests inside a
// shard mutex and never wraps a store call — the lock graph stays
// acyclic (spiderlint lockorder verifies this module-wide).
//
// Deletion: HNSW cannot unlink a point, so DEL/eviction tombstones the
// key here (the id simply loses its byID mapping and search results
// that surface it are filtered out). Once tombstones outnumber live
// points — with an absolute floor so small indexes never churn — the
// index is rebuilt from the live vectors. Ids are never reused, so a
// search racing a rebuild can at worst surface a freshly-dead id,
// which the byID filter (and the caller's store-residency check)
// drops.
type semIndex struct {
	mu    sync.Mutex
	ix    *hnsw.Index
	byKey map[string]int
	byID  map[int]string
	next  int // next id to assign; monotone, never reused
	dim   int // embedding dimensionality, fixed by the first upsert
	dead  int // tombstoned points still linked inside ix
}

// semRebuildMinDead is the tombstone floor below which the index never
// rebuilds.
const semRebuildMinDead = 64

// semSearchK is how many nearest neighbors an NGET lookup considers
// before giving up on finding a resident one inside the threshold.
const semSearchK = 8

// semSearchEf is the HNSW beam width for NGET lookups.
const semSearchEf = 64

func newSemIndex() *semIndex {
	ix, err := hnsw.New(hnsw.DefaultConfig())
	if err != nil {
		// DefaultConfig always validates; a failure here is a programming
		// error in this package, not a runtime condition.
		panic(err)
	}
	return &semIndex{ix: ix, byKey: make(map[string]int), byID: make(map[int]string)}
}

// upsert indexes vec (already unit-normalized) under key. The first
// upsert fixes the index dimensionality; later mismatches are rejected
// with the stable protocol error.
func (x *semIndex) upsert(key string, vec []float64) error {
	x.mu.Lock()
	defer x.mu.Unlock()
	if x.dim == 0 {
		x.dim = len(vec)
	} else if len(vec) != x.dim {
		return errBadEmbedDim
	}
	id, ok := x.byKey[key]
	if !ok {
		id = x.next
		x.next++
		x.byKey[key] = id
		x.byID[id] = key
	}
	if err := x.ix.Upsert(id, vec); err != nil {
		// Unreachable after the dim gate above, but never leave a phantom
		// mapping behind if hnsw grows new failure modes.
		if !ok {
			delete(x.byKey, key)
			delete(x.byID, id)
		}
		return errBadEmbedDim
	}
	return nil
}

// unlink tombstones key's embedding (DEL and eviction both land here).
// Unknown keys are a no-op, so callers never need to check whether an
// embedding was ever attached.
func (x *semIndex) unlink(key string) {
	x.mu.Lock()
	id, ok := x.byKey[key]
	if !ok {
		x.mu.Unlock()
		return
	}
	delete(x.byKey, key)
	delete(x.byID, id)
	x.dead++
	if x.dead >= semRebuildMinDead && x.dead > len(x.byKey) {
		x.rebuild()
	}
	x.mu.Unlock()
}

// rebuild reindexes the live points into a fresh HNSW graph, shedding
// every tombstone. Caller holds x.mu. O(live · insert); amortized by
// the dead > live trigger, the same argument as arena compaction.
func (x *semIndex) rebuild() {
	fresh, err := hnsw.New(hnsw.DefaultConfig())
	if err != nil {
		panic(err)
	}
	for key, id := range x.byKey {
		vec := x.ix.Vector(id)
		if vec == nil {
			// Cannot happen (ids are only mapped after a successful
			// Upsert), but a missing vector must not nuke the mapping's
			// invariants — drop the key instead.
			delete(x.byKey, key)
			delete(x.byID, id)
			continue
		}
		if err := fresh.Upsert(id, vec); err != nil {
			delete(x.byKey, key)
			delete(x.byID, id)
		}
	}
	x.ix = fresh
	x.dead = 0
}

// semNeighbor is one lookup candidate: a key and its cosine distance
// to the query, ascending.
type semNeighbor struct {
	key  string
	dist float64
}

// lookup returns up to semSearchK indexed neighbors of q (cosine
// distance ascending). Callers still must check each candidate for
// store residency and threshold — the index can run ahead of (or
// behind) the store by design. A dimension mismatch returns nil: at
// search time it only means "this node has no comparable embeddings",
// which must read as a miss, not a protocol error.
func (x *semIndex) lookup(q []float64) []semNeighbor {
	x.mu.Lock()
	ix, dim, dead := x.ix, x.dim, x.dead
	x.mu.Unlock()
	if dim == 0 || len(q) != dim {
		return nil
	}
	// Widen the beam past the tombstone population so dead top-k entries
	// can't mask live ones further out.
	k := semSearchK + dead
	if k > semSearchEf {
		k = semSearchEf
	}
	// The search runs outside x.mu on the captured index; hnsw's own
	// RWMutex orders it against concurrent upserts. A rebuild racing us
	// swaps x.ix, leaving this search on the pre-rebuild graph — stale
	// but safe, and the byID filter below applies current liveness.
	res := ix.SearchKNNEf(q, k, semSearchEf)
	out := make([]semNeighbor, 0, len(res))
	x.mu.Lock()
	for _, r := range res {
		key, ok := x.byID[r.ID]
		if !ok {
			continue // tombstoned between search and now
		}
		// hnsw distances are Euclidean; for unit vectors
		// ‖a−b‖² = 2(1 − a·b), so cosine distance is d²/2.
		out = append(out, semNeighbor{key: key, dist: r.Dist * r.Dist / 2})
		if len(out) == semSearchK {
			break
		}
	}
	x.mu.Unlock()
	return out
}

// size returns (live, dead) point counts.
func (x *semIndex) size() (live, dead int) {
	x.mu.Lock()
	defer x.mu.Unlock()
	return len(x.byKey), x.dead
}
