package kvserver

import (
	"errors"
	"net"
	"sync"
	"testing"
	"time"

	"spidercache/internal/leakcheck"
	"spidercache/internal/telemetry"
)

// TestPoolAcquireCloseRace is the regression test for the Acquire/Close
// deadlock: Close drains the conns channel, so an Acquire that passed the
// closed check used to block forever on an empty channel. Acquire must now
// fail fast with ErrPoolClosed. 1000 iterations (run under -race) cover
// the interleavings; a hang fails the test via the suite timeout.
func TestPoolAcquireCloseRace(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 16)
	for iter := 0; iter < 1000; iter++ {
		pool, err := NewPool(srv.Addr(), PoolOptions{Size: 1})
		if err != nil {
			t.Fatal(err)
		}
		// Check out the only connection so the concurrent Acquire blocks
		// on the empty channel — the exact shape of the original deadlock.
		held, err := pool.Acquire()
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			c, err := pool.Acquire()
			if err == nil {
				pool.Release(c)
			}
			done <- err
		}()
		if err := pool.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil && !errors.Is(err, ErrPoolClosed) {
			t.Fatalf("iter %d: Acquire returned %v, want nil or ErrPoolClosed", iter, err)
		}
		pool.Release(held) // late release: pool must close the conn, not leak it
	}
}

// TestPoolCloseMidRedial: a pool closed while a slot is redialling must not
// leak the freshly dialed connection — the server's handler count returning
// to zero (checked by leakcheck via srv.Close in cleanup) and the explicit
// error check pin the behaviour.
func TestPoolCloseMidRedial(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 16)

	// A listener that accepts, then forwards to the real server only after
	// the pool has been closed, forcing the redial to complete mid-close.
	gate := make(chan struct{})
	var wg sync.WaitGroup
	defer wg.Wait() // registered first so proxy.Close() below runs before the wait
	proxy, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			conn, err := proxy.Accept()
			if err != nil {
				return
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				defer conn.Close()
				<-gate
				up, err := net.Dial("tcp", srv.Addr())
				if err != nil {
					return
				}
				defer up.Close()
				go func() {
					buf := make([]byte, 4096)
					for {
						n, err := conn.Read(buf)
						if n > 0 {
							if _, werr := up.Write(buf[:n]); werr != nil {
								return
							}
						}
						if err != nil {
							return
						}
					}
				}()
				buf := make([]byte, 4096)
				for {
					n, err := up.Read(buf)
					if n > 0 {
						if _, werr := conn.Write(buf[:n]); werr != nil {
							return
						}
					}
					if err != nil {
						return
					}
				}
			}()
		}
	}()

	pool, err := NewPool(proxy.Addr().String(), PoolOptions{Size: 1, LazyDial: true})
	if err != nil {
		t.Fatal(err)
	}
	// The slot starts nil (LazyDial), so this Acquire redials through the
	// gated proxy. TCP connect succeeds immediately (the proxy accepted);
	// the pool is then closed before Acquire's post-redial check runs.
	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := pool.Acquire()
		if err == nil {
			// If the redial won the race, the conn must still be usable
			// and returned cleanly.
			pool.Release(c)
		} else if !errors.Is(err, ErrPoolClosed) {
			t.Errorf("Acquire after close-mid-redial: %v", err)
		}
	}()
	time.Sleep(10 * time.Millisecond) // let Acquire reach the dial
	if err := pool.Close(); err != nil {
		t.Fatal(err)
	}
	close(gate)
	<-done
	// leakcheck (cleanup) verifies no proxy/server goroutine survives: a
	// leaked client conn would keep the proxy pump alive past the retry
	// window.
}

func TestPoolReleaseNilPanics(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 16)
	pool, err := NewPool(srv.Addr(), PoolOptions{Size: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	defer func() {
		if recover() == nil {
			t.Fatal("Release(nil) did not panic")
		}
	}()
	pool.Release(nil)
}

func TestPoolLazyDial(t *testing.T) {
	leakcheck.Check(t)
	// NewPool must succeed against a node that is down...
	pool, err := NewPool("127.0.0.1:1", PoolOptions{Size: 2, LazyDial: true})
	if err != nil {
		t.Fatalf("LazyDial pool failed against a down node: %v", err)
	}
	if _, _, err := pool.Get("k"); err == nil {
		t.Fatal("Get against a down node succeeded")
	}
	pool.Close()

	// ...and work normally once the node exists.
	srv := startServer(t, 16)
	pool, err = NewPool(srv.Addr(), PoolOptions{Size: 2, LazyDial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	if v, found, err := pool.Get("k"); err != nil || !found || string(v) != "v" {
		t.Fatalf("lazy pool Get: %q %v %v", v, found, err)
	}
}

// TestPoolRetriesIdempotent: a Get over a connection the server has reset
// succeeds transparently via the retry layer, and the retry is counted.
func TestPoolRetriesIdempotent(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 16)
	reg := telemetry.NewRegistry()
	pool, err := NewPool(srv.Addr(), PoolOptions{
		Size:     1,
		Retry:    RetryOptions{Attempts: 3, BaseBackoff: time.Millisecond},
		Registry: reg,
		Name:     "n0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}
	// Poison the pooled connection from the client side; the next Get's
	// first attempt fails mid-protocol and the retry redials.
	c, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	c.conn.Close()
	pool.Release(c)
	v, found, err := pool.Get("k")
	if err != nil || !found || string(v) != "v" {
		t.Fatalf("Get over poisoned conn: %q %v %v", v, found, err)
	}
	if got := reg.Counter("kv_retries_total", telemetry.Labels{"op": "get", "node": "n0"}).Value(); got < 1 {
		t.Fatalf("kv_retries_total{op=get} = %d, want >= 1", got)
	}
}

// TestPoolMutationRetriesOnlyPreWrite: a Set whose connection dies before
// any byte reaches the wire retries once; a Set that failed after bytes
// were written must NOT be retried and surfaces the error.
func TestPoolMutationRetry(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 16)
	pool, err := NewPool(srv.Addr(), PoolOptions{
		Size:  1,
		Retry: RetryOptions{Attempts: 3, BaseBackoff: time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	// Pre-write failure: close the pooled conn locally. The write to the
	// closed conn fails with 0 bytes delivered -> provably pre-write ->
	// one redial-and-retry -> success.
	c, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	c.conn.Close()
	pool.Release(c)
	if err := pool.Set("k", []byte("v")); err != nil {
		t.Fatalf("pre-write Set did not retry: %v", err)
	}

	// Post-write failure: a protocol error after a successful write (bad
	// reply injected by driving the conn directly) must not be retried.
	// Simulate by exhausting: an invalid key fails client-side without
	// retry and without consuming attempts.
	if err := pool.Set("bad key", []byte("v")); !errors.Is(err, errBadRequest) {
		t.Fatalf("invalid-key Set error = %v, want errBadRequest", err)
	}
}

// TestPoolBreakerFailsFast: enough transport failures open the breaker;
// further ops fail with ErrBreakerOpen without touching the network, and
// after OpenFor the half-open probe closes it again.
func TestPoolBreakerFailsFast(t *testing.T) {
	leakcheck.Check(t)
	srv := startServer(t, 16)
	reg := telemetry.NewRegistry()
	pool, err := NewPool(srv.Addr(), PoolOptions{
		Size: 1,
		Breaker: &BreakerOptions{
			Window:           8,
			FailureThreshold: 0.5,
			MinSamples:       2,
			OpenFor:          50 * time.Millisecond,
		},
		Registry: reg,
		Name:     "n0",
	})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()
	if err := pool.Set("k", []byte("v")); err != nil {
		t.Fatal(err)
	}

	// Close the pooled conn client-side first so the server's handler
	// exits and srv.Close (which waits for in-flight conns) returns.
	c, err := pool.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	c.conn.Close()
	pool.Release(c)
	// Stop the server: transport failures accumulate.
	srv.Close()
	for i := 0; i < 4; i++ {
		//lint:ignore errcheck failures are the point; the breaker observes them
		pool.Get("k")
	}
	if state := pool.Breaker().State(); state != BreakerOpen {
		t.Fatalf("breaker state after failures = %v, want open", state)
	}
	if _, _, err := pool.Get("k"); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker Get error = %v, want ErrBreakerOpen", err)
	}
	if g := reg.Gauge("kv_breaker_state", telemetry.Labels{"node": "n0"}).Value(); g != float64(BreakerOpen) {
		t.Fatalf("kv_breaker_state gauge = %g, want %g", g, float64(BreakerOpen))
	}

	// Recovery: restart a server on a fresh addr is not possible (addr is
	// baked into the pool), so verify the half-open probe path by waiting
	// out OpenFor and observing the probe attempt (which fails, reopening).
	time.Sleep(60 * time.Millisecond)
	_, _, err = pool.Get("k")
	if errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("half-open breaker denied the probe: %v", err)
	}
	if state := pool.Breaker().State(); state != BreakerOpen {
		t.Fatalf("breaker state after failed probe = %v, want open (reopened)", state)
	}
}
