package tensor

import (
	"sync/atomic"

	"spidercache/internal/par"
)

// Matmul kernels partition work by output row across the shared worker pool
// (internal/par). Partitioning by output row keeps every dst element's
// accumulation order identical to the serial kernel, so parallel results are
// bitwise-identical to serial ones. Small products fall back to the serial
// loop: below minParallelOps multiply-adds the fork/join overhead outweighs
// the spread.

// minParallelOps is the flop count (rows*inner*cols multiply-adds) below
// which kernels stay serial. 1<<16 ≈ a 40x40x40 product, roughly the point
// where a goroutine hand-off (~1µs) stops mattering.
const minParallelOps = 1 << 16

// workerCount holds the configured kernel parallelism; 0 means "default"
// (GOMAXPROCS at call time).
var workerCount atomic.Int64

// kernel dispatch counters, exported via KernelStats for the worker-pool
// utilisation telemetry.
var (
	parallelKernels atomic.Int64
	serialKernels   atomic.Int64
)

// SetWorkers sets the number of workers matmul kernels may fan out across.
// n <= 0 restores the default (GOMAXPROCS). n == 1 forces every kernel
// serial. Safe to call concurrently with running kernels; in-flight calls
// keep the width they started with.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workerCount.Store(int64(n))
}

// Workers reports the current kernel parallelism.
func Workers() int {
	if n := workerCount.Load(); n > 0 {
		return int(n)
	}
	return par.DefaultWorkers()
}

// KernelStats reports how many matmul kernel dispatches ran parallel versus
// serial since process start.
func KernelStats() (parallel, serial int64) {
	return parallelKernels.Load(), serialKernels.Load()
}

// planWorkers decides the fan-out for a kernel producing `rows` output rows
// with `ops` total multiply-adds. Returns 1 for the serial fallback.
func planWorkers(rows, ops int) int {
	w := Workers()
	if w <= 1 || rows < 2 || ops < minParallelOps {
		return 1
	}
	if w > rows {
		w = rows
	}
	return w
}
