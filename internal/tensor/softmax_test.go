package tensor

import (
	"math"
	"testing"
)

func TestSoftmaxRowsSumToOne(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, -1, 0, 1})
	m.SoftmaxRows()
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			if v <= 0 || v >= 1 {
				t.Fatalf("softmax value %g out of (0,1)", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestSoftmaxNumericalStability(t *testing.T) {
	m := FromSlice(1, 2, []float64{1000, 1001})
	m.SoftmaxRows()
	for _, v := range m.Row(0) {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("softmax overflowed: %v", m.Row(0))
		}
	}
	if m.At(0, 1) <= m.At(0, 0) {
		t.Fatal("ordering lost")
	}
}

func TestCrossEntropyKnownValue(t *testing.T) {
	m := FromSlice(1, 2, []float64{0, 0})
	m.SoftmaxRows() // -> [0.5, 0.5]
	losses := CrossEntropyRows(m, []int{0})
	if math.Abs(losses[0]-math.Log(2)) > 1e-12 {
		t.Fatalf("loss = %g, want ln2", losses[0])
	}
}

func TestCrossEntropyFloorsProbability(t *testing.T) {
	m := FromSlice(1, 2, []float64{0, 1})
	// Force a zero probability without softmax.
	m.Set(0, 0, 0)
	losses := CrossEntropyRows(m, []int{0})
	if math.IsInf(losses[0], 0) || math.IsNaN(losses[0]) {
		t.Fatalf("loss not floored: %g", losses[0])
	}
}

func TestSoftmaxCrossEntropyGradSumsToZeroish(t *testing.T) {
	// For correct-label one-hot targets, each row of the gradient sums to 0
	// (probs sum to 1 and we subtract 1 at the label).
	m := FromSlice(2, 3, []float64{1, 2, 3, 0, 0, 0})
	m.SoftmaxRows()
	SoftmaxCrossEntropyGrad(m, []int{2, 0}, nil)
	for i := 0; i < m.Rows; i++ {
		var sum float64
		for _, v := range m.Row(i) {
			sum += v
		}
		if math.Abs(sum) > 1e-12 {
			t.Fatalf("grad row %d sums to %g", i, sum)
		}
	}
}

func TestSoftmaxCrossEntropyGradZeroWeightSkips(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	m.SoftmaxRows()
	SoftmaxCrossEntropyGrad(m, []int{0}, []float64{0})
	for _, v := range m.Row(0) {
		if v != 0 {
			t.Fatalf("zero-weight row has gradient %v", m.Row(0))
		}
	}
}

// TestGradientNumerically verifies the analytic softmax-CE gradient against
// central finite differences.
func TestGradientNumerically(t *testing.T) {
	logits := []float64{0.3, -0.7, 1.1}
	label := 1
	loss := func(z []float64) float64 {
		m := FromSlice(1, 3, append([]float64(nil), z...))
		m.SoftmaxRows()
		return CrossEntropyRows(m, []int{label})[0]
	}
	m := FromSlice(1, 3, append([]float64(nil), logits...))
	m.SoftmaxRows()
	SoftmaxCrossEntropyGrad(m, []int{label}, nil)
	const h = 1e-6
	for j := 0; j < 3; j++ {
		zp := append([]float64(nil), logits...)
		zm := append([]float64(nil), logits...)
		zp[j] += h
		zm[j] -= h
		num := (loss(zp) - loss(zm)) / (2 * h)
		if math.Abs(num-m.At(0, j)) > 1e-5 {
			t.Fatalf("grad[%d]: analytic %g, numeric %g", j, m.At(0, j), num)
		}
	}
}
