package tensor

import "math"

// SoftmaxRows applies a numerically stable softmax to each row in place.
func (m *Matrix) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		max := row[0]
		for _, v := range row[1:] {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		inv := 1 / sum
		for j := range row {
			row[j] *= inv
		}
	}
}

// CrossEntropyRows computes the per-row cross-entropy losses -log(p[label])
// given probs (rows already softmaxed) and integer labels. Probabilities are
// floored at eps to keep losses finite.
func CrossEntropyRows(probs *Matrix, labels []int) []float64 {
	if len(labels) != probs.Rows {
		panic("tensor: CrossEntropyRows label count mismatch")
	}
	const eps = 1e-12
	out := make([]float64, probs.Rows)
	for i, lab := range labels {
		p := probs.At(i, lab)
		if p < eps {
			p = eps
		}
		out[i] = -math.Log(p)
	}
	return out
}

// SoftmaxCrossEntropyGrad computes, in place on probs, the gradient of the
// mean cross-entropy loss with respect to the pre-softmax logits:
// grad = (probs - onehot(labels)) * w[i], where w is an optional per-sample
// weight (nil means uniform 1/N). probs must already hold softmax outputs.
func SoftmaxCrossEntropyGrad(probs *Matrix, labels []int, w []float64) {
	n := float64(probs.Rows)
	for i, lab := range labels {
		row := probs.Row(i)
		row[lab] -= 1
		scale := 1 / n
		if w != nil {
			scale = w[i]
		}
		for j := range row {
			row[j] *= scale
		}
	}
}
