// Package tensor implements the dense linear algebra needed by the
// from-scratch neural network in internal/nn.
//
// It is intentionally small: row-major float64 matrices with the handful of
// kernels a multilayer perceptron needs (matmul with optional transposes,
// broadcast row operations, elementwise maps, reductions). Kernels are
// written cache-friendly (ikj loop order) and, for large enough products,
// fan out across a worker pool partitioned by output row (see parallel.go);
// results are bitwise-identical to the serial kernels. SetWorkers gates the
// parallelism; small matrices always take the serial fallback.
package tensor

import (
	"fmt"

	"spidercache/internal/par"
)

// Matrix is a dense row-major matrix of float64 values.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// New returns a zero-initialised Rows x Cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: invalid shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a rows x cols matrix.
func FromSlice(rows, cols int, data []float64) *Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}
}

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Zero resets every element to 0.
func (m *Matrix) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// Shape returns (rows, cols).
func (m *Matrix) Shape() (int, int) { return m.Rows, m.Cols }

func (m *Matrix) sameShape(o *Matrix) {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		panic(fmt.Sprintf("tensor: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, o.Rows, o.Cols))
	}
}

// MatMul computes dst = a * b, allocating dst when nil. Shapes: (m x k) *
// (k x n) -> (m x n). It returns dst.
func MatMul(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: matmul inner dims %d vs %d", a.Cols, b.Rows))
	}
	if dst == nil {
		dst = New(a.Rows, b.Cols)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Cols {
			panic("tensor: matmul dst shape mismatch")
		}
		dst.Zero()
	}
	if w := planWorkers(a.Rows, a.Rows*a.Cols*b.Cols); w > 1 {
		parallelKernels.Add(1)
		par.For(w, a.Rows, func(r0, r1 int) { matMulRows(dst, a, b, r0, r1) })
	} else {
		serialKernels.Add(1)
		matMulRows(dst, a, b, 0, a.Rows)
	}
	return dst
}

// matMulRows computes dst rows [r0, r1) of a*b with the ikj kernel.
func matMulRows(dst, a, b *Matrix, r0, r1 int) {
	n := b.Cols
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for k, av := range arow {
			if av == 0 {
				continue
			}
			brow := b.Data[k*n : (k+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulATB computes dst = aᵀ * b. Shapes: (k x m)ᵀ * (k x n) -> (m x n).
func MatMulATB(dst, a, b *Matrix) *Matrix {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: matmulATB outer dims %d vs %d", a.Rows, b.Rows))
	}
	if dst == nil {
		dst = New(a.Cols, b.Cols)
	} else {
		if dst.Rows != a.Cols || dst.Cols != b.Cols {
			panic("tensor: matmulATB dst shape mismatch")
		}
		dst.Zero()
	}
	if w := planWorkers(a.Cols, a.Rows*a.Cols*b.Cols); w > 1 {
		parallelKernels.Add(1)
		par.For(w, a.Cols, func(i0, i1 int) { matMulATBRows(dst, a, b, i0, i1) })
	} else {
		serialKernels.Add(1)
		matMulATBRows(dst, a, b, 0, a.Cols)
	}
	return dst
}

// matMulATBRows computes dst rows [i0, i1) of aᵀ*b. The k loop stays
// outermost so each dst element accumulates in the same ascending-k order as
// the serial kernel (bitwise-identical results).
func matMulATBRows(dst, a, b *Matrix, i0, i1 int) {
	n := b.Cols
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i := i0; i < i1; i++ {
			av := arow[i]
			if av == 0 {
				continue
			}
			drow := dst.Data[i*n : (i+1)*n]
			for j, bv := range brow {
				drow[j] += av * bv
			}
		}
	}
}

// MatMulABT computes dst = a * bᵀ. Shapes: (m x k) * (n x k)ᵀ -> (m x n).
func MatMulABT(dst, a, b *Matrix) *Matrix {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: matmulABT inner dims %d vs %d", a.Cols, b.Cols))
	}
	if dst == nil {
		dst = New(a.Rows, b.Rows)
	} else {
		if dst.Rows != a.Rows || dst.Cols != b.Rows {
			panic("tensor: matmulABT dst shape mismatch")
		}
	}
	if w := planWorkers(a.Rows, a.Rows*a.Cols*b.Rows); w > 1 {
		parallelKernels.Add(1)
		par.For(w, a.Rows, func(r0, r1 int) { matMulABTRows(dst, a, b, r0, r1) })
	} else {
		serialKernels.Add(1)
		matMulABTRows(dst, a, b, 0, a.Rows)
	}
	return dst
}

// matMulABTRows computes dst rows [r0, r1) of a*bᵀ.
func matMulABTRows(dst, a, b *Matrix, r0, r1 int) {
	for i := r0; i < r1; i++ {
		arow := a.Row(i)
		drow := dst.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			drow[j] = s
		}
	}
}

// AddRowVec adds vector v (length Cols) to every row of m in place.
func (m *Matrix) AddRowVec(v []float64) {
	if len(v) != m.Cols {
		panic("tensor: AddRowVec length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += v[j]
		}
	}
}

// ColSums returns the per-column sums of m as a length-Cols slice.
func (m *Matrix) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// Add computes m += o elementwise.
func (m *Matrix) Add(o *Matrix) {
	m.sameShape(o)
	for i, v := range o.Data {
		m.Data[i] += v
	}
}

// Scale multiplies every element of m by s.
func (m *Matrix) Scale(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Apply replaces every element x with f(x).
func (m *Matrix) Apply(f func(float64) float64) {
	for i, v := range m.Data {
		m.Data[i] = f(v)
	}
}

// ReLU applies max(0, x) in place.
func (m *Matrix) ReLU() {
	for i, v := range m.Data {
		if v < 0 {
			m.Data[i] = 0
		}
	}
}

// ReLUBackward zeroes grad elements where the corresponding pre-activation
// output act is <= 0 (act must be the post-ReLU activations).
func ReLUBackward(grad, act *Matrix) {
	grad.sameShape(act)
	for i, v := range act.Data {
		if v <= 0 {
			grad.Data[i] = 0
		}
	}
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func (m *Matrix) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[i] = bi
	}
	return out
}
