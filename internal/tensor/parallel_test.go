package tensor

import (
	"fmt"
	"testing"

	"spidercache/internal/xrand"
)

// sparseMatrix is randomMatrix with exact zeros sprinkled in, so the
// skip-zero fast path is exercised in both serial and parallel kernels.
func sparseMatrix(rows, cols int, rng *xrand.Rand) *Matrix {
	m := randomMatrix(rows, cols, rng)
	for i := 0; i < len(m.Data); i += 17 {
		m.Data[i] = 0
	}
	return m
}

// withWorkers runs fn with the kernel parallelism pinned to n, restoring the
// default afterwards.
func withWorkers(n int, fn func()) {
	SetWorkers(n)
	defer SetWorkers(0)
	fn()
}

func TestParallelKernelsBitwiseIdenticalToSerial(t *testing.T) {
	rng := xrand.New(7)
	shapes := []struct{ m, k, n int }{
		{1, 1, 1},
		{3, 5, 7},
		{64, 48, 96},   // below the parallel threshold
		{128, 64, 128}, // above it
		{200, 150, 170},
	}
	for _, sh := range shapes {
		a := sparseMatrix(sh.m, sh.k, rng)
		b := sparseMatrix(sh.k, sh.n, rng)
		at := sparseMatrix(sh.k, sh.m, rng) // for ATB: (k x m)ᵀ * (k x n)
		bt := sparseMatrix(sh.n, sh.k, rng) // for ABT: (m x k) * (n x k)ᵀ

		var serMM, serATB, serABT *Matrix
		withWorkers(1, func() {
			serMM = MatMul(nil, a, b)
			serATB = MatMulATB(nil, at, b)
			serABT = MatMulABT(nil, a, bt)
		})
		for _, w := range []int{2, 3, 8} {
			withWorkers(w, func() {
				for name, pair := range map[string][2]*Matrix{
					"MatMul":    {MatMul(nil, a, b), serMM},
					"MatMulATB": {MatMulATB(nil, at, b), serATB},
					"MatMulABT": {MatMulABT(nil, a, bt), serABT},
				} {
					got, want := pair[0], pair[1]
					if got.Rows != want.Rows || got.Cols != want.Cols {
						t.Fatalf("%s %dx%dx%d w=%d: shape %dx%d want %dx%d",
							name, sh.m, sh.k, sh.n, w, got.Rows, got.Cols, want.Rows, want.Cols)
					}
					for i := range got.Data {
						if got.Data[i] != want.Data[i] {
							t.Fatalf("%s %dx%dx%d w=%d: element %d = %v, serial %v",
								name, sh.m, sh.k, sh.n, w, i, got.Data[i], want.Data[i])
						}
					}
				}
			})
		}
	}
}

func TestSetWorkersAndDefaults(t *testing.T) {
	SetWorkers(0)
	if Workers() < 1 {
		t.Fatalf("default Workers() = %d", Workers())
	}
	SetWorkers(3)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d after SetWorkers(3)", Workers())
	}
	SetWorkers(-5) // negative resets to default
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(-5)", Workers())
	}
	SetWorkers(0)
}

func TestPlanWorkersSerialFallback(t *testing.T) {
	withWorkers(8, func() {
		if w := planWorkers(1, 1<<20); w != 1 {
			t.Fatalf("single row planned %d workers", w)
		}
		if w := planWorkers(64, 100); w != 1 {
			t.Fatalf("tiny product planned %d workers", w)
		}
		if w := planWorkers(4, 1<<20); w != 4 {
			t.Fatalf("4 rows planned %d workers, want 4 (capped at rows)", w)
		}
		if w := planWorkers(512, 1<<27); w != 8 {
			t.Fatalf("large product planned %d workers, want 8", w)
		}
	})
}

func TestKernelStatsAdvance(t *testing.T) {
	rng := xrand.New(11)
	a := sparseMatrix(128, 128, rng)
	b := sparseMatrix(128, 128, rng)
	withWorkers(4, func() {
		p0, s0 := KernelStats()
		MatMul(nil, a, b) // 2M ops: parallel
		small := sparseMatrix(8, 8, rng)
		MatMul(nil, small, small) // serial fallback
		p1, s1 := KernelStats()
		if p1 <= p0 {
			t.Fatalf("parallel dispatch count did not advance: %d -> %d", p0, p1)
		}
		if s1 <= s0 {
			t.Fatalf("serial dispatch count did not advance: %d -> %d", s0, s1)
		}
	})
}

func benchMatMul(b *testing.B, size, workers int) {
	rng := xrand.New(42)
	x := sparseMatrix(size, size, rng)
	y := sparseMatrix(size, size, rng)
	dst := New(size, size)
	withWorkers(workers, func() {
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			MatMul(dst, x, y)
		}
	})
	b.SetBytes(int64(size * size * 8))
}

// BenchmarkMatMulSerial is the single-core baseline at 512x512.
func BenchmarkMatMulSerial(b *testing.B) { benchMatMul(b, 512, 1) }

// BenchmarkMatMulParallel runs the same 512x512 product across the worker
// pool (all cores). Compare ns/op against BenchmarkMatMulSerial; on >= 4
// cores the parallel kernel is expected to be >= 2x faster.
func BenchmarkMatMulParallel(b *testing.B) { benchMatMul(b, 512, 0) }

// BenchmarkMatMulWorkers sweeps explicit worker counts at 512x512.
func BenchmarkMatMulWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w=%d", w), func(b *testing.B) { benchMatMul(b, 512, w) })
	}
}
