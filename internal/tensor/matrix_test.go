package tensor

import (
	"math"
	"testing"
	"testing/quick"

	"spidercache/internal/xrand"
)

func almostEqual(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func randomMatrix(rows, cols int, rng *xrand.Rand) *Matrix {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// naiveMatMul is the reference O(n^3) triple loop.
func naiveMatMul(a, b *Matrix) *Matrix {
	out := New(a.Rows, b.Cols)
	for i := 0; i < a.Rows; i++ {
		for j := 0; j < b.Cols; j++ {
			var s float64
			for k := 0; k < a.Cols; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			out.Set(i, j, s)
		}
	}
	return out
}

func matricesEqual(t *testing.T, got, want *Matrix) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("shape %dx%d, want %dx%d", got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if !almostEqual(got.Data[i], want.Data[i]) {
			t.Fatalf("element %d: %g != %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestMatMulMatchesNaive(t *testing.T) {
	rng := xrand.New(1)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(m, k, rng)
		b := randomMatrix(k, n, rng)
		matricesEqual(t, MatMul(nil, a, b), naiveMatMul(a, b))
	}
}

func TestMatMulATB(t *testing.T) {
	rng := xrand.New(2)
	for trial := 0; trial < 20; trial++ {
		k, m, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(k, m, rng)
		b := randomMatrix(k, n, rng)
		at := New(m, k)
		for i := 0; i < k; i++ {
			for j := 0; j < m; j++ {
				at.Set(j, i, a.At(i, j))
			}
		}
		matricesEqual(t, MatMulATB(nil, a, b), naiveMatMul(at, b))
	}
}

func TestMatMulABT(t *testing.T) {
	rng := xrand.New(3)
	for trial := 0; trial < 20; trial++ {
		m, k, n := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randomMatrix(m, k, rng)
		b := randomMatrix(n, k, rng)
		bt := New(k, n)
		for i := 0; i < n; i++ {
			for j := 0; j < k; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		matricesEqual(t, MatMulABT(nil, a, b), naiveMatMul(a, bt))
	}
}

func TestMatMulShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched matmul did not panic")
		}
	}()
	MatMul(nil, New(2, 3), New(4, 2))
}

func TestFromSliceValidates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromSlice with wrong length did not panic")
		}
	}()
	FromSlice(2, 2, []float64{1, 2, 3})
}

func TestAddRowVec(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	m.AddRowVec([]float64{10, 20, 30})
	want := []float64{11, 22, 33, 14, 25, 36}
	for i, v := range want {
		if m.Data[i] != v {
			t.Fatalf("AddRowVec[%d] = %g, want %g", i, m.Data[i], v)
		}
	}
}

func TestColSums(t *testing.T) {
	m := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	got := m.ColSums()
	want := []float64{5, 7, 9}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ColSums[%d] = %g, want %g", i, got[i], want[i])
		}
	}
}

func TestReLU(t *testing.T) {
	m := FromSlice(1, 4, []float64{-1, 0, 2, -3})
	m.ReLU()
	want := []float64{0, 0, 2, 0}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("ReLU[%d] = %g, want %g", i, m.Data[i], want[i])
		}
	}
}

func TestReLUBackward(t *testing.T) {
	act := FromSlice(1, 4, []float64{0, 1, 0, 3})
	grad := FromSlice(1, 4, []float64{5, 5, 5, 5})
	ReLUBackward(grad, act)
	want := []float64{0, 5, 0, 5}
	for i := range want {
		if grad.Data[i] != want[i] {
			t.Fatalf("ReLUBackward[%d] = %g, want %g", i, grad.Data[i], want[i])
		}
	}
}

func TestArgmaxRows(t *testing.T) {
	m := FromSlice(3, 3, []float64{1, 5, 2, 9, 0, 0, 3, 3, 4})
	got := m.ArgmaxRows()
	want := []int{1, 0, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgmaxRows[%d] = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	m := FromSlice(1, 2, []float64{1, 2})
	c := m.Clone()
	c.Data[0] = 99
	if m.Data[0] != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestScaleAndAdd(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	m.Scale(2)
	m.Add(FromSlice(1, 3, []float64{1, 1, 1}))
	want := []float64{3, 5, 7}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("got %v", m.Data)
		}
	}
}

// Property: (A*B)ᵀ == Bᵀ*Aᵀ, exercised through MatMulABT/ATB consistency.
func TestMatMulTransposeConsistency(t *testing.T) {
	rng := xrand.New(4)
	check := func(seed uint16) bool {
		r := xrand.New(uint64(seed))
		m, k, n := 1+r.Intn(6), 1+r.Intn(6), 1+r.Intn(6)
		a := randomMatrix(m, k, rng)
		b := randomMatrix(k, n, rng)
		ab := MatMul(nil, a, b)
		// MatMulABT(a, bt) where bt has rows=b.Cols: build bᵀ then multiply.
		bt := New(n, k)
		for i := 0; i < k; i++ {
			for j := 0; j < n; j++ {
				bt.Set(j, i, b.At(i, j))
			}
		}
		alt := MatMulABT(nil, a, bt)
		for i := range ab.Data {
			if !almostEqual(ab.Data[i], alt.Data[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestApplyAndShape(t *testing.T) {
	m := FromSlice(2, 2, []float64{1, -2, 3, -4})
	m.Apply(func(x float64) float64 { return x * x })
	want := []float64{1, 4, 9, 16}
	for i := range want {
		if m.Data[i] != want[i] {
			t.Fatalf("Apply[%d] = %g", i, m.Data[i])
		}
	}
	r, c := m.Shape()
	if r != 2 || c != 2 {
		t.Fatalf("Shape = %d,%d", r, c)
	}
}

func TestMatMulDstReuse(t *testing.T) {
	rng := xrand.New(11)
	a := randomMatrix(3, 4, rng)
	b := randomMatrix(4, 2, rng)
	dst := New(3, 2)
	for i := range dst.Data {
		dst.Data[i] = 99 // must be cleared by MatMul
	}
	got := MatMul(dst, a, b)
	if got != dst {
		t.Fatal("dst not reused")
	}
	matricesEqual(t, got, naiveMatMul(a, b))

	// ATB and ABT with preallocated dst.
	at := randomMatrix(4, 3, rng)
	dst2 := New(3, 2)
	dst2.Data[0] = 42
	MatMulATB(dst2, at, b)
	bt := randomMatrix(5, 4, rng)
	dst3 := New(3, 5)
	MatMulABT(dst3, a, bt)
}

func TestMatMulDstShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong dst shape accepted")
		}
	}()
	MatMul(New(2, 2), New(2, 3), New(3, 4))
}

func TestMatMulATBShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ATB accepted")
		}
	}()
	MatMulATB(nil, New(3, 2), New(4, 5))
}

func TestMatMulABTShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched ABT accepted")
		}
	}()
	MatMulABT(nil, New(3, 2), New(4, 5))
}

func TestAddShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched Add accepted")
		}
	}()
	New(2, 2).Add(New(3, 3))
}

func TestAddRowVecPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("wrong-length AddRowVec accepted")
		}
	}()
	New(2, 3).AddRowVec([]float64{1})
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative shape accepted")
		}
	}()
	New(-1, 2)
}

func TestZero(t *testing.T) {
	m := FromSlice(1, 3, []float64{1, 2, 3})
	m.Zero()
	for _, v := range m.Data {
		if v != 0 {
			t.Fatal("Zero left residue")
		}
	}
}
