// Package elastic implements the paper's Elastic Cache Manager
// (Section 4.3): the controller that shifts cache capacity from the
// Importance Cache to the Homophily Cache as training matures.
//
// Three cooperating parts:
//
//   - Importance Monitor: watches the slope of the importance-score standard
//     deviation σ; a sustained negative slope sets the activation factor
//     β = 1 (Eq. 5).
//   - Accuracy Monitor: Savitzky-Golay-smooths the accuracy series, computes
//     the mean growth rate Δ over a window of m epochs (Eq. 6), and derives
//     the penalty u = Δ/(γ+Δ) (Eq. 7).
//   - Ratio Controller: imp_ratio(t) = r_start − β(r_start−r_end)(t/T)^(1+u)
//     (Eq. 8) — adjustment is slow while accuracy still grows (u→1) and
//     accelerates once growth stabilises (u→0).
package elastic

import (
	"fmt"
	"math"

	"spidercache/internal/sgolay"
)

// Config tunes the manager. The paper recommends RStart=0.90, REnd=0.80.
type Config struct {
	RStart float64 // initial Importance Cache share
	REnd   float64 // final Importance Cache share
	Gamma  float64 // balancing factor in u = Δ/(γ+Δ)
	Window int     // m, epochs averaged for the growth rate (paper: 5)
	// SlopeWindow is how many recent σ observations the Importance Monitor
	// regresses over; Patience is how many consecutive negative slopes are
	// required before β latches to 1 (guards against σ noise).
	SlopeWindow int
	Patience    int
	TotalEpochs int // T in Eq. 8
	SGWindow    int // Savitzky-Golay window (odd)
	SGOrder     int // Savitzky-Golay polynomial order
}

// DefaultConfig returns the paper-recommended settings for a run of
// totalEpochs epochs.
func DefaultConfig(totalEpochs int) Config {
	return Config{
		RStart:      0.90,
		REnd:        0.80,
		Gamma:       0.01,
		Window:      5,
		SlopeWindow: 5,
		Patience:    2,
		TotalEpochs: totalEpochs,
		SGWindow:    5,
		SGOrder:     2,
	}
}

// Validate reports a descriptive error for unusable configurations.
func (c Config) Validate() error {
	switch {
	case c.RStart <= 0 || c.RStart > 1:
		return fmt.Errorf("elastic: RStart must be in (0,1], got %g", c.RStart)
	case c.REnd < 0 || c.REnd > c.RStart:
		return fmt.Errorf("elastic: REnd must be in [0,RStart], got %g", c.REnd)
	case c.Gamma <= 0:
		return fmt.Errorf("elastic: Gamma must be positive, got %g", c.Gamma)
	case c.Window < 2:
		return fmt.Errorf("elastic: Window must be >= 2, got %d", c.Window)
	case c.SlopeWindow < 2:
		return fmt.Errorf("elastic: SlopeWindow must be >= 2, got %d", c.SlopeWindow)
	case c.Patience < 1:
		return fmt.Errorf("elastic: Patience must be >= 1, got %d", c.Patience)
	case c.TotalEpochs < 1:
		return fmt.Errorf("elastic: TotalEpochs must be >= 1, got %d", c.TotalEpochs)
	case c.SGWindow < 3 || c.SGWindow%2 == 0:
		return fmt.Errorf("elastic: SGWindow must be odd >= 3, got %d", c.SGWindow)
	case c.SGOrder < 0 || c.SGOrder >= c.SGWindow:
		return fmt.Errorf("elastic: SGOrder must be in [0,SGWindow), got %d", c.SGOrder)
	}
	return nil
}

// Manager is the Elastic Cache Manager. Feed it one Observe call per epoch.
type Manager struct {
	cfg    Config
	filter *sgolay.Filter

	sigmas     []float64
	accuracies []float64

	beta        bool // activation latched
	negStreak   int
	activatedAt int // epoch index when β latched (ratio time base)
	lastRatio   float64
	lastU       float64
}

// New builds a manager.
func New(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	f, err := sgolay.New(cfg.SGWindow, cfg.SGOrder)
	if err != nil {
		return nil, err
	}
	return &Manager{cfg: cfg, filter: f, lastRatio: cfg.RStart}, nil
}

// Observe ingests the epoch's importance-score std and held-out accuracy and
// returns the Importance Cache share to use next epoch.
func (m *Manager) Observe(epoch int, scoreStd, accuracy float64) float64 {
	m.sigmas = append(m.sigmas, scoreStd)
	m.accuracies = append(m.accuracies, accuracy)

	// Importance Monitor: latch β on a sustained negative σ slope (Eq. 5).
	if !m.beta {
		if s, ok := m.sigmaSlope(); ok && s < 0 {
			m.negStreak++
			if m.negStreak >= m.cfg.Patience {
				m.beta = true
				m.activatedAt = epoch
			}
		} else {
			m.negStreak = 0
		}
	}
	if !m.beta {
		m.lastRatio = m.cfg.RStart
		return m.lastRatio
	}

	// Accuracy Monitor: u = Δ/(γ+Δ) from the SG-smoothed growth rate
	// (Eqs. 6-7). Negative growth clamps Δ at 0 so u stays in [0,1).
	delta := m.growthRate()
	if delta < 0 {
		delta = 0
	}
	u := delta / (m.cfg.Gamma + delta)
	m.lastU = u

	// Ratio Controller (Eq. 8). t counts epochs since activation so the
	// trajectory starts at r_start the moment β flips, and T is the
	// remaining training horizon.
	t := float64(epoch - m.activatedAt + 1)
	total := float64(m.cfg.TotalEpochs - m.activatedAt)
	if total < 1 {
		total = 1
	}
	frac := t / total
	if frac > 1 {
		frac = 1
	}
	ratio := m.cfg.RStart - (m.cfg.RStart-m.cfg.REnd)*math.Pow(frac, 1+u)
	if ratio < m.cfg.REnd {
		ratio = m.cfg.REnd
	}
	m.lastRatio = ratio
	return ratio
}

// Ratio returns the most recently computed Importance Cache share.
func (m *Manager) Ratio() float64 { return m.lastRatio }

// Activated reports whether the Importance Monitor has latched β = 1.
func (m *Manager) Activated() bool { return m.beta }

// PenaltyU returns the most recent penalty factor u (0 before activation).
func (m *Manager) PenaltyU() float64 { return m.lastU }

// sigmaSlope fits a least-squares line over the last SlopeWindow σ values.
func (m *Manager) sigmaSlope() (float64, bool) {
	w := m.cfg.SlopeWindow
	if len(m.sigmas) < w {
		return 0, false
	}
	ys := m.sigmas[len(m.sigmas)-w:]
	return Slope(ys), true
}

// growthRate computes Eq. 6 over the SG-smoothed accuracy series.
func (m *Manager) growthRate() float64 {
	if len(m.accuracies) < 2 {
		return 0
	}
	smoothed := m.filter.Smooth(m.accuracies)
	mWin := m.cfg.Window
	if mWin > len(smoothed)-1 {
		mWin = len(smoothed) - 1
	}
	var sum float64
	for i := 0; i < mWin; i++ {
		hi := len(smoothed) - 1 - i
		sum += smoothed[hi] - smoothed[hi-1]
	}
	return sum / float64(mWin)
}

// Slope returns the least-squares slope of ys against index 0..len-1.
func Slope(ys []float64) float64 {
	n := float64(len(ys))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i, y := range ys {
		x := float64(i)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	denom := n*sxx - sx*sx
	if denom == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / denom
}

// RatioAt evaluates Eq. 8 directly for given parameters; used by the Fig 11
// analytic sweep and property tests.
func RatioAt(rStart, rEnd, frac, u float64, beta bool) float64 {
	if !beta {
		return rStart
	}
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	return rStart - (rStart-rEnd)*math.Pow(frac, 1+u)
}
