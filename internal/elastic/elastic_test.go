package elastic

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.RStart = 0 },
		func(c *Config) { c.RStart = 1.2 },
		func(c *Config) { c.REnd = c.RStart + 0.1 },
		func(c *Config) { c.REnd = -0.1 },
		func(c *Config) { c.Gamma = 0 },
		func(c *Config) { c.Window = 1 },
		func(c *Config) { c.SlopeWindow = 1 },
		func(c *Config) { c.Patience = 0 },
		func(c *Config) { c.TotalEpochs = 0 },
		func(c *Config) { c.SGWindow = 4 },
		func(c *Config) { c.SGOrder = 9 },
	}
	for i, mutate := range bad {
		cfg := DefaultConfig(100)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
	if _, err := New(DefaultConfig(100)); err != nil {
		t.Fatal(err)
	}
}

// feed pushes a synthetic training trace: σ rises for riseLen epochs then
// decays; accuracy follows a saturating curve.
func feed(m *Manager, epochs, riseLen int) []float64 {
	ratios := make([]float64, epochs)
	for e := 0; e < epochs; e++ {
		var sigma float64
		if e < riseLen {
			sigma = 0.1 + 0.02*float64(e)
		} else {
			sigma = 0.1 + 0.02*float64(riseLen) - 0.015*float64(e-riseLen)
			if sigma < 0.01 {
				sigma = 0.01
			}
		}
		acc := 0.9 * (1 - math.Exp(-float64(e)/8))
		ratios[e] = m.Observe(e, sigma, acc)
	}
	return ratios
}

func TestRatioStaysAtStartBeforeActivation(t *testing.T) {
	m, _ := New(DefaultConfig(40))
	ratios := feed(m, 10, 20) // σ still rising throughout
	for e, r := range ratios {
		if r != 0.90 {
			t.Fatalf("epoch %d: ratio %.3f before activation", e, r)
		}
	}
	if m.Activated() {
		t.Fatal("activated while σ rising")
	}
}

func TestActivationOnDecliningSigma(t *testing.T) {
	m, _ := New(DefaultConfig(40))
	feed(m, 40, 10)
	if !m.Activated() {
		t.Fatal("β never latched despite declining σ")
	}
	if m.Ratio() >= 0.90 {
		t.Fatalf("ratio %.4f did not move after activation", m.Ratio())
	}
}

func TestRatioMonotoneAndBounded(t *testing.T) {
	m, _ := New(DefaultConfig(40))
	ratios := feed(m, 40, 8)
	for e := 1; e < len(ratios); e++ {
		if ratios[e] > ratios[e-1]+1e-12 {
			t.Fatalf("ratio increased at epoch %d: %.4f -> %.4f", e, ratios[e-1], ratios[e])
		}
	}
	last := ratios[len(ratios)-1]
	if last < 0.80-1e-9 || last > 0.90+1e-9 {
		t.Fatalf("final ratio %.4f outside [0.80, 0.90]", last)
	}
}

func TestRatioReachesREnd(t *testing.T) {
	cfg := DefaultConfig(30)
	m, _ := New(cfg)
	ratios := feed(m, 30, 6)
	if got := ratios[len(ratios)-1]; math.Abs(got-cfg.REnd) > 0.02 {
		t.Fatalf("final ratio %.4f, want ~%.2f", got, cfg.REnd)
	}
}

// TestPenaltySlowsAdjustment: with rapidly growing accuracy (u -> 1) the
// ratio trajectory must stay above the u -> 0 trajectory at mid-training.
func TestPenaltySlowsAdjustment(t *testing.T) {
	run := func(growing bool) float64 {
		m, _ := New(DefaultConfig(40))
		var mid float64
		for e := 0; e < 40; e++ {
			sigma := 0.3 - 0.01*float64(e) // declining from the start
			acc := 0.5
			if growing {
				acc = 0.02 * float64(e) // strong steady growth
			}
			r := m.Observe(e, sigma, acc)
			if e == 20 {
				mid = r
			}
		}
		return mid
	}
	fast := run(true)  // u near 1: adjustment slowed
	slow := run(false) // u = 0: adjustment at full speed
	if fast <= slow {
		t.Fatalf("growing accuracy did not slow the shift: %.4f vs %.4f", fast, slow)
	}
}

func TestRatioAtFormula(t *testing.T) {
	// Eq. 8 spot checks.
	if got := RatioAt(0.9, 0.8, 0, 0, true); got != 0.9 {
		t.Fatalf("t=0: %g", got)
	}
	if got := RatioAt(0.9, 0.8, 1, 0, true); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("t=T,u=0: %g", got)
	}
	if got := RatioAt(0.9, 0.8, 0.5, 0, true); math.Abs(got-0.85) > 1e-12 {
		t.Fatalf("t=T/2,u=0: %g (linear when u=0)", got)
	}
	if got := RatioAt(0.9, 0.8, 0.5, 1, true); math.Abs(got-(0.9-0.1*0.25)) > 1e-12 {
		t.Fatalf("t=T/2,u=1: %g (quadratic when u=1)", got)
	}
	if got := RatioAt(0.9, 0.8, 0.7, 0.3, false); got != 0.9 {
		t.Fatalf("β=0: %g", got)
	}
}

// Property: RatioAt is bounded by [rEnd, rStart] and decreasing in frac.
func TestRatioAtProperties(t *testing.T) {
	check := func(fracRaw, uRaw uint8) bool {
		frac := float64(fracRaw) / 255
		u := float64(uRaw) / 255
		r := RatioAt(0.9, 0.8, frac, u, true)
		if r < 0.8-1e-12 || r > 0.9+1e-12 {
			return false
		}
		r2 := RatioAt(0.9, 0.8, frac+0.1, u, true)
		return r2 <= r+1e-12
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSlope(t *testing.T) {
	if s := Slope([]float64{1, 2, 3, 4}); math.Abs(s-1) > 1e-12 {
		t.Fatalf("Slope = %g, want 1", s)
	}
	if s := Slope([]float64{4, 3, 2, 1}); math.Abs(s+1) > 1e-12 {
		t.Fatalf("Slope = %g, want -1", s)
	}
	if s := Slope([]float64{5, 5, 5}); s != 0 {
		t.Fatalf("Slope of constant = %g", s)
	}
	if s := Slope([]float64{7}); s != 0 {
		t.Fatalf("Slope of single point = %g", s)
	}
}

func TestPatienceGuardsAgainstNoise(t *testing.T) {
	cfg := DefaultConfig(40)
	cfg.Patience = 3
	m, _ := New(cfg)
	// Alternating slope signs: never Patience consecutive negatives.
	sig := []float64{0.1, 0.2, 0.15, 0.25, 0.2, 0.3, 0.25, 0.35, 0.3, 0.4}
	for e, s := range sig {
		m.Observe(e, s, 0.5)
	}
	if m.Activated() {
		t.Fatal("activated on noisy σ")
	}
}

func TestPenaltyUReported(t *testing.T) {
	m, _ := New(DefaultConfig(40))
	if m.PenaltyU() != 0 {
		t.Fatal("u nonzero before activation")
	}
	feed(m, 40, 5)
	if u := m.PenaltyU(); u < 0 || u >= 1 {
		t.Fatalf("u = %g outside [0,1)", u)
	}
}
