package sampler

import (
	"math"
	"testing"
	"testing/quick"

	"spidercache/internal/xrand"
)

func TestUniformIsPermutation(t *testing.T) {
	u, err := NewUniform(100, 1)
	if err != nil {
		t.Fatal(err)
	}
	for epoch := 0; epoch < 5; epoch++ {
		order := u.EpochOrder(epoch)
		if len(order) != 100 {
			t.Fatalf("order length %d", len(order))
		}
		seen := make([]bool, 100)
		for _, id := range order {
			if seen[id] {
				t.Fatalf("epoch %d: duplicate id %d", epoch, id)
			}
			seen[id] = true
		}
	}
}

func TestUniformShufflesAcrossEpochs(t *testing.T) {
	u, _ := NewUniform(100, 2)
	a := u.EpochOrder(0)
	b := u.EpochOrder(1)
	same := 0
	for i := range a {
		if a[i] == b[i] {
			same++
		}
	}
	if same > 20 {
		t.Fatalf("epochs too similar: %d/100 positions equal", same)
	}
}

func TestUniformValidation(t *testing.T) {
	if _, err := NewUniform(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
}

func TestMultinomialFollowsWeights(t *testing.T) {
	const n = 4
	m, err := NewMultinomial(n, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSmoothing(0); err != nil {
		t.Fatal(err)
	}
	if err := m.SetWeights([]float64{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	counts := make([]int, n)
	const epochs = 2000
	for e := 0; e < epochs; e++ {
		for _, id := range m.EpochOrder(e) {
			counts[id]++
		}
	}
	total := float64(epochs * n)
	for i, c := range counts {
		want := float64(i+1) / 10
		got := float64(c) / total
		if math.Abs(got-want) > 0.02 {
			t.Errorf("id %d: frequency %.3f, want %.3f", i, got, want)
		}
	}
}

func TestMultinomialSmoothingBoundsConcentration(t *testing.T) {
	m, _ := NewMultinomial(2, 4)
	m.SetWeights([]float64{0.0001, 1}) // floored to minWeight
	m.SetSmoothing(1)
	counts := make([]int, 2)
	for e := 0; e < 3000; e++ {
		for _, id := range m.EpochOrder(e) {
			counts[id]++
		}
	}
	// With smoothing 1 and weights ~(0, 1): eff = (0.5, 1.5) -> 25%/75%.
	frac := float64(counts[0]) / float64(counts[0]+counts[1])
	if math.Abs(frac-0.25) > 0.03 {
		t.Fatalf("smoothed low-weight frequency %.3f, want ~0.25", frac)
	}
}

func TestMultinomialValidation(t *testing.T) {
	if _, err := NewMultinomial(0, 1); err == nil {
		t.Fatal("n=0 accepted")
	}
	m, _ := NewMultinomial(3, 1)
	if err := m.SetWeights([]float64{1, 2}); err == nil {
		t.Fatal("wrong-length weights accepted")
	}
	if err := m.SetSmoothing(-1); err == nil {
		t.Fatal("negative smoothing accepted")
	}
}

func TestMultinomialWeightFloor(t *testing.T) {
	m, _ := NewMultinomial(2, 5)
	m.SetWeight(0, 0)
	if m.Weights()[0] <= 0 {
		t.Fatal("weight floor not applied")
	}
}

func TestAliasMatchesLinearScan(t *testing.T) {
	weights := []float64{0.5, 0, 3, 1.5, 2}
	rng := xrand.New(6)
	a := NewAlias(weights, rng)
	counts := make([]int, len(weights))
	const draws = 200000
	for i := 0; i < draws; i++ {
		counts[a.Draw()]++
	}
	var total float64
	for _, w := range weights {
		total += w
	}
	for i, w := range weights {
		want := w / total
		got := float64(counts[i]) / draws
		if math.Abs(got-want) > 0.01 {
			t.Errorf("alias id %d: %.4f, want %.4f", i, got, want)
		}
	}
}

func TestAliasAllZeroWeights(t *testing.T) {
	a := NewAlias([]float64{0, 0, 0}, xrand.New(7))
	counts := make([]int, 3)
	for i := 0; i < 30000; i++ {
		counts[a.Draw()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)/30000-1.0/3) > 0.02 {
			t.Errorf("degenerate alias id %d frequency %.3f", i, float64(c)/30000)
		}
	}
}

func TestAliasNegativeWeightsClamped(t *testing.T) {
	a := NewAlias([]float64{-5, 1}, xrand.New(8))
	for i := 0; i < 10000; i++ {
		if a.Draw() == 0 {
			t.Fatal("negative-weight index drawn")
		}
	}
}

func TestLossBasedPrioritisesHighLoss(t *testing.T) {
	lb, err := NewLossBased(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	lb.ObserveLoss(0, 0.01)
	lb.ObserveLoss(1, 5.0)
	lb.ObserveLoss(2, 0.01)
	counts := make([]int, 3)
	for e := 0; e < 3000; e++ {
		for _, id := range lb.EpochOrder(e) {
			counts[id]++
		}
	}
	if counts[1] <= counts[0] || counts[1] <= counts[2] {
		t.Fatalf("high-loss sample not prioritised: %v", counts)
	}
}

func TestLossBasedUnseenPrior(t *testing.T) {
	lb, _ := NewLossBased(2, 10)
	lb.ObserveLoss(0, 2.0)
	lb.EpochOrder(0) // triggers prior refresh
	if w := lb.Weight(1); math.Abs(w-2.0) > 1e-9 {
		t.Fatalf("unseen prior weight %g, want 2.0 (mean observed loss)", w)
	}
}

func TestSelectiveUniformOrder(t *testing.T) {
	s, err := NewSelective(50, 0.4, 11)
	if err != nil {
		t.Fatal(err)
	}
	order := s.EpochOrder(0)
	seen := make([]bool, 50)
	for _, id := range order {
		if seen[id] {
			t.Fatal("selective order not a permutation")
		}
		seen[id] = true
	}
}

func TestSelectiveValidation(t *testing.T) {
	if _, err := NewSelective(10, 1.0, 1); err == nil {
		t.Fatal("skipFrac=1 accepted")
	}
	if _, err := NewSelective(10, -0.1, 1); err == nil {
		t.Fatal("negative skipFrac accepted")
	}
}

func TestSkipLowestLoss(t *testing.T) {
	losses := []float64{0.5, 0.1, 0.9, 0.3}
	w := SkipLowestLoss(losses, 0.5) // skip 2 lowest: ids 1 and 3
	if w[1] != 0 || w[3] != 0 {
		t.Fatalf("lowest-loss entries not skipped: %v", w)
	}
	if w[0] == 0 || w[2] == 0 {
		t.Fatalf("kept entries zeroed: %v", w)
	}
	var sum float64
	for _, v := range w {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("kept weights sum to %g", sum)
	}
}

func TestSkipLowestLossEdgeCases(t *testing.T) {
	if w := SkipLowestLoss(nil, 0.5); w != nil {
		t.Fatal("nil losses produced weights")
	}
	if w := SkipLowestLoss([]float64{1, 2}, 0.1); w != nil {
		t.Fatal("skip count 0 should return nil (train all)")
	}
}

// Property: SkipLowestLoss always skips exactly floor(frac*n) samples and
// never a sample with higher loss than a kept one.
func TestSkipLowestLossProperty(t *testing.T) {
	check := func(seed uint16) bool {
		rng := xrand.New(uint64(seed))
		n := 2 + rng.Intn(40)
		losses := make([]float64, n)
		for i := range losses {
			losses[i] = rng.Float64()
		}
		frac := rng.Float64() * 0.9
		w := SkipLowestLoss(losses, frac)
		wantSkip := int(float64(n) * frac)
		if w == nil {
			return wantSkip == 0
		}
		var maxSkipped float64 = -1
		minKept := math.Inf(1)
		skipped := 0
		for i, wi := range w {
			if wi == 0 {
				skipped++
				if losses[i] > maxSkipped {
					maxSkipped = losses[i]
				}
			} else if losses[i] < minKept {
				minKept = losses[i]
			}
		}
		return skipped == wantSkip && maxSkipped <= minKept
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
