package sampler

import "spidercache/internal/xrand"

// Alias is a Walker alias table for O(1) categorical sampling — the
// mechanism behind this repository's torch.multinomial equivalent.
type Alias struct {
	prob  []float64
	alias []int
	rng   *xrand.Rand
}

// NewAlias builds an alias table from unnormalised non-negative weights.
// All-zero weight vectors degrade to uniform sampling.
func NewAlias(weights []float64, rng *xrand.Rand) *Alias {
	n := len(weights)
	a := &Alias{prob: make([]float64, n), alias: make([]int, n), rng: rng}
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total == 0 {
		for i := range a.prob {
			a.prob[i] = 1
			a.alias[i] = i
		}
		return a
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		if w < 0 {
			w = 0
		}
		scaled[i] = w / total * float64(n)
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a
}

// Draw samples one index from the table.
func (a *Alias) Draw() int {
	i := a.rng.Intn(len(a.prob))
	if a.rng.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
