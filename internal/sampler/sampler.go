// Package sampler implements the epoch-order generators used by the
// evaluated policies:
//
//   - Uniform:     PyTorch's default random sampling — every sample exactly
//     once per epoch, shuffled (CoorDL, Baseline)
//   - Multinomial: biased sampling with replacement from a weight vector,
//     the torch.multinomial analogue SpiderCache uses over its
//     graph-based global scores
//   - LossBased:   SHADE-style loss-driven weighting — weights track each
//     sample's most recent loss
//   - Selective:   the compute-bound IS of Jiang et al. adopted by iCache —
//     per-batch backprop skipping for low-loss samples
//
// All samplers are deterministic given their seed.
package sampler

import (
	"fmt"
	"sort"

	"spidercache/internal/xrand"
)

// Sampler produces the training order for one epoch over n samples.
type Sampler interface {
	// EpochOrder returns the sample IDs to visit in epoch order. Length is
	// always the dataset size; IDs may repeat for with-replacement
	// samplers.
	EpochOrder(epoch int) []int
}

// Uniform visits each sample exactly once per epoch in a fresh random
// permutation — the access pattern that defeats LRU/LFU locality (paper
// Section 2.1).
type Uniform struct {
	n   int
	rng *xrand.Rand
}

// NewUniform returns a uniform per-epoch permutation sampler over n samples.
func NewUniform(n int, seed uint64) (*Uniform, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampler: n must be positive, got %d", n)
	}
	return &Uniform{n: n, rng: xrand.New(seed)}, nil
}

// EpochOrder returns a fresh permutation of [0, n).
func (u *Uniform) EpochOrder(int) []int { return u.rng.Perm(u.n) }

// Multinomial draws n samples per epoch i.i.d. from a categorical
// distribution over per-sample weights, with replacement — matching
// torch.multinomial as used in the paper's Algorithm 1. Weight updates take
// effect at the next epoch.
type Multinomial struct {
	n       int
	weights []float64
	rng     *xrand.Rand
	// minWeight floors every weight so no sample's probability collapses
	// to zero (keeps the training distribution covering the dataset).
	minWeight float64
	// smoothing mixes the raw weights with their mean: the effective draw
	// weight is w_i + smoothing * mean(w). This is the standard IS
	// variance-control trick (cf. SHADE's rank smoothing): it bounds the
	// concentration ratio so hard samples are prioritised without easy
	// regions starving. 0 disables smoothing.
	smoothing float64
}

// NewMultinomial returns a multinomial sampler over n samples with uniform
// initial weights and the default smoothing of 1.
func NewMultinomial(n int, seed uint64) (*Multinomial, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sampler: n must be positive, got %d", n)
	}
	w := make([]float64, n)
	for i := range w {
		w[i] = 1
	}
	return &Multinomial{n: n, weights: w, rng: xrand.New(seed), minWeight: 1e-3, smoothing: 1}, nil
}

// SetSmoothing adjusts the mean-mixing coefficient (>= 0).
func (m *Multinomial) SetSmoothing(s float64) error {
	if s < 0 {
		return fmt.Errorf("sampler: smoothing must be >= 0, got %g", s)
	}
	m.smoothing = s
	return nil
}

// SetWeight updates the unnormalised sampling weight of sample id.
func (m *Multinomial) SetWeight(id int, w float64) {
	if w < m.minWeight {
		w = m.minWeight
	}
	m.weights[id] = w
}

// SetWeights replaces all weights (length must equal n).
func (m *Multinomial) SetWeights(w []float64) error {
	if len(w) != m.n {
		return fmt.Errorf("sampler: got %d weights, want %d", len(w), m.n)
	}
	for i, v := range w {
		if v < m.minWeight {
			v = m.minWeight
		}
		m.weights[i] = v
	}
	return nil
}

// Weights returns the live weight vector (callers must not mutate it).
func (m *Multinomial) Weights() []float64 { return m.weights }

// EpochOrder draws n IDs from the current (smoothed) weights using Walker's
// alias method: O(n) table build then O(1) per draw.
func (m *Multinomial) EpochOrder(int) []int {
	eff := m.weights
	if m.smoothing > 0 {
		var sum float64
		for _, w := range m.weights {
			sum += w
		}
		mix := m.smoothing * sum / float64(m.n)
		eff = make([]float64, m.n)
		for i, w := range m.weights {
			eff[i] = w + mix
		}
	}
	table := NewAlias(eff, m.rng)
	out := make([]int, m.n)
	for i := range out {
		out[i] = table.Draw()
	}
	return out
}

// LossBased is the SHADE-style sampler: per-sample weights follow the most
// recent observed loss (higher loss -> sampled more often). Unobserved
// samples keep a prior weight equal to the running mean loss so they stay in
// rotation.
type LossBased struct {
	inner    *Multinomial
	seen     []bool
	lossSum  float64
	lossObs  float64
	priorSet bool
}

// NewLossBased returns a loss-weighted multinomial sampler over n samples.
func NewLossBased(n int, seed uint64) (*LossBased, error) {
	inner, err := NewMultinomial(n, seed)
	if err != nil {
		return nil, err
	}
	return &LossBased{inner: inner, seen: make([]bool, n)}, nil
}

// ObserveLoss records the loss of sample id from the latest forward pass.
func (l *LossBased) ObserveLoss(id int, loss float64) {
	l.inner.SetWeight(id, loss)
	if !l.seen[id] {
		l.seen[id] = true
	}
	l.lossSum += loss
	l.lossObs++
	l.priorSet = false
}

// EpochOrder refreshes the unseen-sample prior then draws the epoch order.
func (l *LossBased) EpochOrder(epoch int) []int {
	if !l.priorSet && l.lossObs > 0 {
		prior := l.lossSum / l.lossObs
		for id, s := range l.seen {
			if !s {
				l.inner.SetWeight(id, prior)
			}
		}
		l.priorSet = true
	}
	return l.inner.EpochOrder(epoch)
}

// Weight exposes the current weight of id (tests and diagnostics).
func (l *LossBased) Weight(id int) float64 { return l.inner.Weights()[id] }

// Selective implements the compute-bound IS adopted by iCache (Jiang et
// al.'s selective backprop): the epoch order stays uniform — which is why
// the paper finds its importance cache hits poorly — and the lowest-loss
// fraction of every batch has its backprop skipped (weight 0), cutting
// computation at the cost of accuracy.
type Selective struct {
	*Uniform
	SkipFrac float64 // fraction of each batch whose backprop is skipped
}

// NewSelective returns a selective-backprop sampler skipping skipFrac of
// each batch.
func NewSelective(n int, skipFrac float64, seed uint64) (*Selective, error) {
	if skipFrac < 0 || skipFrac >= 1 {
		return nil, fmt.Errorf("sampler: skipFrac must be in [0,1), got %g", skipFrac)
	}
	u, err := NewUniform(n, seed)
	if err != nil {
		return nil, err
	}
	return &Selective{Uniform: u, SkipFrac: skipFrac}, nil
}

// BackpropWeights returns SkipLowestLoss(losses, SkipFrac).
func (s *Selective) BackpropWeights(losses []float64) []float64 {
	return SkipLowestLoss(losses, s.SkipFrac)
}

// SkipLowestLoss returns per-sample weights for a batch with the given
// losses: the lowest-loss frac of the batch gets weight 0 (skipped), the
// rest 1/kept so gradient scale stays comparable. nil means "train all".
func SkipLowestLoss(losses []float64, frac float64) []float64 {
	n := len(losses)
	if n == 0 {
		return nil
	}
	skip := int(float64(n) * frac)
	if skip == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return losses[idx[a]] < losses[idx[b]] })
	w := make([]float64, n)
	kept := float64(n - skip)
	for rank, i := range idx {
		if rank < skip {
			w[i] = 0
		} else {
			w[i] = 1 / kept
		}
	}
	return w
}
