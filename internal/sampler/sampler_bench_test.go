package sampler

import (
	"testing"

	"spidercache/internal/xrand"
)

func BenchmarkAliasBuild(b *testing.B) {
	rng := xrand.New(1)
	weights := make([]float64, 4000)
	for i := range weights {
		weights[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		NewAlias(weights, rng)
	}
}

func BenchmarkAliasDraw(b *testing.B) {
	rng := xrand.New(1)
	weights := make([]float64, 4000)
	for i := range weights {
		weights[i] = rng.Float64()
	}
	tab := NewAlias(weights, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tab.Draw()
	}
}

func BenchmarkMultinomialEpochOrder(b *testing.B) {
	m, _ := NewMultinomial(4000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.EpochOrder(i)
	}
}

func BenchmarkUniformEpochOrder(b *testing.B) {
	u, _ := NewUniform(4000, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.EpochOrder(i)
	}
}
