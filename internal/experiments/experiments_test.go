package experiments

import (
	"strings"
	"testing"
)

// tinyOptions keeps experiment smoke tests fast on one CPU.
func tinyOptions() Options {
	return Options{Scale: 0.06, EpochOverride: 2, Seed: 5}
}

func TestListAndAliases(t *testing.T) {
	ids := List()
	if len(ids) != len(registry) {
		t.Fatalf("List returned %d ids", len(ids))
	}
	for alias, canonical := range aliases {
		if _, ok := registry[canonical]; !ok {
			t.Errorf("alias %s points to unknown %s", alias, canonical)
		}
	}
	if _, err := Run("nope", tinyOptions()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestAliasResolution(t *testing.T) {
	a, err := Run("fig15", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != "table4" {
		t.Fatalf("fig15 resolved to %s", a.ID)
	}
}

func TestFig11Analytic(t *testing.T) {
	rep, err := Fig11(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables) != 1 || len(rep.Tables[0].Rows) != 11 {
		t.Fatalf("unexpected table shape")
	}
	// First row (t=0) must be 0.9 for all u; last row (t=T) 0.8.
	first, last := rep.Tables[0].Rows[0], rep.Tables[0].Rows[10]
	for _, cell := range first[1:] {
		if cell != "0.9000" {
			t.Fatalf("t=0 ratio %s", cell)
		}
	}
	for _, cell := range last[1:] {
		if cell != "0.8000" {
			t.Fatalf("t=T ratio %s", cell)
		}
	}
}

func TestTable2StorageEfficiency(t *testing.T) {
	rep, err := Table2(Options{Scale: 0.2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	tb := rep.Tables[0]
	if len(tb.Rows) != 6 {
		t.Fatalf("%d dataset rows", len(tb.Rows))
	}
	// Every compression ratio must be > 100x (the paper reports 622x+).
	for _, row := range tb.Rows {
		ratio := row[4]
		if !strings.HasSuffix(ratio, "x") {
			t.Fatalf("ratio cell %q", ratio)
		}
	}
}

func TestBuildPolicyRegistry(t *testing.T) {
	ds, err := cifar10(Options{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range PolicyNames() {
		p, err := BuildPolicy(name, PolicyParams{Dataset: ds, Capacity: 10, Epochs: 3, Seed: 1})
		if err != nil {
			t.Fatalf("BuildPolicy(%s): %v", name, err)
		}
		if p.Name() == "" {
			t.Fatalf("policy %s has empty name", name)
		}
		if displayName(name) == "" {
			t.Fatalf("displayName(%s) empty", name)
		}
	}
	if _, err := BuildPolicy("bogus", PolicyParams{Dataset: ds}); err == nil {
		t.Fatal("unknown policy accepted")
	}
}

func TestFig3bSmoke(t *testing.T) {
	rep, err := Run("fig3b", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 4 {
		t.Fatalf("fig3b rows %d", len(rep.Tables[0].Rows))
	}
	if rep.CSV() == "" || rep.String() == "" {
		t.Fatal("report renders empty")
	}
}

func TestTable1Smoke(t *testing.T) {
	rep, err := Run("table1", tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tables[0].Rows) != 4 {
		t.Fatalf("table1 rows %d", len(rep.Tables[0].Rows))
	}
}

// TestRunAllSmoke executes every experiment at miniature scale, verifying
// each produces populated tables and notes. This is the coverage backstop
// for the whole harness; the real numbers come from `spiderbench`.
func TestRunAllSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment")
	}
	reps, err := RunAll(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(reps) != len(registry) {
		t.Fatalf("RunAll returned %d reports", len(reps))
	}
	for _, rep := range reps {
		if len(rep.Tables) == 0 {
			t.Errorf("%s: no tables", rep.ID)
		}
		for _, tb := range rep.Tables {
			if len(tb.Rows) == 0 {
				t.Errorf("%s: empty table %q", rep.ID, tb.Title)
			}
		}
		if rep.Title == "" {
			t.Errorf("%s: no title", rep.ID)
		}
		if out := rep.String(); len(out) < 40 {
			t.Errorf("%s: suspiciously short render", rep.ID)
		}
	}
}

func TestCapacityFor(t *testing.T) {
	ds, _ := cifar10(Options{Scale: 0.05, Seed: 1})
	if c := capacityFor(ds, 0.5); c != ds.Len()/2 {
		t.Fatalf("capacityFor(0.5) = %d (n=%d)", c, ds.Len())
	}
	if c := capacityFor(ds, 0.000001); c != 1 {
		t.Fatalf("capacity floor = %d", c)
	}
}
