package experiments

import (
	"fmt"
	"time"

	"spidercache/internal/dataset"
	"spidercache/internal/metrics"
	"spidercache/internal/nn"
	"spidercache/internal/policy"
	"spidercache/internal/trainer"
)

// Fig3a reproduces the training-time breakdown (Data Loading /
// Preprocessing / Computation) across the four models with no cache. The
// paper reports Loading+Computation > 95% of epoch time with Loading alone
// above 60%.
func Fig3a(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(2)
	t := metrics.NewTable("Fig 3(a): epoch time breakdown, no cache (CIFAR10-like)",
		"Model", "Loading%", "Preproc%", "Compute%", "Epoch")
	var notes []string
	for i, model := range nn.AllProfiles() {
		pol, err := policy.NewBaselineLRU(ds.Len(), 0, opt.Seed+uint64(i))
		if err != nil {
			return nil, err
		}
		res, err := trainer.Run(runConfig(opt, ds, model, epochs, opt.Seed+uint64(i)), pol)
		if err != nil {
			return nil, err
		}
		last := res.Epochs[len(res.Epochs)-1]
		// Shares are over the summed stage times (the paper's stacked
		// breakdown); the wall clock overlaps loading with compute.
		total := float64(last.LoadTime + last.PreprocTime + last.ComputeTime + last.ISTime)
		loadPct := float64(last.LoadTime) / total * 100
		t.AddRow(model.Name,
			fmt.Sprintf("%.1f", loadPct),
			fmt.Sprintf("%.1f", float64(last.PreprocTime)/total*100),
			fmt.Sprintf("%.1f", float64(last.ComputeTime+last.ISTime)/total*100),
			last.EpochTime.Round(time.Millisecond).String())
		if loadPct <= 60 {
			notes = append(notes, fmt.Sprintf("%s loading share %.1f%% (paper: >60%%)", model.Name, loadPct))
		}
	}
	if notes == nil {
		notes = []string{"all models: loading > 60% of epoch time, matching the paper"}
	}
	return &Report{ID: "fig3a", Title: "I/O dominates DNN training time", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

// Fig3b reproduces the conventional-policy study: LRU and LFU hit ratios
// under random sampling barely exceed the cache fraction itself.
func Fig3b(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(4)
	fracs := []float64{0.10, 0.25, 0.50, 0.75}
	t := metrics.NewTable("Fig 3(b): LRU/LFU hit ratio (%) vs cache size, random sampling, ResNet18",
		"CacheSize", "LRU", "LFU")
	for _, frac := range fracs {
		row := []string{fmt.Sprintf("%.0f%%", frac*100)}
		for _, name := range []string{"baseline", "lfu"} {
			res, err := runPolicy(name, ds, nn.ResNet18, epochs, capacityFor(ds, frac), opt)
			if err != nil {
				return nil, err
			}
			row = append(row, percent(res.AvgHitRatio()))
		}
		t.AddRow(row...)
	}
	return &Report{
		ID:     "fig3b",
		Title:  "Conventional caching fails under random sampling",
		Tables: []*metrics.Table{t},
		Notes:  []string{"paper: hit ratio tracks cache size with no amplification; same shape expected here"},
	}, nil
}

// Fig5 reproduces the sample-frequency study: under default sampling every
// item is seen exactly once per epoch; under importance sampling access
// counts spread out and shift across epochs.
func Fig5(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(12)
	pol, err := BuildPolicy("spider", PolicyParams{Dataset: ds, Capacity: capacityFor(ds, 0.2), Epochs: epochs, Seed: opt.Seed, Metrics: opt.Metrics, Workers: opt.Threads})
	if err != nil {
		return nil, err
	}
	rec := &orderRecorder{Policy: pol, n: ds.Len()}
	if _, err := trainer.Run(runConfig(opt, ds, nn.ResNet18, epochs, opt.Seed), rec); err != nil {
		return nil, err
	}

	picks := []int{0, epochs / 2, epochs - 1}
	t := metrics.NewTable("Fig 5: per-sample access-count distribution (% of dataset)",
		"Sampler", "Epoch", "0x", "1x", "2x", "3x", ">=4x")
	t.AddRow("default", "any", "0.0", "100.0", "0.0", "0.0", "0.0")
	for _, e := range picks {
		if e >= len(rec.counts) {
			continue
		}
		h := histogram(rec.counts[e], ds.Len())
		t.AddRow("graph-IS", fmt.Sprintf("%d", e+1), h[0], h[1], h[2], h[3], h[4])
	}
	return &Report{
		ID:     "fig5",
		Title:  "Importance sampling skews per-epoch access frequency",
		Tables: []*metrics.Table{t},
		Notes:  []string{"paper: IS yields 0x..4x spread that shifts across epochs; default sampling is uniform 1x"},
	}, nil
}

// orderRecorder wraps a policy and records per-epoch access counts.
type orderRecorder struct {
	policy.Policy
	n      int
	counts [][]int
}

// EpochOrder intercepts the wrapped policy's epoch order to build the
// per-epoch access histogram.
func (r *orderRecorder) EpochOrder(epoch int) []int {
	order := r.Policy.EpochOrder(epoch)
	c := make([]int, r.n)
	for _, id := range order {
		c[id]++
	}
	r.counts = append(r.counts, c)
	return order
}

// histogram buckets access counts into {0,1,2,3,>=4} percentage strings.
func histogram(counts []int, n int) [5]string {
	var buckets [5]int
	for _, c := range counts {
		if c >= 4 {
			buckets[4]++
		} else {
			buckets[c]++
		}
	}
	var out [5]string
	for i, b := range buckets {
		out[i] = fmt.Sprintf("%.1f", float64(b)/float64(n)*100)
	}
	return out
}

// Fig6a reproduces the loss-variability observation: per-sample losses drift
// downward across epochs, so a given loss value means a different importance
// rank at different times — the flaw of loss-based IS in I/O-bound regimes.
func Fig6a(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(20)
	pol, err := policy.NewBaselineLRU(ds.Len(), 0, opt.Seed)
	if err != nil {
		return nil, err
	}
	rec := &lossRecorder{Policy: pol}
	res, err := trainer.Run(runConfig(opt, ds, nn.ResNet18, epochs, opt.Seed), rec)
	if err != nil {
		return nil, err
	}
	t := metrics.NewTable("Fig 6(a): training-loss distribution over epochs",
		"Epoch", "MeanLoss", "LossStd", "P90/P10 drift")
	step := epochs / 5
	if step < 1 {
		step = 1
	}
	for e := 0; e < epochs; e += step {
		mean := res.Epochs[e].TrainLoss
		std := rec.stds[e]
		t.AddRow(fmt.Sprintf("%d", e+1),
			fmt.Sprintf("%.3f", mean),
			fmt.Sprintf("%.3f", std),
			fmt.Sprintf("%.3f", mean+std))
	}
	return &Report{
		ID:     "fig6a",
		Title:  "Losses are incomparable across training periods",
		Tables: []*metrics.Table{t},
		Notes:  []string{"paper: the whole loss distribution shifts over time, so loss thresholds don't transfer across epochs"},
	}, nil
}

// lossRecorder wraps a policy and records the per-epoch std of observed
// per-sample losses.
type lossRecorder struct {
	policy.Policy
	cur  []float64
	stds []float64
}

// OnBatchEnd collects the batch's losses before delegating.
func (r *lossRecorder) OnBatchEnd(epoch int, fb []policy.Feedback) {
	for _, f := range fb {
		r.cur = append(r.cur, f.Loss)
	}
	r.Policy.OnBatchEnd(epoch, fb)
}

// OnEpochEnd closes the epoch's loss window before delegating.
func (r *lossRecorder) OnEpochEnd(epoch int, acc float64) {
	r.stds = append(r.stds, metrics.Std(r.cur))
	r.cur = r.cur[:0]
	r.Policy.OnEpochEnd(epoch, acc)
}

// Fig6b reproduces the accuracy-degradation observation: iCache's random
// replacement boosts hit ratio but hurts final accuracy relative to the
// baseline.
func Fig6b(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(25)
	capacity := capacityFor(ds, 0.2)
	t := metrics.NewTable("Fig 6(b): random replacement hurts accuracy (CIFAR10-like, ResNet18, 20% cache)",
		"Policy", "FinalAcc%", "BestAcc%", "AvgHit%")
	for _, name := range []string{"baseline", "icache"} {
		res, err := runPolicy(name, ds, nn.ResNet18, epochs, capacity, opt)
		if err != nil {
			return nil, err
		}
		t.AddRow(displayName(name), percent(res.FinalAcc), percent(res.BestAcc), percent(res.AvgHitRatio()))
	}
	return &Report{
		ID:     "fig6b",
		Title:  "iCache's random replacement degrades accuracy",
		Tables: []*metrics.Table{t},
		Notes:  []string{"paper: iCache's hit ratio exceeds baseline but final accuracy falls below it"},
	}, nil
}

// Fig6c reproduces the importance-score dispersion study: σ of the score
// distribution rises early in training and falls as the model converges,
// across four (model, dataset) configurations.
func Fig6c(opt Options) (*Report, error) {
	c10, err := dataset.New(dataset.CIFAR10Like(opt.Scale, opt.Seed))
	if err != nil {
		return nil, err
	}
	c100, err := dataset.New(dataset.CIFAR100Like(opt.Scale, opt.Seed+1))
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(24)
	configs := []struct {
		model nn.Profile
		ds    *dataset.Dataset
	}{
		{nn.ResNet18, c10}, {nn.ResNet50, c10}, {nn.ResNet18, c100}, {nn.ResNet50, c100},
	}
	series := make([]metrics.Series, 0, len(configs))
	notes := []string{}
	for i, c := range configs {
		pol, err := BuildPolicy("spider", PolicyParams{Dataset: c.ds, Capacity: capacityFor(c.ds, 0.2), Epochs: epochs, Seed: opt.Seed + uint64(i), Metrics: opt.Metrics, Workers: opt.Threads})
		if err != nil {
			return nil, err
		}
		res, err := trainer.Run(runConfig(opt, c.ds, c.model, epochs, opt.Seed+uint64(i)), pol)
		if err != nil {
			return nil, err
		}
		sigmas := make([]float64, len(res.Epochs))
		for e, st := range res.Epochs {
			sigmas[e] = st.ScoreStd
		}
		name := fmt.Sprintf("%s/%s", c.model.Name, c.ds.Config.Name)
		series = append(series, metrics.Series{Name: name, Points: sigmas})
		peak := argmax(sigmas)
		notes = append(notes, fmt.Sprintf("%s: σ peaks at epoch %d then declines (paper: rise-then-fall)", name, peak+1))
	}
	t := seriesTable("Fig 6(c): std of importance scores per epoch", "Epoch", series)
	return &Report{ID: "fig6c", Title: "Importance-score variance rises then converges", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

func argmax(xs []float64) int {
	best, bi := xs[0], 0
	for i, x := range xs[1:] {
		if x > best {
			best, bi = x, i+1
		}
	}
	return bi
}

// seriesTable renders per-epoch series as a table with epoch rows.
func seriesTable(title, xlabel string, series []metrics.Series) *metrics.Table {
	header := []string{xlabel}
	n := 0
	for _, s := range series {
		header = append(header, s.Name)
		if len(s.Points) > n {
			n = len(s.Points)
		}
	}
	t := metrics.NewTable(title, header...)
	for i := 0; i < n; i++ {
		row := []string{fmt.Sprintf("%d", i+1)}
		for _, s := range series {
			if i < len(s.Points) {
				row = append(row, fmt.Sprintf("%.4f", s.Points[i]))
			} else {
				row = append(row, "")
			}
		}
		t.AddRow(row...)
	}
	return t
}
