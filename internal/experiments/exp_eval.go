package experiments

import (
	"fmt"
	"time"

	"spidercache/internal/dataset"
	"spidercache/internal/metrics"
	"spidercache/internal/nn"
	"spidercache/internal/trainer"
)

// bestModel returns the paper's best-performing profile for a dataset:
// ResNet18 for the CIFAR-likes, ResNet50 for the ImageNet-like.
func bestModel(ds *dataset.Dataset) nn.Profile {
	if ds.Config.Classes > 100 {
		return nn.ResNet50
	}
	return nn.ResNet18
}

// Table3 reproduces the IS-algorithm comparison (Fig 13 + Table 3): caching
// disabled, four sampling strategies compared on accuracy and loss across
// the three datasets. SpiderCache's graph-based IS should lead accuracy;
// iCache's compute-bound IS should trail even random sampling on the harder
// datasets.
func Table3(opt Options) (*Report, error) {
	dss, err := datasets(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(30)
	names := []string{"spider", "shade", "icache", "coordl"}
	acc := metrics.NewTable("Table 3: Top-1 accuracy (%), cache disabled",
		"Dataset", "SpiderCache", "SHADE", "iCache", "CoorDL")
	loss := metrics.NewTable("Fig 13(d-f): final training loss, cache disabled",
		"Dataset", "SpiderCache", "SHADE", "iCache", "CoorDL")
	for _, ds := range dss {
		accRow := []string{ds.Config.Name}
		lossRow := []string{ds.Config.Name}
		for _, name := range names {
			res, err := runPolicy(name, ds, bestModel(ds), epochs, 0, opt)
			if err != nil {
				return nil, err
			}
			accRow = append(accRow, percent(res.BestAcc))
			lossRow = append(lossRow, fmt.Sprintf("%.3f", res.Epochs[len(res.Epochs)-1].TrainLoss))
		}
		acc.AddRow(accRow...)
		loss.AddRow(lossRow...)
	}
	return &Report{
		ID:     "table3",
		Title:  "Effectiveness of the graph-based IS algorithm",
		Tables: []*metrics.Table{acc, loss},
		Notes: []string{
			"paper: SpiderCache > SHADE > CoorDL >= iCache on accuracy across all three datasets",
			"paper: loss gaps are largest on CIFAR100 (hardest task) and smallest on ImageNet",
		},
	}, nil
}

// Fig14 reproduces the hit-ratio sweep: seven policies, four models, four
// cache sizes on the CIFAR10-like workload. SpiderCache should lead at every
// size with the largest amplification at small caches.
func Fig14(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(6)
	fracs := []float64{0.10, 0.25, 0.50, 0.75}
	names := []string{"baseline", "coordl", "shade", "icache-imp", "icache", "spider-imp", "spider"}

	tables := make([]*metrics.Table, 0, len(nn.AllProfiles()))
	var bestAmp float64
	var ampSum, ampN float64
	for _, model := range nn.AllProfiles() {
		t := metrics.NewTable(
			fmt.Sprintf("Fig 14: avg epoch hit ratio (%%), %s on CIFAR10-like", model.Name),
			append([]string{"Policy"}, "10%", "25%", "50%", "75%")...)
		base := make([]float64, len(fracs))
		rows := make(map[string][]float64, len(names))
		for _, name := range names {
			vals := make([]float64, len(fracs))
			for fi, frac := range fracs {
				res, err := runPolicy(name, ds, model, epochs, capacityFor(ds, frac), opt)
				if err != nil {
					return nil, err
				}
				vals[fi] = res.AvgHitRatio()
			}
			rows[name] = vals
			if name == "baseline" {
				copy(base, vals)
			}
		}
		for _, name := range names {
			vals := rows[name]
			cells := []string{displayName(name)}
			for fi := range fracs {
				cells = append(cells, percent(vals[fi]))
				if name == "spider" && base[fi] > 0 {
					amp := vals[fi] / base[fi]
					ampSum += amp
					ampN++
					if amp > bestAmp {
						bestAmp = amp
					}
				}
			}
			t.AddRow(cells...)
		}
		tables = append(tables, t)
	}
	notes := []string{
		fmt.Sprintf("SpiderCache vs Baseline amplification: up to %.2fx, avg %.2fx (paper: up to 8.5x, avg 4.15x)", bestAmp, ampSum/ampN),
		"expected ordering per cache size: SpiderCache > iCache > SHADE ~ SpiderCache-imp > CoorDL > iCache-imp > Baseline",
	}
	return &Report{ID: "fig14", Title: "Cache hit ratio across policies, models and cache sizes", Tables: tables, Notes: notes}, nil
}

// Table4 reproduces the end-to-end comparison (Fig 15 + Tables 4 and 5):
// total training time and final accuracy for the five full policies at a 20%
// cache. SpiderCache should be fastest while holding the best accuracy.
func Table4(opt Options) (*Report, error) {
	dss, err := datasets(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(40)
	names := []string{"spider", "shade", "icache", "coordl", "baseline"}
	timeT := metrics.NewTable("Table 4: total training time (simulated)",
		"Dataset", "SpiderCache", "SHADE", "iCache", "CoorDL", "Baseline", "Speedup")
	accT := metrics.NewTable("Table 5: end-to-end Top-1 accuracy (%)",
		"Dataset", "SpiderCache", "SHADE", "iCache", "CoorDL", "Baseline")
	var maxSpeed, sumSpeed float64
	for _, ds := range dss {
		capacity := capacityFor(ds, 0.2)
		times := make([]time.Duration, len(names))
		timeRow := []string{ds.Config.Name}
		accRow := []string{ds.Config.Name}
		for i, name := range names {
			res, err := runPolicy(name, ds, bestModel(ds), epochs, capacity, opt)
			if err != nil {
				return nil, err
			}
			times[i] = res.TotalTime
			timeRow = append(timeRow, res.TotalTime.Round(time.Millisecond).String())
			accRow = append(accRow, percent(res.BestAcc))
		}
		speed := float64(times[len(times)-1]) / float64(times[0])
		sumSpeed += speed
		if speed > maxSpeed {
			maxSpeed = speed
		}
		timeRow = append(timeRow, fmt.Sprintf("%.2fx", speed))
		timeT.AddRow(timeRow...)
		accT.AddRow(accRow...)
	}
	notes := []string{
		fmt.Sprintf("SpiderCache speedup over Baseline: up to %.2fx, avg %.2fx (paper: up to 2.33x, avg 2.21x)", maxSpeed, sumSpeed/float64(len(dss))),
		"paper ordering on time: SpiderCache < iCache < SHADE < CoorDL < Baseline; on accuracy: SpiderCache highest, iCache lowest",
	}
	return &Report{ID: "table4", Title: "End-to-end performance (20% cache)", Tables: []*metrics.Table{timeT, accT}, Notes: notes}, nil
}

// Table6 reproduces the elastic-manager study (Fig 16 + Table 6): a static
// 90:10 split versus dynamic 90->80 and 90->50 shifts. Lower final
// imp-ratios trade a little accuracy for better late-stage hit ratio and
// shorter training time.
func Table6(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(30)
	capacity := capacityFor(ds, 0.2)
	strategies := []struct {
		label          string
		rStart, rEnd   float64
		disableElastic bool
	}{
		{"90%", 0.90, 0.90, true},
		{"90%-80%", 0.90, 0.80, false},
		{"90%-50%", 0.90, 0.50, false},
	}

	summary := metrics.NewTable("Table 6: end-to-end comparison under different Imp-Ratio",
		"Strategy", "Top-1 Acc%", "TrainTime", "AvgHit%", "LateHit%")
	series := make([]metrics.Series, 0, len(strategies))
	for i, s := range strategies {
		pol, err := BuildPolicy("spider", PolicyParams{
			Dataset: ds, Capacity: capacity, Epochs: epochs, Seed: opt.Seed + uint64(i),
			RStart: s.rStart, REnd: s.rEnd, DisableElastic: s.disableElastic,
			Metrics: opt.Metrics, Workers: opt.Threads,
		})
		if err != nil {
			return nil, err
		}
		res, err := trainer.Run(runConfig(opt, ds, nn.ResNet18, epochs, opt.Seed+uint64(i)), pol)
		if err != nil {
			return nil, err
		}
		hits := make([]float64, len(res.Epochs))
		for e, st := range res.Epochs {
			hits[e] = st.HitRatio()
		}
		late := metrics.Mean(hits[len(hits)*3/4:])
		summary.AddRow(s.label, percent(res.BestAcc),
			res.TotalTime.Round(time.Millisecond).String(),
			percent(res.AvgHitRatio()), percent(late))
		series = append(series, metrics.Series{Name: s.label, Points: hits})
	}
	hitCurves := seriesTable("Fig 16(a): per-epoch total hit ratio", "Epoch", series)
	return &Report{
		ID:     "table6",
		Title:  "Effectiveness of the Elastic Cache Manager",
		Tables: []*metrics.Table{summary, hitCurves},
		Notes: []string{
			"paper: static 90% hit ratio sags in late epochs; 90-80 stabilises it; 90-50 lifts it further at a small accuracy cost",
			"paper Table 6: acc 81.63 / 81.44 / 78.87, time 165 / 125 / 109 min — same monotone trade-off expected here",
		},
	}, nil
}

// Fig17 reproduces the multi-GPU scaling study: per-epoch time for 1-4
// data-parallel workers, Baseline vs SpiderCache. Because the remote link is
// shared, the I/O-bound Baseline barely scales while SpiderCache's hits keep
// shrinking compute, so the gap widens with worker count.
func Fig17(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(4)
	capacity := capacityFor(ds, 0.2)
	t := metrics.NewTable("Fig 17: avg per-epoch time vs simulated GPU count (CIFAR10-like, ResNet18)",
		"GPUs", "Baseline", "SpiderCache", "Gap")
	for workers := 1; workers <= 4; workers++ {
		var times [2]time.Duration
		for i, name := range []string{"baseline", "spider"} {
			pol, err := BuildPolicy(name, PolicyParams{Dataset: ds, Capacity: capacity, Epochs: epochs, Seed: opt.Seed + uint64(workers), Metrics: opt.Metrics, Workers: opt.Threads})
			if err != nil {
				return nil, err
			}
			cfg := runConfig(opt, ds, nn.ResNet18, epochs, opt.Seed+uint64(workers))
			cfg.Workers = workers
			// Stall accounting (no prefetch overlap): Fig 17's comparison is
			// about how much of the epoch each policy spends blocked on the
			// shared remote link as compute scales out.
			cfg.SerialLoading = true
			res, err := trainer.Run(cfg, pol)
			if err != nil {
				return nil, err
			}
			times[i] = res.TotalTime / time.Duration(epochs)
		}
		t.AddRow(fmt.Sprintf("%d", workers),
			times[0].Round(time.Millisecond).String(),
			times[1].Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", float64(times[0])/float64(times[1])))
	}
	return &Report{
		ID:     "fig17",
		Title:  "Multi-GPU training",
		Tables: []*metrics.Table{t},
		Notes:  []string{"paper: SpiderCache's advantage grows with GPU count because it removes the shared I/O bottleneck"},
	}, nil
}
