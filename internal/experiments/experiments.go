// Package experiments regenerates every table and figure of the paper's
// evaluation (Sections 2, 3, 5 and 6) on the simulated substrate. Each
// experiment returns a Report of paper-style tables; the `spiderbench` CLI
// and the repository's benchmark suite are thin wrappers over this package.
//
// Experiment IDs (see DESIGN.md §4 for the full index):
//
//	fig3a fig3b fig5 fig6a fig6b fig6c          — motivation studies
//	fig11 table1 table2                         — design & overhead analyses
//	table3 fig14 table4 table6 fig17            — evaluation
//
// (fig12 is covered by table1, fig13 by table3, fig15/table5 by table4,
// fig16 by table6.)
package experiments

import (
	"fmt"
	"sort"
	"strings"

	"spidercache/internal/metrics"
	"spidercache/internal/telemetry"
	"spidercache/internal/tensor"
)

// Options tunes the scale of every experiment.
type Options struct {
	// Scale multiplies dataset sizes; 1.0 is the repository default
	// (thousands of samples), tests run smaller.
	Scale float64
	// EpochOverride replaces each experiment's default epoch count when
	// positive.
	EpochOverride int
	// Seed randomises the whole experiment deterministically.
	Seed uint64
	// Metrics receives serving-path and cache telemetry from every
	// training run the experiment performs; nil disables recording.
	Metrics *telemetry.Registry
	// Threads caps CPU parallelism for the run: it is applied to the
	// tensor kernels (tensor.SetWorkers) and to SpiderCache batch scoring.
	// 0 keeps the defaults (GOMAXPROCS); 1 forces fully serial execution.
	// Parallel and serial runs produce identical numbers.
	Threads int
}

// DefaultOptions returns full-scale settings.
func DefaultOptions() Options { return Options{Scale: 1.0, Seed: 42} }

func (o *Options) fillDefaults() {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
}

// epochs resolves an experiment's default epoch count against the override.
func (o Options) epochs(def int) int {
	if o.EpochOverride > 0 {
		return o.EpochOverride
	}
	return def
}

// Report is the output of one experiment.
type Report struct {
	ID     string
	Title  string
	Tables []*metrics.Table
	// Notes records the paper's expected shape next to what was measured,
	// for EXPERIMENTS.md.
	Notes []string
}

// String renders the report for terminal output.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n\n", r.ID, r.Title)
	for _, t := range r.Tables {
		b.WriteString(t.String())
		b.WriteByte('\n')
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// CSV renders all tables of the report as CSV blocks.
func (r *Report) CSV() string {
	var b strings.Builder
	for _, t := range r.Tables {
		fmt.Fprintf(&b, "# %s\n", t.Title)
		b.WriteString(t.CSV())
		b.WriteByte('\n')
	}
	return b.String()
}

type runner func(Options) (*Report, error)

var registry = map[string]runner{
	"fig3a":  Fig3a,
	"fig3b":  Fig3b,
	"fig5":   Fig5,
	"fig6a":  Fig6a,
	"fig6b":  Fig6b,
	"fig6c":  Fig6c,
	"fig8":   Fig8,
	"fig11":  Fig11,
	"table1": Table1,
	"table2": Table2,
	"table3": Table3,
	"fig14":  Fig14,
	"table4": Table4,
	"table6": Table6,
	"fig17":  Fig17,
	// Beyond the paper: design-choice ablations (DESIGN.md §5), the
	// neighborhood-snapshot staleness-vs-accuracy sweep (DESIGN.md §7),
	// and the wire-protocol semantic-serving threshold sweep (DESIGN.md §9).
	"ablation": Ablation,
	"snapshot": Snapshot,
	"nget":     NGet,
}

// aliases map alternative paper labels onto canonical experiment IDs.
var aliases = map[string]string{
	"fig12":  "table1",
	"fig13":  "table3",
	"fig15":  "table4",
	"table5": "table4",
	"fig16":  "table6",
}

// List returns all canonical experiment IDs in a stable order.
func List() []string {
	ids := make([]string, 0, len(registry))
	//lint:ignore determinism order-insensitive collect; sorted before returning
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given (possibly aliased) ID.
// A positive opt.Threads caps process-wide tensor-kernel parallelism for
// the duration of the run (and beyond: tensor.SetWorkers is global state).
func Run(id string, opt Options) (*Report, error) {
	opt.fillDefaults()
	if opt.Threads > 0 {
		tensor.SetWorkers(opt.Threads)
	}
	canonical := id
	if a, ok := aliases[id]; ok {
		canonical = a
	}
	fn, ok := registry[canonical]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (known: %s)", id, strings.Join(List(), ", "))
	}
	return fn(opt)
}

// RunAll executes every canonical experiment in order.
func RunAll(opt Options) ([]*Report, error) {
	opt.fillDefaults()
	var out []*Report
	for _, id := range List() {
		r, err := Run(id, opt)
		if err != nil {
			return out, fmt.Errorf("experiments: %s: %w", id, err)
		}
		out = append(out, r)
	}
	return out, nil
}
