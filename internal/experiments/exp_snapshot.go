package experiments

import (
	"fmt"
	"math"

	"spidercache/internal/metrics"
	"spidercache/internal/nn"
	"spidercache/internal/semgraph"
	"spidercache/internal/trainer"
)

// snapshotBudgets is the drift-budget sweep grid: 0 disables snapshots
// (always-fresh baseline), 0.15 is the calibrated default, and 0.4 sits
// close to the homophily distance threshold where served neighbourhoods can
// no longer be trusted.
var snapshotBudgets = []float64{0, 0.05, 0.10, 0.15, 0.25, 0.40}

// Snapshot sweeps the neighborhood-snapshot drift budget and reports the
// staleness-vs-accuracy trade: how many SearchKNN calls each budget saves,
// what fraction of scoring is served from snapshots, and what it costs in
// final accuracy relative to always-fresh scoring. The budget-0 row is the
// exact SpiderCache baseline (bit-identical scoring); every other row reuses
// a sample's cached kNN result while its embedding stays within the budget.
func Snapshot(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(8)
	capacity := capacityFor(ds, 0.2)

	t := metrics.NewTable("Snapshot drift budget: staleness vs accuracy (CIFAR10-like, SpiderCache)",
		"Drift", "FinalAcc%", "Hit%", "Sub%", "SearchKNN/ep", "SnapHit%", "SearchRed")

	var baseAcc, baseSearches float64
	var defaultRed float64
	var deviations []string
	for _, budget := range snapshotBudgets {
		pol, err := BuildPolicy("spider", PolicyParams{
			Dataset:       ds,
			Capacity:      capacity,
			Epochs:        epochs,
			Seed:          opt.Seed + 99,
			Metrics:       opt.Metrics,
			Workers:       opt.Threads,
			SnapshotDrift: budget,
		})
		if err != nil {
			return nil, err
		}
		res, err := trainer.Run(runConfig(opt, ds, nn.ResNet18, epochs, opt.Seed+17), pol)
		if err != nil {
			return nil, err
		}

		var searches, snapHits, hitCache, hitSub, requests int64
		for _, e := range res.Epochs {
			searches += e.SearchKNN
			snapHits += e.SnapshotHits
			hitCache += int64(e.HitCache)
			hitSub += int64(e.HitSub)
			requests += int64(e.Requests)
		}
		searchesPerEpoch := float64(searches) / float64(len(res.Epochs))
		snapRate := 0.0
		if searches+snapHits > 0 {
			snapRate = float64(snapHits) / float64(searches+snapHits)
		}
		if budget == 0 {
			baseAcc = res.FinalAcc
			baseSearches = searchesPerEpoch
		}
		reduction := 1.0
		if searchesPerEpoch > 0 && baseSearches > 0 {
			reduction = baseSearches / searchesPerEpoch
		} else if baseSearches > 0 {
			reduction = math.Inf(1)
		}
		if budget == semgraph.DefaultSnapshotDrift {
			defaultRed = reduction
		}
		t.AddRow(fmt.Sprintf("%.2f", budget),
			percent(res.FinalAcc),
			percent(ratio(hitCache, requests)),
			percent(ratio(hitSub, requests)),
			fmt.Sprintf("%.0f", searchesPerEpoch),
			percent(snapRate),
			fmt.Sprintf("%.1fx", reduction))

		// Accuracy guardrail: flag budgets whose accuracy drops more than one
		// point below always-fresh scoring.
		if budget > 0 && res.FinalAcc < baseAcc-0.01 {
			deviations = append(deviations, fmt.Sprintf("deviation: drift %.2f accuracy %.1f%% fell more than 1pt below fresh baseline %.1f%%",
				budget, res.FinalAcc*100, baseAcc*100))
		}
	}

	notes := []string{
		"expected: SearchKNN/epoch falls monotonically with the budget while accuracy holds until the budget nears the homophily threshold (0.43)",
		fmt.Sprintf("default budget %.2f reduces SearchKNN calls %.1fx vs always-fresh", semgraph.DefaultSnapshotDrift, defaultRed),
	}
	notes = append(notes, deviations...)
	return &Report{ID: "snapshot", Title: "Neighborhood-snapshot staleness vs accuracy", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}
