package experiments

import (
	"fmt"
	"math"

	"spidercache/internal/kvserver"
	"spidercache/internal/metrics"
	"spidercache/internal/xrand"
)

// ngetThresholds is the cosine-distance sweep grid for semantic serving:
// 0 disables the index (exact GET semantics), 0.3 is the calibrated
// default for the clustered key space below, and 0.8 sits past the
// cross-cluster separation where semantic substitution stops being safe.
var ngetThresholds = []float64{0, 0.05, 0.10, 0.20, 0.30, 0.50, 0.80}

// NGet calibrates the NGET serving threshold against a kvserver whose
// capacity holds only half the key population: every key is SET and
// ESET once, evictions leave a resident subset, and each key's own
// embedding is then queried at every threshold. Exact hits measure
// residency, NEAR hits measure semantic substitution from the HNSW
// index, and the cross-cluster rate measures substitution that crossed a
// semantic cluster boundary — the failure mode a calibrated threshold
// must keep at zero. The threshold-0 row is the exact-GET baseline.
func NGet(opt Options) (*Report, error) {
	opt.fillDefaults()
	keys := int(4000 * opt.Scale)
	if keys < 64 {
		keys = 64
	}
	capacity := keys / 2
	const dim = 16
	clusters := keys / 32
	if clusters < 4 {
		clusters = 4
	}
	embs := ngetEmbeddings(opt.Seed, keys, dim, clusters)

	srv, err := kvserver.ServeWith("127.0.0.1:0", kvserver.Options{Capacity: capacity})
	if err != nil {
		return nil, err
	}
	defer srv.Close()
	c, err := kvserver.Dial(srv.Addr())
	if err != nil {
		return nil, err
	}
	defer c.Close()

	// Preload sequentially over one connection: with the mutex store's
	// strict LRU this makes the resident subset a deterministic function
	// of the seed alone.
	key := func(id int) string { return fmt.Sprintf("k:%d", id) }
	const chunk = 64
	p := c.Pipeline()
	for id := 0; id < keys; id++ {
		p.Set(key(id), []byte(key(id)))
		p.ESet(key(id), embs[id])
		if p.Len() >= chunk || id == keys-1 {
			if err := execAll(p); err != nil {
				return nil, err
			}
		}
	}

	t := metrics.NewTable("NGET threshold calibration: semantic serving on a half-resident clustered key space",
		"Threshold", "Exact%", "Near%", "Miss%", "EffHit%", "MeanDist", "Cross%")

	var baseHit, defaultEff, defaultCross float64
	var deviations []string
	for _, threshold := range ngetThresholds {
		var exact, near, miss, cross int
		var distSum float64
		for lo := 0; lo < keys; lo += chunk {
			hi := lo + chunk
			if hi > keys {
				hi = keys
			}
			for id := lo; id < hi; id++ {
				p.NGet(key(id), embs[id], threshold)
			}
			rs, err := p.Exec()
			if err != nil {
				return nil, err
			}
			for i, r := range rs {
				if r.Err != nil {
					return nil, r.Err
				}
				id := lo + i
				switch {
				case r.Near != nil:
					near++
					distSum += r.Near.Dist
					var nbID int
					if _, err := fmt.Sscanf(r.Near.Key, "k:%d", &nbID); err != nil {
						return nil, fmt.Errorf("nget: unexpected neighbor key %q", r.Near.Key)
					}
					if nbID%clusters != id%clusters {
						cross++
					}
				case r.Found:
					exact++
				default:
					miss++
				}
			}
		}

		total := float64(keys)
		eff := float64(exact+near) / total
		meanDist := 0.0
		if near > 0 {
			meanDist = distSum / float64(near)
		}
		crossRate := 0.0
		if near > 0 {
			crossRate = float64(cross) / float64(near)
		}
		if threshold == 0 {
			baseHit = eff
		}
		if threshold == 0.30 {
			defaultEff, defaultCross = eff, crossRate
		}
		t.AddRow(fmt.Sprintf("%.2f", threshold),
			percent(float64(exact)/total),
			percent(float64(near)/total),
			percent(float64(miss)/total),
			percent(eff),
			fmt.Sprintf("%.4f", meanDist),
			percent(crossRate))

		// Guardrails on the curve's shape: semantic serving must never
		// lose exact hits, and the calibrated band must stay clean of
		// cross-cluster substitution.
		if eff < baseHit {
			deviations = append(deviations, fmt.Sprintf(
				"deviation: threshold %.2f effective hit %.1f%% fell below the exact-GET baseline %.1f%%",
				threshold, eff*100, baseHit*100))
		}
		if threshold > 0 && threshold <= 0.30 && crossRate > 0 {
			deviations = append(deviations, fmt.Sprintf(
				"deviation: threshold %.2f served %.1f%% cross-cluster substitutes; the calibrated band should serve none",
				threshold, crossRate*100))
		}
	}

	notes := []string{
		"expected: Near% grows with the threshold and saturates once every evicted key's cluster mates are reachable; Cross% stays 0 until the threshold nears the cross-cluster distance (~1)",
		fmt.Sprintf("default threshold 0.30 lifts the effective hit ratio from %.1f%% (exact-only) to %.1f%% with %.1f%% cross-cluster substitution",
			baseHit*100, defaultEff*100, defaultCross*100),
	}
	notes = append(notes, deviations...)
	return &Report{ID: "nget", Title: "Semantic-hit threshold calibration over the wire", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

// execAll flushes a pipeline and surfaces the first per-op error.
func execAll(p *kvserver.Pipeline) error {
	rs, err := p.Exec()
	if err != nil {
		return err
	}
	for _, r := range rs {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// ngetEmbeddings builds one unit-norm embedding per key from `clusters`
// random centroids plus small within-cluster noise (key id belongs to
// cluster id%clusters): same-cluster cosine distances land around
// 10^-2, cross-cluster pairs are near-orthogonal, so the sweep grid
// actually brackets the interesting region.
func ngetEmbeddings(seed uint64, n, dim, clusters int) [][]float32 {
	rng := xrand.New(seed ^ 0x5ca1ab1e)
	cents := make([][]float64, clusters)
	for ci := range cents {
		v := make([]float64, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		ngetNormalize(v)
		cents[ci] = v
	}
	const noise = 0.08
	out := make([][]float32, n)
	v := make([]float64, dim)
	for id := range out {
		cent := cents[id%clusters]
		for i := range v {
			v[i] = cent[i] + noise*rng.NormFloat64()
		}
		ngetNormalize(v)
		emb := make([]float32, dim)
		for i := range v {
			emb[i] = float32(v[i])
		}
		out[id] = emb
	}
	return out
}

func ngetNormalize(v []float64) {
	var n float64
	for _, x := range v {
		n += x * x
	}
	n = math.Sqrt(n)
	if n == 0 {
		v[0] = 1
		return
	}
	for i := range v {
		v[i] /= n
	}
}
