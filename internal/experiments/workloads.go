package experiments

import (
	"fmt"
	"strings"

	"spidercache/internal/core"
	"spidercache/internal/dataset"
	"spidercache/internal/elastic"
	"spidercache/internal/hnsw"
	"spidercache/internal/nn"
	"spidercache/internal/policy"
	"spidercache/internal/semgraph"
	"spidercache/internal/telemetry"
	"spidercache/internal/trainer"
)

// PolicyParams carries everything the policy factory needs.
type PolicyParams struct {
	Dataset  *dataset.Dataset
	Capacity int // cache budget in items
	Epochs   int // planned training length (elastic T)
	Seed     uint64

	// Spider-specific overrides; zero values mean paper defaults
	// (RStart 0.90, REnd 0.80, elastic enabled).
	RStart         float64
	REnd           float64
	DisableElastic bool

	// Metrics receives cache-internals telemetry (SpiderCache policies
	// only); nil disables recording.
	Metrics *telemetry.Registry

	// Workers bounds the SpiderCache per-batch scoring fan-out: 0 uses
	// GOMAXPROCS, 1 forces serial scoring. Results are identical either way.
	Workers int

	// SnapshotDrift enables the grapher's neighborhood-snapshot cache for
	// the spider/spider-imp/graphaware-sem policies (see
	// semgraph.Config.SnapshotDrift); 0 keeps always-fresh scoring, except
	// for graphaware-sem which needs snapshots and defaults to
	// semgraph.DefaultSnapshotDrift.
	SnapshotDrift float64
}

// ValidatePolicy reports nil when name is buildable, or a descriptive
// error listing every accepted name.
func ValidatePolicy(name string) error {
	for _, n := range PolicyNames() {
		if n == name {
			return nil
		}
	}
	return fmt.Errorf("unknown policy %q (want one of %s)", name, strings.Join(PolicyNames(), ", "))
}

// PolicyNames lists every buildable policy in evaluation order.
func PolicyNames() []string {
	return []string{"baseline", "lfu", "coordl", "graphaware", "graphaware-sem", "shade", "icache-imp", "icache", "spider-imp", "spider"}
}

// BuildPolicy constructs a policy by its lowercase registry name.
func BuildPolicy(name string, p PolicyParams) (policy.Policy, error) {
	n := p.Dataset.Len()
	switch name {
	case "baseline":
		return policy.NewBaselineLRU(n, p.Capacity, p.Seed)
	case "lfu":
		return policy.NewLFU(n, p.Capacity, p.Seed)
	case "coordl":
		return policy.NewCoorDL(n, p.Capacity, p.Seed)
	case "graphaware":
		return policy.NewGraphAware(n, p.Capacity, p.Seed, labelNeighbors(p.Dataset.Labels, 8))
	case "graphaware-sem":
		return buildGraphAwareSem(p)
	case "shade":
		return policy.NewShade(n, p.Capacity, p.Seed)
	case "icache-imp":
		return policy.NewICacheImp(n, p.Capacity, p.Seed)
	case "icache":
		return policy.NewICache(n, p.Capacity, policy.DefaultICacheConfig(), p.Seed)
	case "spider-imp":
		return buildSpider(p, true)
	case "spider":
		return buildSpider(p, false)
	default:
		return nil, fmt.Errorf("experiments: %w", ValidatePolicy(name))
	}
}

func buildSpider(p PolicyParams, impOnly bool) (*core.SpiderCache, error) {
	epochs := p.Epochs
	if epochs < 1 {
		epochs = 1
	}
	ec := elastic.DefaultConfig(epochs)
	if p.RStart > 0 {
		ec.RStart = p.RStart
	}
	if p.REnd > 0 {
		ec.REnd = p.REnd
	}
	return core.New(core.Options{
		Capacity:         p.Capacity,
		Labels:           p.Dataset.Labels,
		Payloads:         p.Dataset.Payload,
		Elastic:          ec,
		TotalEpochs:      epochs,
		DisableHomophily: impOnly,
		DisableElastic:   p.DisableElastic,
		Metrics:          p.Metrics,
		Workers:          p.Workers,
		SnapshotDrift:    p.SnapshotDrift,
		Seed:             p.Seed,
	})
}

// buildGraphAwareSem wires the GraphAware cache to the learned semantic
// graph: a fresh grapher (HNSW index + snapshot cache) replaces the
// label-ring proxy as the neighbour source. Snapshots are mandatory here —
// CloseNeighbors lists are read from them between batches — so a zero
// SnapshotDrift falls back to the calibrated default budget.
func buildGraphAwareSem(p PolicyParams) (policy.Policy, error) {
	drift := p.SnapshotDrift
	if drift == 0 {
		drift = semgraph.DefaultSnapshotDrift
	}
	hc := hnsw.DefaultConfig()
	hc.Seed = p.Seed + 101
	idx, err := hnsw.New(hc)
	if err != nil {
		return nil, err
	}
	gc := semgraph.DefaultConfig()
	gc.SnapshotDrift = drift
	g, err := semgraph.New(gc, p.Dataset.Labels, idx)
	if err != nil {
		return nil, err
	}
	g.SetWorkers(p.Workers)
	g.SetMetrics(p.Metrics)
	return policy.NewGraphAwareSem(p.Dataset.Len(), p.Capacity, p.Seed, g)
}

// labelNeighbors derives a bounded-degree neighbour function from class
// labels: each sample's neighbours are the next k members of its class in
// a deterministic ring. The label graph is the coarsest proxy for the
// semantic similarity graph SpiderCache builds — samples of one class
// form a homophilous cluster — which is exactly the structure the
// graph-aware cache's score propagation exploits.
func labelNeighbors(labels []int, k int) func(id int) []int {
	byClass := map[int][]int{}
	for id, lab := range labels {
		byClass[lab] = append(byClass[lab], id)
	}
	ringPos := make([]int, len(labels))
	//lint:ignore determinism each id is in exactly one class list, so ringPos is independent of class iteration order
	for _, members := range byClass {
		for pos, id := range members {
			ringPos[id] = pos
		}
	}
	return func(id int) []int {
		if id < 0 || id >= len(labels) {
			return nil
		}
		members := byClass[labels[id]]
		deg := k
		if deg > len(members)-1 {
			deg = len(members) - 1
		}
		if deg <= 0 {
			return nil
		}
		out := make([]int, deg)
		for j := 0; j < deg; j++ {
			out[j] = members[(ringPos[id]+1+j)%len(members)]
		}
		return out
	}
}

// displayName maps registry names to the labels used in the paper's tables.
func displayName(name string) string {
	switch name {
	case "baseline":
		return "Baseline"
	case "lfu":
		return "LFU"
	case "coordl":
		return "CoorDL"
	case "graphaware":
		return "GraphAware"
	case "graphaware-sem":
		return "GraphAware-sem"
	case "shade":
		return "SHADE"
	case "icache-imp":
		return "iCache-imp"
	case "icache":
		return "iCache"
	case "spider-imp":
		return "SpiderCache-imp"
	case "spider":
		return "SpiderCache"
	default:
		return name
	}
}

// datasets returns the three evaluation datasets at the requested scale.
func datasets(opt Options) ([]*dataset.Dataset, error) {
	cfgs := []dataset.Config{
		dataset.CIFAR10Like(opt.Scale, opt.Seed),
		dataset.CIFAR100Like(opt.Scale, opt.Seed+1),
		dataset.ImageNetLike(opt.Scale*0.5, opt.Seed+2),
	}
	out := make([]*dataset.Dataset, len(cfgs))
	for i, c := range cfgs {
		ds, err := dataset.New(c)
		if err != nil {
			return nil, err
		}
		out[i] = ds
	}
	return out, nil
}

// cifar10 builds just the CIFAR10-like dataset.
func cifar10(opt Options) (*dataset.Dataset, error) {
	return dataset.New(dataset.CIFAR10Like(opt.Scale, opt.Seed))
}

// runConfig assembles a trainer config with repository defaults; the
// experiment Options contribute the telemetry registry.
func runConfig(opt Options, ds *dataset.Dataset, model nn.Profile, epochs int, seed uint64) trainer.Config {
	return trainer.Config{
		Dataset:    ds,
		Model:      model,
		Epochs:     epochs,
		BatchSize:  64,
		Workers:    1,
		PipelineIS: true,
		Metrics:    opt.Metrics,
		Seed:       seed,
	}
}

// runPolicy builds and trains one named policy, returning the run record.
func runPolicy(name string, ds *dataset.Dataset, model nn.Profile, epochs, capacity int, opt Options) (*trainer.Result, error) {
	pol, err := BuildPolicy(name, PolicyParams{Dataset: ds, Capacity: capacity, Epochs: epochs, Seed: opt.Seed + 99, Metrics: opt.Metrics, Workers: opt.Threads})
	if err != nil {
		return nil, err
	}
	return trainer.Run(runConfig(opt, ds, model, epochs, opt.Seed+17), pol)
}

// capacityFor converts a cache-size fraction into an item budget.
func capacityFor(ds *dataset.Dataset, frac float64) int {
	c := int(float64(ds.Len()) * frac)
	if c < 1 {
		c = 1
	}
	return c
}

// percent formats a ratio as "12.3".
func percent(x float64) string { return fmt.Sprintf("%.1f", x*100) }
