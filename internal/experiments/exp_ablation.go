package experiments

import (
	"fmt"
	"time"

	"spidercache/internal/core"
	"spidercache/internal/elastic"
	"spidercache/internal/metrics"
	"spidercache/internal/nn"
	"spidercache/internal/pq"
	"spidercache/internal/semgraph"
	"spidercache/internal/trainer"
)

// Ablation dissects SpiderCache's design choices on one workload: the
// Homophily Cache, the Elastic Cache Manager, the IS pipeline, and the ANN
// searcher backing the semantic graph (HNSW vs exact brute force vs
// PQ-compressed ADC). It is not a paper table — it is the experiment DESIGN.md
// §5 promises for validating that each mechanism earns its complexity.
func Ablation(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(15)
	capacity := capacityFor(ds, 0.2)

	type variant struct {
		label    string
		mutate   func(*core.Options)
		pipeline bool
	}
	variants := []variant{
		{"full (HNSW)", nil, true},
		{"no homophily", func(o *core.Options) { o.DisableHomophily = true }, true},
		{"no elastic", func(o *core.Options) { o.DisableElastic = true }, true},
		{"no pipeline", nil, false},
		{"brute-force ANN", func(o *core.Options) { o.Searcher = semgraph.NewBruteSearcher() }, true},
		{"PQ-compressed ANN", func(o *core.Options) {
			cfg := pq.DefaultConfig()
			cfg.Subspaces = 8 // ResNet18 embeddings are 32-dim
			if s, err := semgraph.NewPQSearcher(cfg, 300); err == nil {
				o.Searcher = s
			}
		}, true},
	}

	t := metrics.NewTable("Ablation: SpiderCache design choices (CIFAR10-like, ResNet18, 20% cache)",
		"Variant", "AvgHit%", "SubHit%", "BestAcc%", "TrainTime")
	for i, v := range variants {
		opts := core.Options{
			Capacity:    capacity,
			Labels:      ds.Labels,
			Payloads:    ds.Payload,
			Elastic:     elastic.DefaultConfig(epochs),
			TotalEpochs: epochs,
			Seed:        opt.Seed + uint64(i),
		}
		if v.mutate != nil {
			v.mutate(&opts)
		}
		pol, err := core.New(opts)
		if err != nil {
			return nil, err
		}
		cfg := runConfig(opt, ds, nn.ResNet18, epochs, opt.Seed+uint64(i))
		cfg.PipelineIS = v.pipeline
		res, err := trainer.Run(cfg, pol)
		if err != nil {
			return nil, err
		}
		var sub float64
		for _, e := range res.Epochs {
			if e.Requests > 0 {
				sub += float64(e.HitSub) / float64(e.Requests)
			}
		}
		sub /= float64(len(res.Epochs))
		t.AddRow(v.label,
			percent(res.AvgHitRatio()),
			fmt.Sprintf("%.1f", sub*100),
			percent(res.BestAcc),
			res.TotalTime.Round(time.Millisecond).String())
	}
	return &Report{
		ID:     "ablation",
		Title:  "Design-choice ablations",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"no homophily: hit ratio falls (substitute hits vanish) with accuracy roughly unchanged",
			"no elastic: late-stage hit ratio sags (see table6 for the per-epoch curves)",
			"no pipeline: training time grows by the exposed IS cost; hit/accuracy unchanged",
			"brute-force ANN: identical quality at higher CPU cost (the clock does not model host CPU)",
			"PQ ANN: small quantisation noise in scores; memory per vector drops ~20x (see table2)",
		},
	}, nil
}
