package experiments

import (
	"fmt"
	"time"

	"spidercache/internal/elastic"
	"spidercache/internal/hnsw"
	"spidercache/internal/metrics"
	"spidercache/internal/nn"
	"spidercache/internal/pq"
	"spidercache/internal/trainer"
	"spidercache/internal/xrand"
)

// Fig11 reproduces the analytic imp-ratio trajectories of Eq. 8: as the
// penalty factor u moves from 1 (accuracy growing fast) to 0 (growth
// stabilised) the ratio adjustment shifts from slow to fast.
func Fig11(opt Options) (*Report, error) {
	us := []float64{1.0, 0.75, 0.5, 0.25, 0.0}
	series := make([]metrics.Series, len(us))
	const steps = 10
	for i, u := range us {
		pts := make([]float64, steps+1)
		for s := 0; s <= steps; s++ {
			pts[s] = elastic.RatioAt(0.90, 0.80, float64(s)/steps, u, true)
		}
		series[i] = metrics.Series{Name: fmt.Sprintf("u=%.2f", u), Points: pts}
	}
	header := []string{"t/T"}
	for _, s := range series {
		header = append(header, s.Name)
	}
	t := metrics.NewTable("Fig 11: imp-ratio(t) for r_start=0.90, r_end=0.80", header...)
	for s := 0; s <= steps; s++ {
		row := []string{fmt.Sprintf("%.1f", float64(s)/steps)}
		for _, ser := range series {
			row = append(row, fmt.Sprintf("%.4f", ser.Points[s]))
		}
		t.AddRow(row...)
	}
	return &Report{
		ID:     "fig11",
		Title:  "Ratio Controller trajectories",
		Tables: []*metrics.Table{t},
		Notes:  []string{"u→1 slows the shift (protect accuracy); u→0 accelerates it (chase hit ratio)"},
	}, nil
}

// Table1 reproduces the overhead analysis (Table 1 + Fig 12): per-batch
// stage costs and how much of the graph-IS computation the pipeline hides.
// ResNet-class models hide IS entirely behind Stage 2; AlexNet/VGG16 need
// the deeper overlap with the next batch's Stage 1.
func Table1(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	epochs := opt.epochs(2)
	t := metrics.NewTable("Table 1 / Fig 12: per-batch stage times and pipeline hiding",
		"Model", "Stage1", "Stage2", "IS", "VisibleIS", "Hidden%", "Epoch(pipe)", "Epoch(no-pipe)")
	var notes []string
	for i, model := range nn.AllProfiles() {
		run := func(pipeline bool) (*trainer.Result, error) {
			pol, err := BuildPolicy("spider", PolicyParams{Dataset: ds, Capacity: capacityFor(ds, 0.2), Epochs: epochs, Seed: opt.Seed + uint64(i), Metrics: opt.Metrics, Workers: opt.Threads})
			if err != nil {
				return nil, err
			}
			cfg := runConfig(opt, ds, model, epochs, opt.Seed+uint64(i))
			cfg.PipelineIS = pipeline
			return trainer.Run(cfg, pol)
		}
		withPipe, err := run(true)
		if err != nil {
			return nil, err
		}
		noPipe, err := run(false)
		if err != nil {
			return nil, err
		}
		last := withPipe.Epochs[len(withPipe.Epochs)-1]
		batches := (ds.Len() + 63) / 64
		perBatch := func(d time.Duration) time.Duration { return d / time.Duration(batches) }
		stage1 := perBatch(last.LoadTime) + model.ForwardCost
		visible := perBatch(last.ISTime)
		hidden := (1 - float64(visible)/float64(model.ISCost)) * 100
		t.AddRow(model.Name,
			stage1.Round(time.Microsecond).String(),
			model.BackwardCost.String(),
			model.ISCost.String(),
			visible.Round(time.Microsecond).String(),
			fmt.Sprintf("%.1f", hidden),
			last.EpochTime.Round(time.Millisecond).String(),
			noPipe.Epochs[len(noPipe.Epochs)-1].EpochTime.Round(time.Millisecond).String())
		if hidden < 99 {
			notes = append(notes, fmt.Sprintf("%s: %.1f%% of IS hidden", model.Name, hidden))
		}
	}
	if notes == nil {
		notes = []string{"pipeline hides the IS stage completely for all models, matching the paper"}
	}
	return &Report{ID: "table1", Title: "Overhead analysis and pipeline mitigation", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

// paperDataset describes the geometry of one row of the paper's Table 2.
type paperDataset struct {
	name     string
	count    float64 // images
	rawBytes float64
}

// Table2 reproduces the storage-efficiency analysis: an HNSW index over
// PQ-compressed embeddings is measured per vector on a synthetic corpus,
// then projected onto the paper's dataset geometries.
func Table2(opt Options) (*Report, error) {
	n := int(4000 * opt.Scale)
	if n < 600 {
		n = 600
	}
	const dim = 64
	rng := xrand.New(opt.Seed)
	vecs := make([][]float64, n)
	for i := range vecs {
		v := make([]float64, dim)
		for j := range v {
			v[j] = rng.NormFloat64()
		}
		vecs[i] = v
	}

	idx, err := hnsw.New(hnsw.DefaultConfig())
	if err != nil {
		return nil, err
	}
	for i, v := range vecs {
		if err := idx.Upsert(i, v); err != nil {
			return nil, err
		}
	}
	pqCfg := pq.DefaultConfig()
	if n < pqCfg.Centroids {
		pqCfg.Centroids = n / 2
	}
	quant, err := pq.Train(pqCfg, vecs)
	if err != nil {
		return nil, err
	}

	// Per-vector index cost = PQ code + graph links + per-node overhead.
	rawVecBytes := int64(n) * dim * 8
	linkBytes := idx.MemoryBytes() - rawVecBytes
	perVector := float64(linkBytes)/float64(n) + float64(quant.CodeSize()) + 16

	rows := []paperDataset{
		{"ImageNet-1K", 1.2e6, 138e9},
		{"Open Images (V6)", 9e6, 600e9},
		{"ImageNet-21K", 14e6, 1.3e12},
		{"YFCC100M", 100e6, 100e12},
		{"LAION-400M", 400e6, 240e12},
		{"LAION-5B", 5e9, 2.5e15},
	}
	t := metrics.NewTable(
		fmt.Sprintf("Table 2: HNSW+PQ index efficiency (measured %.0f B/vector on %d synthetic embeddings)", perVector, n),
		"Dataset", "Images", "Raw", "Index(est)", "Compression")
	for _, r := range rows {
		est := r.count * perVector
		t.AddRow(r.name,
			fmt.Sprintf("%.1fM", r.count/1e6),
			humanBytes(r.rawBytes),
			humanBytes(est),
			fmt.Sprintf("%.0fx", r.rawBytes/est))
	}
	return &Report{
		ID:     "table2",
		Title:  "ANN index storage efficiency",
		Tables: []*metrics.Table{t},
		Notes: []string{
			"paper measures ~112 B/image for ImageNet-1K (134 MB / 1.2M); the measured per-vector cost here lands in the same order",
			"compression ratios scale with per-image raw size exactly as in the paper (larger images -> larger ratios)",
		},
	}, nil
}

func humanBytes(b float64) string {
	units := []string{"B", "KB", "MB", "GB", "TB", "PB"}
	i := 0
	for b >= 1000 && i < len(units)-1 {
		b /= 1000
		i++
	}
	return fmt.Sprintf("%.1f%s", b, units[i])
}
