package experiments

import (
	"fmt"
	"math"

	"spidercache/internal/metrics"
	"spidercache/internal/nn"
	"spidercache/internal/semgraph"
	"spidercache/internal/tensor"
	"spidercache/internal/trainer"
)

// Fig8 reproduces the embedding-space analysis behind the paper's Fig 8:
// as training progresses, same-class embeddings cluster and classes
// separate, and the population splits into the four states the graph-based
// score distinguishes (well-classified / boundary / isolated /
// misclassified).
//
// Deterministic same-seed runs share their epoch prefix, so snapshots at
// increasing depths are taken by re-running to 3 different epoch counts and
// analysing each final model's embeddings.
func Fig8(opt Options) (*Report, error) {
	ds, err := cifar10(opt)
	if err != nil {
		return nil, err
	}
	total := opt.epochs(20)
	checkpoints := []int{1, (total + 1) / 2, total}

	t := metrics.NewTable("Fig 8: embedding geometry and sample states over training",
		"Epoch", "IntraDist", "InterDist", "Separation", "Well%", "Boundary%", "Isolated%", "Misclass%")
	var seps []float64
	var misShares []float64
	for _, e := range checkpoints {
		pol, err := BuildPolicy("spider", PolicyParams{Dataset: ds, Capacity: capacityFor(ds, 0.2), Epochs: e, Seed: opt.Seed, Metrics: opt.Metrics, Workers: opt.Threads})
		if err != nil {
			return nil, err
		}
		res, err := trainer.Run(runConfig(opt, ds, nn.ResNet18, e, opt.Seed), pol)
		if err != nil {
			return nil, err
		}
		stats, err := embeddingStats(res, ds.Labels, featureMatrix(ds.Features))
		if err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("%d", e),
			fmt.Sprintf("%.3f", stats.intra),
			fmt.Sprintf("%.3f", stats.inter),
			fmt.Sprintf("%.2f", stats.inter/stats.intra),
			percent(stats.well), percent(stats.boundary),
			percent(stats.isolated), percent(stats.misclassified))
		seps = append(seps, stats.inter/stats.intra)
		misShares = append(misShares, stats.misclassified)
	}
	notes := []string{
		"paper: intra-class clustering and inter-class separation strengthen over training (Fig 8a)",
		"paper: the misclassified share shrinks as samples migrate to the well-classified state (Fig 8b)",
	}
	if seps[len(seps)-1] <= seps[0] {
		notes = append(notes, fmt.Sprintf("deviation: separation ratio did not grow (%.2f -> %.2f)", seps[0], seps[len(seps)-1]))
	}
	if misShares[len(misShares)-1] >= misShares[0] {
		notes = append(notes, fmt.Sprintf("deviation: misclassified share did not fall (%.1f%% -> %.1f%%)", misShares[0]*100, misShares[len(misShares)-1]*100))
	}
	return &Report{ID: "fig8", Title: "Embeddings in DNN training", Tables: []*metrics.Table{t}, Notes: notes}, nil
}

type embStats struct {
	intra, inter                            float64
	well, boundary, isolated, misclassified float64
}

// embeddingStats runs the trained model over the training features and
// analyses the (normalised) embedding geometry.
func embeddingStats(res *trainer.Result, labels []int, x *tensor.Matrix) (embStats, error) {
	fr := res.FinalModel.Forward(x, labels)
	n := len(labels)
	emb := make([][]float64, n)
	for i := range emb {
		emb[i] = semgraph.Normalize(fr.Embeddings[i])
	}

	// Pairwise distance sampling (full O(n^2) is unnecessary).
	var intraSum, interSum float64
	var intraN, interN int
	step := n/600 + 1
	for i := 0; i < n; i += step {
		for j := i + 1; j < n; j += step {
			d := dist(emb[i], emb[j])
			if labels[i] == labels[j] {
				intraSum += d
				intraN++
			} else {
				interSum += d
				interN++
			}
		}
	}
	var st embStats
	if intraN > 0 {
		st.intra = intraSum / float64(intraN)
	}
	if interN > 0 {
		st.inter = interSum / float64(interN)
	}

	// State classification through the same scoring machinery SpiderCache
	// uses, over an exact searcher.
	g, err := semgraph.New(semgraph.DefaultConfig(), labels, semgraph.NewBruteSearcher())
	if err != nil {
		return st, err
	}
	for i, v := range emb {
		if err := g.Update(i, v); err != nil {
			return st, err
		}
	}
	k := float64(g.K())
	var counted float64
	for i := 0; i < n; i += step {
		r, err := g.Score(i, emb[i])
		if err != nil {
			return st, err
		}
		same, other := float64(r.Same-1), float64(r.Other) // self excluded
		counted++
		switch {
		case other > same:
			st.misclassified++
		case same+other < k*0.25:
			st.isolated++
		case other >= 1:
			st.boundary++
		default:
			st.well++
		}
	}
	st.well /= counted
	st.boundary /= counted
	st.isolated /= counted
	st.misclassified /= counted
	return st, nil
}

func dist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}

func featureMatrix(rows [][]float64) *tensor.Matrix {
	x := tensor.New(len(rows), len(rows[0]))
	for i, r := range rows {
		copy(x.Row(i), r)
	}
	return x
}
