package core

import (
	"testing"

	"spidercache/internal/policy"
	"spidercache/internal/semgraph"
)

// fixture builds a SpiderCache over n samples (alternating 2-class labels,
// uniform payloads) backed by the exact brute-force searcher.
func fixture(t *testing.T, n, capacity int, mutate func(*Options)) *SpiderCache {
	t.Helper()
	labels := make([]int, n)
	payloads := make([]int, n)
	for i := range labels {
		labels[i] = i % 2
		payloads[i] = 100
	}
	opts := Options{
		Capacity:    capacity,
		Labels:      labels,
		Payloads:    payloads,
		TotalEpochs: 10,
		Searcher:    semgraph.NewBruteSearcher(),
		Seed:        1,
	}
	if mutate != nil {
		mutate(&opts)
	}
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// feedBatch pushes a batch of feedback with class-clustered embeddings:
// class 0 near (1,0), class 1 near (0,1); sample ids listed in ids.
func feedBatch(s *SpiderCache, ids []int, off float64) {
	fb := make([]policy.Feedback, len(ids))
	for i, id := range ids {
		var emb []float64
		if id%2 == 0 {
			emb = []float64{1, off * float64(i+1)}
		} else {
			emb = []float64{off * float64(i+1), 1}
		}
		fb[i] = policy.Feedback{ID: id, Loss: 1, Embedding: emb}
	}
	s.OnBatchEnd(0, fb)
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{Capacity: -1, Labels: []int{0}, Payloads: []int{1}, TotalEpochs: 1},
		{Capacity: 1, Labels: nil, Payloads: nil, TotalEpochs: 1},
		{Capacity: 1, Labels: []int{0, 1}, Payloads: []int{1}, TotalEpochs: 1},
		{Capacity: 1, Labels: []int{0}, Payloads: []int{1}, TotalEpochs: 0},
	}
	for i, o := range bad {
		if _, err := New(o); err == nil {
			t.Errorf("bad options %d accepted", i)
		}
	}
}

func TestNames(t *testing.T) {
	if s := fixture(t, 10, 4, nil); s.Name() != "SpiderCache" {
		t.Fatalf("name %q", s.Name())
	}
	s := fixture(t, 10, 4, func(o *Options) { o.DisableHomophily = true })
	if s.Name() != "SpiderCache-imp" {
		t.Fatalf("ablation name %q", s.Name())
	}
}

func TestCapacitySplit(t *testing.T) {
	s := fixture(t, 100, 20, nil)
	imp, hom := s.imp.Cap(), s.hom.Cap()
	if imp+hom != 20 {
		t.Fatalf("split loses capacity: %d + %d", imp, hom)
	}
	if imp != 18 { // 90% of 20
		t.Fatalf("imp cap %d, want 18", imp)
	}
	full := fixture(t, 100, 20, func(o *Options) { o.DisableHomophily = true })
	if full.imp.Cap() != 20 || full.hom.Cap() != 0 {
		t.Fatal("imp-only variant did not get the full budget")
	}
}

func TestEpochOrderShape(t *testing.T) {
	s := fixture(t, 50, 10, nil)
	order := s.EpochOrder(0)
	if len(order) != 50 {
		t.Fatalf("order length %d", len(order))
	}
	for _, id := range order {
		if id < 0 || id >= 50 {
			t.Fatalf("id %d out of range", id)
		}
	}
}

func TestMissAdmissionByScore(t *testing.T) {
	s := fixture(t, 40, 2, func(o *Options) { o.DisableHomophily = true })
	// Give sample 0 a high global score and 2 a low one via scoring.
	feedBatch(s, []int{0, 2, 4, 6, 1, 3, 5, 7}, 0.01)
	high, low := -1, -1
	var hs, ls float64 = -1, 2
	for _, id := range []int{0, 1, 2, 3, 4, 5, 6, 7} {
		sc := s.grapher.ScoreOf(id)
		if sc > hs {
			hs, high = sc, id
		}
		if sc < ls {
			ls, low = sc, id
		}
	}
	if hs == ls {
		t.Skip("degenerate scores")
	}
	s.OnMiss(high, 100)
	s.OnMiss(low, 100)
	// Fill the 2-slot cache and check the higher-score stays when a mid
	// insertion happens.
	if lk := s.Lookup(high); lk.Source != policy.SourceCache {
		t.Fatal("high-score sample not admitted")
	}
	_ = low
}

func TestLookupPrecedence(t *testing.T) {
	s := fixture(t, 40, 10, nil)
	if lk := s.Lookup(3); lk.Source != policy.SourceMiss {
		t.Fatalf("fresh lookup %+v", lk)
	}
	s.OnMiss(3, 100)
	if lk := s.Lookup(3); lk.Source != policy.SourceCache || lk.ServedID != 3 {
		t.Fatalf("importance hit %+v", lk)
	}
}

func TestHomophilyInstallAndSubstitute(t *testing.T) {
	s := fixture(t, 40, 10, nil)
	// Batch of even-class samples tightly packed: high degree, many close
	// same-class neighbours.
	ids := []int{0, 2, 4, 6, 8, 10}
	feedBatch(s, ids, 0.0001)
	if s.HomophilyInstalls() == 0 {
		t.Fatal("no homophily host installed")
	}
	// Leave substitution open: the gate requires score below the mean; set
	// it explicitly via an epoch end.
	s.OnEpochEnd(0, 0.5)
	imp, hom := s.CacheLens()
	if hom == 0 {
		t.Fatalf("homophily cache empty (imp=%d)", imp)
	}
	// One of the batch members (not the host itself) should be servable as
	// a substitute if its score is below the gate.
	served := 0
	for _, id := range ids {
		lk := s.Lookup(id)
		if lk.Source == policy.SourceSubstitute {
			served++
			if lk.ServedID == id {
				t.Fatal("substitute equals requested id")
			}
		}
	}
	if served == 0 {
		t.Log("no substitution served (gate may exclude all); homophily install verified")
	}
}

func TestElasticShiftsCapacity(t *testing.T) {
	s := fixture(t, 200, 40, nil)
	impBefore := s.imp.Cap()
	// Drive epochs with declining σ and saturating accuracy via real
	// scoring: feed progressively tighter embeddings so score variance
	// decays; call OnEpochEnd with rising-then-flat accuracy.
	for e := 0; e < 10; e++ {
		ids := make([]int, 40)
		for i := range ids {
			ids[i] = (e*40 + i) % 200
		}
		off := 0.5 / float64(e+1) // embeddings tighten -> σ declines
		feedBatch(s, ids, off)
		acc := 0.9 * (1 - 1/float64(e+2))
		s.OnEpochEnd(e, acc)
	}
	if !s.Manager().Activated() {
		t.Skip("elastic manager did not activate on this trace")
	}
	if s.imp.Cap() >= impBefore {
		t.Fatalf("importance capacity did not shrink: %d -> %d", impBefore, s.imp.Cap())
	}
	if s.ImpRatio() >= 0.9 {
		t.Fatalf("imp ratio %f did not move", s.ImpRatio())
	}
}

func TestDisableElasticFreezesRatio(t *testing.T) {
	s := fixture(t, 100, 20, func(o *Options) { o.DisableElastic = true })
	for e := 0; e < 10; e++ {
		feedBatch(s, []int{e * 3 % 100, (e*3 + 1) % 100, (e*3 + 2) % 100}, 0.3/float64(e+1))
		s.OnEpochEnd(e, 0.9)
	}
	if s.ImpRatio() != 0.9 {
		t.Fatalf("static ratio moved to %f", s.ImpRatio())
	}
}

func TestReportersAndFlags(t *testing.T) {
	s := fixture(t, 20, 5, nil)
	if !s.HasGraphIS() {
		t.Fatal("HasGraphIS false")
	}
	if w := s.BackpropWeights(nil); w != nil {
		t.Fatal("SpiderCache skips backprop")
	}
	if s.ScoreStd() != 0 {
		t.Fatal("σ nonzero before scoring")
	}
	feedBatch(s, []int{0, 1, 2, 3}, 0.1)
	if s.ScoreStd() < 0 {
		t.Fatal("negative σ")
	}
	if s.ImpRatio() != 0.9 {
		t.Fatalf("initial imp ratio %f", s.ImpRatio())
	}
}

func TestSubstitutionGateBlocksHighScoreSamples(t *testing.T) {
	s := fixture(t, 40, 10, nil)
	// Install a host covering sample 2.
	feedBatch(s, []int{0, 2, 4, 6}, 0.0001)
	s.OnEpochEnd(0, 0.5) // sets the gate at 0.75 * mean score
	// Force sample 2's score far above the gate.
	s.grapher.Scores()[2] = 100
	if lk := s.Lookup(2); lk.Source == policy.SourceSubstitute {
		t.Fatal("high-importance sample was substituted")
	}
}

func TestScoreWarmStart(t *testing.T) {
	src := fixture(t, 40, 10, nil)
	feedBatch(src, []int{0, 1, 2, 3, 4, 5}, 0.05)
	exported := src.ExportScores()

	scored, unscored := 0, 0
	for _, s := range exported {
		if s == s {
			scored++
		} else {
			unscored++
		}
	}
	if scored != 6 || unscored != 34 {
		t.Fatalf("export scored=%d unscored=%d", scored, unscored)
	}

	dst := fixture(t, 40, 10, nil)
	if err := dst.ImportScores(exported); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{0, 1, 2, 3, 4, 5} {
		if dst.Grapher().ScoreOf(id) != src.Grapher().ScoreOf(id) {
			t.Fatalf("score of %d not transferred", id)
		}
	}
	// The substitution gate must be armed from the imported distribution.
	if dst.Grapher().ScoreMean() <= 0 {
		t.Fatal("imported mean is zero")
	}
	// Length mismatch is rejected.
	if err := dst.ImportScores(exported[:5]); err == nil {
		t.Fatal("short import accepted")
	}
}

func TestGrapherAccessor(t *testing.T) {
	s := fixture(t, 10, 4, nil)
	if s.Grapher() == nil || s.Grapher().Len() != 10 {
		t.Fatal("Grapher accessor broken")
	}
}
