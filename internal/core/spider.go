// Package core implements SpiderCache itself — the paper's primary
// contribution (Section 4): the graph-based importance sampler, the
// two-section semantic-aware cache (Importance Cache + Homophily Cache) and
// the Elastic Cache Manager, composed behind the policy.Policy interface so
// the trainer can drive it exactly like the baselines.
//
// Per-batch flow (the paper's Algorithm 1):
//
//  1. Lookup serves each requested sample from the Importance Cache, else as
//     a substitute from the Homophily Cache's neighbour lists, else misses.
//  2. After the forward pass, OnBatchEnd upserts the batch embeddings into
//     the ANN index, recomputes each sample's global importance score
//     (Eq. 4), refreshes resident cache scores, and installs the batch's
//     highest-degree node (with its neighbour ID list) into the Homophily
//     Cache.
//  3. OnEpochEnd feeds σ(scores) and held-out accuracy to the Elastic Cache
//     Manager and resizes the two cache sections to the returned imp-ratio.
package core

import (
	"fmt"

	"spidercache/internal/cache"
	"spidercache/internal/elastic"
	"spidercache/internal/hnsw"
	"spidercache/internal/policy"
	"spidercache/internal/sampler"
	"spidercache/internal/semgraph"
	"spidercache/internal/telemetry"
)

// Options configures a SpiderCache instance.
type Options struct {
	// Capacity is the total cache budget in items, split between the two
	// sections by the imp-ratio.
	Capacity int
	// Labels are the per-sample class labels (graph scoring needs them).
	Labels []int
	// Payloads are per-sample stored sizes in bytes.
	Payloads []int
	// Graph tunes the importance-score algorithm; zero value means
	// semgraph.DefaultConfig.
	Graph semgraph.Config
	// HNSW tunes the ANN index; zero value means hnsw.DefaultConfig.
	HNSW hnsw.Config
	// Elastic tunes the cache manager; zero value means
	// elastic.DefaultConfig(TotalEpochs).
	Elastic elastic.Config
	// TotalEpochs is the planned training length T (Eq. 8).
	TotalEpochs int
	// DisableHomophily turns off the substitute cache — the
	// "SpiderCache-imp" ablation of Fig 14. The full budget then goes to
	// the Importance Cache.
	DisableHomophily bool
	// DisableElastic freezes the imp-ratio at Elastic.RStart — the static
	// strategy of Table 6's "90%" column.
	DisableElastic bool
	// SamplerSmoothing mixes the score weights with their mean before
	// drawing (see sampler.Multinomial); 0 means the default 0.75.
	SamplerSmoothing float64
	// SnapshotDrift enables the grapher's neighborhood-snapshot cache when
	// positive: per-sample scoring is served from cached kNN snapshots
	// while the sample's embedding stays within this distance of its
	// indexed position (see semgraph.Config.SnapshotDrift). 0 keeps the
	// always-fresh path. Overrides Graph.SnapshotDrift when set.
	SnapshotDrift float64
	// Searcher overrides the ANN index (nil = HNSW built from Options.HNSW);
	// tests inject the exact brute-force searcher here.
	Searcher semgraph.NeighborSearcher
	// Metrics receives cache-internals telemetry (evictions, substitutions,
	// elastic imp_ratio/σ trajectories); nil disables recording.
	Metrics *telemetry.Registry
	// Workers bounds the per-batch scoring fan-out (Grapher.ScoreBatch):
	// 0 uses GOMAXPROCS, 1 forces serial scoring. Results are identical
	// either way; this only trades wall-clock for cores.
	Workers int
	Seed    uint64
}

func (o *Options) fillDefaults() {
	if o.Graph == (semgraph.Config{}) {
		o.Graph = semgraph.DefaultConfig()
	}
	if o.SnapshotDrift > 0 {
		o.Graph.SnapshotDrift = o.SnapshotDrift
	}
	if o.HNSW == (hnsw.Config{}) {
		o.HNSW = hnsw.DefaultConfig()
		o.HNSW.Seed = o.Seed + 101
	}
	if o.Elastic == (elastic.Config{}) {
		epochs := o.TotalEpochs
		if epochs < 1 {
			epochs = 1
		}
		o.Elastic = elastic.DefaultConfig(epochs)
	}
}

func (o *Options) validate() error {
	switch {
	case o.Capacity < 0:
		return fmt.Errorf("core: negative capacity %d", o.Capacity)
	case len(o.Labels) == 0:
		return fmt.Errorf("core: empty label set")
	case len(o.Payloads) != len(o.Labels):
		return fmt.Errorf("core: %d payloads for %d labels", len(o.Payloads), len(o.Labels))
	case o.TotalEpochs < 1:
		return fmt.Errorf("core: TotalEpochs must be >= 1, got %d", o.TotalEpochs)
	}
	return nil
}

// SpiderCache is the semantic-aware caching policy. It implements
// policy.Policy plus the ScoreStdReporter and RatioReporter extensions.
type SpiderCache struct {
	opts     Options
	grapher  *semgraph.Grapher
	sampler  *sampler.Multinomial
	imp      *cache.Importance
	hom      *cache.Homophily
	manager  *elastic.Manager
	impRatio float64
	payloads []int
	// subGate is the score ceiling for substitution, refreshed each epoch:
	// only samples the model has already learned well (score below the
	// mean) may be served by a homophily substitute; hard samples are
	// always fetched exactly so the training signal they carry is never
	// diluted.
	subGate float64

	// per-run counters for diagnostics
	homInstalls int

	tel spiderTelemetry
}

// spiderTelemetry groups the policy's instruments, resolved once at
// construction. With a nil registry these are shared no-ops, so record
// sites stay unconditional.
type spiderTelemetry struct {
	impEvictions  *telemetry.Counter
	homEvictions  *telemetry.Counter
	substitutions *telemetry.Counter
	homInstalls   *telemetry.Counter
	impRatio      *telemetry.Gauge
	scoreStd      *telemetry.Gauge
	impResident   *telemetry.Gauge
	homResident   *telemetry.Gauge

	// last exported cache eviction totals, for delta accounting
	lastImpEvict, lastHomEvict int64
}

func newSpiderTelemetry(reg *telemetry.Registry) spiderTelemetry {
	reg.Describe("cache_evictions_total", "cumulative evictions per cache section")
	reg.Describe("imp_ratio", "elastic Importance Cache share")
	reg.Describe("score_std", "stddev of global importance scores")
	return spiderTelemetry{
		impEvictions:  reg.Counter("cache_evictions_total", telemetry.Labels{"section": "importance"}),
		homEvictions:  reg.Counter("cache_evictions_total", telemetry.Labels{"section": "homophily"}),
		substitutions: reg.Counter("homophily_substitutions_total", nil),
		homInstalls:   reg.Counter("homophily_installs_total", nil),
		impRatio:      reg.Gauge("imp_ratio", nil),
		scoreStd:      reg.Gauge("score_std", nil),
		impResident:   reg.Gauge("cache_resident", telemetry.Labels{"section": "importance"}),
		homResident:   reg.Gauge("cache_resident", telemetry.Labels{"section": "homophily"}),
	}
}

// flushCacheTelemetry publishes eviction deltas and resident counts.
func (s *SpiderCache) flushCacheTelemetry() {
	if impEv := s.imp.Evictions(); impEv > s.tel.lastImpEvict {
		s.tel.impEvictions.Add(impEv - s.tel.lastImpEvict)
		s.tel.lastImpEvict = impEv
	}
	if homEv := s.hom.Evictions(); homEv > s.tel.lastHomEvict {
		s.tel.homEvictions.Add(homEv - s.tel.lastHomEvict)
		s.tel.lastHomEvict = homEv
	}
	s.tel.impResident.Set(float64(s.imp.Len()))
	s.tel.homResident.Set(float64(s.hom.Len()))
}

var (
	_ policy.Policy              = (*SpiderCache)(nil)
	_ policy.ScoreStdReporter    = (*SpiderCache)(nil)
	_ policy.RatioReporter       = (*SpiderCache)(nil)
	_ policy.SearchStatsReporter = (*SpiderCache)(nil)
)

// New builds a SpiderCache policy.
func New(opts Options) (*SpiderCache, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	opts.fillDefaults()

	searcher := opts.Searcher
	if searcher == nil {
		idx, err := hnsw.New(opts.HNSW)
		if err != nil {
			return nil, err
		}
		searcher = idx
	}
	grapher, err := semgraph.New(opts.Graph, opts.Labels, searcher)
	if err != nil {
		return nil, err
	}
	grapher.SetWorkers(opts.Workers)
	grapher.SetMetrics(opts.Metrics)
	smp, err := sampler.NewMultinomial(len(opts.Labels), opts.Seed+7)
	if err != nil {
		return nil, err
	}
	smoothing := opts.SamplerSmoothing
	if smoothing == 0 {
		smoothing = 1.0
	}
	if err := smp.SetSmoothing(smoothing); err != nil {
		return nil, err
	}
	mgr, err := elastic.New(opts.Elastic)
	if err != nil {
		return nil, err
	}

	s := &SpiderCache{
		opts:     opts,
		grapher:  grapher,
		sampler:  smp,
		manager:  mgr,
		impRatio: opts.Elastic.RStart,
		payloads: opts.Payloads,
		tel:      newSpiderTelemetry(opts.Metrics),
	}
	s.tel.impRatio.Set(s.impRatio)
	if opts.DisableHomophily {
		s.impRatio = 1
	}
	impCap, homCap := s.split(opts.Capacity, s.impRatio)
	s.imp = cache.NewImportance(impCap)
	s.hom = cache.NewHomophily(homCap)
	return s, nil
}

// split divides the budget by ratio, keeping totals exact.
func (s *SpiderCache) split(capacity int, ratio float64) (impCap, homCap int) {
	impCap = int(float64(capacity)*ratio + 0.5)
	if impCap > capacity {
		impCap = capacity
	}
	return impCap, capacity - impCap
}

// Name returns "SpiderCache", or "SpiderCache-imp" for the
// importance-cache-only ablation.
func (s *SpiderCache) Name() string {
	if s.opts.DisableHomophily {
		return "SpiderCache-imp"
	}
	return "SpiderCache"
}

// EpochOrder draws the epoch's sample order from the global importance
// scores via the multinomial sampler (Algorithm 1's torch.multinomial step).
func (s *SpiderCache) EpochOrder(epoch int) []int { return s.sampler.EpochOrder(epoch) }

// Lookup implements the two-layer cache search of Fig 9(b): Importance Cache
// first, then the Homophily Cache's neighbour lists.
func (s *SpiderCache) Lookup(id int) policy.Lookup {
	if _, ok := s.imp.Get(id); ok {
		return policy.Lookup{Source: policy.SourceCache, ServedID: id}
	}
	if s.hom.Cap() > 0 {
		if _, ok := s.hom.Get(id); ok {
			// The request is itself a resident high-degree host.
			return policy.Lookup{Source: policy.SourceCache, ServedID: id}
		}
		if s.grapher.ScoreOf(id) < s.subGate {
			if host, ok := s.hom.LookupNeighbor(id); ok {
				s.tel.substitutions.Inc()
				return policy.Lookup{Source: policy.SourceSubstitute, ServedID: host.ID}
			}
		}
	}
	return policy.Lookup{Source: policy.SourceMiss, ServedID: id}
}

// OnMiss offers the fetched sample to the Importance Cache at its current
// global score. The min-heap admission rule realises Cases 2 and 4 of the
// paper's walkthrough: the sample displaces the least important resident
// only when it scores higher.
func (s *SpiderCache) OnMiss(id, size int) {
	s.imp.Put(cache.Item{ID: id, Size: size}, s.grapher.ScoreOf(id))
}

// OnBatchEnd runs the Graph-based IS stage (Algorithm 1 lines 14-22) as a
// batch: all embeddings are upserted into the ANN index first, then every
// sample's global score is recomputed over the frozen index — fanned across
// the worker pool by Grapher.ScoreBatch with results identical to serial.
func (s *SpiderCache) OnBatchEnd(_ int, fb []policy.Feedback) {
	if len(fb) == 0 {
		return
	}
	ids := make([]int, 0, len(fb))
	embs := make([][]float64, 0, len(fb))
	for _, f := range fb {
		ids = append(ids, f.ID)
		embs = append(embs, f.Embedding)
	}
	results, err := s.grapher.ScoreBatch(ids, embs)
	if err != nil {
		return // out-of-range IDs cannot occur from the trainer
	}
	maxDegree := -1
	var maxRes semgraph.ScoreResult
	for _, res := range results {
		s.sampler.SetWeight(res.ID, res.Score)
		s.imp.UpdateScore(res.ID, res.Score)
		if res.Degree() > maxDegree && len(res.CloseNeighbors) > 0 && !s.hom.Contains(res.ID) {
			maxDegree = res.Degree()
			maxRes = res
		}
	}
	// Install the batch's highest-degree node with its near-duplicate
	// neighbour ID list (the IDs it may substitute for).
	if !s.opts.DisableHomophily && s.hom.Cap() > 0 && maxDegree > 0 {
		s.hom.Put(cache.Item{ID: maxRes.ID, Size: s.payloads[maxRes.ID]}, maxRes.CloseNeighbors)
		s.homInstalls++
		s.tel.homInstalls.Inc()
	}
}

// OnEpochEnd drives the Elastic Cache Manager and resizes the two sections.
func (s *SpiderCache) OnEpochEnd(epoch int, accuracy float64) {
	defer s.flushCacheTelemetry()
	s.tel.scoreStd.Set(s.grapher.ScoreStd())
	if s.opts.DisableHomophily {
		return
	}
	s.subGate = 0.75 * s.grapher.ScoreMean()
	sigma := s.grapher.ScoreStd()
	ratio := s.impRatio
	if s.opts.DisableElastic {
		ratio = s.opts.Elastic.RStart
	} else {
		ratio = s.manager.Observe(epoch, sigma, accuracy)
	}
	if ratio != s.impRatio {
		s.impRatio = ratio
		impCap, homCap := s.split(s.opts.Capacity, ratio)
		s.imp.Resize(impCap)
		s.hom.Resize(homCap)
	}
	s.tel.impRatio.Set(s.impRatio)
}

// BackpropWeights trains the full batch: SpiderCache is an I/O-bound-regime
// design and never skips backprop.
func (s *SpiderCache) BackpropWeights([]policy.Feedback) []float64 { return nil }

// HasGraphIS reports true; the trainer charges the per-batch IS cost with
// pipeline overlap (Section 5).
func (s *SpiderCache) HasGraphIS() bool { return true }

// ScoreStd exposes the current σ of the global importance scores.
func (s *SpiderCache) ScoreStd() float64 { return s.grapher.ScoreStd() }

// ImpRatio exposes the live Importance Cache share.
func (s *SpiderCache) ImpRatio() float64 { return s.impRatio }

// Grapher exposes the score table for experiments (Fig 5/6c analyses).
func (s *SpiderCache) Grapher() *semgraph.Grapher { return s.grapher }

// ExportScores snapshots the global importance scores for reuse (NaN marks
// never-scored samples). Together with ImportScores it supports warm-starting
// a new training run of the same dataset — e.g. hyper-parameter retries —
// without re-learning sample importance from scratch.
func (s *SpiderCache) ExportScores() []float64 { return s.grapher.ExportScores() }

// ImportScores seeds the score table and sampler weights from a previous
// run's export, and refreshes the substitution gate.
func (s *SpiderCache) ImportScores(scores []float64) error {
	if err := s.grapher.ImportScores(scores); err != nil {
		return err
	}
	for id, sc := range scores {
		if sc == sc { // skip NaN
			s.sampler.SetWeight(id, sc)
		}
	}
	s.subGate = 0.75 * s.grapher.ScoreMean()
	return nil
}

// Manager exposes the elastic controller state for experiments.
func (s *SpiderCache) Manager() *elastic.Manager { return s.manager }

// HomophilyInstalls reports how many high-degree nodes were installed.
func (s *SpiderCache) HomophilyInstalls() int { return s.homInstalls }

// CacheLens reports current resident counts (importance, homophily).
func (s *SpiderCache) CacheLens() (imp, hom int) { return s.imp.Len(), s.hom.Len() }

// SearchStats reports the cumulative number of real ANN SearchKNN calls the
// scoring path has issued and how many scoring requests were served from
// neighborhood snapshots instead (0 when snapshots are disabled). The
// trainer diffs these per epoch into EpochStats.
func (s *SpiderCache) SearchStats() (searches, snapshotHits int64) {
	return s.grapher.SearchCalls(), s.grapher.SnapshotStats().Hits
}
