package lint

import (
	"go/ast"
	"go/types"
)

// errcheckCheck is the "lite" unchecked-error analyzer for the serving hot
// path (Config.ErrcheckPkgs): an expression statement that discards the
// error from an io/net write is a finding. The closed callee set keeps it
// focused on calls whose errors actually signal a broken connection:
//
//   - any error-returning method on a type declared in package net
//     (Conn writes, deadline arms, Close);
//   - Flush/flush methods (bufio.Writer and the repo's own buffered
//     writers) — the flush is where sticky write errors surface, so it is
//     the one call that must never be dropped;
//   - fmt.Fprint/Fprintf/Fprintln and io.WriteString/io.Copy, the indirect
//     write paths.
//
// Intermediate bufio WriteString/WriteByte calls are deliberately exempt:
// bufio errors are sticky and the protocol code checks the final write or
// flush of each frame. An intentional discard is written `_ = c.flush()`
// (visible intent) or annotated //lint:ignore errcheck <reason>.
func errcheckCheck() *Check {
	c := &Check{
		Name: "errcheck",
		Doc:  "ignored error returns from io/net writes on the serving hot path",
	}
	c.Run = func(p *Pass) {
		for _, pkg := range p.PackagesMatching(p.Cfg.ErrcheckPkgs) {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					stmt, ok := n.(*ast.ExprStmt)
					if !ok {
						return true
					}
					call, ok := stmt.X.(*ast.CallExpr)
					if !ok {
						return true
					}
					if why := droppedWriteError(pkg, call); why != "" {
						p.Reportf(call.Pos(), "%s error is dropped; handle it, assign to _ for visible intent, or annotate", why)
					}
					return true
				})
			}
		}
	}
	return c
}

// droppedWriteError reports a non-empty description when call is in the
// checked callee set and returns an error that the caller is discarding.
func droppedWriteError(pkg *Package, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	obj, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	if !ok || !returnsError(obj) {
		return ""
	}
	name := obj.Name()
	qual := types.ExprString(call.Fun)

	// Package functions: fmt.Fprint*, io.WriteString/Copy.
	if obj.Pkg() != nil && isPackageSelector(pkg, sel.X) {
		switch obj.Pkg().Path() {
		case "fmt":
			if name == "Fprint" || name == "Fprintf" || name == "Fprintln" {
				return qual
			}
		case "io":
			if name == "WriteString" || name == "Copy" || name == "CopyN" {
				return qual
			}
		}
		return ""
	}

	// Methods: net-declared receivers, and Flush on anything.
	if name == "Flush" || name == "flush" {
		return qual
	}
	if s, hasSel := pkg.Info.Selections[sel]; hasSel {
		t := s.Recv()
		if ptr, isPtr := t.(*types.Pointer); isPtr {
			t = ptr.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed {
			if o := named.Obj(); o.Pkg() != nil && o.Pkg().Path() == "net" {
				return qual
			}
		}
	}
	// Interface methods declared in net (net.Conn et al) resolve with the
	// method object's package.
	if obj.Pkg() != nil && obj.Pkg().Path() == "net" {
		return qual
	}
	return ""
}

// returnsError reports whether fn's last result is the builtin error type.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
