package lint

import "testing"

// telemetryFixture is a minimal stand-in for internal/telemetry: the check
// keys on a Registry type in a package *named* telemetry, so the fixture
// registry exercises the same resolution path as the real one.
const telemetryFixture = `package telemetry

type Registry struct{}

func (r *Registry) Counter(name string) *int                      { return new(int) }
func (r *Registry) Gauge(name string) *int                        { return new(int) }
func (r *Registry) Histogram(name string, buckets []float64) *int { return new(int) }
func (r *Registry) HistogramWindow(name string, n int) *int       { return new(int) }
func (r *Registry) Describe(name, help string)                    {}
`

func TestMetricNamesPositive(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"telemetry": {"telemetry.go": telemetryFixture},
		"app": {"app.go": `package app

import "fix/telemetry"

func Register(r *telemetry.Registry, suffix string) {
	r.Counter("RequestsTotal")          // not snake_case
	r.Counter("requests")               // counter without _total
	r.Gauge("queue_depth_total")        // gauge stealing the counter suffix
	r.Counter("dyn_" + suffix)          // computed name
	r.Describe("never_registered", "described but never created")
}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "metricnames")
	wantDiag(t, diags, "metricnames", "not snake_case", 1)
	wantDiag(t, diags, "metricnames", `counter "requests" must end in _total`, 1)
	wantDiag(t, diags, "metricnames", "must not end in _total", 1)
	wantDiag(t, diags, "metricnames", "compile-time string constant", 1)
	wantDiag(t, diags, "metricnames", "no matching registration", 1)
}

func TestMetricNamesScattering(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"telemetry": {"telemetry.go": telemetryFixture},
		"app": {"app.go": `package app

import "fix/telemetry"

// The same family registered from two functions: ownership is ambiguous.
func RegisterA(r *telemetry.Registry) { r.Counter("shared_total") }
func RegisterB(r *telemetry.Registry) { r.Counter("shared_total") }

// The same name registered as two different kinds.
func KindA(r *telemetry.Registry) { r.Counter("mixed_total") }
func KindB(r *telemetry.Registry) { r.Gauge("mixed_total") }
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "metricnames")
	wantDiag(t, diags, "metricnames", `"shared_total" registered from multiple functions`, 2)
	wantDiag(t, diags, "metricnames", `"mixed_total" registered with conflicting kinds`, 2)
}

func TestMetricNamesNegative(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"telemetry": {"telemetry.go": telemetryFixture},
		"app": {"app.go": `package app

import "fix/telemetry"

const opsName = "app_ops_total"

// One function owns every family; names follow the convention; a named
// constant is still a compile-time constant. Labeled families legitimately
// register several instruments from one site.
func Register(r *telemetry.Registry) {
	r.Counter(opsName)
	r.Counter("app_errors_total")
	r.Gauge("app_queue_depth")
	r.Histogram("app_latency_seconds", nil)
	r.Describe(opsName, "operations served")
}
`},
		// A same-shaped registry in a package NOT named telemetry is out of scope.
		"metrics": {"metrics.go": `package metrics

type Registry struct{}

func (r *Registry) Counter(name string) *int { return new(int) }

func Use(r *Registry) { r.Counter("Whatever Goes") }
`},
	})
	wantNone(t, runNamed(t, m, DefaultConfig(), "metricnames"))
}

func TestMetricNamesSuppression(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"telemetry": {"telemetry.go": telemetryFixture},
		"app": {"app.go": `package app

import "fix/telemetry"

func Register(r *telemetry.Registry) {
	//lint:ignore metricnames fixture keeps a legacy dashboard name alive
	r.Counter("LegacyName")
}
`},
	})
	wantNone(t, runNamed(t, m, DefaultConfig(), "metricnames"))
}
