package lint

import "testing"

func TestErrcheckPositive(t *testing.T) {
	cfg := Config{ErrcheckPkgs: []string{"kv"}}
	m := fixture(t, map[string]map[string]string{
		"kv": {"kv.go": `package kv

import (
	"bufio"
	"fmt"
	"io"
)

type conn struct {
	w *bufio.Writer
}

func (c *conn) flush() error { return c.w.Flush() }

func Drops(c *conn, w io.Writer) {
	fmt.Fprintf(c.w, "GET %s\r\n", "k") // indirect write, error dropped
	io.WriteString(w, "payload")        // ditto
	c.w.Flush()                         // the flush is where sticky errors surface
	c.flush()                           // same through the repo's own helper
}
`},
	})
	diags := runNamed(t, m, cfg, "errcheck")
	wantDiag(t, diags, "errcheck", "fmt.Fprintf", 1)
	wantDiag(t, diags, "errcheck", "io.WriteString", 1)
	wantDiag(t, diags, "errcheck", "c.w.Flush", 1)
	wantDiag(t, diags, "errcheck", "c.flush", 1)
}

func TestErrcheckNegative(t *testing.T) {
	cfg := Config{ErrcheckPkgs: []string{"kv"}}
	m := fixture(t, map[string]map[string]string{
		"kv": {"kv.go": `package kv

import (
	"bufio"
	"fmt"
)

type conn struct {
	w *bufio.Writer
}

func (c *conn) flush() error { return c.w.Flush() }

// Handled, visibly discarded, or exempt intermediate writes.
func Fine(c *conn) error {
	c.w.WriteString("SET ")      // intermediate bufio write: sticky, exempt
	c.w.WriteByte(' ')           // ditto
	if _, err := fmt.Fprintf(c.w, "%d\r\n", 3); err != nil {
		return err
	}
	_ = c.flush() // visible intent
	return c.flush()
}
`},
		// The same drops outside ErrcheckPkgs are not findings.
		"free": {"free.go": `package free

import (
	"fmt"
	"io"
)

func Drops(w io.Writer) {
	fmt.Fprintln(w, "hello")
}
`},
	})
	wantNone(t, runNamed(t, m, cfg, "errcheck"))
}

func TestErrcheckSuppression(t *testing.T) {
	cfg := Config{ErrcheckPkgs: []string{"kv"}}
	m := fixture(t, map[string]map[string]string{
		"kv": {"kv.go": `package kv

import (
	"bufio"
	"fmt"
)

func Courtesy(w *bufio.Writer) {
	//lint:ignore errcheck fixture models a best-effort goodbye
	fmt.Fprint(w, "QUIT\r\n")
	//lint:ignore errcheck fixture models a best-effort goodbye
	w.Flush()
}
`},
	})
	wantNone(t, runNamed(t, m, cfg, "errcheck"))
}
