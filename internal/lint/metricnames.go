package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"regexp"
	"strings"
)

// metricNameRE is the repository's metric naming convention: snake_case,
// starting with a letter (a strict subset of what Prometheus accepts — no
// capitals, no colons, so the exposition stays uniform).
var metricNameRE = regexp.MustCompile(`^[a-z][a-z0-9_]*$`)

// registryMethods maps telemetry.Registry methods to the instrument kind
// they register ("" for Describe, which registers nothing).
var registryMethods = map[string]string{
	"Counter":         "counter",
	"Gauge":           "gauge",
	"Histogram":       "histogram",
	"HistogramWindow": "histogram",
	"Describe":        "",
}

// metricNamesCheck enforces the telemetry naming invariants the Prometheus
// exposition (and every dashboard built on it) depends on:
//
//   - instrument names are compile-time constants — a computed name cannot
//     be audited and drifts silently;
//   - names are snake_case (metricNameRE); counters end in _total and
//     nothing else does (the Prometheus counter convention);
//   - one family, one kind, one owner: a family name must be registered
//     from exactly one function, and always with the same instrument kind —
//     scattered registration is how label sets and help strings drift;
//   - Describe must describe a family that is actually registered.
//
// The check keys on method calls whose receiver is a Registry type in a
// package named "telemetry", so it follows the registry wherever it is
// threaded.
func metricNamesCheck() *Check {
	c := &Check{
		Name: "metricnames",
		Doc:  "telemetry names snake_case, counters _total, one registration site per family",
	}
	c.Run = func(p *Pass) {
		type regSite struct {
			pos  ast.Node
			pkg  *Package
			fn   string // "pkgpath.FuncName"
			kind string
		}
		registrations := map[string][]regSite{}
		describes := map[string][]regSite{}

		for _, pkg := range p.Module.Packages {
			// The telemetry package itself passes names through variables
			// (Histogram forwarding to HistogramWindow); the convention
			// binds call sites, not the registry internals.
			if pkg.Name == "telemetry" {
				continue
			}
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok || len(call.Args) < 1 {
						return true
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok {
						return true
					}
					kind, isReg := registryMethods[sel.Sel.Name]
					if !isReg || !isTelemetryRegistry(pkg, sel) {
						return true
					}
					nameArg := call.Args[0]
					tv, hasTV := pkg.Info.Types[nameArg]
					if !hasTV || tv.Value == nil || tv.Value.Kind() != constant.String {
						p.Reportf(nameArg.Pos(), "metric name must be a compile-time string constant")
						return true
					}
					name := constant.StringVal(tv.Value)
					site := regSite{
						pos:  nameArg,
						pkg:  pkg,
						fn:   pkg.Path + "." + enclosingFunc(f, call.Pos()),
						kind: kind,
					}
					if !metricNameRE.MatchString(name) {
						p.Reportf(nameArg.Pos(), "metric name %q is not snake_case (want %s)", name, metricNameRE)
					}
					switch {
					case kind == "counter" && !strings.HasSuffix(name, "_total"):
						p.Reportf(nameArg.Pos(), "counter %q must end in _total", name)
					case kind != "counter" && kind != "" && strings.HasSuffix(name, "_total"):
						p.Reportf(nameArg.Pos(), "%s %q must not end in _total (reserved for counters)", kind, name)
					}
					if kind == "" {
						describes[name] = append(describes[name], site)
					} else {
						registrations[name] = append(registrations[name], site)
					}
					return true
				})
			}
		}

		for name, sites := range registrations {
			kinds := map[string]bool{}
			fns := map[string]bool{}
			for _, s := range sites {
				kinds[s.kind] = true
				fns[s.fn] = true
			}
			if len(kinds) > 1 {
				for _, s := range sites {
					p.Reportf(s.pos.Pos(), "metric %q registered with conflicting kinds (%s)", name, joinSorted(kinds))
				}
			}
			if len(fns) > 1 {
				for _, s := range sites {
					p.Reportf(s.pos.Pos(), "metric %q registered from multiple functions (%s); keep one registration site per family", name, joinSorted(fns))
				}
			}
		}
		for name, sites := range describes {
			if _, ok := registrations[name]; !ok {
				for _, s := range sites {
					p.Reportf(s.pos.Pos(), "Describe(%q) has no matching registration; the help text would never be emitted", name)
				}
			}
		}
	}
	return c
}

// isTelemetryRegistry reports whether sel's receiver is a Registry declared
// in a package named "telemetry".
func isTelemetryRegistry(pkg *Package, sel *ast.SelectorExpr) bool {
	s, ok := pkg.Info.Selections[sel]
	if !ok {
		return false
	}
	t := s.Recv()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Registry" && obj.Pkg() != nil && obj.Pkg().Name() == "telemetry"
}

func joinSorted(set map[string]bool) string {
	var out []string
	for k := range set {
		out = append(out, k)
	}
	// Deterministic output for tests and stable CLI runs.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return strings.Join(out, ", ")
}
