package lint

import "testing"

func TestAtomicHygienePositive(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync/atomic"

type Sketch struct {
	words []uint64
	n     uint64
}

// The atomic accesses that put words and n under the all-or-nothing rule.
func (s *Sketch) Inc(i int) {
	atomic.AddUint64(&s.words[i], 1)
	atomic.AddUint64(&s.n, 1)
}

// Plain element read next to the CAS-maintained counters.
func (s *Sketch) BadElemRead(i int) uint64 {
	return s.words[i]
}

// Plain element write.
func (s *Sketch) BadElemWrite(i int) {
	s.words[i] = 0
}

// Plain read and write of a directly-atomic scalar.
func (s *Sketch) BadDirect() uint64 {
	s.n++
	return s.n
}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "atomichygiene")
	wantDiag(t, diags, "atomichygiene", "plain read of an element of words", 1)
	wantDiag(t, diags, "atomichygiene", "plain write to an element of words", 1)
	wantDiag(t, diags, "atomichygiene", "plain write to n", 1)
	wantDiag(t, diags, "atomichygiene", "plain read of n", 1)
}

// TestAtomicHygieneAliasOnly is the beyond-syntax case: the plain write
// goes through a local alias of the field, so no textual match on the
// field name can find it — only type-resolved alias tracking does.
func TestAtomicHygieneAliasOnly(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync/atomic"

type Sketch struct {
	words []uint64
}

func (s *Sketch) Inc(i int) {
	atomic.AddUint64(&s.words[i], 1)
}

// The alias hides the field: row[0] = 1 mentions neither s nor words.
func (s *Sketch) BadAlias() {
	row := s.words
	row[0] = 1
}
`},
	})
	diags := runNamed(t, m, DefaultConfig(), "atomichygiene")
	wantDiag(t, diags, "atomichygiene", "plain write to an element of words", 1)
}

func TestAtomicHygieneNegative(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync/atomic"

type Sketch struct {
	words []uint64
	rows  [2][]uint64
	cap   int
}

// Elements are atomic at depth 1 (words) and depth 2 (rows).
func (s *Sketch) Touch(r, w int) {
	atomic.AddUint64(&s.words[w], 1)
	atomic.AddUint64(&s.rows[r][w], 1)
}

// Header bookkeeping is legal: composite-literal init, slice-header
// writes, range over the headers, and untracked sibling fields.
func NewSketch(n int) *Sketch {
	s := &Sketch{words: make([]uint64, n), cap: n}
	for i := range s.rows {
		s.rows[i] = make([]uint64, n)
	}
	return s
}

// Atomic access through a header alias is the sanctioned pattern.
func (s *Sketch) Halve() {
	row := s.rows[0]
	for w := range row {
		atomic.StoreUint64(&row[w], 0)
	}
}

func (s *Sketch) Cap() int { return s.cap }
`},
	})
	wantNone(t, runNamed(t, m, DefaultConfig(), "atomichygiene"))
}

func TestAtomicHygieneSuppression(t *testing.T) {
	m := fixture(t, map[string]map[string]string{
		"app": {"app.go": `package app

import "sync/atomic"

type Sketch struct {
	n uint64
}

func (s *Sketch) Inc() {
	atomic.AddUint64(&s.n, 1)
}

// Teardown runs after every writer has been joined.
func (s *Sketch) Drain() uint64 {
	//lint:ignore atomichygiene single-threaded teardown; no concurrent writers remain
	return s.n
}
`},
	})
	wantNone(t, runNamed(t, m, DefaultConfig(), "atomichygiene"))
}
