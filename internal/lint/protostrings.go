package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"strconv"
	"strings"
)

// protoErrTypeName is the wire-error string type the kvserver protocol
// declares its stable SERVER_ERROR vocabulary with.
const protoErrTypeName = "protoErr"

// protoValueRE is the stable wire format: lowercase words, no control
// characters, nothing a fuzzer or client matcher would trip over.
var protoValueRE = regexp.MustCompile(`^[a-z][a-z0-9 -]*$`)

// protoStringsCheck keeps the kvserver wire-error vocabulary closed: every
// SERVER_ERROR payload must come from the package-level protoErr constant
// set, so the server, its clients and the fuzz corpora keep matching the
// exact same strings across refactors. Concretely, in Config.ProtoPkgs:
//
//   - protoErr("...") conversions are legal only in package-level const
//     declarations — new wire errors cannot be minted inline;
//   - each protoErr constant is nonempty, unique, and lowercase-stable
//     (protoValueRE), so the wire strings survive framing and matching;
//   - no other string literal may embed "SERVER_ERROR" except the exact
//     "SERVER_ERROR " reply prefix — fmt.Errorf("SERVER_ERROR ...") and
//     friends would fork the vocabulary.
func protoStringsCheck() *Check {
	c := &Check{
		Name: "protostrings",
		Doc:  "SERVER_ERROR payloads only from the declared protoErr constant set",
	}
	c.Run = func(p *Pass) {
		for _, pkg := range p.PackagesMatching(p.Cfg.ProtoPkgs) {
			checkProtoPackage(p, pkg)
		}
	}
	return c
}

func checkProtoPackage(p *Pass, pkg *Package) {
	// Resolve the package's protoErr type (absent in packages that carry no
	// wire errors; nothing to enforce there beyond the literal scan).
	var protoType types.Object
	if pkg.Types != nil {
		protoType = pkg.Types.Scope().Lookup(protoErrTypeName)
	}

	seen := map[string]token.Pos{}
	for _, f := range pkg.Files {
		// Package-level const blocks: validate the declared vocabulary.
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.CONST {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					lit, isConv := protoErrConversion(pkg, protoType, v)
					if !isConv || lit == nil {
						continue
					}
					val, err := strconv.Unquote(lit.Value)
					if err != nil {
						continue
					}
					if !protoValueRE.MatchString(val) {
						p.Reportf(lit.Pos(), "protoErr value %q is not a stable wire string (want lowercase words matching %s)", val, protoValueRE)
					}
					if prev, dup := seen[val]; dup {
						p.Reportf(lit.Pos(), "protoErr value %q already declared at %s", val, p.Module.Fset.Position(prev))
					} else {
						seen[val] = lit.Pos()
					}
				}
			}
		}

		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				// Inside function bodies, a protoErr conversion mints a wire
				// string outside the declared set. (Package-level const
				// values never reach here: the decl walk above consumed
				// them, and ast.Inspect still visits them — so skip any
				// conversion at declaration scope.)
				if enclosingFunc(f, n.Pos()) == "" {
					return true
				}
				if _, isConv := protoErrConversion(pkg, protoType, n); isConv {
					p.Reportf(n.Pos(), "protoErr conversion outside the package-level const block; add the string to the declared vocabulary instead")
				}
			case *ast.BasicLit:
				if n.Kind != token.STRING {
					return true
				}
				val, err := strconv.Unquote(n.Value)
				if err != nil || !strings.Contains(val, "SERVER_ERROR") {
					return true
				}
				if val != "SERVER_ERROR " {
					p.Reportf(n.Pos(), "string literal %q embeds SERVER_ERROR; wire errors must use the protoErr constants (only the exact \"SERVER_ERROR \" prefix literal is allowed)", val)
				}
			}
			return true
		})
	}
}

// protoErrConversion reports whether e is a conversion protoErr("...") and
// returns its string literal argument (nil when the argument is not a
// literal).
func protoErrConversion(pkg *Package, protoType types.Object, e ast.Expr) (*ast.BasicLit, bool) {
	if protoType == nil {
		return nil, false
	}
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || pkg.Info.Uses[id] != protoType {
		return nil, false
	}
	lit, _ := call.Args[0].(*ast.BasicLit)
	return lit, true
}
