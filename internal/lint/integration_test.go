package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"
)

func loadRealModule(t *testing.T) *Module {
	t.Helper()
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	m, err := LoadDir(root)
	if err != nil {
		t.Fatalf("LoadDir(%s): %v", root, err)
	}
	return m
}

// TestRealModuleClean runs the full suite over this repository itself:
// the tier-1 gate in test form. Any finding here either needs a code fix
// or a reasoned //lint:ignore — never a weakening of the check.
func TestRealModuleClean(t *testing.T) {
	m := loadRealModule(t)
	for _, d := range Run(m, DefaultConfig(), Checks()) {
		t.Errorf("unexpected finding: %s", d)
	}
}

// TestRealModuleAnalyzersSeeFacts guards against the new analyzers
// silently going blind: a refactor that renames Pin, moves the admission
// sketch, or breaks type resolution would turn them into no-ops that
// still pass TestRealModuleClean. Each analyzer must resolve at least
// the facts PRs 7-8 introduced.
func TestRealModuleAnalyzersSeeFacts(t *testing.T) {
	m := loadRealModule(t)
	p := &Pass{Cfg: DefaultConfig(), Module: m}

	// pairhygiene: the epoch pin and pool client acquire sites must resolve.
	acquires := map[string]int{}
	for _, pkg := range m.Packages {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if e, isExpr := n.(ast.Expr); isExpr {
					if _, rule, ok := acquireCall(p, pkg, e); ok {
						acquires[rule.Type+"."+rule.Acquire]++
					}
				}
				return true
			})
		}
	}
	t.Logf("pairhygiene acquire sites: %v", acquires)
	if acquires["Reclaimer.Pin"] == 0 {
		t.Errorf("no Reclaimer.Pin acquire sites resolved; pairhygiene is blind to the epoch protocol")
	}
	if acquires["store.pin"]+acquires["arenaStore.pin"] == 0 {
		t.Errorf("no store pin sites resolved; pairhygiene is blind to the arena GET path")
	}
	if acquires["Pool.Acquire"] == 0 {
		t.Errorf("no Pool.Acquire sites resolved; pairhygiene is blind to the client pool")
	}

	// atomichygiene: the admission sketch's packed words must be tracked.
	aa := &atomicAnalyzer{
		pass:       p,
		tracked:    map[*types.Var]*atomicField{},
		aliases:    map[types.Object]aliasInfo{},
		atomicArgs: map[ast.Expr]bool{},
	}
	aa.collect()
	fields := map[string]int{}
	for v, f := range aa.tracked {
		fields[f.owner+"."+v.Name()] = f.depth
	}
	t.Logf("atomichygiene tracked fields (name -> depth): %v", fields)
	if d, ok := fields["admission.rows"]; !ok || d != 2 {
		t.Errorf("admission.rows not tracked at depth 2 (got %v, tracked %v); atomichygiene is blind to the sketch", d, ok)
	}
	if d, ok := fields["admission.door"]; !ok || d != 1 {
		t.Errorf("admission.door not tracked at depth 1 (got %v, tracked %v)", d, ok)
	}

	// lockorder: the module's mutexes must resolve into graph nodes.
	la := &lockOrderAnalyzer{
		pass:      p,
		summaries: map[*types.Func]map[types.Object]lockAcq{},
		callees:   map[*types.Func][]*types.Func{},
		names:     map[types.Object]string{},
	}
	la.buildSummaries()
	la.buildEdges()
	var lockNames []string
	for _, name := range la.names {
		lockNames = append(lockNames, name)
	}
	t.Logf("lockorder: %d distinct locks, %d acquisition edges", len(la.names), len(la.edges))
	for _, e := range la.edges {
		t.Logf("  edge: %s -> %s (via %q) at %s", la.names[e.from], la.names[e.to], e.via, la.shortPos(e.pos))
	}
	if len(la.names) < 5 {
		t.Errorf("lockorder resolved only %d locks (%v); lock resolution is broken", len(la.names), lockNames)
	}
}
