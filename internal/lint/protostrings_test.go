package lint

import "testing"

func TestProtoStringsPositive(t *testing.T) {
	cfg := Config{ProtoPkgs: []string{"kv"}}
	m := fixture(t, map[string]map[string]string{
		"kv": {"kv.go": `package kv

import "fmt"

type protoErr string

func (e protoErr) Error() string { return string(e) }

const (
	errOK       = protoErr("valid wire string")
	errShouting = protoErr("Not A Stable String")
	errDup      = protoErr("valid wire string")
)

// Minting a wire error inline forks the vocabulary.
func Inline(n int) error {
	return protoErr("made up on the spot")
}

// Embedding SERVER_ERROR in an ordinary string forks it too.
func Forked(n int) error {
	return fmt.Errorf("SERVER_ERROR thing %d broke", n)
}
`},
	})
	diags := runNamed(t, m, cfg, "protostrings")
	wantDiag(t, diags, "protostrings", "not a stable wire string", 1)
	wantDiag(t, diags, "protostrings", "already declared at", 1)
	wantDiag(t, diags, "protostrings", "conversion outside the package-level const block", 1)
	wantDiag(t, diags, "protostrings", "embeds SERVER_ERROR", 1)
}

func TestProtoStringsNegative(t *testing.T) {
	cfg := Config{ProtoPkgs: []string{"kv"}}
	m := fixture(t, map[string]map[string]string{
		"kv": {"kv.go": `package kv

import "bytes"

type protoErr string

func (e protoErr) Error() string { return string(e) }

const (
	errEmpty     = protoErr("empty command")
	errTooLong   = protoErr("line too long")
	errEmbedDim  = protoErr("bad embedding dim")
	errThreshold = protoErr("bad threshold")
)

// The exact reply prefix is the one permitted SERVER_ERROR literal, and
// returning a declared constant is the intended use.
func Reply(w *bytes.Buffer, pe protoErr) error {
	w.WriteString("SERVER_ERROR ")
	w.WriteString(string(pe))
	return errEmpty
}
`},
		// A protoErr conversion outside ProtoPkgs is someone else's type.
		"other": {"other.go": `package other

type protoErr string

func Mint() protoErr { return protoErr("UNCHECKED HERE") }
`},
	})
	wantNone(t, runNamed(t, m, cfg, "protostrings"))
}

func TestProtoStringsSuppression(t *testing.T) {
	cfg := Config{ProtoPkgs: []string{"kv"}}
	m := fixture(t, map[string]map[string]string{
		"kv": {"kv.go": `package kv

type protoErr string

// A test helper minting a deliberately-broken error to probe the server.
func Hostile() protoErr {
	//lint:ignore protostrings fixture mints a hostile error on purpose
	return protoErr("deliberately unknown")
}
`},
	})
	wantNone(t, runNamed(t, m, cfg, "protostrings"))
}
