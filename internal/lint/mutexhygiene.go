package lint

import (
	"go/ast"
	"go/types"
)

// mutexHygieneCheck verifies, path-sensitively, that a sync.Mutex/RWMutex
// acquired in a function is released on every return path, and flags
// blocking operations (channel sends/receives, select, time.Sleep,
// WaitGroup.Wait) executed while an RWMutex write lock is held — the
// classic self-deadlock shape under reader pressure.
//
// The analysis runs on the package's control-flow graphs (cfg.go): each
// acquisition is traced through a forward dataflow of (held, deferred)
// three-valued facts, so locks released along goto/labeled-break paths,
// re-acquired across loop iterations, or covered by a late defer are
// tracked exactly where the syntax-level predecessor of this check had to
// give up or guess. Two false-positive classes of that predecessor are
// gone by construction: a `select` with a default clause never blocks and
// is not reported, and code between a Lock and a *later installed*
// deferred Unlock is distinguished from code with no release at all.
// Lock helpers that intentionally hand a held lock to their caller are
// annotated with //lint:ignore mutexhygiene <reason>.
func mutexHygieneCheck() *Check {
	c := &Check{
		Name: "mutexhygiene",
		Doc:  "Lock without Unlock on every return path; blocking ops under an RWMutex write lock",
	}
	c.Run = func(p *Pass) {
		for _, pkg := range p.Module.Packages {
			for _, f := range pkg.Files {
				for _, fb := range fileFuncBodies(f) {
					a := &mutexAnalyzer{pass: p, pkg: pkg, funcBody: fb.body}
					a.analyze()
				}
			}
		}
	}
	return c
}

// triState is the lattice value for one boolean dataflow dimension.
type triState uint8

const (
	triFalse triState = iota
	triTrue
	triMixed
)

func mergeTri(a, b triState) triState {
	if a == b {
		return a
	}
	return triMixed
}

// mhFact tracks one lock through the CFG: whether it is held, and whether
// a deferred release has been installed on this path.
type mhFact struct {
	held     triState
	deferred triState
}

// lockRef identifies one acquisition: the receiver expression text plus
// whether it was a read lock and whether the mutex is an RWMutex.
type lockRef struct {
	recv string
	read bool // RLock (vs Lock)
	rw   bool // receiver is a sync.RWMutex
}

type mutexAnalyzer struct {
	pass     *Pass
	pkg      *Package
	funcBody *ast.BlockStmt
	// commOwner maps each select comm statement to its select, so clause
	// entry nodes are not reported separately from the select marker.
	commOwner map[ast.Node]*ast.SelectStmt
}

// analyze builds the function's CFG and traces every lock acquired in it.
func (a *mutexAnalyzer) analyze() {
	g := buildCFG(a.funcBody)
	a.commOwner = map[ast.Node]*ast.SelectStmt{}
	ast.Inspect(a.funcBody, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if sel, ok := n.(*ast.SelectStmt); ok {
			for _, c := range sel.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm != nil {
					a.commOwner[cc.Comm] = sel
				}
			}
		}
		return true
	})

	// Collect the distinct acquisitions and their sites.
	type site struct {
		ref lockRef
		at  ast.Expr
	}
	var sites []site
	seen := map[lockRef]bool{}
	var refs []lockRef
	for _, blk := range g.blocks {
		for _, n := range blk.nodes {
			stmt, ok := n.(ast.Stmt)
			if !ok {
				continue
			}
			if ref, at, ok := a.stmtLock(stmt); ok {
				sites = append(sites, site{ref, at})
				if !seen[ref] {
					seen[ref] = true
					refs = append(refs, ref)
				}
			}
		}
	}
	if len(refs) == 0 {
		return
	}

	for _, ref := range refs {
		// No release anywhere in the function: either the lock
		// intentionally escapes (annotate it) or it is a leak. The
		// dataflow would report every return; one finding at the
		// acquisition is the actionable shape.
		if !a.containsUnlock(a.funcBody, ref) {
			for _, s := range sites {
				if s.ref == ref {
					a.pass.Reportf(s.at.Pos(), "%s.%s() is never released in this function (deferred or inline Unlock missing; annotate if the lock intentionally escapes)",
						ref.recv, lockMethodName(ref))
				}
			}
			continue
		}
		a.trace(g, ref)
	}
}

// trace solves the (held, deferred) dataflow for ref over g and reports
// on a second, fact-replaying pass.
func (a *mutexAnalyzer) trace(g *funcCFG, ref lockRef) {
	transfer := func(blk *cfgBlock, in mhFact) mhFact {
		return a.transferBlock(blk, ref, in, nil)
	}
	in := solveForward(g, mhFact{triFalse, triFalse}, transfer,
		func(x, y mhFact) mhFact {
			return mhFact{mergeTri(x.held, y.held), mergeTri(x.deferred, y.deferred)}
		},
		func(x, y mhFact) bool { return x == y },
	)

	hasDefer := a.hasDeferredRelease(ref)
	for _, blk := range g.blocks {
		fact, reached := in[blk]
		if !reached {
			continue
		}
		a.transferBlock(blk, ref, fact, func(n ast.Node, f mhFact) {
			a.reportNode(n, ref, f, hasDefer)
		})
	}
}

// transferBlock runs ref's transfer function over one block. When report
// is non-nil it is invoked per node with the fact holding *before* the
// node executes (the replay pass).
func (a *mutexAnalyzer) transferBlock(blk *cfgBlock, ref lockRef, in mhFact, report func(ast.Node, mhFact)) mhFact {
	f := in
	for _, n := range blk.nodes {
		if report != nil {
			report(n, f)
		}
		stmt, ok := n.(ast.Stmt)
		if !ok {
			continue
		}
		if r, _, ok := a.stmtLock(stmt); ok && r.recv == ref.recv && r.read == ref.read {
			f.held = triTrue
			continue
		}
		if a.stmtUnlocks(stmt, ref) {
			f.held = triFalse
			continue
		}
		if a.stmtDefersUnlock(stmt, ref) {
			f.deferred = triTrue
			continue
		}
	}
	return f
}

// reportNode emits the diagnostics for one node given the fact in force
// before it.
func (a *mutexAnalyzer) reportNode(n ast.Node, ref lockRef, f mhFact, hasDefer bool) {
	if ret, ok := n.(*ast.ReturnStmt); ok {
		if f.held == triTrue && f.deferred == triFalse {
			if hasDefer {
				a.pass.Reportf(ret.Pos(), "return between %s.%s() and its deferred release",
					ref.recv, lockMethodName(ref))
			} else {
				a.pass.Reportf(ret.Pos(), "return while %s is held by %s() with no release on this path",
					ref.recv, lockMethodName(ref))
			}
		}
		return
	}
	// Blocking operations only matter under a held RWMutex *write* lock
	// (readers don't starve readers; a plain Mutex across a send is a
	// throughput question, not the starvation shape hunted here). A
	// deferred release does not help: the lock is held until the function
	// returns, and the operation blocks before that.
	if ref.read || !ref.rw || f.held != triTrue {
		return
	}
	if _, isComm := a.commOwner[n]; isComm {
		// Clause entry of a select: the select marker carries the report.
		return
	}
	switch n := n.(type) {
	case *ast.SelectStmt:
		if !selectHasDefault(n) {
			a.pass.Reportf(n.Pos(), "select while %s is write-locked (blocks all readers and writers)", ref.recv)
		}
	case *ast.SendStmt:
		a.pass.Reportf(n.Pos(), "channel send while %s is write-locked (blocks all readers and writers)", ref.recv)
	case *ast.DeferStmt, *ast.GoStmt:
		// Deferred calls run at exit; a spawned goroutine has its own
		// locking discipline.
	default:
		a.reportBlockingExprs(n, ref)
	}
}

// selectHasDefault reports whether sel can complete without blocking.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}

// reportBlockingExprs flags `<-ch`, time.Sleep and WaitGroup.Wait inside
// one CFG node (function literals excluded: they run in their own frame,
// select markers excluded: their clauses live in other blocks).
func (a *mutexAnalyzer) reportBlockingExprs(n ast.Node, ref lockRef) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.SelectStmt:
			return false
		case *ast.SendStmt:
			a.pass.Reportf(n.Pos(), "channel send while %s is write-locked (blocks all readers and writers)", ref.recv)
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				a.pass.Reportf(n.Pos(), "channel receive while %s is write-locked (blocks all readers and writers)", ref.recv)
			}
		case *ast.CallExpr:
			sel, isSel := n.Fun.(*ast.SelectorExpr)
			if !isSel {
				return true
			}
			obj, isFunc := a.pkg.Info.Uses[sel.Sel].(*types.Func)
			if !isFunc || obj.Pkg() == nil {
				return true
			}
			switch {
			case obj.Pkg().Path() == "time" && obj.Name() == "Sleep":
				a.pass.Reportf(n.Pos(), "time.Sleep while %s is write-locked", ref.recv)
			case obj.Pkg().Path() == "sync" && obj.Name() == "Wait":
				a.pass.Reportf(n.Pos(), "%s while %s is write-locked", types.ExprString(n.Fun), ref.recv)
			}
		}
		return true
	})
}

// hasDeferredRelease reports whether any defer in the function releases
// ref (used only to pick the more precise message for a held return).
func (a *mutexAnalyzer) hasDeferredRelease(ref lockRef) bool {
	found := false
	ast.Inspect(a.funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if ds, ok := n.(*ast.DeferStmt); ok && a.stmtDefersUnlock(ds, ref) {
			found = true
		}
		return true
	})
	return found
}

// syncLockMethod resolves call to a sync lock-family method and returns the
// receiver text, method name and whether the receiver is an RWMutex.
func (a *mutexAnalyzer) syncLockMethod(call *ast.CallExpr) (recv, method string, rw bool, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false, false
	}
	obj, isFunc := a.pkg.Info.Uses[sel.Sel].(*types.Func)
	if !isFunc || obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", "", false, false
	}
	switch obj.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock", "TryLock", "TryRLock":
	default:
		return "", "", false, false
	}
	if s, hasSel := a.pkg.Info.Selections[sel]; hasSel {
		rw = typeNameIs(s.Recv(), "sync", "RWMutex")
	}
	return types.ExprString(sel.X), obj.Name(), rw, true
}

func typeNameIs(t types.Type, pkgPath, name string) bool {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// stmtLock returns the lockRef when stmt is `recv.Lock()` or `recv.RLock()`.
func (a *mutexAnalyzer) stmtLock(stmt ast.Stmt) (lockRef, ast.Expr, bool) {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return lockRef{}, nil, false
	}
	call, isCall := es.X.(*ast.CallExpr)
	if !isCall {
		return lockRef{}, nil, false
	}
	recv, method, rw, ok := a.syncLockMethod(call)
	if !ok || (method != "Lock" && method != "RLock") {
		return lockRef{}, nil, false
	}
	return lockRef{recv: recv, read: method == "RLock", rw: rw}, call.Fun, true
}

// isUnlockCall reports whether call releases ref (Unlock pairs with Lock,
// RUnlock with RLock).
func (a *mutexAnalyzer) isUnlockCall(call *ast.CallExpr, ref lockRef) bool {
	recv, method, _, ok := a.syncLockMethod(call)
	if !ok || recv != ref.recv {
		return false
	}
	if ref.read {
		return method == "RUnlock"
	}
	return method == "Unlock"
}

// stmtUnlocks reports whether stmt is an inline `recv.Unlock()`.
func (a *mutexAnalyzer) stmtUnlocks(stmt ast.Stmt, ref lockRef) bool {
	es, isExpr := stmt.(*ast.ExprStmt)
	if !isExpr {
		return false
	}
	call, isCall := es.X.(*ast.CallExpr)
	return isCall && a.isUnlockCall(call, ref)
}

// stmtDefersUnlock reports whether stmt defers a release of ref, either
// directly (`defer mu.Unlock()`) or through a function literal whose body
// releases it.
func (a *mutexAnalyzer) stmtDefersUnlock(stmt ast.Stmt, ref lockRef) bool {
	ds, isDefer := stmt.(*ast.DeferStmt)
	if !isDefer {
		return false
	}
	if a.isUnlockCall(ds.Call, ref) {
		return true
	}
	if lit, isLit := ds.Call.Fun.(*ast.FuncLit); isLit {
		return a.containsUnlock(lit.Body, ref)
	}
	return false
}

// containsUnlock reports whether any release of ref appears under n
// (function literals included: a deferred closure is a common release
// site).
func (a *mutexAnalyzer) containsUnlock(n ast.Node, ref lockRef) bool {
	found := false
	ast.Inspect(n, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, isCall := n.(*ast.CallExpr); isCall && a.isUnlockCall(call, ref) {
			found = true
		}
		return true
	})
	return found
}

func lockMethodName(ref lockRef) string {
	if ref.read {
		return "RLock"
	}
	return "Lock"
}
